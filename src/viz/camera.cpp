#include "viz/camera.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>

#include "common/strings.hpp"

namespace cs::viz {

using common::Vec3;

void Camera::look_at(const Vec3& eye, const Vec3& target, const Vec3& up) {
  eye_ = eye;
  target_ = target;
  up_ = up;
  rebuild_basis();
}

void Camera::rebuild_basis() {
  forward_ = normalized(target_ - eye_);
  right_ = normalized(cross(forward_, up_));
  if (norm2(right_) < 1e-20) {
    right_ = normalized(cross(forward_, Vec3{1, 0, 0}));
  }
  true_up_ = cross(right_, forward_);
}

void Camera::orbit(double yaw, double pitch) {
  Vec3 offset = eye_ - target_;
  const double radius = norm(offset);
  if (radius < 1e-12) return;
  double theta = std::atan2(offset.x, offset.z);
  double phi = std::asin(std::clamp(offset.y / radius, -1.0, 1.0));
  theta += yaw;
  phi = std::clamp(phi + pitch, -1.5, 1.5);
  offset = Vec3{radius * std::cos(phi) * std::sin(theta),
                radius * std::sin(phi),
                radius * std::cos(phi) * std::cos(theta)};
  eye_ = target_ + offset;
  rebuild_basis();
}

Camera::Projected Camera::project(const Vec3& world, int width,
                                  int height) const {
  Projected out;
  const Vec3 rel = world - eye_;
  const double z = dot(rel, forward_);
  if (z < 1e-6) return out;  // behind the camera
  const double x = dot(rel, right_);
  const double y = dot(rel, true_up_);
  const double f =
      (static_cast<double>(height) / 2.0) /
      std::tan(fov_degrees_ * std::numbers::pi / 180.0 / 2.0);
  out.x = static_cast<double>(width) / 2.0 + f * x / z;
  out.y = static_cast<double>(height) / 2.0 - f * y / z;
  out.depth = z;
  out.visible = true;
  return out;
}

std::string Camera::serialize() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%.9g %.9g %.9g %.9g %.9g %.9g %.9g %.9g %.9g %.9g",
                eye_.x, eye_.y, eye_.z, target_.x, target_.y, target_.z,
                up_.x, up_.y, up_.z, fov_degrees_);
  return buf;
}

common::Result<Camera> Camera::parse(std::string_view text) {
  double v[10];
  const std::string s{text};
  if (std::sscanf(s.c_str(), "%lf %lf %lf %lf %lf %lf %lf %lf %lf %lf", &v[0],
                  &v[1], &v[2], &v[3], &v[4], &v[5], &v[6], &v[7], &v[8],
                  &v[9]) != 10) {
    return common::Status{common::StatusCode::kProtocolError,
                          "bad camera string"};
  }
  Camera cam;
  cam.fov_degrees_ = v[9];
  cam.look_at({v[0], v[1], v[2]}, {v[3], v[4], v[5]}, {v[6], v[7], v[8]});
  return cam;
}

}  // namespace cs::viz
