// Pinhole camera: world -> screen projection for the software renderer.
//
// The camera pose is also the unit of collaboration: COVISE-style sessions
// synchronize *this* (a few floats) instead of pixels, which is why their
// update rate is independent of scene size (paper section 4.6).
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "common/vec3.hpp"

namespace cs::viz {

class Camera {
 public:
  Camera() { look_at({3, 2, 4}, {0, 0, 0}, {0, 1, 0}); }

  /// Places the camera at `eye` looking at `target`.
  void look_at(const common::Vec3& eye, const common::Vec3& target,
               const common::Vec3& up);

  /// Vertical field of view in degrees (default 50).
  void set_fov_degrees(double fov) noexcept { fov_degrees_ = fov; }
  double fov_degrees() const noexcept { return fov_degrees_; }

  const common::Vec3& eye() const noexcept { return eye_; }
  const common::Vec3& target() const noexcept { return target_; }

  /// Orbits around the target by `yaw`/`pitch` radians (interactive spin).
  void orbit(double yaw, double pitch);

  struct Projected {
    double x = 0, y = 0;   ///< pixel coordinates
    double depth = 0;      ///< camera-space distance (z-buffer value)
    bool visible = false;  ///< in front of the near plane
  };

  /// Projects a world point into a width x height viewport.
  Projected project(const common::Vec3& world, int width, int height) const;

  /// Serialization for control-channel sync ("VIEW ..." messages).
  std::string serialize() const;
  static common::Result<Camera> parse(std::string_view text);

  friend bool operator==(const Camera& a, const Camera& b) {
    return a.eye_ == b.eye_ && a.target_ == b.target_ && a.up_ == b.up_ &&
           a.fov_degrees_ == b.fov_degrees_;
  }

 private:
  void rebuild_basis();

  common::Vec3 eye_, target_, up_{0, 1, 0};
  common::Vec3 right_, true_up_, forward_;
  double fov_degrees_ = 50.0;
};

}  // namespace cs::viz
