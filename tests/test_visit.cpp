// Tests for the VISIT-style steering toolkit: client/server handshake and
// data flow, timeout isolation guarantees (the paper's core design rule),
// the collaborative multiplexer, and the control-data server.
#include <gtest/gtest.h>

#include <thread>

#include "net/inproc.hpp"
#include "net/tcp.hpp"
#include "visit/client.hpp"
#include "visit/control.hpp"
#include "visit/multiplexer.hpp"
#include "visit/server.hpp"
#include "visit/tags.hpp"
#include "visit/viewer.hpp"

namespace cs::visit {
namespace {

using namespace std::chrono_literals;
using common::Deadline;
using common::StatusCode;

constexpr std::uint32_t kTagField = 1;
constexpr std::uint32_t kTagMiscibility = 2;
constexpr std::uint32_t kTagParticles = 3;

struct Fixture {
  net::InProcNetwork net;
};

// ------------------------------------------------------ client <-> server --

TEST(Visit, HandshakeAndScalarData) {
  Fixture f;
  auto server = VizServer::listen(f.net, {"viz:1", "secret"});
  ASSERT_TRUE(server.is_ok());

  std::jthread viz([&] {
    auto session = server.value().accept(Deadline::after(2s));
    ASSERT_TRUE(session.is_ok());
    auto event = session.value().serve(Deadline::after(2s));
    ASSERT_TRUE(event.is_ok());
    EXPECT_EQ(event.value().kind, SimSession::Event::Kind::kData);
    EXPECT_EQ(event.value().tag, kTagField);
    auto values = session.value().extract<double>(event.value());
    ASSERT_TRUE(values.is_ok());
    EXPECT_EQ(values.value(), (std::vector<double>{1.0, 2.5, -3.0}));
  });

  auto client =
      SimClient::connect(f.net, {"viz:1", "secret", 100ms}, Deadline::after(2s));
  ASSERT_TRUE(client.is_ok());
  const std::vector<double> field{1.0, 2.5, -3.0};
  EXPECT_TRUE(client.value().send(kTagField, field).is_ok());
}

TEST(Visit, WrongPasswordIsDenied) {
  Fixture f;
  auto server = VizServer::listen(f.net, {"viz:2", "secret"});
  ASSERT_TRUE(server.is_ok());
  std::jthread viz([&] {
    auto session = server.value().accept(Deadline::after(2s));
    EXPECT_FALSE(session.is_ok());
    EXPECT_EQ(session.status().code(), StatusCode::kPermissionDenied);
  });
  auto client = SimClient::connect(f.net, {"viz:2", "wrong", 100ms},
                                   Deadline::after(2s));
  ASSERT_FALSE(client.is_ok());
  EXPECT_EQ(client.status().code(), StatusCode::kPermissionDenied);
}

TEST(Visit, ConnectToAbsentServerFailsFast) {
  Fixture f;
  auto client = SimClient::connect(f.net, {"viz:none", "x", 100ms},
                                   Deadline::after(50ms));
  ASSERT_FALSE(client.is_ok());
  EXPECT_EQ(client.status().code(), StatusCode::kNotFound);
}

TEST(Visit, ParameterRequestReplyFromTable) {
  Fixture f;
  auto server = VizServer::listen(f.net, {"viz:3", "pw"});
  ASSERT_TRUE(server.is_ok());

  std::jthread viz([&] {
    auto session = server.value().accept(Deadline::after(2s));
    ASSERT_TRUE(session.is_ok());
    session.value().set_parameter<double>(kTagMiscibility, {0.07});
    // Keep serving so requests are answered until the sim says BYE.
    for (;;) {
      auto event = session.value().serve(Deadline::after(2s));
      if (!event.is_ok() ||
          event.value().kind == SimSession::Event::Kind::kBye) {
        break;
      }
    }
    EXPECT_GE(session.value().requests_served(), 1u);
  });

  auto client =
      SimClient::connect(f.net, {"viz:3", "pw", 200ms}, Deadline::after(2s));
  ASSERT_TRUE(client.is_ok());
  auto param = client.value().request<double>(kTagMiscibility);
  ASSERT_TRUE(param.is_ok());
  ASSERT_EQ(param.value().size(), 1u);
  EXPECT_DOUBLE_EQ(param.value()[0], 0.07);
  client.value().disconnect();
}

TEST(Visit, UnsetParameterYieldsEmptyVector) {
  Fixture f;
  auto server = VizServer::listen(f.net, {"viz:4", "pw"});
  std::jthread viz([&] {
    auto session = server.value().accept(Deadline::after(2s));
    ASSERT_TRUE(session.is_ok());
    (void)session.value().serve(Deadline::after(2s));
  });
  auto client =
      SimClient::connect(f.net, {"viz:4", "pw", 200ms}, Deadline::after(2s));
  ASSERT_TRUE(client.is_ok());
  auto param = client.value().request<float>(99);
  ASSERT_TRUE(param.is_ok());
  EXPECT_TRUE(param.value().empty());
}

TEST(Visit, StructRoundTripWithSchema) {
  struct P {
    double pos[3];
    std::int32_t label;
  };
  wire::StructDesc desc{"p", sizeof(P)};
  desc.add_field("pos", wire::ScalarType::kFloat64, 3, offsetof(P, pos))
      .add_field("label", wire::ScalarType::kInt32, 1, offsetof(P, label));

  Fixture f;
  auto server = VizServer::listen(f.net, {"viz:5", "pw"});
  std::jthread viz([&] {
    auto session = server.value().accept(Deadline::after(2s));
    ASSERT_TRUE(session.is_ok());
    auto event = session.value().serve(Deadline::after(2s));
    ASSERT_TRUE(event.is_ok());
    ASSERT_EQ(event.value().kind, SimSession::Event::Kind::kStructData);
    auto n = session.value().record_count(event.value());
    ASSERT_TRUE(n.is_ok());
    ASSERT_EQ(n.value(), 2u);
    std::vector<P> out(2);
    ASSERT_TRUE(session.value()
                    .unpack(event.value(), desc, out.data(), 2)
                    .is_ok());
    EXPECT_EQ(out[0].label, 10);
    EXPECT_DOUBLE_EQ(out[1].pos[2], 6.0);
  });

  auto client =
      SimClient::connect(f.net, {"viz:5", "pw", 200ms}, Deadline::after(2s));
  ASSERT_TRUE(client.is_ok());
  std::vector<P> particles(2);
  particles[0] = {{1, 2, 3}, 10};
  particles[1] = {{4, 5, 6}, 11};
  EXPECT_TRUE(client.value()
                  .send_struct(kTagParticles, desc, particles.data(), 2)
                  .is_ok());
}

// --------------------------------------------- the VISIT timeout guarantee --

TEST(VisitGuarantee, DeadVisualizationNeverHangsSimulation) {
  // Server accepts, then dies (never drains). With a small receive window
  // the sim's sends start timing out but always return within the timeout.
  Fixture f;
  auto listener = f.net.listen("viz:dead");
  ASSERT_TRUE(listener.is_ok());
  net::ConnectionPtr server_conn;
  std::jthread viz([&] {
    auto conn = listener.value()->accept(Deadline::after(2s));
    ASSERT_TRUE(conn.is_ok());
    ASSERT_TRUE(
        handshake_accept(*conn.value(), "pw", Deadline::after(2s)).is_ok());
    server_conn = conn.value();  // keep alive but never recv again
  });

  net::ConnectOptions opts;
  opts.recv_capacity_bytes = 4096;
  auto conn = f.net.connect("viz:dead", Deadline::after(2s), opts);
  ASSERT_TRUE(conn.is_ok());
  auto client = SimClient::adopt(conn.value(), {"viz:dead", "pw", 30ms},
                                 Deadline::after(2s));
  ASSERT_TRUE(client.is_ok());

  const std::vector<double> sample(1024, 1.0);  // 8 KiB > window
  int timeouts = 0;
  for (int step = 0; step < 5; ++step) {
    const auto t0 = common::Clock::now();
    auto s = client.value().send(kTagField, sample);
    const auto elapsed = common::Clock::now() - t0;
    EXPECT_LT(elapsed, 200ms) << "send must return within the timeout";
    if (s.code() == StatusCode::kTimeout) ++timeouts;
  }
  EXPECT_GE(timeouts, 3);  // the window (4 KiB) fills after the first sends
}

TEST(VisitGuarantee, RequestTimesOutWhenServerStalls) {
  Fixture f;
  auto listener = f.net.listen("viz:stall");
  net::ConnectionPtr keep;
  std::jthread viz([&] {
    auto conn = listener.value()->accept(Deadline::after(2s));
    ASSERT_TRUE(conn.is_ok());
    ASSERT_TRUE(
        handshake_accept(*conn.value(), "pw", Deadline::after(2s)).is_ok());
    keep = conn.value();  // never serves the request
  });
  auto client = SimClient::connect(f.net, {"viz:stall", "pw", 50ms},
                                   Deadline::after(2s));
  ASSERT_TRUE(client.is_ok());
  const auto t0 = common::Clock::now();
  auto param = client.value().request<double>(kTagMiscibility);
  const auto elapsed = common::Clock::now() - t0;
  ASSERT_FALSE(param.is_ok());
  EXPECT_EQ(param.status().code(), StatusCode::kTimeout);
  EXPECT_LT(elapsed, 500ms);
}

TEST(VisitGuarantee, StaleReplyIsSkippedByNextRequest) {
  // A reply that arrives after its request timed out must not be mistaken
  // for the answer to the *next* request of a different tag.
  Fixture f;
  auto server = VizServer::listen(f.net, {"viz:stale", "pw"});
  std::jthread viz([&] {
    auto session = server.value().accept(Deadline::after(2s));
    ASSERT_TRUE(session.is_ok());
    // Delay answering so the first request times out client-side.
    std::this_thread::sleep_for(120ms);
    session.value().set_parameter<double>(1, {1.0});
    session.value().set_parameter<double>(2, {2.0});
    for (;;) {
      auto event = session.value().serve(Deadline::after(1s));
      if (!event.is_ok() ||
          event.value().kind == SimSession::Event::Kind::kBye)
        break;
    }
  });
  auto client = SimClient::connect(f.net, {"viz:stale", "pw", 60ms},
                                   Deadline::after(2s));
  ASSERT_TRUE(client.is_ok());
  auto first = client.value().request<double>(1);  // times out
  EXPECT_FALSE(first.is_ok());
  std::this_thread::sleep_for(150ms);  // stale reply for tag 1 arrives
  auto second = client.value().request<double>(2, Deadline::after(500ms));
  ASSERT_TRUE(second.is_ok());
  ASSERT_EQ(second.value().size(), 1u);
  EXPECT_DOUBLE_EQ(second.value()[0], 2.0);  // not the stale 1.0
  client.value().disconnect();
}

TEST(VisitGuarantee, SimSurvivesServerVanishing) {
  Fixture f;
  auto server = VizServer::listen(f.net, {"viz:gone", "pw"});
  auto session_holder = std::make_shared<common::Result<SimSession>>(
      common::Status{StatusCode::kUnavailable, "pending"});
  std::jthread viz([&] {
    *session_holder = server.value().accept(Deadline::after(2s));
    ASSERT_TRUE(session_holder->is_ok());
  });
  auto client =
      SimClient::connect(f.net, {"viz:gone", "pw", 50ms}, Deadline::after(2s));
  ASSERT_TRUE(client.is_ok());
  viz.join();
  session_holder->value().close();  // visualization crashes
  // The sim keeps calling send; after the close propagates, calls fail fast
  // with kClosed and never block.
  for (int i = 0; i < 3; ++i) {
    const auto t0 = common::Clock::now();
    (void)client.value().send(kTagField, std::vector<float>(100, 1.f));
    EXPECT_LT(common::Clock::now() - t0, 200ms);
  }
  EXPECT_FALSE(client.value().connected());
}

// ------------------------------------------------------------ multiplexer --

struct MuxFixture {
  net::InProcNetwork net;
  std::unique_ptr<Multiplexer> mux;

  MuxFixture() {
    Multiplexer::Options o;
    o.sim_address = "mux:sim";
    o.viewer_address = "mux:viewer";
    o.password = "pw";
    auto r = Multiplexer::start(net, o);
    EXPECT_TRUE(r.is_ok());
    mux = std::move(r).value();
  }

  SimClient connect_sim() {
    auto c = SimClient::connect(net, {"mux:sim", "pw", 200ms},
                                Deadline::after(2s));
    EXPECT_TRUE(c.is_ok());
    return std::move(c).value();
  }

  ViewerClient connect_viewer() {
    auto v = ViewerClient::connect(net, {"mux:viewer", "pw", 200ms},
                                   Deadline::after(2s));
    EXPECT_TRUE(v.is_ok());
    return std::move(v).value();
  }
};

/// Drains viewer events until one of `kind` arrives.
template <typename Pred>
common::Result<ViewerClient::Event> poll_until(ViewerClient& viewer,
                                               Pred pred,
                                               common::Duration budget = 2s) {
  const auto deadline = Deadline::after(budget);
  for (;;) {
    auto e = viewer.poll(deadline);
    if (!e.is_ok()) return e;
    if (pred(e.value())) return e;
  }
}

TEST(Multiplexer, FirstViewerBecomesMaster) {
  MuxFixture f;
  auto v1 = f.connect_viewer();
  auto role = poll_until(v1, [](const ViewerClient::Event& e) {
    return e.kind == ViewerClient::Event::Kind::kRole;
  });
  ASSERT_TRUE(role.is_ok());
  EXPECT_EQ(role.value().role, "master");
  EXPECT_TRUE(v1.is_master());
  auto v2 = f.connect_viewer();
  auto role2 = poll_until(v2, [](const ViewerClient::Event& e) {
    return e.kind == ViewerClient::Event::Kind::kRole;
  });
  ASSERT_TRUE(role2.is_ok());
  EXPECT_EQ(role2.value().role, "viewer");
  EXPECT_EQ(f.mux->viewer_count(), 2u);
}

TEST(Multiplexer, SamplesFanOutToAllViewers) {
  MuxFixture f;
  auto v1 = f.connect_viewer();
  auto v2 = f.connect_viewer();
  auto v3 = f.connect_viewer();
  auto sim = f.connect_sim();
  // The handshake completes slightly before the multiplexer registers the
  // viewer; wait for registration so the broadcast counts all three.
  const auto reg_deadline = Deadline::after(2s);
  while (f.mux->viewer_count() < 3 && !reg_deadline.has_expired()) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_EQ(f.mux->viewer_count(), 3u);

  const std::vector<float> sample{1.f, 2.f, 3.f};
  ASSERT_TRUE(sim.send(kTagField, sample).is_ok());

  for (ViewerClient* v : {&v1, &v2, &v3}) {
    auto e = poll_until(*v, [](const ViewerClient::Event& e) {
      return e.kind == ViewerClient::Event::Kind::kData && e.tag == kTagField;
    });
    ASSERT_TRUE(e.is_ok());
    auto values = v->extract<float>(e.value());
    ASSERT_TRUE(values.is_ok());
    EXPECT_EQ(values.value(), sample);
  }
  // The counter increments after the delivery a viewer just observed, so
  // give it a moment to settle.
  const auto stats_deadline = Deadline::after(2s);
  while (f.mux->stats().samples_out < 3 && !stats_deadline.has_expired()) {
    std::this_thread::sleep_for(2ms);
  }
  EXPECT_EQ(f.mux->stats().samples_in, 1u);
  EXPECT_EQ(f.mux->stats().samples_out, 3u);
}

TEST(Multiplexer, OnlyMasterSteers) {
  MuxFixture f;
  auto master = f.connect_viewer();
  (void)poll_until(master, [](const ViewerClient::Event& e) {
    return e.kind == ViewerClient::Event::Kind::kRole;
  });
  auto bystander = f.connect_viewer();
  (void)poll_until(bystander, [](const ViewerClient::Event& e) {
    return e.kind == ViewerClient::Event::Kind::kRole;
  });
  auto sim = f.connect_sim();

  ASSERT_TRUE(master.steer<double>(kTagMiscibility, {0.5}).is_ok());
  ASSERT_TRUE(bystander.steer<double>(kTagMiscibility, {99.0}).is_ok());

  // Wait until the master's update is registered.
  const auto deadline = Deadline::after(2s);
  while (f.mux->stats().steers_accepted == 0 && !deadline.has_expired()) {
    std::this_thread::sleep_for(5ms);
  }
  while (f.mux->stats().steers_rejected == 0 && !deadline.has_expired()) {
    std::this_thread::sleep_for(5ms);
  }
  auto param = sim.request<double>(kTagMiscibility, Deadline::after(1s));
  ASSERT_TRUE(param.is_ok());
  ASSERT_EQ(param.value().size(), 1u);
  EXPECT_DOUBLE_EQ(param.value()[0], 0.5);  // the bystander's 99 was dropped
  EXPECT_EQ(f.mux->stats().steers_rejected, 1u);
}

TEST(Multiplexer, MasterHandover) {
  MuxFixture f;
  auto v1 = f.connect_viewer();
  (void)poll_until(v1, [](const ViewerClient::Event& e) {
    return e.kind == ViewerClient::Event::Kind::kRole;
  });
  auto v2 = f.connect_viewer();
  (void)poll_until(v2, [](const ViewerClient::Event& e) {
    return e.kind == ViewerClient::Event::Kind::kRole;
  });
  EXPECT_TRUE(v1.is_master());
  EXPECT_FALSE(v2.is_master());

  ASSERT_TRUE(v2.take_master().is_ok());
  auto promoted = poll_until(v2, [](const ViewerClient::Event& e) {
    return e.kind == ViewerClient::Event::Kind::kRole && e.role == "master";
  });
  ASSERT_TRUE(promoted.is_ok());
  auto demoted = poll_until(v1, [](const ViewerClient::Event& e) {
    return e.kind == ViewerClient::Event::Kind::kRole && e.role == "viewer";
  });
  ASSERT_TRUE(demoted.is_ok());
  EXPECT_TRUE(v2.is_master());
  EXPECT_FALSE(v1.is_master());
}

TEST(Multiplexer, MasterDisconnectPromotesSurvivor) {
  MuxFixture f;
  auto v1 = f.connect_viewer();
  (void)poll_until(v1, [](const ViewerClient::Event& e) {
    return e.kind == ViewerClient::Event::Kind::kRole;
  });
  auto v2 = f.connect_viewer();
  (void)poll_until(v2, [](const ViewerClient::Event& e) {
    return e.kind == ViewerClient::Event::Kind::kRole;
  });
  v1.disconnect();
  auto promoted = poll_until(v2, [](const ViewerClient::Event& e) {
    return e.kind == ViewerClient::Event::Kind::kRole && e.role == "master";
  });
  ASSERT_TRUE(promoted.is_ok());
  EXPECT_EQ(f.mux->viewer_count(), 1u);
}

TEST(Multiplexer, TcpViewersAreHostedWithoutPumpThreads) {
  net::TcpNetwork tcp;
  Multiplexer::Options o;
  o.sim_address = "0";  // kernel-assigned loopback ports
  o.viewer_address = "0";
  o.password = "pw";
  o.fanout_shards = 1;
  auto r = Multiplexer::start(tcp, o);
  ASSERT_TRUE(r.is_ok());
  auto& mux = *r.value();

  const std::size_t baseline_threads = mux.stats().service_threads;
  constexpr std::size_t kViewers = 8;
  std::vector<ViewerClient> viewers;
  for (std::size_t i = 0; i < kViewers; ++i) {
    auto v = ViewerClient::connect(tcp, {mux.viewer_address(), "pw", 200ms},
                                   Deadline::after(5s));
    ASSERT_TRUE(v.is_ok());
    viewers.push_back(std::move(v).value());
  }
  const auto reg_deadline = Deadline::after(5s);
  while (mux.viewer_count() < kViewers && !reg_deadline.has_expired()) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_EQ(mux.viewer_count(), kViewers);
  // Every TCP viewer lives on the event host: no pump threads, no growth.
  EXPECT_EQ(mux.stats().event_host.hosted, kViewers);
  EXPECT_EQ(mux.stats().service_threads, baseline_threads);

  // Roles flow through the hosted outbound path; find the master.
  ViewerClient* master = nullptr;
  for (auto& v : viewers) {
    auto role = poll_until(v, [](const ViewerClient::Event& e) {
      return e.kind == ViewerClient::Event::Kind::kRole;
    });
    ASSERT_TRUE(role.is_ok());
    if (role.value().role == "master") master = &v;
  }
  ASSERT_NE(master, nullptr);

  // Broadcast reaches every hosted viewer.
  auto sim = SimClient::connect(tcp, {mux.sim_address(), "pw", 200ms},
                                Deadline::after(5s));
  ASSERT_TRUE(sim.is_ok());
  const std::vector<float> sample{4.f, 5.f, 6.f};
  ASSERT_TRUE(sim.value().send(kTagField, sample).is_ok());
  for (auto& v : viewers) {
    auto e = poll_until(v, [](const ViewerClient::Event& e) {
      return e.kind == ViewerClient::Event::Kind::kData && e.tag == kTagField;
    }, 5s);
    ASSERT_TRUE(e.is_ok());
    auto values = v.extract<float>(e.value());
    ASSERT_TRUE(values.is_ok());
    EXPECT_EQ(values.value(), sample);
  }

  // Steering arrives via the poller's ingress path (on_viewer_bytes).
  ASSERT_TRUE(master->steer<double>(kTagMiscibility, {0.25}).is_ok());
  const auto steer_deadline = Deadline::after(5s);
  while (mux.stats().steers_accepted == 0 && !steer_deadline.has_expired()) {
    std::this_thread::sleep_for(2ms);
  }
  auto param = sim.value().request<double>(kTagMiscibility,
                                           Deadline::after(2s));
  ASSERT_TRUE(param.is_ok());
  ASSERT_EQ(param.value().size(), 1u);
  EXPECT_DOUBLE_EQ(param.value()[0], 0.25);

  // A hosted master's disconnect promotes a survivor (poller close path).
  master->disconnect();
  ViewerClient* survivor =
      &viewers.front() == master ? &viewers[1] : &viewers.front();
  auto promoted = poll_until(*survivor, [](const ViewerClient::Event& e) {
    return e.kind == ViewerClient::Event::Kind::kRole && e.role == "master";
  }, 5s);
  ASSERT_TRUE(promoted.is_ok());
}

TEST(Multiplexer, StatsSurfacePerShardFanoutCounters) {
  net::InProcNetwork net;
  Multiplexer::Options o;
  o.sim_address = "mux2:sim";
  o.viewer_address = "mux2:viewer";
  o.password = "pw";
  o.fanout_shards = 2;
  auto r = Multiplexer::start(net, o);
  ASSERT_TRUE(r.is_ok());
  auto& mux = *r.value();

  auto v1 = ViewerClient::connect(net, {"mux2:viewer", "pw", 200ms},
                                  Deadline::after(2s));
  auto v2 = ViewerClient::connect(net, {"mux2:viewer", "pw", 200ms},
                                  Deadline::after(2s));
  ASSERT_TRUE(v1.is_ok() && v2.is_ok());
  auto sim = SimClient::connect(net, {"mux2:sim", "pw", 200ms},
                                Deadline::after(2s));
  ASSERT_TRUE(sim.is_ok());
  const auto reg_deadline = Deadline::after(2s);
  while (mux.viewer_count() < 2 && !reg_deadline.has_expired()) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_EQ(mux.viewer_count(), 2u);

  ASSERT_TRUE(sim.value().send<float>(kTagField, {1.f}).is_ok());
  const auto deadline = Deadline::after(2s);
  while (mux.stats().samples_out < 2 && !deadline.has_expired()) {
    std::this_thread::sleep_for(2ms);
  }

  const auto stats = mux.stats();
  ASSERT_EQ(stats.fanout.shards.size(), 2u);  // one entry per worker shard
  EXPECT_EQ(stats.fanout.subscribers, 2u);
  // Sequential viewer ids land on distinct shards.
  EXPECT_EQ(stats.fanout.shards[0].subscribers, 1u);
  EXPECT_EQ(stats.fanout.shards[1].subscribers, 1u);
  // The aggregate is the sum of the per-shard rows, and the historical
  // sample counters are fed from the fan-out accounting.
  std::uint64_t delivered = 0;
  for (const auto& s : stats.fanout.shards) delivered += s.data_delivered;
  EXPECT_EQ(delivered, stats.fanout.data_delivered);
  EXPECT_EQ(stats.samples_out, stats.fanout.data_delivered);
  EXPECT_EQ(stats.samples_out, 2u);
  // Role notices travel as control frames through the same queues.
  EXPECT_GE(stats.fanout.control_delivered, 2u);

  v1.value().disconnect();
  v2.value().disconnect();
  sim.value().disconnect();
  mux.stop();
}

TEST(Multiplexer, SlowViewerDoesNotStallOtherShard) {
  net::InProcNetwork net;
  Multiplexer::Options o;
  o.sim_address = "mux3:sim";
  o.viewer_address = "mux3:viewer";
  o.password = "pw";
  o.fanout_shards = 2;
  // Large enough that the fast viewer never drops a frame of the burst
  // below; the slow viewer still overflows (it also eats replay + role).
  o.viewer_queue_capacity = 16;
  // Generous per-send timeout so the latency bound asserted below has wide
  // margins on both sides even under TSan: the slow viewer's shard needs
  // >= 10 x 100ms to grind through the burst, the fast shard only CPU time.
  o.forward_timeout = std::chrono::milliseconds(100);
  auto r = Multiplexer::start(net, o);
  ASSERT_TRUE(r.is_ok());
  auto& mux = *r.value();

  // The "slow" viewer connects with a tiny receive window and never polls:
  // once the handshake fills it, sends to it block until the forward
  // timeout, wedging only its shard. (The window must still fit the
  // handshake ack, which is read exactly once.)
  net::ConnectOptions slow_options;
  slow_options.recv_capacity_bytes = 256;
  auto slow_conn =
      net.connect("mux3:viewer", Deadline::after(2s), slow_options);
  ASSERT_TRUE(slow_conn.is_ok());
  const auto hello = wire::make_control_message(
      kTagHello, std::string("HELLO ") + kProtocolVersion + " pw");
  ASSERT_TRUE(
      slow_conn.value()->send(hello.encode(), Deadline::after(2s)).is_ok());
  ASSERT_TRUE(slow_conn.value()->recv(Deadline::after(2s)).is_ok());
  // From here on the slow viewer never reads: its window fills and every
  // further send to it burns the full forward timeout.
  auto fast = ViewerClient::connect(net, {"mux3:viewer", "pw", 200ms},
                                    Deadline::after(2s));
  ASSERT_TRUE(fast.is_ok());
  auto sim = SimClient::connect(net, {"mux3:sim", "pw", 200ms},
                                Deadline::after(2s));
  ASSERT_TRUE(sim.is_ok());
  const auto reg_deadline = Deadline::after(2s);
  while (mux.viewer_count() < 2 && !reg_deadline.has_expired()) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_EQ(mux.viewer_count(), 2u);
  // Viewer ids 1 and 2 hash to different shards of the two-shard pool.
  ASSERT_NE(common::ShardedFanout::shard_of(1, 2),
            common::ShardedFanout::shard_of(2, 2));

  // Publish a burst; the fast viewer must see every sample promptly even
  // though the slow one blocks its own shard on every send.
  constexpr int kSamples = 10;
  const auto t0 = common::Clock::now();
  for (int i = 0; i < kSamples; ++i) {
    ASSERT_TRUE(
        sim.value().send<float>(kTagField, {static_cast<float>(i)}).is_ok());
  }
  int received = 0;
  while (received < kSamples) {
    auto e = poll_until(fast.value(), [](const ViewerClient::Event& e) {
      return e.kind == ViewerClient::Event::Kind::kData && e.tag == kTagField;
    });
    ASSERT_TRUE(e.is_ok());
    ++received;
  }
  const auto fast_latency = common::Clock::now() - t0;
  // Far below the >= 1s of send timeouts the slow viewer's shard burns for
  // the same burst, with headroom for sanitizer/scheduler noise.
  EXPECT_LT(fast_latency, std::chrono::milliseconds(500));

  // The slow viewer's missed samples must surface as the service-level
  // queue_drops total (registry bridge over the per-shard counters), not
  // just inside the per-shard breakdown. Its shard grinds through the
  // burst one forward-timeout at a time, so wait for the first drop to be
  // accounted rather than sampling a race.
  const auto drops_deadline = Deadline::after(10s);
  auto queue_drops = [&]() -> std::uint64_t {
    const auto snap = mux.metrics().snapshot();
    for (const auto& counter : snap.counters) {
      if (counter.name == "queue_drops") return counter.value;
    }
    return 0;
  };
  while (queue_drops() == 0 && !drops_deadline.has_expired()) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_GT(queue_drops(), 0u);
  // The slow shard is still grinding (and dropping) while we read, so
  // sandwich the registry value between two stats() reads instead of
  // expecting exact equality against a moving counter.
  const auto drops_before = mux.stats().fanout.data_dropped +
                            mux.stats().event_host.data_dropped;
  const auto drops_bridged = queue_drops();
  const auto drops_after = mux.stats().fanout.data_dropped +
                           mux.stats().event_host.data_dropped;
  EXPECT_GE(drops_bridged, drops_before);
  EXPECT_LE(drops_bridged, drops_after);

  slow_conn.value()->close();
  fast.value().disconnect();
  sim.value().disconnect();
  mux.stop();
}

TEST(Multiplexer, LateJoinerReceivesLastSample) {
  MuxFixture f;
  auto sim = f.connect_sim();
  const std::vector<double> sample{42.0, 43.0};
  ASSERT_TRUE(sim.send(kTagField, sample).is_ok());
  // Ensure the mux has processed the sample before the viewer joins.
  const auto deadline = Deadline::after(2s);
  while (f.mux->stats().samples_in == 0 && !deadline.has_expired()) {
    std::this_thread::sleep_for(5ms);
  }
  auto late = f.connect_viewer();
  auto e = poll_until(late, [](const ViewerClient::Event& e) {
    return e.kind == ViewerClient::Event::Kind::kData && e.tag == kTagField;
  });
  ASSERT_TRUE(e.is_ok());
  auto values = late.extract<double>(e.value());
  ASSERT_TRUE(values.is_ok());
  EXPECT_EQ(values.value(), sample);
}

TEST(Multiplexer, SimRequestAnsweredWithNoViewers) {
  // The sim's round trip must complete even with zero viewers attached.
  MuxFixture f;
  auto sim = f.connect_sim();
  auto param = sim.request<double>(kTagMiscibility, Deadline::after(1s));
  ASSERT_TRUE(param.is_ok());
  EXPECT_TRUE(param.value().empty());
}

// ---------------------------------------------------------- control server --

TEST(ControlServer, ActorUpdatesReachAllOthers) {
  net::InProcNetwork net;
  auto server = ControlServer::start(net, {"ctl:1", "pw", 50ms});
  ASSERT_TRUE(server.is_ok());
  auto actor = ControlClient::connect(net, "ctl:1", "pw", "actor",
                                      Deadline::after(2s));
  auto obs1 = ControlClient::connect(net, "ctl:1", "pw", "observer",
                                     Deadline::after(2s));
  auto obs2 = ControlClient::connect(net, "ctl:1", "pw", "observer",
                                     Deadline::after(2s));
  ASSERT_TRUE(actor.is_ok() && obs1.is_ok() && obs2.is_ok());

  // Wait for all three registrations.
  const auto deadline = Deadline::after(2s);
  while (server.value()->participant_count() < 3 && !deadline.has_expired()) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_TRUE(actor.value().publish("VIEW 1 0 0 0", Deadline::after(1s)).is_ok());
  auto r1 = obs1.value().receive(Deadline::after(1s));
  auto r2 = obs2.value().receive(Deadline::after(1s));
  ASSERT_TRUE(r1.is_ok());
  ASSERT_TRUE(r2.is_ok());
  EXPECT_EQ(r1.value(), "VIEW 1 0 0 0");
  EXPECT_EQ(r2.value(), "VIEW 1 0 0 0");
}

TEST(ControlServer, ObserverPublishIsRejected) {
  net::InProcNetwork net;
  auto server = ControlServer::start(net, {"ctl:2", "pw", 50ms});
  ASSERT_TRUE(server.is_ok());
  auto actor = ControlClient::connect(net, "ctl:2", "pw", "actor",
                                      Deadline::after(2s));
  auto obs = ControlClient::connect(net, "ctl:2", "pw", "observer",
                                    Deadline::after(2s));
  ASSERT_TRUE(actor.is_ok() && obs.is_ok());
  const auto deadline = Deadline::after(2s);
  while (server.value()->participant_count() < 2 && !deadline.has_expired()) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_TRUE(obs.value().publish("VIEW hacked", Deadline::after(1s)).is_ok());
  auto r = actor.value().receive(Deadline::after(200ms));
  EXPECT_FALSE(r.is_ok());  // nothing relayed
  while (server.value()->stats().updates_rejected == 0 &&
         !deadline.has_expired()) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(server.value()->stats().updates_rejected, 1u);
  EXPECT_EQ(server.value()->stats().updates_relayed, 0u);
}

TEST(ControlServer, ParticipantDepartureIsHandled) {
  net::InProcNetwork net;
  auto server = ControlServer::start(net, {"ctl:3", "pw", 50ms});
  ASSERT_TRUE(server.is_ok());
  auto a = ControlClient::connect(net, "ctl:3", "pw", "actor",
                                  Deadline::after(2s));
  auto b = ControlClient::connect(net, "ctl:3", "pw", "observer",
                                  Deadline::after(2s));
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  auto deadline = Deadline::after(2s);
  while (server.value()->participant_count() < 2 && !deadline.has_expired()) {
    std::this_thread::sleep_for(5ms);
  }
  b.value().disconnect();
  deadline = Deadline::after(2s);
  while (server.value()->participant_count() > 1 && !deadline.has_expired()) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(server.value()->participant_count(), 1u);
  // Actor can still publish without error.
  EXPECT_TRUE(a.value().publish("VIEW x", Deadline::after(1s)).is_ok());
}

TEST(ControlServer, TcpPopulationKeepsThreadsFlat) {
  // A full TCP fleet lands on the shared readiness host: the thread count
  // with sixteen participants matches the count with one, and the bound is
  // one a thread-per-connection design cannot meet.
  net::TcpNetwork net;
  auto server = ControlServer::start(net, {"0", "pw", 50ms});
  ASSERT_TRUE(server.is_ok());
  const std::string address = server.value()->address();
  auto actor = ControlClient::connect(net, address, "pw", "actor",
                                      Deadline::after(5s));
  ASSERT_TRUE(actor.is_ok());
  auto deadline = Deadline::after(5s);
  while (server.value()->participant_count() < 1 && !deadline.has_expired()) {
    std::this_thread::sleep_for(2ms);
  }
  const std::size_t threads_with_one = server.value()->service_threads();

  std::vector<ControlClient> observers;
  for (int i = 0; i < 15; ++i) {
    auto obs = ControlClient::connect(net, address, "pw", "observer",
                                      Deadline::after(5s));
    ASSERT_TRUE(obs.is_ok());
    observers.push_back(std::move(obs).value());
  }
  deadline = Deadline::after(5s);
  while (server.value()->participant_count() < 16 && !deadline.has_expired()) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_EQ(server.value()->participant_count(), 16u);
  EXPECT_EQ(server.value()->service_threads(), threads_with_one);
  EXPECT_LE(server.value()->service_threads(), 2u);

  // The populated fleet still relays.
  ASSERT_TRUE(actor.value().publish("VIEW fleet", Deadline::after(2s)).is_ok());
  for (auto& obs : observers) {
    auto r = obs.receive(Deadline::after(2s));
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value(), "VIEW fleet");
  }

  server.value()->stop();
  server.value()->stop();  // idempotent
  EXPECT_FALSE(ControlClient::connect(net, address, "pw", "observer",
                                      Deadline::after(200ms))
                   .is_ok());
}

TEST(ControlServer, InProcPopulationSharesOneFallbackPump) {
  // Handle-less connections cannot ride epoll; they share the connection
  // host's single fallback pump instead of one thread each.
  net::InProcNetwork net;
  auto server = ControlServer::start(net, {"ctl:flat", "pw", 50ms});
  ASSERT_TRUE(server.is_ok());
  std::vector<ControlClient> fleet;
  for (int i = 0; i < 8; ++i) {
    auto c = ControlClient::connect(net, "ctl:flat", "pw",
                                    i == 0 ? "actor" : "observer",
                                    Deadline::after(5s));
    ASSERT_TRUE(c.is_ok());
    fleet.push_back(std::move(c).value());
  }
  const auto deadline = Deadline::after(5s);
  while (server.value()->participant_count() < 8 && !deadline.has_expired()) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_EQ(server.value()->participant_count(), 8u);
  // In-process accept pump + epoll poller + shared fallback pump.
  EXPECT_LE(server.value()->service_threads(), 3u);
  server.value()->stop();
  server.value()->stop();
}

}  // namespace
}  // namespace cs::visit
