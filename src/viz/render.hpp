// Software renderer: z-buffered triangles, lines, and particle glyphs.
//
// Stands in for the SGI Onyx graphics pipes: fast enough to measure the
// feedback loops of paper section 4, honest enough to produce real images
// (the PEPC example renders "particles displayed as points, diamond glyphs
// and vectors ... tree domains as transparent or solid boxes").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "viz/camera.hpp"
#include "viz/image.hpp"
#include "viz/mesh.hpp"

namespace cs::viz {

/// Glyph styles of the particle display (paper section 3.4).
enum class GlyphStyle { kPoint, kDiamond, kVector };

struct ParticleSprite {
  common::Vec3 position;
  common::Vec3 velocity;  ///< used by kVector
  Color color;
};

class Renderer {
 public:
  Renderer(int width, int height) : frame_(width, height), depth_() {
    depth_.assign(static_cast<std::size_t>(width) *
                      static_cast<std::size_t>(height),
                  1e30);
  }

  void clear(Color background = {12, 12, 24});

  void draw_mesh(const TriangleMesh& mesh, const Camera& camera, Color base);

  void draw_particles(std::span<const ParticleSprite> particles,
                      const Camera& camera, GlyphStyle style,
                      int size_pixels = 2);

  /// Wireframe axis-aligned box (domain boxes of the tree code).
  void draw_box(const common::Vec3& lo, const common::Vec3& hi,
                const Camera& camera, Color color);

  void draw_line(const common::Vec3& a, const common::Vec3& b,
                 const Camera& camera, Color color);

  const Image& frame() const noexcept { return frame_; }
  Image& frame() noexcept { return frame_; }

 private:
  void put(int x, int y, double depth, Color color);

  Image frame_;
  std::vector<double> depth_;
};

}  // namespace cs::viz
