#include "sim/pepc/tree.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

namespace cs::pepc {

using common::Vec3;

namespace {
constexpr int kMaxDepth = 32;
}

void Octree::build(std::span<const Particle> particles) {
  particles_ = particles;
  nodes_.clear();
  order_.resize(particles.size());
  std::iota(order_.begin(), order_.end(), 0u);
  interactions_.store(0, std::memory_order_relaxed);
  if (particles.empty()) {
    nodes_.push_back(TreeNode{});
    return;
  }

  // Root cube: centered bounding cube of all particles.
  Vec3 lo = particles[0].position(), hi = lo;
  for (const auto& p : particles) {
    lo.x = std::min(lo.x, p.pos[0]);
    lo.y = std::min(lo.y, p.pos[1]);
    lo.z = std::min(lo.z, p.pos[2]);
    hi.x = std::max(hi.x, p.pos[0]);
    hi.y = std::max(hi.y, p.pos[1]);
    hi.z = std::max(hi.z, p.pos[2]);
  }
  TreeNode root;
  root.center = (lo + hi) * 0.5;
  root.half_size =
      0.5 * std::max({hi.x - lo.x, hi.y - lo.y, hi.z - lo.z, 1e-9});
  root.begin = 0;
  root.end = static_cast<std::uint32_t>(particles.size());
  nodes_.push_back(root);
  subdivide(0, 0);
  compute_moments(0);
}

void Octree::subdivide(std::uint32_t node_index, int depth) {
  TreeNode node = nodes_[node_index];  // copy: nodes_ may reallocate below
  const auto count = node.end - node.begin;
  if (count <= static_cast<std::uint32_t>(config_.leaf_capacity) ||
      depth >= kMaxDepth) {
    return;
  }

  // Partition the index range into 8 octants around the node center.
  const auto octant_of = [&](std::uint32_t pi) {
    const auto& p = particles_[pi];
    return (p.pos[0] >= node.center.x ? 1 : 0) |
           (p.pos[1] >= node.center.y ? 2 : 0) |
           (p.pos[2] >= node.center.z ? 4 : 0);
  };
  std::array<std::uint32_t, 9> bounds{};
  {
    std::array<std::uint32_t, 8> counts{};
    for (auto i = node.begin; i < node.end; ++i) {
      ++counts[static_cast<std::size_t>(octant_of(order_[i]))];
    }
    bounds[0] = node.begin;
    for (int o = 0; o < 8; ++o) {
      bounds[static_cast<std::size_t>(o) + 1] =
          bounds[static_cast<std::size_t>(o)] +
          counts[static_cast<std::size_t>(o)];
    }
    // In-place bucket partition.
    std::array<std::uint32_t, 8> cursor;
    std::copy(bounds.begin(), bounds.end() - 1, cursor.begin());
    for (int o = 0; o < 8; ++o) {
      auto& cur = cursor[static_cast<std::size_t>(o)];
      const auto end = bounds[static_cast<std::size_t>(o) + 1];
      while (cur < end) {
        const int target = octant_of(order_[cur]);
        if (target == o) {
          ++cur;
        } else {
          std::swap(order_[cur], order_[cursor[static_cast<std::size_t>(target)]]);
          ++cursor[static_cast<std::size_t>(target)];
        }
      }
    }
  }

  const auto first_child = static_cast<std::uint32_t>(nodes_.size());
  nodes_[node_index].first_child = first_child;
  const double child_half = node.half_size * 0.5;
  for (int o = 0; o < 8; ++o) {
    TreeNode child;
    child.center = node.center + Vec3{(o & 1) ? child_half : -child_half,
                                      (o & 2) ? child_half : -child_half,
                                      (o & 4) ? child_half : -child_half};
    child.half_size = child_half;
    child.begin = bounds[static_cast<std::size_t>(o)];
    child.end = bounds[static_cast<std::size_t>(o) + 1];
    nodes_.push_back(child);
  }
  for (int o = 0; o < 8; ++o) {
    const auto ci = first_child + static_cast<std::uint32_t>(o);
    if (nodes_[ci].end > nodes_[ci].begin) subdivide(ci, depth + 1);
  }
}

void Octree::compute_moments(std::uint32_t node_index) {
  TreeNode& node = nodes_[node_index];
  node.monopole = 0.0;
  node.dipole = Vec3{};
  if (node.first_child == 0) {
    for (auto i = node.begin; i < node.end; ++i) {
      const auto& p = particles_[order_[i]];
      node.monopole += p.charge;
      node.dipole += p.charge * (p.position() - node.center);
    }
    return;
  }
  for (int o = 0; o < 8; ++o) {
    const auto ci = node.first_child + static_cast<std::uint32_t>(o);
    if (nodes_[ci].end == nodes_[ci].begin) continue;
    compute_moments(ci);
    node.monopole += nodes_[ci].monopole;
    node.dipole += nodes_[ci].dipole +
                   nodes_[ci].monopole * (nodes_[ci].center - node.center);
  }
}

namespace {

/// Plummer-softened contribution of a point charge q at displacement r.
inline void point_field(const Vec3& r, double q, double eps2, Vec3& field,
                        double& potential) {
  const double r2 = norm2(r) + eps2;
  const double inv_r = 1.0 / std::sqrt(r2);
  const double inv_r3 = inv_r / r2;
  field += q * inv_r3 * r;
  potential += q * inv_r;
}

/// Monopole+dipole contribution of a cell about its center.
inline void cell_field(const Vec3& r, double mono, const Vec3& dip,
                       double eps2, Vec3& field, double& potential) {
  const double r2 = norm2(r) + eps2;
  const double inv_r = 1.0 / std::sqrt(r2);
  const double inv_r2 = 1.0 / r2;
  const double inv_r3 = inv_r * inv_r2;
  field += mono * inv_r3 * r;
  potential += mono * inv_r;
  // Dipole: phi = d.r / r^3 ; E = (3 (d.r) r / r^2 - d) / r^3.
  const double dr = dot(dip, r);
  field += (3.0 * dr * inv_r2 * r - dip) * inv_r3;
  potential += dr * inv_r3;
}

}  // namespace

Vec3 Octree::field_at(const Vec3& where, std::size_t skip) const {
  Vec3 field{};
  double potential = 0.0;
  const double eps2 = config_.softening * config_.softening;
  // Interaction counting stays local to the traversal and is published once
  // at the end: a shared fetch_add in this inner loop would have every force
  // worker ping-ponging one cache line.
  std::size_t interactions = 0;
  std::vector<std::uint32_t> stack{0};
  while (!stack.empty()) {
    const TreeNode& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.end == node.begin) continue;
    const Vec3 r = where - node.center;
    const double d = norm(r);
    if (node.first_child == 0 ||
        2.0 * node.half_size < config_.theta * d) {
      if (node.first_child == 0) {
        for (auto i = node.begin; i < node.end; ++i) {
          const auto pi = order_[i];
          if (pi == skip) continue;
          const auto& p = particles_[pi];
          point_field(where - p.position(), p.charge, eps2, field, potential);
          ++interactions;
        }
      } else {
        cell_field(r, node.monopole, node.dipole, eps2, field, potential);
        ++interactions;
      }
      continue;
    }
    for (int o = 0; o < 8; ++o) {
      stack.push_back(node.first_child + static_cast<std::uint32_t>(o));
    }
  }
  interactions_.fetch_add(interactions, std::memory_order_relaxed);
  return field;
}

double Octree::potential_at(const Vec3& where, std::size_t skip) const {
  double potential = 0.0;
  Vec3 field{};
  const double eps2 = config_.softening * config_.softening;
  std::vector<std::uint32_t> stack{0};
  while (!stack.empty()) {
    const TreeNode& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.end == node.begin) continue;
    const Vec3 r = where - node.center;
    const double d = norm(r);
    if (node.first_child == 0 ||
        2.0 * node.half_size < config_.theta * d) {
      if (node.first_child == 0) {
        for (auto i = node.begin; i < node.end; ++i) {
          const auto pi = order_[i];
          if (pi == skip) continue;
          const auto& p = particles_[pi];
          point_field(where - p.position(), p.charge, eps2, field, potential);
        }
      } else {
        cell_field(r, node.monopole, node.dipole, eps2, field, potential);
      }
      continue;
    }
    for (int o = 0; o < 8; ++o) {
      stack.push_back(node.first_child + static_cast<std::uint32_t>(o));
    }
  }
  return potential;
}

void Octree::accumulate_forces(std::span<const Particle> particles,
                               std::span<Vec3> forces) const {
  for (std::size_t i = 0; i < particles.size(); ++i) {
    forces[i] = particles[i].charge * field_at(particles[i].position(), i);
  }
}

double Octree::potential_energy(std::span<const Particle> particles) const {
  double energy = 0.0;
  for (std::size_t i = 0; i < particles.size(); ++i) {
    energy += particles[i].charge * potential_at(particles[i].position(), i);
  }
  return 0.5 * energy;
}

}  // namespace cs::pepc
