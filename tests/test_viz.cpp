// Tests for the visualization substrate: camera projection, marching-
// tetrahedra isosurfaces, the software renderer, frame compression, and
// the remote-rendering (VizServer-model) pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "common/rng.hpp"
#include "net/inproc.hpp"
#include "viz/camera.hpp"
#include "viz/compress.hpp"
#include "viz/isosurface.hpp"
#include "viz/remote.hpp"
#include "viz/render.hpp"

namespace cs::viz {
namespace {

using namespace std::chrono_literals;
using common::Deadline;
using common::StatusCode;
using common::Vec3;

// ---------------------------------------------------------------- camera --

TEST(Camera, CenterOfViewProjectsToImageCenter) {
  Camera cam;
  cam.look_at({0, 0, 5}, {0, 0, 0}, {0, 1, 0});
  const auto p = cam.project({0, 0, 0}, 200, 100);
  ASSERT_TRUE(p.visible);
  EXPECT_NEAR(p.x, 100.0, 1e-9);
  EXPECT_NEAR(p.y, 50.0, 1e-9);
  EXPECT_NEAR(p.depth, 5.0, 1e-9);
}

TEST(Camera, PointBehindCameraInvisible) {
  Camera cam;
  cam.look_at({0, 0, 5}, {0, 0, 0}, {0, 1, 0});
  EXPECT_FALSE(cam.project({0, 0, 10}, 100, 100).visible);
}

TEST(Camera, UpIsUp) {
  Camera cam;
  cam.look_at({0, 0, 5}, {0, 0, 0}, {0, 1, 0});
  const auto above = cam.project({0, 1, 0}, 100, 100);
  const auto below = cam.project({0, -1, 0}, 100, 100);
  EXPECT_LT(above.y, below.y);  // screen y grows downward
}

TEST(Camera, SerializeParseRoundTrip) {
  Camera cam;
  cam.look_at({1.5, -2, 3}, {0.25, 0, -1}, {0, 1, 0});
  cam.set_fov_degrees(40);
  auto parsed = Camera::parse(cam.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value(), cam);
  EXPECT_FALSE(Camera::parse("not a camera").is_ok());
}

TEST(Camera, OrbitKeepsDistance) {
  Camera cam;
  cam.look_at({3, 0, 0}, {0, 0, 0}, {0, 1, 0});
  cam.orbit(0.7, 0.3);
  EXPECT_NEAR(norm(cam.eye() - cam.target()), 3.0, 1e-9);
}

// ------------------------------------------------------------ isosurface --

/// Samples a sphere SDF-ish field: value = R - |x - c| (positive inside).
std::vector<float> sphere_field(int n, double radius, Vec3 center) {
  std::vector<float> values(static_cast<std::size_t>(n) * n * n);
  for (int z = 0; z < n; ++z) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const Vec3 p{static_cast<double>(x), static_cast<double>(y),
                     static_cast<double>(z)};
        values[(static_cast<std::size_t>(z) * n + y) * n + x] =
            static_cast<float>(radius - norm(p - center));
      }
    }
  }
  return values;
}

TEST(Isosurface, SphereAreaApproximatelyCorrect) {
  const int n = 24;
  const double radius = 8.0;
  const Vec3 center{11.5, 11.5, 11.5};
  const auto values = sphere_field(n, radius, center);
  ScalarField field{n, n, n, values, {0, 0, 0}, 1.0};
  const TriangleMesh mesh = extract_isosurface(field, 0.0f);
  ASSERT_GT(mesh.triangle_count(), 100u);
  const double expected = 4.0 * std::numbers::pi * radius * radius;
  EXPECT_NEAR(mesh.area(), expected, expected * 0.05);
}

TEST(Isosurface, VerticesLieOnTheIsosurface) {
  const int n = 16;
  const double radius = 5.0;
  const Vec3 center{7.5, 7.5, 7.5};
  const auto values = sphere_field(n, radius, center);
  ScalarField field{n, n, n, values, {0, 0, 0}, 1.0};
  const TriangleMesh mesh = extract_isosurface(field, 0.0f);
  for (const auto& v : mesh.vertices) {
    // Linear interpolation on a radial field: within a cell diagonal.
    EXPECT_NEAR(norm(v - center), radius, 0.2);
  }
}

TEST(Isosurface, EmptyWhenLevelOutsideRange) {
  const int n = 8;
  const auto values = sphere_field(n, 3.0, {3.5, 3.5, 3.5});
  ScalarField field{n, n, n, values, {0, 0, 0}, 1.0};
  EXPECT_EQ(extract_isosurface(field, 1000.0f).triangle_count(), 0u);
  EXPECT_EQ(extract_isosurface(field, -1000.0f).triangle_count(), 0u);
}

TEST(Isosurface, DegenerateFieldProducesNothing) {
  std::vector<float> values(8, 1.0f);
  ScalarField field{2, 2, 2, values, {0, 0, 0}, 1.0};
  EXPECT_EQ(extract_isosurface(field, 0.5f).triangle_count(), 0u);
  ScalarField flat{1, 1, 1, std::span<const float>{values.data(), 1}, {0, 0, 0}, 1.0};
  EXPECT_EQ(extract_isosurface(flat, 0.5f).triangle_count(), 0u);
}

TEST(Isosurface, RespectsOriginAndSpacing) {
  const int n = 12;
  const auto values = sphere_field(n, 4.0, {5.5, 5.5, 5.5});
  ScalarField field{n, n, n, values, {10, 20, 30}, 0.5};
  const TriangleMesh mesh = extract_isosurface(field, 0.0f);
  ASSERT_GT(mesh.vertices.size(), 0u);
  for (const auto& v : mesh.vertices) {
    EXPECT_GE(v.x, 10.0);
    EXPECT_LE(v.x, 10.0 + n * 0.5);
    EXPECT_GE(v.y, 20.0);
  }
}

// ---------------------------------------------------------------- render --

TEST(Render, MeshLeavesPixels) {
  Renderer r(120, 90);
  r.clear();
  TriangleMesh mesh;
  mesh.vertices = {{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}};
  mesh.triangles = {{0, 1, 2}};
  Camera cam;
  cam.look_at({0, 0, 4}, {0, 0, 0}, {0, 1, 0});
  r.draw_mesh(mesh, cam, {255, 0, 0});
  int red_pixels = 0;
  for (const auto& p : r.frame().pixels()) {
    if (p.r > 40 && p.g == 0) ++red_pixels;
  }
  EXPECT_GT(red_pixels, 200);
}

TEST(Render, DepthBufferOccludes) {
  Renderer r(60, 60);
  r.clear();
  Camera cam;
  cam.look_at({0, 0, 5}, {0, 0, 0}, {0, 1, 0});
  TriangleMesh far_mesh, near_mesh;
  far_mesh.vertices = {{-2, -2, -1}, {2, -2, -1}, {0, 2, -1}};
  far_mesh.triangles = {{0, 1, 2}};
  near_mesh.vertices = {{-2, -2, 1}, {2, -2, 1}, {0, 2, 1}};
  near_mesh.triangles = {{0, 1, 2}};
  r.draw_mesh(far_mesh, cam, {0, 255, 0});
  r.draw_mesh(near_mesh, cam, {255, 0, 0});  // nearer: must win
  const Color center = r.frame().at(30, 30);
  EXPECT_GT(center.r, 0);
  EXPECT_EQ(center.g, 0);
}

TEST(Render, GlyphStylesDiffer) {
  Camera cam;
  cam.look_at({0, 0, 5}, {0, 0, 0}, {0, 1, 0});
  std::vector<ParticleSprite> sprites{
      {{0, 0, 0}, {5, 0, 0}, {255, 255, 0}}};
  int counts[3] = {0, 0, 0};
  int i = 0;
  for (GlyphStyle style :
       {GlyphStyle::kPoint, GlyphStyle::kDiamond, GlyphStyle::kVector}) {
    Renderer r(80, 80);
    r.clear({0, 0, 0});
    r.draw_particles(sprites, cam, style, 4);
    for (const auto& p : r.frame().pixels()) {
      if (p.r > 0) ++counts[i];
    }
    ++i;
  }
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[1], counts[0]);  // diamond bigger than point
  EXPECT_GT(counts[2], 1);          // vector adds a trail
}

TEST(Render, BoxWireframeVisible) {
  Renderer r(100, 100);
  r.clear({0, 0, 0});
  Camera cam;
  cam.look_at({4, 3, 5}, {0, 0, 0}, {0, 1, 0});
  r.draw_box({-1, -1, -1}, {1, 1, 1}, cam, {0, 255, 255});
  int lit = 0;
  for (const auto& p : r.frame().pixels()) {
    if (p.g > 0) ++lit;
  }
  EXPECT_GT(lit, 50);
}

// -------------------------------------------------------------- compress --

Image noise_image(int w, int h, std::uint64_t seed) {
  Image img(w, h);
  common::Rng rng{seed};
  for (auto& p : img.pixels()) {
    p = Color{static_cast<std::uint8_t>(rng.next_below(256)),
              static_cast<std::uint8_t>(rng.next_below(256)),
              static_cast<std::uint8_t>(rng.next_below(256))};
  }
  return img;
}

TEST(Compress, KeyFrameRoundTrip) {
  const Image img = noise_image(37, 23, 1);
  auto decoded = decompress_frame(compress_frame(img));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), img);
}

TEST(Compress, FlatFrameCompressesWell) {
  const Image img(320, 240, {10, 20, 30});
  const auto compressed = compress_frame(img);
  EXPECT_LT(compressed.size(), img.byte_size() / 20);
}

TEST(Compress, DeltaOfIdenticalFramesIsTiny) {
  const Image img = noise_image(100, 80, 2);
  const auto delta = compress_frame_delta(img, img);
  EXPECT_LT(delta.size(), img.byte_size() / 50);
  auto decoded = decompress_frame_delta(delta, img);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), img);
}

TEST(Compress, DeltaRoundTripWithSmallChange) {
  Image base = noise_image(64, 64, 3);
  Image next = base;
  next.at(10, 10) = Color{1, 2, 3};
  next.at(40, 50) = Color{4, 5, 6};
  const auto delta = compress_frame_delta(next, base);
  auto decoded = decompress_frame_delta(delta, base);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), next);
  EXPECT_LT(delta.size(), compress_frame(next).size());
}

TEST(Compress, MismatchedBaseFallsBackToKeyFrame) {
  const Image img = noise_image(32, 32, 4);
  const Image wrong_size(16, 16);
  const auto encoded = compress_frame_delta(img, wrong_size);
  // Encoder produced a key frame, so decoding needs no base.
  auto decoded = decompress_frame(encoded);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), img);
}

TEST(Compress, RejectsGarbage) {
  EXPECT_FALSE(decompress_frame(common::Bytes{1, 2, 3}).is_ok());
  common::Bytes header{'K', 0, 0, 0, 8, 0, 0, 0, 8, 3};  // odd RLE payload
  EXPECT_FALSE(decompress_frame(header).is_ok());
}

// ------------------------------------------------------- remote rendering --

TEST(Remote, ViewEventProducesFrame) {
  net::InProcNetwork net;
  auto scene = std::make_shared<SceneStore>();
  TriangleMesh mesh;
  mesh.vertices = {{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}};
  mesh.triangles = {{0, 1, 2}};
  scene->set_mesh(mesh, {200, 100, 50});

  auto server = RemoteRenderServer::start(net, scene, {"vizserver:1", 160, 120, 2ms});
  ASSERT_TRUE(server.is_ok());
  auto client = RemoteRenderClient::connect(net, "vizserver:1", Deadline::after(2s));
  ASSERT_TRUE(client.is_ok());

  Camera cam;
  cam.look_at({0, 0, 4}, {0, 0, 0}, {0, 1, 0});
  ASSERT_TRUE(client.value().set_view(cam, Deadline::after(1s)).is_ok());
  auto frame = client.value().await_frame(Deadline::after(2s));
  ASSERT_TRUE(frame.is_ok());
  EXPECT_EQ(frame.value().width(), 160);
  int lit = 0;
  for (const auto& p : frame.value().pixels()) {
    if (p.r > 40) ++lit;
  }
  EXPECT_GT(lit, 100) << "the triangle should be visible in the shipped frame";
}

TEST(Remote, SharedCameraIsCollaborative) {
  // Participant A changes the view; participant B receives an updated
  // frame without doing anything — VizServer's collaborative session.
  net::InProcNetwork net;
  auto scene = std::make_shared<SceneStore>();
  TriangleMesh mesh;
  mesh.vertices = {{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}};
  mesh.triangles = {{0, 1, 2}};
  scene->set_mesh(mesh, {200, 100, 50});
  auto server = RemoteRenderServer::start(net, scene, {"vizserver:2", 80, 60, 2ms});
  ASSERT_TRUE(server.is_ok());

  auto a = RemoteRenderClient::connect(net, "vizserver:2", Deadline::after(2s));
  auto b = RemoteRenderClient::connect(net, "vizserver:2", Deadline::after(2s));
  ASSERT_TRUE(a.is_ok() && b.is_ok());

  Camera cam;
  cam.look_at({0, 0, 4}, {0, 0, 0}, {0, 1, 0});
  ASSERT_TRUE(a.value().set_view(cam, Deadline::after(1s)).is_ok());
  auto frame_a = a.value().await_frame(Deadline::after(2s));
  auto frame_b = b.value().await_frame(Deadline::after(2s));
  ASSERT_TRUE(frame_a.is_ok());
  ASSERT_TRUE(frame_b.is_ok());
  EXPECT_EQ(frame_a.value(), frame_b.value());  // same shared view
}

TEST(Remote, SceneUpdatePushesNewFrames) {
  net::InProcNetwork net;
  auto scene = std::make_shared<SceneStore>();
  auto server = RemoteRenderServer::start(net, scene, {"vizserver:3", 80, 60, 2ms});
  ASSERT_TRUE(server.is_ok());
  auto client = RemoteRenderClient::connect(net, "vizserver:3", Deadline::after(2s));
  ASSERT_TRUE(client.is_ok());
  Camera cam;
  cam.look_at({0, 0, 4}, {0, 0, 0}, {0, 1, 0});
  ASSERT_TRUE(client.value().set_view(cam, Deadline::after(1s)).is_ok());
  auto first = client.value().await_frame(Deadline::after(2s));
  ASSERT_TRUE(first.is_ok());
  // Simulation-side update: new sample arrives in the scene.
  TriangleMesh mesh;
  mesh.vertices = {{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}};
  mesh.triangles = {{0, 1, 2}};
  scene->set_mesh(mesh, {250, 250, 250});
  // The queue may still hold a frame rendered before the update (the
  // connect-time camera bump renders the empty scene too, which looks
  // identical); drain until the meshed frame arrives or the deadline hits.
  const Deadline deadline = Deadline::after(2s);
  auto second = client.value().await_frame(deadline);
  ASSERT_TRUE(second.is_ok());
  while (second.value() == first.value()) {
    second = client.value().await_frame(deadline);
    ASSERT_TRUE(second.is_ok());
  }
  EXPECT_NE(second.value(), first.value());
}

TEST(Remote, GeometryChannelShipsScene) {
  net::InProcNetwork net;
  auto listener = net.listen("geo:1");
  auto client_conn = net.connect("geo:1", Deadline::after(2s));
  auto server_conn = listener.value()->accept(Deadline::after(2s));
  ASSERT_TRUE(client_conn.is_ok() && server_conn.is_ok());

  auto scene = std::make_shared<SceneStore>();
  TriangleMesh mesh;
  mesh.vertices = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  mesh.triangles = {{0, 1, 2}};
  scene->set_mesh(mesh, {1, 2, 3});
  scene->set_particles({{{1, 2, 3}, {0, 0, 1}, {9, 9, 9}}}, GlyphStyle::kDiamond);
  scene->set_boxes({{{0, 0, 0}, {1, 1, 1}}}, {7, 7, 7});

  auto sender = GeometryChannel::start_sender(server_conn.value(), scene, 1ms);
  SceneStore local;
  ASSERT_TRUE(GeometryChannel::receive_into(*client_conn.value(), local,
                                            Deadline::after(2s))
                  .is_ok());
  EXPECT_EQ(local.geometry_bytes(), scene->geometry_bytes());
  // Rendering both scenes yields identical images.
  Camera cam;
  cam.look_at({0.5, 0.5, 4}, {0.5, 0.5, 0}, {0, 1, 0});
  Renderer ra(64, 64), rb(64, 64);
  scene->render(ra, cam);
  local.render(rb, cam);
  EXPECT_EQ(ra.frame(), rb.frame());
  sender.request_stop();
  client_conn.value()->close();
  server_conn.value()->close();
}

TEST(Remote, SceneDecodeRejectsGarbage) {
  SceneStore scene;
  EXPECT_FALSE(scene.decode(common::Bytes{1, 2}).is_ok());
  common::Bytes huge{0xff, 0xff, 0xff, 0xff};  // 4 billion vertices
  EXPECT_FALSE(scene.decode(huge).is_ok());
}

}  // namespace
}  // namespace cs::viz
