// The one accept loop. Every server in the stack used to hand-roll the
// same pump — poll listener->accept(Deadline::after(slice)), swallow
// timeouts, exit on close, hand the connection to a handler — copy-pasted
// across eight services. AcceptPump is that loop, written once, with the
// readiness upgrade built in: given an EventHost and a listener with a
// native handle, it registers for EPOLLIN on the listener instead of
// burning a thread on the poll cycle.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

#include "common/clock.hpp"
#include "net/event_host.hpp"
#include "net/transport.hpp"

namespace cs::net {

struct ServeOptions {
  /// Accept poll slice in thread mode: the bound on how long stop() can
  /// lag behind a request (the listener close also wakes the loop).
  /// Irrelevant in event-driven mode.
  common::Duration accept_slice = std::chrono::milliseconds(50);
  /// Admission cap: with more than this many handed-out connections alive
  /// (per connection_retired()), new arrivals are closed on accept and
  /// counted refused. 0 means unlimited.
  std::size_t max_conns = 0;
};

/// Pumps one listener into a callback until stopped; see the file comment.
class AcceptPump {
 public:
  /// Receives each accepted connection. Thread mode runs it on the pump
  /// thread (blocking work — handshakes — is fine there); event-driven
  /// mode runs it on the EventHost poller, where it must not block.
  using ConnHandler = std::function<void(ConnectionPtr conn)>;

  /// Thread mode: owns a jthread polling accept(). The listener must
  /// outlive the pump; closing it stops the pump from the listener side.
  AcceptPump(Listener& listener, ConnHandler on_conn,
             ServeOptions options = {});

  /// Event-driven when possible: registers the listener with `host` and
  /// accepts on its poller — no thread here at all. Falls back to thread
  /// mode when the listener has no native handle (in-process transport) or
  /// the watch fails.
  AcceptPump(EventHost& host, Listener& listener, ConnHandler on_conn,
             ServeOptions options = {});

  ~AcceptPump();
  AcceptPump(const AcceptPump&) = delete;
  AcceptPump& operator=(const AcceptPump&) = delete;

  /// Stops accepting (joins the pump thread / unwatches the listener).
  /// Does not close the listener — the owner does. Idempotent.
  void stop();

  /// The owner reports a previously handed-out connection as finished so
  /// the max_conns admission cap frees a slot. Only needed with a cap.
  void connection_retired() {
    live_.fetch_sub(1, std::memory_order_acq_rel);
  }

  /// True when accepts ride an EventHost poller instead of an owned thread.
  bool event_driven() const noexcept { return event_driven_; }
  std::uint64_t accepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t refused() const noexcept {
    return refused_.load(std::memory_order_relaxed);
  }

 private:
  void run(const std::stop_token& st);
  /// Admission gate + handler dispatch, shared by both modes.
  void dispatch(ConnectionPtr conn);

  Listener& listener_;
  ConnHandler on_conn_;
  ServeOptions options_;
  EventHost* host_ = nullptr;
  std::uint64_t watch_token_ = 0;
  bool event_driven_ = false;
  std::jthread thread_;
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> refused_{0};
  std::atomic<std::size_t> live_{0};
  std::atomic<bool> stopped_{false};
};

}  // namespace cs::net
