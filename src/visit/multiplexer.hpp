// Collaborative steering multiplexer — the paper's `vbroker` (section 3.3),
// as moved into the VISIT proxy-server for the UNICORE extension.
//
// "A 'multiplexer' simply sends all VISIT send-requests to all participating
// visualizations, ensuring that everyone views the same data.
// Receive-requests are only sent to a 'master' visualization, so that only
// that master is able to actively steer the application. The master-role can
// be moved, allowing for a coordinated cooperative steering."
//
// Implementation note: the master's steering updates are cached in a
// parameter table inside the multiplexer and the simulation's requests are
// answered from that table immediately. This is observationally equivalent
// to forwarding each request to the master (the sim receives exactly the
// values the master last published) but keeps the VISIT guarantee intact:
// the simulation's round trip is bounded by the link to the multiplexer,
// never by a viewer application's event loop.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "net/transport.hpp"
#include "wire/message.hpp"

namespace cs::visit {

class Multiplexer {
 public:
  struct Options {
    /// Address the (single) simulation connects to.
    std::string sim_address;
    /// Address participating visualizations connect to.
    std::string viewer_address;
    /// Everyone authenticates with this password; the UNICORE variant adds
    /// real authentication in front (see visit/proxy.hpp).
    std::string password;
    /// Per-viewer forwarding deadline; a viewer slower than this misses the
    /// sample rather than stalling the fan-out.
    common::Duration forward_timeout = std::chrono::milliseconds(50);
  };

  struct Stats {
    std::uint64_t samples_in = 0;       ///< data messages from the sim
    std::uint64_t samples_out = 0;      ///< per-viewer deliveries
    std::uint64_t samples_missed = 0;   ///< deliveries dropped (slow viewer)
    std::uint64_t steers_accepted = 0;  ///< master parameter updates
    std::uint64_t steers_rejected = 0;  ///< non-master updates dropped
    std::uint64_t requests_served = 0;  ///< sim parameter requests answered
  };

  /// Starts listeners and pump threads.
  static common::Result<std::unique_ptr<Multiplexer>> start(
      net::Network& net, const Options& options);

  ~Multiplexer();
  Multiplexer(const Multiplexer&) = delete;
  Multiplexer& operator=(const Multiplexer&) = delete;

  void stop();

  std::size_t viewer_count() const;
  /// Id of the current master viewer, or 0 when none.
  std::uint64_t master_id() const;
  Stats stats() const;

 private:
  Multiplexer() = default;

  void sim_accept_loop(const std::stop_token& st);
  void viewer_accept_loop(const std::stop_token& st);
  void sim_pump(const std::stop_token& st, net::ConnectionPtr conn);
  void viewer_pump(const std::stop_token& st, std::uint64_t id);

  void handle_sim_message(wire::Message m, net::Connection& sim_conn);
  void handle_viewer_message(std::uint64_t id, wire::Message m);
  void add_viewer(net::ConnectionPtr conn);
  void remove_viewer(std::uint64_t id);
  void broadcast(const common::Bytes& frame);
  /// Sets viewer `id` as master and notifies affected viewers.
  void promote(std::uint64_t id);

  struct Viewer {
    net::ConnectionPtr conn;
    std::jthread pump;
  };

  Options options_;
  net::ListenerPtr sim_listener_;
  net::ListenerPtr viewer_listener_;
  std::jthread sim_accept_thread_;
  std::jthread viewer_accept_thread_;
  /// Guards sim_pump_thread_: the accept loop replaces it when a new
  /// simulation connects while stop() requests its termination.
  std::mutex sim_pump_mutex_;
  std::jthread sim_pump_thread_;

  mutable std::mutex mutex_;
  std::map<std::uint64_t, Viewer> viewers_;
  std::uint64_t master_id_ = 0;
  std::uint64_t next_viewer_id_ = 1;
  std::map<std::uint32_t, wire::Message> parameters_;  // master's updates
  /// Replay caches hold pre-encoded frames: each broadcast is serialized
  /// exactly once and the bytes are reused verbatim for late joiners.
  std::map<std::uint32_t, common::Bytes> schema_cache_;
  std::map<std::uint32_t, common::Bytes> last_sample_;  // replayed on join
  /// Pump threads of departed viewers; joined at stop() (a pump may remove
  /// its own viewer and must not join itself).
  std::vector<std::jthread> graveyard_;
  Stats stats_;
  std::atomic<bool> stopped_{false};
};

}  // namespace cs::visit
