#include "steer/control.hpp"

#include <algorithm>
#include <charconv>

namespace cs::steer {

using common::Result;
using common::Status;
using common::StatusCode;

std::string_view to_string(Command command) noexcept {
  switch (command) {
    case Command::kNone: return "none";
    case Command::kPause: return "pause";
    case Command::kResume: return "resume";
    case Command::kStop: return "stop";
    case Command::kCheckpoint: return "checkpoint";
    case Command::kEmitSample: return "emit-sample";
  }
  return "?";
}

void SteeringControl::register_steerable(const std::string& name,
                                         double* value, double min_value,
                                         double max_value) {
  std::scoped_lock lock(mutex_);
  doubles_[name] = DoubleParam{value, *value, min_value, max_value, {}};
}

void SteeringControl::register_steerable_int(const std::string& name,
                                             std::int64_t* value,
                                             std::int64_t min_value,
                                             std::int64_t max_value) {
  std::scoped_lock lock(mutex_);
  ints_[name] = IntParam{value, *value, min_value, max_value, {}};
}

void SteeringControl::register_monitored(const std::string& name,
                                         std::function<double()> probe) {
  std::scoped_lock lock(mutex_);
  monitors_[name] = Monitor{std::move(probe), 0.0};
  // Prime the cache so clients never see an uninitialized value.
  monitors_[name].cached = monitors_[name].probe();
}

std::vector<std::string> SteeringControl::apply_pending() {
  std::vector<std::string> changed;
  std::scoped_lock lock(mutex_);
  for (auto& [name, p] : doubles_) {
    if (p.pending) {
      *p.target = *p.pending;
      p.shadow = *p.pending;
      p.pending.reset();
      changed.push_back(name);
    } else {
      p.shadow = *p.target;  // track app-side changes too
    }
  }
  for (auto& [name, p] : ints_) {
    if (p.pending) {
      *p.target = *p.pending;
      p.shadow = *p.pending;
      p.pending.reset();
      changed.push_back(name);
    } else {
      p.shadow = *p.target;
    }
  }
  for (auto& [name, m] : monitors_) m.cached = m.probe();
  return changed;
}

Command SteeringControl::next_command() {
  std::scoped_lock lock(mutex_);
  if (commands_.empty()) return Command::kNone;
  Command c = commands_.front();
  commands_.pop_front();
  return c;
}

Command SteeringControl::sync() {
  apply_pending();
  for (;;) {
    Command c = next_command();
    switch (c) {
      case Command::kPause: {
        std::unique_lock lock(mutex_);
        paused_ = true;
        status_ = "paused";
        cv_.wait(lock, [&] { return !paused_ || stop_; });
        if (stop_) return Command::kStop;
        lock.unlock();
        apply_pending();  // pick up anything set while paused
        continue;
      }
      case Command::kResume:
        continue;  // already running
      case Command::kStop:
        return Command::kStop;
      case Command::kCheckpoint:
      case Command::kEmitSample:
        return c;
      case Command::kNone:
        return Command::kNone;
    }
  }
}

void SteeringControl::set_status(const std::string& status) {
  std::scoped_lock lock(mutex_);
  status_ = status;
}

void SteeringControl::note_sample_emitted() {
  samples_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t SteeringControl::samples_emitted() const {
  return samples_.load(std::memory_order_relaxed);
}

bool SteeringControl::stop_requested() const {
  std::scoped_lock lock(mutex_);
  return stop_;
}

std::vector<SteeringControl::ParamInfo> SteeringControl::list_params() const {
  std::scoped_lock lock(mutex_);
  std::vector<ParamInfo> out;
  for (const auto& [name, p] : doubles_) {
    out.push_back(ParamInfo{name, std::to_string(p.shadow), p.min_value,
                            p.max_value, true});
  }
  for (const auto& [name, p] : ints_) {
    out.push_back(ParamInfo{name, std::to_string(p.shadow),
                            static_cast<double>(p.min_value),
                            static_cast<double>(p.max_value), true});
  }
  for (const auto& [name, m] : monitors_) {
    out.push_back(ParamInfo{name, std::to_string(m.cached), 0, 0, false});
  }
  return out;
}

Result<std::string> SteeringControl::get_param(const std::string& name) const {
  std::scoped_lock lock(mutex_);
  if (auto it = doubles_.find(name); it != doubles_.end()) {
    return std::to_string(it->second.pending.value_or(it->second.shadow));
  }
  if (auto it = ints_.find(name); it != ints_.end()) {
    return std::to_string(it->second.pending.value_or(it->second.shadow));
  }
  if (auto it = monitors_.find(name); it != monitors_.end()) {
    return std::to_string(it->second.cached);
  }
  return Status{StatusCode::kNotFound, "no parameter named " + name};
}

Status SteeringControl::set_param(const std::string& name,
                                  const std::string& value) {
  std::scoped_lock lock(mutex_);
  if (auto it = doubles_.find(name); it != doubles_.end()) {
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str()) {
      return Status{StatusCode::kInvalidArgument, "not a number: " + value};
    }
    if (v < it->second.min_value || v > it->second.max_value) {
      return Status{StatusCode::kInvalidArgument,
                    name + " out of range [" +
                        std::to_string(it->second.min_value) + ", " +
                        std::to_string(it->second.max_value) + "]"};
    }
    it->second.pending = v;
    return Status::ok();
  }
  if (auto it = ints_.find(name); it != ints_.end()) {
    std::int64_t v = 0;
    const auto [ptr, ec] =
        std::from_chars(value.data(), value.data() + value.size(), v);
    if (ec != std::errc{} || ptr != value.data() + value.size()) {
      return Status{StatusCode::kInvalidArgument, "not an integer: " + value};
    }
    if (v < it->second.min_value || v > it->second.max_value) {
      return Status{StatusCode::kInvalidArgument, name + " out of range"};
    }
    it->second.pending = v;
    return Status::ok();
  }
  if (monitors_.contains(name)) {
    return Status{StatusCode::kPermissionDenied,
                  name + " is monitored-only"};
  }
  return Status{StatusCode::kNotFound, "no parameter named " + name};
}

Status SteeringControl::command(const std::string& command) {
  std::scoped_lock lock(mutex_);
  if (command == "pause") {
    commands_.push_back(Command::kPause);
  } else if (command == "resume") {
    paused_ = false;
    commands_.push_back(Command::kResume);
    cv_.notify_all();
  } else if (command == "stop") {
    stop_ = true;
    paused_ = false;
    commands_.push_back(Command::kStop);
    cv_.notify_all();
  } else if (command == "checkpoint") {
    commands_.push_back(Command::kCheckpoint);
  } else if (command == "emit-sample") {
    commands_.push_back(Command::kEmitSample);
  } else {
    return Status{StatusCode::kInvalidArgument, "unknown command: " + command};
  }
  return Status::ok();
}

std::string SteeringControl::status() const {
  std::scoped_lock lock(mutex_);
  return status_;
}

}  // namespace cs::steer
