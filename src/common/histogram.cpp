#include "common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace cs::common {

std::size_t Histogram::bucket_index(std::uint64_t value) noexcept {
  // Values below kSubBuckets map 1:1 into range 0; above that, the top
  // kSubBucketBits+1 significant bits select (range, sub-bucket).
  if (value < kSubBuckets) return value;
  const auto high_bit =
      static_cast<std::uint32_t>(63 - std::countl_zero(value));
  std::uint32_t range = high_bit - kSubBucketBits + 1;
  if (range >= kRanges) return kBucketCount - 1;  // saturate
  const auto sub = static_cast<std::uint32_t>(
      (value >> (high_bit - kSubBucketBits)) & (kSubBuckets - 1));
  return static_cast<std::size_t>(range) * kSubBuckets + sub;
}

std::uint64_t Histogram::bucket_upper_edge(std::size_t index) noexcept {
  const auto range = static_cast<std::uint32_t>(index / kSubBuckets);
  const auto sub = static_cast<std::uint64_t>(index % kSubBuckets);
  if (range == 0) return sub;
  const std::uint32_t shift = range - 1;
  // Lower edge of the bucket plus its width, minus one (inclusive edge).
  const std::uint64_t base = (kSubBuckets + sub) << shift;
  return base + (std::uint64_t{1} << shift) - 1;
}

void Histogram::record(std::uint64_t value) noexcept {
  ++buckets_[bucket_index(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) noexcept {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::uint64_t Histogram::value_at_quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // 1-based rank of the sample we want; q=1 selects the last sample.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // The top bucket is open-ended ("anything past the covered span");
      // its edge would underestimate, so report the observed max instead.
      if (i == kBucketCount - 1) return max_;
      return std::min(bucket_upper_edge(i), max_);
    }
  }
  return max_;
}

void Histogram::reset() noexcept { *this = Histogram{}; }

void Histogram::encode(Bytes& out) const {
  append_uint<std::uint64_t>(out, count_, ByteOrder::kBig);
  append_uint<std::uint64_t>(out, sum_, ByteOrder::kBig);
  append_uint<std::uint64_t>(out, count_ ? min_ : 0, ByteOrder::kBig);
  append_uint<std::uint64_t>(out, max_, ByteOrder::kBig);
  std::uint32_t nonzero = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (buckets_[i] != 0) ++nonzero;
  }
  append_uint<std::uint32_t>(out, nonzero, ByteOrder::kBig);
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (buckets_[i] == 0) continue;
    append_uint<std::uint32_t>(out, static_cast<std::uint32_t>(i),
                               ByteOrder::kBig);
    append_uint<std::uint64_t>(out, buckets_[i], ByteOrder::kBig);
  }
}

Result<Histogram> Histogram::decode(ByteSpan in, std::size_t& consumed) {
  constexpr std::size_t kHeader = 4 * 8 + 4;
  const auto invalid = [](const char* what) {
    return Status{StatusCode::kInvalidArgument, what};
  };
  if (in.size() < kHeader) return invalid("histogram header truncated");
  Histogram h;
  h.count_ = read_uint<std::uint64_t>(in, ByteOrder::kBig);
  h.sum_ = read_uint<std::uint64_t>(in.subspan(8), ByteOrder::kBig);
  const std::uint64_t min = read_uint<std::uint64_t>(in.subspan(16),
                                                     ByteOrder::kBig);
  h.min_ = h.count_ ? min : ~0ull;
  h.max_ = read_uint<std::uint64_t>(in.subspan(24), ByteOrder::kBig);
  const auto nonzero = read_uint<std::uint32_t>(in.subspan(32),
                                                ByteOrder::kBig);
  if (nonzero > kBucketCount) return invalid("histogram bucket count");
  const std::size_t need = kHeader + static_cast<std::size_t>(nonzero) * 12;
  if (in.size() < need) return invalid("histogram buckets truncated");
  std::uint64_t total = 0;
  std::int64_t prev = -1;
  for (std::uint32_t i = 0; i < nonzero; ++i) {
    const ByteSpan entry = in.subspan(kHeader + std::size_t{i} * 12);
    const auto index = read_uint<std::uint32_t>(entry, ByteOrder::kBig);
    const auto count = read_uint<std::uint64_t>(entry.subspan(4),
                                                ByteOrder::kBig);
    if (index >= kBucketCount) return invalid("histogram bucket index");
    if (static_cast<std::int64_t>(index) <= prev) {
      return invalid("histogram bucket order");
    }
    if (count == 0) return invalid("histogram zero bucket");
    prev = index;
    h.buckets_[index] = count;
    total += count;
  }
  if (total != h.count_) return invalid("histogram count mismatch");
  if (h.count_ != 0 && min > h.max_) return invalid("histogram min > max");
  consumed = need;
  return h;
}

}  // namespace cs::common
