// Distributed loadgen: the control-channel codecs (round trips over both
// transports, hostile-input rejection), worker-failure handling (a killed
// worker and a silent one must both yield a bounded-time partial merged
// report, never a hang), and the histogram-merge property — merged shards
// reproduce single-driver percentiles within the bucket layout's ~1.6%
// relative error, and burst op counts reconcile exactly with the target's
// /metricsz delivery counters. Runs under TSan in CI like the other
// multi-threaded suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "loadgen/control.hpp"
#include "loadgen/controller.hpp"
#include "loadgen/driver.hpp"
#include "loadgen/scenarios.hpp"
#include "loadgen/worker.hpp"
#include "net/inproc.hpp"
#include "net/tcp.hpp"
#include "util.hpp"

namespace cs::loadgen {
namespace {

using namespace std::chrono_literals;
using common::Bytes;
using common::Deadline;
using common::Histogram;
using common::StatusCode;
using testutil::TransportPair;

// ---------------------------------------------------------------------------
// Control codec: round trips over both transports
// ---------------------------------------------------------------------------

struct WireCase {
  const char* name;
  TransportPair (*make)();
};

TransportPair make_inproc() { return testutil::make_inproc_pair(); }

TransportPair make_tcp() { return testutil::make_tcp_pair(); }

class ControlCodec : public ::testing::TestWithParam<WireCase> {};

WorkloadSpec sample_spec() {
  WorkloadSpec spec;
  spec.kind = WorkloadSpec::Kind::kMuxViewers;
  spec.workload.pattern = Pattern::kBurst;
  spec.workload.connections = 7;
  spec.workload.duration = 1250ms;
  spec.workload.ramp_up = 250ms;
  spec.workload.min_payload = 100;
  spec.workload.max_payload = 900;
  spec.workload.messages_per_sec = 123.5;
  spec.workload.seed = 0xfeedbeefULL;
  spec.workload.op_timeout = 750ms;
  spec.workload.batch = 4;
  spec.target = "mux:viewer";
  spec.password = "soak";
  spec.worker_index = 2;
  spec.worker_count = 5;
  return spec;
}

TEST_P(ControlCodec, WorkloadSpecRoundTripsOverTheWire) {
  TransportPair pair = GetParam().make();
  const WorkloadSpec spec = sample_spec();
  ASSERT_TRUE(
      pair.client->send(encode_assign(spec), Deadline::after(2s)).is_ok());
  auto raw = pair.server->recv(Deadline::after(2s));
  ASSERT_TRUE(raw.is_ok());
  auto op = decode_control_op(raw.value());
  ASSERT_TRUE(op.is_ok());
  EXPECT_EQ(op.value(), ControlOp::kAssign);
  auto got = decode_assign(raw.value());
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_EQ(got.value().kind, spec.kind);
  EXPECT_EQ(got.value().workload.pattern, spec.workload.pattern);
  EXPECT_EQ(got.value().workload.connections, spec.workload.connections);
  EXPECT_EQ(got.value().workload.duration, spec.workload.duration);
  EXPECT_EQ(got.value().workload.ramp_up, spec.workload.ramp_up);
  EXPECT_EQ(got.value().workload.min_payload, spec.workload.min_payload);
  EXPECT_EQ(got.value().workload.max_payload, spec.workload.max_payload);
  EXPECT_EQ(got.value().workload.messages_per_sec,
            spec.workload.messages_per_sec);
  EXPECT_EQ(got.value().workload.seed, spec.workload.seed);
  EXPECT_EQ(got.value().workload.op_timeout, spec.workload.op_timeout);
  EXPECT_EQ(got.value().workload.batch, spec.workload.batch);
  EXPECT_EQ(got.value().target, spec.target);
  EXPECT_EQ(got.value().password, spec.password);
  EXPECT_EQ(got.value().worker_index, spec.worker_index);
  EXPECT_EQ(got.value().worker_count, spec.worker_count);
}

TEST_P(ControlCodec, WorkerReportRoundTripsHistogramLosslessly) {
  TransportPair pair = GetParam().make();
  WireWorkerReport shard;
  shard.worker_index = 3;
  shard.connections = 16;
  shard.ops = 123456;
  shard.timeouts = 7;
  shard.errors = 2;
  shard.elapsed_ns = 2'500'000'000ULL;
  shard.transport.messages_sent = 111;
  shard.transport.bytes_sent = 222;
  shard.transport.messages_received = 333;
  shard.transport.bytes_received = 444;
  common::Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    shard.latency.record(
        static_cast<std::uint64_t>(rng.uniform(1e3, 5e7)));
  }

  ASSERT_TRUE(
      pair.client->send(encode_result(shard), Deadline::after(2s)).is_ok());
  auto raw = pair.server->recv(Deadline::after(2s));
  ASSERT_TRUE(raw.is_ok());
  auto got = decode_result(raw.value());
  ASSERT_TRUE(got.is_ok()) << got.status().to_string();
  EXPECT_EQ(got.value().worker_index, shard.worker_index);
  EXPECT_EQ(got.value().connections, shard.connections);
  EXPECT_EQ(got.value().ops, shard.ops);
  EXPECT_EQ(got.value().timeouts, shard.timeouts);
  EXPECT_EQ(got.value().errors, shard.errors);
  EXPECT_EQ(got.value().elapsed_ns, shard.elapsed_ns);
  EXPECT_EQ(got.value().transport.messages_sent,
            shard.transport.messages_sent);
  EXPECT_EQ(got.value().transport.bytes_received,
            shard.transport.bytes_received);
  // Identical bucket layout on both sides: the decode is bit-exact, so
  // every derived statistic matches, not just approximately.
  EXPECT_EQ(got.value().latency.count(), shard.latency.count());
  EXPECT_EQ(got.value().latency.sum(), shard.latency.sum());
  EXPECT_EQ(got.value().latency.min(), shard.latency.min());
  EXPECT_EQ(got.value().latency.max(), shard.latency.max());
  EXPECT_EQ(got.value().latency.p50(), shard.latency.p50());
  EXPECT_EQ(got.value().latency.p999(), shard.latency.p999());
}

TEST_P(ControlCodec, JoinReadyStartByeRoundTrip) {
  TransportPair pair = GetParam().make();
  JoinFrame join;
  join.worker_name = "worker7";
  join.metricsz_address = "w7:metricsz";
  ASSERT_TRUE(
      pair.client->send(encode_join(join), Deadline::after(2s)).is_ok());
  ASSERT_TRUE(
      pair.client->send(encode_ready(7), Deadline::after(2s)).is_ok());
  ASSERT_TRUE(pair.client->send(encode_start(), Deadline::after(2s)).is_ok());
  ASSERT_TRUE(pair.client->send(encode_bye(), Deadline::after(2s)).is_ok());

  auto j = pair.server->recv(Deadline::after(2s));
  ASSERT_TRUE(j.is_ok());
  auto got_join = decode_join(j.value());
  ASSERT_TRUE(got_join.is_ok());
  EXPECT_EQ(got_join.value().worker_name, "worker7");
  EXPECT_EQ(got_join.value().metricsz_address, "w7:metricsz");

  auto r = pair.server->recv(Deadline::after(2s));
  ASSERT_TRUE(r.is_ok());
  auto got_ready = decode_ready(r.value());
  ASSERT_TRUE(got_ready.is_ok());
  EXPECT_EQ(got_ready.value(), 7u);

  for (ControlOp want : {ControlOp::kStart, ControlOp::kBye}) {
    auto frame = pair.server->recv(Deadline::after(2s));
    ASSERT_TRUE(frame.is_ok());
    auto op = decode_control_op(frame.value());
    ASSERT_TRUE(op.is_ok());
    EXPECT_EQ(op.value(), want);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Transports, ControlCodec,
    ::testing::Values(WireCase{"InProc", &make_inproc},
                      WireCase{"Tcp", &make_tcp}),
    [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------------------------------------
// Control codec: hostile input is rejected, never a crash
// ---------------------------------------------------------------------------

TEST(ControlCodecRejects, EveryTruncationOfEveryFrameIsInvalidArgument) {
  JoinFrame join{"worker", "w:mz"};
  WireWorkerReport shard;
  shard.latency.record(1000);
  shard.latency.record(2000000);
  const std::vector<Bytes> frames = {
      encode_join(join),     encode_assign(sample_spec()),
      encode_ready(1),       encode_start(),
      encode_result(shard),  encode_bye(),
  };
  for (const auto& frame : frames) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      const common::ByteSpan prefix{frame.data(), len};
      // Truncated below the header, even the op is unrecoverable.
      if (len >= 5) {
        auto op = decode_control_op(prefix);
        ASSERT_TRUE(op.is_ok());
        switch (op.value()) {
          case ControlOp::kJoin:
            EXPECT_EQ(decode_join(prefix).status().code(),
                      StatusCode::kInvalidArgument);
            break;
          case ControlOp::kAssign:
            EXPECT_EQ(decode_assign(prefix).status().code(),
                      StatusCode::kInvalidArgument);
            break;
          case ControlOp::kReady:
            EXPECT_EQ(decode_ready(prefix).status().code(),
                      StatusCode::kInvalidArgument);
            break;
          case ControlOp::kResult:
            EXPECT_EQ(decode_result(prefix).status().code(),
                      StatusCode::kInvalidArgument);
            break;
          default:
            break;  // kStart/kBye carry no body to truncate
        }
      } else {
        EXPECT_EQ(decode_control_op(prefix).status().code(),
                  StatusCode::kInvalidArgument);
      }
    }
  }
}

TEST(ControlCodecRejects, OversizedFramesAreInvalidArgument) {
  Bytes join = encode_join(JoinFrame{"w", ""});
  join.push_back(0xff);
  EXPECT_EQ(decode_join(join).status().code(), StatusCode::kInvalidArgument);

  Bytes ready = encode_ready(0);
  ready.push_back(0x00);
  EXPECT_EQ(decode_ready(ready).status().code(), StatusCode::kInvalidArgument);

  WireWorkerReport shard;
  Bytes result = encode_result(shard);
  result.push_back(0x01);
  EXPECT_EQ(decode_result(result).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ControlCodecRejects, ForeignMagicAndUnknownTags) {
  // Foreign magic.
  Bytes frame = encode_start();
  frame[0] ^= 0x55;
  EXPECT_EQ(decode_control_op(frame).status().code(),
            StatusCode::kInvalidArgument);

  // A traffic op (LoadFrame range) must not parse as control...
  Bytes traffic = encode_start();
  traffic[4] = 0x02;  // FrameOp::kEcho
  EXPECT_EQ(decode_control_op(traffic).status().code(),
            StatusCode::kInvalidArgument);

  // ...nor an op above the control range.
  Bytes unknown = encode_start();
  unknown[4] = 0x40;
  EXPECT_EQ(decode_control_op(unknown).status().code(),
            StatusCode::kInvalidArgument);

  // And a control frame must never parse as traffic.
  EXPECT_FALSE(LoadFrame::decode(encode_start()).is_ok());
}

TEST(ControlCodecRejects, LyingStringLengthIsInvalidArgument) {
  Bytes join = encode_join(JoinFrame{"worker", "addr"});
  // The worker_name length field sits right after the 5-byte header; claim
  // 4GB of name without the bytes to back it.
  join[5] = 0xff;
  join[6] = 0xff;
  join[7] = 0xff;
  join[8] = 0xff;
  EXPECT_EQ(decode_join(join).status().code(), StatusCode::kInvalidArgument);
}

TEST(ControlCodecRejects, InconsistentHistogramIsInvalidArgument) {
  WireWorkerReport shard;
  shard.latency.record(5000);
  Bytes result = encode_result(shard);
  // The histogram trailer ends the frame: its final 12 bytes are the one
  // nonzero (bucket, count) pair. Inflate the bucket count so it no longer
  // reconciles with the header's total.
  ASSERT_GE(result.size(), 12u);
  result[result.size() - 1] ^= 0x01;
  EXPECT_EQ(decode_result(result).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ControlCodecRejects, AssignWithInvalidWorkloadIsInvalidArgument) {
  WorkloadSpec spec = sample_spec();
  spec.workload.connections = 0;  // fails Workload::validate()
  EXPECT_EQ(decode_assign(encode_assign(spec)).status().code(),
            StatusCode::kInvalidArgument);

  WorkloadSpec bad_index = sample_spec();
  bad_index.worker_index = 9;
  bad_index.worker_count = 3;
  EXPECT_EQ(decode_assign(encode_assign(bad_index)).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Worker failure: partial merged report in bounded time, never a hang
// ---------------------------------------------------------------------------

/// A scripted worker speaking the control protocol by hand so failure can
/// be injected at an exact phase. Joins, prepares, acks READY, awaits
/// START; then either reports `shard` or misbehaves per `mode`.
enum class FailureMode { kReports, kDiesAfterStart, kNeverReports };

void scripted_worker(net::Network& net, const std::string& address,
                     FailureMode mode, const WireWorkerReport& shard) {
  auto conn = connect_retry(net, address, Deadline::after(5s));
  ASSERT_TRUE(conn.is_ok());
  JoinFrame join;
  join.worker_name = "scripted";
  ASSERT_TRUE(
      conn.value()->send(encode_join(join), Deadline::after(2s)).is_ok());
  auto assign = conn.value()->recv(Deadline::after(5s));
  ASSERT_TRUE(assign.is_ok());
  ASSERT_TRUE(decode_assign(assign.value()).is_ok());
  ASSERT_TRUE(conn.value()
                  ->send(encode_ready(shard.worker_index), Deadline::after(2s))
                  .is_ok());
  auto start = conn.value()->recv(Deadline::after(5s));
  ASSERT_TRUE(start.is_ok());

  switch (mode) {
    case FailureMode::kDiesAfterStart:
      conn.value()->close();  // killed mid-run
      return;
    case FailureMode::kNeverReports:
      // Holds the connection open, never sends RESULT; the controller's
      // collect deadline is the only thing that ends this. Unblocked when
      // the controller closes the slot.
      (void)conn.value()->recv(Deadline::after(30s));
      conn.value()->close();
      return;
    case FailureMode::kReports:
      ASSERT_TRUE(conn.value()
                      ->send(encode_result(shard), Deadline::after(2s))
                      .is_ok());
      (void)conn.value()->recv(Deadline::after(10s));  // await BYE
      conn.value()->close();
      return;
  }
}

class WorkerFailure : public ::testing::TestWithParam<FailureMode> {};

TEST_P(WorkerFailure, LostWorkerYieldsBoundedPartialMergedReport) {
  net::InProcNetwork net;
  Controller::Options copts;
  copts.listen_address = "fail:ctl";
  copts.workers = 2;
  copts.join_timeout = std::chrono::seconds(5);
  copts.ready_timeout = std::chrono::seconds(5);
  copts.io_timeout = std::chrono::seconds(2);
  auto controller = Controller::start(net, copts);
  ASSERT_TRUE(controller.is_ok());

  WireWorkerReport good_shard;
  good_shard.worker_index = 0;
  good_shard.connections = 3;
  good_shard.ops = 4242;
  good_shard.timeouts = 1;
  good_shard.latency.record(1'000'000);
  good_shard.latency.record(2'000'000);
  WireWorkerReport bad_shard;
  bad_shard.worker_index = 1;

  std::thread good([&] {
    scripted_worker(net, "fail:ctl", FailureMode::kReports, good_shard);
  });
  std::thread bad([&] {
    scripted_worker(net, "fail:ctl", GetParam(), bad_shard);
  });

  ASSERT_TRUE(controller.value()->await_workers().is_ok());
  WorkloadSpec spec = sample_spec();
  spec.worker_index = 0;
  spec.worker_count = 2;
  std::vector<WorkloadSpec> specs = {spec, spec};
  specs[1].worker_index = 1;
  ASSERT_TRUE(controller.value()->assign(specs).is_ok());
  ASSERT_TRUE(controller.value()->start_run().is_ok());

  // The whole point: collect must return by its deadline (plus scheduling
  // slack) with the surviving shard merged — independent of HOW the other
  // worker was lost (clean close vs. silent absence).
  const auto t0 = common::Clock::now();
  Report report = controller.value()->collect(Deadline::after(1500ms));
  const auto took = common::Clock::now() - t0;
  EXPECT_LT(took, 4s);

  EXPECT_TRUE(report.is_partial());
  EXPECT_EQ(report.completeness, StatusCode::kUnavailable);
  EXPECT_EQ(report.ops, good_shard.ops);
  EXPECT_EQ(report.timeouts, good_shard.timeouts);
  EXPECT_EQ(report.connections, good_shard.connections);
  EXPECT_EQ(report.latency.count(), good_shard.latency.count());
  auto metric = [&](const std::string& key) -> double {
    for (const auto& [name, value] : report.service_metrics) {
      if (name == key) return value;
    }
    return -1.0;
  };
  EXPECT_EQ(metric("workers_expected"), 2.0);
  EXPECT_EQ(metric("workers_reported"), 1.0);
  EXPECT_EQ(metric("worker0_ops"), static_cast<double>(good_shard.ops));
  EXPECT_EQ(metric("worker1_ops"), -1.0);  // no invented rows for the lost one

  controller.value()->stop();
  good.join();
  bad.join();
}

INSTANTIATE_TEST_SUITE_P(Modes, WorkerFailure,
                         ::testing::Values(FailureMode::kDiesAfterStart,
                                           FailureMode::kNeverReports),
                         [](const auto& info) {
                           return info.param == FailureMode::kDiesAfterStart
                                      ? std::string("KilledMidRun")
                                      : std::string("NeverReports");
                         });

TEST(WorkerFailure, MidAssignPartitionYieldsBoundedPartialReport) {
  // The worker vanishes between JOIN and ASSIGN — the partition lands in
  // the middle of the assignment exchange, the phase the reporting path
  // never sees. The controller must surface it at assign() time, run the
  // survivors anyway, and still produce the partial merged report within
  // the collect deadline.
  net::InProcNetwork net;
  Controller::Options copts;
  copts.listen_address = "assign:ctl";
  copts.workers = 2;
  copts.join_timeout = std::chrono::seconds(5);
  copts.ready_timeout = std::chrono::seconds(1);
  copts.io_timeout = std::chrono::seconds(1);
  auto controller = Controller::start(net, copts);
  ASSERT_TRUE(controller.is_ok());

  WireWorkerReport good_shard;
  good_shard.worker_index = 0;
  good_shard.connections = 2;
  good_shard.ops = 777;
  good_shard.latency.record(3'000'000);
  std::thread good([&] {
    scripted_worker(net, "assign:ctl", FailureMode::kReports, good_shard);
  });
  std::thread bad([&] {
    auto conn = connect_retry(net, "assign:ctl", Deadline::after(5s));
    ASSERT_TRUE(conn.is_ok());
    JoinFrame join;
    join.worker_name = "vanishes";
    ASSERT_TRUE(
        conn.value()->send(encode_join(join), Deadline::after(2s)).is_ok());
    conn.value()->close();  // gone before the assignment can land
  });

  ASSERT_TRUE(controller.value()->await_workers().is_ok());
  bad.join();
  WorkloadSpec spec = sample_spec();
  spec.worker_index = 0;
  spec.worker_count = 2;
  std::vector<WorkloadSpec> specs = {spec, spec};
  specs[1].worker_index = 1;
  // The loss is visible here, not swallowed: whichever of the ASSIGN send
  // and the READY wait hits the dead connection first, assign() reports
  // an incomplete fleet.
  EXPECT_EQ(controller.value()->assign(specs).code(),
            StatusCode::kUnavailable);
  ASSERT_TRUE(controller.value()->start_run().is_ok());

  const auto t0 = common::Clock::now();
  Report report = controller.value()->collect(Deadline::after(1500ms));
  EXPECT_LT(common::Clock::now() - t0, 4s);
  EXPECT_TRUE(report.is_partial());
  EXPECT_EQ(report.ops, good_shard.ops);
  EXPECT_EQ(report.latency.count(), good_shard.latency.count());

  controller.value()->stop();
  good.join();
}

TEST(WorkerFailure, IncompleteFleetTimesOutUnavailable) {
  net::InProcNetwork net;
  Controller::Options copts;
  copts.listen_address = "short:ctl";
  copts.workers = 2;
  copts.join_timeout = std::chrono::milliseconds(300);
  auto controller = Controller::start(net, copts);
  ASSERT_TRUE(controller.is_ok());

  // One worker joins; the fleet never completes.
  auto conn = net.connect("short:ctl", Deadline::after(2s));
  ASSERT_TRUE(conn.is_ok());
  ASSERT_TRUE(conn.value()
                  ->send(encode_join(JoinFrame{"only", ""}),
                         Deadline::after(2s))
                  .is_ok());

  const auto t0 = common::Clock::now();
  const auto status = controller.value()->await_workers();
  EXPECT_LT(common::Clock::now() - t0, 2s);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(controller.value()->live_workers(), 1u);
  conn.value()->close();
}

// ---------------------------------------------------------------------------
// Histogram-merge property + exact op reconciliation
// ---------------------------------------------------------------------------

TEST(HistogramMerge, ShardsReproduceSingleDriverQuantiles) {
  // The same seeded sample stream recorded once into a single-driver
  // histogram and round-robined across 4 worker shards that each take a
  // wire round trip before merging. The merged histogram must equal the
  // single-driver one bit-exactly (identical bucket layout), and both must
  // sit within the layout's ~1.6% relative bucket error of the exact
  // sample quantiles.
  constexpr int kShards = 4;
  constexpr int kSamples = 50000;
  common::Rng rng(99);
  Histogram single;
  Histogram shards[kShards];
  std::vector<std::uint64_t> samples;
  samples.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    // Long-tailed latencies spanning several orders of magnitude.
    const double magnitude = rng.uniform(3.0, 8.0);
    const auto value =
        static_cast<std::uint64_t>(std::pow(10.0, magnitude));
    samples.push_back(value);
    single.record(value);
    shards[i % kShards].record(value);
  }

  Histogram merged;
  for (const auto& shard : shards) {
    common::Bytes wire;
    shard.encode(wire);
    std::size_t consumed = 0;
    auto decoded = Histogram::decode(wire, consumed);
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(consumed, wire.size());
    merged.merge(decoded.value());
  }

  EXPECT_EQ(merged.count(), single.count());
  EXPECT_EQ(merged.sum(), single.sum());
  EXPECT_EQ(merged.min(), single.min());
  EXPECT_EQ(merged.max(), single.max());
  for (double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    EXPECT_EQ(merged.value_at_quantile(q), single.value_at_quantile(q))
        << "q=" << q;
  }

  std::sort(samples.begin(), samples.end());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size()))) - 1;
    const double exact = static_cast<double>(samples[rank]);
    const double merged_q =
        static_cast<double>(merged.value_at_quantile(q));
    EXPECT_NEAR(merged_q / exact, 1.0, 0.02)
        << "q=" << q << " exact=" << exact << " merged=" << merged_q;
  }
}

/// Runs the full distributed raw topology in-process: 2 WorkerAgent
/// threads against run_distributed_raw on one InProcNetwork.
TEST(Distributed, BurstOpsReconcileExactlyWithTargetMetricsz) {
  net::InProcNetwork net;
  auto worker = [&net](const char* name, const char* mz) {
    WorkerAgent::Options options;
    options.controller_address = "dist:ctl";
    options.name = name;
    options.metricsz_address = mz;
    auto shard = WorkerAgent::run(net, options);
    EXPECT_TRUE(shard.is_ok()) << shard.status().to_string();
  };
  std::thread w0(worker, "w0", "w0:mz");
  std::thread w1(worker, "w1", "w1:mz");

  DistributedOptions options;
  options.workers = 2;
  options.address_stem = "dist";
  options.workload.pattern = Pattern::kBurst;
  options.workload.connections = 4;
  options.workload.duration = 500ms;
  options.workload.messages_per_sec = 400.0;
  auto report = run_distributed_raw(net, options);
  w0.join();
  w1.join();
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_FALSE(report.value().is_partial());
  EXPECT_GT(report.value().ops, 0u);

  auto metric = [&](const std::string& key) -> double {
    for (const auto& [name, value] : report.value().service_metrics) {
      if (name == key) return value;
    }
    return -1.0;
  };
  // Client-side shards and server-side delivery truth reconcile exactly:
  // every burst frame the workers count was delivered to the peer.
  EXPECT_EQ(static_cast<double>(report.value().ops),
            metric("target_peer_stream_frames"));
  EXPECT_EQ(metric("worker0_ops") + metric("worker1_ops"),
            static_cast<double>(report.value().ops));
  // The controller scraped both workers' own registries too.
  EXPECT_EQ(metric("worker0_agent_ops"), metric("worker0_ops"));
  EXPECT_EQ(metric("worker1_agent_ops"), metric("worker1_ops"));
  EXPECT_EQ(metric("workers_reported"), 2.0);
  // One-way burst latency is recorded at the receiver and folded into the
  // merged report.
  EXPECT_EQ(report.value().latency.count(), report.value().ops);
}

TEST(Distributed, MuxSoakMergesWorkerShards) {
  net::InProcNetwork net;
  auto worker = [&net](const char* name, const char* mz) {
    WorkerAgent::Options options;
    options.controller_address = "dmux:ctl";
    options.name = name;
    options.metricsz_address = mz;
    auto shard = WorkerAgent::run(net, options);
    EXPECT_TRUE(shard.is_ok()) << shard.status().to_string();
  };
  std::thread w0(worker, "w0", "dm0:mz");
  std::thread w1(worker, "w1", "dm1:mz");

  DistributedOptions options;
  options.workers = 2;
  options.address_stem = "dmux";
  options.scenario.connections = 6;
  options.scenario.duration = 600ms;
  options.scenario.rate_per_sec = 200.0;
  options.scenario.payload_bytes = 256;
  std::string announced;
  options.on_listening = [&announced](const std::string& a) { announced = a; };
  auto report = run_distributed_mux_soak(net, options);
  w0.join();
  w1.join();
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_EQ(announced, "dmux:ctl");
  EXPECT_FALSE(report.value().is_partial());
  EXPECT_EQ(report.value().connections, 6u);
  EXPECT_GT(report.value().ops, 0u);
  // Fan-out accounting: every op is one delivered sample with a recorded
  // latency, across both workers' shards.
  EXPECT_EQ(report.value().latency.count(), report.value().ops);

  auto metric = [&](const std::string& key) -> double {
    for (const auto& [name, value] : report.value().service_metrics) {
      if (name == key) return value;
    }
    return -1.0;
  };
  EXPECT_EQ(metric("workers_expected"), 2.0);
  EXPECT_EQ(metric("workers_reported"), 2.0);
  EXPECT_EQ(metric("worker0_connections"), 3.0);
  EXPECT_EQ(metric("worker1_connections"), 3.0);
  EXPECT_GT(metric("worker0_ops"), 0.0);
  EXPECT_GT(metric("worker1_ops"), 0.0);
  // The target's own /metricsz rows rode along (mid-run scrape): the mux
  // delivered at least as many frames as the viewers accounted.
  EXPECT_GE(metric("samples_published"), 0.0);
  EXPECT_GT(metric("hosted_viewers") + metric("service_threads"), 0.0);
}

}  // namespace
}  // namespace cs::loadgen
