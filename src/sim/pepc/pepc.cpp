#include "sim/pepc/pepc.hpp"

#include <cmath>
#include <thread>
#include <vector>

namespace cs::pepc {

using common::Vec3;

PepcSimulation::PepcSimulation(const PepcConfig& config)
    : config_(config), tree_(config.tree), rng_(config.seed) {
  // Spherical quasi-neutral target: electron/ion pairs, uniformly filling
  // a ball. Ions are heavy and cold; electrons carry a small thermal spread.
  particles_.reserve(static_cast<std::size_t>(config_.target_pairs) * 2);
  for (int i = 0; i < config_.target_pairs; ++i) {
    Vec3 pos;
    do {
      pos = Vec3{rng_.uniform(-1, 1), rng_.uniform(-1, 1), rng_.uniform(-1, 1)};
    } while (norm2(pos) > 1.0);
    pos *= config_.target_radius;

    Particle ion;
    ion.set_position(pos);
    ion.charge = 1.0;
    ion.mass = config_.ion_mass;
    ion.label = next_label_++;
    particles_.push_back(ion);

    Particle electron;
    electron.set_position(pos + Vec3{rng_.uniform(-0.01, 0.01),
                                     rng_.uniform(-0.01, 0.01),
                                     rng_.uniform(-0.01, 0.01)});
    electron.charge = -1.0;
    electron.mass = 1.0;
    electron.set_velocity(Vec3{rng_.normal(), rng_.normal(), rng_.normal()} *
                          config_.electron_temperature);
    electron.label = next_label_++;
    particles_.push_back(electron);
  }
  forces_.resize(particles_.size());
  domains_ = decompose(particles_, config_.processors);
}

void PepcSimulation::emit_beam() {
  BeamConfig beam = beam_;
  const Vec3 dir = normalized(beam.direction);
  // Build an orthonormal frame (dir, t1, t2) for the transverse spread.
  const Vec3 up = std::abs(dir.x) < 0.9 ? Vec3{1, 0, 0} : Vec3{0, 1, 0};
  const Vec3 t1 = normalized(cross(dir, up));
  const Vec3 t2 = cross(dir, t1);
  for (int i = 0; i < beam.pulse_size; ++i) {
    double u, v;
    do {
      u = rng_.uniform(-1, 1);
      v = rng_.uniform(-1, 1);
    } while (u * u + v * v > 1.0);
    Particle p;
    p.set_position(beam.origin + (u * beam.radius) * t1 +
                   (v * beam.radius) * t2 +
                   dir * rng_.uniform(-0.05, 0.05));
    p.set_velocity(dir * beam.speed);
    p.charge = beam.charge;
    p.mass = 1.0;
    p.label = next_label_++;
    particles_.push_back(p);
  }
  forces_.resize(particles_.size());
  forces_fresh_ = false;
  domains_ = decompose(particles_, config_.processors);
}

void PepcSimulation::compute_forces() {
  tree_.build(particles_);
  const std::size_t n = particles_.size();
  const int threads = std::max(1, config_.processors);
  if (threads == 1 || n < 256) {
    tree_.accumulate_forces(particles_, forces_);
  } else {
    // Each worker takes a contiguous index slice; the tree is read-only
    // during traversal so no synchronization is needed beyond the join.
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    const std::size_t chunk = (n + static_cast<std::size_t>(threads) - 1) /
                              static_cast<std::size_t>(threads);
    for (int t = 0; t < threads; ++t) {
      const std::size_t begin = static_cast<std::size_t>(t) * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      if (begin >= end) break;
      pool.emplace_back([this, begin, end] {
        for (std::size_t i = begin; i < end; ++i) {
          forces_[i] =
              particles_[i].charge * tree_.field_at(particles_[i].position(), i);
        }
      });
    }
  }
  forces_fresh_ = true;
}

void PepcSimulation::step() {
  if (!forces_fresh_) compute_forces();
  const double dt = config_.dt;
  // Kick (half), drift, rebuild forces, kick (half).
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    Particle& p = particles_[i];
    p.set_velocity(p.velocity() + (0.5 * dt / p.mass) * forces_[i]);
    p.set_position(p.position() + dt * p.velocity());
  }
  compute_forces();
  const double keep = 1.0 - config_.damping;
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    Particle& p = particles_[i];
    Vec3 v = p.velocity() + (0.5 * dt / p.mass) * forces_[i];
    if (config_.damping > 0.0) v *= keep;
    p.set_velocity(v);
  }
  domains_ = decompose(particles_, config_.processors);
  ++steps_;
}

double PepcSimulation::kinetic_energy() const {
  double e = 0.0;
  for (const auto& p : particles_) e += 0.5 * p.mass * norm2(p.velocity());
  return e;
}

double PepcSimulation::potential_energy() const {
  Octree tree(config_.tree);
  tree.build(particles_);
  return tree.potential_energy(particles_);
}

double PepcSimulation::mean_electron_speed() const {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& p : particles_) {
    if (p.charge < 0.0) {
      sum += norm(p.velocity());
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

Vec3 PepcSimulation::total_momentum() const {
  Vec3 m{};
  for (const auto& p : particles_) m += p.mass * p.velocity();
  return m;
}

}  // namespace cs::pepc
