// Small string utilities used by the middleware layers (names, key=value
// incarnation scripts, registry queries).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cs::common {

/// Splits on a separator; empty fields are kept.
std::vector<std::string> split(std::string_view text, char sep);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True when `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// Strips leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

/// Simple glob match supporting '*' (any run) and '?' (any one char);
/// used by registry queries.
bool glob_match(std::string_view pattern, std::string_view text) noexcept;

}  // namespace cs::common
