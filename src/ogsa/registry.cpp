#include "ogsa/registry.hpp"

#include "common/strings.hpp"

namespace cs::ogsa {

using common::Result;
using common::Status;
using common::StatusCode;

Status Registry::publish(ServicePtr service) {
  if (!service) {
    return Status{StatusCode::kInvalidArgument, "null service"};
  }
  std::scoped_lock lock(mutex_);
  sweep_locked();
  auto [it, inserted] = services_.emplace(service->handle(), service);
  if (!inserted) {
    return Status{StatusCode::kAlreadyExists,
                  "handle already published: " + service->handle()};
  }
  return Status::ok();
}

Status Registry::unpublish(const Handle& handle) {
  std::scoped_lock lock(mutex_);
  if (services_.erase(handle) == 0) {
    return Status{StatusCode::kNotFound, "not published: " + handle};
  }
  return Status::ok();
}

std::vector<RegistryEntry> Registry::find(
    const std::string& handle_pattern) const {
  std::scoped_lock lock(mutex_);
  sweep_locked();
  std::vector<RegistryEntry> out;
  for (const auto& [handle, service] : services_) {
    if (common::glob_match(handle_pattern, handle)) {
      out.push_back(RegistryEntry{handle, service->query_service_data("*")});
    }
  }
  return out;
}

std::vector<RegistryEntry> Registry::find_by_service_data(
    const std::string& name, const std::string& value_pattern) const {
  std::scoped_lock lock(mutex_);
  sweep_locked();
  std::vector<RegistryEntry> out;
  for (const auto& [handle, service] : services_) {
    auto value = service->find_service_data(name);
    if (value.is_ok() && common::glob_match(value_pattern, value.value())) {
      out.push_back(RegistryEntry{handle, service->query_service_data("*")});
    }
  }
  return out;
}

Result<ServicePtr> Registry::resolve(const Handle& handle) const {
  std::scoped_lock lock(mutex_);
  sweep_locked();
  auto it = services_.find(handle);
  if (it == services_.end()) {
    return Status{StatusCode::kNotFound, "no live service at " + handle};
  }
  return it->second;
}

std::size_t Registry::size() const {
  std::scoped_lock lock(mutex_);
  sweep_locked();
  return services_.size();
}

Result<std::string> Registry::invoke(const std::string& operation,
                                     const std::vector<std::string>& args) {
  if (operation == "find") {
    if (args.size() != 1) {
      return Status{StatusCode::kInvalidArgument, "find needs one pattern"};
    }
    std::string out;
    for (const auto& entry : find(args[0])) {
      if (!out.empty()) out += "\n";
      out += entry.handle;
    }
    return out;
  }
  return GridService::invoke(operation, args);
}

void Registry::sweep_locked() const {
  for (auto it = services_.begin(); it != services_.end();) {
    if (!it->second->is_alive()) {
      it = services_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace cs::ogsa
