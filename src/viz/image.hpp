// RGB framebuffer and PPM output.
//
// Frames are what the VizServer-style remote-rendering pipeline compresses
// and ships ("only compressed bitmaps need to be sent to the participating
// sites", paper section 2.4), and what examples write to disk as proof of
// the Fig. 3-style renderings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace cs::viz {

struct Color {
  std::uint8_t r = 0, g = 0, b = 0;
  friend bool operator==(const Color&, const Color&) = default;
};

class Image {
 public:
  Image() = default;
  Image(int width, int height, Color fill = {0, 0, 0})
      : width_(width), height_(height),
        pixels_(static_cast<std::size_t>(width) *
                    static_cast<std::size_t>(height),
                fill) {}

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  bool empty() const noexcept { return pixels_.empty(); }

  Color& at(int x, int y) noexcept {
    return pixels_[static_cast<std::size_t>(y) *
                       static_cast<std::size_t>(width_) +
                   static_cast<std::size_t>(x)];
  }
  const Color& at(int x, int y) const noexcept {
    return pixels_[static_cast<std::size_t>(y) *
                       static_cast<std::size_t>(width_) +
                   static_cast<std::size_t>(x)];
  }

  bool contains(int x, int y) const noexcept {
    return x >= 0 && y >= 0 && x < width_ && y < height_;
  }

  void fill(Color c) { std::fill(pixels_.begin(), pixels_.end(), c); }

  std::vector<Color>& pixels() noexcept { return pixels_; }
  const std::vector<Color>& pixels() const noexcept { return pixels_; }

  /// Raw byte size of the uncompressed frame.
  std::size_t byte_size() const noexcept { return pixels_.size() * 3; }

  /// Writes a binary PPM (P6).
  common::Status write_ppm(const std::string& path) const;

  friend bool operator==(const Image& a, const Image& b) = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Color> pixels_;
};

}  // namespace cs::viz
