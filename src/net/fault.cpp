#include "net/fault.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>
#include <utility>

#include "common/rng.hpp"

namespace cs::net {

using common::Bytes;
using common::ByteSpan;
using common::Deadline;
using common::Duration;
using common::Result;
using common::Status;
using common::StatusCode;

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kThrottle:
      return "throttle";
    case FaultKind::kStallSend:
      return "stall_send";
    case FaultKind::kStallRecv:
      return "stall_recv";
    case FaultKind::kShortWrite:
      return "short_write";
    case FaultKind::kClose:
      return "close";
    case FaultKind::kPartitionSend:
      return "partition_send";
    case FaultKind::kPartitionRecv:
      return "partition_recv";
  }
  return "unknown";
}

struct FaultStatsCell {
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> faults_fired{0};
  std::atomic<std::uint64_t> closes{0};
  std::atomic<std::uint64_t> delayed_ops{0};
  std::atomic<std::uint64_t> throttled_ops{0};
  std::atomic<std::uint64_t> stalled_ops{0};
  std::atomic<std::uint64_t> short_writes{0};
  std::atomic<std::uint64_t> dropped_messages{0};
};

namespace {

using CellPtr = std::shared_ptr<FaultStatsCell>;

/// Sleeps in short slices so a concurrent close() (or the deadline) ends an
/// injected wait instead of serving it blind.
constexpr auto kStallSlice = std::chrono::milliseconds(10);

/// Decorated endpoint: every op consults the plan's armed faults before
/// touching the inner connection. The mutex guards only the schedule state
/// (counters, fired/expired flags, the throttle's serialization point) —
/// never held across a sleep or an inner call, so send and recv stay
/// concurrently callable per the Connection contract.
class FaultConnection : public Connection {
 public:
  FaultConnection(ConnectionPtr inner, const FaultPlan& plan,
                  std::uint64_t ordinal, CellPtr cell)
      : inner_(std::move(inner)),
        cell_(std::move(cell)),
        start_ns_(common::steady_now_ns()) {
    common::Rng rng(plan.seed ^ (0x9e3779b97f4a7c15ULL * (ordinal + 1)));
    faults_.reserve(plan.faults.size());
    for (const Fault& fault : plan.faults) {
      Armed armed;
      armed.fault = fault;
      armed.threshold_ops =
          fault.after_ops + (fault.after_ops_jitter > 0
                                 ? rng.next_below(fault.after_ops_jitter + 1)
                                 : 0);
      faults_.push_back(armed);
    }
  }

  Status send(ByteSpan message, Deadline deadline) override {
    const Action action = decide(Dir::kSend, message.size());
    if (Status s = apply(action, deadline); !s.is_ok()) return s;
    if (action.drop) {
      cell_->dropped_messages.fetch_add(1, std::memory_order_relaxed);
      return Status::ok();
    }
    return inner_->send(message, deadline);
  }

  Status send_many(std::span<const ByteSpan> messages, Deadline deadline,
                   std::size_t& sent) override {
    sent = 0;
    for (const ByteSpan& message : messages) {
      const Action action = decide(Dir::kSend, message.size());
      if (action.short_write && sent >= 1) {
        cell_->short_writes.fetch_add(1, std::memory_order_relaxed);
        return Status{StatusCode::kTimeout, "injected short write"};
      }
      if (Status s = apply(action, deadline); !s.is_ok()) return s;
      if (action.drop) {
        cell_->dropped_messages.fetch_add(1, std::memory_order_relaxed);
        ++sent;
        continue;
      }
      if (Status s = inner_->send(message, deadline); !s.is_ok()) return s;
      ++sent;
    }
    return Status::ok();
  }

  Result<Bytes> recv(Deadline deadline) override {
    for (;;) {
      const Action action = decide(Dir::kRecv, 0);
      if (Status s = apply(action, deadline); !s.is_ok()) return s;
      auto r = inner_->recv(deadline);
      if (!r.is_ok()) return r;
      {
        std::scoped_lock lock(mutex_);
        bytes_ += r.value().size();
      }
      if (action.drop) {
        cell_->dropped_messages.fetch_add(1, std::memory_order_relaxed);
        if (deadline.has_expired()) {
          return Status{StatusCode::kTimeout, "partitioned receive"};
        }
        continue;  // the partition eats this message; wait for the next
      }
      return r;
    }
  }

  void close() override { inner_->close(); }
  bool is_open() const override { return inner_->is_open(); }
  std::string peer_address() const override { return inner_->peer_address(); }
  ConnStats stats() const override { return inner_->stats(); }
  // native_handle() stays -1: see the header — fault injection opts out of
  // the readiness fast path.

 private:
  enum class Dir : std::uint8_t { kSend, kRecv };

  struct Armed {
    Fault fault;
    std::uint64_t threshold_ops = 0;  ///< after_ops with jitter applied
    bool fired = false;
    bool expired = false;
    std::uint64_t fired_at_op = 0;
  };

  /// What the current op must do, resolved under the mutex, executed
  /// outside it.
  struct Action {
    std::uint64_t delay_ns = 0;  ///< combined kDelay + kThrottle wait
    bool stall = false;
    bool drop = false;
    bool close = false;
    bool short_write = false;
  };

  Action decide(Dir dir, std::size_t bytes) {
    Action action;
    const std::uint64_t now = common::steady_now_ns();
    std::scoped_lock lock(mutex_);
    for (Armed& armed : faults_) {
      if (!armed.fired) {
        const auto after_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                armed.fault.after)
                .count());
        if (ops_ >= armed.threshold_ops && bytes_ >= armed.fault.after_bytes &&
            now - start_ns_ >= after_ns) {
          armed.fired = true;
          armed.fired_at_op = ops_;
          cell_->faults_fired.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (!armed.fired || armed.expired) continue;
      if (armed.fault.for_ops > 0 &&
          ops_ - armed.fired_at_op >= armed.fault.for_ops) {
        armed.expired = true;
        continue;
      }
      switch (armed.fault.kind) {
        case FaultKind::kDelay:
          action.delay_ns += static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  armed.fault.delay)
                  .count());
          cell_->delayed_ops.fetch_add(1, std::memory_order_relaxed);
          break;
        case FaultKind::kThrottle:
          if (dir == Dir::kSend && armed.fault.bandwidth_bytes_per_sec > 0) {
            const std::uint64_t tx_ns =
                bytes * 1'000'000'000ULL / armed.fault.bandwidth_bytes_per_sec;
            const std::uint64_t start = std::max(now, throttle_busy_until_ns_);
            action.delay_ns += start - now;
            throttle_busy_until_ns_ = start + tx_ns;
            cell_->throttled_ops.fetch_add(1, std::memory_order_relaxed);
          }
          break;
        case FaultKind::kStallSend:
          if (dir == Dir::kSend) action.stall = true;
          break;
        case FaultKind::kStallRecv:
          if (dir == Dir::kRecv) action.stall = true;
          break;
        case FaultKind::kShortWrite:
          if (dir == Dir::kSend) action.short_write = true;
          break;
        case FaultKind::kClose:
          action.close = true;
          break;
        case FaultKind::kPartitionSend:
          if (dir == Dir::kSend) action.drop = true;
          break;
        case FaultKind::kPartitionRecv:
          if (dir == Dir::kRecv) action.drop = true;
          break;
      }
    }
    ++ops_;
    if (dir == Dir::kSend) bytes_ += bytes;
    return action;
  }

  /// Executes the blocking parts of an action: injected close, delay, or
  /// stall. Returns ok when the op may proceed to the inner connection.
  Status apply(const Action& action, Deadline deadline) {
    if (action.close) {
      inner_->close();
      cell_->closes.fetch_add(1, std::memory_order_relaxed);
      return Status{StatusCode::kClosed, "injected close"};
    }
    if (action.delay_ns > 0) {
      const auto wanted = std::chrono::nanoseconds(action.delay_ns);
      if (!deadline.is_infinite() &&
          wanted > std::chrono::duration_cast<std::chrono::nanoseconds>(
                       deadline.remaining())) {
        std::this_thread::sleep_for(deadline.remaining());
        return Status{StatusCode::kTimeout, "injected delay"};
      }
      std::this_thread::sleep_for(wanted);
    }
    if (action.stall) {
      cell_->stalled_ops.fetch_add(1, std::memory_order_relaxed);
      while (!deadline.has_expired()) {
        if (!inner_->is_open()) {
          return Status{StatusCode::kClosed, "closed during injected stall"};
        }
        const auto slice = std::min<Duration>(kStallSlice, deadline.remaining());
        std::this_thread::sleep_for(slice);
      }
      return Status{StatusCode::kTimeout, "injected stall"};
    }
    return Status::ok();
  }

  ConnectionPtr inner_;
  CellPtr cell_;
  const std::uint64_t start_ns_;

  std::mutex mutex_;  ///< guards the schedule state below only
  std::vector<Armed> faults_;
  std::uint64_t ops_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t throttle_busy_until_ns_ = 0;
};

ConnectionPtr wrap(ConnectionPtr conn, const FaultPlan& plan,
                   std::uint64_t ordinal, const CellPtr& cell) {
  if (plan.empty() || ordinal >= plan.max_faulted_connections) return conn;
  cell->connections.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<FaultConnection>(std::move(conn), plan, ordinal,
                                           cell);
}

/// Accept-side decorator: each accepted connection gets the accept plan
/// under this listener's own ordinal sequence. No native handle — accepted
/// connections must pass through wrap(), which the readiness accept path
/// would bypass.
class FaultListener : public Listener {
 public:
  FaultListener(ListenerPtr inner, FaultPlan plan, CellPtr cell)
      : inner_(std::move(inner)), plan_(std::move(plan)),
        cell_(std::move(cell)) {}

  Result<ConnectionPtr> accept(Deadline deadline) override {
    auto r = inner_->accept(deadline);
    if (!r.is_ok()) return r;
    return wrap(std::move(r).value(), plan_,
                ordinal_.fetch_add(1, std::memory_order_relaxed), cell_);
  }

  void close() override { inner_->close(); }
  std::string address() const override { return inner_->address(); }

 private:
  ListenerPtr inner_;
  FaultPlan plan_;
  CellPtr cell_;
  std::atomic<std::uint64_t> ordinal_{0};
};

}  // namespace

FaultNetwork::FaultNetwork(Network& inner, FaultPlan dial_plan,
                           FaultPlan accept_plan)
    : inner_(inner),
      dial_plan_(std::move(dial_plan)),
      accept_plan_(std::move(accept_plan)),
      cell_(std::make_shared<FaultStatsCell>()) {}

Result<ListenerPtr> FaultNetwork::listen(const std::string& address) {
  auto listener = inner_.listen(address);
  if (!listener.is_ok() || accept_plan_.empty()) return listener;
  return ListenerPtr{std::make_unique<FaultListener>(
      std::move(listener).value(), accept_plan_, cell_)};
}

Result<ConnectionPtr> FaultNetwork::connect(const std::string& address,
                                            Deadline deadline) {
  auto conn = inner_.connect(address, deadline);
  if (!conn.is_ok()) return conn;
  return wrap(std::move(conn).value(), dial_plan_,
              dial_ordinal_.fetch_add(1, std::memory_order_relaxed), cell_);
}

FaultStats FaultNetwork::stats() const {
  FaultStats out;
  out.connections = cell_->connections.load(std::memory_order_relaxed);
  out.faults_fired = cell_->faults_fired.load(std::memory_order_relaxed);
  out.closes = cell_->closes.load(std::memory_order_relaxed);
  out.delayed_ops = cell_->delayed_ops.load(std::memory_order_relaxed);
  out.throttled_ops = cell_->throttled_ops.load(std::memory_order_relaxed);
  out.stalled_ops = cell_->stalled_ops.load(std::memory_order_relaxed);
  out.short_writes = cell_->short_writes.load(std::memory_order_relaxed);
  out.dropped_messages =
      cell_->dropped_messages.load(std::memory_order_relaxed);
  return out;
}

}  // namespace cs::net
