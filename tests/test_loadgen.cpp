// Unit and end-to-end tests for cs::loadgen: frame codec, workload
// validation, the driver against its LoadPeer over both transports, report
// consistency (aggregate counters must equal the per-connection sums), and
// smoke runs of the three service scenarios.
#include <gtest/gtest.h>

#include <string>

#include "loadgen/driver.hpp"
#include "loadgen/report.hpp"
#include "loadgen/scenarios.hpp"
#include "loadgen/workload.hpp"
#include "net/inproc.hpp"
#include "net/tcp.hpp"

namespace cs::loadgen {
namespace {

using namespace std::chrono_literals;
using common::Deadline;
using common::StatusCode;

// -------------------------------------------------------------- Workload --

TEST(Workload, PatternNamesRoundTrip) {
  for (Pattern p : {Pattern::kPush, Pattern::kPull, Pattern::kDuplex,
                    Pattern::kBurst}) {
    auto parsed = parse_pattern(to_string(p));
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value(), p);
  }
  EXPECT_EQ(parse_pattern("bogus").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Workload, ValidateRejectsBadCombinations) {
  Workload w;
  EXPECT_TRUE(w.validate().is_ok());
  w.connections = 0;
  EXPECT_EQ(w.validate().code(), StatusCode::kInvalidArgument);
  w = Workload{};
  w.min_payload = 10;
  w.max_payload = 5;
  EXPECT_EQ(w.validate().code(), StatusCode::kInvalidArgument);
  w = Workload{};
  w.pattern = Pattern::kBurst;  // burst without a rate is meaningless
  w.messages_per_sec = 0.0;
  EXPECT_EQ(w.validate().code(), StatusCode::kInvalidArgument);
  w.messages_per_sec = 100.0;
  EXPECT_TRUE(w.validate().is_ok());
}

// ------------------------------------------------------------- LoadFrame --

TEST(LoadFrame, EncodeDecodeRoundTrip) {
  LoadFrame frame;
  frame.op = FrameOp::kRequest;
  frame.seq = 0x1122334455667788ULL;
  frame.t_send_ns = 42;
  frame.reply_bytes = 512;
  const auto wire = frame.encode(16);
  EXPECT_EQ(wire.size(), LoadFrame::kHeaderBytes + 16);
  auto decoded = LoadFrame::decode(wire);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().op, FrameOp::kRequest);
  EXPECT_EQ(decoded.value().seq, frame.seq);
  EXPECT_EQ(decoded.value().t_send_ns, frame.t_send_ns);
  EXPECT_EQ(decoded.value().reply_bytes, 512u);
}

TEST(LoadFrame, DecodeRejectsGarbage) {
  EXPECT_EQ(LoadFrame::decode(common::Bytes(4, 0)).status().code(),
            StatusCode::kProtocolError);  // too short
  common::Bytes bad(LoadFrame::kHeaderBytes, 0);
  EXPECT_EQ(LoadFrame::decode(bad).status().code(),
            StatusCode::kProtocolError);  // wrong magic
  LoadFrame frame;
  auto wire = frame.encode(0);
  wire[4] = 99;  // invalid op
  EXPECT_EQ(LoadFrame::decode(wire).status().code(),
            StatusCode::kProtocolError);
}

// ---------------------------------------------------------------- Driver --

/// Aggregate counters must be exactly the sum of the per-connection ones —
/// the property the ISSUE's acceptance criterion pins down.
void expect_consistent(const Report& report) {
  ASSERT_EQ(report.per_connection.size(), report.connections);
  std::uint64_t ops = 0, sent = 0, sent_bytes = 0, received = 0,
                received_bytes = 0;
  for (const auto& conn : report.per_connection) {
    ops += conn.ops;
    sent += conn.transport.messages_sent;
    sent_bytes += conn.transport.bytes_sent;
    received += conn.transport.messages_received;
    received_bytes += conn.transport.bytes_received;
  }
  EXPECT_EQ(report.ops, ops);
  EXPECT_EQ(report.transport.messages_sent, sent);
  EXPECT_EQ(report.transport.bytes_sent, sent_bytes);
  EXPECT_EQ(report.transport.messages_received, received);
  EXPECT_EQ(report.transport.bytes_received, received_bytes);
}

TEST(Driver, DuplexClosedLoopOverInProc) {
  net::InProcNetwork net;
  auto peer = LoadPeer::start(net, "peer:1");
  ASSERT_TRUE(peer.is_ok());
  Workload w;
  w.pattern = Pattern::kDuplex;
  w.connections = 4;
  w.duration = 300ms;
  w.min_payload = 32;
  w.max_payload = 256;
  auto report = run_workload(net, "peer:1", w);
  ASSERT_TRUE(report.is_ok());
  EXPECT_GT(report.value().ops, 0u);
  EXPECT_EQ(report.value().errors, 0u);
  // Closed-loop duplex: one message out and one back per completed op.
  EXPECT_EQ(report.value().latency.count(), report.value().ops);
  EXPECT_GE(report.value().transport.messages_sent, report.value().ops);
  expect_consistent(report.value());
  peer.value()->stop();
}

TEST(Driver, PullPayloadsFlowDownstream) {
  net::InProcNetwork net;
  auto peer = LoadPeer::start(net, "peer:2");
  ASSERT_TRUE(peer.is_ok());
  Workload w;
  w.pattern = Pattern::kPull;
  w.connections = 2;
  w.duration = 200ms;
  w.min_payload = 1024;
  w.max_payload = 1024;
  auto report = run_workload(net, "peer:2", w);
  ASSERT_TRUE(report.is_ok());
  ASSERT_GT(report.value().ops, 0u);
  // Pull: requests are header-only, replies carry the kilobyte payload.
  EXPECT_GT(report.value().transport.bytes_received,
            report.value().transport.bytes_sent);
  peer.value()->stop();
}

TEST(Driver, BurstRateIsHonoredAndPeerAccounts) {
  net::InProcNetwork net;
  auto peer = LoadPeer::start(net, "peer:3");
  ASSERT_TRUE(peer.is_ok());
  Workload w;
  w.pattern = Pattern::kBurst;
  w.connections = 2;
  w.duration = 500ms;
  w.messages_per_sec = 100.0;
  auto report = run_workload(net, "peer:3", w, peer.value().get());
  ASSERT_TRUE(report.is_ok());
  // ~100 msg/s * 0.5 s * 2 conns = ~100 frames; rate-limited, not unbounded.
  EXPECT_GT(report.value().ops, 50u);
  EXPECT_LT(report.value().ops, 200u);
  // One-way latency is recorded by the peer and folded into the report.
  EXPECT_GT(report.value().latency.count(), 0u);
  EXPECT_EQ(peer.value()->stream_frames(), report.value().ops);
  peer.value()->stop();
}

TEST(Driver, RampUpStaggersButCompletes) {
  net::InProcNetwork net;
  auto peer = LoadPeer::start(net, "peer:4");
  ASSERT_TRUE(peer.is_ok());
  Workload w;
  w.pattern = Pattern::kPush;
  w.connections = 4;
  w.duration = 200ms;
  w.ramp_up = 200ms;
  auto report = run_workload(net, "peer:4", w);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().per_connection.size(), 4u);
  for (const auto& conn : report.value().per_connection) {
    EXPECT_GT(conn.ops, 0u);  // even the last worker got its share
  }
  EXPECT_GE(report.value().elapsed, 380ms);
  peer.value()->stop();
}

TEST(Driver, SameWorkloadRunsOverTcp) {
  net::TcpNetwork net;
  auto peer = LoadPeer::start(net, "0");
  ASSERT_TRUE(peer.is_ok());
  Workload w;
  w.pattern = Pattern::kDuplex;
  w.connections = 2;
  w.duration = 200ms;
  auto report = run_workload(net, peer.value()->address(), w);
  ASSERT_TRUE(report.is_ok());
  EXPECT_GT(report.value().ops, 0u);
  EXPECT_EQ(report.value().errors, 0u);
  expect_consistent(report.value());
  peer.value()->stop();
}

TEST(Driver, RejectsInvalidWorkload) {
  net::InProcNetwork net;
  Workload w;
  w.connections = 0;
  EXPECT_EQ(run_workload(net, "nowhere", w).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------- Report --

TEST(Report, JsonFollowsBenchmarkSchema) {
  Report report;
  report.name = "unit";
  report.connections = 3;
  report.elapsed = 1s;
  ConnectionReport conn;
  conn.ops = 10;
  conn.transport = {10, 1000, 10, 1000};
  common::Histogram latency;
  for (int i = 1; i <= 10; ++i) latency.record(i * 1000u);
  report.add_connection(conn, latency);
  const std::string json = to_json(report);
  for (const char* key :
       {"\"context\"", "\"benchmarks\"", "\"name\": \"loadgen/unit\"",
        "\"iterations\": 10", "\"items_per_second\"", "\"bytes_per_second\"",
        "\"latency_p50_us\"", "\"latency_p99_us\"", "\"messages_sent\": 10"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_FALSE(summary_line(report).empty());
}

// ------------------------------------------------------------- Scenarios --

TEST(Scenarios, MultiplexerSoakIsConsistent) {
  ScenarioOptions options;
  options.connections = 8;
  options.duration = 500ms;
  options.rate_per_sec = 200.0;
  options.payload_bytes = 256;
  auto report = run_multiplexer_soak(options);
  ASSERT_TRUE(report.is_ok());
  EXPECT_GT(report.value().ops, 0u);
  // Every delivered sample was latency-accounted.
  EXPECT_EQ(report.value().latency.count(), report.value().ops);
  // Samples arrive as received messages (plus a few control frames).
  EXPECT_GE(report.value().transport.messages_received, report.value().ops);
  expect_consistent(report.value());
}

// Exercises the sharded fan-out at a fleet size where the old sequential
// broadcast collapsed. Runs under every sanitizer CI job (including TSan,
// where it doubles as the race check for the shard workers).
TEST(Scenarios, MultiplexerSoakScalesTo256Viewers) {
  ScenarioOptions options;
  options.connections = 256;
  // Generous window: under TSan on a loaded runner the 256-thread fleet
  // needs a while before the first samples flow end to end.
  options.duration = 2500ms;
  options.rate_per_sec = 50.0;
  options.payload_bytes = 128;
  options.fanout_shards = 2;
  auto report = run_multiplexer_soak(options);
  ASSERT_TRUE(report.is_ok());
  EXPECT_GT(report.value().ops, 0u);
  EXPECT_EQ(report.value().latency.count(), report.value().ops);
  expect_consistent(report.value());
}

TEST(Scenarios, MultiplexerSoakOverTcpKeepsThreadCountFlat) {
  ScenarioOptions options;
  options.connections = 32;
  options.duration = 500ms;
  options.rate_per_sec = 100.0;
  options.payload_bytes = 128;
  options.fanout_shards = 1;
  options.transport = ScenarioOptions::Transport::kTcp;
  // A thread-per-viewer design needs 32+ threads here; the epoll host
  // needs a handful (accept pumps, sim pump, one shard, one poller).
  options.max_service_threads = 8;
  auto report = run_multiplexer_soak(options);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_GT(report.value().ops, 0u);
  double hosted = 0.0;
  for (const auto& [key, value] : report.value().service_metrics) {
    if (key == "hosted_viewers") hosted = value;
  }
  EXPECT_EQ(hosted, 32.0);
  expect_consistent(report.value());
}

TEST(Scenarios, MultiplexerSoakThreadBoundCatchesPumpBaseline) {
  ScenarioOptions options;
  options.connections = 16;
  options.duration = 300ms;
  options.rate_per_sec = 100.0;
  options.fanout_shards = 1;
  options.transport = ScenarioOptions::Transport::kTcp;
  options.use_event_host = false;  // legacy baseline: one pump per viewer
  options.max_service_threads = 8;
  EXPECT_EQ(run_multiplexer_soak(options).status().code(),
            StatusCode::kInternal);
}

TEST(Scenarios, VizServerLoopDeliversFrames) {
  ScenarioOptions options;
  options.connections = 4;
  options.duration = 500ms;
  options.rate_per_sec = 40.0;
  auto report = run_vizserver_loop(options);
  ASSERT_TRUE(report.is_ok());
  EXPECT_GT(report.value().ops, 0u);
  EXPECT_GT(report.value().latency.count(), 0u);
  expect_consistent(report.value());
}

TEST(Scenarios, VizServerLoopStaysAsleepWithStalledClients) {
  // The stalled participants wedge their receive windows and never drain;
  // the scenario itself fails with kInternal if the render loop wakes up
  // more often than sleeping/rendering can explain (the old bug: polling
  // accept with an expired deadline every pass).
  ScenarioOptions options;
  options.connections = 6;
  options.stalled_connections = 2;
  options.duration = 500ms;
  options.rate_per_sec = 40.0;
  auto report = run_vizserver_loop(options);
  ASSERT_TRUE(report.is_ok()) << report.status().to_string();
  EXPECT_GT(report.value().ops, 0u);
  double iterations = 0.0;
  double budget = 0.0;
  for (const auto& [key, value] : report.value().service_metrics) {
    if (key == "render_loop_iterations") iterations = value;
    if (key == "render_loop_wakeup_budget") budget = value;
  }
  EXPECT_GT(iterations, 0.0);
  EXPECT_LE(iterations, budget);
  expect_consistent(report.value());
}

TEST(Scenarios, MediaBridgeReachesBothHalves) {
  ScenarioOptions options;
  options.connections = 6;  // 3 multicast members + 3 bridged clients
  options.duration = 500ms;
  options.rate_per_sec = 100.0;
  options.payload_bytes = 2048;
  auto report = run_media_bridge(options);
  ASSERT_TRUE(report.is_ok());
  EXPECT_GT(report.value().ops, 0u);
  expect_consistent(report.value());
  // Both the direct-multicast half and the bridged half saw traffic — and
  // the multicast stats fix makes the direct half's counters non-zero.
  for (const auto& conn : report.value().per_connection) {
    EXPECT_GT(conn.transport.messages_received, 0u);
    EXPECT_GT(conn.transport.bytes_received, 0u);
  }
}

TEST(Scenarios, RejectsZeroConnections) {
  ScenarioOptions options;
  options.connections = 0;
  EXPECT_EQ(run_multiplexer_soak(options).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(run_vizserver_loop(options).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(run_media_bridge(options).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cs::loadgen
