// VISIT-over-UNICORE proxies (paper section 3.3).
//
// UNICORE is transactional: the client submits, polls, fetches — no stateful
// connection to the target system. VISIT is connection-oriented, with the
// steered application as the client. The bridge is a pair of proxies:
//
//   * ProxyServer — "separate processes running on each target system".
//     To the simulation it *is* the VISIT server (same address/password
//     handshake, answers parameter requests from its table). It queues the
//     simulation's output frames per attached user. The vbroker
//     (multiplexer) functionality is folded in here, exactly as the paper
//     describes: every attachment receives all samples, only the master
//     attachment's steering pushes are accepted, and the master role moves
//     on request. "All users participating in the collaboration have to
//     authenticate to the UNICORE system" — hence attach() trusts its
//     caller (the NJS), which has already authenticated the user.
//
//   * ProxyClient — the UNICORE client plugin. "By polling the target
//     system for new data, that plugin is able to emulate the server
//     capabilities required for the VISIT connection." It turns a
//     transaction function (one UPL round trip through Gateway and NJS)
//     into a net::Connection that a ViewerClient can use unmodified.
//
// The poll period is the knob benchmark E9 sweeps: proxied steering works,
// at the cost of up to one poll period of extra latency per leg.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/fanout.hpp"
#include "common/status.hpp"
#include "net/accept_pump.hpp"
#include "net/transport.hpp"
#include "obs/registry.hpp"
#include "wire/message.hpp"

namespace cs::visit {

// ---------------------------------------------------------------------------
// Proxy transaction wire format (carried opaquely inside UPL transactions).
// ---------------------------------------------------------------------------

enum class ProxyOp : std::uint8_t {
  kAttach = 1,
  kDetach = 2,
  kPoll = 3,
  kPush = 4,
};

struct ProxyRequest {
  ProxyOp op = ProxyOp::kPoll;
  std::uint64_t attachment = 0;
  std::uint32_t max_frames = 64;        ///< for kPoll
  std::vector<common::Bytes> frames;    ///< for kPush
};

struct ProxyResponse {
  common::Status status;
  std::uint64_t attachment = 0;         ///< for kAttach
  std::vector<common::Bytes> frames;    ///< for kPoll
};

common::Bytes encode_proxy_request(const ProxyRequest& request);
common::Result<ProxyRequest> decode_proxy_request(common::ByteSpan raw);
common::Bytes encode_proxy_response(const ProxyResponse& response);
common::Result<ProxyResponse> decode_proxy_response(common::ByteSpan raw);

// ---------------------------------------------------------------------------
// ProxyServer
// ---------------------------------------------------------------------------

class ProxyServer {
 public:
  struct Options {
    /// Vsite-local address the simulation's SimClient connects to.
    std::string sim_address;
    /// VISIT password expected from the simulation.
    std::string password;
    /// Per-attachment frame queue bound. When full, data frames drop-oldest
    /// (a slow polling user misses samples, never stalls the sim) while
    /// control frames detach the attachment — the same
    /// common::OverflowPolicy split as the multiplexer fan-out.
    std::size_t max_queued_frames = 1024;
  };

  struct Stats {
    std::uint64_t samples_in = 0;
    std::uint64_t frames_queued = 0;
    std::uint64_t frames_dropped = 0;
    /// Attachments forcibly detached because a control frame overflowed
    /// their queue (control traffic is lossless-or-dead).
    std::uint64_t overflow_disconnects = 0;
    std::uint64_t steers_accepted = 0;
    std::uint64_t steers_rejected = 0;
    std::uint64_t requests_served = 0;
  };

  static common::Result<std::unique_ptr<ProxyServer>> start(
      net::Network& net, const Options& options);
  ~ProxyServer();
  ProxyServer(const ProxyServer&) = delete;
  ProxyServer& operator=(const ProxyServer&) = delete;
  void stop();

  /// Executes one proxy transaction on behalf of an authenticated user.
  ProxyResponse transact(const ProxyRequest& request);

  std::size_t attachment_count() const;
  std::uint64_t master_id() const;
  /// Snapshot of the service counters (shim over the metrics registry).
  Stats stats() const;
  /// The service's metrics registry (source of truth for the counters).
  obs::Registry& metrics() noexcept { return metrics_; }
  const std::string& sim_address() const noexcept {
    return options_.sim_address;
  }

 private:
  ProxyServer() = default;
  /// Accept-pump handler: handshake on the pump thread, then (re)spawn the
  /// sim pump for the new connection.
  void handle_sim_conn(net::ConnectionPtr conn);
  void sim_pump(const std::stop_token& st, net::ConnectionPtr conn);
  void enqueue_to_all(const common::FramePtr& frame,
                      common::OverflowPolicy policy);
  /// Returns false when the push detached the attachment (control-frame
  /// overflow). Caller holds mutex_.
  bool enqueue_to(std::uint64_t id, common::FramePtr frame,
                  common::OverflowPolicy policy);
  /// Removes the attachment and moves the master role if needed. Caller
  /// holds mutex_.
  void detach_locked(std::uint64_t id);
  void promote_locked(std::uint64_t id);

  struct Attachment {
    common::OutboundQueue queue;
    explicit Attachment(std::size_t capacity) : queue(capacity) {}
  };

  Options options_;
  net::ListenerPtr listener_;
  std::unique_ptr<net::AcceptPump> accept_pump_;
  /// Guards sim_pump_thread_: the accept handler replaces it when a new
  /// simulation connects while stop() requests its termination.
  std::mutex sim_pump_mutex_;
  std::jthread sim_pump_thread_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, Attachment> attachments_;
  std::uint64_t master_id_ = 0;
  std::uint64_t next_attachment_id_ = 1;
  std::map<std::uint32_t, wire::Message> parameters_;
  /// Replay caches hold pre-encoded shared frames — one encode per sample,
  /// shared (not copied) across every attachment queue and late-attach
  /// replay.
  std::map<std::uint32_t, common::FramePtr> schema_cache_;
  std::map<std::uint32_t, common::FramePtr> last_sample_;
  /// Registry-backed counters; stats() reads them back for the old shape.
  /// Uniform roll-up names (frames_published, queue_drops,
  /// overflow_disconnects) match every other service; proxy-specific rows
  /// carry the service prefix.
  obs::Registry metrics_;
  obs::Counter& ctr_samples_in_ =
      metrics_.counter("frames_published", "frames");
  obs::Counter& ctr_frames_queued_ =
      metrics_.counter("proxy_frames_queued", "frames");
  obs::Counter& ctr_frames_dropped_ = metrics_.counter("queue_drops", "frames");
  obs::Counter& ctr_overflow_disconnects_ =
      metrics_.counter("overflow_disconnects", "count");
  obs::Counter& ctr_steers_accepted_ =
      metrics_.counter("proxy_steers_accepted", "updates");
  obs::Counter& ctr_steers_rejected_ =
      metrics_.counter("proxy_steers_rejected", "updates");
  obs::Counter& ctr_requests_served_ =
      metrics_.counter("proxy_requests_served", "requests");
  std::atomic<bool> stopped_{false};
};

// ---------------------------------------------------------------------------
// ProxyClient
// ---------------------------------------------------------------------------

/// One UPL round trip to the job's ProxyServer, however it is transported
/// (through Gateway + NJS in production, directly in unit tests).
using ProxyTransact =
    std::function<common::Result<common::Bytes>(common::ByteSpan request)>;

class ProxyClient {
 public:
  struct Options {
    /// How often the plugin polls the target system for new frames.
    common::Duration poll_period = std::chrono::milliseconds(20);
    std::uint32_t max_frames_per_poll = 64;
  };

  /// Attaches to the job's proxy-server and starts the polling thread.
  static common::Result<std::unique_ptr<ProxyClient>> attach(
      ProxyTransact transact, const Options& options);

  ~ProxyClient();
  ProxyClient(const ProxyClient&) = delete;
  ProxyClient& operator=(const ProxyClient&) = delete;

  /// Local connection endpoint emulating the VISIT server: recv() yields
  /// frames fetched by the polling thread; send() pushes a frame through a
  /// transaction immediately. Feed it to ViewerClient::adopt().
  net::ConnectionPtr connection();

  void detach();
  std::uint64_t attachment_id() const noexcept { return attachment_; }

 private:
  ProxyClient() = default;
  void poll_loop(const std::stop_token& st);

  class Pipe;  // net::Connection adapter
  ProxyTransact transact_;
  Options options_;
  std::uint64_t attachment_ = 0;
  std::shared_ptr<Pipe> pipe_;
  std::jthread poll_thread_;
  std::atomic<bool> detached_{false};
};

}  // namespace cs::visit
