// E2 — the post-processing feedback loop (paper section 4.3).
//
// Claim: "With a local feedback loop involving the generation of a new
// cutting plane and rendering it ... it is possible to have 15 or more
// frames per second with modified content. In a collaborative environment
// such scene update rates are only possible if the generation of the new
// content is done locally and only synchronisation information such as the
// parameter set for the cutting plane determination is exchanged."
//
// Measured: master steers the cutting-plane position, every replica pumps
// and re-executes; time until *all* participants show the new content.
// Sweeps participant count and field resolution — the parameter-sync time
// should be flat in both, because only ~40-byte records cross the wire.
#include <benchmark/benchmark.h>

#include <cmath>

#include "covise/collab.hpp"
#include "net/inproc.hpp"
#include "visit/control.hpp"

namespace {

using namespace std::chrono_literals;
using cs::common::Deadline;
using cs::common::Vec3;

cs::covise::UniformGridData analytic_field(int n, double time) {
  cs::covise::UniformGridData g;
  g.nx = g.ny = g.nz = n;
  g.spacing = 2.0 / (n - 1);
  g.origin = Vec3{-1, -1, -1};
  g.values.resize(static_cast<std::size_t>(n) * n * n);
  for (int z = 0; z < n; ++z) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const Vec3 p = g.origin +
                       Vec3{x * g.spacing, y * g.spacing, z * g.spacing};
        g.values[(static_cast<std::size_t>(z) * n + y) * n + x] =
            static_cast<float>(0.6 - norm(p) + 0.05 * std::sin(time));
      }
    }
  }
  return g;
}

cs::covise::PipelineBuilder pipeline(int field_n) {
  return [field_n](cs::covise::Controller& c)
             -> cs::common::Result<std::string> {
    if (auto s = c.add_host("local"); !s.is_ok()) return s;
    auto src = c.add_module(
        "local", std::make_unique<cs::covise::FieldSourceModule>(
                     [field_n](double t) { return analytic_field(field_n, t); }));
    if (!src.is_ok()) return src.status();
    auto cut =
        c.add_module("local", std::make_unique<cs::covise::CuttingPlaneModule>());
    if (!cut.is_ok()) return cut.status();
    auto ren =
        c.add_module("local", std::make_unique<cs::covise::RendererModule>());
    if (!ren.is_ok()) return ren.status();
    if (auto s = c.connect_ports(src.value(), "field", cut.value(), "field");
        !s.is_ok()) return s;
    if (auto s =
            c.connect_ports(cut.value(), "geometry", ren.value(), "geometry0");
        !s.is_ok()) return s;
    cs::viz::Camera cam;
    cam.look_at({0, 1.5, 3}, {0, 0, 0}, {0, 1, 0});
    (void)c.set_param(ren.value(), "camera", cam.serialize());
    (void)c.set_param(ren.value(), "width", "160");
    (void)c.set_param(ren.value(), "height", "120");
    return ren.value();
  };
}

/// Full collaborative update: steer -> broadcast -> every replica
/// re-executes. Args: participants, field resolution.
void BM_ParamSyncUpdate(benchmark::State& state) {
  const int participants = static_cast<int>(state.range(0));
  const int field_n = static_cast<int>(state.range(1));

  cs::net::InProcNetwork net;
  auto hub = cs::visit::ControlServer::start(net, {"hub", "pw", 100ms});
  if (!hub.is_ok()) {
    state.SkipWithError("hub failed");
    return;
  }
  auto master = cs::covise::CollabParticipant::join(
      net, {"hub", "pw", "actor", "master"}, pipeline(field_n));
  if (!master.is_ok()) {
    state.SkipWithError("master join failed");
    return;
  }
  std::vector<std::unique_ptr<cs::covise::CollabParticipant>> observers;
  for (int i = 1; i < participants; ++i) {
    auto obs = cs::covise::CollabParticipant::join(
        net, {"hub", "pw", "observer", "obs" + std::to_string(i)},
        pipeline(field_n));
    if (!obs.is_ok()) {
      state.SkipWithError("observer join failed");
      return;
    }
    observers.push_back(std::move(obs).value());
  }
  const auto ready = Deadline::after(5s);
  while (hub.value()->participant_count() <
             static_cast<std::size_t>(participants) &&
         !ready.has_expired()) {
    std::this_thread::sleep_for(2ms);
  }

  double position = 0.30;
  for (auto _ : state) {
    position = position > 0.69 ? 0.30 : position + 0.01;
    if (!master.value()
             ->steer("CuttingPlane_1", "position", std::to_string(position),
                     Deadline::after(5s))
             .is_ok()) {
      state.SkipWithError("steer failed");
      return;
    }
    for (auto& obs : observers) {
      auto applied = obs->pump(Deadline::after(5s));
      if (!applied.is_ok() || applied.value() == 0) {
        state.SkipWithError("observer missed the update");
        return;
      }
    }
  }
  state.counters["updates_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.SetLabel("participants=" + std::to_string(participants) +
                 "/grid=" + std::to_string(field_n));
}

}  // namespace

BENCHMARK(BM_ParamSyncUpdate)
    ->ArgsProduct({{2, 4, 8}, {12, 20, 28}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(0.3);

BENCHMARK_MAIN();
