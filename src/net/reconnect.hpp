// Supervised dialing: capped exponential backoff with jitter, bounded by a
// deadline.
//
// Every distributed participant in the stack (loadgen workers reaching a
// controller that may not be up yet, chaos-scenario viewers re-dialing a
// multiplexer after an injected flap, test suites racing a listener's
// spin-up) needs the same loop: try to connect, treat "nothing listens here
// yet" as transient, wait a little longer each time, give up at the
// deadline. Before Reconnector existed that loop was hand-rolled twice
// (tests/util.hpp and loadgen::connect_retry) with fixed sleeps; this is
// the one real implementation, with backoff that backs off, jitter that
// de-synchronizes a reconnecting fleet, and counters a service can bridge
// into its /metricsz registry.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "net/transport.hpp"

namespace cs::net {

/// Dial loop with capped exponential backoff + seeded jitter; see the file
/// comment. Thread-safe: one Reconnector may serve many dialing threads
/// (each dial keeps its own backoff ladder; only the jitter stream and the
/// counters are shared).
class Reconnector {
 public:
  struct Options {
    /// First retry sleep; subsequent sleeps multiply until max_backoff.
    common::Duration initial_backoff = std::chrono::milliseconds(5);
    /// Backoff ceiling.
    common::Duration max_backoff = std::chrono::milliseconds(250);
    /// Backoff growth per retry; values <= 1 mean a constant cadence.
    double multiplier = 2.0;
    /// Fraction of each sleep randomized away, in [0, 1): a sleep of B
    /// becomes uniform in [B * (1 - jitter), B], so a fleet whose
    /// connections died together does not re-dial in lockstep.
    double jitter = 0.25;
    /// Seed for the jitter stream (deterministic runs stay deterministic).
    std::uint64_t seed = 1;
  };

  /// Counters for /metricsz bridges. attempts counts connect() calls,
  /// retries the backoff sleeps taken, successes/failures the dial()
  /// outcomes.
  struct Stats {
    std::uint64_t attempts = 0;
    std::uint64_t retries = 0;
    std::uint64_t successes = 0;
    std::uint64_t failures = 0;
  };

  Reconnector() : Reconnector(Options{}) {}
  explicit Reconnector(Options options);

  /// True when `code` means the peer may simply not be up yet (kNotFound /
  /// kTimeout / kUnavailable) — the codes a retry can fix. Anything else is
  /// a refusal that waiting will not change.
  static bool retriable(common::StatusCode code) noexcept;

  /// Dials `address`, retrying retriable failures with backoff until the
  /// deadline. Returns the connection, the last transient error once the
  /// deadline expires, or the first non-retriable error immediately.
  common::Result<ConnectionPtr> dial(Network& net, const std::string& address,
                                     common::Deadline deadline);

  Stats stats() const;

 private:
  common::Duration next_sleep(common::Duration backoff,
                              common::Deadline deadline);

  Options options_;
  mutable std::mutex mutex_;  ///< guards rng_ only
  common::Rng rng_;
  std::atomic<std::uint64_t> attempts_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> successes_{0};
  std::atomic<std::uint64_t> failures_{0};
};

/// One-shot convenience over a throwaway Reconnector — the shared body of
/// testutil::connect_retry and the loadgen participants' dialing.
common::Result<ConnectionPtr> connect_retry(
    Network& net, const std::string& address, common::Deadline deadline,
    const Reconnector::Options& options = {});

}  // namespace cs::net
