#include "obs/endpoint.hpp"

#include <utility>

#include "common/bytes.hpp"

namespace cs::obs {

MetricsEndpoint::MetricsEndpoint(Source source, Options options)
    : source_(std::move(source)), options_(options) {}

common::Result<std::unique_ptr<MetricsEndpoint>> MetricsEndpoint::start(
    net::Network& net, const std::string& address, Source source,
    const Options& options) {
  auto listener = net.listen(address);
  if (!listener.is_ok()) return listener.status();
  std::unique_ptr<MetricsEndpoint> endpoint{
      new MetricsEndpoint(std::move(source), options)};
  endpoint->listener_ = std::move(listener.value());
  MetricsEndpoint* self = endpoint.get();
  // Thread-mode pump: scrapes are rare and a serve thread per scraper is
  // the simple, obviously-correct shape. The endpoint never sits on a
  // service's hot path.
  endpoint->pump_ = std::make_unique<net::AcceptPump>(
      *endpoint->listener_, [self](net::ConnectionPtr conn) {
        std::scoped_lock lock(self->mutex_);
        if (self->stopped_.load(std::memory_order_acquire)) {
          conn->close();
          return;
        }
        // Reap finished clients lazily on each accept, so the vector stays
        // bounded by concurrent scrapers (plus stragglers since the last
        // accept). Joining a done thread returns immediately.
        std::erase_if(self->clients_, [](const std::unique_ptr<Client>& c) {
          return c->done.load(std::memory_order_acquire);
        });
        auto client = std::make_unique<Client>();
        Client* raw = client.get();
        raw->conn = std::move(conn);
        self->clients_.push_back(std::move(client));
        raw->thread = std::jthread([self, raw](std::stop_token st) {
          self->serve(st, raw->conn);
          raw->done.store(true, std::memory_order_release);
        });
      });
  return endpoint;
}

MetricsEndpoint::~MetricsEndpoint() { stop(); }

void MetricsEndpoint::stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  if (pump_ != nullptr) pump_->stop();
  if (listener_ != nullptr) listener_->close();
  std::vector<std::unique_ptr<Client>> clients;
  {
    std::scoped_lock lock(mutex_);
    clients.swap(clients_);
  }
  for (auto& client : clients) {
    client->thread.request_stop();
    client->conn->close();  // wakes a blocked recv with kClosed
  }
  for (auto& client : clients) {
    if (client->thread.joinable()) client->thread.join();
  }
}

void MetricsEndpoint::serve(const std::stop_token& st,
                            net::ConnectionPtr conn) {
  // One request frame in, one exposition frame out, until the scraper
  // hangs up or the endpoint stops. The short recv slice bounds how long
  // stop() waits on an idle scraper.
  while (!st.stop_requested()) {
    auto request = conn->recv(common::Deadline::after(common::ms(100)));
    if (!request.is_ok()) {
      if (request.status().code() == common::StatusCode::kTimeout) continue;
      break;  // closed or errored
    }
    const std::string text = to_text(source_());
    common::Bytes reply(text.begin(), text.end());
    if (!conn->send(common::ByteSpan(reply),
                    common::Deadline::after(options_.send_timeout))
             .is_ok()) {
      break;
    }
    scrapes_.fetch_add(1, std::memory_order_relaxed);
  }
  conn->close();
}

common::Result<std::string> scrape_text(net::Network& net,
                                        const std::string& address,
                                        common::Deadline deadline) {
  auto conn = net.connect(address, deadline);
  if (!conn.is_ok()) return conn.status();
  static constexpr char kRequest[] = "/metricsz";
  const common::Bytes request(kRequest, kRequest + sizeof(kRequest) - 1);
  if (auto s = conn.value()->send(common::ByteSpan(request), deadline);
      !s.is_ok()) {
    return s;
  }
  auto reply = conn.value()->recv(deadline);
  conn.value()->close();
  if (!reply.is_ok()) return reply.status();
  return std::string(reply.value().begin(), reply.value().end());
}

common::Result<std::vector<std::pair<std::string, double>>> scrape_metrics(
    net::Network& net, const std::string& address, common::Deadline deadline) {
  auto text = scrape_text(net, address, deadline);
  if (!text.is_ok()) return text.status();
  return parse_text(text.value());
}

}  // namespace cs::obs
