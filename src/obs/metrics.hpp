// Lock-light metric instruments: the write-side primitives behind
// obs::Registry.
//
// Hot paths hold a reference to their instrument (resolved once at
// registration) and update it with no registry involvement. Counters shard
// writers across cache-line-padded atomic cells so concurrent increments
// from service threads, fan-out workers, and pollers never bounce one line;
// Timers stripe the mergeable common::Histogram behind small mutexes the
// same way loadgen workers already shard their recording. Reads (snapshot
// scrapes) never stop writers.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/clock.hpp"
#include "common/histogram.hpp"

namespace cs::obs {

namespace detail {

/// Small dense per-thread slot for striping writers across shards. Stable
/// for the thread's lifetime; consecutive threads land on consecutive
/// shards, so a handful of workers spread instead of clumping.
inline std::size_t thread_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

/// Monotonic event count (frames published, drops, accepts). Writers add
/// into one of kShards padded cells chosen by thread; value() sums the
/// cells. The sum is not a point-in-time linearization across shards —
/// exactly the tearing a scrape tolerates — but every added unit is counted
/// exactly once.
class Counter {
 public:
  static constexpr std::size_t kShards = 8;

  void add(std::uint64_t n = 1) noexcept {
    cells_[detail::thread_slot() % kShards].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const Cell& cell : cells_) {
      sum += cell.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Cell, kShards> cells_{};
};

/// Point-in-time level (current viewers, queue depth high-water). One atomic
/// — levels have one logical writer or want last/max-writer-wins semantics,
/// not per-thread accumulation.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Monotonic ratchet: keeps the maximum ever set (high-water marks).
  void update_max(std::int64_t v) noexcept {
    std::int64_t seen = value_.load(std::memory_order_relaxed);
    while (v > seen &&
           !value_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Latency distribution (nanoseconds by convention), built on the mergeable
/// log-bucketed common::Histogram. Writers stripe across kStripes
/// mutex-guarded histograms by thread; snapshot() merges the stripes into
/// one histogram without pausing recorders (it takes each stripe lock
/// briefly, one at a time).
class Timer {
 public:
  static constexpr std::size_t kStripes = 4;

  void record(std::uint64_t ns) noexcept {
    Stripe& stripe = stripes_[detail::thread_slot() % kStripes];
    std::scoped_lock lock(stripe.mutex);
    stripe.hist.record(ns);
  }

  void record(common::Duration d) noexcept {
    record(d.count() < 0 ? 0u : static_cast<std::uint64_t>(
                                    std::chrono::duration_cast<
                                        std::chrono::nanoseconds>(d)
                                        .count()));
  }

  common::Histogram snapshot() const {
    common::Histogram merged;
    for (const Stripe& stripe : stripes_) {
      std::scoped_lock lock(stripe.mutex);
      merged.merge(stripe.hist);
    }
    return merged;
  }

 private:
  struct alignas(64) Stripe {
    mutable std::mutex mutex;
    common::Histogram hist;
  };
  std::array<Stripe, kStripes> stripes_{};
};

}  // namespace cs::obs
