#include "sim/pepc/direct.hpp"

#include <cmath>

namespace cs::pepc {

using common::Vec3;

Vec3 DirectSolver::field_at(std::span<const Particle> particles,
                            const Vec3& where, std::size_t skip) const {
  Vec3 field{};
  const double eps2 = softening_ * softening_;
  for (std::size_t j = 0; j < particles.size(); ++j) {
    if (j == skip) continue;
    const Vec3 r = where - particles[j].position();
    const double r2 = norm2(r) + eps2;
    const double inv_r = 1.0 / std::sqrt(r2);
    field += particles[j].charge * (inv_r / r2) * r;
  }
  return field;
}

void DirectSolver::accumulate_forces(std::span<const Particle> particles,
                                     std::span<Vec3> forces) const {
  const double eps2 = softening_ * softening_;
  for (auto& f : forces) f = Vec3{};
  // Pairwise symmetric accumulation: each pair visited once.
  for (std::size_t i = 0; i < particles.size(); ++i) {
    for (std::size_t j = i + 1; j < particles.size(); ++j) {
      const Vec3 r = particles[i].position() - particles[j].position();
      const double r2 = norm2(r) + eps2;
      const double inv_r = 1.0 / std::sqrt(r2);
      const Vec3 e = (particles[i].charge * particles[j].charge) *
                     (inv_r / r2) * r;
      forces[i] += e;
      forces[j] -= e;
    }
  }
}

double DirectSolver::potential_energy(
    std::span<const Particle> particles) const {
  const double eps2 = softening_ * softening_;
  double energy = 0.0;
  for (std::size_t i = 0; i < particles.size(); ++i) {
    for (std::size_t j = i + 1; j < particles.size(); ++j) {
      const Vec3 r = particles[i].position() - particles[j].position();
      energy += particles[i].charge * particles[j].charge /
                std::sqrt(norm2(r) + eps2);
    }
  }
  return energy;
}

}  // namespace cs::pepc
