// Shared data space — one per host.
//
// "The shared data space (SDS) is used on a single host for the exchange of
// data objects between the locally running modules to minimize copying
// overhead. On most platforms this is realized as shared memory
// communication." (paper section 4.5). In-process, shared_ptr aliasing *is*
// zero-copy sharing; the tests assert that local module-to-module handoff
// moves no payload bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "covise/dataobject.hpp"

namespace cs::covise {

class SharedDataSpace {
 public:
  explicit SharedDataSpace(std::string host) : host_(std::move(host)) {}

  const std::string& host() const noexcept { return host_; }

  /// Generates a system-wide unique object name.
  std::string unique_name(const std::string& module,
                          const std::string& port);

  /// Publishes an object (immutable from now on). kAlreadyExists on
  /// name collision.
  common::Status put(DataObjectPtr object);

  /// kNotFound when absent.
  common::Result<DataObjectPtr> get(const std::string& name) const;

  common::Status remove(const std::string& name);

  /// Drops every object whose name starts with `prefix` (end-of-lifetime
  /// cleanup for a module's old outputs). Returns the count removed.
  std::size_t remove_prefix(const std::string& prefix);

  std::size_t size() const;
  std::size_t total_bytes() const;

 private:
  std::string host_;
  mutable std::mutex mutex_;
  std::map<std::string, DataObjectPtr> objects_;
  std::atomic<std::uint64_t> serial_{0};
};

}  // namespace cs::covise
