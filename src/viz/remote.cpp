#include "viz/remote.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/strings.hpp"
#include "wire/message.hpp"

namespace cs::viz {

using common::ByteOrder;
using common::Bytes;
using common::ByteSpan;
using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;
using common::Vec3;

namespace {
constexpr std::uint32_t kTagView = 0x7601;     // viewpoint event (control)
constexpr std::uint32_t kTagFrame = 0x7602;    // compressed frame (data)
constexpr std::uint32_t kTagScene = 0x7603;    // geometry snapshot (data)
constexpr std::uint32_t kTagViewAck = 0x7604;  // applied-view ack (control)
}  // namespace

// ---------------------------------------------------------------------------
// SceneStore
// ---------------------------------------------------------------------------

void SceneStore::set_mesh(TriangleMesh mesh, Color color) {
  std::scoped_lock lock(mutex_);
  mesh_ = std::move(mesh);
  mesh_color_ = color;
  version_.fetch_add(1);
}

void SceneStore::set_particles(std::vector<ParticleSprite> particles,
                               GlyphStyle style) {
  std::scoped_lock lock(mutex_);
  particles_ = std::move(particles);
  glyph_style_ = style;
  version_.fetch_add(1);
}

void SceneStore::set_boxes(std::vector<std::pair<Vec3, Vec3>> boxes,
                           Color color) {
  std::scoped_lock lock(mutex_);
  boxes_ = std::move(boxes);
  box_color_ = color;
  version_.fetch_add(1);
}

void SceneStore::render(Renderer& renderer, const Camera& camera) const {
  std::scoped_lock lock(mutex_);
  renderer.clear();
  if (!mesh_.triangles.empty()) renderer.draw_mesh(mesh_, camera, mesh_color_);
  if (!particles_.empty()) {
    renderer.draw_particles(particles_, camera, glyph_style_);
  }
  for (const auto& [lo, hi] : boxes_) {
    renderer.draw_box(lo, hi, camera, box_color_);
  }
}

std::size_t SceneStore::geometry_bytes() const {
  std::scoped_lock lock(mutex_);
  return mesh_.byte_size() + particles_.size() * sizeof(ParticleSprite) +
         boxes_.size() * sizeof(boxes_[0]);
}

Bytes SceneStore::encode() const {
  std::scoped_lock lock(mutex_);
  Bytes out;
  const auto put_u32 = [&](std::uint32_t v) {
    common::append_uint<std::uint32_t>(out, v, ByteOrder::kBig);
  };
  const auto put_vec = [&](const Vec3& v) {
    common::append_bytes(out, common::as_bytes(v));
  };
  put_u32(static_cast<std::uint32_t>(mesh_.vertices.size()));
  for (const auto& v : mesh_.vertices) put_vec(v);
  put_u32(static_cast<std::uint32_t>(mesh_.triangles.size()));
  for (const auto& t : mesh_.triangles) {
    put_u32(t.a); put_u32(t.b); put_u32(t.c);
  }
  out.push_back(mesh_color_.r); out.push_back(mesh_color_.g); out.push_back(mesh_color_.b);
  put_u32(static_cast<std::uint32_t>(particles_.size()));
  for (const auto& p : particles_) {
    put_vec(p.position);
    put_vec(p.velocity);
    out.push_back(p.color.r); out.push_back(p.color.g); out.push_back(p.color.b);
  }
  out.push_back(static_cast<std::uint8_t>(glyph_style_));
  put_u32(static_cast<std::uint32_t>(boxes_.size()));
  for (const auto& [lo, hi] : boxes_) {
    put_vec(lo);
    put_vec(hi);
  }
  out.push_back(box_color_.r); out.push_back(box_color_.g); out.push_back(box_color_.b);
  return out;
}

Status SceneStore::decode(ByteSpan data) {
  std::size_t offset = 0;
  const auto need = [&](std::size_t n) { return offset + n <= data.size(); };
  const auto get_u32 = [&]() {
    const auto v =
        common::read_uint<std::uint32_t>(data.subspan(offset), ByteOrder::kBig);
    offset += 4;
    return v;
  };
  const auto get_vec = [&]() {
    Vec3 v;
    std::memcpy(&v, data.data() + offset, sizeof(Vec3));
    offset += sizeof(Vec3);
    return v;
  };
  const auto get_color = [&]() {
    Color c{data[offset], data[offset + 1], data[offset + 2]};
    offset += 3;
    return c;
  };

  TriangleMesh mesh;
  std::vector<ParticleSprite> particles;
  std::vector<std::pair<Vec3, Vec3>> boxes;
  if (!need(4)) return Status{StatusCode::kProtocolError, "scene truncated"};
  const auto nv = get_u32();
  if (!need(nv * sizeof(Vec3) + 4)) {
    return Status{StatusCode::kProtocolError, "scene truncated"};
  }
  mesh.vertices.reserve(nv);
  for (std::uint32_t i = 0; i < nv; ++i) mesh.vertices.push_back(get_vec());
  const auto nt = get_u32();
  if (!need(nt * 12 + 3 + 4)) {
    return Status{StatusCode::kProtocolError, "scene truncated"};
  }
  mesh.triangles.reserve(nt);
  for (std::uint32_t i = 0; i < nt; ++i) {
    Triangle t;
    t.a = get_u32(); t.b = get_u32(); t.c = get_u32();
    if (t.a >= nv || t.b >= nv || t.c >= nv) {
      return Status{StatusCode::kProtocolError, "triangle index out of range"};
    }
    mesh.triangles.push_back(t);
  }
  const Color mesh_color = get_color();
  const auto np = get_u32();
  if (!need(np * (2 * sizeof(Vec3) + 3) + 1 + 4)) {
    return Status{StatusCode::kProtocolError, "scene truncated"};
  }
  particles.reserve(np);
  for (std::uint32_t i = 0; i < np; ++i) {
    ParticleSprite p;
    p.position = get_vec();
    p.velocity = get_vec();
    p.color = get_color();
    particles.push_back(p);
  }
  const auto style = static_cast<GlyphStyle>(data[offset]);
  ++offset;
  const auto nb = get_u32();
  if (!need(nb * 2 * sizeof(Vec3) + 3)) {
    return Status{StatusCode::kProtocolError, "scene truncated"};
  }
  boxes.reserve(nb);
  for (std::uint32_t i = 0; i < nb; ++i) {
    const Vec3 lo = get_vec();
    const Vec3 hi = get_vec();
    boxes.emplace_back(lo, hi);
  }
  const Color box_color = get_color();

  std::scoped_lock lock(mutex_);
  mesh_ = std::move(mesh);
  mesh_color_ = mesh_color;
  particles_ = std::move(particles);
  glyph_style_ = style;
  boxes_ = std::move(boxes);
  box_color_ = box_color;
  version_.fetch_add(1);
  return Status::ok();
}

// ---------------------------------------------------------------------------
// RemoteRenderServer
// ---------------------------------------------------------------------------

Result<std::unique_ptr<RemoteRenderServer>> RemoteRenderServer::start(
    net::Network& net, std::shared_ptr<SceneStore> scene,
    const Options& options) {
  if (!scene) return Status{StatusCode::kInvalidArgument, "null scene"};
  auto listener = net.listen(options.address);
  if (!listener.is_ok()) return listener.status();
  auto host = net::ConnectionHost::start(net::ConnectionHost::Options{});
  if (!host.is_ok()) return host.status();
  std::unique_ptr<RemoteRenderServer> server{new RemoteRenderServer};
  server->options_ = options;
  server->scene_ = std::move(scene);
  server->listener_ = std::move(listener).value();
  server->host_ = std::move(host).value();
  RemoteRenderServer* self = server.get();
  common::ShardedFanout::Options pipeline_options;
  pipeline_options.shards =
      options.pipeline_shards != 0
          ? options.pipeline_shards
          : std::clamp<std::size_t>(std::thread::hardware_concurrency(), 2, 8);
  pipeline_options.queue_capacity = options.queue_capacity;
  server->pipeline_ = std::make_unique<common::ShardedFanout>(
      pipeline_options, [self](std::uint64_t id) { self->drop_client(id); });
  // Per-service roll-ups bridged from the pipeline internals: the drop and
  // disconnect totals were per-shard only before the registry existed.
  self->metrics_.counter_fn("queue_drops", "frames", [self] {
    return self->pipeline_->stats().data_dropped;
  });
  self->metrics_.counter_fn("overflow_disconnects", "count", [self] {
    return self->pipeline_->stats().disconnects;
  });
  self->metrics_.gauge_fn("queue_depth_high_water", "frames", [self] {
    const auto fan = self->pipeline_->stats();
    std::size_t high = 0;
    for (const auto& shard : fan.shards) {
      high = std::max(high, shard.queue_high_water);
    }
    return static_cast<double>(high);
  });
  self->metrics_.gauge_fn("viewers", "count", [self] {
    return static_cast<double>(self->client_count());
  });
  self->metrics_.timer_fn("stage_encode_to_enqueue", [self] {
    return self->pipeline_->stats().stages.encode_to_enqueue;
  });
  self->metrics_.timer_fn("stage_enqueue_to_write", [self] {
    return self->pipeline_->stats().stages.enqueue_to_write;
  });
  // Accepts ride the host's pollers when the transport allows, but
  // admission stays with the render loop: the handler only parks
  // connections (enqueue-only, poller-safe), and the loop drains them at
  // the point where the ordering/seeding invariant holds.
  server->accept_pump_ = std::make_unique<net::AcceptPump>(
      server->host_->event_host(), *server->listener_,
      [self](net::ConnectionPtr conn) {
        std::scoped_lock lock(self->pending_mutex_);
        if (self->stopped_.load()) {
          conn->close();
          return;
        }
        self->pending_conns_.push_back(std::move(conn));
      });
  server->render_thread_ =
      std::jthread([self](std::stop_token st) { self->render_loop(st); });
  return server;
}

RemoteRenderServer::~RemoteRenderServer() { stop(); }

void RemoteRenderServer::stop() {
  if (stopped_.exchange(true)) return;
  render_thread_.request_stop();
  // Uniform teardown order: listener, accept pump, host, then the egress
  // pipeline once ingress is quiesced.
  if (listener_) listener_->close();
  if (accept_pump_) accept_pump_->stop();
  if (render_thread_.joinable()) render_thread_.join();
  {
    // Connections the pump parked but the render loop never admitted.
    std::scoped_lock lock(pending_mutex_);
    for (auto& conn : pending_conns_) conn->close();
    pending_conns_.clear();
  }
  // Close every client connection first — that wakes any pipeline worker
  // blocked inside a send with kClosed immediately. Stopping the host next
  // quiesces view-event ingress, so nothing enqueues into the pipeline
  // while it drains; the lock is not held across either stop(): a worker
  // may be blocked in its on-dead callback (drop_client) waiting for it.
  {
    std::scoped_lock lock(clients_mutex_);
    for (auto& [id, conn] : clients_) conn->close();
  }
  if (host_) host_->stop();
  if (pipeline_) pipeline_->stop();
  std::scoped_lock lock(clients_mutex_);
  clients_.clear();
}

std::size_t RemoteRenderServer::client_count() const {
  std::scoped_lock lock(clients_mutex_);
  return clients_.size();
}

std::size_t RemoteRenderServer::service_threads() const {
  return (accept_pump_ && !accept_pump_->event_driven() ? 1 : 0) +
         (host_ ? host_->thread_count() : 0) + 1 /* render loop */ +
         (pipeline_ ? pipeline_->shard_count() : 0);
}

RemoteRenderServer::Stats RemoteRenderServer::stats() const {
  // Shim over the registry-backed counters (see remote.hpp).
  Stats out;
  out.frames_rendered = ctr_frames_rendered_.value();
  out.frames_sent = ctr_frames_sent_.value();
  out.bytes_sent = ctr_bytes_sent_.value();
  out.view_events = ctr_view_events_.value();
  out.render_loop_iterations = ctr_loop_iterations_.value();
  out.fanout = pipeline_->stats();
  return out;
}

void RemoteRenderServer::render_loop(const std::stop_token& st) {
  Renderer renderer(options_.width, options_.height);
  std::uint64_t seen_scene = ~0ull;
  std::uint64_t seen_camera = 0;
  // The latest published frame, kept for seeding newcomers: a client
  // joining an in-progress session is keyed with exactly the image every
  // sibling already has, so a join never forces a re-render for everyone
  // (the old camera_version_ bump) and all participants observe the same
  // image sequence.
  std::shared_ptr<const RenderedFrame> last_published;
  while (!st.stop_requested()) {
    ctr_loop_iterations_.add();
    // Ordering is what makes the shared-camera handshake deterministic:
    // observe the version counters first, then admit pending connections.
    // A connection the accept pump parked before a camera change was
    // applied is admitted here — seeded with the previous frame — strictly
    // before the frame for that change is published, so every participant
    // sees the same sequence of images. A connection still in flight at
    // the pump joins one iteration later and is seeded with whatever frame
    // its siblings already hold; the sequence property is unchanged.
    Camera camera;
    std::uint64_t observed_camera = 0;
    std::uint64_t observed_scene = 0;
    bool dirty = false;
    {
      std::scoped_lock lock(camera_mutex_);
      observed_camera = camera_version_;
      observed_scene = scene_->version();
      camera = camera_;
      dirty = (observed_camera != seen_camera || observed_scene != seen_scene);
    }
    admit_clients(last_published);
    // A client joining a session that has never rendered needs no special
    // case: seen_* only advance alongside a publish, so until the first
    // publish the initial camera version is still unconsumed and dirty
    // holds — the newcomer's first frame renders this same iteration.
    if (!dirty) {
      std::this_thread::sleep_for(options_.frame_period);
      continue;
    }
    if (pipeline_->subscriber_count() == 0) {
      // Nobody to draw for — but leave the change unconsumed (seen_* not
      // advanced): a client joining later must still get a frame of the
      // current state, not a stale seed of the pre-change image.
      std::this_thread::sleep_for(options_.frame_period);
      continue;
    }
    seen_camera = observed_camera;
    seen_scene = observed_scene;
    scene_->render(renderer, camera);
    ctr_frames_rendered_.add();
    // Publish once. The common delta (vs. the previous frame) and its wire
    // message are encoded here exactly once per broadcast; a client's
    // pipeline worker reuses them when that client's delivered baseline is
    // the previous frame, and delta-compresses against the client's own
    // history otherwise. The render loop never touches a connection.
    RenderedFrame frame;
    frame.image = std::make_shared<const Image>(renderer.frame());
    frame.seq = last_published ? last_published->seq + 1 : 1;
    if (last_published) {
      const Bytes payload =
          compress_frame_delta(*frame.image, *last_published->image);
      frame.delta_payload_bytes = payload.size();
      frame.wire_from_prev =
          wire::make_data_message(kTagFrame, payload.data(), payload.size())
              .encode();
    }
    last_published = std::make_shared<const RenderedFrame>(std::move(frame));
    pipeline_->publish_source(last_published,
                              common::OverflowPolicy::kDropOldest);
  }
}

void RemoteRenderServer::admit_clients(
    const std::shared_ptr<const RenderedFrame>& last_published) {
  std::deque<net::ConnectionPtr> batch;
  {
    std::scoped_lock lock(pending_mutex_);
    batch.swap(pending_conns_);
  }
  for (auto& conn : batch) admit(std::move(conn), last_published);
}

void RemoteRenderServer::admit(
    net::ConnectionPtr conn,
    const std::shared_ptr<const RenderedFrame>& last_published) {
  std::uint64_t id = 0;
  {
    std::scoped_lock lock(clients_mutex_);
    id = next_client_id_++;
    clients_[id] = conn;
  }
  // The newcomer's key frame is the seeded replay: its fresh DeltaEncoder
  // has no baseline, so the seed encodes self-contained, and every delta
  // published afterwards chains from it.
  std::vector<common::OutboundQueue::Item> replay;
  if (last_published) {
    replay.push_back({nullptr, common::OverflowPolicy::kDropOldest,
                      last_published});
  }
  auto lane = std::make_shared<Lane>();
  lane->conn = conn;
  pipeline_->add(
      id,
      common::ShardedFanout::BatchSink{
          [this, lane](std::span<const common::OutboundQueue::Item> items,
                       std::size_t& delivered) {
            return deliver_batch(*lane, items, delivered);
          }},
      std::move(replay));
  // Host ingress only once the subscription exists, so a view ack can
  // never race its own client's registration.
  const bool hosted = host_->add(
      id, conn,
      [this](std::uint64_t cid, common::Bytes message) {
        on_view_event(cid, message);
      },
      [this](std::uint64_t cid, const common::Status&) { drop_client(cid); });
  if (!hosted) drop_client(id);  // raced with stop()
}

Status RemoteRenderServer::deliver_batch(
    Lane& lane, std::span<const common::OutboundQueue::Item> items,
    std::size_t& delivered) {
  delivered = 0;
  std::size_t i = 0;
  while (i < items.size()) {
    if (items[i].frame != nullptr) {
      // A run of pre-encoded frames (view acks, and any future shared
      // broadcast bytes) goes out as one vectored send: an ack burst costs
      // one syscall over TCP instead of one per ack.
      std::vector<common::ByteSpan> spans;
      std::size_t j = i;
      while (j < items.size() && items[j].frame != nullptr) {
        spans.push_back(*items[j].frame);
        ++j;
      }
      std::size_t sent = 0;
      const Status s = lane.conn->send_many(
          std::span<const common::ByteSpan>(spans),
          Deadline::after(options_.send_deadline), sent);
      delivered += sent;
      if (!s.is_ok()) return s;
      i = j;
      continue;
    }
    // Data frames stay per-item: each successful send commits this
    // client's delta baseline, and the next frame's encoding depends on
    // that commit, so they cannot be encoded ahead as one batch.
    if (Status s = deliver(lane, items[i]); !s.is_ok()) return s;
    ++i;
    ++delivered;
  }
  return Status::ok();
}

Status RemoteRenderServer::deliver(Lane& lane,
                                   const common::OutboundQueue::Item& item) {
  const Deadline deadline = Deadline::after(options_.send_deadline);
  if (item.frame) {  // pre-encoded control traffic (view acks)
    return lane.conn->send(*item.frame, deadline);
  }
  const auto& rendered = *static_cast<const RenderedFrame*>(item.source.get());
  // Fast path: this client's delivered baseline is the previous frame, so
  // the broadcast-wide delta message (encoded once, in the render loop) is
  // exactly this client's frame. Divergent history — fresh join, dropped
  // frame, failed send — falls back to a per-client encode keyed off what
  // this client actually received.
  Bytes encoded;
  const Bytes* wire = nullptr;
  std::size_t payload_bytes = 0;
  if (!rendered.wire_from_prev.empty() &&
      lane.delivered_seq + 1 == rendered.seq && lane.encoder.has_baseline()) {
    wire = &rendered.wire_from_prev;
    payload_bytes = rendered.delta_payload_bytes;
    lane.encoder.stage(rendered.image);
  } else {
    const Bytes payload = lane.encoder.encode(rendered.image);
    payload_bytes = payload.size();
    encoded = wire::make_data_message(kTagFrame, payload.data(), payload.size())
                  .encode();
    wire = &encoded;
  }
  const Status s = lane.conn->send(*wire, deadline);
  if (s.is_ok()) {
    lane.encoder.commit();
    lane.delivered_seq = rendered.seq;
    ctr_frames_sent_.add();
    ctr_bytes_sent_.add(payload_bytes);
  } else {
    // The client never received this frame: the next delta must not be
    // keyed off it. Drop the baseline so the next frame is a key frame.
    lane.encoder.reset();
    lane.delivered_seq = 0;
  }
  return s;
}

void RemoteRenderServer::on_view_event(std::uint64_t id,
                                       const common::Bytes& message) {
  auto m = wire::Message::decode(message);
  if (!m.is_ok()) return;
  if (m.value().header.tag != kTagView) return;
  auto body = wire::extract_string(m.value());
  if (!body.is_ok()) return;
  auto camera = Camera::parse(body.value());
  if (!camera.is_ok()) return;
  {
    std::scoped_lock lock(camera_mutex_);
    camera_ = camera.value();  // shared camera: VizServer collaboration
    const std::uint64_t version = ++camera_version_;
    // Ack the applied view to its sender. Control class: lossless-or-dead
    // (an ack is never shed; a client that cannot take one is torn down),
    // coalescing on the tag so a burst of view events supersedes the
    // queued ack in place instead of overflowing the shallow queue.
    // Enqueued while the camera lock is held so the render loop cannot
    // observe the new version — and publish its frame — first: in the
    // sender's queue the ack always precedes the frame it provoked.
    common::OutboundQueue::Item ack;
    ack.frame = common::make_frame(
        wire::make_control_message(kTagViewAck, std::to_string(version))
            .encode());
    ack.policy = common::OverflowPolicy::kDisconnect;
    ack.coalesce_key = kTagViewAck;
    (void)pipeline_->send_to(id, std::move(ack));
  }
  ctr_view_events_.add();
}

void RemoteRenderServer::drop_client(std::uint64_t id) {
  // Deregister from the pipeline first so no further frames are queued; an
  // item already claimed by a worker may still complete against the
  // closing connection, which reports kClosed harmlessly.
  pipeline_->remove(id);
  {
    std::scoped_lock lock(clients_mutex_);
    auto it = clients_.find(id);
    if (it == clients_.end()) return;
    it->second->close();
    clients_.erase(it);
  }
  // Outside the lock: may run on a host delivery thread (own on_close —
  // safe and idempotent) or a pipeline worker.
  host_->remove(id);
}

// ---------------------------------------------------------------------------
// RemoteRenderClient
// ---------------------------------------------------------------------------

Result<RemoteRenderClient> RemoteRenderClient::connect(net::Network& net,
                                                       const std::string& address,
                                                       Deadline deadline) {
  auto conn = net.connect(address, deadline);
  if (!conn.is_ok()) return conn.status();
  return adopt(std::move(conn).value());
}

RemoteRenderClient RemoteRenderClient::adopt(net::ConnectionPtr conn) {
  RemoteRenderClient client;
  client.conn_ = std::move(conn);
  return client;
}

Status RemoteRenderClient::set_view(const Camera& camera, Deadline deadline) {
  if (!conn_) return Status{StatusCode::kClosed, "not connected"};
  return conn_->send(
      wire::make_control_message(kTagView, camera.serialize()).encode(),
      deadline);
}

Result<Image> RemoteRenderClient::await_frame(Deadline deadline) {
  if (!conn_) return Status{StatusCode::kClosed, "not connected"};
  for (;;) {
    auto raw = conn_->recv(deadline);
    if (!raw.is_ok()) return raw.status();
    auto m = wire::Message::decode(raw.value());
    if (!m.is_ok()) return m.status();
    if (m.value().header.tag == kTagViewAck) {
      auto body = wire::extract_string(m.value());
      if (body.is_ok()) {
        last_view_ack_ = std::strtoull(body.value().c_str(), nullptr, 10);
      }
      continue;
    }
    if (m.value().header.tag != kTagFrame) continue;
    auto image = decompress_frame_delta(m.value().payload, frame_);
    if (!image.is_ok()) return image.status();
    frame_ = std::move(image).value();
    return frame_;
  }
}

void RemoteRenderClient::disconnect() {
  if (conn_) conn_->close();
  conn_.reset();
}

// ---------------------------------------------------------------------------
// GeometryChannel
// ---------------------------------------------------------------------------

std::jthread GeometryChannel::start_sender(net::ConnectionPtr conn,
                                           std::shared_ptr<SceneStore> scene,
                                           common::Duration period) {
  return std::jthread([conn, scene, period](std::stop_token st) {
    std::uint64_t seen = ~0ull;
    while (!st.stop_requested()) {
      const std::uint64_t v = scene->version();
      if (v != seen) {
        seen = v;
        const Bytes payload = scene->encode();
        if (conn->send(wire::make_data_message(kTagScene, payload.data(),
                                               payload.size())
                           .encode(),
                       Deadline::after(std::chrono::seconds(2)))
                .code() == StatusCode::kClosed) {
          return;
        }
      }
      std::this_thread::sleep_for(period);
    }
  });
}

Status GeometryChannel::receive_into(net::Connection& conn, SceneStore& scene,
                                     Deadline deadline) {
  for (;;) {
    auto raw = conn.recv(deadline);
    if (!raw.is_ok()) return raw.status();
    auto m = wire::Message::decode(raw.value());
    if (!m.is_ok()) return m.status();
    if (m.value().header.tag != kTagScene) continue;
    return scene.decode(m.value().payload);
  }
}

}  // namespace cs::viz
