#include "unicore/ajo.hpp"

#include "common/strings.hpp"

namespace cs::unicore {

using common::Result;
using common::Status;
using common::StatusCode;

namespace {

// The serialized form is line-oriented; every free-text field is
// percent-escaped so newlines/pipes in file contents survive.
std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '%' || c == '\n' || c == '|') {
      static const char* hex = "0123456789ABCDEF";
      out += '%';
      out += hex[(static_cast<unsigned char>(c) >> 4) & 0xf];
      out += hex[static_cast<unsigned char>(c) & 0xf];
    } else {
      out += c;
    }
  }
  return out;
}

Result<std::string> unescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '%') {
      out += text[i];
      continue;
    }
    if (i + 2 >= text.size()) {
      return Status{StatusCode::kProtocolError, "truncated escape"};
    }
    const auto nibble = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      return -1;
    };
    const int hi = nibble(text[i + 1]);
    const int lo = nibble(text[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status{StatusCode::kProtocolError, "bad escape"};
    }
    out += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return out;
}

std::string_view kind_name(AjoTask::Kind kind) {
  switch (kind) {
    case AjoTask::Kind::kImportFile: return "IMPORT";
    case AjoTask::Kind::kExecute: return "EXECUTE";
    case AjoTask::Kind::kExportFile: return "EXPORT";
    case AjoTask::Kind::kStartSteering: return "STEERING";
  }
  return "?";
}

Result<AjoTask::Kind> parse_kind(std::string_view name) {
  if (name == "IMPORT") return AjoTask::Kind::kImportFile;
  if (name == "EXECUTE") return AjoTask::Kind::kExecute;
  if (name == "EXPORT") return AjoTask::Kind::kExportFile;
  if (name == "STEERING") return AjoTask::Kind::kStartSteering;
  return Status{StatusCode::kProtocolError,
                "unknown task kind: " + std::string(name)};
}

}  // namespace

std::string Ajo::serialize() const {
  std::string out = "AJO1|";
  out += escape(job_name);
  out += '|';
  out += escape(vsite);
  out += '\n';
  for (const auto& task : tasks) {
    out += kind_name(task.kind);
    out += '|';
    out += escape(task.name);
    out += '|';
    out += escape(task.content);
    for (const auto& [k, v] : task.args) {
      out += '|';
      out += escape(k);
      out += '=';
      out += escape(v);
    }
    out += '\n';
  }
  return out;
}

Result<Ajo> Ajo::parse(std::string_view text) {
  const auto lines = common::split(text, '\n');
  if (lines.empty()) {
    return Status{StatusCode::kProtocolError, "empty AJO"};
  }
  const auto head = common::split(lines[0], '|');
  if (head.size() != 3 || head[0] != "AJO1") {
    return Status{StatusCode::kProtocolError, "bad AJO header"};
  }
  Ajo ajo;
  auto name = unescape(head[1]);
  auto vsite = unescape(head[2]);
  if (!name.is_ok()) return name.status();
  if (!vsite.is_ok()) return vsite.status();
  ajo.job_name = std::move(name).value();
  ajo.vsite = std::move(vsite).value();
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const auto cols = common::split(lines[i], '|');
    if (cols.size() < 3) {
      return Status{StatusCode::kProtocolError, "bad task line"};
    }
    auto kind = parse_kind(cols[0]);
    if (!kind.is_ok()) return kind.status();
    AjoTask task;
    task.kind = kind.value();
    auto tname = unescape(cols[1]);
    auto tcontent = unescape(cols[2]);
    if (!tname.is_ok()) return tname.status();
    if (!tcontent.is_ok()) return tcontent.status();
    task.name = std::move(tname).value();
    task.content = std::move(tcontent).value();
    for (std::size_t a = 3; a < cols.size(); ++a) {
      const auto eq = cols[a].find('=');
      if (eq == std::string::npos) {
        return Status{StatusCode::kProtocolError, "bad task argument"};
      }
      auto k = unescape(std::string_view{cols[a]}.substr(0, eq));
      auto v = unescape(std::string_view{cols[a]}.substr(eq + 1));
      if (!k.is_ok()) return k.status();
      if (!v.is_ok()) return v.status();
      task.args[std::move(k).value()] = std::move(v).value();
    }
    ajo.tasks.push_back(std::move(task));
  }
  return ajo;
}

std::string_view to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kConsigned: return "CONSIGNED";
    case JobState::kQueued: return "QUEUED";
    case JobState::kRunning: return "RUNNING";
    case JobState::kSuccessful: return "SUCCESSFUL";
    case JobState::kFailed: return "FAILED";
  }
  return "?";
}

}  // namespace cs::unicore
