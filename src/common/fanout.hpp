// Sharded one-to-many delivery: the common primitive behind every broadcast
// site in the stack (visit::Multiplexer fan-out, visit::ProxyServer
// per-attachment queues).
//
// The shape is always the same: one producer publishes an encoded frame, N
// consumers each need their own copy-free view of it, and one slow consumer
// must never stall the producer or its siblings. The pieces here encode that
// contract once:
//
//   * FramePtr        — one immutable encoded frame, shared (not copied)
//                       across every consumer queue.
//   * OutboundQueue   — a bounded per-consumer queue with an explicit
//                       overflow policy per frame class.
//   * ShardedFanout   — consumers hashed onto a small worker pool; publish()
//                       only enqueues, workers do the blocking sends.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/histogram.hpp"
#include "common/status.hpp"

namespace cs::common {

/// Lifecycle stamps (steady_now_ns) a frame carries from birth. They are set
/// once, before the frame is published, and immutable afterwards — the
/// shared frame fans out to many consumer queues and threads, so per-consumer
/// stages (queue wait) live on OutboundQueue::Item, never here.
struct FrameTrace {
  /// When the raw input behind this frame entered the process (0 = unknown;
  /// producers that relay external data pass it to make_frame).
  std::uint64_t ingress_ns = 0;
  /// When wire encoding finished (stamped by make_frame).
  std::uint64_t encode_ns = 0;
};

/// One encoded wire frame, shared across all consumer queues. A broadcast
/// serializes exactly once; every queue holds a reference, never a copy.
/// Frame IS-A Bytes (public inheritance), so every consumer of the payload —
/// span views, codecs, sinks — keeps treating it as the byte vector; the
/// trace stamps ride along without touching the wire format.
struct Frame : Bytes {
  explicit Frame(Bytes bytes) : Bytes(std::move(bytes)) {}
  FrameTrace trace;
};

using FramePtr = std::shared_ptr<const Frame>;

/// Wraps freshly encoded bytes into a shareable frame, stamping encode time.
/// `ingress_ns` is the optional birth stamp of the raw input (a steering
/// sample's arrival, a media frame's capture) for ingress→encode accounting.
inline FramePtr make_frame(Bytes bytes, std::uint64_t ingress_ns = 0) {
  auto frame = std::make_shared<Frame>(std::move(bytes));
  frame->trace.ingress_ns = ingress_ns;
  frame->trace.encode_ns = steady_now_ns();
  return frame;
}

/// What happens when a consumer's queue is full.
///
/// The policy is chosen per frame, not per queue, because one connection
/// carries two traffic classes with opposite loss semantics:
///   * kDropOldest  — frame-like traffic (simulation samples). Losing a
///     stale sample is harmless; the next one supersedes it. The oldest
///     queued frame is evicted to make room.
///   * kDisconnect  — control traffic (roles, schemas, shutdown notices).
///     These must be lossless: they are never evicted once queued, they
///     evict a stale data frame to get in when the queue is full, and a
///     consumer whose queue holds *nothing but* undeliverable control
///     frames has diverged and is disconnected rather than silently
///     missing one.
enum class OverflowPolicy : std::uint8_t {
  kDropOldest = 0,
  kDisconnect = 1,
};

/// Bounded outbound frame queue for one consumer. Not internally
/// synchronized — the owner (a ShardedFanout shard, or a server holding its
/// own lock) serializes access.
class OutboundQueue {
 public:
  /// Outcome of a push against a full queue.
  enum class Push : std::uint8_t {
    kQueued,            ///< frame accepted, queue had room
    kQueuedDropOldest,  ///< frame accepted, the oldest *data* frame evicted
    kDroppedNewest,     ///< full of control frames: the incoming *data*
                        ///< frame itself was shed (control is never evicted)
    kRejectedOverflow,  ///< full of control frames and the incoming frame is
                        ///< control too: refused, consumer dead
    kCoalesced,         ///< replaced the queued item with the same
                        ///< coalesce_key in place (position retained)
  };

  /// One queued frame together with the policy it was published under (the
  /// policy doubles as the traffic-class tag for delivery accounting).
  ///
  /// The payload is either pre-encoded wire bytes shared by every consumer
  /// (`frame`) or an opaque source object (`source`) that each consumer's
  /// sink encodes for itself at delivery time. The second form is how
  /// per-consumer payloads — e.g. delta compression against each
  /// consumer's own delivery history — ride the same queues, overflow
  /// policies, and workers as shared broadcasts: the expensive per-consumer
  /// encode happens on the consumer's worker, after any overflow shedding,
  /// never on the publisher.
  struct Item {
    FramePtr frame = nullptr;
    OverflowPolicy policy = OverflowPolicy::kDropOldest;
    std::shared_ptr<const void> source = nullptr;
    /// Non-zero: at most one item with this key sits in a queue — a newer
    /// push *replaces* the queued one in place (same position, one
    /// accounting slot) instead of enqueueing behind it. For traffic whose
    /// frames supersede each other (progress acks): a burst can never
    /// overflow the queue, and lossless-or-dead still holds for the
    /// latest value.
    std::uint64_t coalesce_key = 0;
    /// When this item entered *this consumer's* queue (stamped by
    /// push()/seed(); per-consumer by construction, unlike the shared
    /// FrameTrace). Feeds the enqueue→write stage histogram.
    std::uint64_t enqueued_ns = 0;
  };

  /// @param capacity maximum queued frames; at least 1 is enforced.
  explicit OutboundQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Enqueues `item`; applies its policy when full.
  Push push(Item item);

  /// Enqueues pre-encoded bytes under `policy` (shared-frame convenience).
  Push push(FramePtr frame, OverflowPolicy policy) {
    return push(Item{std::move(frame), policy, nullptr});
  }

  /// Enqueues unconditionally, even beyond capacity. For seeding a fresh
  /// queue with replay state that must not be droppable; subsequent push()
  /// calls enforce the bound again.
  void seed(Item item);

  /// Pops the oldest frame; empty Item (null frame) when the queue is empty.
  Item pop();

  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }
  std::size_t capacity() const noexcept { return capacity_; }
  /// Deepest the queue has ever been (backlog watermark for stats()).
  std::size_t high_water() const noexcept { return high_water_; }
  /// Frames evicted by kDropOldest pushes.
  std::uint64_t dropped() const noexcept { return dropped_; }

  void clear() { items_.clear(); }

 private:
  std::deque<Item> items_;
  std::size_t capacity_;
  std::size_t high_water_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Per-stage frame-lifecycle latency: where a frame's time goes between its
/// birth and the moment its bytes are handed to the consumer's transport.
/// Recorded at delivery, so every histogram is delivery-weighted — a frame
/// fanned out to N consumers contributes N samples per stage. Stages whose
/// stamps are absent (no ingress stamp, source-payload items with no shared
/// frame) are simply skipped, never recorded as zero.
struct FrameStageStats {
  Histogram ingress_to_encode;  ///< raw input arrival -> encoded frame
  Histogram encode_to_enqueue;  ///< encoded frame -> consumer queue entry
  Histogram enqueue_to_write;   ///< consumer queue entry -> transport write

  /// Records every stage the item's stamps cover; `write_ns` is when the
  /// item's bytes were handed to the transport.
  void record(const OutboundQueue::Item& item, std::uint64_t write_ns) noexcept;
  void merge(const FrameStageStats& other) noexcept;
  /// Delivery-weighted sample count (the enqueue→write stage sees every
  /// delivered item that was ever queued).
  std::uint64_t samples() const noexcept { return enqueue_to_write.count(); }
};

/// Per-shard delivery counters. "data" rows account frames published under
/// OverflowPolicy::kDropOldest, "control" rows frames published under
/// kDisconnect — the policy is the traffic-class tag.
struct FanoutShardStats {
  std::uint64_t data_enqueued = 0;     ///< sample frames accepted into queues
  std::uint64_t data_delivered = 0;    ///< sample frames handed to sinks
  std::uint64_t data_dropped = 0;      ///< sample frames evicted or timed out
  std::uint64_t control_enqueued = 0;  ///< control frames accepted
  std::uint64_t control_delivered = 0; ///< control frames handed to sinks
  std::uint64_t disconnects = 0;       ///< subscribers torn down by the shard
  std::size_t subscribers = 0;         ///< current subscriber count
  std::size_t queued_frames = 0;       ///< frames currently pending
  std::size_t queue_high_water = 0;    ///< deepest single-subscriber backlog
};

/// Aggregate fan-out counters plus the per-shard breakdown.
struct FanoutStats {
  std::uint64_t data_enqueued = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t data_dropped = 0;
  std::uint64_t control_enqueued = 0;
  std::uint64_t control_delivered = 0;
  std::uint64_t disconnects = 0;
  std::size_t subscribers = 0;
  std::size_t queued_frames = 0;
  /// Frame-lifecycle stage latencies, merged across shards (deliveries by
  /// this fanout's workers only).
  FrameStageStats stages;
  std::vector<FanoutShardStats> shards;
};

/// Sharded broadcast fan-out: subscribers are hashed onto a small pool of
/// worker threads; each subscriber owns a bounded OutboundQueue.
///
/// publish() and send_to() only enqueue (they never perform I/O), so the
/// producer is decoupled from every consumer. Each shard's worker drains its
/// subscribers' queues round-robin, one frame per subscriber per pass, so a
/// deep backlog on one subscriber cannot monopolize its shard, and a blocked
/// subscriber delays at most its own shard for one sink call.
///
/// Thread-safety: all public methods are safe to call concurrently. The
/// on_dead callback and subscriber sinks are always invoked *outside* all
/// internal locks, so they may call back into add()/remove()/publish().
class ShardedFanout {
 public:
  /// Delivers one queued item to one subscriber (typically an encode step
  /// followed by a Connection::send with a deadline). Runs on the
  /// subscriber's shard worker thread only, so per-subscriber state owned
  /// by the sink (compression baselines, sequence counters) needs no lock.
  /// Return semantics:
  ///   * ok            — delivered
  ///   * kClosed       — subscriber gone; it is removed and on_dead fires
  ///   * other errors  — data frame: counted dropped (slow consumer missed a
  ///     sample); control frame: treated like kClosed, because control
  ///     traffic is lossless-or-dead.
  using Sink = std::function<Status(const OutboundQueue::Item& item)>;

  /// Sink form for subscribers that only handle pre-encoded shared frames
  /// (most broadcast sites). A source-payload item is not routable to a
  /// bytes sink: it fails delivery as an undeliverable frame.
  using BytesSink = std::function<Status(const Bytes& frame)>;

  /// Batch-aware sink: a consumer's whole drained burst arrives as one
  /// call, so a transport that can coalesce (net::Connection::send_many —
  /// one writev for the burst over TCP) pays one syscall per pass instead
  /// of one per frame. Contract:
  ///   * `delivered` reports how many *leading* items reached the consumer
  ///     when the call returns: all of them on ok; on error, items
  ///     `[0, delivered)` were delivered and item `delivered` is the one
  ///     that failed (per-item failure semantics — drop vs teardown — are
  ///     then applied by the shard worker exactly as for Sink).
  ///   * Items past the failed one are not retried by the sink; the worker
  ///     sheds their data frames and re-attempts their control frames
  ///     individually (control stays lossless-or-dead).
  using BatchSink = std::function<Status(
      std::span<const OutboundQueue::Item> items, std::size_t& delivered)>;

  /// Invoked (outside all fanout locks, possibly from a shard worker or a
  /// publishing thread) after a subscriber has been removed for cause.
  using DeadCallback = std::function<void(std::uint64_t id)>;

  struct Options {
    /// Worker/shard count; 0 picks a conservative default from
    /// hardware_concurrency (at least 1, at most 8).
    std::size_t shards = 0;
    /// Per-subscriber queue bound, in frames.
    std::size_t queue_capacity = 256;
  };

  ShardedFanout(const Options& options, DeadCallback on_dead);
  ~ShardedFanout();
  ShardedFanout(const ShardedFanout&) = delete;
  ShardedFanout& operator=(const ShardedFanout&) = delete;

  /// Joins all shard workers; pending frames are discarded. Idempotent.
  /// Afterwards add()/publish()/send_to() are guarded no-ops (nothing is
  /// registered or enqueued, no callbacks fire); remove() still works.
  void stop();

  /// Registers subscriber `id`. `replay` frames are seeded into the queue
  /// atomically with registration — unconditionally, even past the queue
  /// bound, because replay is required state (schemas, last samples, role)
  /// — so the subscriber observes them strictly before any frame published
  /// after add() returns.
  void add(std::uint64_t id, Sink sink,
           std::vector<OutboundQueue::Item> replay = {});

  /// add() for BytesSink subscribers (see BytesSink).
  void add(std::uint64_t id, BytesSink sink,
           std::vector<OutboundQueue::Item> replay = {});

  /// add() for batch-aware subscribers (see BatchSink).
  void add(std::uint64_t id, BatchSink sink,
           std::vector<OutboundQueue::Item> replay = {});

  /// Deregisters `id`, discarding its pending frames. Idempotent; does not
  /// invoke on_dead. A frame already claimed by the worker may still be
  /// delivered concurrently with (or just after) removal.
  void remove(std::uint64_t id);

  /// Enqueues a copy of `item` to every subscriber under its policy. Never
  /// blocks on consumer I/O.
  void publish(const OutboundQueue::Item& item);

  /// publish() for a pre-encoded shared frame.
  void publish(const FramePtr& frame, OverflowPolicy policy) {
    publish(OutboundQueue::Item{frame, policy, nullptr});
  }

  /// publish() to every subscriber except `excluded_id` — for relays where
  /// the frame's origin is itself a subscriber (a media-bridge client's
  /// upstream frame goes to the group and its *sibling* clients, never
  /// back to the sender).
  void publish_except(std::uint64_t excluded_id,
                      const OutboundQueue::Item& item);

  /// Broadcasts an opaque source payload that each subscriber's sink
  /// encodes for itself at delivery time (per-consumer payloads).
  void publish_source(std::shared_ptr<const void> source,
                      OverflowPolicy policy) {
    publish(OutboundQueue::Item{nullptr, policy, std::move(source)});
  }

  /// Enqueues `item` to subscriber `id` only (unicast — role notices,
  /// replies). Shares ordering with publish(): both go through the same
  /// queue. Returns false when `id` is not subscribed.
  bool send_to(std::uint64_t id, OutboundQueue::Item item);

  /// send_to() for a pre-encoded shared frame.
  bool send_to(std::uint64_t id, FramePtr frame, OverflowPolicy policy) {
    return send_to(id, OutboundQueue::Item{std::move(frame), policy, nullptr});
  }

  std::size_t subscriber_count() const;
  std::size_t shard_count() const noexcept { return shards_.size(); }
  /// Aggregate counters plus per-shard breakdown; safe to call anytime.
  FanoutStats stats() const;

  /// Shard a subscriber id maps onto (exposed for tests that need to place
  /// two subscribers on distinct shards).
  static std::size_t shard_of(std::uint64_t id, std::size_t shards) noexcept {
    return static_cast<std::size_t>(id % shards);
  }

 private:
  struct Subscriber {
    std::uint64_t id = 0;
    /// All sink forms are stored batch-shaped (per-item sinks are wrapped
    /// in a loop adapter); immutable after add(), called by the shard
    /// worker only.
    BatchSink sink;
    OutboundQueue queue;
    bool doomed = false;  // scheduled for teardown; skip further traffic

    Subscriber(std::uint64_t id_, BatchSink sink_, std::size_t capacity)
        : id(id_), sink(std::move(sink_)), queue(capacity) {}
  };

  struct Shard {
    mutable std::mutex mutex;
    std::condition_variable_any cv;
    std::map<std::uint64_t, std::shared_ptr<Subscriber>> subs;
    std::size_t pending = 0;  ///< total queued frames across subs
    FanoutShardStats stats;
    FrameStageStats stages;  ///< guarded by mutex, like stats
    std::jthread worker;
  };

  void worker_loop(const std::stop_token& st, Shard& shard);
  /// Shared body of publish()/publish_except(); `excluded` is null when
  /// every subscriber receives the item.
  void publish_impl(const OutboundQueue::Item& item,
                    const std::uint64_t* excluded);
  /// Erases `ids` from `shard` and fires on_dead for each; both steps
  /// respect the lock discipline (erase under the shard lock, callback out).
  void disconnect(Shard& shard, const std::vector<std::uint64_t>& ids);
  void account_push(Shard& shard, Subscriber& sub, OutboundQueue::Push result,
                    OverflowPolicy policy,
                    std::vector<std::uint64_t>& doomed);

  Shard& shard_for(std::uint64_t id) noexcept {
    return *shards_[shard_of(id, shards_.size())];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  DeadCallback on_dead_;
  std::size_t queue_capacity_ = 256;
  std::atomic<bool> stopped_{false};
};

}  // namespace cs::common
