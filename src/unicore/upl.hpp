// UNICORE Protocol Layer (UPL) — the transaction wire format between the
// UNICORE client and the Gateway.
//
// Every request is one self-contained transaction carrying the user's
// certificate (standing in for the SSL client certificate), so "a client
// can appear or vanish at any time" (paper section 3.3). All traffic flows
// through the gateway's single server address — the firewall-friendliness
// property of section 3.1.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "unicore/ajo.hpp"
#include "unicore/identity.hpp"

namespace cs::unicore {

enum class UplOp : std::uint8_t {
  kConsign = 1,  ///< text = serialized AJO
  kStatus = 2,   ///< job_id set
  kOutcome = 3,  ///< job_id set
  kAbort = 4,    ///< job_id set
  kInvite = 5,   ///< text = "subject\x1ffingerprint" of the guest
  kVisit = 6,    ///< binary = proxy transaction (visit/proxy.hpp)
};

struct UplRequest {
  UplOp op = UplOp::kStatus;
  Certificate identity;
  std::string vsite;
  std::string job_id;
  std::string text;
  common::Bytes binary;
};

struct UplResponse {
  common::Status status;      ///< middleware-level result
  std::string text;           ///< job id, state name, ...
  common::Bytes binary;       ///< proxy transaction response
  JobOutcome outcome;         ///< for kOutcome
  bool has_outcome = false;
};

common::Bytes encode_upl_request(const UplRequest& request);
common::Result<UplRequest> decode_upl_request(common::ByteSpan raw);
common::Bytes encode_upl_response(const UplResponse& response);
common::Result<UplResponse> decode_upl_response(common::ByteSpan raw);

}  // namespace cs::unicore
