// vic-style media streams and unicast/multicast bridges.
//
// "The redirection of the visualization into vic to make 3D animations
// available over the Access Grid" (paper section 1) is a sequence of
// independently-decodable compressed frames on a multicast group. Sites
// behind multicast-blocking firewalls use a bridge: "we added support for
// unicast/multicast bridges and point to point sessions" (section 4.6).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "net/inproc.hpp"
#include "viz/compress.hpp"
#include "viz/image.hpp"

namespace cs::ag {

/// One video stream endpoint on a multicast group. Frames are key-frame
/// compressed (each independently decodable, tolerating loss, like vic).
class MediaStream {
 public:
  static common::Result<MediaStream> join(net::InProcNetwork& net,
                                          const std::string& group,
                                          const net::LinkModel& link = {});

  /// Sends one frame to the whole group (best effort).
  common::Status send_frame(const viz::Image& frame);

  /// Receives and decodes the next frame.
  common::Result<viz::Image> receive_frame(common::Deadline deadline);

  std::uint64_t frames_sent() const noexcept { return frames_sent_; }
  std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }

  /// Counters of the underlying multicast socket (zeros after leave()).
  net::ConnStats stats() const {
    return socket_ ? socket_->stats() : net::ConnStats{};
  }

  void leave();

 private:
  net::MulticastSocketPtr socket_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

/// Relays a multicast group to unicast clients and back — for venues whose
/// participants sit behind NAT/firewalls without multicast.
class UnicastBridge {
 public:
  struct Options {
    std::string group;    ///< multicast group to bridge
    std::string address;  ///< unicast address clients connect to
  };

  static common::Result<std::unique_ptr<UnicastBridge>> start(
      net::InProcNetwork& net, const Options& options);
  ~UnicastBridge();
  UnicastBridge(const UnicastBridge&) = delete;
  UnicastBridge& operator=(const UnicastBridge&) = delete;
  void stop();

  std::size_t client_count() const;

 private:
  UnicastBridge() = default;
  void register_client(net::ConnectionPtr conn);
  void group_pump(const std::stop_token& st);
  void client_pump(const std::stop_token& st, std::uint64_t id);

  /// A client pump plus its completion flag; `done` is set only after the
  /// pump body has returned, so reaping joins only threads past their last
  /// use of mutex_/clients_.
  struct ClientThread {
    std::shared_ptr<std::atomic<bool>> done;
    std::jthread thread;
  };

  net::MulticastSocketPtr socket_;
  net::ListenerPtr listener_;
  std::jthread group_thread_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, net::ConnectionPtr> clients_;
  std::vector<ClientThread> client_threads_;
  std::uint64_t next_id_ = 1;
  std::atomic<bool> stopped_{false};
};

}  // namespace cs::ag
