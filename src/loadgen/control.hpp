// Wire codecs for the distributed-loadgen control channel.
//
// A Controller hands each WorkerAgent a serialized WorkloadSpec over a
// length-prefixed control connection, barriers the start, and collects one
// WireWorkerReport per worker — the ctsTraffic controller/worker
// orchestration shape. Control frames share the LoadFrame magic but occupy
// their own op range (kControlOpBase upward), so a control frame can never
// be mistaken for traffic and vice versa: LoadFrame::decode rejects control
// ops, decode_control rejects traffic ops.
//
// Every decoder here treats the peer as untrusted: truncated bodies,
// oversized strings, unknown tags, and internally inconsistent histograms
// all come back as kInvalidArgument, never a crash — a worker shard is
// merged only after it parsed clean.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/histogram.hpp"
#include "common/status.hpp"
#include "loadgen/workload.hpp"
#include "net/transport.hpp"

namespace cs::loadgen {

/// Control ops live above the LoadFrame traffic ops (kAck..kStream) in the
/// same magic'd frame namespace.
constexpr std::uint8_t kControlOpBase = 0x10;

enum class ControlOp : std::uint8_t {
  /// worker -> controller on connect: name + /metricsz address.
  kJoin = kControlOpBase + 0,
  /// controller -> worker: the serialized WorkloadSpec to prepare.
  kAssign = kControlOpBase + 1,
  /// worker -> controller: spec prepared (connections open), awaiting start.
  kReady = kControlOpBase + 2,
  /// controller -> worker: start barrier release; run begins now.
  kStart = kControlOpBase + 3,
  /// worker -> controller: the run's merged shard (WireWorkerReport).
  kResult = kControlOpBase + 4,
  /// controller -> worker: session over, tear down. Empty body.
  kBye = kControlOpBase + 5,
};

std::string_view to_string(ControlOp op) noexcept;

/// Worker -> controller introduction.
struct JoinFrame {
  std::string worker_name;
  /// Where the controller can scrape this worker's /metricsz registry;
  /// empty when the worker serves none.
  std::string metricsz_address;
};

/// What one worker must execute: the declarative Workload plus the scenario
/// binding (which service to drive, where it lives, this worker's slot in
/// the fleet).
struct WorkloadSpec {
  enum class Kind : std::uint8_t {
    kRaw = 0,         ///< run `workload` against a LoadPeer at `target`
    kMuxViewers = 1,  ///< a viewer fleet on a visit::Multiplexer at `target`
  };
  Kind kind = Kind::kRaw;
  /// The per-worker slice: `workload.connections` is THIS worker's count,
  /// not the fleet total.
  Workload workload;
  /// Address of the system under test (LoadPeer or mux viewer port).
  std::string target;
  /// Session password for handshaking scenarios (mux); unused for raw.
  std::string password;
  std::uint32_t worker_index = 0;
  std::uint32_t worker_count = 1;
};

std::string_view to_string(WorkloadSpec::Kind kind) noexcept;

/// One worker's merged shard, shipped back over the control connection.
/// The histogram is the log-bucketed latency shard — mergeable into the
/// controller's aggregate with zero loss (identical bucket layout).
struct WireWorkerReport {
  std::uint32_t worker_index = 0;
  std::uint64_t connections = 0;
  std::uint64_t ops = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t errors = 0;
  std::uint64_t elapsed_ns = 0;
  net::ConnStats transport;
  common::Histogram latency;
};

common::Bytes encode_join(const JoinFrame& join);
common::Bytes encode_assign(const WorkloadSpec& spec);
common::Bytes encode_ready(std::uint32_t worker_index);
common::Bytes encode_start();
common::Bytes encode_result(const WireWorkerReport& report);
common::Bytes encode_bye();

/// Validates the magic and returns the control op, or kInvalidArgument for
/// short frames, foreign magic, traffic ops, and unknown tags.
common::Result<ControlOp> decode_control_op(common::ByteSpan frame);

common::Result<JoinFrame> decode_join(common::ByteSpan frame);
common::Result<WorkloadSpec> decode_assign(common::ByteSpan frame);
common::Result<std::uint32_t> decode_ready(common::ByteSpan frame);
common::Result<WireWorkerReport> decode_result(common::ByteSpan frame);

}  // namespace cs::loadgen
