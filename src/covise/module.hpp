// Module base class — the unit of COVISE's visual-programming pipelines.
//
// "Distributed applications can be built by combining modules (modeled as
// processes) from different application categories on different hosts to
// form module networks." (paper section 4.5). A module declares input and
// output ports and parameters; the Controller decides when compute() runs
// and on which host's data it operates.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "covise/dataobject.hpp"

namespace cs::covise {

/// Everything a module sees during one compute() call.
class ModuleContext {
 public:
  ModuleContext(std::map<std::string, DataObjectPtr> inputs,
                const std::map<std::string, std::string>* params)
      : inputs_(std::move(inputs)), params_(params) {}

  /// Connected input object, or kUnavailable when the port is unconnected.
  common::Result<DataObjectPtr> input(const std::string& port) const {
    auto it = inputs_.find(port);
    if (it == inputs_.end() || !it->second) {
      return common::Status{common::StatusCode::kUnavailable,
                            "port not connected: " + port};
    }
    return it->second;
  }

  /// Publishes the payload on an output port (named by the controller).
  void set_output(const std::string& port, Payload payload) {
    outputs_[port] = std::move(payload);
  }

  std::string param(const std::string& key,
                    const std::string& fallback = {}) const {
    auto it = params_->find(key);
    return it == params_->end() ? fallback : it->second;
  }

  double param_double(const std::string& key, double fallback) const;
  int param_int(const std::string& key, int fallback) const;

  std::map<std::string, Payload>& outputs() noexcept { return outputs_; }

 private:
  std::map<std::string, DataObjectPtr> inputs_;
  const std::map<std::string, std::string>* params_;
  std::map<std::string, Payload> outputs_;
};

class Module {
 public:
  explicit Module(std::string type_name) : type_name_(std::move(type_name)) {}
  virtual ~Module() = default;

  const std::string& type_name() const noexcept { return type_name_; }
  const std::vector<std::string>& input_ports() const noexcept {
    return input_ports_;
  }
  const std::vector<std::string>& output_ports() const noexcept {
    return output_ports_;
  }

  /// Runs the module's computation. Inputs were resolved by the controller
  /// (via SDS/CRB); outputs land in ctx.outputs().
  virtual common::Status compute(ModuleContext& ctx) = 0;

 protected:
  void add_input(std::string port) { input_ports_.push_back(std::move(port)); }
  void add_output(std::string port) {
    output_ports_.push_back(std::move(port));
  }

 private:
  std::string type_name_;
  std::vector<std::string> input_ports_;
  std::vector<std::string> output_ports_;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace cs::covise
