// Collaborative sessions over replicated module networks.
//
// "In a collaborative session all partners see the same screen
// representations at the same time on their local workstation" and "such
// scene update rates are only possible if the generation of the new content
// is done locally and only synchronisation information such as the
// parameter set for the cutting plane determination is exchanged." (paper
// sections 4.5/4.3).
//
// Each participant holds a full local replica of the pipeline (its own
// Controller). The latency-sensitive sync channel is the external control
// server of section 3.3 (visit::ControlServer): the master's parameter and
// viewpoint changes travel as tiny text records; every replica re-executes
// locally. Only the master steers; observers' publishes are rejected by the
// control server's role system.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "covise/controller.hpp"
#include "covise/modules.hpp"
#include "net/inproc.hpp"
#include "visit/control.hpp"

namespace cs::covise {

/// Builds the (identical) module network inside a participant's controller.
/// Returns the renderer module id whose "image" output is the shared view.
using PipelineBuilder =
    std::function<common::Result<std::string>(Controller& controller)>;

class CollabParticipant {
 public:
  struct Options {
    /// Address of the shared visit::ControlServer.
    std::string sync_address;
    std::string password;
    /// "actor" (may steer) or "observer".
    std::string role = "observer";
    /// Unique per participant; scopes its hosts/brokers on the shared net.
    std::string replica_name;
  };

  /// Creates the participant: builds the local replica and joins the sync
  /// channel.
  static common::Result<std::unique_ptr<CollabParticipant>> join(
      net::InProcNetwork& net, const Options& options,
      const PipelineBuilder& builder);

  /// Master-side steering: applies locally, re-executes, and broadcasts
  /// "PARAM <module> <key> <value>" to all other participants.
  common::Status steer(const std::string& module, const std::string& key,
                       const std::string& value, common::Deadline deadline);

  /// Applies remote updates until the deadline (observers call this in
  /// their event loop). Returns how many updates were applied.
  common::Result<std::size_t> pump(common::Deadline deadline);

  /// The participant's current view (renderer output).
  common::Result<viz::Image> current_view() const;

  Controller& controller() noexcept { return controller_; }
  const std::string& renderer_module() const noexcept { return renderer_; }

 private:
  CollabParticipant(net::InProcNetwork& net, std::string replica)
      : controller_(net, std::move(replica)) {}

  common::Status apply_update(const std::string& record);

  Controller controller_;
  visit::ControlClient sync_;
  std::string renderer_;
};

}  // namespace cs::covise
