#include "sim/lbm/lbm.hpp"

#include <cmath>

namespace cs::lbm {

namespace {

/// Second-order equilibrium distribution.
inline double equilibrium(int q, double rho, double ux, double uy, double uz) {
  const auto& e = kVelocities[static_cast<std::size_t>(q)];
  const double eu = e[0] * ux + e[1] * uy + e[2] * uz;
  const double u2 = ux * ux + uy * uy + uz * uz;
  return kWeights[static_cast<std::size_t>(q)] * rho *
         (1.0 + eu / kCs2 + eu * eu / (2.0 * kCs2 * kCs2) - u2 / (2.0 * kCs2));
}

}  // namespace

TwoFluidLbm::TwoFluidLbm(const LbmConfig& config) : config_(config) {
  grid_ = Grid{config_.nx, config_.ny, config_.nz};
  const std::size_t n = grid_.cells();
  f_a_.resize(n * kQ);
  f_b_.resize(n * kQ);
  buf_.resize(n * kQ);
  rho_a_.resize(n);
  rho_b_.resize(n);
  mom_a_.resize(n * 3);
  mom_b_.resize(n * 3);

  // Initial condition: both components near rho0 with opposite-signed
  // perturbations, at rest — the classic spinodal quench setup.
  common::Rng rng{config_.seed};
  for (std::size_t c = 0; c < n; ++c) {
    const double delta = config_.noise * (2.0 * rng.next_double() - 1.0);
    const double ra = config_.rho0 + delta;
    const double rb = config_.rho0 - delta;
    for (int q = 0; q < kQ; ++q) {
      f_a_[c * kQ + static_cast<std::size_t>(q)] = equilibrium(q, ra, 0, 0, 0);
      f_b_[c * kQ + static_cast<std::size_t>(q)] = equilibrium(q, rb, 0, 0, 0);
    }
  }
  compute_densities();
}

void TwoFluidLbm::compute_densities() {
  const std::size_t n = grid_.cells();
  for (std::size_t c = 0; c < n; ++c) {
    double ra = 0, rb = 0;
    double max_ = 0, may = 0, maz = 0, mbx = 0, mby = 0, mbz = 0;
    for (int q = 0; q < kQ; ++q) {
      const double fa = f_a_[c * kQ + static_cast<std::size_t>(q)];
      const double fb = f_b_[c * kQ + static_cast<std::size_t>(q)];
      const auto& e = kVelocities[static_cast<std::size_t>(q)];
      ra += fa;
      rb += fb;
      max_ += fa * e[0];
      may += fa * e[1];
      maz += fa * e[2];
      mbx += fb * e[0];
      mby += fb * e[1];
      mbz += fb * e[2];
    }
    rho_a_[c] = ra;
    rho_b_[c] = rb;
    mom_a_[c * 3 + 0] = max_;
    mom_a_[c * 3 + 1] = may;
    mom_a_[c * 3 + 2] = maz;
    mom_b_[c * 3 + 0] = mbx;
    mom_b_[c * 3 + 1] = mby;
    mom_b_[c * 3 + 2] = mbz;
  }
}

void TwoFluidLbm::step() {
  const std::size_t n = grid_.cells();
  const double g = config_.coupling;
  const double inv_tau_a = 1.0 / config_.tau_a;
  const double inv_tau_b = 1.0 / config_.tau_b;

  // --- Shan-Chen inter-component force (psi = rho) ----------------------
  // F_a(x) = -g * rho_a(x) * sum_i w_i * rho_b(x + e_i) * e_i, and b<->a.
  std::vector<double> force_a(n * 3, 0.0), force_b(n * 3, 0.0);
  if (g != 0.0) {
    for (int z = 0; z < grid_.nz; ++z) {
      for (int y = 0; y < grid_.ny; ++y) {
        for (int x = 0; x < grid_.nx; ++x) {
          const std::size_t c = grid_.index(x, y, z);
          double gbx = 0, gby = 0, gbz = 0;  // gradient-like sum of rho_b
          double gax = 0, gay = 0, gaz = 0;  // and of rho_a
          for (int q = 1; q < kQ; ++q) {
            const std::size_t nb = grid_.neighbor(x, y, z, q);
            const auto& e = kVelocities[static_cast<std::size_t>(q)];
            const double w = kWeights[static_cast<std::size_t>(q)];
            gbx += w * rho_b_[nb] * e[0];
            gby += w * rho_b_[nb] * e[1];
            gbz += w * rho_b_[nb] * e[2];
            gax += w * rho_a_[nb] * e[0];
            gay += w * rho_a_[nb] * e[1];
            gaz += w * rho_a_[nb] * e[2];
          }
          force_a[c * 3 + 0] = -g * rho_a_[c] * gbx;
          force_a[c * 3 + 1] = -g * rho_a_[c] * gby;
          force_a[c * 3 + 2] = -g * rho_a_[c] * gbz;
          force_b[c * 3 + 0] = -g * rho_b_[c] * gax;
          force_b[c * 3 + 1] = -g * rho_b_[c] * gay;
          force_b[c * 3 + 2] = -g * rho_b_[c] * gaz;
        }
      }
    }
  }

  // --- collide -----------------------------------------------------------
  // Common velocity u' (Shan-Chen): weighted by rho/tau; each component
  // relaxes towards equilibrium at u' shifted by tau*F/rho.
  for (std::size_t c = 0; c < n; ++c) {
    const double ra = rho_a_[c];
    const double rb = rho_b_[c];
    const double wa = ra * inv_tau_a;
    const double wb = rb * inv_tau_b;
    const double wsum = wa + wb;
    double upx = 0, upy = 0, upz = 0;
    if (wsum > 0) {
      upx = (mom_a_[c * 3 + 0] * inv_tau_a + mom_b_[c * 3 + 0] * inv_tau_b) / wsum;
      upy = (mom_a_[c * 3 + 1] * inv_tau_a + mom_b_[c * 3 + 1] * inv_tau_b) / wsum;
      upz = (mom_a_[c * 3 + 2] * inv_tau_a + mom_b_[c * 3 + 2] * inv_tau_b) / wsum;
    }
    const double uax = ra > 1e-12 ? upx + config_.tau_a * force_a[c * 3 + 0] / ra : upx;
    const double uay = ra > 1e-12 ? upy + config_.tau_a * force_a[c * 3 + 1] / ra : upy;
    const double uaz = ra > 1e-12 ? upz + config_.tau_a * force_a[c * 3 + 2] / ra : upz;
    const double ubx = rb > 1e-12 ? upx + config_.tau_b * force_b[c * 3 + 0] / rb : upx;
    const double uby = rb > 1e-12 ? upy + config_.tau_b * force_b[c * 3 + 1] / rb : upy;
    const double ubz = rb > 1e-12 ? upz + config_.tau_b * force_b[c * 3 + 2] / rb : upz;
    for (int q = 0; q < kQ; ++q) {
      const std::size_t i = c * kQ + static_cast<std::size_t>(q);
      f_a_[i] -= inv_tau_a * (f_a_[i] - equilibrium(q, ra, uax, uay, uaz));
      f_b_[i] -= inv_tau_b * (f_b_[i] - equilibrium(q, rb, ubx, uby, ubz));
    }
  }

  // --- stream (periodic) ---------------------------------------------------
  for (auto* field : {&f_a_, &f_b_}) {
    for (int z = 0; z < grid_.nz; ++z) {
      for (int y = 0; y < grid_.ny; ++y) {
        for (int x = 0; x < grid_.nx; ++x) {
          const std::size_t c = grid_.index(x, y, z);
          for (int q = 0; q < kQ; ++q) {
            buf_[grid_.neighbor(x, y, z, q) * kQ + static_cast<std::size_t>(q)] =
                (*field)[c * kQ + static_cast<std::size_t>(q)];
          }
        }
      }
    }
    field->swap(buf_);
  }

  compute_densities();
  ++steps_;
}

double TwoFluidLbm::mass_a() const {
  double m = 0;
  for (double r : rho_a_) m += r;
  return m;
}

double TwoFluidLbm::mass_b() const {
  double m = 0;
  for (double r : rho_b_) m += r;
  return m;
}

std::vector<float> TwoFluidLbm::order_parameter() const {
  std::vector<float> phi(grid_.cells());
  for (std::size_t c = 0; c < phi.size(); ++c) {
    const double total = rho_a_[c] + rho_b_[c];
    phi[c] = total > 1e-12
                 ? static_cast<float>((rho_a_[c] - rho_b_[c]) / total)
                 : 0.0f;
  }
  return phi;
}

double TwoFluidLbm::segregation() const {
  double sum = 0;
  const std::size_t n = grid_.cells();
  for (std::size_t c = 0; c < n; ++c) {
    const double total = rho_a_[c] + rho_b_[c];
    if (total > 1e-12) sum += std::abs(rho_a_[c] - rho_b_[c]) / total;
  }
  return sum / static_cast<double>(n);
}

common::Status TwoFluidLbm::set_state(std::vector<double> f_a,
                                      std::vector<double> f_b,
                                      std::uint64_t steps_done) {
  const std::size_t expected = grid_.cells() * kQ;
  if (f_a.size() != expected || f_b.size() != expected) {
    return common::Status{common::StatusCode::kInvalidArgument,
                          "distribution size does not match the grid"};
  }
  f_a_ = std::move(f_a);
  f_b_ = std::move(f_b);
  steps_ = steps_done;
  compute_densities();
  return common::Status::ok();
}

std::uint64_t TwoFluidLbm::interface_links() const {
  std::uint64_t links = 0;
  for (int z = 0; z < grid_.nz; ++z) {
    for (int y = 0; y < grid_.ny; ++y) {
      for (int x = 0; x < grid_.nx; ++x) {
        const std::size_t c = grid_.index(x, y, z);
        const double phi_c = rho_a_[c] - rho_b_[c];
        // Only +x/+y/+z neighbors so each link is counted once.
        for (int q : {1, 3, 5}) {
          const std::size_t nb = grid_.neighbor(x, y, z, q);
          const double phi_n = rho_a_[nb] - rho_b_[nb];
          if ((phi_c > 0) != (phi_n > 0)) ++links;
        }
      }
    }
  }
  return links;
}

}  // namespace cs::lbm
