#include "viz/compress.hpp"

namespace cs::viz {

using common::ByteOrder;
using common::Bytes;
using common::ByteSpan;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {

constexpr std::uint8_t kKeyFrame = 'K';
constexpr std::uint8_t kDeltaFrame = 'D';

/// Pixel-level RLE: (count, r, g, b) quads with count in [1, 255]. Pixel
/// granularity matters: a flat *colored* frame has no byte-level runs
/// (r,g,b,r,g,b...) but maximal pixel-level runs.
void rle_encode(ByteSpan raw, Bytes& out) {
  const std::size_t pixels = raw.size() / 3;
  std::size_t i = 0;
  while (i < pixels) {
    const std::uint8_t r = raw[i * 3];
    const std::uint8_t g = raw[i * 3 + 1];
    const std::uint8_t b = raw[i * 3 + 2];
    std::size_t run = 1;
    while (run < 255 && i + run < pixels &&
           raw[(i + run) * 3] == r && raw[(i + run) * 3 + 1] == g &&
           raw[(i + run) * 3 + 2] == b) {
      ++run;
    }
    out.push_back(static_cast<std::uint8_t>(run));
    out.push_back(r);
    out.push_back(g);
    out.push_back(b);
    i += run;
  }
}

Status rle_decode(ByteSpan data, Bytes& out, std::size_t expected) {
  out.clear();
  out.reserve(expected);
  if (data.size() % 4 != 0) {
    return Status{StatusCode::kProtocolError, "ragged RLE stream"};
  }
  for (std::size_t i = 0; i < data.size(); i += 4) {
    const std::uint8_t run = data[i];
    if (run == 0) return Status{StatusCode::kProtocolError, "zero run"};
    for (std::uint8_t k = 0; k < run; ++k) {
      out.push_back(data[i + 1]);
      out.push_back(data[i + 2]);
      out.push_back(data[i + 3]);
    }
  }
  if (out.size() != expected) {
    return Status{StatusCode::kProtocolError, "RLE size mismatch"};
  }
  return Status::ok();
}

Bytes image_bytes(const Image& frame) {
  Bytes raw;
  raw.reserve(frame.byte_size());
  for (const auto& p : frame.pixels()) {
    raw.push_back(p.r);
    raw.push_back(p.g);
    raw.push_back(p.b);
  }
  return raw;
}

Image image_from_bytes(int width, int height, ByteSpan raw) {
  Image img(width, height);
  for (std::size_t i = 0; i < img.pixels().size(); ++i) {
    img.pixels()[i] =
        Color{raw[i * 3], raw[i * 3 + 1], raw[i * 3 + 2]};
  }
  return img;
}

void write_header(Bytes& out, std::uint8_t kind, const Image& frame) {
  out.push_back(kind);
  common::append_uint<std::uint32_t>(out, static_cast<std::uint32_t>(frame.width()),
                                     ByteOrder::kBig);
  common::append_uint<std::uint32_t>(out, static_cast<std::uint32_t>(frame.height()),
                                     ByteOrder::kBig);
}

}  // namespace

Bytes compress_frame(const Image& frame) {
  Bytes out;
  write_header(out, kKeyFrame, frame);
  rle_encode(image_bytes(frame), out);
  return out;
}

Result<Image> decompress_frame(ByteSpan data) {
  return decompress_frame_delta(data, Image{});
}

Bytes compress_frame_delta(const Image& frame, const Image& previous) {
  if (previous.width() != frame.width() ||
      previous.height() != frame.height()) {
    return compress_frame(frame);
  }
  Bytes out;
  write_header(out, kDeltaFrame, frame);
  Bytes raw = image_bytes(frame);
  const Bytes base = image_bytes(previous);
  for (std::size_t i = 0; i < raw.size(); ++i) raw[i] ^= base[i];
  rle_encode(raw, out);
  return out;
}

Result<Image> decompress_frame_delta(ByteSpan data, const Image& previous) {
  if (data.size() < 9) {
    return Status{StatusCode::kProtocolError, "frame header truncated"};
  }
  const std::uint8_t kind = data[0];
  const auto width =
      common::read_uint<std::uint32_t>(data.subspan(1), ByteOrder::kBig);
  const auto height =
      common::read_uint<std::uint32_t>(data.subspan(5), ByteOrder::kBig);
  if (width > 16384 || height > 16384) {
    return Status{StatusCode::kProtocolError, "absurd frame dimensions"};
  }
  const std::size_t expected =
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height) * 3;
  Bytes raw;
  if (Status s = rle_decode(data.subspan(9), raw, expected); !s.is_ok()) {
    return s;
  }
  if (kind == kKeyFrame) {
    return image_from_bytes(static_cast<int>(width), static_cast<int>(height),
                            raw);
  }
  if (kind != kDeltaFrame) {
    return Status{StatusCode::kProtocolError, "unknown frame kind"};
  }
  if (previous.width() != static_cast<int>(width) ||
      previous.height() != static_cast<int>(height)) {
    return Status{StatusCode::kProtocolError,
                  "delta frame without matching base"};
  }
  const Bytes base = image_bytes(previous);
  for (std::size_t i = 0; i < raw.size(); ++i) raw[i] ^= base[i];
  return image_from_bytes(static_cast<int>(width), static_cast<int>(height),
                          raw);
}

Bytes DeltaEncoder::encode(std::shared_ptr<const Image> frame) {
  Bytes out = baseline_ ? compress_frame_delta(*frame, *baseline_)
                        : compress_frame(*frame);
  pending_ = std::move(frame);
  return out;
}

void DeltaEncoder::commit() {
  if (!pending_) return;
  baseline_ = std::move(pending_);
}

void DeltaEncoder::reset() {
  baseline_.reset();
  pending_.reset();
}

}  // namespace cs::viz
