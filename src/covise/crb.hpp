// Request broker — one per participating host.
//
// "Request brokers on each participating host take care of data management,
// efficient data transfer and conversion between different platforms"
// (paper section 4.5). A broker serves its host's SDS over the network;
// fetching a remote object caches it in the local SDS so repeated use stays
// local. Transfer statistics feed experiments E2/E7.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "covise/sds.hpp"
#include "net/accept_pump.hpp"
#include "net/conn_host.hpp"
#include "net/inproc.hpp"
#include "obs/registry.hpp"

namespace cs::covise {

class RequestBroker {
 public:
  struct Stats {
    std::uint64_t objects_served = 0;
    std::uint64_t objects_fetched = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t local_hits = 0;  ///< requests satisfied from the local SDS
  };

  /// Starts a broker serving `sds` at "crb/<session>/<host>".
  static common::Result<std::unique_ptr<RequestBroker>> start(
      net::InProcNetwork& net, std::shared_ptr<SharedDataSpace> sds,
      const std::string& session, const net::LinkModel& link = {});

  ~RequestBroker();
  RequestBroker(const RequestBroker&) = delete;
  RequestBroker& operator=(const RequestBroker&) = delete;
  void stop();

  /// Resolves an object: local SDS first, then the owning host's broker
  /// (the host is the first '/'-separated component of the object name).
  /// Fetched objects are cached locally.
  common::Result<DataObjectPtr> resolve(const std::string& object_name,
                                        common::Deadline deadline);

  std::shared_ptr<SharedDataSpace> sds() const { return sds_; }
  /// Snapshot of the transfer counters (shim over the metrics registry).
  Stats stats() const;
  /// Threads owned regardless of connection count (the hosted request/reply
  /// path replaced the thread-per-connection serve loop).
  std::size_t service_threads() const;
  /// The service's metrics registry (source of truth for the counters).
  obs::Registry& metrics() noexcept { return metrics_; }

 private:
  RequestBroker() = default;
  void handle_conn(net::ConnectionPtr conn);
  void on_message(std::uint64_t id, const common::Bytes& message);
  common::Result<net::ConnectionPtr> peer_connection(
      const std::string& host, common::Deadline deadline);

  net::InProcNetwork* net_ = nullptr;
  std::string session_;
  net::LinkModel link_;
  std::shared_ptr<SharedDataSpace> sds_;
  net::ListenerPtr listener_;
  std::unique_ptr<net::ConnectionHost> host_;
  std::unique_ptr<net::AcceptPump> accept_pump_;
  mutable std::mutex mutex_;
  std::map<std::string, net::ConnectionPtr> peers_;
  std::atomic<std::uint64_t> next_id_{1};
  /// Registry-backed counters; stats() reads them back for the old shape.
  obs::Registry metrics_;
  obs::Counter& ctr_objects_served_ =
      metrics_.counter("crb_objects_served", "objects");
  obs::Counter& ctr_objects_fetched_ =
      metrics_.counter("crb_objects_fetched", "objects");
  obs::Counter& ctr_bytes_sent_ = metrics_.counter("crb_bytes_sent", "bytes");
  obs::Counter& ctr_bytes_received_ =
      metrics_.counter("crb_bytes_received", "bytes");
  obs::Counter& ctr_local_hits_ =
      metrics_.counter("crb_local_hits", "requests");
  std::atomic<bool> stopped_{false};
};

}  // namespace cs::covise
