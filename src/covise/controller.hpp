// Central controller — "session management for adding new hosts and
// synchronizing the tasks in the module network is done in a central
// controller which has the only knowledge about the whole application
// topology" (paper section 4.5).
//
// The controller owns the module network (the Map, in COVISE terms):
// modules placed on named hosts, connections between ports, and parameter
// state. execute() runs dirty modules in topological order; data objects
// flow through each host's SDS and cross hosts through the CRBs, so the
// transfer statistics reflect the real placement of the pipeline.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "covise/crb.hpp"
#include "covise/module.hpp"
#include "covise/sds.hpp"
#include "net/inproc.hpp"

namespace cs::covise {

class Controller {
 public:
  /// `session` scopes all network addresses so multiple controllers (the
  /// replicated collaborative sessions of section 4.6) can share one net.
  Controller(net::InProcNetwork& net, std::string session)
      : net_(net), session_(std::move(session)) {}

  /// Adds a host with its SDS and request broker. `link` shapes traffic
  /// *into* this host's broker connections.
  common::Status add_host(const std::string& host,
                          const net::LinkModel& link = {});

  /// Places a module instance on a host. Returns the instance id
  /// ("<type>_<n>").
  common::Result<std::string> add_module(const std::string& host,
                                         ModulePtr module);

  /// Connects an output port to an input port.
  common::Status connect_ports(const std::string& from_module,
                               const std::string& from_port,
                               const std::string& to_module,
                               const std::string& to_port);

  /// Sets a module parameter and marks it dirty.
  common::Status set_param(const std::string& module, const std::string& key,
                           std::string value);

  common::Result<std::string> get_param(const std::string& module,
                                        const std::string& key) const;

  /// Marks a module dirty without touching parameters (new upstream data).
  common::Status mark_dirty(const std::string& module);

  /// Runs every dirty module and everything downstream of it, in
  /// topological order. Returns the number of modules executed.
  common::Result<std::size_t> execute();

  /// Latest output object of a port (after execute()).
  common::Result<DataObjectPtr> output_of(const std::string& module,
                                          const std::string& port) const;

  /// Aggregated CRB statistics over all hosts.
  RequestBroker::Stats transfer_stats() const;

  std::vector<std::string> hosts() const;
  std::vector<std::string> modules() const;
  const std::string& session() const noexcept { return session_; }

 private:
  struct HostRuntime {
    std::shared_ptr<SharedDataSpace> sds;
    std::unique_ptr<RequestBroker> crb;
  };

  struct ModuleEntry {
    std::string host;
    ModulePtr module;
    std::map<std::string, std::string> params;
    std::map<std::string, std::string> outputs;  // port -> object name
    bool dirty = true;
  };

  struct Connection {
    std::string from_module, from_port, to_module, to_port;
  };

  common::Result<std::vector<std::string>> topological_order() const;

  net::InProcNetwork& net_;
  std::string session_;
  std::map<std::string, HostRuntime> hosts_;
  std::map<std::string, ModuleEntry> modules_;
  std::vector<Connection> connections_;
  std::map<std::string, int> type_counts_;
};

}  // namespace cs::covise
