// E7 — collaboration speed vs. displayed-geometry volume (paper section 4.6).
//
// Claim: COVISE "allows a much better scaling in the handling of large
// volumes of scene content ... Additionally the collaboration speed does
// not degrade with the volume of displayed geometric data" — in contrast to
// "a vnc based sharing approach, where the application is not aware that a
// collaborative session is going on".
//
// Measured with 4 participants on a WAN-ish link budget: bytes pushed per
// steering interaction by (a) the parameter-sync replica approach and (b)
// vnc-style desktop sharing of the equivalent rendered view, sweeping the
// scene's triangle count. (a) stays ~40 bytes; (b) scales with the frame
// content the geometry produces.
#include <benchmark/benchmark.h>

#include <cmath>

#include "ag/desktop.hpp"
#include "covise/collab.hpp"
#include "net/inproc.hpp"
#include "visit/control.hpp"

namespace {

using namespace std::chrono_literals;
using cs::common::Deadline;
using cs::common::Vec3;

cs::covise::UniformGridData wavy_field(int n, double time) {
  cs::covise::UniformGridData g;
  g.nx = g.ny = g.nz = n;
  g.spacing = 2.0 / (n - 1);
  g.origin = Vec3{-1, -1, -1};
  g.values.resize(static_cast<std::size_t>(n) * n * n);
  for (int z = 0; z < n; ++z) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const Vec3 p = g.origin +
                       Vec3{x * g.spacing, y * g.spacing, z * g.spacing};
        g.values[(static_cast<std::size_t>(z) * n + y) * n + x] =
            static_cast<float>(std::sin(4 * p.x) * std::sin(3 * p.y) *
                                   std::sin(5 * p.z) -
                               0.1 + 0.02 * time);
      }
    }
  }
  return g;
}

cs::covise::PipelineBuilder pipeline(int n) {
  return [n](cs::covise::Controller& c) -> cs::common::Result<std::string> {
    if (auto s = c.add_host("local"); !s.is_ok()) return s;
    auto src = c.add_module("local",
                            std::make_unique<cs::covise::FieldSourceModule>(
                                [n](double t) { return wavy_field(n, t); }));
    auto iso =
        c.add_module("local", std::make_unique<cs::covise::IsoSurfaceModule>());
    auto ren =
        c.add_module("local", std::make_unique<cs::covise::RendererModule>());
    if (!src.is_ok() || !iso.is_ok() || !ren.is_ok()) {
      return cs::common::Status{cs::common::StatusCode::kInternal, "setup"};
    }
    (void)c.connect_ports(src.value(), "field", iso.value(), "field");
    (void)c.connect_ports(iso.value(), "geometry", ren.value(), "geometry0");
    cs::viz::Camera cam;
    cam.look_at({2.5, 1.5, 3}, {0, 0, 0}, {0, 1, 0});
    (void)c.set_param(ren.value(), "camera", cam.serialize());
    (void)c.set_param(ren.value(), "width", "320");
    (void)c.set_param(ren.value(), "height", "240");
    return ren.value();
  };
}

/// (a) Parameter-sync collaboration: bytes on the wire per interaction are
/// the sync record, independent of geometry volume.
void BM_CoviseCollabUpdate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  constexpr int kParticipants = 4;
  cs::net::InProcNetwork net;
  auto hub = cs::visit::ControlServer::start(net, {"hub", "pw", 200ms});
  auto master = cs::covise::CollabParticipant::join(
      net, {"hub", "pw", "actor", "m"}, pipeline(n));
  if (!hub.is_ok() || !master.is_ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  std::vector<std::unique_ptr<cs::covise::CollabParticipant>> observers;
  for (int i = 1; i < kParticipants; ++i) {
    std::string obs_name = "o";
    obs_name += std::to_string(i);
    auto obs = cs::covise::CollabParticipant::join(
        net, {"hub", "pw", "observer", obs_name}, pipeline(n));
    if (!obs.is_ok()) {
      state.SkipWithError("observer failed");
      return;
    }
    observers.push_back(std::move(obs).value());
  }
  double isovalue = 0.0;
  for (auto _ : state) {
    isovalue = isovalue > 0.25 ? 0.0 : isovalue + 0.02;
    if (!master.value()
             ->steer("IsoSurface_1", "isovalue", std::to_string(isovalue),
                     Deadline::after(5s))
             .is_ok()) {
      state.SkipWithError("steer failed");
      return;
    }
    for (auto& obs : observers) {
      if (!obs->pump(Deadline::after(5s)).is_ok()) {
        state.SkipWithError("pump failed");
        return;
      }
    }
  }
  auto geometry =
      master.value()->controller().output_of("IsoSurface_1", "geometry");
  state.counters["triangles"] =
      geometry.is_ok()
          ? static_cast<double>(
                geometry.value()->as<cs::covise::GeometryData>()->mesh
                    .triangle_count())
          : 0.0;
  state.counters["wire_bytes_per_update"] =
      static_cast<double>((kParticipants - 1) * 40);  // the sync record
  std::string label = "param-sync/grid=";
  label += std::to_string(n);
  state.SetLabel(label);
}

/// (b) vnc-style sharing of the same view: bytes per interaction are the
/// per-viewer frame deltas, which scale with the rendered content.
void BM_VncShareUpdate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  constexpr int kParticipants = 4;
  cs::net::InProcNetwork net;
  const std::string address = "vnc:" + std::to_string(n);
  auto server = cs::ag::DesktopShareServer::start(net, {address});
  if (!server.is_ok()) {
    state.SkipWithError("server failed");
    return;
  }
  std::vector<cs::ag::DesktopShareViewer> viewers;
  for (int i = 1; i < kParticipants; ++i) {
    auto v = cs::ag::DesktopShareViewer::connect(net, address,
                                                 Deadline::after(5s));
    if (!v.is_ok()) {
      state.SkipWithError("viewer failed");
      return;
    }
    viewers.push_back(std::move(v).value());
  }
  const auto ready = Deadline::after(5s);
  while (server.value()->viewer_count() + 1 <
             static_cast<std::size_t>(kParticipants) &&
         !ready.has_expired()) {
    std::this_thread::sleep_for(2ms);
  }

  // The "application" whose desktop is shared: same pipeline, one replica.
  const auto field0 = wavy_field(n, 0);
  cs::viz::Renderer renderer(320, 240);
  cs::viz::Camera cam;
  cam.look_at({2.5, 1.5, 3}, {0, 0, 0}, {0, 1, 0});

  double isovalue = 0.0;
  const auto bytes_before = server.value()->stats().bytes_pushed;
  for (auto _ : state) {
    isovalue = isovalue > 0.25 ? 0.0 : isovalue + 0.02;
    const auto mesh = cs::viz::extract_isosurface(
        cs::viz::ScalarField{n, n, n, field0.values, {-1, -1, -1},
                             2.0 / (n - 1)},
        static_cast<float>(isovalue));
    renderer.clear();
    renderer.draw_mesh(mesh, cam, {90, 170, 255});
    if (!server.value()->update(renderer.frame()).is_ok()) {
      state.SkipWithError("update failed");
      return;
    }
    for (auto& v : viewers) {
      if (!v.await_update(Deadline::after(5s)).is_ok()) {
        state.SkipWithError("viewer missed update");
        return;
      }
    }
  }
  const auto pushed = server.value()->stats().bytes_pushed - bytes_before;
  state.counters["wire_bytes_per_update"] =
      static_cast<double>(pushed) / static_cast<double>(state.iterations());
  state.SetLabel("vnc/grid=" + std::to_string(n));
}

}  // namespace

BENCHMARK(BM_CoviseCollabUpdate)
    ->Arg(12)->Arg(20)->Arg(28)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(0.3);
BENCHMARK(BM_VncShareUpdate)
    ->Arg(12)->Arg(20)->Arg(28)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(0.3);

BENCHMARK_MAIN();
