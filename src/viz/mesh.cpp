#include "viz/mesh.hpp"

namespace cs::viz {

double TriangleMesh::area() const {
  double total = 0.0;
  for (const auto& t : triangles) {
    total += 0.5 * norm(cross(vertices[t.b] - vertices[t.a],
                              vertices[t.c] - vertices[t.a]));
  }
  return total;
}

}  // namespace cs::viz
