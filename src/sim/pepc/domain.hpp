// Morton-key domain decomposition.
//
// PEPC assigns particles to processors by sorting them along a space-
// filling curve and cutting the sorted order into equal chunks; the
// resulting per-processor bounding boxes are what the online visualization
// draws "as transparent or solid boxes, providing immediate insight into
// both the physical and algorithmic workings of the parallel tree code"
// (paper section 3.4). Our solver is single-process; the decomposition
// exists because the *visualization of it* is part of what the paper shows,
// and because it drives the work partition of the threaded force loop.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/pepc/particle.hpp"

namespace cs::pepc {

/// 63-bit Morton key of a position inside the bounding cube [lo, lo+size).
std::uint64_t morton_key(const common::Vec3& position, const common::Vec3& lo,
                         double size) noexcept;

/// Interleaves 21-bit coordinates x,y,z into a Morton code.
std::uint64_t interleave3(std::uint32_t x, std::uint32_t y,
                          std::uint32_t z) noexcept;

/// Assigns `proc` = chunk index along the Morton order, balancing particle
/// counts across `processors` chunks, and returns the per-processor
/// bounding boxes.
std::vector<DomainBox> decompose(std::span<Particle> particles,
                                 int processors);

}  // namespace cs::pepc
