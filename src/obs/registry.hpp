// Named-metric registry with non-stopping snapshots and a text exposition.
//
// A service owns one Registry and registers every metric it exposes by name
// + unit. Two registration flavors cover the stack:
//
//   * owned instruments — counter()/gauge()/timer() return a stable
//     reference the hot path updates directly (registration is idempotent:
//     the same name yields the same instrument).
//   * callback instruments — counter_fn()/gauge_fn()/timer_fn() adapt the
//     stats surfaces that already exist (ShardedFanout, EventHost,
//     AcceptPump, ConnStats) without double-counting: the snapshot pulls
//     the value at scrape time.
//
// snapshot() never blocks writers: owned instruments are lock-light by
// construction (see metrics.hpp) and callbacks are evaluated outside the
// registration lock. Snapshots merge across registries/processes — the
// controller/worker loadgen split reports through exactly this.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.hpp"
#include "obs/metrics.hpp"

namespace cs::obs {

/// Point-in-time copy of every registered metric, sorted by name within
/// each section. Plain data: safe to ship across threads and processes.
struct Snapshot {
  struct CounterSample {
    std::string name;
    std::string unit;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    std::string unit;
    double value = 0.0;
  };
  struct TimerSample {
    std::string name;  ///< unit is always nanoseconds
    common::Histogram hist;
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<TimerSample> timers;

  /// Folds `other` in: counters and gauges with the same name sum, timers
  /// merge their histograms, unmatched names union in — the worker→
  /// controller aggregation rule.
  void merge(const Snapshot& other);

  /// Flat name→value view: counters and gauges one entry each, timers
  /// expanded to <name>_count and <name>_{p50,p95,p99,max}_ns. This is the
  /// shape loadgen's Report::service_metrics consumes.
  std::vector<std::pair<std::string, double>> flatten() const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the counter registered under `name`, creating it on first use.
  /// References stay valid for the registry's lifetime. The unit of the
  /// first registration wins.
  Counter& counter(const std::string& name, const std::string& unit = "count");
  Gauge& gauge(const std::string& name, const std::string& unit = "count");
  Timer& timer(const std::string& name);

  /// Callback flavors: the snapshot evaluates `fn` at scrape time (outside
  /// the registration lock). Re-registering a name replaces its callback —
  /// services re-wire bridges across restarts of their internals.
  void counter_fn(const std::string& name, const std::string& unit,
                  std::function<std::uint64_t()> fn);
  void gauge_fn(const std::string& name, const std::string& unit,
                std::function<double()> fn);
  void timer_fn(const std::string& name,
                std::function<common::Histogram()> fn);

  /// Copies every metric without stopping writers.
  Snapshot snapshot() const;

 private:
  struct CounterEntry {
    std::string unit;
    std::unique_ptr<Counter> owned;       // exactly one of owned/fn is set
    std::function<std::uint64_t()> fn;
  };
  struct GaugeEntry {
    std::string unit;
    std::unique_ptr<Gauge> owned;
    std::function<double()> fn;
  };
  struct TimerEntry {
    std::unique_ptr<Timer> owned;
    std::function<common::Histogram()> fn;
  };

  mutable std::mutex mutex_;
  std::map<std::string, CounterEntry> counters_;
  std::map<std::string, GaugeEntry> gauges_;
  std::map<std::string, TimerEntry> timers_;
};

/// Renders a snapshot in the /metricsz text exposition format: `# TYPE` /
/// `# UNIT` comment lines followed by `<name> <value>` samples; timers
/// expand to `_count/_sum_ns/_min_ns/_max_ns/_p50_ns/_p95_ns/_p99_ns/
/// _p999_ns` rows. Deterministic: sections in counter/gauge/timer order,
/// names sorted within each — golden-testable and diffable across scrapes.
std::string to_text(const Snapshot& snapshot);

/// Parses text exposition back into flat name→value pairs (comment lines
/// skipped, file order preserved). The scrape side of to_text; tolerant of
/// unknown names so old scrapers survive new metrics.
std::vector<std::pair<std::string, double>> parse_text(std::string_view text);

}  // namespace cs::obs
