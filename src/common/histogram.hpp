// Mergeable latency histogram for traffic accounting.
//
// Loadgen workers, benchmark loops, and service pumps each record round-trip
// times into their own Histogram (no shared state on the hot path) and the
// reporter merges them afterwards — the ctsTraffic accounting model. Buckets
// are logarithmic with linear sub-buckets (HDR style): relative quantile
// error is bounded by 1/kSubBuckets (~1.6%) across the full range, which is
// plenty for p50/p95/p99/p99.9 reporting while keeping the footprint at a
// few KiB per worker.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace cs::common {

class Histogram {
 public:
  /// Linear sub-buckets per power-of-two range; the resolution knob.
  static constexpr std::uint32_t kSubBucketBits = 6;
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBucketBits;
  /// Power-of-two ranges covered before values saturate into the top bucket.
  /// 40 ranges x 64 sub-buckets spans [0, 2^45) — half a day in nanoseconds.
  static constexpr std::uint32_t kRanges = 40;
  static constexpr std::size_t kBucketCount = kRanges * kSubBuckets;

  /// Records one non-negative sample (nanoseconds by convention).
  void record(std::uint64_t value) noexcept;

  /// Convenience overload for duration samples; negative clamps to zero.
  void record(std::chrono::nanoseconds d) noexcept {
    record(d.count() < 0 ? 0u : static_cast<std::uint64_t>(d.count()));
  }

  /// Folds `other` into this histogram (worker -> aggregate).
  void merge(const Histogram& other) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t min() const noexcept { return count_ ? min_ : 0; }
  std::uint64_t max() const noexcept { return max_; }
  /// Sum of all recorded samples (for mean computation).
  std::uint64_t sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Value at quantile q in [0, 1] (upper edge of the matching bucket,
  /// clamped to the observed max). Returns 0 on an empty histogram.
  std::uint64_t value_at_quantile(double q) const noexcept;

  std::uint64_t p50() const noexcept { return value_at_quantile(0.50); }
  std::uint64_t p95() const noexcept { return value_at_quantile(0.95); }
  std::uint64_t p99() const noexcept { return value_at_quantile(0.99); }
  std::uint64_t p999() const noexcept { return value_at_quantile(0.999); }

  void reset() noexcept;

  /// Appends a sparse wire encoding to `out`: the summary fields plus only
  /// the nonzero buckets as (index, count) pairs, all big-endian. A shard
  /// shipped from a loadgen worker to the controller costs bytes
  /// proportional to the buckets it touched, not the full bucket array.
  void encode(Bytes& out) const;

  /// Reverses encode(), consuming one histogram from the front of `in`;
  /// `consumed` reports how many bytes it used, so histograms compose into
  /// larger frames. Rejects truncated input, out-of-range or non-ascending
  /// bucket indices, and bucket totals that contradict the sample count
  /// with kInvalidArgument — a malformed shard never crashes the merge.
  static Result<Histogram> decode(ByteSpan in, std::size_t& consumed);

 private:
  static std::size_t bucket_index(std::uint64_t value) noexcept;
  /// Inclusive upper edge of a bucket (the value reported for it).
  static std::uint64_t bucket_upper_edge(std::size_t index) noexcept;

  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

}  // namespace cs::common
