// COVISE inside an Access Grid venue (paper Fig. 4, section 4).
//
// The HLRS demonstration: a venue server hosts the "car-show building"
// meeting room; the engineer registers the COVISE session as a shared
// application in the venue; the architect and a manager discover it from
// the venue and join as replicas. The engineer steers a cutting plane
// through the building's climatization field — only tiny parameter records
// cross the network, every replica re-executes locally, and all three see
// the same picture at the same time. The rendered view is additionally fed
// into the venue's vic video stream so that passive sites (including one
// behind a firewall, via the unicast bridge) can watch.
//
// Writes covise_engineer.ppm / covise_architect.ppm (identical images) and
// covise_vic_frame.ppm (what a passive AG site sees).
#include <cmath>
#include <cstdio>
#include <thread>

#include "ag/media.hpp"
#include "ag/venue.hpp"
#include "covise/collab.hpp"
#include "net/inproc.hpp"
#include "visit/control.hpp"

using namespace std::chrono_literals;
using cs::common::Deadline;
using cs::common::Vec3;

namespace {
/// Climatization field of the car-show building: a warm plume over the
/// showroom floor plus a cool inlet jet.
cs::covise::UniformGridData building_climate(double time) {
  cs::covise::UniformGridData g;
  const int n = 20;
  g.nx = g.ny = g.nz = n;
  g.spacing = 2.0 / (n - 1);
  g.origin = Vec3{-1, -1, -1};
  g.values.resize(static_cast<std::size_t>(n) * n * n);
  for (int z = 0; z < n; ++z) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const Vec3 p = g.origin +
                       Vec3{x * g.spacing, y * g.spacing, z * g.spacing};
        const double plume =
            std::exp(-4.0 * ((p.x - 0.2) * (p.x - 0.2) + p.z * p.z)) *
            (p.y + 1.0) * 0.5;
        const double jet =
            -0.6 * std::exp(-8.0 * ((p.x + 0.6) * (p.x + 0.6) +
                                    (p.y - 0.4) * (p.y - 0.4)));
        g.values[(static_cast<std::size_t>(z) * n + y) * n + x] =
            static_cast<float>(plume + jet + 0.05 * std::sin(time));
      }
    }
  }
  return g;
}

cs::covise::PipelineBuilder building_pipeline() {
  return [](cs::covise::Controller& c) -> cs::common::Result<std::string> {
    if (auto s = c.add_host("workstation"); !s.is_ok()) return s;
    auto src = c.add_module(
        "workstation",
        std::make_unique<cs::covise::FieldSourceModule>(building_climate));
    if (!src.is_ok()) return src.status();
    auto cut = c.add_module("workstation",
                            std::make_unique<cs::covise::CuttingPlaneModule>());
    if (!cut.is_ok()) return cut.status();
    auto iso = c.add_module("workstation",
                            std::make_unique<cs::covise::IsoSurfaceModule>());
    if (!iso.is_ok()) return iso.status();
    auto ren = c.add_module("workstation",
                            std::make_unique<cs::covise::RendererModule>(2));
    if (!ren.is_ok()) return ren.status();
    if (auto s = c.connect_ports(src.value(), "field", cut.value(), "field");
        !s.is_ok()) return s;
    if (auto s = c.connect_ports(src.value(), "field", iso.value(), "field");
        !s.is_ok()) return s;
    if (auto s = c.connect_ports(cut.value(), "geometry", ren.value(),
                                 "geometry0");
        !s.is_ok()) return s;
    if (auto s = c.connect_ports(iso.value(), "geometry", ren.value(),
                                 "geometry1");
        !s.is_ok()) return s;
    cs::viz::Camera cam;
    cam.look_at({2.4, 1.6, 3.0}, {0, 0, 0}, {0, 1, 0});
    (void)c.set_param(ren.value(), "camera", cam.serialize());
    (void)c.set_param(ren.value(), "width", "320");
    (void)c.set_param(ren.value(), "height", "240");
    (void)c.set_param(iso.value(), "isovalue", "0.35");
    (void)c.set_param(cut.value(), "axis", "1");
    (void)c.set_param(cut.value(), "position", "0.4");
    return ren.value();
  };
}
}  // namespace

int main() {
  cs::net::InProcNetwork net;

  // --- the Access Grid venue ---------------------------------------------
  auto venue_server = cs::ag::VenueServer::start(net, {"ag:venue-server"});
  if (!venue_server.is_ok()) return 1;
  (void)venue_server.value()->create_venue(
      "car-show-building", {"mcast/carshow/video", "mcast/carshow/audio"});

  // The COVISE sync hub (the latency-sensitive control channel).
  auto hub = cs::visit::ControlServer::start(net, {"covise:hub", "hlrs-pw", 100ms});
  if (!hub.is_ok()) return 1;

  // --- the engineer enters, registers the shared app ----------------------
  auto engineer_venue =
      cs::ag::VenueClient::connect(net, "ag:venue-server", Deadline::after(2s));
  if (!engineer_venue.is_ok()) return 1;
  (void)engineer_venue.value().enter("car-show-building", "hlrs-engineer",
                                     true, Deadline::after(2s));
  (void)engineer_venue.value().register_app(
      {"covise", "covise:hub hlrs-pw"}, Deadline::after(2s));
  std::printf("[venue]    COVISE session registered in the venue\n");

  auto engineer = cs::covise::CollabParticipant::join(
      net, {"covise:hub", "hlrs-pw", "actor", "engineer"}, building_pipeline());
  if (!engineer.is_ok()) {
    std::fprintf(stderr, "engineer join failed: %s\n",
                 engineer.status().to_string().c_str());
    return 1;
  }

  // --- two more sites discover the app through the venue ------------------
  const auto join_via_venue =
      [&](const std::string& site) -> std::unique_ptr<cs::covise::CollabParticipant> {
    auto venue = cs::ag::VenueClient::connect(net, "ag:venue-server",
                                              Deadline::after(2s));
    if (!venue.is_ok()) return nullptr;
    (void)venue.value().enter("car-show-building", site, true,
                              Deadline::after(2s));
    auto app = venue.value().find_app("covise", Deadline::after(2s));
    if (!app.is_ok()) return nullptr;
    const auto sep = app.value().connect_info.find(' ');
    if (sep == std::string::npos) return nullptr;
    const std::string address = app.value().connect_info.substr(0, sep);
    const std::string password = app.value().connect_info.substr(sep + 1);
    auto p = cs::covise::CollabParticipant::join(
        net, {address, password, "observer", site}, building_pipeline());
    return p.is_ok() ? std::move(p).value() : nullptr;
  };
  auto architect = join_via_venue("daimler-architect");
  auto manager = join_via_venue("sandia-manager");
  if (!architect || !manager) return 1;
  std::printf("[venue]    3 participants in the venue, 3 COVISE replicas\n");

  // --- the vic leg: render stream into the venue's video group ------------
  auto vic_sender = cs::ag::MediaStream::join(net, "mcast/carshow/video");
  auto vic_passive = cs::ag::MediaStream::join(net, "mcast/carshow/video");
  auto bridge = cs::ag::UnicastBridge::start(
      net, {"mcast/carshow/video", "ag:bridge"});
  auto firewalled = net.connect("ag:bridge", Deadline::after(2s));
  if (!vic_sender.is_ok() || !vic_passive.is_ok() || !bridge.is_ok() ||
      !firewalled.is_ok()) {
    return 1;
  }

  // --- collaborative exploration ------------------------------------------
  std::printf("[engineer] sweeping the cutting plane through the building\n");
  for (double position : {0.2, 0.5, 0.75}) {
    if (!engineer.value()
             ->steer("CuttingPlane_1", "position", std::to_string(position),
                     Deadline::after(2s))
             .is_ok()) {
      return 1;
    }
    (void)architect->pump(Deadline::after(2s));
    (void)manager->pump(Deadline::after(2s));
    auto view = engineer.value()->current_view();
    if (view.is_ok()) {
      (void)vic_sender.value().send_frame(view.value());
    }
  }

  // All replicas show the same content at the same time.
  auto ve = engineer.value()->current_view();
  auto va = architect->current_view();
  auto vm = manager->current_view();
  if (!ve.is_ok() || !va.is_ok() || !vm.is_ok()) return 1;
  const bool same = (ve.value() == va.value()) && (ve.value() == vm.value());
  std::printf("[collab]   all three replicas render identical views: %s\n",
              same ? "yes" : "NO");
  (void)ve.value().write_ppm("covise_engineer.ppm");
  (void)va.value().write_ppm("covise_architect.ppm");

  // The passive site and the firewalled site both received the vic stream.
  cs::viz::Image vic_frame;
  for (int i = 0; i < 3; ++i) {
    auto f = vic_passive.value().receive_frame(Deadline::after(2s));
    if (f.is_ok()) vic_frame = f.value();
  }
  if (!vic_frame.empty()) {
    (void)vic_frame.write_ppm("covise_vic_frame.ppm");
    std::printf("[vic]      passive AG site received the stream -> covise_vic_frame.ppm\n");
  }
  auto bridged = firewalled.value()->recv(Deadline::after(2s));
  std::printf("[bridge]   firewalled site received %zu bridged frames so far\n",
              bridged.is_ok() ? std::size_t{1} : std::size_t{0});

  // Traffic summary: what made the collaboration cheap.
  std::printf("[summary]  per-steer sync record: ~40 bytes; scene geometry: %zu bytes\n",
              engineer.value()
                  ->controller()
                  .output_of("IsoSurface_1", "geometry")
                  .value()
                  ->byte_size());
  return 0;
}
