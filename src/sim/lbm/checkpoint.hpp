// Checkpoint/restore for the LBM — the substrate of session migration.
//
// "RealityGrid is developing the ability to migrate both computation and
// visualization within a session without any disturbance or intervention on
// the part of the participating clients." (paper section 2.4). Migration is
// checkpoint + restart elsewhere; restore() reproduces the distribution
// functions bit-exactly, so the migrated run continues the same trajectory.
#pragma once

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "sim/lbm/lbm.hpp"

namespace cs::lbm {

/// Serializes the full simulation state (config + distributions + step
/// counter).
common::Bytes checkpoint(const TwoFluidLbm& sim);

/// Reconstructs a simulation from a checkpoint. The restored object
/// produces bit-identical future steps.
common::Result<TwoFluidLbm> restore(common::ByteSpan data);

}  // namespace cs::lbm
