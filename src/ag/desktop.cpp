#include "ag/desktop.hpp"

#include "wire/message.hpp"

namespace cs::ag {

using common::Bytes;
using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {
constexpr std::uint32_t kTagUpdate = 0xa6c1;
constexpr std::uint32_t kTagEvent = 0xa6c2;
}  // namespace

Result<std::unique_ptr<DesktopShareServer>> DesktopShareServer::start(
    net::Network& net, const Options& options,
    std::function<void(const std::string&)> on_event) {
  auto listener = net.listen(options.address);
  if (!listener.is_ok()) return listener.status();
  auto host = net::ConnectionHost::start(net::ConnectionHost::Options{});
  if (!host.is_ok()) return host.status();
  std::unique_ptr<DesktopShareServer> server{new DesktopShareServer};
  server->listener_ = std::move(listener).value();
  server->host_ = std::move(host).value();
  server->on_event_ = std::move(on_event);
  DesktopShareServer* self = server.get();
  // Event-driven accept when the transport allows: registration is
  // enqueue-only (the key frame rides the replay seed), so the handler is
  // poller-safe.
  server->accept_pump_ = std::make_unique<net::AcceptPump>(
      server->host_->event_host(), *server->listener_,
      [self](net::ConnectionPtr conn) { self->handle_conn(std::move(conn)); });
  return server;
}

DesktopShareServer::~DesktopShareServer() { stop(); }

void DesktopShareServer::stop() {
  if (stopped_.exchange(true)) return;
  // Uniform teardown order: listener, accept pump, host (joins delivery
  // threads — no callback can run past this), then the registry.
  if (listener_) listener_->close();
  if (accept_pump_) accept_pump_->stop();
  if (host_) host_->stop();
  std::scoped_lock lock(mutex_);
  for (auto& [id, v] : viewers_) v.conn->close();
  viewers_.clear();
}

Status DesktopShareServer::update(const viz::Image& desktop) {
  std::vector<std::uint64_t> targets;
  {
    std::scoped_lock lock(mutex_);
    desktop_ = desktop;
    targets.reserve(viewers_.size());
    for (auto& [id, v] : viewers_) targets.push_back(id);
  }
  for (const std::uint64_t id : targets) {
    common::FramePtr frame;
    std::size_t payload_size = 0;
    {
      std::scoped_lock lock(mutex_);
      auto it = viewers_.find(id);
      if (it == viewers_.end()) continue;
      Bytes payload = viz::compress_frame_delta(desktop, it->second.last_frame);
      it->second.last_frame = desktop;
      payload_size = payload.size();
      frame = common::make_frame(
          wire::make_data_message(kTagUpdate, payload.data(), payload.size())
              .encode());
    }
    // Outside the lock: an overflow doom fires on_close (-> remove) on this
    // thread. kDisconnect because a dropped delta would corrupt every later
    // frame the viewer decodes against its stale base.
    if (host_->send_to(id, std::move(frame),
                       common::OverflowPolicy::kDisconnect)) {
      ctr_updates_pushed_.add();
      ctr_bytes_pushed_.add(payload_size);
    }
  }
  return Status::ok();
}

std::size_t DesktopShareServer::viewer_count() const {
  std::scoped_lock lock(mutex_);
  return viewers_.size();
}

DesktopShareServer::Stats DesktopShareServer::stats() const {
  // Shim over the registry-backed counters (see desktop.hpp).
  Stats out;
  out.updates_pushed = ctr_updates_pushed_.value();
  out.bytes_pushed = ctr_bytes_pushed_.value();
  out.events_received = ctr_events_received_.value();
  return out;
}

std::size_t DesktopShareServer::service_threads() const {
  return (accept_pump_ && !accept_pump_->event_driven() ? 1 : 0) +
         (host_ ? host_->thread_count() : 0);
}

void DesktopShareServer::handle_conn(net::ConnectionPtr conn) {
  // Register and host under one lock: the current desktop becomes the
  // viewer's key frame via the replay seed, atomically with registration,
  // so no update() can slip a delta in front of the base it deltas against.
  std::scoped_lock lock(mutex_);
  if (stopped_.load()) {  // raced with stop(): don't leak a live conn
    conn->close();
    return;
  }
  const std::uint64_t id = next_id_++;
  std::vector<common::OutboundQueue::Item> replay;
  if (!desktop_.empty()) {
    const Bytes payload = viz::compress_frame(desktop_);
    replay.push_back(common::OutboundQueue::Item{
        common::make_frame(
            wire::make_data_message(kTagUpdate, payload.data(), payload.size())
                .encode()),
        common::OverflowPolicy::kDisconnect, nullptr});
  }
  viewers_.emplace(id, Viewer{conn, desktop_});
  const bool hosted = host_->add(
      id, conn,
      [this](std::uint64_t vid, common::Bytes message) {
        on_message(vid, message);
      },
      [this](std::uint64_t vid, const Status&) { remove(vid); },
      std::move(replay));
  if (!hosted) {  // raced with stop(): the host refused, unwind
    viewers_.erase(id);
    conn->close();
  }
}

void DesktopShareServer::on_message(std::uint64_t /*id*/,
                                    const common::Bytes& message) {
  auto m = wire::Message::decode(message);
  if (!m.is_ok() || m.value().header.tag != kTagEvent) return;
  auto body = wire::extract_string(m.value());
  if (!body.is_ok()) return;
  ctr_events_received_.add();
  std::function<void(const std::string&)> handler;
  {
    std::scoped_lock lock(mutex_);
    handler = on_event_;
  }
  if (handler) handler(body.value());
}

void DesktopShareServer::remove(std::uint64_t id) {
  {
    std::scoped_lock lock(mutex_);
    auto it = viewers_.find(id);
    if (it == viewers_.end()) return;
    it->second.conn->close();
    viewers_.erase(it);
  }
  host_->remove(id);
}

// ---------------------------------------------------------------------------
// DesktopShareViewer
// ---------------------------------------------------------------------------

Result<DesktopShareViewer> DesktopShareViewer::connect(net::Network& net,
                                                       const std::string& address,
                                                       Deadline deadline) {
  auto conn = net.connect(address, deadline);
  if (!conn.is_ok()) return conn.status();
  return adopt(std::move(conn).value());
}

DesktopShareViewer DesktopShareViewer::adopt(net::ConnectionPtr conn) {
  DesktopShareViewer viewer;
  viewer.conn_ = std::move(conn);
  return viewer;
}

Result<viz::Image> DesktopShareViewer::await_update(Deadline deadline) {
  if (!conn_) return Status{StatusCode::kClosed, "not connected"};
  for (;;) {
    auto raw = conn_->recv(deadline);
    if (!raw.is_ok()) return raw.status();
    auto m = wire::Message::decode(raw.value());
    if (!m.is_ok()) return m.status();
    if (m.value().header.tag != kTagUpdate) continue;
    auto image = viz::decompress_frame_delta(m.value().payload, desktop_);
    if (!image.is_ok()) return image.status();
    desktop_ = std::move(image).value();
    return desktop_;
  }
}

Status DesktopShareViewer::send_event(const std::string& event,
                                      Deadline deadline) {
  if (!conn_) return Status{StatusCode::kClosed, "not connected"};
  return conn_->send(wire::make_control_message(kTagEvent, event).encode(),
                     deadline);
}

void DesktopShareViewer::disconnect() {
  if (conn_) conn_->close();
  conn_.reset();
}

}  // namespace cs::ag
