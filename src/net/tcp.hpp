// Real loopback TCP implementation of the transport interfaces.
//
// The in-process network is the default substrate; this one exists to show
// the middleware runs unchanged over genuine sockets (the paper's systems
// were socket programs) and is exercised by a handful of integration tests.
// Messages are framed with a 4-byte big-endian length prefix.
#pragma once

#include <cstdint>
#include <string>

#include "common/histogram.hpp"
#include "net/transport.hpp"

namespace cs::net {

/// Process-wide TCP wire-path telemetry: how well the vectored send path
/// batches, and how often the kernel takes less than a full batch.
/// Per-connection granularity would cost ~20 KiB of histogram per socket at
/// thousands of hosted connections, so the counters are process-global,
/// striped across a few mutexes keyed by connection (see tcp.cpp); services
/// bridge this into their obs::Registry.
struct TcpWireStats {
  std::uint64_t send_batches = 0;   ///< send_many/try_send_many wire batches
  std::uint64_t messages_sent = 0;  ///< framed messages fully committed
  std::uint64_t short_writes = 0;   ///< batches aborted by would-block/deadline
  /// Messages per wire batch (value = count, not ns): the syscall
  /// amortization the PR-6 batching bought, observed live.
  common::Histogram batch_messages;
  /// Unsent remainder parked as the stream tail at each short write, in
  /// bytes — how deep inside a frame the kernel stopped taking data.
  common::Histogram short_write_bytes;
};

/// Snapshot of the process-global wire counters (merged across stripes).
TcpWireStats tcp_wire_stats();

/// Zeroes the process-global wire counters (bench/test isolation).
void reset_tcp_wire_stats();

/// Network backed by the host TCP stack, bound to 127.0.0.1.
///
/// Addresses are "port" strings, e.g. "19741"; "0" lets the kernel pick
/// (query the listener's address() for the result).
class TcpNetwork : public Network {
 public:
  common::Result<ListenerPtr> listen(const std::string& address) override;
  common::Result<ConnectionPtr> connect(const std::string& address,
                                        common::Deadline deadline) override;

  /// Largest accepted message; guards against corrupt length prefixes.
  static constexpr std::size_t kMaxMessageBytes = 256u << 20;
};

}  // namespace cs::net
