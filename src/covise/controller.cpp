#include "covise/controller.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace cs::covise {

using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

Status Controller::add_host(const std::string& host,
                            const net::LinkModel& link) {
  if (hosts_.contains(host)) {
    return Status{StatusCode::kAlreadyExists, "host already added: " + host};
  }
  HostRuntime runtime;
  runtime.sds = std::make_shared<SharedDataSpace>(host);
  auto crb = RequestBroker::start(net_, runtime.sds, session_, link);
  if (!crb.is_ok()) return crb.status();
  runtime.crb = std::move(crb).value();
  hosts_.emplace(host, std::move(runtime));
  return Status::ok();
}

Result<std::string> Controller::add_module(const std::string& host,
                                           ModulePtr module) {
  if (!module) return Status{StatusCode::kInvalidArgument, "null module"};
  if (!hosts_.contains(host)) {
    return Status{StatusCode::kNotFound, "unknown host: " + host};
  }
  const std::string id =
      module->type_name() + "_" + std::to_string(++type_counts_[module->type_name()]);
  ModuleEntry entry;
  entry.host = host;
  entry.module = std::move(module);
  modules_.emplace(id, std::move(entry));
  return id;
}

Status Controller::connect_ports(const std::string& from_module,
                                 const std::string& from_port,
                                 const std::string& to_module,
                                 const std::string& to_port) {
  auto from = modules_.find(from_module);
  auto to = modules_.find(to_module);
  if (from == modules_.end() || to == modules_.end()) {
    return Status{StatusCode::kNotFound, "unknown module in connection"};
  }
  const auto& outs = from->second.module->output_ports();
  const auto& ins = to->second.module->input_ports();
  if (std::find(outs.begin(), outs.end(), from_port) == outs.end()) {
    return Status{StatusCode::kNotFound,
                  from_module + " has no output port " + from_port};
  }
  if (std::find(ins.begin(), ins.end(), to_port) == ins.end()) {
    return Status{StatusCode::kNotFound,
                  to_module + " has no input port " + to_port};
  }
  for (const auto& c : connections_) {
    if (c.to_module == to_module && c.to_port == to_port) {
      return Status{StatusCode::kAlreadyExists,
                    "input port already connected: " + to_module + "." + to_port};
    }
  }
  connections_.push_back({from_module, from_port, to_module, to_port});
  to->second.dirty = true;
  return Status::ok();
}

Status Controller::set_param(const std::string& module, const std::string& key,
                             std::string value) {
  auto it = modules_.find(module);
  if (it == modules_.end()) {
    return Status{StatusCode::kNotFound, "unknown module: " + module};
  }
  it->second.params[key] = std::move(value);
  it->second.dirty = true;
  return Status::ok();
}

Result<std::string> Controller::get_param(const std::string& module,
                                          const std::string& key) const {
  auto it = modules_.find(module);
  if (it == modules_.end()) {
    return Status{StatusCode::kNotFound, "unknown module: " + module};
  }
  auto p = it->second.params.find(key);
  if (p == it->second.params.end()) {
    return Status{StatusCode::kNotFound, "no parameter " + key};
  }
  return p->second;
}

Status Controller::mark_dirty(const std::string& module) {
  auto it = modules_.find(module);
  if (it == modules_.end()) {
    return Status{StatusCode::kNotFound, "unknown module: " + module};
  }
  it->second.dirty = true;
  return Status::ok();
}

Result<std::vector<std::string>> Controller::topological_order() const {
  // Kahn's algorithm over the connection graph.
  std::map<std::string, int> in_degree;
  for (const auto& [id, entry] : modules_) in_degree[id] = 0;
  for (const auto& c : connections_) ++in_degree[c.to_module];
  std::vector<std::string> ready;
  for (const auto& [id, degree] : in_degree) {
    if (degree == 0) ready.push_back(id);
  }
  std::vector<std::string> order;
  while (!ready.empty()) {
    const std::string id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (const auto& c : connections_) {
      if (c.from_module == id && --in_degree[c.to_module] == 0) {
        ready.push_back(c.to_module);
      }
    }
  }
  if (order.size() != modules_.size()) {
    return Status{StatusCode::kInvalidArgument, "module network has a cycle"};
  }
  return order;
}

Result<std::size_t> Controller::execute() {
  auto order = topological_order();
  if (!order.is_ok()) return order.status();

  // Dirty closure: a module runs if marked dirty or fed by one that ran.
  std::set<std::string> will_run;
  for (const auto& id : order.value()) {
    bool run = modules_.at(id).dirty;
    if (!run) {
      for (const auto& c : connections_) {
        if (c.to_module == id && will_run.contains(c.from_module)) {
          run = true;
          break;
        }
      }
    }
    if (run) will_run.insert(id);
  }

  std::size_t executed = 0;
  for (const auto& id : order.value()) {
    if (!will_run.contains(id)) continue;
    ModuleEntry& entry = modules_.at(id);
    HostRuntime& host = hosts_.at(entry.host);

    // Resolve connected inputs through this host's broker: local objects
    // come straight from the SDS, remote ones cross the network once.
    std::map<std::string, DataObjectPtr> inputs;
    for (const auto& c : connections_) {
      if (c.to_module != id) continue;
      const auto& upstream = modules_.at(c.from_module);
      auto name_it = upstream.outputs.find(c.from_port);
      if (name_it == upstream.outputs.end()) continue;  // never produced
      auto object =
          host.crb->resolve(name_it->second, Deadline::after(std::chrono::seconds(10)));
      if (!object.is_ok()) return object.status();
      inputs[c.to_port] = std::move(object).value();
    }

    ModuleContext ctx(std::move(inputs), &entry.params);
    if (Status s = entry.module->compute(ctx); !s.is_ok()) {
      return Status{s.code(), id + ": " + s.message()};
    }

    // Publish outputs under fresh unique names; drop the previous
    // generation (end of its lifetime).
    for (auto& [port, payload] : ctx.outputs()) {
      auto old = entry.outputs.find(port);
      if (old != entry.outputs.end()) {
        (void)host.sds->remove(old->second);
      }
      const std::string name = host.sds->unique_name(id, port);
      auto object =
          std::make_shared<DataObject>(name, std::move(payload));
      if (Status s = host.sds->put(std::move(object)); !s.is_ok()) return s;
      entry.outputs[port] = name;
    }
    entry.dirty = false;
    ++executed;
  }
  return executed;
}

Result<DataObjectPtr> Controller::output_of(const std::string& module,
                                            const std::string& port) const {
  auto it = modules_.find(module);
  if (it == modules_.end()) {
    return Status{StatusCode::kNotFound, "unknown module: " + module};
  }
  auto name_it = it->second.outputs.find(port);
  if (name_it == it->second.outputs.end()) {
    return Status{StatusCode::kUnavailable,
                  module + "." + port + " has not produced output yet"};
  }
  return hosts_.at(it->second.host).sds->get(name_it->second);
}

RequestBroker::Stats Controller::transfer_stats() const {
  RequestBroker::Stats total;
  for (const auto& [host, runtime] : hosts_) {
    const auto s = runtime.crb->stats();
    total.objects_served += s.objects_served;
    total.objects_fetched += s.objects_fetched;
    total.bytes_sent += s.bytes_sent;
    total.bytes_received += s.bytes_received;
    total.local_hits += s.local_hits;
  }
  return total;
}

std::vector<std::string> Controller::hosts() const {
  std::vector<std::string> out;
  for (const auto& [host, runtime] : hosts_) out.push_back(host);
  return out;
}

std::vector<std::string> Controller::modules() const {
  std::vector<std::string> out;
  for (const auto& [id, entry] : modules_) out.push_back(id);
  return out;
}

}  // namespace cs::covise
