// Tagged message framing — the "MPI-like data transport mechanism based on
// messages that are distinguished via tags" of VISIT (paper section 3.2).
//
// Header fields are always serialized big-endian. The *payload* stays in the
// sender's native byte order, declared in the header, so the cheap side
// (the steered simulation) never converts; the receiver does (wire/convert).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "wire/typedesc.hpp"

namespace cs::wire {

/// What a message means to the steering protocol.
enum class MessageKind : std::uint8_t {
  kData = 0,     ///< payload carries `count` elements of `elem_type`
  kRequest = 1,  ///< asks the peer to send data for `tag` (empty payload)
  kControl = 2,  ///< protocol control (handshake, role change, shutdown)
};

constexpr bool is_valid_message_kind(std::uint8_t raw) noexcept {
  return raw <= 2;
}

struct MessageHeader {
  static constexpr std::uint32_t kMagic = 0x56495354;  // "VIST"
  static constexpr std::uint8_t kVersion = 1;
  /// Serialized header size in bytes.
  static constexpr std::size_t kWireSize = 4 + 1 + 1 + 1 + 1 + 4 + 8 + 8;

  MessageKind kind = MessageKind::kData;
  /// Application-level tag distinguishing message streams.
  std::uint32_t tag = 0;
  ScalarType elem_type = ScalarType::kUInt8;
  /// Byte order of the *payload* (headers are always big-endian).
  common::ByteOrder payload_order = common::native_order();
  /// Number of elements of elem_type in the payload.
  std::uint64_t count = 0;
  /// Payload size in bytes; always count * size_of(elem_type).
  std::uint64_t payload_bytes = 0;
};

/// Serializes a header (big-endian, fixed layout).
void encode_header(const MessageHeader& header, common::Bytes& out);

/// Parses and validates a header. kProtocolError on any malformed field.
common::Result<MessageHeader> decode_header(common::ByteSpan in);

/// A complete wire message.
struct Message {
  MessageHeader header;
  common::Bytes payload;

  /// Frames header + payload into one buffer ready for Connection::send.
  common::Bytes encode() const;

  /// Parses one framed message. Checks header/payload consistency.
  static common::Result<Message> decode(common::ByteSpan frame);
};

/// Builds a data message from a typed array without converting it: the
/// payload is the caller's native representation (sender-side zero cost).
template <typename T>
Message make_data_message(std::uint32_t tag, const T* values,
                          std::size_t count) {
  Message m;
  m.header.kind = MessageKind::kData;
  m.header.tag = tag;
  m.header.elem_type = scalar_type_of<T>();
  m.header.payload_order = common::native_order();
  m.header.count = count;
  m.header.payload_bytes = count * sizeof(T);
  const auto* p = reinterpret_cast<const std::uint8_t*>(values);
  m.payload.assign(p, p + count * sizeof(T));
  return m;
}

/// Data message carrying a string (array of kChar).
Message make_string_message(std::uint32_t tag, std::string_view text);

/// Request message: "send me data for `tag`".
Message make_request_message(std::uint32_t tag);

/// Control message with a small string body (e.g. "HELLO <password>").
Message make_control_message(std::uint32_t tag, std::string_view body);

/// Extracts a string payload (kChar / kInt8 / kUInt8 accepted).
common::Result<std::string> extract_string(const Message& m);

}  // namespace cs::wire
