// UNICORE Gateway.
//
// "Gateways acting as point-of-entry into the protected domains of the HPC
// centres" (paper section 3.1). One listening address per centre — "handling
// of all communication over a single fixed TCP server-port" — behind which
// any number of vsites (NJSs) are reachable. The gateway authenticates the
// certificate on *every* transaction against its trust store before any
// NJS sees the request; untrusted users are turned away at the firewall
// boundary, exactly the property that let the steering application
// "traverse firewalls" in section 2.2.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "net/accept_pump.hpp"
#include "net/conn_host.hpp"
#include "net/transport.hpp"
#include "obs/registry.hpp"
#include "unicore/identity.hpp"
#include "unicore/njs.hpp"
#include "unicore/upl.hpp"

namespace cs::unicore {

class Gateway {
 public:
  struct Options {
    std::string address;  ///< the single public address
  };

  struct Stats {
    std::uint64_t transactions = 0;
    std::uint64_t rejected_untrusted = 0;
  };

  static common::Result<std::unique_ptr<Gateway>> start(net::Network& net,
                                                        const Options& options);
  ~Gateway();
  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;
  void stop();

  TrustStore& trust_store() { return trust_; }

  /// Registers a vsite behind this gateway.
  void register_vsite(Njs& njs);

  /// Handles one already-decoded transaction (also used in-process by
  /// tests and by co-located services).
  UplResponse handle(const UplRequest& request);

  /// Snapshot of the transaction counters (shim over the metrics registry).
  Stats stats() const;
  /// Threads owned regardless of connection count (the hosted request/reply
  /// path replaced the thread-per-connection serve loop).
  std::size_t service_threads() const;
  /// The service's metrics registry (source of truth for the counters).
  obs::Registry& metrics() noexcept { return metrics_; }
  /// Resolved listen address (kernel-assigned ports made concrete).
  std::string address() const { return listener_->address(); }

 private:
  Gateway() = default;
  void handle_conn(net::ConnectionPtr conn);
  void on_message(std::uint64_t id, const common::Bytes& message);

  Options options_;
  net::ListenerPtr listener_;
  std::unique_ptr<net::ConnectionHost> host_;
  std::unique_ptr<net::AcceptPump> accept_pump_;
  mutable std::mutex mutex_;
  std::map<std::string, Njs*> vsites_;
  TrustStore trust_;
  std::atomic<std::uint64_t> next_id_{1};
  /// Registry-backed counters; stats() reads them back for the old shape.
  obs::Registry metrics_;
  obs::Counter& ctr_transactions_ =
      metrics_.counter("gateway_transactions", "requests");
  obs::Counter& ctr_rejected_untrusted_ =
      metrics_.counter("gateway_rejected_untrusted", "requests");
  std::atomic<bool> stopped_{false};
};

}  // namespace cs::unicore
