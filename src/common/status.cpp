#include "common/status.hpp"

#include "common/log.hpp"

namespace cs::common {

namespace detail {
void log_status_warn(std::string_view tag, const Status& status) {
  log_line(LogLevel::kWarn, std::string(tag), status.to_string());
}
}  // namespace detail

std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kClosed: return "CLOSED";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kProtocolError: return "PROTOCOL_ERROR";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out{cs::common::to_string(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace cs::common
