// PEPC — the plasma simulation driver.
//
// Recreates the paper's demonstration scenario (section 3.4): "a particle
// beam striking a spherical plasma target", with the beam parameters
// "(charge/intensity, direction) altered by the user interactively while
// the application is running", plus the "assist an initially random plasma
// system towards a cold, ordered state" capability via a steerable velocity
// damping factor.
//
// Integration is leapfrog (kick-drift-kick); forces come from the
// Barnes-Hut octree (O(N log N)), optionally evaluated by a thread pool
// partitioned along the Morton domain decomposition — the shared-memory
// stand-in for PEPC's MPI parallelism.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/vec3.hpp"
#include "sim/pepc/domain.hpp"
#include "sim/pepc/particle.hpp"
#include "sim/pepc/tree.hpp"

namespace cs::pepc {

struct BeamConfig {
  /// Particles injected per emit_beam() call.
  int pulse_size = 64;
  /// Charge of each beam particle (sign matters: electrons are negative).
  double charge = -1.0;
  /// Beam speed (intensity knob of the paper).
  double speed = 2.0;
  /// Unit-ish direction; normalized internally.
  common::Vec3 direction{1.0, 0.0, 0.0};
  /// Where pulses start (offset from the target center).
  common::Vec3 origin{-3.0, 0.0, 0.0};
  /// Transverse radius of the beam.
  double radius = 0.2;
};

struct PepcConfig {
  /// Electron/ion pairs in the spherical target.
  int target_pairs = 512;
  double target_radius = 1.0;
  /// Thermal velocity of target electrons (ions start cold).
  double electron_temperature = 0.05;
  double dt = 0.005;
  TreeConfig tree;
  /// Morton-decomposed "processor" domains (also force threads when >1).
  int processors = 4;
  /// Velocity damping factor per step in [0,1]; 0 = none. Steerable: lets
  /// the user cool the plasma towards a quiescent state.
  double damping = 0.0;
  std::uint64_t seed = 42;
  /// Ion/electron mass ratio (reduced for visible dynamics).
  double ion_mass = 100.0;
};

class PepcSimulation {
 public:
  explicit PepcSimulation(const PepcConfig& config);

  /// One leapfrog step: kick-drift-kick with a fresh tree each step,
  /// followed by domain re-decomposition.
  void step();

  /// Injects one beam pulse with the current beam parameters.
  void emit_beam();

  // ---- steering handles --------------------------------------------------
  BeamConfig& beam() noexcept { return beam_; }
  const BeamConfig& beam() const noexcept { return beam_; }
  void set_damping(double d) noexcept { config_.damping = d; }
  double damping() const noexcept { return config_.damping; }

  // ---- observables --------------------------------------------------------
  const std::vector<Particle>& particles() const noexcept { return particles_; }
  const std::vector<DomainBox>& domains() const noexcept { return domains_; }
  std::uint64_t steps_done() const noexcept { return steps_; }

  double kinetic_energy() const;
  double potential_energy() const;
  double total_energy() const { return kinetic_energy() + potential_energy(); }
  /// Mean electron speed — the "temperature" the cooling capability drives
  /// down.
  double mean_electron_speed() const;
  common::Vec3 total_momentum() const;
  const Octree& tree() const noexcept { return tree_; }

 private:
  void compute_forces();

  PepcConfig config_;
  BeamConfig beam_;
  std::vector<Particle> particles_;
  std::vector<common::Vec3> forces_;
  std::vector<DomainBox> domains_;
  Octree tree_;
  common::Rng rng_;
  std::int64_t next_label_ = 0;
  std::uint64_t steps_ = 0;
  bool forces_fresh_ = false;
};

}  // namespace cs::pepc
