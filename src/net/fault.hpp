// Fault injection: a decorator over any net::Network that makes connections
// fail on purpose, deterministically.
//
// The paper's grid topology (gateway -> sites -> venues) lives on wide-area
// links that stall, flap, and partition; nothing in a clean in-process or
// loopback run exercises the code that must survive that. FaultNetwork
// wraps a real Network (inproc or TCP) and applies a seeded FaultPlan to
// each connection it produces: added latency, bandwidth throttling, stalled
// reads/writes, short (partial) batch writes, abrupt closes, and one-way
// partitions — each scheduled to fire when the connection crosses an
// op/byte/time threshold, and each optionally clearing again after a
// window (a flap).
//
// Determinism is the point: the only randomness is the per-connection
// jitter on trigger thresholds, drawn from the plan's seed and the
// connection's ordinal, so a chaos run with a fixed seed injects exactly
// the same faults at the same per-connection ops every time. Plans compose
// on both sides — the dial side (connections this network's connect()
// returns) and the accept side (connections its listeners accept) carry
// independent plans — so loadgen can chaos-test a real service from either
// end of the wire.
//
// Faulted connections deliberately report no native handle: the readiness
// fast path (EventHost) promises kernel-accurate readability, which a
// fault schedule cannot honor. Hosts route them to their blocking/fallback
// paths instead — fault injection tests the portable contract, not the
// epoll shortcut.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "net/transport.hpp"

namespace cs::net {

enum class FaultKind : std::uint8_t {
  /// Every op sleeps `delay` before touching the wire (deadline-bounded:
  /// a delay the deadline cannot absorb returns kTimeout).
  kDelay = 0,
  /// Sends serialize at `bandwidth_bytes_per_sec` (deadline-bounded).
  kThrottle,
  /// Sends block until their deadline and fail with kTimeout.
  kStallSend,
  /// Receives block until their deadline and fail with kTimeout.
  kStallRecv,
  /// Batch sends (send_many) commit at most one leading message per call,
  /// then report kTimeout — the partial-write shape stream callers must
  /// absorb without corrupting their framing.
  kShortWrite,
  /// The inner connection is closed abruptly when the fault fires.
  kClose,
  /// Sends report success but the bytes never reach the peer: the far side
  /// sees an open, silent connection (what heartbeat liveness exists to
  /// catch).
  kPartitionSend,
  /// Inbound messages are silently discarded; receives see only silence
  /// until their deadline.
  kPartitionRecv,
};

const char* fault_kind_name(FaultKind kind) noexcept;

/// One scheduled fault. It arms when the connection's counters cross every
/// configured threshold (ops AND bytes AND elapsed time — unset thresholds
/// are zero and always satisfied), stays active for `for_ops` further ops
/// (0 = permanently), then clears. Ops count completed messages in either
/// direction; the current op observes the fault state before executing, so
/// `after_ops = N` lets exactly N ops through clean.
struct Fault {
  FaultKind kind = FaultKind::kClose;
  std::uint64_t after_ops = 0;
  /// Per-connection spread: the effective threshold is after_ops plus a
  /// deterministic draw in [0, after_ops_jitter] from the plan seed and the
  /// connection ordinal — a fleet flaps staggered, not in lockstep.
  std::uint64_t after_ops_jitter = 0;
  std::uint64_t after_bytes = 0;
  common::Duration after = common::Duration::zero();
  /// Active window once fired, in ops; 0 keeps the fault active forever.
  std::uint64_t for_ops = 0;
  /// kDelay: sleep added per op.
  common::Duration delay = common::Duration::zero();
  /// kThrottle: serialization rate; 0 means no throttle.
  std::uint64_t bandwidth_bytes_per_sec = 0;
};

/// A seeded schedule of faults applied to each connection independently.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<Fault> faults;
  /// Only the first `max_faulted_connections` connections (by ordinal, per
  /// side) receive the plan; later ones pass through clean. Chaos scenarios
  /// use this to flap every initial participant exactly once and let the
  /// re-dialed replacements live — which is what makes "all participants
  /// recovered by the end of the run" a deterministic assertion.
  std::uint64_t max_faulted_connections = ~std::uint64_t{0};

  bool empty() const noexcept { return faults.empty(); }
};

/// Injection counters, aggregated over every connection the network (or its
/// listeners) produced. Reproducible for a fixed seed and op-threshold
/// plans.
struct FaultStats {
  std::uint64_t connections = 0;      ///< connections wrapped with a plan
  std::uint64_t faults_fired = 0;     ///< trigger crossings
  std::uint64_t closes = 0;           ///< abrupt closes injected
  std::uint64_t delayed_ops = 0;      ///< ops that slept under kDelay
  std::uint64_t throttled_ops = 0;    ///< sends paced by kThrottle
  std::uint64_t stalled_ops = 0;      ///< ops failed by kStallSend/Recv
  std::uint64_t short_writes = 0;     ///< batches truncated by kShortWrite
  std::uint64_t dropped_messages = 0; ///< messages eaten by a partition
};

/// Shared injection counters; connections hold a reference so the counts
/// survive a connection outliving its network (internal to fault.cpp).
struct FaultStatsCell;

/// Decorates `inner`, applying `dial_plan` to connections returned by
/// connect() and `accept_plan` to connections accepted by its listeners.
/// Either plan may be empty (those connections pass through unwrapped).
/// `inner` must outlive this network and everything it produced.
class FaultNetwork : public Network {
 public:
  FaultNetwork(Network& inner, FaultPlan dial_plan,
               FaultPlan accept_plan = {});

  common::Result<ListenerPtr> listen(const std::string& address) override;
  common::Result<ConnectionPtr> connect(const std::string& address,
                                        common::Deadline deadline) override;

  FaultStats stats() const;

 private:
  Network& inner_;
  FaultPlan dial_plan_;
  FaultPlan accept_plan_;
  std::shared_ptr<FaultStatsCell> cell_;
  std::atomic<std::uint64_t> dial_ordinal_{0};
};

}  // namespace cs::net
