// Triangle meshes and scalar-field views for the visualization substrate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/vec3.hpp"

namespace cs::viz {

struct Triangle {
  std::uint32_t a = 0, b = 0, c = 0;
};

struct TriangleMesh {
  std::vector<common::Vec3> vertices;
  std::vector<Triangle> triangles;

  std::size_t triangle_count() const noexcept { return triangles.size(); }

  /// Geometric normal of triangle t (not normalized if degenerate).
  common::Vec3 normal(std::size_t t) const {
    const auto& tri = triangles[t];
    return normalized(cross(vertices[tri.b] - vertices[tri.a],
                            vertices[tri.c] - vertices[tri.a]));
  }

  /// Bytes needed to ship the raw geometry (the "content" cost the
  /// VizServer comparison in experiment E6 weighs against frames).
  std::size_t byte_size() const noexcept {
    return vertices.size() * sizeof(common::Vec3) +
           triangles.size() * sizeof(Triangle);
  }

  /// Total surface area.
  double area() const;
};

/// Non-owning view of a 3D scalar field on a regular grid.
struct ScalarField {
  int nx = 0, ny = 0, nz = 0;
  std::span<const float> values;  ///< x-fastest layout, size nx*ny*nz
  /// World-space position of grid point (0,0,0) and grid spacing.
  common::Vec3 origin{0, 0, 0};
  double spacing = 1.0;

  float at(int x, int y, int z) const noexcept {
    return values[(static_cast<std::size_t>(z) * static_cast<std::size_t>(ny) +
                   static_cast<std::size_t>(y)) *
                      static_cast<std::size_t>(nx) +
                  static_cast<std::size_t>(x)];
  }

  common::Vec3 world(int x, int y, int z) const noexcept {
    return origin + common::Vec3{x * spacing, y * spacing, z * spacing};
  }
};

}  // namespace cs::viz
