// Unit tests for the sharded broadcast fan-out primitive
// (common::OutboundQueue + common::ShardedFanout): overflow policies,
// slow-consumer isolation, delivery accounting, and ordering.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/fanout.hpp"
#include "common/status.hpp"

namespace cs::common {
namespace {

using namespace std::chrono_literals;

Bytes bytes_of(std::uint8_t tag) { return Bytes{tag}; }

FramePtr frame_of(std::uint8_t tag) { return make_frame(bytes_of(tag)); }

/// Sink that can be blocked at a gate and records delivered frame tags.
struct GatedSink {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = true;
  std::vector<std::uint8_t> delivered;

  void close_gate() {
    std::scoped_lock lock(mutex);
    open = false;
  }
  void open_gate() {
    {
      std::scoped_lock lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
  Status operator()(const Bytes& frame) {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return open; });
    delivered.push_back(frame.empty() ? 0 : frame.front());
    return Status::ok();
  }
  std::vector<std::uint8_t> snapshot() {
    std::scoped_lock lock(mutex);
    return delivered;
  }
  std::size_t count() {
    std::scoped_lock lock(mutex);
    return delivered.size();
  }
};

/// Spins until `pred` holds or `budget` elapses.
template <typename Pred>
bool wait_for(Pred pred, Duration budget = 2s) {
  const auto deadline = Deadline::after(budget);
  while (!pred()) {
    if (deadline.has_expired()) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

// ------------------------------------------------------- OutboundQueue --

TEST(OutboundQueue, QueuesUpToCapacityThenAppliesPolicy) {
  OutboundQueue q(2);
  EXPECT_EQ(q.push(frame_of(1), OverflowPolicy::kDropOldest),
            OutboundQueue::Push::kQueued);
  EXPECT_EQ(q.push(frame_of(2), OverflowPolicy::kDropOldest),
            OutboundQueue::Push::kQueued);
  // Full: a data push evicts the oldest data frame.
  EXPECT_EQ(q.push(frame_of(3), OverflowPolicy::kDropOldest),
            OutboundQueue::Push::kQueuedDropOldest);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.dropped(), 1u);
  // Full: a control push also evicts a stale data frame to get in — control
  // is lossless, data is droppable.
  EXPECT_EQ(q.push(frame_of(4), OverflowPolicy::kDisconnect),
            OutboundQueue::Push::kQueuedDropOldest);
  EXPECT_EQ(q.dropped(), 2u);
  // Survivors: the newest data frame and the control frame, in order.
  EXPECT_EQ(q.pop().frame->front(), 3u);
  EXPECT_EQ(q.pop().frame->front(), 4u);
  EXPECT_EQ(q.pop().frame, nullptr);
}

TEST(OutboundQueue, ControlFramesAreNeverEvicted) {
  OutboundQueue q(2);
  EXPECT_EQ(q.push(frame_of(1), OverflowPolicy::kDisconnect),
            OutboundQueue::Push::kQueued);
  EXPECT_EQ(q.push(frame_of(2), OverflowPolicy::kDisconnect),
            OutboundQueue::Push::kQueued);
  // Full of control frames: the incoming data frame is shed, not a queued
  // control frame.
  EXPECT_EQ(q.push(frame_of(3), OverflowPolicy::kDropOldest),
            OutboundQueue::Push::kDroppedNewest);
  EXPECT_EQ(q.dropped(), 1u);
  // Full of control frames and the incoming frame is control too: the
  // consumer has truly diverged — rejected.
  EXPECT_EQ(q.push(frame_of(4), OverflowPolicy::kDisconnect),
            OutboundQueue::Push::kRejectedOverflow);
  EXPECT_EQ(q.pop().frame->front(), 1u);
  EXPECT_EQ(q.pop().frame->front(), 2u);
}

TEST(OutboundQueue, EvictionSkipsControlToReachData) {
  OutboundQueue q(3);
  (void)q.push(frame_of(1), OverflowPolicy::kDisconnect);   // control
  (void)q.push(frame_of(2), OverflowPolicy::kDropOldest);   // data
  (void)q.push(frame_of(3), OverflowPolicy::kDropOldest);   // data
  // The oldest *data* frame (2) goes, the older control frame (1) stays.
  EXPECT_EQ(q.push(frame_of(4), OverflowPolicy::kDropOldest),
            OutboundQueue::Push::kQueuedDropOldest);
  EXPECT_EQ(q.pop().frame->front(), 1u);
  EXPECT_EQ(q.pop().frame->front(), 3u);
  EXPECT_EQ(q.pop().frame->front(), 4u);
}

TEST(OutboundQueue, CoalesceKeyReplacesInPlace) {
  // Items carrying the same non-zero coalesce_key supersede each other: a
  // burst occupies one slot, keeps its queue position, and can never push
  // an all-control queue into overflow.
  OutboundQueue q(2);
  const auto keyed = [](std::uint8_t tag) {
    OutboundQueue::Item item;
    item.frame = frame_of(tag);
    item.policy = OverflowPolicy::kDisconnect;
    item.coalesce_key = 42;
    return item;
  };
  EXPECT_EQ(q.push(keyed(1)), OutboundQueue::Push::kQueued);
  EXPECT_EQ(q.push(frame_of(2), OverflowPolicy::kDisconnect),
            OutboundQueue::Push::kQueued);
  // Queue is full of control frames, but the keyed push replaces its
  // predecessor instead of rejecting.
  EXPECT_EQ(q.push(keyed(3)), OutboundQueue::Push::kCoalesced);
  EXPECT_EQ(q.push(keyed(4)), OutboundQueue::Push::kCoalesced);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().frame->front(), 4u);  // kept its (first) position
  EXPECT_EQ(q.pop().frame->front(), 2u);
}

TEST(OutboundQueue, TracksHighWater) {
  OutboundQueue q(8);
  for (std::uint8_t i = 0; i < 5; ++i) {
    (void)q.push(frame_of(i), OverflowPolicy::kDropOldest);
  }
  (void)q.pop();
  (void)q.pop();
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.high_water(), 5u);
}

// ------------------------------------------------------- ShardedFanout --

TEST(ShardedFanout, DeliversToAllSubscribers) {
  ShardedFanout::Options options;
  options.shards = 2;
  ShardedFanout fanout(options, nullptr);
  GatedSink a, b, c;
  fanout.add(1, std::ref(a));
  fanout.add(2, std::ref(b));
  fanout.add(3, std::ref(c));
  EXPECT_EQ(fanout.subscriber_count(), 3u);

  for (std::uint8_t i = 1; i <= 4; ++i) {
    fanout.publish(frame_of(i), OverflowPolicy::kDropOldest);
  }
  ASSERT_TRUE(wait_for(
      [&] { return a.count() == 4 && b.count() == 4 && c.count() == 4; }));
  const std::vector<std::uint8_t> expected{1, 2, 3, 4};
  EXPECT_EQ(a.snapshot(), expected);  // per-subscriber order is preserved
  EXPECT_EQ(b.snapshot(), expected);
  EXPECT_EQ(c.snapshot(), expected);

  const auto stats = fanout.stats();
  EXPECT_EQ(stats.data_enqueued, 12u);
  EXPECT_EQ(stats.data_delivered, 12u);
  EXPECT_EQ(stats.data_dropped, 0u);
  EXPECT_EQ(stats.queued_frames, 0u);
  EXPECT_EQ(stats.shards.size(), 2u);
}

TEST(ShardedFanout, SlowSubscriberDoesNotDelayOtherShards) {
  // Subscribers 0 and 1 land on distinct shards (id % shards).
  ASSERT_NE(ShardedFanout::shard_of(0, 2), ShardedFanout::shard_of(1, 2));
  ShardedFanout::Options options;
  options.shards = 2;
  ShardedFanout fanout(options, nullptr);

  GatedSink slow;
  slow.close_gate();  // blocks its shard worker on the first frame
  GatedSink fast;
  fanout.add(0, std::ref(slow));
  fanout.add(1, std::ref(fast));

  const auto t0 = Clock::now();
  for (std::uint8_t i = 1; i <= 10; ++i) {
    fanout.publish(frame_of(i), OverflowPolicy::kDropOldest);
  }
  // The fast subscriber sees all ten frames while the slow one is wedged.
  ASSERT_TRUE(wait_for([&] { return fast.count() == 10; }));
  const auto fast_latency = Clock::now() - t0;
  EXPECT_LT(fast_latency, 1s);
  EXPECT_EQ(slow.count(), 0u);

  slow.open_gate();
  ASSERT_TRUE(wait_for([&] { return slow.count() == 10; }));
  fanout.stop();
}

TEST(ShardedFanout, DropOldestShedsStaleSamplesWhenBlocked) {
  ShardedFanout::Options options;
  options.shards = 1;
  options.queue_capacity = 4;
  ShardedFanout fanout(options, nullptr);
  GatedSink sink;
  fanout.add(1, std::ref(sink));

  // First frame is claimed by the worker, which then wedges at the gate.
  sink.close_gate();
  fanout.publish(frame_of(1), OverflowPolicy::kDropOldest);
  ASSERT_TRUE(wait_for([&] { return fanout.stats().queued_frames == 0; }));
  // Now overfill the (blocked) queue: capacity 4, published 6 → 2 evicted.
  for (std::uint8_t i = 2; i <= 7; ++i) {
    fanout.publish(frame_of(i), OverflowPolicy::kDropOldest);
  }
  sink.open_gate();
  ASSERT_TRUE(wait_for([&] { return sink.count() == 5; }));
  // Delivered: the in-flight frame plus the newest four.
  EXPECT_EQ(sink.snapshot(), (std::vector<std::uint8_t>{1, 4, 5, 6, 7}));

  const auto stats = fanout.stats();
  EXPECT_EQ(stats.data_dropped, 2u);
  EXPECT_EQ(stats.data_delivered, 5u);
  // Enqueued reconciles with delivered + dropped.
  EXPECT_EQ(stats.data_enqueued, stats.data_delivered + stats.data_dropped);
  fanout.stop();
  EXPECT_EQ(sink.count(), 5u);  // nothing delivered after stop
}

TEST(ShardedFanout, ControlOverflowDisconnectsAndFiresOnDead) {
  ShardedFanout::Options options;
  options.shards = 1;
  options.queue_capacity = 2;
  std::atomic<std::uint64_t> dead_id{0};
  ShardedFanout fanout(options,
                       [&](std::uint64_t id) { dead_id.store(id); });
  GatedSink sink;
  fanout.add(7, std::ref(sink));

  sink.close_gate();
  // One frame in flight wedges the worker; two more fill the queue.
  fanout.publish(frame_of(1), OverflowPolicy::kDisconnect);
  ASSERT_TRUE(wait_for([&] { return fanout.stats().queued_frames == 0; }));
  fanout.publish(frame_of(2), OverflowPolicy::kDisconnect);
  fanout.publish(frame_of(3), OverflowPolicy::kDisconnect);
  EXPECT_EQ(fanout.subscriber_count(), 1u);
  // The queue is full: the next control frame disconnects the subscriber.
  fanout.publish(frame_of(4), OverflowPolicy::kDisconnect);
  EXPECT_EQ(fanout.subscriber_count(), 0u);
  EXPECT_EQ(dead_id.load(), 7u);
  EXPECT_EQ(fanout.stats().disconnects, 1u);
  sink.open_gate();
  fanout.stop();
}

TEST(ShardedFanout, ClosedSinkIsRemovedAndReported) {
  ShardedFanout::Options options;
  options.shards = 1;
  std::atomic<std::uint64_t> dead_id{0};
  ShardedFanout fanout(options,
                       [&](std::uint64_t id) { dead_id.store(id); });
  fanout.add(3, [](const Bytes&) {
    return Status{StatusCode::kClosed, "gone"};
  });
  fanout.publish(frame_of(1), OverflowPolicy::kDropOldest);
  ASSERT_TRUE(wait_for([&] { return fanout.subscriber_count() == 0; }));
  EXPECT_EQ(dead_id.load(), 3u);
  EXPECT_EQ(fanout.stats().disconnects, 1u);
}

TEST(ShardedFanout, SendToIsOrderedWithPublish) {
  ShardedFanout::Options options;
  options.shards = 1;
  ShardedFanout fanout(options, nullptr);
  GatedSink a, b;
  a.close_gate();
  fanout.add(1, std::ref(a));
  fanout.add(2, std::ref(b));

  fanout.publish(frame_of(1), OverflowPolicy::kDropOldest);
  EXPECT_TRUE(
      fanout.send_to(1, frame_of(2), OverflowPolicy::kDisconnect));
  fanout.publish(frame_of(3), OverflowPolicy::kDropOldest);
  EXPECT_FALSE(
      fanout.send_to(99, frame_of(9), OverflowPolicy::kDisconnect));

  a.open_gate();
  ASSERT_TRUE(wait_for([&] { return a.count() == 3 && b.count() == 2; }));
  EXPECT_EQ(a.snapshot(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(b.snapshot(), (std::vector<std::uint8_t>{1, 3}));
}

TEST(ShardedFanout, ReplayIsDeliveredBeforeSubsequentPublishes) {
  ShardedFanout::Options options;
  options.shards = 1;
  ShardedFanout fanout(options, nullptr);
  GatedSink sink;
  std::vector<OutboundQueue::Item> replay;
  replay.push_back({frame_of(1), OverflowPolicy::kDisconnect});
  replay.push_back({frame_of(2), OverflowPolicy::kDropOldest});
  fanout.add(1, std::ref(sink), std::move(replay));
  fanout.publish(frame_of(3), OverflowPolicy::kDropOldest);
  ASSERT_TRUE(wait_for([&] { return sink.count() == 3; }));
  EXPECT_EQ(sink.snapshot(), (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(ShardedFanout, ReplayLargerThanCapacityIsLossless) {
  ShardedFanout::Options options;
  options.shards = 1;
  options.queue_capacity = 2;
  ShardedFanout fanout(options, nullptr);
  GatedSink sink;
  // Replay (required state) exceeds the queue bound: it is seeded anyway —
  // a fresh subscriber can never be torn down or truncated by its replay.
  std::vector<OutboundQueue::Item> replay;
  for (std::uint8_t i = 1; i <= 5; ++i) {
    replay.push_back({frame_of(i), OverflowPolicy::kDisconnect});
  }
  replay.push_back({frame_of(6), OverflowPolicy::kDropOldest});
  fanout.add(1, std::ref(sink), std::move(replay));
  ASSERT_TRUE(wait_for([&] { return sink.count() == 6; }));
  EXPECT_EQ(sink.snapshot(), (std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(fanout.subscriber_count(), 1u);
  EXPECT_EQ(fanout.stats().disconnects, 0u);
}

TEST(ShardedFanout, RemoveDiscardsPendingFrames) {
  ShardedFanout::Options options;
  options.shards = 1;
  ShardedFanout fanout(options, nullptr);
  GatedSink sink;
  sink.close_gate();
  fanout.add(1, std::ref(sink));
  fanout.publish(frame_of(1), OverflowPolicy::kDropOldest);
  ASSERT_TRUE(wait_for([&] { return fanout.stats().queued_frames == 0; }));
  fanout.publish(frame_of(2), OverflowPolicy::kDropOldest);
  fanout.remove(1);
  EXPECT_EQ(fanout.subscriber_count(), 0u);
  EXPECT_EQ(fanout.stats().queued_frames, 0u);
  sink.open_gate();
  // The in-flight frame may still land; the discarded one never does.
  std::this_thread::sleep_for(20ms);
  EXPECT_LE(sink.count(), 1u);
  fanout.stop();
}

TEST(ShardedFanout, StatsReconcileUnderConcurrentPublish) {
  ShardedFanout::Options options;
  options.shards = 3;
  options.queue_capacity = 64;
  ShardedFanout fanout(options, nullptr);
  constexpr int kSubs = 9;
  std::vector<std::unique_ptr<GatedSink>> sinks;
  for (int i = 0; i < kSubs; ++i) {
    sinks.push_back(std::make_unique<GatedSink>());
    fanout.add(static_cast<std::uint64_t>(i), std::ref(*sinks.back()));
  }
  constexpr int kFrames = 200;
  std::thread publisher([&] {
    for (int i = 0; i < kFrames; ++i) {
      fanout.publish(frame_of(static_cast<std::uint8_t>(i)),
                     OverflowPolicy::kDropOldest);
    }
  });
  publisher.join();
  ASSERT_TRUE(wait_for([&] {
    const auto s = fanout.stats();
    return s.data_delivered + s.data_dropped ==
               static_cast<std::uint64_t>(kSubs) * kFrames &&
           s.queued_frames == 0;
  }));
  const auto stats = fanout.stats();
  // Every enqueued frame was either delivered or shed (no kDroppedNewest
  // here — all frames are data, so drops are evictions of enqueued frames).
  EXPECT_EQ(stats.data_enqueued, stats.data_delivered + stats.data_dropped);
  // Delivered counts seen by the sinks match the fan-out's accounting.
  std::uint64_t sink_total = 0;
  for (auto& s : sinks) sink_total += s->count();
  EXPECT_EQ(stats.data_delivered, sink_total);
  // Per-shard counters sum to the aggregate.
  std::uint64_t shard_delivered = 0;
  std::size_t shard_subs = 0;
  for (const auto& s : stats.shards) {
    shard_delivered += s.data_delivered;
    shard_subs += s.subscribers;
  }
  EXPECT_EQ(shard_delivered, stats.data_delivered);
  EXPECT_EQ(shard_subs, static_cast<std::size_t>(kSubs));
}

TEST(ShardedFanout, SourcePayloadsEncodePerConsumer) {
  // publish_source() hands every subscriber's sink the same shared source
  // object; each sink produces its own bytes at delivery time. This is the
  // per-consumer payload path (viz delta compression): the expensive
  // per-consumer encode runs on the consumer's worker, not the publisher.
  ShardedFanout::Options options;
  options.shards = 2;
  ShardedFanout fanout(options, nullptr);
  struct Seen {
    std::atomic<const void*> source{nullptr};
    std::atomic<int> count{0};
  };
  Seen a, b;
  const auto sink_for = [](Seen& seen) {
    return [&seen](const OutboundQueue::Item& item) {
      EXPECT_EQ(item.frame, nullptr);
      seen.source.store(item.source.get());
      seen.count.fetch_add(1);
      return Status::ok();
    };
  };
  fanout.add(1, ShardedFanout::Sink{sink_for(a)});
  fanout.add(2, ShardedFanout::Sink{sink_for(b)});
  auto payload = std::make_shared<const int>(7);
  fanout.publish_source(payload, OverflowPolicy::kDropOldest);
  ASSERT_TRUE(
      wait_for([&] { return a.count.load() == 1 && b.count.load() == 1; }));
  EXPECT_EQ(a.source.load(), payload.get());  // shared, not copied
  EXPECT_EQ(b.source.load(), payload.get());
  const auto stats = fanout.stats();
  EXPECT_EQ(stats.data_enqueued, 2u);
  EXPECT_EQ(stats.data_delivered, 2u);
  fanout.stop();
}

TEST(ShardedFanout, SourcePayloadToBytesSinkIsUndeliverable) {
  // A bytes sink cannot encode a source payload: the item fails delivery —
  // shed for data, lossless-or-dead for control.
  ShardedFanout::Options options;
  options.shards = 1;
  std::atomic<std::uint64_t> dead_id{0};
  ShardedFanout fanout(options,
                       [&](std::uint64_t id) { dead_id.store(id); });
  GatedSink sink;
  fanout.add(5, std::ref(sink));
  auto payload = std::make_shared<const int>(1);
  fanout.publish_source(payload, OverflowPolicy::kDropOldest);
  ASSERT_TRUE(wait_for([&] { return fanout.stats().data_dropped == 1; }));
  EXPECT_EQ(fanout.subscriber_count(), 1u);  // data drop is not a teardown
  fanout.publish_source(payload, OverflowPolicy::kDisconnect);
  ASSERT_TRUE(wait_for([&] { return fanout.subscriber_count() == 0; }));
  EXPECT_EQ(dead_id.load(), 5u);
  fanout.stop();
}

TEST(ShardedFanout, BatchSinkReceivesWholeBurstInOneCall) {
  // A backlog drained for one subscriber arrives at a batch sink as one
  // span (one vectored send on a real transport), not item by item.
  ShardedFanout::Options options;
  options.shards = 1;
  ShardedFanout fanout(options, nullptr);
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  std::vector<std::size_t> call_sizes;
  std::vector<std::uint8_t> delivered;
  fanout.add(
      1, ShardedFanout::BatchSink{[&](std::span<const OutboundQueue::Item>
                                          items,
                                      std::size_t& count) {
        std::unique_lock lock(mutex);
        cv.wait(lock, [&] { return open; });
        call_sizes.push_back(items.size());
        for (const auto& item : items) delivered.push_back(item.frame->front());
        count = items.size();
        return Status::ok();
      }});
  // The gate starts closed: the first claimed burst wedges inside the sink
  // while the rest of the frames pile up behind it.
  for (std::uint8_t i = 1; i <= 5; ++i) {
    fanout.publish(frame_of(i), OverflowPolicy::kDropOldest);
  }
  {
    std::scoped_lock lock(mutex);
    open = true;
  }
  cv.notify_all();
  ASSERT_TRUE(wait_for([&] {
    std::scoped_lock lock(mutex);
    return delivered.size() == 5;
  }));
  std::scoped_lock lock(mutex);
  EXPECT_EQ(delivered, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
  // The backlog that accumulated behind the wedged first call came out in
  // one batch (frames 2..5 — or fewer calls if the worker claimed frame 1
  // together with part of the backlog).
  EXPECT_LE(call_sizes.size(), 3u);
  std::size_t max_batch = 0;
  for (std::size_t n : call_sizes) max_batch = std::max(max_batch, n);
  EXPECT_GE(max_batch, 2u);
  fanout.stop();
}

TEST(ShardedFanout, BatchSinkMidBatchDataFailureShedsRestAttemptsControl) {
  // The batch sink contract: on failure at item `delivered`, the worker
  // sheds the remaining data frames without another blocking attempt but
  // still tries every remaining control frame individually
  // (lossless-or-dead).
  ShardedFanout::Options options;
  options.shards = 1;
  ShardedFanout fanout(options, nullptr);
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  std::vector<std::vector<std::uint8_t>> calls;
  fanout.add(
      1, ShardedFanout::BatchSink{[&](std::span<const OutboundQueue::Item>
                                          items,
                                      std::size_t& count) -> Status {
        std::unique_lock lock(mutex);
        cv.wait(lock, [&] { return open; });
        std::vector<std::uint8_t> tags;
        for (const auto& item : items) tags.push_back(item.frame->front());
        calls.push_back(tags);
        if (tags.front() == 2) {
          count = 0;  // the batch headed by frame 2 times out at its head
          return Status{StatusCode::kTimeout, "wedged"};
        }
        count = items.size();
        return Status::ok();
      }});
  // Wedge the worker on frame 1, then queue: data 2, data 3, control 4,
  // data 5. The batch headed by frame 2 fails.
  fanout.publish(frame_of(1), OverflowPolicy::kDropOldest);
  ASSERT_TRUE(wait_for([&] { return fanout.stats().queued_frames == 0; }));
  fanout.publish(frame_of(2), OverflowPolicy::kDropOldest);
  fanout.publish(frame_of(3), OverflowPolicy::kDropOldest);
  fanout.publish(frame_of(4), OverflowPolicy::kDisconnect);
  fanout.publish(frame_of(5), OverflowPolicy::kDropOldest);
  {
    std::scoped_lock lock(mutex);
    open = true;
  }
  cv.notify_all();
  // Data 2 fails (timeout), data 3 and 5 are shed without another blocking
  // attempt, control 4 is re-attempted solo and delivered — the subscriber
  // survives (a slow consumer missing samples is not a teardown).
  ASSERT_TRUE(wait_for([&] {
    const auto stats = fanout.stats();
    return stats.control_delivered == 1 && stats.data_dropped == 3;
  }));
  const auto stats = fanout.stats();
  EXPECT_EQ(stats.data_dropped, 3u);  // frames 2, 3, 5
  EXPECT_EQ(stats.control_delivered, 1u);
  EXPECT_EQ(stats.disconnects, 0u);
  EXPECT_EQ(fanout.subscriber_count(), 1u);
  EXPECT_EQ(stats.data_delivered, 1u);  // frame 1 only
  std::scoped_lock lock(mutex);
  ASSERT_EQ(calls.size(), 3u);
  EXPECT_EQ(calls[0], (std::vector<std::uint8_t>{1}));
  // The failing batch carried 2..5 together; the control retry came alone.
  EXPECT_EQ(calls[1], (std::vector<std::uint8_t>{2, 3, 4, 5}));
  EXPECT_EQ(calls[2], (std::vector<std::uint8_t>{4}));
  fanout.stop();
}

TEST(ShardedFanout, PublishExceptSkipsTheOrigin) {
  ShardedFanout::Options options;
  options.shards = 2;
  ShardedFanout fanout(options, nullptr);
  GatedSink a, b, c;
  fanout.add(1, std::ref(a));
  fanout.add(2, std::ref(b));
  fanout.add(3, std::ref(c));
  fanout.publish_except(
      2, OutboundQueue::Item{frame_of(7), OverflowPolicy::kDropOldest,
                             nullptr});
  fanout.publish(frame_of(8), OverflowPolicy::kDropOldest);
  ASSERT_TRUE(wait_for([&] { return a.count() == 2 && c.count() == 2; }));
  ASSERT_TRUE(wait_for([&] { return b.count() == 1; }));
  EXPECT_EQ(a.snapshot(), (std::vector<std::uint8_t>{7, 8}));
  EXPECT_EQ(b.snapshot(), (std::vector<std::uint8_t>{8}));  // excluded from 7
  EXPECT_EQ(c.snapshot(), (std::vector<std::uint8_t>{7, 8}));
}

TEST(ShardedFanout, StopIsIdempotentAndSafeAfterwards) {
  ShardedFanout::Options options;
  options.shards = 2;
  ShardedFanout fanout(options, nullptr);
  GatedSink sink;
  fanout.add(1, std::ref(sink));
  fanout.stop();
  fanout.stop();
  fanout.publish(frame_of(1), OverflowPolicy::kDropOldest);  // no-op-ish
  fanout.remove(1);
  EXPECT_EQ(fanout.subscriber_count(), 0u);
}

}  // namespace
}  // namespace cs::common
