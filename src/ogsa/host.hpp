// Lightweight service hosting environment — the OGSI::Lite substitute.
//
// "RealityGrid has therefore developed a lightweight OGSA hosting
// environment called OGSI-Lite... can thus run on almost any platform"
// (paper section 2.3). A ServiceHost binds a Registry (and every service it
// publishes) to one network address and speaks a minimal text RPC, so a
// SteeringClient on another "machine" of the in-process network can
// discover, bind and invoke services exactly as the laptop on the Sheffield
// conference floor did in the 2002 demonstrator.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "net/accept_pump.hpp"
#include "net/conn_host.hpp"
#include "net/transport.hpp"
#include "ogsa/registry.hpp"

namespace cs::ogsa {

class ServiceHost {
 public:
  struct Options {
    std::string address;
  };

  static common::Result<std::unique_ptr<ServiceHost>> start(
      net::Network& net, std::shared_ptr<Registry> registry,
      const Options& options);
  ~ServiceHost();
  ServiceHost(const ServiceHost&) = delete;
  ServiceHost& operator=(const ServiceHost&) = delete;
  void stop();

  std::shared_ptr<Registry> registry() const { return registry_; }
  /// Resolved listen address (the kernel-assigned port when the options
  /// asked for "0").
  std::string address() const { return listener_->address(); }
  /// Threads owned regardless of connection count (the hosted request/reply
  /// path replaced the thread-per-connection serve loop).
  std::size_t service_threads() const;

 private:
  ServiceHost() = default;
  void handle_conn(net::ConnectionPtr conn);
  void on_message(std::uint64_t id, const common::Bytes& message);

  std::shared_ptr<Registry> registry_;
  net::ListenerPtr listener_;
  std::unique_ptr<net::ConnectionHost> host_;
  std::unique_ptr<net::AcceptPump> accept_pump_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> stopped_{false};
};

/// Remote stub: the steering client's view of a hosting environment.
class ServiceClient {
 public:
  static common::Result<ServiceClient> connect(net::Network& net,
                                               const std::string& address,
                                               common::Deadline deadline);

  /// Handles of live services matching the glob pattern.
  common::Result<std::vector<Handle>> find(const std::string& pattern,
                                           common::Deadline deadline);

  /// Invokes an operation on a service by handle.
  common::Result<std::string> invoke(const Handle& handle,
                                     const std::string& operation,
                                     const std::vector<std::string>& args,
                                     common::Deadline deadline);

  void disconnect();

 private:
  net::ConnectionPtr conn_;
  std::mutex mutex_;  // serializes request/response pairs

 public:
  ServiceClient(ServiceClient&& other) noexcept
      : conn_(std::move(other.conn_)) {}
  ServiceClient& operator=(ServiceClient&& other) noexcept {
    conn_ = std::move(other.conn_);
    return *this;
  }
  ServiceClient() = default;
};

}  // namespace cs::ogsa
