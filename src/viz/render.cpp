#include "viz/render.hpp"

#include <algorithm>
#include <cmath>

namespace cs::viz {

using common::Vec3;

void Renderer::clear(Color background) {
  frame_.fill(background);
  std::fill(depth_.begin(), depth_.end(), 1e30);
}

void Renderer::put(int x, int y, double depth, Color color) {
  if (!frame_.contains(x, y)) return;
  const std::size_t i = static_cast<std::size_t>(y) *
                            static_cast<std::size_t>(frame_.width()) +
                        static_cast<std::size_t>(x);
  if (depth >= depth_[i]) return;
  depth_[i] = depth;
  frame_.at(x, y) = color;
}

void Renderer::draw_mesh(const TriangleMesh& mesh, const Camera& camera,
                         Color base) {
  const Vec3 light = normalized(Vec3{0.4, 0.8, 0.45});
  const int w = frame_.width();
  const int h = frame_.height();
  for (std::size_t t = 0; t < mesh.triangles.size(); ++t) {
    const auto& tri = mesh.triangles[t];
    const auto pa = camera.project(mesh.vertices[tri.a], w, h);
    const auto pb = camera.project(mesh.vertices[tri.b], w, h);
    const auto pc = camera.project(mesh.vertices[tri.c], w, h);
    if (!pa.visible || !pb.visible || !pc.visible) continue;

    // Lambert shading from the geometric normal (double-sided).
    const Vec3 n = mesh.normal(t);
    const double lambert = 0.25 + 0.75 * std::abs(dot(n, light));
    const Color shade{static_cast<std::uint8_t>(base.r * lambert),
                      static_cast<std::uint8_t>(base.g * lambert),
                      static_cast<std::uint8_t>(base.b * lambert)};

    const int min_x = std::max(0, static_cast<int>(
                                      std::floor(std::min({pa.x, pb.x, pc.x}))));
    const int max_x = std::min(w - 1, static_cast<int>(std::ceil(
                                          std::max({pa.x, pb.x, pc.x}))));
    const int min_y = std::max(0, static_cast<int>(
                                      std::floor(std::min({pa.y, pb.y, pc.y}))));
    const int max_y = std::min(h - 1, static_cast<int>(std::ceil(
                                          std::max({pa.y, pb.y, pc.y}))));
    const double denom =
        (pb.y - pc.y) * (pa.x - pc.x) + (pc.x - pb.x) * (pa.y - pc.y);
    if (std::abs(denom) < 1e-12) continue;
    for (int y = min_y; y <= max_y; ++y) {
      for (int x = min_x; x <= max_x; ++x) {
        const double l0 = ((pb.y - pc.y) * (x - pc.x) +
                           (pc.x - pb.x) * (y - pc.y)) / denom;
        const double l1 = ((pc.y - pa.y) * (x - pc.x) +
                           (pa.x - pc.x) * (y - pc.y)) / denom;
        const double l2 = 1.0 - l0 - l1;
        if (l0 < 0 || l1 < 0 || l2 < 0) continue;
        const double depth = l0 * pa.depth + l1 * pb.depth + l2 * pc.depth;
        put(x, y, depth, shade);
      }
    }
  }
}

void Renderer::draw_particles(std::span<const ParticleSprite> particles,
                              const Camera& camera, GlyphStyle style,
                              int size_pixels) {
  const int w = frame_.width();
  const int h = frame_.height();
  for (const auto& p : particles) {
    const auto proj = camera.project(p.position, w, h);
    if (!proj.visible) continue;
    const int cx = static_cast<int>(proj.x);
    const int cy = static_cast<int>(proj.y);
    switch (style) {
      case GlyphStyle::kPoint: {
        for (int dy = -size_pixels / 2; dy <= size_pixels / 2; ++dy) {
          for (int dx = -size_pixels / 2; dx <= size_pixels / 2; ++dx) {
            put(cx + dx, cy + dy, proj.depth, p.color);
          }
        }
        break;
      }
      case GlyphStyle::kDiamond: {
        for (int dy = -size_pixels; dy <= size_pixels; ++dy) {
          const int span = size_pixels - std::abs(dy);
          for (int dx = -span; dx <= span; ++dx) {
            put(cx + dx, cy + dy, proj.depth, p.color);
          }
        }
        break;
      }
      case GlyphStyle::kVector: {
        put(cx, cy, proj.depth, p.color);
        draw_line(p.position, p.position + 0.15 * p.velocity, camera,
                  p.color);
        break;
      }
    }
  }
}

void Renderer::draw_line(const Vec3& a, const Vec3& b, const Camera& camera,
                         Color color) {
  const int w = frame_.width();
  const int h = frame_.height();
  const auto pa = camera.project(a, w, h);
  const auto pb = camera.project(b, w, h);
  if (!pa.visible || !pb.visible) return;
  const double dx = pb.x - pa.x;
  const double dy = pb.y - pa.y;
  const int steps =
      std::max(1, static_cast<int>(std::max(std::abs(dx), std::abs(dy))));
  for (int s = 0; s <= steps; ++s) {
    const double t = static_cast<double>(s) / steps;
    const double depth = pa.depth + t * (pb.depth - pa.depth);
    put(static_cast<int>(pa.x + t * dx), static_cast<int>(pa.y + t * dy),
        depth - 1e-6, color);
  }
}

void Renderer::draw_box(const Vec3& lo, const Vec3& hi, const Camera& camera,
                        Color color) {
  const Vec3 corners[8] = {
      {lo.x, lo.y, lo.z}, {hi.x, lo.y, lo.z}, {lo.x, hi.y, lo.z},
      {hi.x, hi.y, lo.z}, {lo.x, lo.y, hi.z}, {hi.x, lo.y, hi.z},
      {lo.x, hi.y, hi.z}, {hi.x, hi.y, hi.z}};
  constexpr int kEdges[12][2] = {{0, 1}, {0, 2}, {1, 3}, {2, 3},
                                 {4, 5}, {4, 6}, {5, 7}, {6, 7},
                                 {0, 4}, {1, 5}, {2, 6}, {3, 7}};
  for (const auto& e : kEdges) {
    draw_line(corners[e[0]], corners[e[1]], camera, color);
  }
}

}  // namespace cs::viz
