// Deadlines and time helpers shared by every blocking call in the library.
//
// The VISIT design rule (paper section 3.2) is that every operation issued by
// the steered simulation completes or fails by a caller-supplied timeout.
// Deadline is the vocabulary type for that rule.
#pragma once

#include <chrono>
#include <cstdint>

namespace cs::common {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Duration = Clock::duration;

/// A point in time by which a blocking operation must return.
class Deadline {
 public:
  /// Never expires.
  static Deadline infinite() noexcept { return Deadline{TimePoint::max()}; }

  /// Expires `d` from now.
  static Deadline after(Duration d) noexcept {
    if (d >= TimePoint::max() - Clock::now()) return infinite();
    return Deadline{Clock::now() + d};
  }

  /// Already expired (poll semantics: try once, never block).
  static Deadline expired() noexcept { return Deadline{TimePoint::min()}; }

  explicit Deadline(TimePoint when) noexcept : when_(when) {}

  TimePoint time_point() const noexcept { return when_; }
  bool is_infinite() const noexcept { return when_ == TimePoint::max(); }

  bool has_expired() const noexcept {
    return !is_infinite() && Clock::now() >= when_;
  }

  /// Time left; zero when expired, Duration::max() when infinite.
  Duration remaining() const noexcept {
    if (is_infinite()) return Duration::max();
    const auto now = Clock::now();
    return now >= when_ ? Duration::zero() : when_ - now;
  }

 private:
  TimePoint when_;
};

inline std::chrono::milliseconds ms(std::int64_t n) noexcept {
  return std::chrono::milliseconds{n};
}

/// Steady-clock now as nanoseconds since the clock epoch — the timestamp
/// format loadgen frames and media streams embed for latency accounting.
inline std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

/// Nanoseconds elapsed since a steady_now_ns() stamp; clamps to zero if the
/// stamp is in the future (corrupt or cross-clock).
inline std::uint64_t ns_since(std::uint64_t sent_ns) noexcept {
  const std::uint64_t now = steady_now_ns();
  return now > sent_ns ? now - sent_ns : 0;
}

}  // namespace cs::common
