#include "wire/structdesc.hpp"

#include <cstring>

#include "common/strings.hpp"
#include "wire/convert.hpp"

namespace cs::wire {

using common::Bytes;
using common::ByteSpan;
using common::Result;
using common::Status;
using common::StatusCode;

StructDesc& StructDesc::add_field(std::string field_name, ScalarType type,
                                  std::size_t count, std::size_t offset) {
  fields_.push_back(FieldDesc{std::move(field_name), type, count, offset});
  return *this;
}

std::size_t StructDesc::wire_record_size() const noexcept {
  std::size_t total = 0;
  for (const auto& f : fields_) total += f.count * size_of(f.type);
  return total;
}

std::size_t StructDesc::find_field(std::string_view field_name) const noexcept {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == field_name) return i;
  }
  return static_cast<std::size_t>(-1);
}

std::string StructDesc::serialize() const {
  std::string out = name_ + "|" + std::to_string(host_size_);
  for (const auto& f : fields_) {
    out += "|" + f.name + ":" +
           std::to_string(static_cast<int>(f.type)) + ":" +
           std::to_string(f.count) + ":" + std::to_string(f.offset);
  }
  return out;
}

Result<StructDesc> StructDesc::parse(std::string_view text) {
  const auto parts = common::split(text, '|');
  if (parts.size() < 2) {
    return Status{StatusCode::kProtocolError, "struct schema too short"};
  }
  StructDesc desc{parts[0],
                  static_cast<std::size_t>(std::strtoull(parts[1].c_str(),
                                                         nullptr, 10))};
  for (std::size_t i = 2; i < parts.size(); ++i) {
    const auto cols = common::split(parts[i], ':');
    if (cols.size() != 4) {
      return Status{StatusCode::kProtocolError,
                    "bad field spec: " + parts[i]};
    }
    const auto raw_type = std::strtoul(cols[1].c_str(), nullptr, 10);
    if (!is_valid_scalar_type(static_cast<std::uint8_t>(raw_type))) {
      return Status{StatusCode::kProtocolError,
                    "bad field type: " + cols[1]};
    }
    desc.add_field(cols[0], static_cast<ScalarType>(raw_type),
                   std::strtoull(cols[2].c_str(), nullptr, 10),
                   std::strtoull(cols[3].c_str(), nullptr, 10));
  }
  return desc;
}

Bytes pack_records(const StructDesc& desc, const void* records,
                   std::size_t record_count) {
  Bytes out;
  out.reserve(desc.wire_record_size() * record_count);
  const auto* base = static_cast<const std::uint8_t*>(records);
  for (std::size_t r = 0; r < record_count; ++r) {
    const std::uint8_t* rec = base + r * desc.host_size();
    for (const auto& f : desc.fields()) {
      const std::size_t n = f.count * size_of(f.type);
      out.insert(out.end(), rec + f.offset, rec + f.offset + n);
    }
  }
  return out;
}

Status unpack_records(const StructDesc& src_desc, common::ByteOrder src_order,
                      ByteSpan payload, const StructDesc& dst_desc,
                      void* records, std::size_t record_count) {
  const std::size_t src_record = src_desc.wire_record_size();
  if (payload.size() < src_record * record_count) {
    return Status{StatusCode::kProtocolError,
                  "payload smaller than record_count records"};
  }
  // Precompute per-source-field offsets within one wire record.
  std::vector<std::size_t> src_offsets(src_desc.fields().size());
  {
    std::size_t off = 0;
    for (std::size_t i = 0; i < src_desc.fields().size(); ++i) {
      src_offsets[i] = off;
      off += src_desc.fields()[i].count * size_of(src_desc.fields()[i].type);
    }
  }
  auto* base = static_cast<std::uint8_t*>(records);
  std::memset(base, 0, dst_desc.host_size() * record_count);
  for (const auto& dst_field : dst_desc.fields()) {
    const std::size_t si = src_desc.find_field(dst_field.name);
    if (si == static_cast<std::size_t>(-1)) continue;  // zero-filled
    const auto& src_field = src_desc.fields()[si];
    if (src_field.count != dst_field.count) {
      return Status{StatusCode::kProtocolError,
                    "field '" + dst_field.name + "' length mismatch"};
    }
    for (std::size_t r = 0; r < record_count; ++r) {
      const ByteSpan src = payload.subspan(r * src_record + src_offsets[si]);
      std::uint8_t* dst =
          base + r * dst_desc.host_size() + dst_field.offset;
      if (Status s = convert_elements(src_field.type, src_order, src,
                                      src_field.count, dst_field.type, dst);
          !s.is_ok()) {
        return s;
      }
    }
  }
  return Status::ok();
}

Message make_struct_message(std::uint32_t tag, const StructDesc& desc,
                            const void* records, std::size_t record_count) {
  Bytes packed = pack_records(desc, records, record_count);
  Message m;
  m.header.kind = MessageKind::kData;
  m.header.tag = tag;
  m.header.elem_type = ScalarType::kUInt8;
  m.header.payload_order = common::native_order();
  m.header.count = packed.size();
  m.header.payload_bytes = packed.size();
  m.payload = std::move(packed);
  return m;
}

}  // namespace cs::wire
