// Mesh diagnostics — the extension the paper announces for PEPC:
// "A future extension will also provide selected diagnostic quantities
// mapped onto a user-defined mesh, such as charge density, current,
// electric fields and laser intensity." (paper section 3.4)
//
// Charge and current density are deposited with cloud-in-cell (CIC)
// weighting; the electric field is sampled from the octree at the mesh
// points. The outputs are x-fastest float arrays ready for the viz
// substrate (isosurfaces, cutting planes) and the COVISE grid object.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/vec3.hpp"
#include "sim/pepc/particle.hpp"
#include "sim/pepc/tree.hpp"

namespace cs::pepc {

/// A user-defined diagnostic mesh over an axis-aligned box.
struct DiagnosticMesh {
  int nx = 16, ny = 16, nz = 16;
  common::Vec3 lo{-2, -2, -2};
  common::Vec3 hi{2, 2, 2};

  std::size_t cells() const noexcept {
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
           static_cast<std::size_t>(nz);
  }
  common::Vec3 spacing() const noexcept {
    return {(hi.x - lo.x) / nx, (hi.y - lo.y) / ny, (hi.z - lo.z) / nz};
  }
  /// Center of cell (x, y, z).
  common::Vec3 cell_center(int x, int y, int z) const noexcept {
    const auto d = spacing();
    return {lo.x + (x + 0.5) * d.x, lo.y + (y + 0.5) * d.y,
            lo.z + (z + 0.5) * d.z};
  }
};

/// Charge density: sum of q_i deposited CIC onto the mesh, divided by the
/// cell volume. Total deposited charge equals the total charge of all
/// particles inside the mesh (conservation property, tested).
std::vector<float> charge_density(const DiagnosticMesh& mesh,
                                  std::span<const Particle> particles);

/// Current density: q_i * v_i deposited CIC; one array per component.
struct CurrentDensity {
  std::vector<float> jx, jy, jz;
};
CurrentDensity current_density(const DiagnosticMesh& mesh,
                               std::span<const Particle> particles);

/// |E| sampled from the tree at every cell center.
std::vector<float> electric_field_magnitude(
    const DiagnosticMesh& mesh, const Octree& tree);

}  // namespace cs::pepc
