// Ablation — transport substrate (DESIGN.md section 4, decision 1).
//
// The library's middleware runs over an abstract message transport. This
// bench compares the in-process implementation (the WAN-model substrate all
// experiments use) against real loopback TCP, for the message shapes the
// steering protocols actually produce: small control records and multi-MB
// sample payloads. It quantifies how much of the measured latencies is
// substrate artifact (answer: the in-process transport is faster than TCP,
// so the reproduced WAN effects are dominated by the link models, not by
// transport overhead).
#include <benchmark/benchmark.h>

#include <thread>

#include "net/inproc.hpp"
#include "net/tcp.hpp"

namespace {

using namespace std::chrono_literals;
using cs::common::Bytes;
using cs::common::Deadline;

struct Pair {
  cs::net::ConnectionPtr client;
  cs::net::ConnectionPtr server;
  std::unique_ptr<cs::net::InProcNetwork> inproc;
  std::unique_ptr<cs::net::TcpNetwork> tcp;
  cs::net::ListenerPtr listener;

  static Pair make(bool use_tcp) {
    Pair p;
    if (use_tcp) {
      p.tcp = std::make_unique<cs::net::TcpNetwork>();
      auto listener = p.tcp->listen("0");
      p.listener = std::move(listener).value();
      auto client = p.tcp->connect(p.listener->address(), Deadline::after(5s));
      auto server = p.listener->accept(Deadline::after(5s));
      p.client = std::move(client).value();
      p.server = std::move(server).value();
    } else {
      p.inproc = std::make_unique<cs::net::InProcNetwork>();
      auto listener = p.inproc->listen("x");
      p.listener = std::move(listener).value();
      auto client = p.inproc->connect("x", Deadline::after(5s));
      auto server = p.listener->accept(Deadline::after(5s));
      p.client = std::move(client).value();
      p.server = std::move(server).value();
    }
    return p;
  }
};

/// Ping-pong round trip: the steering-control message shape.
void BM_RoundTrip(benchmark::State& state) {
  const bool use_tcp = state.range(0) != 0;
  const auto size = static_cast<std::size_t>(state.range(1));
  Pair pair = Pair::make(use_tcp);
  std::jthread echo([&](std::stop_token st) {
    while (!st.stop_requested()) {
      auto m = pair.server->recv(Deadline::after(50ms));
      if (m.is_ok()) {
        (void)pair.server->send(m.value(), Deadline::after(1s));
      } else if (m.status().code() == cs::common::StatusCode::kClosed) {
        return;
      }
    }
  });
  const Bytes payload(size, 0x5a);
  for (auto _ : state) {
    if (!pair.client->send(payload, Deadline::after(5s)).is_ok() ||
        !pair.client->recv(Deadline::after(5s)).is_ok()) {
      state.SkipWithError("round trip failed");
      break;
    }
  }
  pair.client->close();
  pair.server->close();
  state.SetLabel(std::string(use_tcp ? "tcp" : "inproc") + "/bytes=" +
                 std::to_string(size));
}

/// One-way sample throughput: the data-plane shape.
void BM_Throughput(benchmark::State& state) {
  const bool use_tcp = state.range(0) != 0;
  const auto size = static_cast<std::size_t>(state.range(1));
  Pair pair = Pair::make(use_tcp);
  std::jthread drain([&](std::stop_token st) {
    while (!st.stop_requested()) {
      auto m = pair.server->recv(Deadline::after(50ms));
      if (!m.is_ok() &&
          m.status().code() == cs::common::StatusCode::kClosed) {
        return;
      }
    }
  });
  const Bytes payload(size, 0x33);
  for (auto _ : state) {
    if (!pair.client->send(payload, Deadline::after(5s)).is_ok()) {
      state.SkipWithError("send failed");
      break;
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
  pair.client->close();
  pair.server->close();
  state.SetLabel(std::string(use_tcp ? "tcp" : "inproc"));
}

}  // namespace

BENCHMARK(BM_RoundTrip)
    ->ArgsProduct({{0, 1}, {64, 64 << 10}})
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime()
    ->MinTime(0.3);
BENCHMARK(BM_Throughput)
    ->ArgsProduct({{0, 1}, {64 << 10, 4 << 20}})
    ->UseRealTime()
    ->MinTime(0.3);

BENCHMARK_MAIN();
