#include "unicore/njs.hpp"

#include <algorithm>

namespace cs::unicore {

using common::Bytes;
using common::ByteSpan;
using common::Result;
using common::Status;
using common::StatusCode;

Result<std::vector<TargetCommand>> incarnate(const Ajo& ajo) {
  std::vector<TargetCommand> script;
  script.reserve(ajo.tasks.size());
  for (const auto& task : ajo.tasks) {
    TargetCommand cmd;
    switch (task.kind) {
      case AjoTask::Kind::kImportFile:
        cmd.op = TargetCommand::Op::kPutFile;
        cmd.name = task.name;
        cmd.content = task.content;
        break;
      case AjoTask::Kind::kExecute:
        cmd.op = TargetCommand::Op::kRunApplication;
        cmd.name = task.name;
        cmd.args = task.args;
        break;
      case AjoTask::Kind::kExportFile:
        cmd.op = TargetCommand::Op::kExportFile;
        cmd.name = task.name;
        break;
      case AjoTask::Kind::kStartSteering:
        cmd.op = TargetCommand::Op::kStartVisitProxy;
        cmd.name = task.name;  // the VISIT password
        break;
    }
    script.push_back(std::move(cmd));
  }
  // The proxy must exist before any application starts: move steering
  // start-up in front of the first kRunApplication (stable order otherwise).
  std::stable_sort(script.begin(), script.end(),
                   [](const TargetCommand& a, const TargetCommand& b) {
                     const auto rank = [](const TargetCommand& c) {
                       return c.op == TargetCommand::Op::kStartVisitProxy ? 0 : 1;
                     };
                     return rank(a) < rank(b);
                   });
  return script;
}

Result<std::string> Njs::consign(const Ajo& ajo, const Certificate& user) {
  if (ajo.vsite != vsite_) {
    return Status{StatusCode::kInvalidArgument,
                  "AJO targets vsite " + ajo.vsite + ", this is " + vsite_};
  }
  const auto xlogin = uudb_.xlogin_for(user);
  if (!xlogin) {
    return Status{StatusCode::kPermissionDenied,
                  "no xlogin mapping for " + user.subject};
  }
  auto script = incarnate(ajo);
  if (!script.is_ok()) return script.status();
  const std::string job_id =
      vsite_ + "-job-" + std::to_string(next_job_.fetch_add(1));
  if (Status s = tsi_.submit(job_id, *xlogin, std::move(script).value());
      !s.is_ok()) {
    return s;
  }
  std::scoped_lock lock(mutex_);
  job_owner_[job_id] = user.fingerprint;
  return job_id;
}

Status Njs::authorize(const std::string& job_id,
                      const Certificate& user) const {
  std::scoped_lock lock(mutex_);
  auto it = job_owner_.find(job_id);
  if (it == job_owner_.end()) {
    return Status{StatusCode::kNotFound, "unknown job: " + job_id};
  }
  if (it->second == user.fingerprint) return Status::ok();
  auto guests = job_guests_.find(job_id);
  if (guests != job_guests_.end() &&
      guests->second.contains(user.fingerprint)) {
    return Status::ok();
  }
  return Status{StatusCode::kPermissionDenied,
                user.subject + " is not authorized for " + job_id};
}

Result<JobState> Njs::job_state(const std::string& job_id,
                                const Certificate& user) const {
  if (Status s = authorize(job_id, user); !s.is_ok()) return s;
  return tsi_.state(job_id);
}

Result<JobOutcome> Njs::job_outcome(const std::string& job_id,
                                    const Certificate& user) const {
  if (Status s = authorize(job_id, user); !s.is_ok()) return s;
  return tsi_.outcome(job_id);
}

Status Njs::abort_job(const std::string& job_id, const Certificate& user) {
  if (Status s = authorize(job_id, user); !s.is_ok()) return s;
  return tsi_.abort(job_id);
}

Result<Bytes> Njs::visit_transact(const std::string& job_id,
                                  const Certificate& user, ByteSpan request) {
  if (Status s = authorize(job_id, user); !s.is_ok()) return s;
  visit::ProxyServer* proxy = tsi_.visit_proxy(job_id);
  if (proxy == nullptr) {
    return Status{StatusCode::kUnavailable,
                  "steering not (yet) available for " + job_id};
  }
  auto req = visit::decode_proxy_request(request);
  if (!req.is_ok()) return req.status();
  return visit::encode_proxy_response(proxy->transact(req.value()));
}

Status Njs::invite(const std::string& job_id, const Certificate& owner,
                   const Certificate& guest) {
  std::scoped_lock lock(mutex_);
  auto it = job_owner_.find(job_id);
  if (it == job_owner_.end()) {
    return Status{StatusCode::kNotFound, "unknown job: " + job_id};
  }
  if (it->second != owner.fingerprint) {
    return Status{StatusCode::kPermissionDenied, "only the owner may invite"};
  }
  job_guests_[job_id].insert(guest.fingerprint);
  return Status::ok();
}

}  // namespace cs::unicore
