#include "loadgen/control.hpp"

#include <bit>
#include <utility>

#include "loadgen/driver.hpp"

namespace cs::loadgen {

using common::ByteOrder;
using common::Bytes;
using common::ByteSpan;
using common::Histogram;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {

/// Cap on any string field in a control frame; a corrupt length prefix must
/// not make the decoder allocate gigabytes.
constexpr std::size_t kMaxStringBytes = 4096;

Status invalid(const char* what) {
  return Status{StatusCode::kInvalidArgument, what};
}

void append_header(Bytes& out, ControlOp op) {
  common::append_uint<std::uint32_t>(out, LoadFrame::kMagic, ByteOrder::kBig);
  out.push_back(static_cast<std::uint8_t>(op));
}

void append_string(Bytes& out, const std::string& s) {
  common::append_uint<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()),
                                     ByteOrder::kBig);
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked cursor over a frame body. Every read either succeeds or
/// trips `fail` — callers check once at the end, so a truncated frame walks
/// through as zeros and is rejected, never read out of range.
class Reader {
 public:
  explicit Reader(ByteSpan in) : in_(in) {}

  template <typename T>
  T uint() {
    if (fail_ || in_.size() - pos_ < sizeof(T)) {
      fail_ = true;
      return T{};
    }
    const T v = common::read_uint<T>(in_.subspan(pos_), ByteOrder::kBig);
    pos_ += sizeof(T);
    return v;
  }

  std::string str() {
    const auto len = uint<std::uint32_t>();
    if (fail_ || len > kMaxStringBytes || in_.size() - pos_ < len) {
      fail_ = true;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(in_.data()) + pos_, len);
    pos_ += len;
    return s;
  }

  Result<Histogram> histogram() {
    if (fail_) return invalid("truncated control frame");
    std::size_t consumed = 0;
    auto h = Histogram::decode(in_.subspan(pos_), consumed);
    if (h.is_ok()) pos_ += consumed;
    else fail_ = true;
    return h;
  }

  bool failed() const { return fail_; }
  bool exhausted() const { return pos_ == in_.size(); }

 private:
  ByteSpan in_;
  std::size_t pos_ = 0;
  bool fail_ = false;
};

/// Validates header + op match and returns the body span.
Result<ByteSpan> body_of(ByteSpan frame, ControlOp want) {
  auto op = decode_control_op(frame);
  if (!op.is_ok()) return op.status();
  if (op.value() != want) {
    return invalid("unexpected control op");
  }
  return frame.subspan(5);
}

/// Shared epilogue: a frame must parse fully and exactly — trailing bytes
/// mean a peer speaking a different version, and we refuse to guess.
Status finish(const Reader& r) {
  if (r.failed()) return invalid("truncated control frame");
  if (!r.exhausted()) return invalid("oversized control frame");
  return Status::ok();
}

}  // namespace

std::string_view to_string(ControlOp op) noexcept {
  switch (op) {
    case ControlOp::kJoin: return "join";
    case ControlOp::kAssign: return "assign";
    case ControlOp::kReady: return "ready";
    case ControlOp::kStart: return "start";
    case ControlOp::kResult: return "result";
    case ControlOp::kBye: return "bye";
  }
  return "unknown";
}

std::string_view to_string(WorkloadSpec::Kind kind) noexcept {
  switch (kind) {
    case WorkloadSpec::Kind::kRaw: return "raw";
    case WorkloadSpec::Kind::kMuxViewers: return "mux_viewers";
  }
  return "unknown";
}

Result<ControlOp> decode_control_op(ByteSpan frame) {
  if (frame.size() < 5) return invalid("control frame too short");
  if (common::read_uint<std::uint32_t>(frame, ByteOrder::kBig) !=
      LoadFrame::kMagic) {
    return invalid("bad control magic");
  }
  const std::uint8_t op = frame[4];
  if (op < kControlOpBase ||
      op > static_cast<std::uint8_t>(ControlOp::kBye)) {
    return invalid("unknown control op");
  }
  return static_cast<ControlOp>(op);
}

// ---------------------------------------------------------------- encode --

Bytes encode_join(const JoinFrame& join) {
  Bytes out;
  append_header(out, ControlOp::kJoin);
  append_string(out, join.worker_name);
  append_string(out, join.metricsz_address);
  return out;
}

Bytes encode_assign(const WorkloadSpec& spec) {
  Bytes out;
  append_header(out, ControlOp::kAssign);
  out.push_back(static_cast<std::uint8_t>(spec.kind));
  common::append_uint<std::uint32_t>(out, spec.worker_index, ByteOrder::kBig);
  common::append_uint<std::uint32_t>(out, spec.worker_count, ByteOrder::kBig);
  append_string(out, spec.target);
  append_string(out, spec.password);
  const Workload& w = spec.workload;
  out.push_back(static_cast<std::uint8_t>(w.pattern));
  common::append_uint<std::uint64_t>(
      out, static_cast<std::uint64_t>(w.connections), ByteOrder::kBig);
  common::append_uint<std::uint64_t>(
      out,
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(w.duration)
              .count()),
      ByteOrder::kBig);
  common::append_uint<std::uint64_t>(
      out,
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(w.ramp_up)
              .count()),
      ByteOrder::kBig);
  common::append_uint<std::uint64_t>(
      out, static_cast<std::uint64_t>(w.min_payload), ByteOrder::kBig);
  common::append_uint<std::uint64_t>(
      out, static_cast<std::uint64_t>(w.max_payload), ByteOrder::kBig);
  common::append_uint<std::uint64_t>(
      out, std::bit_cast<std::uint64_t>(w.messages_per_sec), ByteOrder::kBig);
  common::append_uint<std::uint64_t>(out, w.seed, ByteOrder::kBig);
  common::append_uint<std::uint64_t>(
      out,
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(w.op_timeout)
              .count()),
      ByteOrder::kBig);
  common::append_uint<std::uint64_t>(
      out, static_cast<std::uint64_t>(w.batch), ByteOrder::kBig);
  return out;
}

Bytes encode_ready(std::uint32_t worker_index) {
  Bytes out;
  append_header(out, ControlOp::kReady);
  common::append_uint<std::uint32_t>(out, worker_index, ByteOrder::kBig);
  return out;
}

Bytes encode_start() {
  Bytes out;
  append_header(out, ControlOp::kStart);
  return out;
}

Bytes encode_result(const WireWorkerReport& report) {
  Bytes out;
  append_header(out, ControlOp::kResult);
  common::append_uint<std::uint32_t>(out, report.worker_index, ByteOrder::kBig);
  common::append_uint<std::uint64_t>(out, report.connections, ByteOrder::kBig);
  common::append_uint<std::uint64_t>(out, report.ops, ByteOrder::kBig);
  common::append_uint<std::uint64_t>(out, report.timeouts, ByteOrder::kBig);
  common::append_uint<std::uint64_t>(out, report.errors, ByteOrder::kBig);
  common::append_uint<std::uint64_t>(out, report.elapsed_ns, ByteOrder::kBig);
  common::append_uint<std::uint64_t>(out, report.transport.messages_sent,
                                     ByteOrder::kBig);
  common::append_uint<std::uint64_t>(out, report.transport.bytes_sent,
                                     ByteOrder::kBig);
  common::append_uint<std::uint64_t>(out, report.transport.messages_received,
                                     ByteOrder::kBig);
  common::append_uint<std::uint64_t>(out, report.transport.bytes_received,
                                     ByteOrder::kBig);
  report.latency.encode(out);
  return out;
}

Bytes encode_bye() {
  Bytes out;
  append_header(out, ControlOp::kBye);
  return out;
}

// ---------------------------------------------------------------- decode --

Result<JoinFrame> decode_join(ByteSpan frame) {
  auto body = body_of(frame, ControlOp::kJoin);
  if (!body.is_ok()) return body.status();
  Reader r(body.value());
  JoinFrame join;
  join.worker_name = r.str();
  join.metricsz_address = r.str();
  if (Status s = finish(r); !s.is_ok()) return s;
  return join;
}

Result<WorkloadSpec> decode_assign(ByteSpan frame) {
  auto body = body_of(frame, ControlOp::kAssign);
  if (!body.is_ok()) return body.status();
  Reader r(body.value());
  WorkloadSpec spec;
  const auto kind = r.uint<std::uint8_t>();
  if (kind > static_cast<std::uint8_t>(WorkloadSpec::Kind::kMuxViewers)) {
    return invalid("unknown spec kind");
  }
  spec.kind = static_cast<WorkloadSpec::Kind>(kind);
  spec.worker_index = r.uint<std::uint32_t>();
  spec.worker_count = r.uint<std::uint32_t>();
  spec.target = r.str();
  spec.password = r.str();
  Workload& w = spec.workload;
  const auto pattern = r.uint<std::uint8_t>();
  if (pattern > static_cast<std::uint8_t>(Pattern::kBurst)) {
    return invalid("unknown workload pattern");
  }
  w.pattern = static_cast<Pattern>(pattern);
  w.connections = static_cast<std::size_t>(r.uint<std::uint64_t>());
  w.duration = std::chrono::duration_cast<common::Duration>(
      std::chrono::nanoseconds(r.uint<std::uint64_t>()));
  w.ramp_up = std::chrono::duration_cast<common::Duration>(
      std::chrono::nanoseconds(r.uint<std::uint64_t>()));
  w.min_payload = static_cast<std::size_t>(r.uint<std::uint64_t>());
  w.max_payload = static_cast<std::size_t>(r.uint<std::uint64_t>());
  w.messages_per_sec = std::bit_cast<double>(r.uint<std::uint64_t>());
  w.seed = r.uint<std::uint64_t>();
  w.op_timeout = std::chrono::duration_cast<common::Duration>(
      std::chrono::nanoseconds(r.uint<std::uint64_t>()));
  w.batch = static_cast<std::size_t>(r.uint<std::uint64_t>());
  if (Status s = finish(r); !s.is_ok()) return s;
  if (spec.worker_count == 0 || spec.worker_index >= spec.worker_count) {
    return invalid("worker index out of range");
  }
  // A spec that validates client-side must also validate after the round
  // trip; re-checking here keeps a malicious controller from handing a
  // worker an unusable (e.g. zero-duration busy-spin) assignment.
  if (Status s = w.validate(); !s.is_ok()) {
    return Status{StatusCode::kInvalidArgument,
                  "assigned workload invalid: " + s.message()};
  }
  return spec;
}

Result<std::uint32_t> decode_ready(ByteSpan frame) {
  auto body = body_of(frame, ControlOp::kReady);
  if (!body.is_ok()) return body.status();
  Reader r(body.value());
  const auto index = r.uint<std::uint32_t>();
  if (Status s = finish(r); !s.is_ok()) return s;
  return index;
}

Result<WireWorkerReport> decode_result(ByteSpan frame) {
  auto body = body_of(frame, ControlOp::kResult);
  if (!body.is_ok()) return body.status();
  Reader r(body.value());
  WireWorkerReport report;
  report.worker_index = r.uint<std::uint32_t>();
  report.connections = r.uint<std::uint64_t>();
  report.ops = r.uint<std::uint64_t>();
  report.timeouts = r.uint<std::uint64_t>();
  report.errors = r.uint<std::uint64_t>();
  report.elapsed_ns = r.uint<std::uint64_t>();
  report.transport.messages_sent = r.uint<std::uint64_t>();
  report.transport.bytes_sent = r.uint<std::uint64_t>();
  report.transport.messages_received = r.uint<std::uint64_t>();
  report.transport.bytes_received = r.uint<std::uint64_t>();
  auto latency = r.histogram();
  if (!latency.is_ok()) return latency.status();
  report.latency = std::move(latency).value();
  if (Status s = finish(r); !s.is_ok()) return s;
  return report;
}

}  // namespace cs::loadgen
