#include "visit/multiplexer.hpp"

#include <utility>
#include <vector>

#include "common/log.hpp"
#include "net/fanout_sink.hpp"
#include "net/tcp.hpp"
#include "visit/server.hpp"
#include "visit/tags.hpp"

namespace cs::visit {

using common::Deadline;
using common::FramePtr;
using common::OutboundQueue;
using common::OverflowPolicy;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {
// Pump threads poll with a short deadline so stop() is honored promptly.
constexpr auto kPumpSlice = std::chrono::milliseconds(50);

/// Overflow policy by wire tag: control frames are lossless-or-disconnect,
/// data frames shed the stalest sample.
OverflowPolicy policy_for_tag(std::uint32_t tag) noexcept {
  return is_control_tag(tag) ? OverflowPolicy::kDisconnect
                             : OverflowPolicy::kDropOldest;
}
}  // namespace

Result<std::unique_ptr<Multiplexer>> Multiplexer::start(
    net::Network& net, const Options& options) {
  auto sim_listener = net.listen(options.sim_address);
  if (!sim_listener.is_ok()) return sim_listener.status();
  auto viewer_listener = net.listen(options.viewer_address);
  if (!viewer_listener.is_ok()) return viewer_listener.status();

  std::unique_ptr<Multiplexer> mux{new Multiplexer};
  mux->options_ = options;
  mux->sim_listener_ = std::move(sim_listener).value();
  mux->viewer_listener_ = std::move(viewer_listener).value();
  Multiplexer* self = mux.get();
  common::ShardedFanout::Options fanout_options;
  fanout_options.shards = options.fanout_shards;
  fanout_options.queue_capacity = options.viewer_queue_capacity;
  mux->fanout_ = std::make_unique<common::ShardedFanout>(
      fanout_options, [self](std::uint64_t id) { self->remove_viewer(id); });
  if (options.use_event_host) {
    auto host = net::EventHost::start(
        {.pollers = options.event_host_pollers,
         .queue_capacity = options.viewer_queue_capacity,
         .heartbeat_interval = options.heartbeat_interval,
         .heartbeat_grace = options.heartbeat_grace,
         .ping_frame = wire::make_control_message(kTagPing, "").encode()});
    if (host.is_ok()) {
      mux->event_host_ = std::move(host).value();
    } else {
      CS_LOG_WARN("visit.mux")
          << "event host unavailable, falling back to pump threads: "
          << host.status().to_string();
    }
  }
  // Accepts stay on pump threads in both modes: the password handshake is
  // a blocking exchange and must never stall an event-host poller.
  mux->sim_accept_pump_ = std::make_unique<net::AcceptPump>(
      *mux->sim_listener_,
      [self](net::ConnectionPtr conn) { self->handle_sim_conn(std::move(conn)); },
      net::ServeOptions{.accept_slice = kPumpSlice});
  mux->viewer_accept_pump_ = std::make_unique<net::AcceptPump>(
      *mux->viewer_listener_,
      [self](net::ConnectionPtr conn) {
        self->handle_viewer_conn(std::move(conn));
      },
      net::ServeOptions{.accept_slice = kPumpSlice});
  mux->register_metric_bridges();
  if (!options.metricsz_address.empty()) {
    auto endpoint = obs::MetricsEndpoint::start(
        net, options.metricsz_address,
        [self] { return self->metrics_.snapshot(); });
    if (endpoint.is_ok()) {
      mux->metrics_endpoint_ = std::move(endpoint).value();
    } else {
      CS_LOG_WARN("visit.mux") << "metricsz endpoint unavailable: "
                               << endpoint.status().to_string();
    }
  }
  return mux;
}

void Multiplexer::register_metric_bridges() {
  // Derived metrics pull from the stats surfaces that already exist —
  // fan-out shards, event-host pollers, accept pumps, the process-global
  // TCP wire stripes — at scrape time, so the hot paths stay untouched and
  // nothing is double-counted. Scrapes are rare; the copies are cheap
  // relative to their cadence.
  auto host_stats = [this] {
    return event_host_ ? event_host_->stats() : net::EventHostStats{};
  };
  metrics_.counter_fn("frames_delivered", "frames", [this, host_stats] {
    return fanout_->stats().data_delivered + host_stats().data_delivered;
  });
  metrics_.counter_fn("queue_drops", "frames", [this, host_stats] {
    return fanout_->stats().data_dropped + host_stats().data_dropped;
  });
  metrics_.counter_fn("overflow_disconnects", "count", [this, host_stats] {
    return fanout_->stats().disconnects + host_stats().disconnects;
  });
  metrics_.counter_fn("poller_wakeups", "count",
                      [host_stats] { return host_stats().wakeups; });
  metrics_.counter_fn("mux_pings_sent", "count",
                      [host_stats] { return host_stats().pings_sent; });
  metrics_.counter_fn("mux_idle_disconnects", "count", [host_stats] {
    return host_stats().idle_disconnects;
  });
  metrics_.counter_fn("accepts", "count", [this] {
    return (sim_accept_pump_ ? sim_accept_pump_->accepted() : 0) +
           (viewer_accept_pump_ ? viewer_accept_pump_->accepted() : 0);
  });
  metrics_.counter_fn("rejects", "count", [this] {
    return (sim_accept_pump_ ? sim_accept_pump_->refused() : 0) +
           (viewer_accept_pump_ ? viewer_accept_pump_->refused() : 0);
  });
  metrics_.gauge_fn("viewers", "count", [this] {
    return static_cast<double>(viewer_count());
  });
  metrics_.gauge_fn("hosted_viewers", "count", [host_stats] {
    return static_cast<double>(host_stats().hosted);
  });
  metrics_.gauge_fn("event_host_pollers", "threads", [host_stats] {
    return static_cast<double>(host_stats().pollers);
  });
  metrics_.gauge_fn("service_threads", "threads", [this] {
    return static_cast<double>(stats().service_threads);
  });
  metrics_.gauge_fn("queue_depth_high_water", "frames", [this, host_stats] {
    const auto fan = fanout_->stats();
    std::size_t high = host_stats().queue_high_water;
    for (const auto& shard : fan.shards) {
      high = std::max(high, shard.queue_high_water);
    }
    return static_cast<double>(high);
  });
  metrics_.gauge_fn("queued_frames", "frames", [this, host_stats] {
    return static_cast<double>(fanout_->stats().queued_frames +
                               host_stats().queued_frames);
  });
  metrics_.timer_fn("poll_latency",
                    [host_stats] { return host_stats().poll_latency; });
  // Frame-lifecycle stages, merged across both delivery populations
  // (fan-out workers and event-host pollers).
  metrics_.timer_fn("stage_ingress_to_encode", [this, host_stats] {
    auto h = fanout_->stats().stages.ingress_to_encode;
    h.merge(host_stats().stages.ingress_to_encode);
    return h;
  });
  metrics_.timer_fn("stage_encode_to_enqueue", [this, host_stats] {
    auto h = fanout_->stats().stages.encode_to_enqueue;
    h.merge(host_stats().stages.encode_to_enqueue);
    return h;
  });
  metrics_.timer_fn("stage_enqueue_to_write", [this, host_stats] {
    auto h = fanout_->stats().stages.enqueue_to_write;
    h.merge(host_stats().stages.enqueue_to_write);
    return h;
  });
  // Process-global TCP wire path (how well the vectored sends batch).
  metrics_.counter_fn("tcp_send_batches", "count",
                      [] { return net::tcp_wire_stats().send_batches; });
  metrics_.counter_fn("tcp_short_writes", "count",
                      [] { return net::tcp_wire_stats().short_writes; });
  metrics_.timer_fn("tcp_batch_messages", [] {
    return net::tcp_wire_stats().batch_messages;  // value = messages, not ns
  });
  metrics_.timer_fn("tcp_short_write_bytes", [] {
    return net::tcp_wire_stats().short_write_bytes;  // value = bytes
  });
}

Multiplexer::~Multiplexer() { stop(); }

void Multiplexer::stop() {
  if (stopped_.exchange(true)) return;
  // The metrics endpoint goes first: its snapshot callbacks read the very
  // internals (fanout_, event_host_, accept pumps) this method tears down.
  if (metrics_endpoint_) metrics_endpoint_->stop();
  // Close the listeners first (wakes blocked accepts with kClosed), then
  // join the accept pumps so no new sim pump can be spawned, then take down
  // the current pump under its handoff lock.
  if (sim_listener_) sim_listener_->close();
  if (viewer_listener_) viewer_listener_->close();
  if (sim_accept_pump_) sim_accept_pump_->stop();
  if (viewer_accept_pump_) viewer_accept_pump_->stop();
  {
    std::scoped_lock lock(sim_pump_mutex_);
    if (sim_pump_thread_.joinable()) {
      sim_pump_thread_.request_stop();
      sim_pump_thread_.join();
    }
  }
  // The sim pump is gone, so nothing publishes anymore. Close every viewer
  // connection first — that wakes any shard worker blocked inside a send
  // with kClosed immediately — then join the fan-out workers and the
  // event-host pollers. Those joins must happen before mutex_ is taken
  // exclusively: a worker (or poller) may be blocked in a callback
  // (remove_viewer) waiting for that lock.
  {
    std::shared_lock lock(mutex_);
    for (auto& [id, viewer] : viewers_) viewer.conn->close();
  }
  if (fanout_) fanout_->stop();
  if (event_host_) event_host_->stop();
  std::vector<Viewer> doomed;
  std::vector<std::jthread> graves;
  {
    std::unique_lock lock(mutex_);
    for (auto& [id, viewer] : viewers_) {
      viewer.conn->close();
      doomed.push_back(std::move(viewer));
    }
    viewers_.clear();
    master_id_ = 0;
    graves = std::move(graveyard_);
    graveyard_.clear();
  }
  for (auto& viewer : doomed) {
    if (viewer.pump.joinable()) {
      viewer.pump.request_stop();
      viewer.pump.join();
    }
  }
  for (auto& t : graves) {
    if (t.joinable()) {
      t.request_stop();
      t.join();
    }
  }
}

std::string Multiplexer::sim_address() const {
  return sim_listener_ ? sim_listener_->address() : options_.sim_address;
}

std::string Multiplexer::viewer_address() const {
  return viewer_listener_ ? viewer_listener_->address()
                          : options_.viewer_address;
}

std::size_t Multiplexer::viewer_count() const {
  std::shared_lock lock(mutex_);
  return viewers_.size();
}

std::uint64_t Multiplexer::master_id() const {
  std::shared_lock lock(mutex_);
  return master_id_;
}

Multiplexer::Stats Multiplexer::stats() const {
  Stats out;
  // Shim over the registry-backed counters: the registry is the source of
  // truth, the historical struct shape survives for callers and tests.
  out.samples_in = ctr_samples_in_.value();
  out.steers_accepted = ctr_steers_accepted_.value();
  out.steers_rejected = ctr_steers_rejected_.value();
  out.requests_served = ctr_requests_served_.value();
  std::size_t legacy_pumps = 0;
  {
    std::shared_lock lock(mutex_);
    for (const auto& [id, viewer] : viewers_) {
      if (!viewer.hosted) ++legacy_pumps;
    }
  }
  out.fanout = fanout_->stats();
  if (event_host_) out.event_host = event_host_->stats();
  // Delivery accounting lives with whoever drains the queue; surface both
  // populations under the historical sample counters (missed = shed by
  // overflow or a per-send deadline).
  out.samples_out = out.fanout.data_delivered + out.event_host.data_delivered;
  out.samples_missed = out.fanout.data_dropped + out.event_host.data_dropped;
  bool sim_pump_alive = false;
  {
    std::scoped_lock lock(sim_pump_mutex_);
    sim_pump_alive = sim_pump_thread_.joinable();
  }
  const auto pump_thread = [](const std::unique_ptr<net::AcceptPump>& p) {
    return (p != nullptr && !p->event_driven()) ? std::size_t{1}
                                                : std::size_t{0};
  };
  out.service_threads = pump_thread(sim_accept_pump_) +
                        pump_thread(viewer_accept_pump_) +
                        (sim_pump_alive ? 1 : 0) + fanout_->shard_count() +
                        (event_host_ ? event_host_->poller_count() : 0) +
                        legacy_pumps;
  return out;
}

void Multiplexer::handle_sim_conn(net::ConnectionPtr conn) {
  if (!handshake_accept(*conn, options_.password,
                        Deadline::after(std::chrono::seconds(2)))
           .or_log("visit.mux.sim")) {
    return;
  }
  // One simulation at a time: a fresh pump replaces the previous one.
  std::scoped_lock lock(sim_pump_mutex_);
  if (stopped_.load()) return;  // raced with stop(): don't respawn
  if (sim_pump_thread_.joinable()) {
    sim_pump_thread_.request_stop();
    sim_pump_thread_.join();
  }
  net::ConnectionPtr sim = std::move(conn);
  sim_pump_thread_ = std::jthread(
      [this, sim](std::stop_token pump_st) { sim_pump(pump_st, sim); });
}

void Multiplexer::handle_viewer_conn(net::ConnectionPtr conn) {
  if (!handshake_accept(*conn, options_.password,
                        Deadline::after(std::chrono::seconds(2)), "pending")
           .or_log("visit.mux.viewer")) {
    return;
  }
  add_viewer(std::move(conn));
}

void Multiplexer::add_viewer(net::ConnectionPtr conn) {
  const bool hosted = event_host_ != nullptr && conn->native_handle() >= 0;
  std::unique_lock lock(mutex_);
  const std::uint64_t id = next_viewer_id_++;
  // Late joiners get the schema announcements, the last sample of each tag
  // ("everyone has the same view of the data"), and their role notice. The
  // frames are seeded into the viewer's queue atomically with its
  // subscription — replay is required state, never droppable, and ordered
  // strictly before any subsequently published frame.
  std::vector<OutboundQueue::Item> replay;
  replay.reserve(schema_cache_.size() + last_sample_.size() + 1);
  for (const auto& [tag, frame] : schema_cache_) {
    replay.push_back({frame, OverflowPolicy::kDisconnect});
  }
  for (const auto& [tag, frame] : last_sample_) {
    replay.push_back({frame, OverflowPolicy::kDropOldest});
  }
  // First viewer in becomes master; later handovers go through promote().
  const bool becomes_master = (master_id_ == 0);
  if (becomes_master) master_id_ = id;
  replay.push_back(
      {common::make_frame(
           wire::make_control_message(kTagRole,
                                      becomes_master ? "master" : "viewer")
               .encode()),
       OverflowPolicy::kDisconnect});
  Viewer viewer;
  viewer.conn = conn;
  viewer.hosted = hosted;
  viewers_.emplace(id, std::move(viewer));
  if (hosted) {
    // Epoll path: the event host owns ingress decode and the outbound
    // queue — this viewer costs no thread anywhere. Registration happens
    // under mutex_ so the replay seed and master bookkeeping are atomic
    // with the registry insert (the poller's callbacks block on mutex_
    // until it is released).
    if (!event_host_->host(
            id, conn,
            [this](std::uint64_t vid, common::Bytes raw) {
              on_viewer_bytes(vid, std::move(raw));
            },
            [this](std::uint64_t vid, const Status&) { remove_viewer(vid); },
            std::move(replay))) {
      // Host refused (shutting down): undo the registration.
      viewers_.erase(id);
      if (master_id_ == id) master_id_ = 0;
      conn->close();
    }
    return;
  }
  auto& slot = viewers_[id];
  slot.pump =
      std::jthread([this, id](std::stop_token st) { viewer_pump(st, id); });
  // All outbound traffic to a viewer — replay, roles, broadcasts — goes
  // through its fan-out queue, so one shard worker is the only thread ever
  // calling send() on the connection; the worker delivers a drained burst
  // as one vectored send_many (one syscall over TCP).
  fanout_->add(id,
               net::batched_connection_sink(conn, options_.forward_timeout),
               std::move(replay));
}

void Multiplexer::remove_viewer(std::uint64_t id) {
  // Deregister from the delivery paths first so no further frames are
  // queued; a frame already claimed by a shard worker may still complete
  // against the closing connection, which reports kClosed harmlessly.
  fanout_->remove(id);
  if (event_host_) event_host_->unhost(id);
  bool was_master = false;
  std::uint64_t successor = 0;
  {
    std::unique_lock lock(mutex_);
    auto it = viewers_.find(id);
    if (it == viewers_.end()) return;
    it->second.conn->close();
    if (it->second.pump.joinable()) {
      it->second.pump.request_stop();
      // This may run on the viewer's own pump thread (or a fan-out
      // worker), so the jthread cannot be joined here; it is parked and
      // joined at stop() time. Hosted viewers have no pump to park.
      graveyard_.push_back(std::move(it->second.pump));
    }
    viewers_.erase(it);
    was_master = (master_id_ == id);
    if (was_master) {
      master_id_ = 0;
      if (!viewers_.empty()) successor = viewers_.begin()->first;
    }
  }
  if (was_master && successor != 0) promote(successor);
}

void Multiplexer::promote(std::uint64_t id) {
  std::uint64_t old_master = 0;
  {
    std::unique_lock lock(mutex_);
    if (!viewers_.contains(id)) return;
    if (master_id_ != id) old_master = master_id_;
    master_id_ = id;
  }
  if (old_master != 0) {
    (void)deliver_to(
        old_master,
        common::make_frame(
            wire::make_control_message(kTagRole, "viewer").encode()),
        OverflowPolicy::kDisconnect);
  }
  (void)deliver_to(
      id,
      common::make_frame(
          wire::make_control_message(kTagRole, "master").encode()),
      OverflowPolicy::kDisconnect);
}

void Multiplexer::deliver(const FramePtr& frame, OverflowPolicy policy) {
  // Each viewer is registered with exactly one of the two paths, so the
  // double publish reaches everyone exactly once.
  fanout_->publish(frame, policy);
  if (event_host_) event_host_->publish(frame, policy);
}

bool Multiplexer::deliver_to(std::uint64_t id, FramePtr frame,
                             OverflowPolicy policy) {
  if (fanout_->send_to(id, frame, policy)) return true;
  return event_host_ != nullptr &&
         event_host_->send_to(id, std::move(frame), policy);
}

void Multiplexer::sim_pump(const std::stop_token& st, net::ConnectionPtr conn) {
  while (!st.stop_requested()) {
    auto raw = conn->recv(Deadline::after(kPumpSlice));
    if (!raw.is_ok()) {
      if (raw.status().code() == StatusCode::kClosed) return;
      continue;  // timeout slice
    }
    const std::uint64_t ingress_ns = common::steady_now_ns();
    auto m = wire::Message::decode(raw.value());
    if (!m.or_log("visit.mux.sim")) {
      conn->close();
      return;
    }
    handle_sim_message(std::move(m).value(), *conn, ingress_ns);
  }
}

void Multiplexer::handle_sim_message(wire::Message m,
                                     net::Connection& sim_conn,
                                     std::uint64_t ingress_ns) {
  switch (m.header.kind) {
    case wire::MessageKind::kData: {
      // One encode per broadcast: the same immutable frame feeds every
      // viewer queue and the late-joiner replay cache.
      const FramePtr frame = common::make_frame(m.encode(), ingress_ns);
      ctr_samples_in_.add();
      {
        std::unique_lock lock(mutex_);
        last_sample_.insert_or_assign(m.header.tag, frame);
      }
      // Publish outside the lock: it only enqueues, and an overflow
      // disconnect re-enters remove_viewer, which takes the lock itself.
      deliver(frame, OverflowPolicy::kDropOldest);
      return;
    }
    case wire::MessageKind::kControl: {
      const FramePtr frame = common::make_frame(m.encode(), ingress_ns);
      if (m.header.tag == kTagSchema) {
        std::unique_lock lock(mutex_);
        // Schema cache keyed by the data tag named in the body.
        auto body = wire::extract_string(m);
        if (body.is_ok()) {
          const auto tag = static_cast<std::uint32_t>(
              std::strtoul(body.value().c_str(), nullptr, 10));
          schema_cache_.insert_or_assign(tag, frame);
        }
      }
      deliver(frame, policy_for_tag(m.header.tag));
      return;
    }
    case wire::MessageKind::kRequest: {
      // Answer immediately from the master's parameter table.
      wire::Message reply;
      {
        std::unique_lock lock(mutex_);
        auto it = parameters_.find(m.header.tag);
        reply = (it != parameters_.end())
                    ? it->second
                    : wire::make_data_message<std::uint8_t>(m.header.tag,
                                                            nullptr, 0);
      }
      ctr_requests_served_.add();
      (void)sim_conn.send(reply.encode(),
                          Deadline::after(options_.forward_timeout));
      return;
    }
  }
}

void Multiplexer::viewer_pump(const std::stop_token& st, std::uint64_t id) {
  net::ConnectionPtr conn;
  {
    std::shared_lock lock(mutex_);
    auto it = viewers_.find(id);
    if (it == viewers_.end()) return;
    conn = it->second.conn;
  }
  while (!st.stop_requested()) {
    auto raw = conn->recv(Deadline::after(kPumpSlice));
    if (!raw.is_ok()) {
      if (raw.status().code() == StatusCode::kClosed) {
        remove_viewer(id);
        return;
      }
      continue;
    }
    auto m = wire::Message::decode(raw.value());
    if (!m.is_ok()) {
      remove_viewer(id);
      return;
    }
    handle_viewer_message(id, std::move(m).value());
  }
}

void Multiplexer::on_viewer_bytes(std::uint64_t id, common::Bytes raw) {
  auto m = wire::Message::decode(raw);
  if (!m.or_log("visit.mux.viewer")) {
    remove_viewer(id);
    return;
  }
  handle_viewer_message(id, std::move(m).value());
}

void Multiplexer::handle_viewer_message(std::uint64_t id, wire::Message m) {
  if (m.header.kind == wire::MessageKind::kControl) {
    if (m.header.tag == kTagTakeMaster) {
      // Cooperative policy: any authenticated participant may take the
      // master role; the previous master is demoted and notified.
      promote(id);
      return;
    }
    if (m.header.tag == kTagBye) {
      remove_viewer(id);
      return;
    }
    return;
  }
  if (m.header.kind == wire::MessageKind::kData) {
    std::unique_lock lock(mutex_);
    if (id == master_id_) {
      parameters_.insert_or_assign(m.header.tag, std::move(m));
      ctr_steers_accepted_.add();
    } else {
      ctr_steers_rejected_.add();  // only the master steers
    }
  }
}

}  // namespace cs::visit
