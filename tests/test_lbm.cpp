// Tests for the two-fluid lattice-Boltzmann substrate: conservation laws,
// equilibrium stability, and the paper-relevant behaviour — the miscibility
// (Shan-Chen coupling) parameter controls demixing (experiment E11's
// invariant).
#include <gtest/gtest.h>

#include "sim/lbm/lattice.hpp"
#include "sim/lbm/lbm.hpp"

namespace cs::lbm {
namespace {

// ----------------------------------------------------------- lattice ------

TEST(Lattice, WeightsSumToOne) {
  double sum = 0;
  for (double w : kWeights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-14);
}

TEST(Lattice, VelocitiesSumToZero) {
  int sx = 0, sy = 0, sz = 0;
  for (const auto& e : kVelocities) {
    sx += e[0];
    sy += e[1];
    sz += e[2];
  }
  EXPECT_EQ(sx, 0);
  EXPECT_EQ(sy, 0);
  EXPECT_EQ(sz, 0);
}

TEST(Lattice, OppositePairsAreOpposite) {
  for (int q = 0; q < kQ; ++q) {
    const auto& e = kVelocities[static_cast<std::size_t>(q)];
    const auto& o =
        kVelocities[static_cast<std::size_t>(kOpposite[static_cast<std::size_t>(q)])];
    EXPECT_EQ(e[0], -o[0]);
    EXPECT_EQ(e[1], -o[1]);
    EXPECT_EQ(e[2], -o[2]);
  }
}

TEST(Lattice, SecondMomentIsIsotropic) {
  // sum_i w_i e_ia e_ib = cs^2 * delta_ab.
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      double m = 0;
      for (int q = 0; q < kQ; ++q) {
        m += kWeights[static_cast<std::size_t>(q)] *
             kVelocities[static_cast<std::size_t>(q)][static_cast<std::size_t>(a)] *
             kVelocities[static_cast<std::size_t>(q)][static_cast<std::size_t>(b)];
      }
      EXPECT_NEAR(m, a == b ? kCs2 : 0.0, 1e-14) << "a=" << a << " b=" << b;
    }
  }
}

TEST(Lattice, PeriodicWrap) {
  EXPECT_EQ(Grid::wrap(-1, 8), 7);
  EXPECT_EQ(Grid::wrap(8, 8), 0);
  EXPECT_EQ(Grid::wrap(5, 8), 5);
  Grid g{4, 4, 4};
  // Neighbor in -x from x=0 wraps to x=3.
  EXPECT_EQ(g.neighbor(0, 0, 0, 2), g.index(3, 0, 0));
}

// --------------------------------------------------------------- physics --

LbmConfig small_config(double coupling, std::uint64_t seed = 7) {
  LbmConfig c;
  c.nx = c.ny = c.nz = 12;
  c.coupling = coupling;
  c.seed = seed;
  return c;
}

TEST(Lbm, MassExactlyConserved) {
  TwoFluidLbm sim(small_config(1.5));
  const double ma0 = sim.mass_a();
  const double mb0 = sim.mass_b();
  for (int s = 0; s < 50; ++s) sim.step();
  EXPECT_NEAR(sim.mass_a(), ma0, 1e-9 * ma0);
  EXPECT_NEAR(sim.mass_b(), mb0, 1e-9 * mb0);
}

TEST(Lbm, UniformMixtureIsStationaryWithoutCoupling) {
  LbmConfig c = small_config(0.0);
  c.noise = 0.0;  // perfectly uniform start
  TwoFluidLbm sim(c);
  for (int s = 0; s < 20; ++s) sim.step();
  // Densities stay exactly at rho0 everywhere.
  for (double r : sim.rho_a()) EXPECT_NEAR(r, c.rho0, 1e-12);
  EXPECT_NEAR(sim.segregation(), 0.0, 1e-12);
}

TEST(Lbm, ZeroCouplingStaysMixed) {
  TwoFluidLbm sim(small_config(0.0));
  for (int s = 0; s < 200; ++s) sim.step();
  EXPECT_LT(sim.segregation(), 0.05);  // diffusive mixing keeps phi ~ 0
}

TEST(Lbm, StrongCouplingDemixes) {
  TwoFluidLbm sim(small_config(1.8));
  for (int s = 0; s < 200; ++s) sim.step();
  EXPECT_GT(sim.segregation(), 0.4);  // clear phase separation
}

TEST(Lbm, SegregationIncreasesMonotonicallyWithCoupling) {
  // The core E11 relationship: stronger coupling (lower miscibility) gives
  // stronger demixing at fixed time.
  double previous = -1.0;
  for (double g : {0.0, 1.2, 1.5, 1.8}) {
    TwoFluidLbm sim(small_config(g));
    for (int s = 0; s < 150; ++s) sim.step();
    EXPECT_GT(sim.segregation(), previous - 0.02)
        << "coupling " << g << " should not demix less than the weaker one";
    previous = sim.segregation();
  }
  EXPECT_GT(previous, 0.3);
}

TEST(Lbm, SteeringMiscibilityMidRunChangesStructure) {
  // The actual RealityGrid demo: run mixed, then steer the coupling up and
  // watch the structures form.
  TwoFluidLbm sim(small_config(0.0));
  for (int s = 0; s < 50; ++s) sim.step();
  const double mixed = sim.segregation();
  EXPECT_LT(mixed, 0.05);  // thoroughly mixed by now
  sim.set_coupling(1.8);  // the steering action
  // Spinodal decomposition regrows from the tiny residual fluctuations, so
  // it takes a few hundred steps to produce clear structure.
  for (int s = 0; s < 600; ++s) sim.step();
  EXPECT_GT(sim.segregation(), mixed + 0.3);
}

TEST(Lbm, InterfaceShrinksAsDomainsCoarsen) {
  TwoFluidLbm sim(small_config(1.8));
  for (int s = 0; s < 60; ++s) sim.step();
  const auto early = sim.interface_links();
  for (int s = 0; s < 300; ++s) sim.step();
  const auto late = sim.interface_links();
  EXPECT_LT(late, early);  // coarsening reduces interface area
}

TEST(Lbm, OrderParameterBounded) {
  TwoFluidLbm sim(small_config(1.8));
  for (int s = 0; s < 100; ++s) sim.step();
  for (float phi : sim.order_parameter()) {
    EXPECT_GE(phi, -1.0f);
    EXPECT_LE(phi, 1.0f);
  }
}

TEST(Lbm, DeterministicForEqualSeeds) {
  TwoFluidLbm a(small_config(1.5, 3)), b(small_config(1.5, 3));
  for (int s = 0; s < 30; ++s) {
    a.step();
    b.step();
  }
  EXPECT_EQ(a.order_parameter(), b.order_parameter());
}

TEST(Lbm, DifferentSeedsDiffer) {
  TwoFluidLbm a(small_config(1.5, 3)), b(small_config(1.5, 4));
  for (int s = 0; s < 30; ++s) {
    a.step();
    b.step();
  }
  EXPECT_NE(a.order_parameter(), b.order_parameter());
}

}  // namespace
}  // namespace cs::lbm
