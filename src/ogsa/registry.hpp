// Service registry (paper Fig. 2).
//
// "The steering client contacts a registry which has details of the
// steering services that have published to the registry. ... The client
// chooses the services it will require and binds them to the client."
// Publication is soft-state: a service whose termination time has passed is
// swept on the next query, so a crashed service disappears from discovery
// without explicit cleanup.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "ogsa/service.hpp"

namespace cs::ogsa {

/// Discovery record returned by find().
struct RegistryEntry {
  Handle handle;
  /// Snapshot of the service's SDEs at query time.
  std::vector<std::pair<std::string, std::string>> service_data;
};

class Registry : public GridService {
 public:
  explicit Registry(Handle handle = "ogsi://registry")
      : GridService(std::move(handle)) {}

  /// Publishes a service. kAlreadyExists if the handle is taken by a
  /// still-alive service; republishing over a dead one is allowed.
  common::Status publish(ServicePtr service);

  common::Status unpublish(const Handle& handle);

  /// All live services whose handle matches the glob pattern.
  std::vector<RegistryEntry> find(const std::string& handle_pattern) const;

  /// Live services carrying an SDE `name` whose value matches the pattern.
  std::vector<RegistryEntry> find_by_service_data(
      const std::string& name, const std::string& value_pattern) const;

  /// Binds to a published live service.
  common::Result<ServicePtr> resolve(const Handle& handle) const;

  /// Number of live entries (sweeps dead ones).
  std::size_t size() const;

  /// Registry operations are themselves invocable ("find <pattern>").
  common::Result<std::string> invoke(
      const std::string& operation,
      const std::vector<std::string>& args) override;

 private:
  void sweep_locked() const;

  mutable std::mutex mutex_;
  mutable std::map<Handle, ServicePtr> services_;
};

}  // namespace cs::ogsa
