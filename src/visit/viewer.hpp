// Viewer-side client: what a steering/visualization application uses to
// participate in a collaborative session behind the multiplexer.
//
// A viewer receives every sample the simulation emits (fan-out by the
// multiplexer), may publish steering-parameter updates (honored only while
// holding the master role), and may ask to take the master role — the
// paper's "coordinated cooperative steering".
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "net/transport.hpp"
#include "wire/convert.hpp"
#include "wire/message.hpp"
#include "wire/structdesc.hpp"

namespace cs::visit {

/// Collaborative-session participant: receives every broadcast sample,
/// steers while holding the master role, and observes role handovers.
class ViewerClient {
 public:
  struct Options {
    std::string mux_address;  ///< the multiplexer's viewer address
    std::string password;     ///< session password (see SimClientOptions)
    /// Timeout applied when a call passes no explicit deadline.
    common::Duration default_timeout = std::chrono::milliseconds(100);
  };

  struct Event {
    enum class Kind {
      kData,        ///< sample broadcast from the simulation
      kStructData,  ///< record-array sample (schema known)
      kRole,        ///< our role changed; `role` holds "master"/"viewer"
      kBye,         ///< simulation or multiplexer ended the session
    };
    Kind kind = Kind::kData;
    std::uint32_t tag = 0;
    std::string role;
    wire::Message message;
  };

  /// Connects to the multiplexer's viewer port and performs the password
  /// handshake. The role (master or viewer) arrives later as a kRole event.
  static common::Result<ViewerClient> connect(net::Network& net,
                                              const Options& options,
                                              common::Deadline deadline);

  /// Performs the password handshake on an already-dialed connection —
  /// the supervised-redial path (net::Reconnector produced the transport,
  /// this completes the session). connect() is dial + attach.
  static common::Result<ViewerClient> attach(net::ConnectionPtr conn,
                                             const Options& options,
                                             common::Deadline deadline);

  /// Wraps an already-authenticated connection (the VISIT-UNICORE proxy
  /// path: UNICORE authenticated the user, so there is no VISIT handshake).
  static ViewerClient adopt(net::ConnectionPtr conn, const Options& options);

  /// Next session event (sample, role change, ...), deadline-bounded.
  common::Result<Event> poll(common::Deadline deadline);

  /// Publishes a steering parameter update. Accepted by the multiplexer
  /// only while this viewer is master; silently dropped otherwise (the
  /// multiplexer counts rejections).
  template <typename T>
  common::Status steer(std::uint32_t tag, const std::vector<T>& values,
                       std::optional<common::Deadline> deadline = {}) {
    if (!connected()) return closed();
    return conn_->send(
        wire::make_data_message(tag, values.data(), values.size()).encode(),
        effective(deadline));
  }

  /// String-valued variant of steer().
  common::Status steer_string(std::uint32_t tag, std::string_view text,
                              std::optional<common::Deadline> deadline = {});

  /// Requests the master role (granted unconditionally to authenticated
  /// participants; the grant arrives as a kRole event).
  common::Status take_master(std::optional<common::Deadline> deadline = {});

  /// True once a kRole event granted "master" (updated by poll()).
  bool is_master() const noexcept { return master_; }

  /// Schema the simulation announced for `tag`, if seen yet.
  const wire::StructDesc* schema(std::uint32_t tag) const;

  /// Unpacks a kStructData event into the viewer's record layout.
  common::Status unpack(const Event& event, const wire::StructDesc& dst_desc,
                        void* records, std::size_t record_count) const;

  /// Record count of a kStructData event.
  common::Result<std::size_t> record_count(const Event& event) const;

  /// Extracts scalar data of a kData event with conversion.
  template <typename T>
  common::Result<std::vector<T>> extract(const Event& event) const {
    return wire::extract_as<T>(event.message);
  }

  /// Sends BYE and closes. Safe to call repeatedly.
  void disconnect();
  bool connected() const noexcept { return conn_ && conn_->is_open(); }
  /// Traffic counters of the underlying connection (zeros when detached).
  net::ConnStats stats() const {
    return conn_ ? conn_->stats() : net::ConnStats{};
  }

 private:
  common::Deadline effective(std::optional<common::Deadline> d) const {
    return d ? *d : common::Deadline::after(options_.default_timeout);
  }
  common::Status closed() const {
    return common::Status{common::StatusCode::kClosed, "not connected"};
  }

  net::ConnectionPtr conn_;
  Options options_;
  bool master_ = false;
  std::map<std::uint32_t, wire::StructDesc> schemas_;
};

}  // namespace cs::visit
