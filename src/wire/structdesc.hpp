// User-defined structure descriptions.
//
// VISIT transfers "user defined structures, and arrays of these" (paper
// section 3.2). A StructDesc declares the fields of a host struct (name,
// scalar type, array length, byte offset); pack_records serializes an array
// of such structs field-by-field in the sender's native representation, and
// unpack_records rebuilds them on the receiver with full conversion —
// including receivers whose struct layout or field precision differs, as
// long as field names match.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "wire/message.hpp"
#include "wire/typedesc.hpp"

namespace cs::wire {

struct FieldDesc {
  std::string name;
  ScalarType type = ScalarType::kUInt8;
  /// Number of scalars in the field (e.g. 3 for a position triple).
  std::size_t count = 1;
  /// Byte offset of the field inside the host struct.
  std::size_t offset = 0;

  friend bool operator==(const FieldDesc&, const FieldDesc&) = default;
};

/// Description of one record type.
class StructDesc {
 public:
  StructDesc() = default;
  StructDesc(std::string name, std::size_t host_size)
      : name_(std::move(name)), host_size_(host_size) {}

  /// Declares a field. Returns *this for chaining.
  StructDesc& add_field(std::string field_name, ScalarType type,
                        std::size_t count, std::size_t offset);

  const std::string& name() const noexcept { return name_; }
  std::size_t host_size() const noexcept { return host_size_; }
  const std::vector<FieldDesc>& fields() const noexcept { return fields_; }

  /// Sum of field wire sizes for one record.
  std::size_t wire_record_size() const noexcept;

  /// Index of the field named `field_name`, or npos.
  std::size_t find_field(std::string_view field_name) const noexcept;

  /// Schema text: "name|host_size|field:type:count:offset|...".
  std::string serialize() const;
  static common::Result<StructDesc> parse(std::string_view text);

  friend bool operator==(const StructDesc&, const StructDesc&) = default;

 private:
  std::string name_;
  std::size_t host_size_ = 0;
  std::vector<FieldDesc> fields_;
};

/// Serializes `record_count` records living at `records` (laid out per
/// `desc`) into a payload of native-order field data.
common::Bytes pack_records(const StructDesc& desc, const void* records,
                           std::size_t record_count);

/// Rebuilds records described by `dst_desc` (host layout of the receiver)
/// from a payload packed with `src_desc` on a machine with byte order
/// `src_order`. Fields are matched by name; fields of dst absent from src
/// are zero-filled; per-field scalar conversion applies. The array-length
/// of matched fields must agree.
common::Status unpack_records(const StructDesc& src_desc,
                              common::ByteOrder src_order,
                              common::ByteSpan payload,
                              const StructDesc& dst_desc, void* records,
                              std::size_t record_count);

/// Wraps packed records in a data message (elem_type kUInt8).
Message make_struct_message(std::uint32_t tag, const StructDesc& desc,
                            const void* records, std::size_t record_count);

}  // namespace cs::wire
