#include "visit/client.hpp"

#include "common/log.hpp"
#include "common/strings.hpp"
#include "visit/tags.hpp"

namespace cs::visit {

using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

Result<SimClient> SimClient::connect(net::Network& net,
                                     const SimClientOptions& options,
                                     Deadline deadline) {
  auto conn = net.connect(options.server_address, deadline);
  if (!conn.is_ok()) return conn.status();
  return adopt(std::move(conn).value(), options, deadline);
}

Result<SimClient> SimClient::adopt(net::ConnectionPtr conn,
                                   const SimClientOptions& options,
                                   Deadline deadline) {
  SimClient client;
  client.conn_ = std::move(conn);
  client.options_ = options;

  // Handshake: HELLO <version> <password>  ->  OK ... | DENY <reason>.
  const auto hello = wire::make_control_message(
      kTagHello,
      std::string("HELLO ") + kProtocolVersion + " " + options.password);
  if (Status s = client.conn_->send(hello.encode(), deadline); !s.is_ok()) {
    return s;
  }
  auto raw = client.conn_->recv(deadline);
  if (!raw.is_ok()) return raw.status();
  auto ack = wire::Message::decode(raw.value());
  if (!ack.is_ok()) return ack.status();
  if (ack.value().header.tag != kTagHelloAck) {
    return Status{StatusCode::kProtocolError, "expected HELLO_ACK"};
  }
  auto body = wire::extract_string(ack.value());
  if (!body.is_ok()) return body.status();
  if (!common::starts_with(body.value(), "OK")) {
    client.conn_->close();
    return Status{StatusCode::kPermissionDenied, body.value()};
  }
  return client;
}

Status SimClient::send_string(std::uint32_t tag, std::string_view text,
                              std::optional<Deadline> deadline) {
  if (!connected()) return closed_status();
  return send_message(wire::make_string_message(tag, text), deadline);
}

Status SimClient::send_struct(std::uint32_t tag, const wire::StructDesc& desc,
                              const void* records, std::size_t record_count,
                              std::optional<Deadline> deadline) {
  if (!connected()) return closed_status();
  if (!announced_schemas_.contains(tag)) {
    const auto schema = wire::make_control_message(
        kTagSchema, std::to_string(tag) + " " + desc.serialize());
    if (Status s = send_message(schema, deadline); !s.is_ok()) return s;
    announced_schemas_.insert(tag);
  }
  return send_message(wire::make_struct_message(tag, desc, records,
                                                record_count),
                      deadline);
}

Result<std::string> SimClient::request_string(
    std::uint32_t tag, std::optional<Deadline> deadline) {
  auto reply = request_raw(tag, deadline);
  if (!reply.is_ok()) return reply.status();
  return wire::extract_string(reply.value());
}

void SimClient::disconnect() {
  if (!conn_) return;
  if (conn_->is_open()) {
    (void)conn_->send(wire::make_control_message(kTagBye, "").encode(),
                      Deadline::after(options_.default_timeout));
    conn_->close();
  }
  conn_.reset();
  announced_schemas_.clear();
}

net::ConnStats SimClient::stats() const {
  return conn_ ? conn_->stats() : net::ConnStats{};
}

Status SimClient::send_message(const wire::Message& m,
                               std::optional<Deadline> deadline) {
  Status s = conn_->send(m.encode(), effective(deadline));
  if (s.code() == StatusCode::kClosed) poison();
  return s;
}

Result<wire::Message> SimClient::request_raw(
    std::uint32_t tag, std::optional<Deadline> deadline) {
  if (!connected()) return closed_status();
  const Deadline d = effective(deadline);
  if (Status s = conn_->send(wire::make_request_message(tag).encode(), d);
      !s.is_ok()) {
    if (s.code() == StatusCode::kClosed) poison();
    return s;
  }
  // The reply is the next data message carrying our tag. Anything else
  // arriving in between (stale replies after an earlier timeout) is skipped,
  // so one lost round trip cannot poison the next.
  for (;;) {
    auto raw = conn_->recv(d);
    if (!raw.is_ok()) {
      if (raw.status().code() == StatusCode::kClosed) poison();
      return raw.status();
    }
    auto m = wire::Message::decode(raw.value());
    if (!m.is_ok()) {
      poison();
      return m.status();
    }
    if (m.value().header.tag == tag &&
        m.value().header.kind == wire::MessageKind::kData) {
      return std::move(m).value();
    }
    if (m.value().header.tag == kTagBye) {
      poison();
      return Status{StatusCode::kClosed, "server said BYE"};
    }
    CS_LOG_DEBUG("visit.client")
        << "skipping stale message tag=" << m.value().header.tag;
  }
}

void SimClient::poison() {
  if (conn_) conn_->close();
  conn_.reset();
}

}  // namespace cs::visit
