// RealityGrid demonstration (paper Fig. 1 + Fig. 2, sections 2.2-2.4).
//
// The full pipeline of the SC2003 demo, on the in-process grid:
//
//   "ucl/dirac"        — the two-fluid lattice-Boltzmann simulation,
//                        instrumented with the steering API; emits order-
//                        parameter samples over VISIT across a WAN link.
//   "manchester/bezier"— the visualization supercomputer: receives samples,
//                        extracts isosurfaces, and runs a VizServer-style
//                        remote-rendering session.
//   "laptop"           — the conference-floor client: receives compressed
//                        bitmaps only, steers the *miscibility* through the
//                        OGSA steering service found in the registry.
//
// Writes frames to rg_mixed.ppm / rg_demixed.ppm as proof of the steering
// effect ("as the miscibility parameter was altered, the structures formed
// by the fluids changed").
#include <cstdio>
#include <thread>

#include "net/inproc.hpp"
#include "ogsa/host.hpp"
#include "ogsa/registry.hpp"
#include "ogsa/steering_service.hpp"
#include "sim/lbm/lbm.hpp"
#include "steer/control.hpp"
#include "viz/isosurface.hpp"
#include "viz/remote.hpp"
#include "visit/client.hpp"
#include "visit/server.hpp"

using namespace std::chrono_literals;
using cs::common::Deadline;

namespace {
constexpr std::uint32_t kTagOrderParameter = 1;
constexpr int kGrid = 24;

/// The simulation component on "ucl/dirac".
void run_lbm(cs::net::InProcNetwork& net,
             std::shared_ptr<cs::steer::SteeringControl> control) {
  cs::lbm::LbmConfig config;
  config.nx = config.ny = config.nz = kGrid;
  config.coupling = 0.0;  // start fully miscible
  cs::lbm::TwoFluidLbm sim(config);

  double miscibility_coupling = config.coupling;
  control->register_steerable("coupling", &miscibility_coupling, 0.0, 2.5);
  control->register_monitored("segregation", [&] { return sim.segregation(); });
  control->register_monitored("step",
                              [&] { return static_cast<double>(sim.steps_done()); });

  // WAN link UCL -> Manchester (SuperJanet-like).
  cs::net::ConnectOptions wan;
  wan.link = cs::net::LinkModel::wan_europe();
  auto conn = net.connect("manchester:visit", Deadline::after(5s), wan);
  if (!conn.is_ok()) return;
  auto visit = cs::visit::SimClient::adopt(
      conn.value(), {"manchester:visit", "rg-password", 200ms},
      Deadline::after(5s));
  if (!visit.is_ok()) return;

  for (int step = 0; step < 1200; ++step) {
    if (control->sync() == cs::steer::Command::kStop) break;
    sim.set_coupling(miscibility_coupling);
    sim.step();
    control->set_status("step " + std::to_string(step) + " segregation " +
                        std::to_string(sim.segregation()));
    if (step % 10 == 0) {  // periodic sample emission
      (void)visit.value().send(kTagOrderParameter, sim.order_parameter());
      control->note_sample_emitted();
    }
  }
  visit.value().disconnect();
}

/// The visualization component on "manchester/bezier".
void run_viz(cs::net::InProcNetwork& net,
             std::shared_ptr<cs::viz::SceneStore> scene,
             std::shared_ptr<cs::steer::SteeringControl> viz_control,
             double* isolevel) {
  auto server =
      cs::visit::VizServer::listen(net, {"manchester:visit", "rg-password"});
  if (!server.is_ok()) return;
  auto session = server.value().accept(Deadline::after(10s));
  if (!session.is_ok()) return;
  for (;;) {
    auto event = session.value().serve(Deadline::after(3s));
    if (!event.is_ok() ||
        event.value().kind == cs::visit::SimSession::Event::Kind::kBye) {
      break;
    }
    auto phi = session.value().extract<float>(event.value());
    if (!phi.is_ok()) continue;
    viz_control->apply_pending();  // isolevel may have been steered
    cs::viz::ScalarField field{kGrid, kGrid, kGrid, phi.value(),
                               {-1, -1, -1}, 2.0 / (kGrid - 1)};
    auto mesh =
        cs::viz::extract_isosurface(field, static_cast<float>(*isolevel));
    scene->set_mesh(std::move(mesh), {90, 170, 255});
  }
}
}  // namespace

int main() {
  cs::net::InProcNetwork net;

  // --- Manchester: scene + VizServer-style remote renderer ---------------
  auto scene = std::make_shared<cs::viz::SceneStore>();
  auto render_server = cs::viz::RemoteRenderServer::start(
      net, scene, {"manchester:vizserver", 320, 240, 5ms});
  if (!render_server.is_ok()) return 1;

  double isolevel = 0.0;
  auto viz_control = std::make_shared<cs::steer::SteeringControl>();
  viz_control->register_steerable("isolevel", &isolevel, -1.0, 1.0);

  // --- OGSA layer: registry + two steering services (Fig. 2) -------------
  auto app_control = std::make_shared<cs::steer::SteeringControl>();
  auto registry = std::make_shared<cs::ogsa::Registry>();
  (void)registry->publish(std::make_shared<cs::ogsa::SteeringService>(
      "ogsi://realitygrid/steering/lb3d", "application", app_control));
  (void)registry->publish(std::make_shared<cs::ogsa::SteeringService>(
      "ogsi://realitygrid/steering/visualization", "visualization",
      viz_control));
  auto ogsi_host =
      cs::ogsa::ServiceHost::start(net, registry, {"realitygrid:ogsi"});
  if (!ogsi_host.is_ok()) return 1;

  // --- start the distributed components ----------------------------------
  std::jthread viz_thread(
      [&] { run_viz(net, scene, viz_control, &isolevel); });
  std::this_thread::sleep_for(50ms);
  std::jthread sim_thread([&] { run_lbm(net, app_control); });

  // --- the laptop: remote-render client + steering client ----------------
  cs::net::ConnectOptions laptop_link;
  laptop_link.link = cs::net::LinkModel::wan_europe();
  auto laptop_conn =
      net.connect("manchester:vizserver", Deadline::after(5s), laptop_link);
  if (!laptop_conn.is_ok()) return 1;
  auto laptop = cs::viz::RemoteRenderClient::adopt(laptop_conn.value());
  cs::viz::Camera camera;
  camera.look_at({2.5, 1.8, 3.2}, {0, 0, 0}, {0, 1, 0});
  (void)laptop.set_view(camera, Deadline::after(2s));

  auto steerer = cs::ogsa::ServiceClient::connect(net, "realitygrid:ogsi",
                                                  Deadline::after(2s));
  if (!steerer.is_ok()) return 1;
  auto services = steerer.value().find("ogsi://realitygrid/steering/*",
                                       Deadline::after(2s));
  std::printf("[laptop] registry lists %zu steering services\n",
              services.is_ok() ? services.value().size() : 0);

  // Phase 1: fully miscible fluids — watch a few frames arrive.
  std::this_thread::sleep_for(900ms);
  auto frame = laptop.await_frame(Deadline::after(5s));
  if (frame.is_ok()) {
    (void)frame.value().write_ppm("rg_mixed.ppm");
    std::printf("[laptop] mixed-phase frame written to rg_mixed.ppm\n");
  }
  auto seg = steerer.value().invoke("ogsi://realitygrid/steering/lb3d",
                                    "get-param", {"segregation"},
                                    Deadline::after(2s));
  std::printf("[laptop] segregation while miscible: %s\n",
              seg.is_ok() ? seg.value().c_str() : "?");

  // Phase 2: steer the miscibility — the fluids demix.
  std::printf("[laptop] steering coupling 0.0 -> 1.8 (demixing)\n");
  (void)steerer.value().invoke("ogsi://realitygrid/steering/lb3d",
                               "set-param", {"coupling", "1.8"},
                               Deadline::after(2s));
  // Also steer the visualization service: tighten the isosurface level.
  (void)steerer.value().invoke("ogsi://realitygrid/steering/visualization",
                               "set-param", {"isolevel", "0.2"},
                               Deadline::after(2s));

  std::this_thread::sleep_for(2500ms);
  // Drain to the freshest frame.
  cs::viz::Image last;
  for (int i = 0; i < 50; ++i) {
    auto f = laptop.await_frame(Deadline::after(200ms));
    if (!f.is_ok()) break;
    last = f.value();
  }
  if (!last.empty()) {
    (void)last.write_ppm("rg_demixed.ppm");
    std::printf("[laptop] demixed-phase frame written to rg_demixed.ppm\n");
  }
  seg = steerer.value().invoke("ogsi://realitygrid/steering/lb3d",
                               "get-param", {"segregation"},
                               Deadline::after(2s));
  std::printf("[laptop] segregation after steering: %s\n",
              seg.is_ok() ? seg.value().c_str() : "?");

  (void)steerer.value().invoke("ogsi://realitygrid/steering/lb3d", "command",
                               {"stop"}, Deadline::after(2s));
  sim_thread.join();
  viz_thread.join();
  std::printf("[done]   samples shipped: %llu\n",
              static_cast<unsigned long long>(app_control->samples_emitted()));
  return 0;
}
