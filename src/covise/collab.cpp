#include "covise/collab.hpp"

#include "common/strings.hpp"

namespace cs::covise {

using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

Result<std::unique_ptr<CollabParticipant>> CollabParticipant::join(
    net::InProcNetwork& net, const Options& options,
    const PipelineBuilder& builder) {
  std::unique_ptr<CollabParticipant> participant{
      new CollabParticipant(net, options.replica_name)};
  auto renderer = builder(participant->controller_);
  if (!renderer.is_ok()) return renderer.status();
  participant->renderer_ = std::move(renderer).value();
  // Initial execution so every replica starts from the same state.
  if (auto executed = participant->controller_.execute(); !executed.is_ok()) {
    return executed.status();
  }
  auto sync = visit::ControlClient::connect(
      net, options.sync_address, options.password, options.role,
      Deadline::after(std::chrono::seconds(5)));
  if (!sync.is_ok()) return sync.status();
  participant->sync_ = std::move(sync).value();
  return participant;
}

Status CollabParticipant::steer(const std::string& module,
                                const std::string& key,
                                const std::string& value, Deadline deadline) {
  if (Status s = controller_.set_param(module, key, value); !s.is_ok()) {
    return s;
  }
  if (auto executed = controller_.execute(); !executed.is_ok()) {
    return executed.status();
  }
  // Tiny record: this is all that crosses the network in parameter-sync
  // collaboration, regardless of scene size.
  return sync_.publish("PARAM\x1f" + module + "\x1f" + key + "\x1f" + value,
                       deadline);
}

Result<std::size_t> CollabParticipant::pump(Deadline deadline) {
  std::size_t applied = 0;
  for (;;) {
    auto record = sync_.receive(deadline);
    if (!record.is_ok()) {
      if (record.status().code() == StatusCode::kTimeout) break;
      if (applied > 0 && record.status().code() == StatusCode::kClosed) break;
      return record.status();
    }
    if (Status s = apply_update(record.value()); !s.is_ok()) return s;
    ++applied;
    // Drain whatever else is already queued without waiting again.
    deadline = Deadline::expired();
  }
  return applied;
}

Status CollabParticipant::apply_update(const std::string& record) {
  const auto fields = common::split(record, '\x1f');
  if (fields.size() == 4 && fields[0] == "PARAM") {
    if (Status s = controller_.set_param(fields[1], fields[2], fields[3]);
        !s.is_ok()) {
      return s;
    }
    auto executed = controller_.execute();
    return executed.is_ok() ? Status::ok() : executed.status();
  }
  return Status{StatusCode::kProtocolError, "bad sync record: " + record};
}

Result<viz::Image> CollabParticipant::current_view() const {
  auto output = controller_.output_of(renderer_, "image");
  if (!output.is_ok()) return output.status();
  const auto* image = output.value()->as<ImageData>();
  if (image == nullptr) {
    return Status{StatusCode::kInternal, "renderer produced no image"};
  }
  return image->image;
}

}  // namespace cs::covise
