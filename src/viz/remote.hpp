// Remote rendering — the OpenGL VizServer model (paper sections 2.2/2.4).
//
// The scene lives on the "visual supercomputer" (RemoteRenderServer). A
// laptop-class participant sends viewpoint events upstream and receives
// delta-compressed bitmaps downstream; it never holds the geometry — "the
// datasets which are being rendered as isosurfaces are too large to be
// visualized on a laptop client". The session is collaborative exactly as
// VizServer's was: all participants share one camera, a view change by any
// of them re-renders for everyone.
//
// The comparison pipeline for experiments E1/E7 is GeometryChannel: ship
// the triangles once and render locally (the COVISE/scene-graph approach).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/fanout.hpp"
#include "common/status.hpp"
#include "net/accept_pump.hpp"
#include "net/conn_host.hpp"
#include "net/transport.hpp"
#include "obs/registry.hpp"
#include "viz/camera.hpp"
#include "viz/compress.hpp"
#include "viz/render.hpp"

namespace cs::viz {

/// Thread-safe scene container shared between a simulation feeding data in
/// and a render loop drawing it.
class SceneStore {
 public:
  void set_mesh(TriangleMesh mesh, Color color);
  void set_particles(std::vector<ParticleSprite> particles, GlyphStyle style);
  void set_boxes(std::vector<std::pair<common::Vec3, common::Vec3>> boxes,
                 Color color);

  /// Renders the current scene contents.
  void render(Renderer& renderer, const Camera& camera) const;

  /// Monotonic counter bumped by every mutation.
  std::uint64_t version() const noexcept { return version_.load(); }

  /// Raw geometry size (what a local pipeline must ship on each change).
  std::size_t geometry_bytes() const;

  /// Serializes the scene for a GeometryChannel; decode restores it.
  common::Bytes encode() const;
  common::Status decode(common::ByteSpan data);

 private:
  mutable std::mutex mutex_;
  TriangleMesh mesh_;
  Color mesh_color_{80, 170, 255};
  std::vector<ParticleSprite> particles_;
  GlyphStyle glyph_style_ = GlyphStyle::kPoint;
  std::vector<std::pair<common::Vec3, common::Vec3>> boxes_;
  Color box_color_{90, 90, 90};
  std::atomic<std::uint64_t> version_{0};
};

// ---------------------------------------------------------------------------
// VizServer-style pipeline
// ---------------------------------------------------------------------------

/// The render server's frame pipeline is built on the shared fan-out
/// primitives (common/fanout.hpp): the render loop only renders and
/// publishes; per-client delta compression and delivery run on the
/// pipeline's shard workers, each client keyed off the frames it actually
/// received. One stalled participant can never stall the render loop or
/// its siblings' frames.
class RemoteRenderServer {
 public:
  struct Options {
    std::string address;
    int width = 320;
    int height = 240;
    /// Render-loop poll period for scene/camera changes (also the admission
    /// latency bound for a new connection).
    common::Duration frame_period = std::chrono::milliseconds(5);
    /// Per-send deadline on a pipeline worker. Bounds how long one wedged
    /// participant can occupy its shard per pass; the render loop itself
    /// never blocks on a send. A client that cannot take a frame within
    /// this bound misses that frame (supersedable data) — correct for
    /// frames, so keep it tight.
    common::Duration send_deadline = std::chrono::milliseconds(100);
    /// Pipeline worker shards; 0 picks a default from
    /// hardware_concurrency, at least 2 so a wedged client never has every
    /// sibling behind it (the workers block on sends, not the CPU, so
    /// shards beyond the core count still isolate).
    std::size_t pipeline_shards = 0;
    /// Per-client outbound queue bound, in frames. Frames are supersedable
    /// (kDropOldest): a shallow queue keeps delivered frames fresh — a
    /// slow client is at most this many frames stale, and under overload
    /// everyone degrades to freshest-wins rather than a growing backlog.
    /// (View acks are control class and are never evicted.)
    std::size_t queue_capacity = 2;
  };

  struct Stats {
    std::uint64_t frames_rendered = 0;
    std::uint64_t frames_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t view_events = 0;
    /// Render-loop wakeups. Every iteration either renders or sleeps a
    /// frame period, so this stays near elapsed/frame_period +
    /// frames_rendered; a value far beyond that bound means the loop is
    /// spinning (the historical failure mode: polling accept with an
    /// expired deadline every pass).
    std::uint64_t render_loop_iterations = 0;
    /// Per-shard pipeline counters: queue depths/high-water, per-class
    /// delivery and drop counts, disconnects.
    common::FanoutStats fanout;
  };

  static common::Result<std::unique_ptr<RemoteRenderServer>> start(
      net::Network& net, std::shared_ptr<SceneStore> scene,
      const Options& options);
  ~RemoteRenderServer();
  RemoteRenderServer(const RemoteRenderServer&) = delete;
  RemoteRenderServer& operator=(const RemoteRenderServer&) = delete;
  void stop();

  /// Bound address (resolves kernel-assigned ports for TCP listeners).
  std::string address() const { return listener_->address(); }

  std::size_t client_count() const;
  /// Threads owned regardless of client count: render loop, pipeline
  /// shards, and the connection host's pollers. View-event ingress rides
  /// the hosted readiness path, so clients add no threads.
  std::size_t service_threads() const;
  /// Snapshot of the pipeline counters (shim over the metrics registry).
  Stats stats() const;
  /// The service's metrics registry (source of truth for the counters).
  obs::Registry& metrics() noexcept { return metrics_; }

 private:
  /// One rendered frame, published once and shared by every client's
  /// pipeline queue. The render loop also encodes the common case once: a
  /// delta against the immediately preceding frame, valid for every client
  /// whose delivered baseline is that frame (in steady state, all of
  /// them). Clients whose history diverged — fresh joins, drops, failed
  /// sends — get a per-client encode on their pipeline worker instead.
  struct RenderedFrame {
    std::shared_ptr<const Image> image;
    std::uint64_t seq = 0;
    /// Fully encoded kTagFrame wire message carrying the delta of `image`
    /// vs. frame seq-1; empty when seq is the first frame.
    common::Bytes wire_from_prev;
    /// Compressed payload size inside wire_from_prev (bytes accounting).
    std::size_t delta_payload_bytes = 0;
  };

  /// Per-client delivery lane, owned by the sink closure. Touched only by
  /// the one pipeline worker that serves this client, so the delta
  /// baseline needs no lock.
  struct Lane {
    net::ConnectionPtr conn;
    DeltaEncoder encoder;
    /// Sequence of the last RenderedFrame delivered (0 = none): gates the
    /// shared delta_from_prev fast path.
    std::uint64_t delivered_seq = 0;
  };

  RemoteRenderServer() = default;
  void render_loop(const std::stop_token& st);
  /// Drains the pending-connection queue (fed by the accept pump),
  /// registering each connection with the pipeline (seeded with
  /// `last_published` so a newcomer immediately receives the current
  /// shared view as a key frame; before the first publish there is
  /// nothing to seed, but then the initial camera version is still
  /// unconsumed and the render loop draws the first frame in the same
  /// iteration).
  void admit_clients(
      const std::shared_ptr<const RenderedFrame>& last_published);
  void admit(net::ConnectionPtr conn,
             const std::shared_ptr<const RenderedFrame>& last_published);
  /// Hosted ingress handler: decodes a viewpoint event, applies it to the
  /// shared camera, and enqueues the ack. Runs on a host delivery thread —
  /// enqueue-only, never blocks on a connection.
  void on_view_event(std::uint64_t id, const common::Bytes& message);
  /// Compresses (data frames) and sends one queued item for `lane`'s
  /// client; runs on a pipeline worker.
  common::Status deliver(Lane& lane, const common::OutboundQueue::Item& item);
  /// Batch form: delivers a drained burst, coalescing runs of pre-encoded
  /// frames (view acks, replay seeds) into one vectored send_many; data
  /// frames still pass through deliver() one at a time because each
  /// commit() gates the next delta's baseline on actual delivery.
  common::Status deliver_batch(
      Lane& lane, std::span<const common::OutboundQueue::Item> items,
      std::size_t& delivered);
  /// Deregisters a client from the pipeline and the connection host. Safe
  /// from any thread, including host delivery threads (on_close) and the
  /// pipeline workers (on_dead).
  void drop_client(std::uint64_t id);

  Options options_;
  std::shared_ptr<SceneStore> scene_;
  net::ListenerPtr listener_;
  /// Parks fresh connections in pending_conns_ (event-driven off the
  /// host's pollers when the transport allows); the render loop admits
  /// them at the one point in its iteration where the seeding invariant
  /// holds. Replaces the old expired-deadline accept poll that spun the
  /// render loop.
  std::unique_ptr<net::AcceptPump> accept_pump_;
  std::mutex pending_mutex_;  // guards pending_conns_
  std::deque<net::ConnectionPtr> pending_conns_;
  std::unique_ptr<common::ShardedFanout> pipeline_;
  /// Hosts every client connection for view-event ingress; frame egress
  /// stays on the pipeline because each client needs a per-consumer delta
  /// encode keyed off its own delivery history.
  std::unique_ptr<net::ConnectionHost> host_;
  std::jthread render_thread_;
  mutable std::mutex clients_mutex_;  // guards clients_, ids
  std::map<std::uint64_t, net::ConnectionPtr> clients_;
  std::uint64_t next_client_id_ = 1;
  mutable std::mutex camera_mutex_;  // guards the shared camera + version
  Camera camera_;
  std::uint64_t camera_version_ = 1;
  /// Registry-backed counters; stats() reads them back for the old shape.
  /// Uniform roll-up names (frames_published, frames_delivered) match every
  /// other service; viz-specific rows carry the service prefix.
  obs::Registry metrics_;
  obs::Counter& ctr_frames_rendered_ =
      metrics_.counter("frames_published", "frames");
  obs::Counter& ctr_frames_sent_ =
      metrics_.counter("frames_delivered", "frames");
  obs::Counter& ctr_bytes_sent_ = metrics_.counter("viz_bytes_sent", "bytes");
  obs::Counter& ctr_view_events_ =
      metrics_.counter("viz_view_events", "events");
  obs::Counter& ctr_loop_iterations_ =
      metrics_.counter("viz_render_loop_iterations", "count");
  std::atomic<bool> stopped_{false};
};

class RemoteRenderClient {
 public:
  static common::Result<RemoteRenderClient> connect(net::Network& net,
                                                    const std::string& address,
                                                    common::Deadline deadline);
  /// Wraps an existing connection (lets benchmarks attach a link model).
  static RemoteRenderClient adopt(net::ConnectionPtr conn);

  /// Sends a viewpoint event (shared camera: affects all participants).
  common::Status set_view(const Camera& camera, common::Deadline deadline);

  /// Receives and decodes the next frame.
  common::Result<Image> await_frame(common::Deadline deadline);

  const Image& current_frame() const noexcept { return frame_; }

  /// Camera version from the most recent view ack observed while awaiting
  /// frames (the server acks each applied viewpoint event on a lossless
  /// control frame); 0 before the first ack.
  std::uint64_t last_view_ack() const noexcept { return last_view_ack_; }

  /// Traffic counters of the underlying connection (zeros when detached).
  net::ConnStats stats() const {
    return conn_ ? conn_->stats() : net::ConnStats{};
  }

  void disconnect();

 private:
  net::ConnectionPtr conn_;
  Image frame_;
  std::uint64_t last_view_ack_ = 0;
};

// ---------------------------------------------------------------------------
// Geometry-shipping pipeline (local rendering comparator)
// ---------------------------------------------------------------------------

/// Sends the scene geometry whenever it changes; the receiving side renders
/// locally. One sender, one receiver per channel.
class GeometryChannel {
 public:
  /// Server side: pushes scene snapshots over `conn` whenever `scene`
  /// changes (polled every `period`).
  static std::jthread start_sender(net::ConnectionPtr conn,
                                   std::shared_ptr<SceneStore> scene,
                                   common::Duration period);

  /// Client side: applies a received snapshot to a local SceneStore.
  /// Returns kTimeout when nothing arrived before the deadline.
  static common::Status receive_into(net::Connection& conn, SceneStore& scene,
                                     common::Deadline deadline);
};

}  // namespace cs::viz
