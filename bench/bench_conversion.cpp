// E10 — server-side transparent data conversion (paper section 3.2).
//
// Claim: "Any data conversions (byte order, precision, integer-float) are
// performed transparently by the server, again so that the simulation is
// disturbed as little as possible."
//
// Measured: the sender-side cost of building a data message (flat: a copy
// of native bytes, no conversion ever) and the receiver-side cost of each
// conversion kind, over a payload-size sweep.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "wire/convert.hpp"
#include "wire/message.hpp"

namespace {

using cs::common::ByteOrder;
using cs::common::Bytes;

Bytes random_payload(std::size_t bytes) {
  cs::common::Rng rng{3};
  Bytes out(bytes);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_below(256));
  return out;
}

/// Sender side: the cost the *simulation* pays, independent of what the
/// receiver needs.
void BM_SenderEncode(benchmark::State& state) {
  const std::size_t count = static_cast<std::size_t>(state.range(0)) / 8;
  std::vector<double> values(count, 1.25);
  for (auto _ : state) {
    auto m = cs::wire::make_data_message(1, values.data(), values.size());
    benchmark::DoNotOptimize(m.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(count * 8));
  state.SetLabel("sender/native-copy");
}

enum class Kind { kSameType, kByteswap, kWiden, kIntToFloat };

void BM_ReceiverConvert(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const auto kind = static_cast<Kind>(state.range(1));
  const Bytes payload = random_payload(bytes);

  cs::wire::ScalarType src_type{}, dst_type{};
  ByteOrder order = cs::common::native_order();
  std::size_t count = 0;
  const char* label = "";
  switch (kind) {
    case Kind::kSameType:
      src_type = dst_type = cs::wire::ScalarType::kFloat64;
      count = bytes / 8;
      label = "same-type (memcpy path)";
      break;
    case Kind::kByteswap:
      src_type = dst_type = cs::wire::ScalarType::kFloat64;
      order = cs::common::native_order() == ByteOrder::kBig
                  ? ByteOrder::kLittle
                  : ByteOrder::kBig;
      count = bytes / 8;
      label = "byte-order swap";
      break;
    case Kind::kWiden:
      src_type = cs::wire::ScalarType::kFloat32;
      dst_type = cs::wire::ScalarType::kFloat64;
      count = bytes / 4;
      label = "float32 -> float64";
      break;
    case Kind::kIntToFloat:
      src_type = cs::wire::ScalarType::kInt32;
      dst_type = cs::wire::ScalarType::kFloat64;
      count = bytes / 4;
      label = "int32 -> float64";
      break;
  }
  Bytes out(count * cs::wire::size_of(dst_type));
  for (auto _ : state) {
    auto s = cs::wire::convert_elements(src_type, order, payload, count,
                                        dst_type, out.data());
    if (!s.is_ok()) {
      state.SkipWithError("conversion failed");
      return;
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  state.SetLabel(label);
}

}  // namespace

BENCHMARK(BM_SenderEncode)
    ->Range(1 << 10, 16 << 20)
    ->MinTime(0.2);
BENCHMARK(BM_ReceiverConvert)
    ->ArgsProduct({{1 << 10, 1 << 16, 1 << 20, 16 << 20}, {0, 1, 2, 3}})
    ->MinTime(0.2);

BENCHMARK_MAIN();
