#include "visit/control.hpp"

#include "common/strings.hpp"
#include "visit/server.hpp"
#include "visit/tags.hpp"

namespace cs::visit {

using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

Result<std::unique_ptr<ControlServer>> ControlServer::start(
    net::Network& net, const Options& options) {
  auto listener = net.listen(options.address);
  if (!listener.is_ok()) return listener.status();
  auto host = net::ConnectionHost::start(
      net::ConnectionHost::Options{.queue_capacity = options.queue_capacity});
  if (!host.is_ok()) return host.status();
  std::unique_ptr<ControlServer> server{new ControlServer};
  server->options_ = options;
  server->listener_ = std::move(listener).value();
  server->host_ = std::move(host).value();
  ControlServer* self = server.get();
  // Thread-mode accept on purpose: the password handshake and role read
  // block, which a poller thread must never do.
  server->accept_pump_ = std::make_unique<net::AcceptPump>(
      *server->listener_,
      [self](net::ConnectionPtr conn) { self->handle_conn(std::move(conn)); });
  return server;
}

ControlServer::~ControlServer() { stop(); }

void ControlServer::stop() {
  if (stopped_.exchange(true)) return;
  // Uniform teardown order: close the listener, stop the accept pump so no
  // late arrival can register, stop the host (joins every delivery thread —
  // after this no on_message can run), then clear the registry race-free.
  if (listener_) listener_->close();
  if (accept_pump_) accept_pump_->stop();
  if (host_) host_->stop();
  std::scoped_lock lock(mutex_);
  for (auto& [id, p] : participants_) p.conn->close();
  participants_.clear();
}

std::size_t ControlServer::participant_count() const {
  std::scoped_lock lock(mutex_);
  return participants_.size();
}

std::size_t ControlServer::service_threads() const {
  return (accept_pump_ && !accept_pump_->event_driven() ? 1 : 0) +
         (host_ ? host_->thread_count() : 0);
}

ControlServer::Stats ControlServer::stats() const {
  // Shim over the registry-backed counters (see control.hpp).
  Stats out;
  out.updates_relayed = ctr_updates_relayed_.value();
  out.updates_rejected = ctr_updates_rejected_.value();
  return out;
}

void ControlServer::handle_conn(net::ConnectionPtr conn) {
  const auto deadline = Deadline::after(std::chrono::seconds(2));
  if (!handshake_accept(*conn, options_.password, deadline, "joined")
           .or_log("visit.control")) {
    return;
  }
  // The participant's first message declares its role.
  auto raw = conn->recv(deadline);
  if (!raw.is_ok()) return;
  auto m = wire::Message::decode(raw.value());
  if (!m.is_ok() || m.value().header.tag != kTagRole) return;
  auto body = wire::extract_string(m.value());
  if (!body.is_ok()) return;
  const bool actor = (body.value() == "actor");

  std::uint64_t id = 0;
  {
    std::scoped_lock lock(mutex_);
    if (stopped_.load()) {  // raced with stop(): don't leak a live conn
      conn->close();
      return;
    }
    id = next_id_++;
    participants_.emplace(id, Participant{conn, actor});
  }
  // Register with the host *after* the participant exists, so the first
  // delivered message always finds it. The host owns delivery from here on.
  const bool hosted = host_->add(
      id, conn,
      [this, actor](std::uint64_t pid, common::Bytes message) {
        on_message(pid, actor, message);
      },
      [this](std::uint64_t pid, const Status&) { remove(pid); });
  if (!hosted) {  // raced with stop(): the host refused, unwind
    remove(id);
  }
}

void ControlServer::on_message(std::uint64_t id, bool actor,
                               const common::Bytes& message) {
  auto m = wire::Message::decode(message);
  if (!m.is_ok() || m.value().header.tag == kTagBye) {
    remove(id);
    return;
  }
  if (m.value().header.tag != kTagControlData) return;
  if (!actor) {
    ctr_updates_rejected_.add();
    return;
  }
  ctr_updates_relayed_.add();
  // Relay to everyone else. Drop-oldest keeps the old best-effort contract:
  // a participant that cannot keep up misses stale updates instead of
  // stalling the fan-out (the next view matrix supersedes the missed one).
  host_->publish_except(
      id, common::OutboundQueue::Item{common::make_frame(message),
                                      common::OverflowPolicy::kDropOldest,
                                      nullptr});
}

void ControlServer::remove(std::uint64_t id) {
  {
    std::scoped_lock lock(mutex_);
    auto it = participants_.find(id);
    if (it == participants_.end()) return;
    it->second.conn->close();
    participants_.erase(it);
  }
  host_->remove(id);
}

Result<ControlClient> ControlClient::connect(net::Network& net,
                                             const std::string& address,
                                             const std::string& password,
                                             const std::string& role,
                                             Deadline deadline) {
  auto conn = net.connect(address, deadline);
  if (!conn.is_ok()) return conn.status();
  ControlClient client;
  client.conn_ = std::move(conn).value();
  const auto hello = wire::make_control_message(
      kTagHello, std::string("HELLO ") + kProtocolVersion + " " + password);
  if (Status s = client.conn_->send(hello.encode(), deadline); !s.is_ok()) {
    return s;
  }
  auto raw = client.conn_->recv(deadline);
  if (!raw.is_ok()) return raw.status();
  auto ack = wire::Message::decode(raw.value());
  if (!ack.is_ok()) return ack.status();
  auto body = wire::extract_string(ack.value());
  if (!body.is_ok()) return body.status();
  if (!common::starts_with(body.value(), "OK")) {
    client.conn_->close();
    return Status{StatusCode::kPermissionDenied, body.value()};
  }
  if (Status s = client.conn_->send(
          wire::make_control_message(kTagRole, role).encode(), deadline);
      !s.is_ok()) {
    return s;
  }
  return client;
}

Status ControlClient::publish(std::string_view control_data,
                              Deadline deadline) {
  if (!connected()) return Status{StatusCode::kClosed, "not connected"};
  return conn_->send(
      wire::make_control_message(kTagControlData, control_data).encode(),
      deadline);
}

Result<std::string> ControlClient::receive(Deadline deadline) {
  if (!connected()) return Status{StatusCode::kClosed, "not connected"};
  for (;;) {
    auto raw = conn_->recv(deadline);
    if (!raw.is_ok()) return raw.status();
    auto m = wire::Message::decode(raw.value());
    if (!m.is_ok()) return m.status();
    if (m.value().header.tag == kTagControlData) {
      return wire::extract_string(m.value());
    }
  }
}

void ControlClient::disconnect() {
  if (conn_ && conn_->is_open()) {
    (void)conn_->send(wire::make_control_message(kTagBye, "").encode(),
                      Deadline::after(std::chrono::milliseconds(100)));
    conn_->close();
  }
  conn_.reset();
}

}  // namespace cs::visit
