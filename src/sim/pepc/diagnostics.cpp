#include "sim/pepc/diagnostics.hpp"

#include <cmath>

namespace cs::pepc {

using common::Vec3;

namespace {

/// CIC deposition: distributes `weight` of a particle at `pos` onto the 8
/// surrounding cell centers, accumulating into `field`. Particles outside
/// the mesh (beyond half a cell of the boundary) are dropped.
void deposit_cic(const DiagnosticMesh& mesh, const Vec3& pos, double weight,
                 std::vector<float>& field) {
  const Vec3 d = mesh.spacing();
  // Position in "cell-center coordinates": cell i's center sits at i.
  const double cx = (pos.x - mesh.lo.x) / d.x - 0.5;
  const double cy = (pos.y - mesh.lo.y) / d.y - 0.5;
  const double cz = (pos.z - mesh.lo.z) / d.z - 0.5;
  const int ix = static_cast<int>(std::floor(cx));
  const int iy = static_cast<int>(std::floor(cy));
  const int iz = static_cast<int>(std::floor(cz));
  const double fx = cx - ix;
  const double fy = cy - iy;
  const double fz = cz - iz;
  for (int oz = 0; oz < 2; ++oz) {
    for (int oy = 0; oy < 2; ++oy) {
      for (int ox = 0; ox < 2; ++ox) {
        const int x = ix + ox;
        const int y = iy + oy;
        const int z = iz + oz;
        if (x < 0 || y < 0 || z < 0 || x >= mesh.nx || y >= mesh.ny ||
            z >= mesh.nz) {
          continue;
        }
        const double w = (ox ? fx : 1.0 - fx) * (oy ? fy : 1.0 - fy) *
                         (oz ? fz : 1.0 - fz);
        field[(static_cast<std::size_t>(z) * mesh.ny + y) * mesh.nx + x] +=
            static_cast<float>(weight * w);
      }
    }
  }
}

}  // namespace

std::vector<float> charge_density(const DiagnosticMesh& mesh,
                                  std::span<const Particle> particles) {
  std::vector<float> field(mesh.cells(), 0.0f);
  for (const auto& p : particles) {
    deposit_cic(mesh, p.position(), p.charge, field);
  }
  const Vec3 d = mesh.spacing();
  const float inv_volume = static_cast<float>(1.0 / (d.x * d.y * d.z));
  for (auto& v : field) v *= inv_volume;
  return field;
}

CurrentDensity current_density(const DiagnosticMesh& mesh,
                               std::span<const Particle> particles) {
  CurrentDensity j;
  j.jx.assign(mesh.cells(), 0.0f);
  j.jy.assign(mesh.cells(), 0.0f);
  j.jz.assign(mesh.cells(), 0.0f);
  for (const auto& p : particles) {
    deposit_cic(mesh, p.position(), p.charge * p.vel[0], j.jx);
    deposit_cic(mesh, p.position(), p.charge * p.vel[1], j.jy);
    deposit_cic(mesh, p.position(), p.charge * p.vel[2], j.jz);
  }
  const Vec3 d = mesh.spacing();
  const float inv_volume = static_cast<float>(1.0 / (d.x * d.y * d.z));
  for (auto* component : {&j.jx, &j.jy, &j.jz}) {
    for (auto& v : *component) v *= inv_volume;
  }
  return j;
}

std::vector<float> electric_field_magnitude(const DiagnosticMesh& mesh,
                                            const Octree& tree) {
  std::vector<float> field(mesh.cells(), 0.0f);
  for (int z = 0; z < mesh.nz; ++z) {
    for (int y = 0; y < mesh.ny; ++y) {
      for (int x = 0; x < mesh.nx; ++x) {
        const Vec3 e = tree.field_at(mesh.cell_center(x, y, z));
        field[(static_cast<std::size_t>(z) * mesh.ny + y) * mesh.nx + x] =
            static_cast<float>(norm(e));
      }
    }
  }
  return field;
}

}  // namespace cs::pepc
