#include "wire/message.hpp"

namespace cs::wire {

using common::ByteOrder;
using common::Bytes;
using common::ByteSpan;
using common::Result;
using common::Status;
using common::StatusCode;

void encode_header(const MessageHeader& header, Bytes& out) {
  out.reserve(out.size() + MessageHeader::kWireSize);
  common::append_uint<std::uint32_t>(out, MessageHeader::kMagic,
                                     ByteOrder::kBig);
  out.push_back(MessageHeader::kVersion);
  out.push_back(static_cast<std::uint8_t>(header.kind));
  out.push_back(static_cast<std::uint8_t>(header.elem_type));
  out.push_back(static_cast<std::uint8_t>(header.payload_order));
  common::append_uint<std::uint32_t>(out, header.tag, ByteOrder::kBig);
  common::append_uint<std::uint64_t>(out, header.count, ByteOrder::kBig);
  common::append_uint<std::uint64_t>(out, header.payload_bytes,
                                     ByteOrder::kBig);
}

Result<MessageHeader> decode_header(ByteSpan in) {
  if (in.size() < MessageHeader::kWireSize) {
    return Status{StatusCode::kProtocolError, "header truncated"};
  }
  const auto magic = common::read_uint<std::uint32_t>(in, ByteOrder::kBig);
  if (magic != MessageHeader::kMagic) {
    return Status{StatusCode::kProtocolError, "bad magic"};
  }
  if (in[4] != MessageHeader::kVersion) {
    return Status{StatusCode::kProtocolError,
                  "unsupported version " + std::to_string(in[4])};
  }
  if (!is_valid_message_kind(in[5])) {
    return Status{StatusCode::kProtocolError, "bad message kind"};
  }
  if (!is_valid_scalar_type(in[6])) {
    return Status{StatusCode::kProtocolError, "bad element type"};
  }
  if (in[7] > 1) {
    return Status{StatusCode::kProtocolError, "bad byte order flag"};
  }
  MessageHeader h;
  h.kind = static_cast<MessageKind>(in[5]);
  h.elem_type = static_cast<ScalarType>(in[6]);
  h.payload_order = static_cast<ByteOrder>(in[7]);
  h.tag = common::read_uint<std::uint32_t>(in.subspan(8), ByteOrder::kBig);
  h.count = common::read_uint<std::uint64_t>(in.subspan(12), ByteOrder::kBig);
  h.payload_bytes =
      common::read_uint<std::uint64_t>(in.subspan(20), ByteOrder::kBig);
  if (h.payload_bytes != h.count * size_of(h.elem_type)) {
    return Status{StatusCode::kProtocolError,
                  "payload size inconsistent with element count"};
  }
  return h;
}

Bytes Message::encode() const {
  Bytes out;
  out.reserve(MessageHeader::kWireSize + payload.size());
  encode_header(header, out);
  common::append_bytes(out, payload);
  return out;
}

Result<Message> Message::decode(ByteSpan frame) {
  auto header = decode_header(frame);
  if (!header.is_ok()) return header.status();
  Message m;
  m.header = header.value();
  const ByteSpan rest = frame.subspan(MessageHeader::kWireSize);
  if (rest.size() != m.header.payload_bytes) {
    return Status{StatusCode::kProtocolError,
                  "frame size does not match declared payload"};
  }
  m.payload.assign(rest.begin(), rest.end());
  return m;
}

Message make_string_message(std::uint32_t tag, std::string_view text) {
  return make_data_message(tag, text.data(), text.size());
}

Message make_request_message(std::uint32_t tag) {
  Message m;
  m.header.kind = MessageKind::kRequest;
  m.header.tag = tag;
  m.header.elem_type = ScalarType::kUInt8;
  m.header.count = 0;
  m.header.payload_bytes = 0;
  return m;
}

Message make_control_message(std::uint32_t tag, std::string_view body) {
  Message m = make_string_message(tag, body);
  m.header.kind = MessageKind::kControl;
  return m;
}

Result<std::string> extract_string(const Message& m) {
  const auto t = m.header.elem_type;
  if (t != ScalarType::kChar && t != ScalarType::kInt8 &&
      t != ScalarType::kUInt8) {
    return Status{StatusCode::kInvalidArgument,
                  "payload is not a character array"};
  }
  return std::string{reinterpret_cast<const char*>(m.payload.data()),
                     m.payload.size()};
}

}  // namespace cs::wire
