#include "obs/registry.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace cs::obs {

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

void Snapshot::merge(const Snapshot& other) {
  auto find_counter = [this](const std::string& name) -> CounterSample* {
    for (auto& c : counters) {
      if (c.name == name) return &c;
    }
    return nullptr;
  };
  for (const auto& c : other.counters) {
    if (CounterSample* mine = find_counter(c.name)) {
      mine->value += c.value;
    } else {
      counters.push_back(c);
    }
  }
  auto find_gauge = [this](const std::string& name) -> GaugeSample* {
    for (auto& g : gauges) {
      if (g.name == name) return &g;
    }
    return nullptr;
  };
  for (const auto& g : other.gauges) {
    if (GaugeSample* mine = find_gauge(g.name)) {
      mine->value += g.value;
    } else {
      gauges.push_back(g);
    }
  }
  auto find_timer = [this](const std::string& name) -> TimerSample* {
    for (auto& t : timers) {
      if (t.name == name) return &t;
    }
    return nullptr;
  };
  for (const auto& t : other.timers) {
    if (TimerSample* mine = find_timer(t.name)) {
      mine->hist.merge(t.hist);
    } else {
      timers.push_back(t);
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(counters.begin(), counters.end(), by_name);
  std::sort(gauges.begin(), gauges.end(), by_name);
  std::sort(timers.begin(), timers.end(), by_name);
}

std::vector<std::pair<std::string, double>> Snapshot::flatten() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counters.size() + gauges.size() + timers.size() * 4);
  for (const auto& c : counters) {
    out.emplace_back(c.name, static_cast<double>(c.value));
  }
  for (const auto& g : gauges) {
    out.emplace_back(g.name, g.value);
  }
  for (const auto& t : timers) {
    out.emplace_back(t.name + "_count", static_cast<double>(t.hist.count()));
    out.emplace_back(t.name + "_p50_ns", static_cast<double>(t.hist.p50()));
    out.emplace_back(t.name + "_p95_ns", static_cast<double>(t.hist.p95()));
    out.emplace_back(t.name + "_p99_ns", static_cast<double>(t.hist.p99()));
    out.emplace_back(t.name + "_max_ns", static_cast<double>(t.hist.max()));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Counter& Registry::counter(const std::string& name, const std::string& unit) {
  std::scoped_lock lock(mutex_);
  auto& entry = counters_[name];
  if (entry.owned == nullptr && !entry.fn) {
    entry.unit = unit;
    entry.owned = std::make_unique<Counter>();
  }
  if (entry.owned == nullptr) {
    // A callback already holds this name; give the caller a live counter
    // anyway (the callback keeps serving the snapshot). Never returns null
    // on a name collision — hot paths don't check.
    entry.owned = std::make_unique<Counter>();
  }
  return *entry.owned;
}

Gauge& Registry::gauge(const std::string& name, const std::string& unit) {
  std::scoped_lock lock(mutex_);
  auto& entry = gauges_[name];
  if (entry.owned == nullptr) {
    if (!entry.fn) entry.unit = unit;
    entry.owned = std::make_unique<Gauge>();
  }
  return *entry.owned;
}

Timer& Registry::timer(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& entry = timers_[name];
  if (entry.owned == nullptr) {
    entry.owned = std::make_unique<Timer>();
  }
  return *entry.owned;
}

void Registry::counter_fn(const std::string& name, const std::string& unit,
                          std::function<std::uint64_t()> fn) {
  std::scoped_lock lock(mutex_);
  auto& entry = counters_[name];
  entry.unit = unit;
  entry.fn = std::move(fn);
  entry.owned.reset();
}

void Registry::gauge_fn(const std::string& name, const std::string& unit,
                        std::function<double()> fn) {
  std::scoped_lock lock(mutex_);
  auto& entry = gauges_[name];
  entry.unit = unit;
  entry.fn = std::move(fn);
  entry.owned.reset();
}

void Registry::timer_fn(const std::string& name,
                        std::function<common::Histogram()> fn) {
  std::scoped_lock lock(mutex_);
  auto& entry = timers_[name];
  entry.fn = std::move(fn);
  entry.owned.reset();
}

Snapshot Registry::snapshot() const {
  // Copy the registration table under the lock, then read instruments and
  // evaluate callbacks outside it: a callback is free to take service locks
  // (fanout shards, poller mutexes) without ordering against registration.
  struct PendingCounter {
    std::string name, unit;
    const Counter* owned;
    std::function<std::uint64_t()> fn;
  };
  struct PendingGauge {
    std::string name, unit;
    const Gauge* owned;
    std::function<double()> fn;
  };
  struct PendingTimer {
    std::string name;
    const Timer* owned;
    std::function<common::Histogram()> fn;
  };
  std::vector<PendingCounter> pc;
  std::vector<PendingGauge> pg;
  std::vector<PendingTimer> pt;
  {
    std::scoped_lock lock(mutex_);
    pc.reserve(counters_.size());
    for (const auto& [name, e] : counters_) {
      pc.push_back({name, e.unit, e.owned.get(), e.fn});
    }
    pg.reserve(gauges_.size());
    for (const auto& [name, e] : gauges_) {
      pg.push_back({name, e.unit, e.owned.get(), e.fn});
    }
    pt.reserve(timers_.size());
    for (const auto& [name, e] : timers_) {
      pt.push_back({name, e.owned.get(), e.fn});
    }
  }
  Snapshot snap;
  snap.counters.reserve(pc.size());
  for (const auto& p : pc) {
    std::uint64_t v = p.owned != nullptr ? p.owned->value() : 0;
    if (p.fn) v += p.fn();
    snap.counters.push_back({p.name, p.unit, v});
  }
  snap.gauges.reserve(pg.size());
  for (const auto& p : pg) {
    double v = p.owned != nullptr ? static_cast<double>(p.owned->value()) : 0.0;
    if (p.fn) v += p.fn();
    snap.gauges.push_back({p.name, p.unit, v});
  }
  snap.timers.reserve(pt.size());
  for (const auto& p : pt) {
    common::Histogram h;
    if (p.owned != nullptr) h = p.owned->snapshot();
    if (p.fn) h.merge(p.fn());
    snap.timers.push_back({p.name, h});
  }
  // std::map iteration is already name-sorted; the sections stay sorted.
  return snap;
}

// ---------------------------------------------------------------------------
// Text exposition
// ---------------------------------------------------------------------------

namespace {

void append_value(std::string& out, double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    std::snprintf(buf, sizeof buf, "%" PRId64,
                  static_cast<std::int64_t>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

}  // namespace

std::string to_text(const Snapshot& snapshot) {
  std::string out;
  out.reserve(256 + snapshot.counters.size() * 48 +
              snapshot.gauges.size() * 48 + snapshot.timers.size() * 320);
  for (const auto& c : snapshot.counters) {
    out += "# TYPE " + c.name + " counter\n";
    out += "# UNIT " + c.name + " " + c.unit + "\n";
    out += c.name + " ";
    append_u64(out, c.value);
    out += "\n";
  }
  for (const auto& g : snapshot.gauges) {
    out += "# TYPE " + g.name + " gauge\n";
    out += "# UNIT " + g.name + " " + g.unit + "\n";
    out += g.name + " ";
    append_value(out, g.value);
    out += "\n";
  }
  for (const auto& t : snapshot.timers) {
    out += "# TYPE " + t.name + " summary\n";
    out += "# UNIT " + t.name + " ns\n";
    const common::Histogram& h = t.hist;
    const std::pair<const char*, std::uint64_t> rows[] = {
        {"_count", h.count()},     {"_sum_ns", h.sum()},
        {"_min_ns", h.min()},      {"_max_ns", h.max()},
        {"_p50_ns", h.p50()},      {"_p95_ns", h.p95()},
        {"_p99_ns", h.p99()},      {"_p999_ns", h.p999()},
    };
    for (const auto& [suffix, value] : rows) {
      out += t.name + suffix + " ";
      append_u64(out, value);
      out += "\n";
    }
  }
  return out;
}

std::vector<std::pair<std::string, double>> parse_text(std::string_view text) {
  std::vector<std::pair<std::string, double>> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line.front() == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string_view::npos || space == 0) continue;
    const std::string name(line.substr(0, space));
    const std::string value_text(line.substr(space + 1));
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str()) continue;  // not a number
    out.emplace_back(name, value);
  }
  return out;
}

}  // namespace cs::obs
