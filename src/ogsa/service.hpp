// OGSI-style grid services.
//
// The paper (sections 2.2-2.3) runs its steering as "a steering service
// which is fully compliant with OGSI and with the proposed OGSA
// architecture", hosted in the lightweight OGSI::Lite environment. The OGSI
// essentials modelled here are the ones the steering architecture (Fig. 2)
// actually uses:
//   * service data elements (SDEs) — typed-as-text key/value descriptors a
//     client can query before binding ("findServiceData"),
//   * soft-state lifetime — a termination time after which the service is
//     dead and the registry sweeps it,
//   * a uniform invocation interface ("portType"), used by the text RPC in
//     ogsa/host.hpp.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"

namespace cs::ogsa {

/// Grid Service Handle: globally unique name, e.g.
/// "ogsi://realitygrid/steering/lbm-1".
using Handle = std::string;

class GridService {
 public:
  explicit GridService(Handle handle) : handle_(std::move(handle)) {}
  virtual ~GridService() = default;

  const Handle& handle() const noexcept { return handle_; }

  // --- service data ---------------------------------------------------

  void set_service_data(const std::string& name, std::string value);

  /// Value of one SDE; kNotFound when absent.
  common::Result<std::string> find_service_data(const std::string& name) const;

  /// All SDEs whose name matches the glob pattern.
  std::vector<std::pair<std::string, std::string>> query_service_data(
      const std::string& pattern) const;

  // --- lifetime (OGSI soft state) --------------------------------------

  /// Sets the termination time `lifetime` from now.
  void request_termination_after(common::Duration lifetime);

  /// Keeps the service alive for another `lifetime` (client keep-alive).
  void keep_alive(common::Duration lifetime) {
    request_termination_after(lifetime);
  }

  /// Immediate destruction.
  void destroy();

  bool is_alive() const;

  // --- invocation ------------------------------------------------------

  /// Uniform operation entry point. Default implementation serves
  /// "find-service-data <name>"; subclasses extend the vocabulary.
  virtual common::Result<std::string> invoke(
      const std::string& operation, const std::vector<std::string>& args);

 private:
  Handle handle_;
  mutable std::mutex mutex_;
  std::map<std::string, std::string> service_data_;
  common::TimePoint termination_ = common::TimePoint::max();
};

using ServicePtr = std::shared_ptr<GridService>;

}  // namespace cs::ogsa
