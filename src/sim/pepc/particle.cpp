#include "sim/pepc/particle.hpp"

#include <cstddef>

namespace cs::pepc {

wire::StructDesc particle_struct_desc() {
  wire::StructDesc d{"pepc.particle", sizeof(Particle)};
  d.add_field("pos", wire::ScalarType::kFloat64, 3, offsetof(Particle, pos))
      .add_field("vel", wire::ScalarType::kFloat64, 3, offsetof(Particle, vel))
      .add_field("charge", wire::ScalarType::kFloat64, 1,
                 offsetof(Particle, charge))
      .add_field("mass", wire::ScalarType::kFloat64, 1,
                 offsetof(Particle, mass))
      .add_field("proc", wire::ScalarType::kInt32, 1, offsetof(Particle, proc))
      .add_field("label", wire::ScalarType::kInt64, 1,
                 offsetof(Particle, label));
  return d;
}

wire::StructDesc domain_box_struct_desc() {
  wire::StructDesc d{"pepc.domain", sizeof(DomainBox)};
  d.add_field("lo", wire::ScalarType::kFloat64, 3, offsetof(DomainBox, lo))
      .add_field("hi", wire::ScalarType::kFloat64, 3, offsetof(DomainBox, hi))
      .add_field("proc", wire::ScalarType::kInt32, 1, offsetof(DomainBox, proc))
      .add_field("count", wire::ScalarType::kInt32, 1,
                 offsetof(DomainBox, count));
  return d;
}

}  // namespace cs::pepc
