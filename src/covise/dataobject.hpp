// COVISE-style data objects.
//
// "COVISE, in contrast to other visualization systems, uses the notion of
// data objects instead of relying on a pure data flow paradigm. The
// underlying data management takes care of assigning system-wide unique
// names to data generated during a session in the shared data spaces."
// (paper section 4.5). A DataObject is immutable once published: modules
// share it by shared_ptr inside one host (the shared-memory SDS) and by
// CRB transfer between hosts.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "common/vec3.hpp"
#include "viz/image.hpp"
#include "viz/mesh.hpp"

namespace cs::covise {

/// Scalar values on a uniform grid ("grids on which dependent data is
/// defined" — here grid + data in one object for brevity).
struct UniformGridData {
  int nx = 0, ny = 0, nz = 0;
  common::Vec3 origin{0, 0, 0};
  double spacing = 1.0;
  std::vector<float> values;  ///< size nx*ny*nz, x-fastest

  viz::ScalarField field() const noexcept {
    return viz::ScalarField{nx, ny, nz, values, origin, spacing};
  }
};

/// Renderable geometry produced by post-processing modules.
struct GeometryData {
  viz::TriangleMesh mesh;
  viz::Color color{200, 200, 200};
};

/// Rendered frame produced by a renderer module (sink output).
struct ImageData {
  viz::Image image;
};

using Payload =
    std::variant<std::monostate, UniformGridData, GeometryData, ImageData,
                 std::string>;

class DataObject {
 public:
  DataObject() = default;
  DataObject(std::string name, Payload payload)
      : name_(std::move(name)), payload_(std::move(payload)) {}

  /// System-wide unique name, e.g. "session1/IsoSurface_2/geometry/7".
  const std::string& name() const noexcept { return name_; }

  const Payload& payload() const noexcept { return payload_; }

  template <typename T>
  const T* as() const noexcept {
    return std::get_if<T>(&payload_);
  }

  /// Named attributes ("data objects have attributes such as names and
  /// lifetime"); COLOR, PART, TIMESTEP and friends in real COVISE.
  void set_attribute(const std::string& key, std::string value) {
    attributes_[key] = std::move(value);
  }
  const std::map<std::string, std::string>& attributes() const noexcept {
    return attributes_;
  }

  /// Approximate in-memory size (CRB accounting).
  std::size_t byte_size() const;

  /// Wire form for CRB transfer between hosts.
  common::Bytes encode() const;
  static common::Result<DataObject> decode(common::ByteSpan data);

 private:
  std::string name_;
  Payload payload_;
  std::map<std::string, std::string> attributes_;
};

using DataObjectPtr = std::shared_ptr<const DataObject>;

}  // namespace cs::covise
