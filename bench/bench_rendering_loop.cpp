// E1 — the rendering feedback loop (paper section 4.2).
//
// Claim: "When a user moves, the whole scene content has to be redrawn ...
// with at least 10 to 15 updates per second. In case of a remote rendering
// the new viewer position first has to be transmitted to the rendering side
// where the new image is generated, compressed, transmitted back,
// decompressed and finally displayed. Just taking the communication delays
// ... into account, these already exceed the required turn around time.
// Therefore typical distributed virtual environments work with local scene
// graphs using local graphics hardware."
//
// Measured: one full view-change round trip of the VizServer-style remote
// pipeline under LAN / European WAN / transatlantic links, against a local
// scene-graph redraw of the same scene. The fps counter makes the 10-15
// updates/s budget directly comparable.
#include <benchmark/benchmark.h>

#include <cmath>

#include "net/inproc.hpp"
#include "viz/isosurface.hpp"
#include "viz/remote.hpp"

namespace {

using namespace std::chrono_literals;
using cs::common::Deadline;
using cs::common::Vec3;

cs::viz::TriangleMesh sphere_mesh(int n) {
  std::vector<float> values(static_cast<std::size_t>(n) * n * n);
  const double c = (n - 1) / 2.0;
  for (int z = 0; z < n; ++z) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        values[(static_cast<std::size_t>(z) * n + y) * n + x] =
            static_cast<float>(0.35 * n -
                               std::sqrt((x - c) * (x - c) + (y - c) * (y - c) +
                                         (z - c) * (z - c)));
      }
    }
  }
  cs::viz::ScalarField field{n, n, n, values, {-1, -1, -1}, 2.0 / (n - 1)};
  return cs::viz::extract_isosurface(field, 0.0f);
}

cs::net::LinkModel link_for(int kind) {
  switch (kind) {
    case 1: return cs::net::LinkModel::lan();
    case 2: return cs::net::LinkModel::wan_europe();
    case 3: return cs::net::LinkModel::wan_transatlantic();
    default: return cs::net::LinkModel::perfect();
  }
}

const char* link_name(int kind) {
  switch (kind) {
    case 1: return "lan";
    case 2: return "wan_eu";
    case 3: return "wan_us";
    default: return "perfect";
  }
}

/// Remote loop: viewpoint event -> render -> compress -> ship -> decode.
void BM_RemoteRenderLoop(benchmark::State& state) {
  const int grid = static_cast<int>(state.range(0));
  const int link_kind = static_cast<int>(state.range(1));

  cs::net::InProcNetwork net;
  auto scene = std::make_shared<cs::viz::SceneStore>();
  scene->set_mesh(sphere_mesh(grid), {90, 170, 255});
  const std::string address =
      "vizsrv:" + std::to_string(grid) + ":" + std::to_string(link_kind);
  auto server = cs::viz::RemoteRenderServer::start(
      net, scene, {address, 320, 240, 1ms});
  if (!server.is_ok()) {
    state.SkipWithError("server start failed");
    return;
  }
  cs::net::ConnectOptions opts;
  opts.link = link_for(link_kind);
  auto conn = net.connect(address, Deadline::after(5s), opts);
  if (!conn.is_ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  auto client = cs::viz::RemoteRenderClient::adopt(conn.value());

  cs::viz::Camera camera;
  double angle = 0.0;
  // Prime: first frame is a key frame. The server also pushes one frame at
  // accept time; drain everything queued so the measured loop is a true
  // round trip rather than a pipeline one frame deep.
  camera.look_at({3, 2, 4}, {0, 0, 0}, {0, 1, 0});
  (void)client.set_view(camera, Deadline::after(2s));
  (void)client.await_frame(Deadline::after(5s));
  while (client.await_frame(Deadline::after(300ms)).is_ok()) {
  }

  for (auto _ : state) {
    angle += 0.05;
    camera.look_at({3 * std::cos(angle), 2, 3 * std::sin(angle) + 1},
                   {0, 0, 0}, {0, 1, 0});
    if (!client.set_view(camera, Deadline::after(5s)).is_ok()) {
      state.SkipWithError("view send failed");
      return;
    }
    auto frame = client.await_frame(Deadline::after(10s));
    if (!frame.is_ok()) {
      state.SkipWithError("frame lost");
      return;
    }
    benchmark::DoNotOptimize(frame.value().pixels().data());
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.SetLabel(std::string("remote/") + link_name(link_kind) + "/grid=" +
                 std::to_string(grid));
}

/// Local loop: the same scene redrawn from a local scene graph.
void BM_LocalSceneGraphLoop(benchmark::State& state) {
  const int grid = static_cast<int>(state.range(0));
  cs::viz::SceneStore scene;
  scene.set_mesh(sphere_mesh(grid), {90, 170, 255});
  cs::viz::Renderer renderer(320, 240);
  cs::viz::Camera camera;
  double angle = 0.0;
  for (auto _ : state) {
    angle += 0.05;
    camera.look_at({3 * std::cos(angle), 2, 3 * std::sin(angle) + 1},
                   {0, 0, 0}, {0, 1, 0});
    scene.render(renderer, camera);
    benchmark::DoNotOptimize(renderer.frame().pixels().data());
  }
  state.counters["fps"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.SetLabel("local/grid=" + std::to_string(grid));
}

}  // namespace

BENCHMARK(BM_RemoteRenderLoop)
    ->ArgsProduct({{16, 32}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(0.4);
BENCHMARK(BM_LocalSceneGraphLoop)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.4);

BENCHMARK_MAIN();
