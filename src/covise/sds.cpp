#include "covise/sds.hpp"

#include "common/strings.hpp"

namespace cs::covise {

using common::Result;
using common::Status;
using common::StatusCode;

std::string SharedDataSpace::unique_name(const std::string& module,
                                         const std::string& port) {
  return host_ + "/" + module + "/" + port + "/" +
         std::to_string(serial_.fetch_add(1));
}

Status SharedDataSpace::put(DataObjectPtr object) {
  if (!object || object->name().empty()) {
    return Status{StatusCode::kInvalidArgument, "object without a name"};
  }
  std::scoped_lock lock(mutex_);
  auto [it, inserted] = objects_.emplace(object->name(), std::move(object));
  if (!inserted) {
    return Status{StatusCode::kAlreadyExists,
                  "object name in use: " + it->first};
  }
  return Status::ok();
}

Result<DataObjectPtr> SharedDataSpace::get(const std::string& name) const {
  std::scoped_lock lock(mutex_);
  auto it = objects_.find(name);
  if (it == objects_.end()) {
    return Status{StatusCode::kNotFound, "no object named " + name};
  }
  return it->second;
}

Status SharedDataSpace::remove(const std::string& name) {
  std::scoped_lock lock(mutex_);
  if (objects_.erase(name) == 0) {
    return Status{StatusCode::kNotFound, "no object named " + name};
  }
  return Status::ok();
}

std::size_t SharedDataSpace::remove_prefix(const std::string& prefix) {
  std::scoped_lock lock(mutex_);
  std::size_t removed = 0;
  for (auto it = objects_.begin(); it != objects_.end();) {
    if (common::starts_with(it->first, prefix)) {
      it = objects_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::size_t SharedDataSpace::size() const {
  std::scoped_lock lock(mutex_);
  return objects_.size();
}

std::size_t SharedDataSpace::total_bytes() const {
  std::scoped_lock lock(mutex_);
  std::size_t total = 0;
  for (const auto& [name, obj] : objects_) total += obj->byte_size();
  return total;
}

}  // namespace cs::covise
