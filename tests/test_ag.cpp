// Tests for the Access Grid substrate: venue server (rooms, participants,
// shared-app registry), vic-style media streams over multicast with
// unicast bridging, and vnc-style desktop sharing.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ag/desktop.hpp"
#include "ag/media.hpp"
#include "ag/venue.hpp"
#include "net/inproc.hpp"
#include "net/tcp.hpp"

namespace cs::ag {
namespace {

using namespace std::chrono_literals;
using common::Deadline;
using common::StatusCode;

// ----------------------------------------------------------------- venue --

struct VenueFixture {
  net::InProcNetwork net;
  std::unique_ptr<VenueServer> server;

  VenueFixture() {
    auto s = VenueServer::start(net, {"ag:venue"});
    EXPECT_TRUE(s.is_ok());
    server = std::move(s).value();
    EXPECT_TRUE(server
                    ->create_venue("sc03-showcase",
                                   {"mcast/sc03/video", "mcast/sc03/audio"})
                    .is_ok());
  }

  VenueClient join(const std::string& name, bool mc = true) {
    auto c = VenueClient::connect(net, "ag:venue", Deadline::after(2s));
    EXPECT_TRUE(c.is_ok());
    EXPECT_TRUE(c.value()
                    .enter("sc03-showcase", name, mc, Deadline::after(2s))
                    .is_ok());
    return std::move(c).value();
  }
};

TEST(Venue, EnterListLeave) {
  VenueFixture f;
  auto manchester = f.join("manchester");
  auto juelich = f.join("juelich");
  auto phoenix = f.join("phoenix-floor", /*mc=*/false);

  auto listing = manchester.list_participants(Deadline::after(2s));
  ASSERT_TRUE(listing.is_ok());
  EXPECT_EQ(listing.value().size(), 3u);
  int unicast_only = 0;
  for (const auto& p : listing.value()) {
    if (!p.multicast_capable) ++unicast_only;
  }
  EXPECT_EQ(unicast_only, 1);

  ASSERT_TRUE(juelich.leave(Deadline::after(2s)).is_ok());
  listing = manchester.list_participants(Deadline::after(2s));
  ASSERT_TRUE(listing.is_ok());
  EXPECT_EQ(listing.value().size(), 2u);
}

TEST(Venue, EnterUnknownVenueFails) {
  VenueFixture f;
  auto c = VenueClient::connect(f.net, "ag:venue", Deadline::after(2s));
  ASSERT_TRUE(c.is_ok());
  auto s = c.value().enter("atlantis", "nobody", true, Deadline::after(2s));
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(Venue, StreamsPublished) {
  VenueFixture f;
  auto c = f.join("site");
  auto streams = c.streams(Deadline::after(2s));
  ASSERT_TRUE(streams.is_ok());
  EXPECT_EQ(streams.value().video_group, "mcast/sc03/video");
  EXPECT_EQ(streams.value().audio_group, "mcast/sc03/audio");
}

TEST(Venue, SharedAppRegistryPerRoom) {
  VenueFixture f;
  ASSERT_TRUE(
      f.server->create_venue("hlrs-room", {"mcast/hlrs/v", "mcast/hlrs/a"})
          .is_ok());
  auto hlrs = f.join("hlrs");
  ASSERT_TRUE(hlrs.register_app({"covise", "sync=covise:hub pw=s3cret"},
                                Deadline::after(2s))
                  .is_ok());
  // Another participant of the same venue finds it...
  auto guest = f.join("guest");
  auto app = guest.find_app("covise", Deadline::after(2s));
  ASSERT_TRUE(app.is_ok());
  EXPECT_EQ(app.value().connect_info, "sync=covise:hub pw=s3cret");
  // ...but a participant of a different room does not.
  auto c = VenueClient::connect(f.net, "ag:venue", Deadline::after(2s));
  ASSERT_TRUE(c.is_ok());
  ASSERT_TRUE(
      c.value().enter("hlrs-room", "elsewhere", true, Deadline::after(2s)).is_ok());
  auto miss = c.value().find_app("covise", Deadline::after(2s));
  EXPECT_EQ(miss.status().code(), StatusCode::kNotFound);
}

TEST(Venue, DisconnectImpliesLeave) {
  VenueFixture f;
  {
    auto temp = f.join("fleeting");
    EXPECT_EQ(f.server->participants("sc03-showcase").size(), 1u);
    temp.disconnect();
  }
  const auto deadline = Deadline::after(2s);
  while (!f.server->participants("sc03-showcase").empty() &&
         !deadline.has_expired()) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_TRUE(f.server->participants("sc03-showcase").empty());
}

// ----------------------------------------------------------------- media --

viz::Image test_frame(int w, int h, std::uint8_t tone) {
  viz::Image img(w, h, {tone, static_cast<std::uint8_t>(tone / 2), 30});
  img.at(w / 2, h / 2) = {255, 255, 255};
  return img;
}

TEST(Media, MulticastFrameReachesAllReceivers) {
  net::InProcNetwork net;
  auto sender = MediaStream::join(net, "mcast/video");
  auto rx1 = MediaStream::join(net, "mcast/video");
  auto rx2 = MediaStream::join(net, "mcast/video");
  ASSERT_TRUE(sender.is_ok() && rx1.is_ok() && rx2.is_ok());
  const viz::Image frame = test_frame(64, 48, 100);
  ASSERT_TRUE(sender.value().send_frame(frame).is_ok());
  auto got1 = rx1.value().receive_frame(Deadline::after(2s));
  auto got2 = rx2.value().receive_frame(Deadline::after(2s));
  ASSERT_TRUE(got1.is_ok() && got2.is_ok());
  EXPECT_EQ(got1.value(), frame);
  EXPECT_EQ(got2.value(), frame);
  EXPECT_EQ(sender.value().frames_sent(), 1u);
  EXPECT_LT(sender.value().bytes_sent(), frame.byte_size());
}

TEST(Media, FramesAreIndependentlyDecodable) {
  // vic-style loss tolerance: a receiver that joins late (missing earlier
  // frames) can still decode the next one.
  net::InProcNetwork net;
  auto sender = MediaStream::join(net, "mcast/v2");
  ASSERT_TRUE(sender.is_ok());
  ASSERT_TRUE(sender.value().send_frame(test_frame(32, 32, 10)).is_ok());
  auto late = MediaStream::join(net, "mcast/v2");
  ASSERT_TRUE(late.is_ok());
  const viz::Image second = test_frame(32, 32, 200);
  ASSERT_TRUE(sender.value().send_frame(second).is_ok());
  auto got = late.value().receive_frame(Deadline::after(2s));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), second);
}

TEST(Media, BridgeRelaysToUnicastClients) {
  net::InProcNetwork net;
  auto bridge = UnicastBridge::start(net, {"mcast/v3", "bridge:1"});
  ASSERT_TRUE(bridge.is_ok());
  auto sender = MediaStream::join(net, "mcast/v3");
  ASSERT_TRUE(sender.is_ok());
  // A firewalled site connects to the bridge instead of the group.
  auto conn = net.connect("bridge:1", Deadline::after(2s));
  ASSERT_TRUE(conn.is_ok());
  const viz::Image frame = test_frame(24, 24, 80);
  ASSERT_TRUE(sender.value().send_frame(frame).is_ok());
  auto raw = conn.value()->recv(Deadline::after(2s));
  ASSERT_TRUE(raw.is_ok());
  auto decoded = viz::decompress_frame(raw.value());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), frame);
}

TEST(Media, BridgeIsolatesSlowClientAndKeepsFramesIntact) {
  // One wedged unicast client (receive window smaller than a single frame,
  // never drained) must not stall the relay for its healthy sibling: every
  // frame still reaches the healthy client intact, the wedged client's
  // frames are shed by its bounded queue (kDropOldest), and shedding is
  // not a teardown.
  net::InProcNetwork net;
  UnicastBridge::Options options;
  options.group = "mcast/v5";
  options.address = "bridge:slow";
  options.send_deadline = std::chrono::milliseconds(50);
  auto bridge = UnicastBridge::start(net, options);
  ASSERT_TRUE(bridge.is_ok());
  auto sender = MediaStream::join(net, "mcast/v5");
  ASSERT_TRUE(sender.is_ok());

  auto healthy = net.connect("bridge:slow", Deadline::after(2s));
  ASSERT_TRUE(healthy.is_ok());
  net::ConnectOptions wedge;
  wedge.recv_capacity_bytes = 16;  // smaller than any compressed frame
  auto wedged = net.connect("bridge:slow", Deadline::after(2s), wedge);
  ASSERT_TRUE(wedged.is_ok());

  constexpr int kFrames = 10;
  for (int i = 0; i < kFrames; ++i) {
    const viz::Image frame = test_frame(24, 24, static_cast<std::uint8_t>(i));
    ASSERT_TRUE(sender.value().send_frame(frame).is_ok());
    // The healthy client sees every frame, bit-exact and in order, with
    // bounded delay — the wedged sibling costs its shard at most one send
    // deadline per pass, never a stall.
    auto raw = healthy.value()->recv(Deadline::after(2s));
    ASSERT_TRUE(raw.is_ok()) << "frame " << i;
    auto decoded = viz::decompress_frame(raw.value());
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(decoded.value(), frame) << "frame " << i;
  }

  // Delivery counters fold into the shard stats once per worker pass; give
  // the final pass (which may still be blocked on the wedged client's send
  // deadline) a moment to settle.
  const auto stats_deadline = Deadline::after(2s);
  while (bridge.value()->relay_stats().data_delivered <
             static_cast<std::uint64_t>(kFrames) &&
         !stats_deadline.has_expired()) {
    std::this_thread::sleep_for(5ms);
  }
  const auto stats = bridge.value()->relay_stats();
  EXPECT_EQ(stats.subscribers, 2u);       // shedding is not a teardown
  EXPECT_GE(stats.data_delivered, static_cast<std::uint64_t>(kFrames));
  EXPECT_GT(stats.data_dropped, 0u);      // the wedged client missed frames
  EXPECT_EQ(stats.disconnects, 0u);
  // The service-level drop total must be exactly the per-shard sum — the
  // roll-up is how every drop consumer (reports, /metricsz) reads it.
  std::uint64_t per_shard_drops = 0;
  for (const auto& shard : stats.shards) per_shard_drops += shard.data_dropped;
  EXPECT_EQ(stats.data_dropped, per_shard_drops);
  EXPECT_EQ(bridge.value()->client_count(), 2u);
  bridge.value()->stop();
}

TEST(Media, BridgeSurvivesClientChurnUnderRelayLoad) {
  // Clients joining and leaving mid-stream must never wedge the relay or
  // leak registrations: a persistent client keeps receiving throughout,
  // and the registry returns to exactly one client once the churn ends.
  net::InProcNetwork net;
  auto bridge = UnicastBridge::start(net, {"mcast/v6", "bridge:churn"});
  ASSERT_TRUE(bridge.is_ok());
  auto sender = MediaStream::join(net, "mcast/v6");
  ASSERT_TRUE(sender.is_ok());

  auto persistent = net.connect("bridge:churn", Deadline::after(2s));
  ASSERT_TRUE(persistent.is_ok());

  std::atomic<bool> stop{false};
  std::atomic<int> received{0};
  std::thread drainer([&] {
    while (!stop.load()) {
      auto raw = persistent.value()->recv(Deadline::after(50ms));
      if (raw.is_ok()) received.fetch_add(1);
      else if (raw.status().code() == StatusCode::kClosed) return;
    }
  });
  std::thread pump([&] {
    std::uint8_t tone = 0;
    while (!stop.load()) {
      (void)sender.value().send_frame(test_frame(16, 16, ++tone));
      std::this_thread::sleep_for(2ms);
    }
  });

  for (int k = 0; k < 25; ++k) {
    auto conn = net.connect("bridge:churn", Deadline::after(2s));
    ASSERT_TRUE(conn.is_ok());
    if (k % 2 == 0) {
      // Half the churners consume one frame before leaving, so teardown
      // races both pump-side (recv kClosed) and worker-side (send kClosed).
      (void)conn.value()->recv(Deadline::after(200ms));
    }
    conn.value()->close();
  }

  // The persistent client kept receiving through the churn.
  const auto deadline = Deadline::after(5s);
  while (received.load() < 20 && !deadline.has_expired()) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_GE(received.load(), 20);
  // Closed churners are reaped from the registry (either their pump or a
  // relay worker observed the close).
  while (bridge.value()->client_count() > 1 && !deadline.has_expired()) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(bridge.value()->client_count(), 1u);
  stop.store(true);
  pump.join();
  drainer.join();
  bridge.value()->stop();
}

TEST(Media, BridgeRelaysUnicastIntoGroup) {
  net::InProcNetwork net;
  auto bridge = UnicastBridge::start(net, {"mcast/v4", "bridge:2"});
  ASSERT_TRUE(bridge.is_ok());
  auto receiver = MediaStream::join(net, "mcast/v4");
  ASSERT_TRUE(receiver.is_ok());
  auto conn = net.connect("bridge:2", Deadline::after(2s));
  ASSERT_TRUE(conn.is_ok());
  const viz::Image frame = test_frame(16, 16, 50);
  const auto payload = viz::compress_frame(frame);
  ASSERT_TRUE(conn.value()->send(payload, Deadline::after(2s)).is_ok());
  auto got = receiver.value().receive_frame(Deadline::after(2s));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), frame);
}

TEST(Media, TcpBridgeClientsAreHostedWithoutPumpThreads) {
  // Unicast side over TCP: clients carry a native handle, so the bridge
  // hosts them on its event host — no pump thread and no relay
  // subscription per client, and the relay still flows both ways.
  net::InProcNetwork group_net;
  net::TcpNetwork client_net;
  UnicastBridge::Options options;
  options.group = "mcast/v6";
  options.address = "0";  // kernel-assigned loopback port
  options.relay_shards = 1;
  auto bridge = UnicastBridge::start(group_net, client_net, options);
  ASSERT_TRUE(bridge.is_ok());
  auto sender = MediaStream::join(group_net, "mcast/v6");
  ASSERT_TRUE(sender.is_ok());

  auto c1 = client_net.connect(bridge.value()->address(), Deadline::after(2s));
  auto c2 = client_net.connect(bridge.value()->address(), Deadline::after(2s));
  ASSERT_TRUE(c1.is_ok() && c2.is_ok());

  // Group -> both hosted clients (the group pump drains accepts before
  // relaying, so neither client can miss this frame).
  const viz::Image frame = test_frame(24, 24, 90);
  ASSERT_TRUE(sender.value().send_frame(frame).is_ok());
  for (auto* c : {&c1, &c2}) {
    auto raw = c->value()->recv(Deadline::after(2s));
    ASSERT_TRUE(raw.is_ok());
    auto decoded = viz::decompress_frame(raw.value());
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(decoded.value(), frame);
  }
  const std::size_t threads_with_two = bridge.value()->service_threads();
  EXPECT_EQ(bridge.value()->host_stats().hosted, 2u);
  EXPECT_EQ(bridge.value()->relay_stats().subscribers, 0u);

  // Client -> group and -> sibling, via the poller ingress path.
  const viz::Image reply = test_frame(16, 16, 40);
  ASSERT_TRUE(
      c1.value()->send(viz::compress_frame(reply), Deadline::after(2s)).is_ok());
  auto got = sender.value().receive_frame(Deadline::after(2s));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), reply);
  auto sibling_raw = c2.value()->recv(Deadline::after(2s));
  ASSERT_TRUE(sibling_raw.is_ok());
  auto sibling = viz::decompress_frame(sibling_raw.value());
  ASSERT_TRUE(sibling.is_ok());
  EXPECT_EQ(sibling.value(), reply);

  // More clients, same thread count.
  auto c3 = client_net.connect(bridge.value()->address(), Deadline::after(2s));
  ASSERT_TRUE(c3.is_ok());
  const auto reg_deadline = Deadline::after(2s);
  while (bridge.value()->client_count() < 3 && !reg_deadline.has_expired()) {
    ASSERT_TRUE(sender.value().send_frame(frame).is_ok());
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_EQ(bridge.value()->client_count(), 3u);
  EXPECT_EQ(bridge.value()->service_threads(), threads_with_two);

  // A hosted client's close reaches drop_client via the poller.
  c1.value()->close();
  const auto drop_deadline = Deadline::after(2s);
  while (bridge.value()->client_count() > 2 && !drop_deadline.has_expired()) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(bridge.value()->client_count(), 2u);
  bridge.value()->stop();
}

// --------------------------------------------------------------- desktop --

TEST(Desktop, ViewersTrackTheSharedDesktop) {
  net::InProcNetwork net;
  auto server = DesktopShareServer::start(net, {"vnc:1"});
  ASSERT_TRUE(server.is_ok());
  ASSERT_TRUE(server.value()->update(test_frame(40, 30, 60)).is_ok());

  auto viewer = DesktopShareViewer::connect(net, "vnc:1", Deadline::after(2s));
  ASSERT_TRUE(viewer.is_ok());
  // The join snapshot arrives as a key frame.
  auto first = viewer.value().await_update(Deadline::after(2s));
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(first.value(), test_frame(40, 30, 60));

  // A subsequent update arrives as a delta and decodes to the new desktop.
  const viz::Image next = test_frame(40, 30, 180);
  const auto deadline = Deadline::after(2s);
  while (server.value()->viewer_count() < 1 && !deadline.has_expired()) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_TRUE(server.value()->update(next).is_ok());
  auto second = viewer.value().await_update(Deadline::after(2s));
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value(), next);
}

TEST(Desktop, InputEventsReachTheApplication) {
  net::InProcNetwork net;
  std::mutex mu;
  std::vector<std::string> events;
  auto server = DesktopShareServer::start(
      net, {"vnc:2"}, [&](const std::string& e) {
        std::scoped_lock lock(mu);
        events.push_back(e);
      });
  ASSERT_TRUE(server.is_ok());
  auto viewer = DesktopShareViewer::connect(net, "vnc:2", Deadline::after(2s));
  ASSERT_TRUE(viewer.is_ok());
  ASSERT_TRUE(viewer.value()
                  .send_event("SET miscibility 0.3", Deadline::after(2s))
                  .is_ok());
  const auto deadline = Deadline::after(2s);
  for (;;) {
    {
      std::scoped_lock lock(mu);
      if (!events.empty()) break;
    }
    if (deadline.has_expired()) break;
    std::this_thread::sleep_for(5ms);
  }
  std::scoped_lock lock(mu);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], "SET miscibility 0.3");
  EXPECT_EQ(server.value()->stats().events_received, 1u);
}

TEST(Desktop, TrafficScalesWithChangedPixels) {
  // Identical desktops produce near-zero deltas; busy ones do not — the
  // mechanism behind E7's vnc-vs-param-sync contrast.
  net::InProcNetwork net;
  auto server = DesktopShareServer::start(net, {"vnc:3"});
  ASSERT_TRUE(server.is_ok());
  auto viewer = DesktopShareViewer::connect(net, "vnc:3", Deadline::after(2s));
  ASSERT_TRUE(viewer.is_ok());
  const auto deadline = Deadline::after(2s);
  while (server.value()->viewer_count() < 1 && !deadline.has_expired()) {
    std::this_thread::sleep_for(2ms);
  }
  const viz::Image desk = test_frame(100, 100, 90);
  ASSERT_TRUE(server.value()->update(desk).is_ok());
  ASSERT_TRUE(viewer.value().await_update(Deadline::after(2s)).is_ok());
  const auto after_first = server.value()->stats().bytes_pushed;

  ASSERT_TRUE(server.value()->update(desk).is_ok());  // no change
  ASSERT_TRUE(viewer.value().await_update(Deadline::after(2s)).is_ok());
  const auto unchanged_delta = server.value()->stats().bytes_pushed - after_first;
  EXPECT_LT(unchanged_delta, desk.byte_size() / 50);

  viz::Image busy = desk;
  common::Rng rng{5};
  for (auto& p : busy.pixels()) {
    p.r = static_cast<std::uint8_t>(rng.next_below(256));
  }
  ASSERT_TRUE(server.value()->update(busy).is_ok());
  ASSERT_TRUE(viewer.value().await_update(Deadline::after(2s)).is_ok());
  const auto busy_delta =
      server.value()->stats().bytes_pushed - after_first - unchanged_delta;
  EXPECT_GT(busy_delta, 50 * unchanged_delta);
}

TEST(Desktop, ViewerDisconnectCleansUp) {
  net::InProcNetwork net;
  auto server = DesktopShareServer::start(net, {"vnc:4"});
  ASSERT_TRUE(server.is_ok());
  {
    auto viewer = DesktopShareViewer::connect(net, "vnc:4", Deadline::after(2s));
    ASSERT_TRUE(viewer.is_ok());
    const auto deadline = Deadline::after(2s);
    while (server.value()->viewer_count() < 1 && !deadline.has_expired()) {
      std::this_thread::sleep_for(2ms);
    }
    viewer.value().disconnect();
  }
  const auto deadline = Deadline::after(2s);
  while (server.value()->viewer_count() > 0 && !deadline.has_expired()) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(server.value()->viewer_count(), 0u);
  // Updates keep working with zero viewers.
  EXPECT_TRUE(server.value()->update(test_frame(20, 20, 1)).is_ok());
}

TEST(Desktop, TcpViewersAreHostedWithoutPumpThreads) {
  // Sixteen TCP viewers land on the shared readiness host: the server's
  // thread count stays where it was with one viewer, and a key frame still
  // reaches the whole populated fleet.
  net::TcpNetwork net;
  auto server = DesktopShareServer::start(net, {"0"});
  ASSERT_TRUE(server.is_ok());
  ASSERT_TRUE(server.value()->update(test_frame(32, 24, 60)).is_ok());
  const std::string address = server.value()->address();

  std::vector<DesktopShareViewer> viewers;
  std::size_t threads_with_one = 0;
  for (int i = 0; i < 16; ++i) {
    auto viewer = DesktopShareViewer::connect(net, address, Deadline::after(5s));
    ASSERT_TRUE(viewer.is_ok());
    viewers.push_back(std::move(viewer).value());
    if (i == 0) {
      const auto first_deadline = Deadline::after(5s);
      while (server.value()->viewer_count() < 1 &&
             !first_deadline.has_expired()) {
        std::this_thread::sleep_for(2ms);
      }
      threads_with_one = server.value()->service_threads();
    }
  }
  auto deadline = Deadline::after(5s);
  while (server.value()->viewer_count() < 16 && !deadline.has_expired()) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_EQ(server.value()->viewer_count(), 16u);
  EXPECT_EQ(server.value()->service_threads(), threads_with_one);
  EXPECT_LE(server.value()->service_threads(), 2u);

  // Every viewer decodes the join snapshot; the ingress path still works
  // with the fleet attached.
  for (auto& viewer : viewers) {
    auto first = viewer.await_update(Deadline::after(5s));
    ASSERT_TRUE(first.is_ok());
    EXPECT_EQ(first.value(), test_frame(32, 24, 60));
  }
  ASSERT_TRUE(viewers[0].send_event("poll", Deadline::after(2s)).is_ok());
  deadline = Deadline::after(5s);
  while (server.value()->stats().events_received < 1 &&
         !deadline.has_expired()) {
    std::this_thread::sleep_for(2ms);
  }
  EXPECT_EQ(server.value()->stats().events_received, 1u);

  server.value()->stop();
  server.value()->stop();  // idempotent
  EXPECT_FALSE(
      DesktopShareViewer::connect(net, address, Deadline::after(200ms))
          .is_ok());
}

TEST(Desktop, InProcViewersShareOneFallbackPump) {
  // Handle-less viewers share the connection host's single fallback pump;
  // the population never grows the thread count.
  net::InProcNetwork net;
  auto server = DesktopShareServer::start(net, {"vnc:flat"});
  ASSERT_TRUE(server.is_ok());
  ASSERT_TRUE(server.value()->update(test_frame(16, 12, 30)).is_ok());
  std::vector<DesktopShareViewer> viewers;
  for (int i = 0; i < 8; ++i) {
    auto viewer =
        DesktopShareViewer::connect(net, "vnc:flat", Deadline::after(5s));
    ASSERT_TRUE(viewer.is_ok());
    viewers.push_back(std::move(viewer).value());
  }
  const auto deadline = Deadline::after(5s);
  while (server.value()->viewer_count() < 8 && !deadline.has_expired()) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_EQ(server.value()->viewer_count(), 8u);
  // In-process accept pump + epoll poller + shared fallback pump.
  EXPECT_LE(server.value()->service_threads(), 3u);
  for (auto& viewer : viewers) {
    ASSERT_TRUE(viewer.await_update(Deadline::after(5s)).is_ok());
  }
  server.value()->stop();
  server.value()->stop();
}

}  // namespace
}  // namespace cs::ag
