#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/bytes.hpp"

namespace cs::net {

using common::Bytes;
using common::ByteSpan;
using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {

/// Process-global wire telemetry, striped by connection so concurrent
/// senders on different sockets don't bounce one mutex. Merged on read by
/// tcp_wire_stats().
constexpr std::size_t kWireStripes = 4;
struct WireStripe {
  std::mutex mutex;
  TcpWireStats stats;
};
WireStripe g_wire_stripes[kWireStripes];

/// One completed wire batch: `committed` framed messages fully handed to
/// the kernel by this writev pass.
void record_wire_batch(std::size_t stripe, std::size_t committed) {
  WireStripe& s = g_wire_stripes[stripe % kWireStripes];
  std::scoped_lock lock(s.mutex);
  ++s.stats.send_batches;
  s.stats.messages_sent += committed;
  s.stats.batch_messages.record(committed);
}

/// Same, for a batch the kernel cut short: `tail_bytes` is the unsent
/// remainder parked as the stream tail.
void record_wire_short(std::size_t stripe, std::size_t committed,
                       std::size_t tail_bytes) {
  WireStripe& s = g_wire_stripes[stripe % kWireStripes];
  std::scoped_lock lock(s.mutex);
  ++s.stats.send_batches;
  s.stats.messages_sent += committed;
  s.stats.batch_messages.record(committed);
  ++s.stats.short_writes;
  s.stats.short_write_bytes.record(tail_bytes);
}

Status errno_status(const char* what) {
  return Status{StatusCode::kInternal,
                std::string(what) + ": " + std::strerror(errno)};
}

/// Waits for `events` on `fd` until the deadline. Returns kTimeout / kInternal.
Status wait_fd(int fd, short events, Deadline deadline) {
  for (;;) {
    int timeout_ms = -1;
    if (!deadline.is_infinite()) {
      const auto rem = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline.remaining());
      timeout_ms = static_cast<int>(std::max<std::int64_t>(rem.count(), 0));
    }
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return Status::ok();
    if (rc == 0) return Status{StatusCode::kTimeout, "poll timeout"};
    if (errno == EINTR) continue;
    return errno_status("poll");
  }
}

class TcpConnection : public Connection {
 public:
  explicit TcpConnection(int fd, std::string peer)
      : fd_(fd), peer_(std::move(peer)) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Non-blocking + poll() is what makes per-call deadlines possible.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }

  ~TcpConnection() override {
    close();
    // Only here, never in close(): a blocked send/recv may still be inside
    // a syscall on this fd, and closing it under that thread would race
    // (and could hand the fd number to an unrelated open). By destructor
    // time the shared_ptr count is zero, so no such thread exists.
    ::close(fd_);
  }

  Status send(ByteSpan message, Deadline deadline) override {
    const ByteSpan one[1] = {message};
    std::size_t sent = 0;
    return send_many(std::span<const ByteSpan>(one, 1), deadline, sent);
  }

  /// Vectored batch send: any pending tail plus up to kWritevMessages framed
  /// messages (4-byte header + payload each) go to the kernel in a single
  /// sendmsg per batch instead of two send syscalls per message.
  ///
  /// Framing across a deadline abort generalizes the single-message tail
  /// rule: the byte counter from the partial write tells exactly which
  /// message the stream stopped inside, that message's unsent remainder
  /// becomes send_tail_ (flushed ahead of all later traffic), fully-written
  /// messages count into `sent`, and messages past the abort never entered
  /// the stream at all.
  Status send_many(std::span<const ByteSpan> messages, Deadline deadline,
                   std::size_t& sent) override {
    bool in_flight = false;
    return send_many_impl(messages, deadline, sent, in_flight);
  }

  /// Same vectored path with an immediate deadline. `in_flight` is exact:
  /// true iff the abort left message `sent` partially on the wire (its
  /// unsent remainder became send_tail_, flushed ahead of later traffic),
  /// which is precisely the case where a resend would duplicate it.
  Status try_send_many(std::span<const ByteSpan> messages, std::size_t& sent,
                       bool& in_flight) override {
    Status s = send_many_impl(messages, Deadline::expired(), sent, in_flight);
    if (s.code() == StatusCode::kTimeout) {
      return Status{StatusCode::kUnavailable, "would block"};
    }
    return s;
  }

 private:
  Status send_many_impl(std::span<const ByteSpan> messages, Deadline deadline,
                        std::size_t& sent, bool& in_flight) {
    sent = 0;
    in_flight = false;
    for (const ByteSpan& m : messages) {
      if (m.size() > TcpNetwork::kMaxMessageBytes) {
        return Status{StatusCode::kInvalidArgument, "message too large"};
      }
    }
    std::scoped_lock lock(send_mutex_);
    std::size_t index = 0;
    while (index < messages.size() || !send_tail_.empty()) {
      const std::size_t count =
          std::min(kWritevMessages, messages.size() - index);
      std::uint8_t headers[kWritevMessages][4];
      iovec iov[1 + 2 * kWritevMessages];
      int iovcnt = 0;
      // A previous send may have timed out mid-message; its unsent tail
      // must reach the peer before anything else or the length-prefixed
      // stream desynchronizes permanently. It rides the same writev as the
      // batch's own frames.
      const std::size_t tail_len = send_tail_.size();
      if (tail_len > 0) {
        iov[iovcnt++] = {send_tail_.data(), tail_len};
      }
      for (std::size_t i = 0; i < count; ++i) {
        const ByteSpan m = messages[index + i];
        const auto n = static_cast<std::uint32_t>(m.size());
        headers[i][0] = static_cast<std::uint8_t>(n >> 24);
        headers[i][1] = static_cast<std::uint8_t>(n >> 16);
        headers[i][2] = static_cast<std::uint8_t>(n >> 8);
        headers[i][3] = static_cast<std::uint8_t>(n);
        iov[iovcnt++] = {headers[i], sizeof(headers[i])};
        if (!m.empty()) {
          iov[iovcnt++] = {const_cast<std::uint8_t*>(m.data()), m.size()};
        }
      }
      std::size_t done = 0;
      const std::size_t batch_start_sent = sent;
      const Status s = writev_all(iov, iovcnt, deadline, done);
      if (s.is_ok()) {
        send_tail_.clear();
        for (std::size_t i = 0; i < count; ++i) {
          bytes_sent_.fetch_add(messages[index + i].size(),
                                std::memory_order_relaxed);
        }
        messages_sent_.fetch_add(count, std::memory_order_relaxed);
        sent += count;
        index += count;
        record_wire_batch(static_cast<std::size_t>(fd_), count);
        continue;
      }
      // Aborted mid-batch. Bytes [0, done) of [tail][h0 p0][h1 p1]... are
      // on the wire; everything after is not.
      if (done <= tail_len) {
        // The abort landed inside (or exactly at the end of) the old tail:
        // no message of this batch entered the stream, so each is cleanly
        // retryable. Keep whatever of the tail remains unsent.
        send_tail_.erase(
            send_tail_.begin(),
            send_tail_.begin() + static_cast<std::ptrdiff_t>(done));
        record_wire_short(static_cast<std::size_t>(fd_), 0, send_tail_.size());
        return s;
      }
      std::size_t off = done - tail_len;  // bytes into this batch's frames
      send_tail_.clear();
      for (std::size_t i = 0; i < count; ++i) {
        const ByteSpan m = messages[index + i];
        const std::size_t framed = sizeof(headers[i]) + m.size();
        if (off >= framed) {
          // Fully handed to the kernel before the abort.
          off -= framed;
          bytes_sent_.fetch_add(m.size(), std::memory_order_relaxed);
          messages_sent_.fetch_add(1, std::memory_order_relaxed);
          ++sent;
          continue;
        }
        if (off == 0) break;  // never started: not sent, leaves no tail
        // The stream stopped inside this message: its unsent remainder
        // becomes the tail the next send must flush first. The caller may
        // treat the message as missed (supersedable data), but the peer
        // still observes a well-formed stream.
        in_flight = true;
        if (off < sizeof(headers[i])) {
          send_tail_.assign(headers[i] + off, headers[i] + sizeof(headers[i]));
          off = 0;
        } else {
          off -= sizeof(headers[i]);
        }
        send_tail_.insert(send_tail_.end(),
                          m.begin() + static_cast<std::ptrdiff_t>(off),
                          m.end());
        break;
      }
      record_wire_short(static_cast<std::size_t>(fd_),
                        sent - batch_start_sent, send_tail_.size());
      return s;
    }
    return Status::ok();
  }

 public:
  /// Both receive paths share one incremental decoder (header, then payload,
  /// with fill counts persisted across calls), so a deadline abort or a
  /// would-block mid-message never loses bytes already consumed from the
  /// socket — the next call resumes exactly where the stream stopped.
  Result<Bytes> recv(Deadline deadline) override {
    std::scoped_lock lock(recv_mutex_);
    for (;;) {
      Result<Bytes> r = advance_decode_locked();
      if (r.is_ok() || r.status().code() != StatusCode::kUnavailable) return r;
      if (Status s = wait_fd(fd_, POLLIN, deadline); !s.is_ok()) return s;
    }
  }

  Result<Bytes> try_recv() override {
    std::scoped_lock lock(recv_mutex_);
    return advance_decode_locked();
  }

  void close() override {
    if (open_.exchange(false, std::memory_order_acq_rel)) {
      // Wakes every blocked poll/send/recv on the connection; the fd itself
      // stays open until the destructor.
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  bool is_open() const override {
    return open_.load(std::memory_order_acquire);
  }

  std::string peer_address() const override { return peer_; }

  ConnStats stats() const override {
    return ConnStats{messages_sent_.load(), bytes_sent_.load(),
                     messages_received_.load(), bytes_received_.load()};
  }

  int native_handle() const override { return fd_; }

 private:
  /// Messages coalesced into one sendmsg (2 iovecs each, plus the tail);
  /// keeps the iovec array small and well under IOV_MAX.
  static constexpr std::size_t kWritevMessages = 16;

  /// Writes every byte of `iov[0..iovcnt)` via vectored sendmsg, reporting
  /// cumulative progress through `done` so a caller aborted by a deadline
  /// knows exactly where the stream stands. Mutates `iov` in place while
  /// advancing past partially-written entries.
  Status writev_all(iovec* iov, int iovcnt, Deadline deadline,
                    std::size_t& done) {
    done = 0;
    std::size_t total = 0;
    for (int i = 0; i < iovcnt; ++i) total += iov[i].iov_len;
    int first = 0;
    while (done < total) {
      if (!open_.load(std::memory_order_acquire)) {
        return Status{StatusCode::kClosed, "connection closed"};
      }
      const int fd = fd_;
      msghdr msg{};
      msg.msg_iov = iov + first;
      msg.msg_iovlen = static_cast<std::size_t>(iovcnt - first);
      const ssize_t rc = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
      if (rc > 0) {
        done += static_cast<std::size_t>(rc);
        auto n = static_cast<std::size_t>(rc);
        while (n > 0 && first < iovcnt) {
          if (n >= iov[first].iov_len) {
            n -= iov[first].iov_len;
            iov[first].iov_len = 0;
            ++first;
          } else {
            iov[first].iov_base =
                static_cast<std::uint8_t*>(iov[first].iov_base) + n;
            iov[first].iov_len -= n;
            n = 0;
          }
        }
        continue;
      }
      if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (Status s = wait_fd(fd, POLLOUT, deadline); !s.is_ok()) return s;
        continue;
      }
      if (rc < 0 && errno == EINTR) continue;
      if (rc < 0 && (errno == EPIPE || errno == ECONNRESET)) {
        return Status{StatusCode::kClosed, "peer closed"};
      }
      return errno_status("sendmsg");
    }
    return Status::ok();
  }

  /// Advances the incremental frame decoder as far as the socket allows
  /// without waiting. Returns the next complete message, kUnavailable when
  /// the socket has nothing more right now (partial header/payload progress
  /// is kept in the members below for the next call), kClosed or an error
  /// otherwise. Caller holds recv_mutex_.
  Result<Bytes> advance_decode_locked() {
    for (;;) {
      if (!open_.load(std::memory_order_acquire)) {
        return Status{StatusCode::kClosed, "connection closed"};
      }
      if (recv_header_fill_ < sizeof(recv_header_)) {
        const ssize_t rc =
            ::recv(fd_, recv_header_ + recv_header_fill_,
                   sizeof(recv_header_) - recv_header_fill_, 0);
        if (rc == 0) return Status{StatusCode::kClosed, "peer closed"};
        if (rc < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK) {
            return Status{StatusCode::kUnavailable, "would block"};
          }
          if (errno == EINTR) continue;
          return errno_status("recv");
        }
        recv_header_fill_ += static_cast<std::size_t>(rc);
        if (recv_header_fill_ < sizeof(recv_header_)) continue;
        const std::uint32_t n = (std::uint32_t{recv_header_[0]} << 24) |
                                (std::uint32_t{recv_header_[1]} << 16) |
                                (std::uint32_t{recv_header_[2]} << 8) |
                                std::uint32_t{recv_header_[3]};
        if (n > TcpNetwork::kMaxMessageBytes) {
          return Status{StatusCode::kProtocolError, "length prefix too large"};
        }
        recv_payload_ = Bytes(n);
        recv_payload_fill_ = 0;
      }
      while (recv_payload_fill_ < recv_payload_.size()) {
        const ssize_t rc =
            ::recv(fd_, recv_payload_.data() + recv_payload_fill_,
                   recv_payload_.size() - recv_payload_fill_, 0);
        if (rc == 0) return Status{StatusCode::kClosed, "peer closed"};
        if (rc < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK) {
            return Status{StatusCode::kUnavailable, "would block"};
          }
          if (errno == EINTR) continue;
          return errno_status("recv");
        }
        recv_payload_fill_ += static_cast<std::size_t>(rc);
      }
      Bytes out = std::move(recv_payload_);
      recv_payload_ = Bytes{};
      recv_payload_fill_ = 0;
      recv_header_fill_ = 0;
      messages_received_.fetch_add(1, std::memory_order_relaxed);
      bytes_received_.fetch_add(out.size(), std::memory_order_relaxed);
      return out;
    }
  }

  const int fd_;
  std::atomic<bool> open_{true};
  std::string peer_;
  std::mutex send_mutex_;
  std::mutex recv_mutex_;
  /// Unsent remainder of a message aborted mid-write by a deadline;
  /// flushed ahead of the next message (guarded by send_mutex_).
  Bytes send_tail_;
  /// Incremental decode state (guarded by recv_mutex_): the length prefix,
  /// then the payload, each with a fill count so partial progress survives
  /// deadline aborts and would-block returns.
  std::uint8_t recv_header_[4] = {};
  std::size_t recv_header_fill_ = 0;
  Bytes recv_payload_;
  std::size_t recv_payload_fill_ = 0;
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> messages_received_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
};

class TcpListener : public Listener {
 public:
  TcpListener(int fd, std::string address)
      : fd_(fd), address_(std::move(address)) {}

  ~TcpListener() override {
    close();
    ::close(fd_);  // see ~TcpConnection: never close a possibly-in-use fd
  }

  Result<ConnectionPtr> accept(Deadline deadline) override {
    for (;;) {
      if (!open_.load(std::memory_order_acquire)) {
        return Status{StatusCode::kClosed, "listener closed"};
      }
      sockaddr_in addr{};
      socklen_t len = sizeof(addr);
      const int conn =
          ::accept4(fd_, reinterpret_cast<sockaddr*>(&addr), &len, 0);
      if (conn >= 0) {
        char buf[64];
        ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf));
        return ConnectionPtr{std::make_shared<TcpConnection>(
            conn,
            std::string(buf) + ":" + std::to_string(ntohs(addr.sin_port)))};
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (Status s = wait_fd(fd_, POLLIN, deadline); !s.is_ok()) return s;
        continue;
      }
      if (errno == EINTR) continue;
      // A post-shutdown accept4 fails with EINVAL; report it as the close
      // it is rather than an internal error.
      if (!open_.load(std::memory_order_acquire)) {
        return Status{StatusCode::kClosed, "listener closed"};
      }
      return errno_status("accept");
    }
  }

  void close() override {
    if (open_.exchange(false, std::memory_order_acq_rel)) {
      ::shutdown(fd_, SHUT_RDWR);  // wakes blocked accept() calls
    }
  }

  std::string address() const override { return address_; }

  int native_handle() const override { return fd_; }

 private:
  const int fd_;
  std::atomic<bool> open_{true};
  std::string address_;
};

/// One parsed "host:port" (or bare-port) address. `host` is in network byte
/// order; `loopback` records whether the host was implied rather than named,
/// so listen() can keep returning the historical bare-port form.
struct ParsedAddress {
  std::uint32_t host = 0;
  std::uint16_t port = 0;
  bool loopback = true;
};

/// Accepts "PORT" (loopback, the historical form), "HOST:PORT" with a dotted
/// quad, "localhost:PORT", and "0.0.0.0:PORT" (any-interface bind for
/// cross-host fleets). `min_port` is 0 for listen (ephemeral bind) and 1 for
/// connect (you cannot dial port 0).
Result<ParsedAddress> parse_address(const std::string& address, int min_port) {
  ParsedAddress out;
  std::string host = "";
  std::string port_text = address;
  if (const auto colon = address.rfind(':'); colon != std::string::npos) {
    host = address.substr(0, colon);
    port_text = address.substr(colon + 1);
  }
  if (port_text.empty() ||
      port_text.find_first_not_of("0123456789") != std::string::npos) {
    return Status{StatusCode::kInvalidArgument, "bad port: " + address};
  }
  const long port = std::strtol(port_text.c_str(), nullptr, 10);
  if (port < min_port || port > 65535) {
    return Status{StatusCode::kInvalidArgument, "bad port: " + address};
  }
  out.port = static_cast<std::uint16_t>(port);
  if (host.empty() || host == "localhost" || host == "127.0.0.1") {
    out.host = htonl(INADDR_LOOPBACK);
    out.loopback = host.empty();
    return out;
  }
  out.loopback = false;
  in_addr parsed{};
  if (::inet_pton(AF_INET, host.c_str(), &parsed) != 1) {
    return Status{StatusCode::kInvalidArgument, "bad host: " + address};
  }
  out.host = parsed.s_addr;
  return out;
}

}  // namespace

Result<ListenerPtr> TcpNetwork::listen(const std::string& address) {
  Result<ParsedAddress> parsed = parse_address(address, 0);
  if (!parsed.is_ok()) return parsed.status();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return errno_status("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = parsed.value().host;
  addr.sin_port = htons(parsed.value().port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return errno_status("bind");
  }
  if (::listen(fd, 128) < 0) {
    ::close(fd);
    return errno_status("listen");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  // The historical bare-port form stays bare (every loopback caller feeds
  // the returned address straight back into connect()); named hosts come
  // back in the same host:port form they were given.
  std::string bound = std::to_string(ntohs(addr.sin_port));
  if (!parsed.value().loopback) {
    char buf[64];
    ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf));
    bound = std::string(buf) + ":" + bound;
  }
  return ListenerPtr{std::make_unique<TcpListener>(fd, std::move(bound))};
}

Result<ConnectionPtr> TcpNetwork::connect(const std::string& address,
                                          Deadline deadline) {
  Result<ParsedAddress> parsed = parse_address(address, 1);
  if (!parsed.is_ok()) return parsed.status();
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return errno_status("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = parsed.value().host;
  addr.sin_port = htons(parsed.value().port);
  // Non-blocking connect + poll honors the caller's deadline (a blocking
  // ::connect would ignore it for however long the kernel retries SYNs);
  // the handshake outcome is then read back from SO_ERROR.
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    int err = errno;
    if (err == EINPROGRESS) {
      if (Status s = wait_fd(fd, POLLOUT, deadline); !s.is_ok()) {
        ::close(fd);
        return s;  // kTimeout: the handshake did not finish in time
      }
      err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
        ::close(fd);
        return errno_status("getsockopt(SO_ERROR)");
      }
      if (err == 0) break;
    }
    ::close(fd);
    if (err == ECONNREFUSED) {
      return Status{StatusCode::kNotFound, "no listener at port " + address};
    }
    return Status{StatusCode::kInternal,
                  std::string("connect: ") + std::strerror(err)};
  }
  char peer[64];
  ::inet_ntop(AF_INET, &addr.sin_addr, peer, sizeof(peer));
  return ConnectionPtr{std::make_shared<TcpConnection>(
      fd, std::string(peer) + ":" + std::to_string(parsed.value().port))};
}

TcpWireStats tcp_wire_stats() {
  TcpWireStats out;
  for (WireStripe& stripe : g_wire_stripes) {
    std::scoped_lock lock(stripe.mutex);
    out.send_batches += stripe.stats.send_batches;
    out.messages_sent += stripe.stats.messages_sent;
    out.short_writes += stripe.stats.short_writes;
    out.batch_messages.merge(stripe.stats.batch_messages);
    out.short_write_bytes.merge(stripe.stats.short_write_bytes);
  }
  return out;
}

void reset_tcp_wire_stats() {
  for (WireStripe& stripe : g_wire_stripes) {
    std::scoped_lock lock(stripe.mutex);
    stripe.stats = TcpWireStats{};
  }
}

}  // namespace cs::net
