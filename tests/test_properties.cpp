// Property-based sweeps over the library's core invariants, using
// parameterized gtest suites:
//   * wire robustness: no mutated frame may crash the decoder or be
//     accepted with inconsistent structure,
//   * LBM conservation laws across the physical parameter grid,
//   * tree-code accuracy across (theta, N),
//   * frame-codec round trips across shapes and content,
//   * Morton-order locality,
//   * steering-control invariants across command orderings.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "common/rng.hpp"
#include "covise/dataobject.hpp"
#include "unicore/ajo.hpp"
#include "unicore/upl.hpp"
#include "visit/proxy.hpp"
#include "sim/lbm/checkpoint.hpp"
#include "sim/lbm/lbm.hpp"
#include "sim/pepc/direct.hpp"
#include "sim/pepc/domain.hpp"
#include "sim/pepc/tree.hpp"
#include "steer/control.hpp"
#include "viz/compress.hpp"
#include "wire/convert.hpp"
#include "wire/message.hpp"

namespace cs {
namespace {

// ------------------------------------------------- wire decode robustness --

class WireFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(WireFuzzTest, MutatedFramesNeverCrashAndNeverLie) {
  common::Rng rng{static_cast<std::uint64_t>(GetParam()) * 7919 + 13};
  // Start from a valid frame of random type/size...
  const std::size_t count = rng.next_below(64) + 1;
  std::vector<double> values(count);
  for (auto& v : values) v = rng.uniform(-1e6, 1e6);
  auto frame = wire::make_data_message(
                   static_cast<std::uint32_t>(rng.next_below(1000)),
                   values.data(), values.size())
                   .encode();
  // ...then flip a handful of random bytes.
  const int flips = 1 + static_cast<int>(rng.next_below(8));
  for (int f = 0; f < flips; ++f) {
    frame[rng.next_below(frame.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
  }
  auto decoded = wire::Message::decode(frame);
  if (decoded.is_ok()) {
    // If the decoder accepts it, the structure must be self-consistent.
    const auto& m = decoded.value();
    EXPECT_EQ(m.payload.size(), m.header.payload_bytes);
    EXPECT_EQ(m.header.payload_bytes,
              m.header.count * wire::size_of(m.header.elem_type));
    // And extraction must not read out of bounds (sanitizers would bark).
    auto extracted = wire::extract_as<double>(m);
    (void)extracted;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest, ::testing::Range(0, 50));

class ProxyFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ProxyFuzzTest, MutatedProxyRequestsNeverCrash) {
  common::Rng rng{static_cast<std::uint64_t>(GetParam()) * 104729 + 7};
  common::Bytes raw(rng.next_below(64) + 1);
  for (auto& b : raw) b = static_cast<std::uint8_t>(rng.next_below(256));
  auto decoded = visit::decode_proxy_request(raw);
  (void)decoded;  // must not crash; either outcome is acceptable
  auto response = visit::decode_proxy_response(raw);
  (void)response;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProxyFuzzTest, ::testing::Range(0, 50));

class UplFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(UplFuzzTest, MutatedTransactionsNeverCrashTheGatewayCodec) {
  common::Rng rng{static_cast<std::uint64_t>(GetParam()) * 613 + 29};
  // Mutate a valid request and a valid response.
  unicore::UplRequest request;
  request.op = unicore::UplOp::kConsign;
  request.identity = unicore::issue_certificate("CN=Fuzz", "k");
  request.vsite = "site";
  request.text = unicore::AjoBuilder("j", "site").execute("x").build().serialize();
  auto raw = unicore::encode_upl_request(request);
  for (int f = 0; f < 6; ++f) {
    raw[rng.next_below(raw.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
  }
  (void)unicore::decode_upl_request(raw);  // must not crash or over-allocate

  unicore::UplResponse response;
  response.has_outcome = true;
  response.outcome.state = unicore::JobState::kSuccessful;
  response.outcome.exported_files["a"] = "b";
  auto raw2 = unicore::encode_upl_response(response);
  for (int f = 0; f < 6; ++f) {
    raw2[rng.next_below(raw2.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
  }
  (void)unicore::decode_upl_response(raw2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UplFuzzTest, ::testing::Range(0, 50));

class AjoFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(AjoFuzzTest, RandomTextNeverCrashesTheAjoParser) {
  common::Rng rng{static_cast<std::uint64_t>(GetParam()) * 997 + 3};
  std::string text;
  const char alphabet[] = "AJO1|EXECUTE\nIMPORT%0aSTEERING=abc|";
  const std::size_t len = rng.next_below(200);
  for (std::size_t i = 0; i < len; ++i) {
    text += alphabet[rng.next_below(sizeof(alphabet) - 1)];
  }
  auto parsed = unicore::Ajo::parse(text);
  if (parsed.is_ok()) {
    // Anything accepted must re-serialize and re-parse to the same job.
    auto again = unicore::Ajo::parse(parsed.value().serialize());
    ASSERT_TRUE(again.is_ok());
    EXPECT_EQ(again.value(), parsed.value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AjoFuzzTest, ::testing::Range(0, 50));

class DataObjectFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(DataObjectFuzzTest, MutatedObjectsNeverCrashTheCrbCodec) {
  common::Rng rng{static_cast<std::uint64_t>(GetParam()) * 389 + 17};
  covise::UniformGridData grid;
  grid.nx = grid.ny = grid.nz = 6;
  grid.values.assign(216, 1.5f);
  covise::DataObject object{"host/m/p/0", std::move(grid)};
  object.set_attribute("COLOR", "red");
  auto raw = object.encode();
  for (int f = 0; f < 6; ++f) {
    raw[rng.next_below(raw.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
  }
  auto decoded = covise::DataObject::decode(raw);
  if (decoded.is_ok()) {
    // Accepted objects must be internally consistent enough to size.
    (void)decoded.value().byte_size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataObjectFuzzTest, ::testing::Range(0, 50));

class CheckpointFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(CheckpointFuzzTest, MutatedCheckpointsNeverCrashRestore) {
  common::Rng rng{static_cast<std::uint64_t>(GetParam()) * 271 + 41};
  lbm::LbmConfig config;
  config.nx = config.ny = config.nz = 6;
  lbm::TwoFluidLbm sim(config);
  auto raw = lbm::checkpoint(sim);
  for (int f = 0; f < 4; ++f) {
    raw[rng.next_below(raw.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
  }
  auto restored = lbm::restore(raw);
  if (restored.is_ok()) {
    restored.value().step();  // usable if accepted
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointFuzzTest, ::testing::Range(0, 30));

// ----------------------------------------------------- LBM conservation ----

struct LbmParams {
  double coupling;
  double tau;
  int size;
};

class LbmConservationTest : public ::testing::TestWithParam<LbmParams> {};

TEST_P(LbmConservationTest, MassConservedAndFieldsFinite) {
  const auto p = GetParam();
  lbm::LbmConfig config;
  config.nx = config.ny = config.nz = p.size;
  config.coupling = p.coupling;
  config.tau_a = config.tau_b = p.tau;
  config.seed = 23;
  lbm::TwoFluidLbm sim(config);
  const double ma0 = sim.mass_a();
  const double mb0 = sim.mass_b();
  for (int s = 0; s < 40; ++s) sim.step();
  EXPECT_NEAR(sim.mass_a(), ma0, 1e-8 * ma0);
  EXPECT_NEAR(sim.mass_b(), mb0, 1e-8 * mb0);
  for (float phi : sim.order_parameter()) {
    EXPECT_TRUE(std::isfinite(phi));
    EXPECT_GE(phi, -1.0f);
    EXPECT_LE(phi, 1.0f);
  }
  // Checkpoint round trip holds across the whole parameter grid.
  auto restored = lbm::restore(lbm::checkpoint(sim));
  ASSERT_TRUE(restored.is_ok());
  EXPECT_EQ(restored.value().distributions_a(), sim.distributions_a());
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, LbmConservationTest,
    ::testing::Values(LbmParams{0.0, 1.0, 8}, LbmParams{1.2, 1.0, 8},
                      LbmParams{1.8, 1.0, 8}, LbmParams{1.5, 0.8, 8},
                      LbmParams{1.5, 1.4, 8}, LbmParams{1.8, 1.0, 12},
                      LbmParams{2.1, 1.2, 10}));

// ------------------------------------------------------- tree accuracy -----

struct TreeParams {
  double theta;
  int n;
  double max_rms_error;
};

class TreeAccuracyTest : public ::testing::TestWithParam<TreeParams> {};

TEST_P(TreeAccuracyTest, ForceErrorWithinBudget) {
  const auto p = GetParam();
  common::Rng rng{31};
  std::vector<pepc::Particle> particles(static_cast<std::size_t>(p.n));
  for (std::size_t i = 0; i < particles.size(); ++i) {
    particles[i].pos[0] = rng.uniform(-1, 1);
    particles[i].pos[1] = rng.uniform(-1, 1);
    particles[i].pos[2] = rng.uniform(-1, 1);
    particles[i].charge = (i % 2 == 0) ? 1.0 : -1.0;
  }
  pepc::TreeConfig config;
  config.theta = p.theta;
  pepc::Octree tree(config);
  tree.build(particles);
  pepc::DirectSolver direct(config.softening);
  double err2 = 0, ref2 = 0;
  for (std::size_t i = 0; i < particles.size(); ++i) {
    const auto approx =
        particles[i].charge * tree.field_at(particles[i].position(), i);
    const auto exact = particles[i].charge *
                       direct.field_at(particles, particles[i].position(), i);
    err2 += norm2(approx - exact);
    ref2 += norm2(exact);
  }
  EXPECT_LT(std::sqrt(err2 / ref2), p.max_rms_error)
      << "theta=" << p.theta << " n=" << p.n;
}

INSTANTIATE_TEST_SUITE_P(
    ThetaNSweep, TreeAccuracyTest,
    ::testing::Values(TreeParams{0.3, 200, 0.005}, TreeParams{0.3, 800, 0.005},
                      TreeParams{0.6, 200, 0.03}, TreeParams{0.6, 800, 0.03},
                      TreeParams{0.9, 200, 0.10}, TreeParams{0.9, 800, 0.10}));

// -------------------------------------------------------- frame codec ------

struct FrameParams {
  int width, height;
  int content;  // 0 flat, 1 noise, 2 gradient
};

class FrameCodecTest : public ::testing::TestWithParam<FrameParams> {};

viz::Image make_content(const FrameParams& p, std::uint64_t seed) {
  viz::Image img(p.width, p.height);
  common::Rng rng{seed};
  for (int y = 0; y < p.height; ++y) {
    for (int x = 0; x < p.width; ++x) {
      switch (p.content) {
        case 0: img.at(x, y) = {40, 80, 120}; break;
        case 1:
          img.at(x, y) = {static_cast<std::uint8_t>(rng.next_below(256)),
                          static_cast<std::uint8_t>(rng.next_below(256)),
                          static_cast<std::uint8_t>(rng.next_below(256))};
          break;
        default:
          img.at(x, y) = {static_cast<std::uint8_t>(x * 255 / p.width),
                          static_cast<std::uint8_t>(y * 255 / p.height), 60};
      }
    }
  }
  return img;
}

TEST_P(FrameCodecTest, KeyAndDeltaRoundTripLosslessly) {
  const auto p = GetParam();
  const viz::Image a = make_content(p, 1);
  viz::Image b = a;
  if (p.width > 2 && p.height > 2) {
    b.at(p.width / 2, p.height / 2) = {255, 0, 255};
    b.at(1, 1) = {0, 255, 0};
  }
  auto key = viz::decompress_frame(viz::compress_frame(a));
  ASSERT_TRUE(key.is_ok());
  EXPECT_EQ(key.value(), a);
  auto delta = viz::decompress_frame_delta(viz::compress_frame_delta(b, a), a);
  ASSERT_TRUE(delta.is_ok());
  EXPECT_EQ(delta.value(), b);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FrameCodecTest,
    ::testing::Values(FrameParams{1, 1, 0}, FrameParams{7, 3, 1},
                      FrameParams{64, 64, 0}, FrameParams{64, 64, 1},
                      FrameParams{64, 64, 2}, FrameParams{320, 240, 2},
                      FrameParams{255, 1, 1}, FrameParams{1, 255, 2}));

// ------------------------------------------------------ Morton locality ----

class MortonTest : public ::testing::TestWithParam<int> {};

TEST_P(MortonTest, ConsecutiveKeysAreSpatialNeighbors) {
  // Walking the Morton order, consecutive particles should be close in
  // space on average — the property that makes chunked decomposition
  // spatially compact.
  const int n = 512;
  common::Rng rng{static_cast<std::uint64_t>(GetParam()) + 100};
  std::vector<pepc::Particle> particles(n);
  for (auto& p : particles) {
    p.pos[0] = rng.uniform(0, 1);
    p.pos[1] = rng.uniform(0, 1);
    p.pos[2] = rng.uniform(0, 1);
  }
  std::vector<std::pair<std::uint64_t, int>> keyed(n);
  for (int i = 0; i < n; ++i) {
    keyed[static_cast<std::size_t>(i)] = {
        pepc::morton_key(particles[static_cast<std::size_t>(i)].position(),
                         {0, 0, 0}, 1.0),
        i};
  }
  std::sort(keyed.begin(), keyed.end());
  double morton_dist = 0, random_dist = 0;
  for (int i = 0; i + 1 < n; ++i) {
    morton_dist += norm(
        particles[static_cast<std::size_t>(keyed[static_cast<std::size_t>(i)].second)].position() -
        particles[static_cast<std::size_t>(keyed[static_cast<std::size_t>(i) + 1].second)].position());
    random_dist += norm(particles[static_cast<std::size_t>(i)].position() -
                        particles[static_cast<std::size_t>(i) + 1].position());
  }
  EXPECT_LT(morton_dist, random_dist * 0.5)
      << "Morton walk should be much shorter than a random walk";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MortonTest, ::testing::Range(0, 5));

// ----------------------------------------------- steering-control orders ---

class SteeringOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(SteeringOrderTest, RandomCommandSequencesNeverWedgeTheLoop) {
  common::Rng rng{static_cast<std::uint64_t>(GetParam()) * 31 + 5};
  steer::SteeringControl ctl;
  double v = 0.5;
  ctl.register_steerable("v", &v, 0.0, 1.0);
  std::atomic<bool> done{false};
  std::jthread app([&] {
    // The app loop: runs until stop, never deadlocks.
    while (ctl.sync() != steer::Command::kStop) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    done.store(true);
  });
  const char* commands[] = {"pause", "resume", "checkpoint", "emit-sample"};
  for (int i = 0; i < 30; ++i) {
    (void)ctl.command(commands[rng.next_below(4)]);
    if (i % 3 == 0) {
      (void)ctl.set_param("v", std::to_string(rng.next_double()));
    }
  }
  (void)ctl.command("stop");
  app.join();
  EXPECT_TRUE(done.load());
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SteeringOrderTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace cs
