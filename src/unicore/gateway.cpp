#include "unicore/gateway.hpp"

#include "common/log.hpp"

namespace cs::unicore {

using common::Result;
using common::Status;
using common::StatusCode;

Result<std::unique_ptr<Gateway>> Gateway::start(net::Network& net,
                                                const Options& options) {
  auto listener = net.listen(options.address);
  if (!listener.is_ok()) return listener.status();
  auto host = net::ConnectionHost::start(net::ConnectionHost::Options{});
  if (!host.is_ok()) return host.status();
  std::unique_ptr<Gateway> gw{new Gateway};
  gw->options_ = options;
  gw->listener_ = std::move(listener).value();
  gw->host_ = std::move(host).value();
  Gateway* self = gw.get();
  // Event-driven accept when the transport allows: registration with the
  // host is enqueue-only, so the handler is poller-safe.
  gw->accept_pump_ = std::make_unique<net::AcceptPump>(
      gw->host_->event_host(), *gw->listener_,
      [self](net::ConnectionPtr conn) { self->handle_conn(std::move(conn)); });
  return gw;
}

Gateway::~Gateway() { stop(); }

void Gateway::stop() {
  if (stopped_.exchange(true)) return;
  // Uniform teardown order: listener, accept pump, host.
  if (listener_) listener_->close();
  if (accept_pump_) accept_pump_->stop();
  if (host_) host_->stop();
}

void Gateway::register_vsite(Njs& njs) {
  std::scoped_lock lock(mutex_);
  vsites_[njs.vsite()] = &njs;
}

Gateway::Stats Gateway::stats() const {
  // Shim over the registry-backed counters (see gateway.hpp).
  Stats out;
  out.transactions = ctr_transactions_.value();
  out.rejected_untrusted = ctr_rejected_untrusted_.value();
  return out;
}

std::size_t Gateway::service_threads() const {
  return (accept_pump_ && !accept_pump_->event_driven() ? 1 : 0) +
         (host_ ? host_->thread_count() : 0);
}

void Gateway::handle_conn(net::ConnectionPtr conn) {
  if (stopped_.load()) {  // raced with stop(): don't leak a live conn
    conn->close();
    return;
  }
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  // The gateway keeps no per-connection state beyond the host's own entry,
  // so teardown-for-cause needs no service-side cleanup.
  const bool hosted = host_->add(
      id, conn,
      [this](std::uint64_t cid, common::Bytes message) {
        on_message(cid, message);
      },
      {});
  if (!hosted) conn->close();  // raced with stop()
}

void Gateway::on_message(std::uint64_t id, const common::Bytes& message) {
  UplResponse response;
  auto request = decode_upl_request(message);
  if (!request.is_ok()) {
    response.status = request.status();
  } else {
    response = handle(request.value());
  }
  // Replies are control traffic: a client that stops draining its replies
  // is disconnected (lossless-or-dead), never silently starved.
  (void)host_->reply(id, encode_upl_response(response));
}

UplResponse Gateway::handle(const UplRequest& request) {
  UplResponse response;
  Njs* njs = nullptr;
  ctr_transactions_.add();
  {
    std::scoped_lock lock(mutex_);
    if (!trust_.is_trusted(request.identity)) {
      ctr_rejected_untrusted_.add();
      response.status =
          Status{StatusCode::kPermissionDenied,
                 "certificate not trusted: " + request.identity.subject};
      return response;
    }
    auto it = vsites_.find(request.vsite);
    if (it == vsites_.end()) {
      response.status =
          Status{StatusCode::kNotFound, "unknown vsite: " + request.vsite};
      return response;
    }
    njs = it->second;
  }

  switch (request.op) {
    case UplOp::kConsign: {
      auto ajo = Ajo::parse(request.text);
      if (!ajo.is_ok()) {
        response.status = ajo.status();
        return response;
      }
      auto job = njs->consign(ajo.value(), request.identity);
      if (!job.is_ok()) {
        response.status = job.status();
        return response;
      }
      response.text = std::move(job).value();
      return response;
    }
    case UplOp::kStatus: {
      auto state = njs->job_state(request.job_id, request.identity);
      if (!state.is_ok()) {
        response.status = state.status();
        return response;
      }
      response.text = std::string(to_string(state.value()));
      return response;
    }
    case UplOp::kOutcome: {
      auto outcome = njs->job_outcome(request.job_id, request.identity);
      if (!outcome.is_ok()) {
        response.status = outcome.status();
        return response;
      }
      response.outcome = std::move(outcome).value();
      response.has_outcome = true;
      return response;
    }
    case UplOp::kAbort: {
      response.status = njs->abort_job(request.job_id, request.identity);
      return response;
    }
    case UplOp::kInvite: {
      const auto sep = request.text.find('\x1f');
      if (sep == std::string::npos) {
        response.status =
            Status{StatusCode::kInvalidArgument, "bad invite payload"};
        return response;
      }
      Certificate guest{request.text.substr(0, sep),
                        request.text.substr(sep + 1)};
      response.status = njs->invite(request.job_id, request.identity, guest);
      return response;
    }
    case UplOp::kVisit: {
      auto reply =
          njs->visit_transact(request.job_id, request.identity, request.binary);
      if (!reply.is_ok()) {
        response.status = reply.status();
        return response;
      }
      response.binary = std::move(reply).value();
      return response;
    }
  }
  response.status = Status{StatusCode::kInvalidArgument, "bad op"};
  return response;
}

}  // namespace cs::unicore
