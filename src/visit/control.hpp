// External control-data server for the "sense of presence" channel.
//
// "Like video and audio, the exchange of control information between the
// visualizations is sensitive to latency... we have implemented an external
// server that collects and redistributes the control data. This server
// allows to assign different roles to the participants: one role allows to
// change visualization parameters like the view angle and a second role is
// just for passive viewers." (paper section 3.3)
//
// The server relays small control records (view point, tool parameters)
// among participants with minimal processing. Participants join with a role:
//   actor    — may publish control updates
//   observer — receives updates only; its publishes are rejected and counted
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "net/accept_pump.hpp"
#include "net/conn_host.hpp"
#include "net/transport.hpp"
#include "obs/registry.hpp"
#include "wire/message.hpp"

namespace cs::visit {

/// Relay hub for the latency-sensitive control channel (view points, tool
/// parameters): actors publish, everyone else observes.
class ControlServer {
 public:
  struct Options {
    std::string address;   ///< address participants connect to
    std::string password;  ///< shared session password
    /// Historical per-participant relay deadline. Relays now ride each
    /// participant's bounded outbound queue (drop-oldest), which preserves
    /// the contract the deadline enforced: a slow participant misses
    /// updates rather than delaying the rest of the fan-out.
    common::Duration forward_timeout = std::chrono::milliseconds(20);
    /// Per-participant relay queue bound, in frames.
    std::size_t queue_capacity = 32;
  };

  struct Stats {
    std::uint64_t updates_relayed = 0;   ///< actor updates fanned out
    std::uint64_t updates_rejected = 0;  ///< observer publishes dropped
  };

  /// Binds the listener and starts the accept loop.
  static common::Result<std::unique_ptr<ControlServer>> start(
      net::Network& net, const Options& options);

  ~ControlServer();
  ControlServer(const ControlServer&) = delete;
  ControlServer& operator=(const ControlServer&) = delete;

  /// Disconnects every participant and stops the hosting threads.
  /// Idempotent.
  void stop();
  /// Resolved listen address (kernel-assigned ports made concrete).
  std::string address() const { return listener_->address(); }
  /// Number of currently connected participants.
  std::size_t participant_count() const;
  /// Snapshot of the relay counters (shim over the metrics registry).
  Stats stats() const;
  /// Threads the server owns regardless of participant count: the accept
  /// pump plus the connection host (pollers + fallback pump).
  std::size_t service_threads() const;
  /// The service's metrics registry (source of truth for the counters).
  obs::Registry& metrics() noexcept { return metrics_; }

 private:
  ControlServer() = default;
  /// Accept-pump handler: handshake + role declaration (blocking, on the
  /// pump thread), then registration with the connection host.
  void handle_conn(net::ConnectionPtr conn);
  void on_message(std::uint64_t id, bool actor, const common::Bytes& message);
  void remove(std::uint64_t id);

  struct Participant {
    net::ConnectionPtr conn;
    bool actor = false;
  };

  Options options_;
  net::ListenerPtr listener_;
  std::unique_ptr<net::ConnectionHost> host_;
  std::unique_ptr<net::AcceptPump> accept_pump_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, Participant> participants_;
  std::uint64_t next_id_ = 1;
  /// Registry-backed counters; stats() reads them back for the old shape.
  obs::Registry metrics_;
  obs::Counter& ctr_updates_relayed_ =
      metrics_.counter("control_updates_relayed", "updates");
  obs::Counter& ctr_updates_rejected_ =
      metrics_.counter("control_updates_rejected", "updates");
  std::atomic<bool> stopped_{false};
};

/// Participant endpoint for the control channel.
class ControlClient {
 public:
  /// `role` is "actor" or "observer".
  static common::Result<ControlClient> connect(net::Network& net,
                                               const std::string& address,
                                               const std::string& password,
                                               const std::string& role,
                                               common::Deadline deadline);

  /// Publishes a control record (e.g. a serialized view matrix).
  common::Status publish(std::string_view control_data,
                         common::Deadline deadline);

  /// Receives the next control record relayed from another participant.
  common::Result<std::string> receive(common::Deadline deadline);

  void disconnect();
  bool connected() const noexcept { return conn_ && conn_->is_open(); }

 private:
  net::ConnectionPtr conn_;
};

}  // namespace cs::visit
