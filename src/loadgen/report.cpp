#include "loadgen/report.hpp"

#include <cinttypes>
#include <cstdio>

namespace cs::loadgen {

namespace {

double ns_to_us(std::uint64_t ns) noexcept {
  return static_cast<double>(ns) / 1000.0;
}

void append_field(std::string& out, const char* key, double value,
                  bool trailing_comma = true) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "      \"%s\": %.6g%s\n", key, value,
                trailing_comma ? "," : "");
  out += buf;
}

void append_field(std::string& out, const char* key, std::uint64_t value,
                  bool trailing_comma = true) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "      \"%s\": %" PRIu64 "%s\n", key, value,
                trailing_comma ? "," : "");
  out += buf;
}

}  // namespace

double Report::seconds() const noexcept {
  return std::chrono::duration<double>(elapsed).count();
}

double Report::ops_per_second() const noexcept {
  const double s = seconds();
  return s > 0.0 ? static_cast<double>(ops) / s : 0.0;
}

double Report::recv_bytes_per_second() const noexcept {
  const double s = seconds();
  return s > 0.0 ? static_cast<double>(transport.bytes_received) / s : 0.0;
}

void Report::add_connection(const ConnectionReport& conn,
                            const common::Histogram& worker_latency) {
  ops += conn.ops;
  timeouts += conn.timeouts;
  errors += conn.errors;
  transport.messages_sent += conn.transport.messages_sent;
  transport.bytes_sent += conn.transport.bytes_sent;
  transport.messages_received += conn.transport.messages_received;
  transport.bytes_received += conn.transport.bytes_received;
  latency.merge(worker_latency);
  per_connection.push_back(conn);
}

std::string to_json(const Report& report) {
  std::string out;
  out += "{\n";
  out += "  \"context\": {\n";
  out += "    \"executable\": \"loadgen\",\n";
  out += "    \"scenario\": \"" + report.name + "\",\n";
  out += "    \"connections\": " + std::to_string(report.connections) + "\n";
  out += "  },\n";
  out += "  \"benchmarks\": [\n";
  out += "    {\n";
  out += "      \"name\": \"loadgen/" + report.name + "\",\n";
  out += "      \"run_type\": \"iteration\",\n";
  out += "      \"time_unit\": \"ns\",\n";
  append_field(out, "iterations", report.ops);
  append_field(out, "real_time",
               static_cast<double>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       report.elapsed)
                       .count()));
  append_field(out, "items_per_second", report.ops_per_second());
  append_field(out, "bytes_per_second", report.recv_bytes_per_second());
  append_field(out, "timeouts", report.timeouts);
  append_field(out, "errors", report.errors);
  // 1 when worker shards are missing (see Report::completeness); tooling
  // must not read a partial soak as a clean before/after data point.
  append_field(out, "partial", std::uint64_t{report.is_partial() ? 1u : 0u});
  append_field(out, "messages_sent", report.transport.messages_sent);
  append_field(out, "bytes_sent", report.transport.bytes_sent);
  append_field(out, "messages_received", report.transport.messages_received);
  append_field(out, "bytes_received", report.transport.bytes_received);
  for (const auto& [key, value] : report.service_metrics) {
    append_field(out, key.c_str(), value);
  }
  append_field(out, "latency_samples", report.latency.count());
  append_field(out, "latency_min_us", ns_to_us(report.latency.min()));
  append_field(out, "latency_mean_us", report.latency.mean() / 1000.0);
  append_field(out, "latency_p50_us", ns_to_us(report.latency.p50()));
  append_field(out, "latency_p95_us", ns_to_us(report.latency.p95()));
  append_field(out, "latency_p99_us", ns_to_us(report.latency.p99()));
  append_field(out, "latency_p999_us", ns_to_us(report.latency.p999()));
  append_field(out, "latency_max_us", ns_to_us(report.latency.max()),
               /*trailing_comma=*/false);
  out += "    }\n";
  out += "  ]\n";
  out += "}\n";
  return out;
}

std::string summary_line(const Report& report) {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "%s%s: %zu conns, %.2fs, %" PRIu64 " ops (%.0f/s), %" PRIu64
      " timeouts, %" PRIu64
      " errors, latency us p50=%.1f p95=%.1f p99=%.1f max=%.1f",
      report.name.c_str(), report.is_partial() ? " [PARTIAL]" : "",
      report.connections, report.seconds(), report.ops,
      report.ops_per_second(), report.timeouts, report.errors,
      ns_to_us(report.latency.p50()), ns_to_us(report.latency.p95()),
      ns_to_us(report.latency.p99()), ns_to_us(report.latency.max()));
  return std::string(buf);
}

}  // namespace cs::loadgen
