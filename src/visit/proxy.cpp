#include "visit/proxy.hpp"

#include "common/log.hpp"
#include "visit/server.hpp"
#include "visit/tags.hpp"

namespace cs::visit {

using common::ByteOrder;
using common::Bytes;
using common::ByteSpan;
using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {
constexpr auto kPumpSlice = std::chrono::milliseconds(50);

void append_frames(Bytes& out, const std::vector<Bytes>& frames) {
  common::append_uint<std::uint32_t>(out, static_cast<std::uint32_t>(frames.size()),
                                     ByteOrder::kBig);
  for (const auto& f : frames) {
    common::append_uint<std::uint32_t>(out, static_cast<std::uint32_t>(f.size()),
                                       ByteOrder::kBig);
    common::append_bytes(out, f);
  }
}

Result<std::vector<Bytes>> read_frames(ByteSpan& in) {
  if (in.size() < 4) {
    return Status{StatusCode::kProtocolError, "frame list truncated"};
  }
  const auto n = common::read_uint<std::uint32_t>(in, ByteOrder::kBig);
  in = in.subspan(4);
  // Each frame needs at least its 4-byte length prefix; a count beyond
  // that is corrupt (and must not drive an allocation).
  if (n > in.size() / 4) {
    return Status{StatusCode::kProtocolError, "frame count exceeds payload"};
  }
  std::vector<Bytes> frames;
  frames.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (in.size() < 4) {
      return Status{StatusCode::kProtocolError, "frame length truncated"};
    }
    const auto len = common::read_uint<std::uint32_t>(in, ByteOrder::kBig);
    in = in.subspan(4);
    if (in.size() < len) {
      return Status{StatusCode::kProtocolError, "frame body truncated"};
    }
    frames.emplace_back(in.begin(), in.begin() + len);
    in = in.subspan(len);
  }
  return frames;
}
}  // namespace

Bytes encode_proxy_request(const ProxyRequest& request) {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(request.op));
  common::append_uint<std::uint64_t>(out, request.attachment, ByteOrder::kBig);
  common::append_uint<std::uint32_t>(out, request.max_frames, ByteOrder::kBig);
  append_frames(out, request.frames);
  return out;
}

Result<ProxyRequest> decode_proxy_request(ByteSpan raw) {
  if (raw.size() < 1 + 8 + 4) {
    return Status{StatusCode::kProtocolError, "proxy request truncated"};
  }
  ProxyRequest r;
  if (raw[0] < 1 || raw[0] > 4) {
    return Status{StatusCode::kProtocolError, "bad proxy op"};
  }
  r.op = static_cast<ProxyOp>(raw[0]);
  r.attachment = common::read_uint<std::uint64_t>(raw.subspan(1), ByteOrder::kBig);
  r.max_frames = common::read_uint<std::uint32_t>(raw.subspan(9), ByteOrder::kBig);
  ByteSpan rest = raw.subspan(13);
  auto frames = read_frames(rest);
  if (!frames.is_ok()) return frames.status();
  r.frames = std::move(frames).value();
  return r;
}

Bytes encode_proxy_response(const ProxyResponse& response) {
  Bytes out;
  out.push_back(response.status.is_ok() ? 0 : 1);
  common::append_uint<std::uint64_t>(out, response.attachment, ByteOrder::kBig);
  append_frames(out, response.frames);
  return out;
}

Result<ProxyResponse> decode_proxy_response(ByteSpan raw) {
  if (raw.size() < 1 + 8) {
    return Status{StatusCode::kProtocolError, "proxy response truncated"};
  }
  ProxyResponse r;
  if (raw[0] != 0) {
    r.status = Status{StatusCode::kUnavailable, "proxy reported failure"};
  }
  r.attachment = common::read_uint<std::uint64_t>(raw.subspan(1), ByteOrder::kBig);
  ByteSpan rest = raw.subspan(9);
  auto frames = read_frames(rest);
  if (!frames.is_ok()) return frames.status();
  r.frames = std::move(frames).value();
  return r;
}

// ---------------------------------------------------------------------------
// ProxyServer
// ---------------------------------------------------------------------------

Result<std::unique_ptr<ProxyServer>> ProxyServer::start(
    net::Network& net, const Options& options) {
  auto listener = net.listen(options.sim_address);
  if (!listener.is_ok()) return listener.status();
  std::unique_ptr<ProxyServer> server{new ProxyServer};
  server->options_ = options;
  server->listener_ = std::move(listener).value();
  ProxyServer* self = server.get();
  server->accept_pump_ = std::make_unique<net::AcceptPump>(
      *server->listener_,
      [self](net::ConnectionPtr conn) { self->handle_sim_conn(std::move(conn)); });
  return server;
}

ProxyServer::~ProxyServer() { stop(); }

void ProxyServer::stop() {
  if (stopped_.exchange(true)) return;
  if (listener_) listener_->close();
  // Stop the accept pump first so no new sim pump can be spawned, then take
  // down the current pump under its handoff lock.
  if (accept_pump_) accept_pump_->stop();
  std::scoped_lock lock(sim_pump_mutex_);
  if (sim_pump_thread_.joinable()) {
    sim_pump_thread_.request_stop();
    sim_pump_thread_.join();
  }
}

void ProxyServer::handle_sim_conn(net::ConnectionPtr conn) {
  if (!handshake_accept(*conn, options_.password,
                        Deadline::after(std::chrono::seconds(2)))
           .or_log("visit.proxy")) {
    return;
  }
  std::scoped_lock lock(sim_pump_mutex_);
  if (stopped_.load()) return;  // raced with stop(): don't respawn
  if (sim_pump_thread_.joinable()) {
    sim_pump_thread_.request_stop();
    sim_pump_thread_.join();
  }
  net::ConnectionPtr sim = std::move(conn);
  sim_pump_thread_ =
      std::jthread([this, sim](std::stop_token pst) { sim_pump(pst, sim); });
}

void ProxyServer::sim_pump(const std::stop_token& st, net::ConnectionPtr conn) {
  while (!st.stop_requested()) {
    auto raw = conn->recv(Deadline::after(kPumpSlice));
    if (!raw.is_ok()) {
      if (raw.status().code() == StatusCode::kClosed) return;
      continue;
    }
    auto decoded = wire::Message::decode(raw.value());
    if (!decoded.is_ok()) {
      conn->close();
      return;
    }
    wire::Message m = std::move(decoded).value();
    switch (m.header.kind) {
      case wire::MessageKind::kData: {
        // One encode per sample: the same immutable frame is shared by
        // every attachment queue and the late-attach replay cache.
        const common::FramePtr frame = common::make_frame(m.encode());
        {
          std::scoped_lock lock(mutex_);
          ctr_samples_in_.add();
          last_sample_.insert_or_assign(m.header.tag, frame);
        }
        enqueue_to_all(frame, common::OverflowPolicy::kDropOldest);
        break;
      }
      case wire::MessageKind::kControl: {
        const common::FramePtr frame = common::make_frame(m.encode());
        if (m.header.tag == kTagSchema) {
          auto body = wire::extract_string(m);
          if (body.is_ok()) {
            const auto tag = static_cast<std::uint32_t>(
                std::strtoul(body.value().c_str(), nullptr, 10));
            std::scoped_lock lock(mutex_);
            schema_cache_.insert_or_assign(tag, frame);
          }
        }
        enqueue_to_all(frame, common::OverflowPolicy::kDisconnect);
        break;
      }
      case wire::MessageKind::kRequest: {
        wire::Message reply;
        {
          std::scoped_lock lock(mutex_);
          auto it = parameters_.find(m.header.tag);
          reply = (it != parameters_.end())
                      ? it->second
                      : wire::make_data_message<std::uint8_t>(m.header.tag,
                                                              nullptr, 0);
          ctr_requests_served_.add();
        }
        (void)conn->send(reply.encode(), Deadline::after(kPumpSlice));
        break;
      }
    }
  }
}

void ProxyServer::enqueue_to_all(const common::FramePtr& frame,
                                 common::OverflowPolicy policy) {
  std::scoped_lock lock(mutex_);
  // Collect overflow victims first: detaching mutates the map being walked.
  std::vector<std::uint64_t> doomed;
  for (auto& [id, att] : attachments_) {
    switch (att.queue.push(frame, policy)) {
      case common::OutboundQueue::Push::kQueued:
        ctr_frames_queued_.add();
        break;
      case common::OutboundQueue::Push::kQueuedDropOldest:
        ctr_frames_queued_.add();
        ctr_frames_dropped_.add();
        break;
      case common::OutboundQueue::Push::kDroppedNewest:
        ctr_frames_dropped_.add();
        break;
      case common::OutboundQueue::Push::kRejectedOverflow:
        doomed.push_back(id);
        break;
      case common::OutboundQueue::Push::kCoalesced:
        break;  // replaced a queued frame in place; accounting unchanged
    }
  }
  for (std::uint64_t id : doomed) {
    ctr_overflow_disconnects_.add();
    detach_locked(id);
  }
}

bool ProxyServer::enqueue_to(std::uint64_t id, common::FramePtr frame,
                             common::OverflowPolicy policy) {
  auto it = attachments_.find(id);
  if (it == attachments_.end()) return false;
  switch (it->second.queue.push(std::move(frame), policy)) {
    case common::OutboundQueue::Push::kQueued:
      ctr_frames_queued_.add();
      return true;
    case common::OutboundQueue::Push::kQueuedDropOldest:
      ctr_frames_queued_.add();
      ctr_frames_dropped_.add();
      return true;
    case common::OutboundQueue::Push::kDroppedNewest:
      ctr_frames_dropped_.add();
      return true;
    case common::OutboundQueue::Push::kRejectedOverflow:
      ctr_overflow_disconnects_.add();
      detach_locked(id);
      return false;
    case common::OutboundQueue::Push::kCoalesced:
      return true;  // replaced a queued frame in place
  }
  return false;
}

void ProxyServer::detach_locked(std::uint64_t id) {
  attachments_.erase(id);
  if (master_id_ == id) {
    master_id_ = 0;
    if (!attachments_.empty()) promote_locked(attachments_.begin()->first);
  }
}

void ProxyServer::promote_locked(std::uint64_t id) {
  if (!attachments_.contains(id)) return;
  // Record the new master *before* the demote enqueue: if that enqueue
  // overflows and detaches the old master, detach_locked must not see it as
  // the current master and auto-promote someone else reentrantly.
  const std::uint64_t old_master = (master_id_ != id) ? master_id_ : 0;
  master_id_ = id;
  if (old_master != 0) {
    (void)enqueue_to(
        old_master,
        common::make_frame(
            wire::make_control_message(kTagRole, "viewer").encode()),
        common::OverflowPolicy::kDisconnect);
  }
  (void)enqueue_to(id,
                   common::make_frame(
                       wire::make_control_message(kTagRole, "master").encode()),
                   common::OverflowPolicy::kDisconnect);
}

ProxyResponse ProxyServer::transact(const ProxyRequest& request) {
  ProxyResponse response;
  std::scoped_lock lock(mutex_);
  switch (request.op) {
    case ProxyOp::kAttach: {
      const std::uint64_t id = next_attachment_id_++;
      const auto it =
          attachments_.emplace(id, Attachment{options_.max_queued_frames})
              .first;
      // Replay schemas, the latest sample of each tag ("same view of the
      // data"), and the role notice. Replay is required state: it is seeded
      // past the queue bound if need be (the cached frames are shared, not
      // re-encoded or copied per attachment) — only later traffic competes
      // for the capacity. A fresh attachment can therefore never be torn
      // down by its own replay.
      auto& queue = it->second.queue;
      for (const auto& [tag, frame] : schema_cache_) {
        queue.seed({frame, common::OverflowPolicy::kDisconnect});
        ctr_frames_queued_.add();
      }
      for (const auto& [tag, frame] : last_sample_) {
        queue.seed({frame, common::OverflowPolicy::kDropOldest});
        ctr_frames_queued_.add();
      }
      const bool becomes_master = (master_id_ == 0);
      if (becomes_master) master_id_ = id;
      queue.seed({common::make_frame(
                      wire::make_control_message(
                          kTagRole, becomes_master ? "master" : "viewer")
                          .encode()),
                  common::OverflowPolicy::kDisconnect});
      ctr_frames_queued_.add();
      response.attachment = id;
      return response;
    }
    case ProxyOp::kDetach: {
      detach_locked(request.attachment);
      return response;
    }
    case ProxyOp::kPoll: {
      auto it = attachments_.find(request.attachment);
      if (it == attachments_.end()) {
        response.status = Status{StatusCode::kNotFound, "unknown attachment"};
        return response;
      }
      const std::size_t n =
          std::min<std::size_t>(request.max_frames, it->second.queue.size());
      response.frames.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        response.frames.push_back(*it->second.queue.pop().frame);
      }
      return response;
    }
    case ProxyOp::kPush: {
      if (!attachments_.contains(request.attachment)) {
        response.status = Status{StatusCode::kNotFound, "unknown attachment"};
        return response;
      }
      for (const auto& frame : request.frames) {
        auto m = wire::Message::decode(frame);
        if (!m.is_ok()) {
          response.status = m.status();
          return response;
        }
        if (m.value().header.kind == wire::MessageKind::kControl &&
            m.value().header.tag == kTagTakeMaster) {
          promote_locked(request.attachment);
          continue;
        }
        if (m.value().header.kind == wire::MessageKind::kData) {
          if (request.attachment == master_id_) {
            parameters_.insert_or_assign(m.value().header.tag,
                                         std::move(m).value());
            ctr_steers_accepted_.add();
          } else {
            ctr_steers_rejected_.add();
          }
        }
      }
      return response;
    }
  }
  response.status = Status{StatusCode::kInvalidArgument, "bad op"};
  return response;
}

std::size_t ProxyServer::attachment_count() const {
  std::scoped_lock lock(mutex_);
  return attachments_.size();
}

std::uint64_t ProxyServer::master_id() const {
  std::scoped_lock lock(mutex_);
  return master_id_;
}

ProxyServer::Stats ProxyServer::stats() const {
  // Shim over the registry-backed counters (see proxy.hpp).
  Stats out;
  out.samples_in = ctr_samples_in_.value();
  out.frames_queued = ctr_frames_queued_.value();
  out.frames_dropped = ctr_frames_dropped_.value();
  out.overflow_disconnects = ctr_overflow_disconnects_.value();
  out.steers_accepted = ctr_steers_accepted_.value();
  out.steers_rejected = ctr_steers_rejected_.value();
  out.requests_served = ctr_requests_served_.value();
  return out;
}

// ---------------------------------------------------------------------------
// ProxyClient
// ---------------------------------------------------------------------------

/// Local endpoint handed to ViewerClient: recv() pops frames fetched by the
/// poll loop; send() performs a synchronous PUSH transaction.
class ProxyClient::Pipe : public net::Connection {
 public:
  Pipe(ProxyTransact transact, std::uint64_t attachment)
      : transact_(std::move(transact)), attachment_(attachment) {}

  Status send(ByteSpan message, Deadline deadline) override {
    (void)deadline;  // the transaction itself is the bound
    if (closed_.load()) return Status{StatusCode::kClosed, "detached"};
    ProxyRequest req;
    req.op = ProxyOp::kPush;
    req.attachment = attachment_;
    req.frames.emplace_back(message.begin(), message.end());
    auto raw = transact_(encode_proxy_request(req));
    if (!raw.is_ok()) return raw.status();
    auto resp = decode_proxy_response(raw.value());
    if (!resp.is_ok()) return resp.status();
    return resp.value().status;
  }

  Result<Bytes> recv(Deadline deadline) override {
    std::unique_lock lock(mutex_);
    const auto ready = [&] { return closed_.load() || !queue_.empty(); };
    if (!ready()) {
      if (deadline.is_infinite()) {
        cv_.wait(lock, ready);
      } else if (!cv_.wait_until(lock, deadline.time_point(), ready)) {
        return Status{StatusCode::kTimeout, "no frame before deadline"};
      }
    }
    if (!queue_.empty()) {
      Bytes frame = std::move(queue_.front());
      queue_.pop_front();
      return frame;
    }
    return Status{StatusCode::kClosed, "detached"};
  }

  void close() override {
    closed_.store(true);
    cv_.notify_all();
  }

  bool is_open() const override { return !closed_.load(); }
  std::string peer_address() const override { return "visit-proxy"; }
  net::ConnStats stats() const override { return {}; }

  void deliver(std::vector<Bytes> frames) {
    std::scoped_lock lock(mutex_);
    for (auto& f : frames) queue_.push_back(std::move(f));
    cv_.notify_all();
  }

 private:
  ProxyTransact transact_;
  std::uint64_t attachment_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Bytes> queue_;
  std::atomic<bool> closed_{false};
};

Result<std::unique_ptr<ProxyClient>> ProxyClient::attach(
    ProxyTransact transact, const Options& options) {
  ProxyRequest req;
  req.op = ProxyOp::kAttach;
  auto raw = transact(encode_proxy_request(req));
  if (!raw.is_ok()) return raw.status();
  auto resp = decode_proxy_response(raw.value());
  if (!resp.is_ok()) return resp.status();
  if (!resp.value().status.is_ok()) return resp.value().status;

  std::unique_ptr<ProxyClient> client{new ProxyClient};
  client->transact_ = std::move(transact);
  client->options_ = options;
  client->attachment_ = resp.value().attachment;
  client->pipe_ = std::make_shared<Pipe>(client->transact_, client->attachment_);
  ProxyClient* self = client.get();
  client->poll_thread_ =
      std::jthread([self](std::stop_token st) { self->poll_loop(st); });
  return client;
}

ProxyClient::~ProxyClient() { detach(); }

net::ConnectionPtr ProxyClient::connection() { return pipe_; }

void ProxyClient::detach() {
  if (detached_.exchange(true)) return;
  poll_thread_.request_stop();
  if (poll_thread_.joinable()) poll_thread_.join();
  if (pipe_) pipe_->close();
  ProxyRequest req;
  req.op = ProxyOp::kDetach;
  req.attachment = attachment_;
  (void)transact_(encode_proxy_request(req));
}

void ProxyClient::poll_loop(const std::stop_token& st) {
  while (!st.stop_requested()) {
    ProxyRequest req;
    req.op = ProxyOp::kPoll;
    req.attachment = attachment_;
    req.max_frames = options_.max_frames_per_poll;
    auto raw = transact_(encode_proxy_request(req));
    if (raw.is_ok()) {
      auto resp = decode_proxy_response(raw.value());
      if (resp.is_ok() && resp.value().status.is_ok() &&
          !resp.value().frames.empty()) {
        pipe_->deliver(std::move(resp.value().frames));
        continue;  // drain eagerly while frames are flowing
      }
      if (resp.is_ok() && !resp.value().status.is_ok()) {
        pipe_->close();  // attachment gone (job ended)
        return;
      }
    }
    std::this_thread::sleep_for(options_.poll_period);
  }
}

}  // namespace cs::visit
