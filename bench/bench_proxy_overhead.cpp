// E9 — VISIT-over-UNICORE proxy overhead (paper section 3.3).
//
// Claim: "By polling the target system for new data, that plugin is able to
// emulate the server capabilities that are required for the VISIT
// connection." The price of firewall-friendly, authenticated steering is up
// to one poll period of extra latency per leg.
//
// Measured: time from a steering update published by the user until the
// simulation observes the new value — once over a direct VISIT connection
// (multiplexer), and once through the full UNICORE path (client -> gateway
// -> NJS -> proxy-server) at several plugin poll periods.
#include <benchmark/benchmark.h>

#include <thread>

#include "net/inproc.hpp"
#include "unicore/client.hpp"
#include "unicore/gateway.hpp"
#include "unicore/njs.hpp"
#include "unicore/tsi.hpp"
#include "visit/client.hpp"
#include "visit/multiplexer.hpp"
#include "visit/proxy.hpp"
#include "visit/viewer.hpp"

namespace {

using namespace std::chrono_literals;
using cs::common::Deadline;

constexpr std::uint32_t kTagParam = 2;

/// Waits until the sim-side request() returns `expected`.
template <typename Client>
bool wait_for_value(Client& sim, double expected) {
  const auto deadline = Deadline::after(10s);
  while (!deadline.has_expired()) {
    auto param = sim.template request<double>(kTagParam, Deadline::after(1s));
    if (param.is_ok() && !param.value().empty() &&
        param.value()[0] == expected) {
      return true;
    }
  }
  return false;
}

/// Direct path: viewer -> multiplexer table -> sim request.
void BM_DirectSteerLatency(benchmark::State& state) {
  cs::net::InProcNetwork net;
  cs::visit::Multiplexer::Options o;
  o.sim_address = "mux:sim";
  o.viewer_address = "mux:view";
  o.password = "pw";
  auto mux = cs::visit::Multiplexer::start(net, o);
  auto viewer = cs::visit::ViewerClient::connect(net, {"mux:view", "pw", 500ms},
                                                 Deadline::after(5s));
  auto sim = cs::visit::SimClient::connect(net, {"mux:sim", "pw", 500ms},
                                           Deadline::after(5s));
  if (!mux.is_ok() || !viewer.is_ok() || !sim.is_ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  double value = 1.0;
  for (auto _ : state) {
    value += 1.0;
    if (!viewer.value().steer<double>(kTagParam, {value}).is_ok() ||
        !wait_for_value(sim.value(), value)) {
      state.SkipWithError("steer lost");
      return;
    }
  }
  state.SetLabel("direct");
}

/// UNICORE path at a given plugin poll period.
void BM_ProxiedSteerLatency(benchmark::State& state) {
  const auto poll_period =
      std::chrono::milliseconds(static_cast<int>(state.range(0)));

  cs::net::InProcNetwork net;
  cs::unicore::TargetSystem tsi{net, {"site", 2, cs::common::Duration::zero()}};
  // The "simulation" here is driven by the benchmark loop itself, so the
  // registered app just parks until the job is aborted at teardown.
  tsi.register_application("park", [](cs::unicore::ExecutionContext& ctx) {
    while (!ctx.cancelled->load()) std::this_thread::sleep_for(1ms);
    return cs::common::Status::ok();
  });
  cs::unicore::Njs njs{"site", tsi};
  auto gateway = cs::unicore::Gateway::start(net, {"gw"});
  const auto user = cs::unicore::issue_certificate("CN=Bench", "k");
  gateway.value()->trust_store().trust(user);
  njs.uudb().add_mapping(user, "bench");
  gateway.value()->register_vsite(njs);

  cs::unicore::UnicoreClient client{net, {"gw", user, 5s}};
  auto job = client.submit(cs::unicore::AjoBuilder("steered", "site")
                               .start_steering("pw")
                               .execute("park")
                               .build());
  if (!job.is_ok()) {
    state.SkipWithError("submit failed");
    return;
  }
  // Wait for the proxy to exist, then connect the sim side directly to it
  // (vsite-local, as the real application would).
  cs::visit::ProxyServer* proxy = nullptr;
  const auto ready = Deadline::after(5s);
  while (proxy == nullptr && !ready.has_expired()) {
    proxy = tsi.visit_proxy(job.value());
    if (proxy == nullptr) std::this_thread::sleep_for(2ms);
  }
  if (proxy == nullptr) {
    state.SkipWithError("proxy never started");
    return;
  }
  auto sim = cs::visit::SimClient::connect(
      net, {proxy->sim_address(), "pw", 500ms}, Deadline::after(5s));
  cs::visit::ProxyClient::Options popts;
  popts.poll_period = poll_period;
  auto plugin = cs::visit::ProxyClient::attach(
      client.visit_transactor("site", job.value()), popts);
  if (!sim.is_ok() || !plugin.is_ok()) {
    state.SkipWithError("attach failed");
    return;
  }
  auto viewer = cs::visit::ViewerClient::adopt(plugin.value()->connection(),
                                               {"", "", 500ms});

  double value = 1.0;
  for (auto _ : state) {
    value += 1.0;
    if (!viewer.steer<double>(kTagParam, {value}).is_ok() ||
        !wait_for_value(sim.value(), value)) {
      state.SkipWithError("steer lost");
      return;
    }
  }
  state.SetLabel("unicore-proxy/poll_ms=" + std::to_string(poll_period.count()));
  (void)client.abort("site", job.value());
}

/// Downstream leg: sample emitted by the simulation until the plugin's
/// polling loop delivers it to the viewer — this is where the poll period
/// shows up (up to one period of added latency).
void BM_ProxiedSampleLatency(benchmark::State& state) {
  const auto poll_period =
      std::chrono::milliseconds(static_cast<int>(state.range(0)));
  cs::net::InProcNetwork net;
  auto proxy = cs::visit::ProxyServer::start(net, {"proxy:sim", "pw", 1024});
  if (!proxy.is_ok()) {
    state.SkipWithError("proxy failed");
    return;
  }
  auto sim = cs::visit::SimClient::connect(net, {"proxy:sim", "pw", 500ms},
                                           Deadline::after(5s));
  cs::visit::ProxyClient::Options popts;
  popts.poll_period = poll_period;
  auto plugin = cs::visit::ProxyClient::attach(
      [&](cs::common::ByteSpan request) -> cs::common::Result<cs::common::Bytes> {
        auto decoded = cs::visit::decode_proxy_request(request);
        if (!decoded.is_ok()) return decoded.status();
        return cs::visit::encode_proxy_response(
            proxy.value()->transact(decoded.value()));
      },
      popts);
  if (!sim.is_ok() || !plugin.is_ok()) {
    state.SkipWithError("attach failed");
    return;
  }
  auto viewer = cs::visit::ViewerClient::adopt(plugin.value()->connection(),
                                               {"", "", 500ms});
  // Drain the attach-time role message.
  (void)viewer.poll(Deadline::after(1s));

  const std::vector<double> sample(256, 1.0);
  for (auto _ : state) {
    if (!sim.value().send(1, sample).is_ok()) {
      state.SkipWithError("send failed");
      return;
    }
    for (;;) {
      auto e = viewer.poll(Deadline::after(5s));
      if (!e.is_ok()) {
        state.SkipWithError("poll failed");
        return;
      }
      if (e.value().kind == cs::visit::ViewerClient::Event::Kind::kData) {
        break;
      }
    }
  }
  state.SetLabel("sample-delivery/poll_ms=" + std::to_string(poll_period.count()));
}

}  // namespace

BENCHMARK(BM_DirectSteerLatency)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(0.3);
BENCHMARK(BM_ProxiedSteerLatency)
    ->Arg(1)->Arg(5)->Arg(20)->Arg(50)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(0.3);
BENCHMARK(BM_ProxiedSampleLatency)
    ->Arg(1)->Arg(5)->Arg(20)->Arg(50)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(0.3);

BENCHMARK_MAIN();
