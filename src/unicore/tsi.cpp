#include "unicore/tsi.hpp"

#include "common/log.hpp"

namespace cs::unicore {

using common::Result;
using common::Status;
using common::StatusCode;

std::string TargetCommand::to_script_line() const {
  switch (op) {
    case Op::kPutFile:
      return "put " + name + " (" + std::to_string(content.size()) + " bytes)";
    case Op::kRunApplication: {
      std::string line = "run " + name;
      for (const auto& [k, v] : args) line += " " + k + "=" + v;
      return line;
    }
    case Op::kExportFile:
      return "export " + name;
    case Op::kStartVisitProxy:
      return "start-visit-proxy";
  }
  return "?";
}

TargetSystem::TargetSystem(net::Network& net, Options options)
    : net_(net), options_(std::move(options)) {
  const std::size_t slots = std::max<std::size_t>(options_.slots, 1);
  workers_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    workers_.emplace_back(
        [this](std::stop_token st) { worker_loop(st); });
  }
}

TargetSystem::~TargetSystem() { shutdown(); }

void TargetSystem::shutdown() {
  {
    std::scoped_lock lock(mutex_);
    if (shutting_down_) return;
    shutting_down_ = true;
    for (auto& [id, record] : jobs_) record->cancelled.store(true);
    cv_.notify_all();
  }
  for (auto& w : workers_) {
    w.request_stop();
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void TargetSystem::register_application(const std::string& name,
                                        Application app) {
  std::scoped_lock lock(mutex_);
  applications_[name] = std::move(app);
}

Status TargetSystem::submit(const std::string& job_id,
                            const std::string& xlogin,
                            std::vector<TargetCommand> script) {
  std::scoped_lock lock(mutex_);
  if (shutting_down_) {
    return Status{StatusCode::kClosed, "target system shutting down"};
  }
  if (jobs_.contains(job_id)) {
    return Status{StatusCode::kAlreadyExists, "job id in use: " + job_id};
  }
  auto record = std::make_unique<JobRecord>();
  record->xlogin = xlogin;
  record->script = std::move(script);
  record->state = JobState::kQueued;
  jobs_.emplace(job_id, std::move(record));
  queue_.push_back(job_id);
  cv_.notify_one();
  return Status::ok();
}

JobState TargetSystem::state(const std::string& job_id) const {
  std::scoped_lock lock(mutex_);
  auto it = jobs_.find(job_id);
  return it == jobs_.end() ? JobState::kFailed : it->second->state;
}

Result<JobOutcome> TargetSystem::outcome(const std::string& job_id) const {
  std::scoped_lock lock(mutex_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status{StatusCode::kNotFound, "unknown job: " + job_id};
  }
  JobOutcome out = it->second->outcome;
  out.state = it->second->state;
  return out;
}

std::vector<std::string> TargetSystem::script_of(
    const std::string& job_id) const {
  std::scoped_lock lock(mutex_);
  auto it = jobs_.find(job_id);
  std::vector<std::string> lines;
  if (it == jobs_.end()) return lines;
  lines.reserve(it->second->script.size());
  for (const auto& cmd : it->second->script) {
    lines.push_back(cmd.to_script_line());
  }
  return lines;
}

visit::ProxyServer* TargetSystem::visit_proxy(const std::string& job_id) const {
  std::scoped_lock lock(mutex_);
  auto it = jobs_.find(job_id);
  return it == jobs_.end() ? nullptr : it->second->proxy.get();
}

Status TargetSystem::abort(const std::string& job_id) {
  std::scoped_lock lock(mutex_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return Status{StatusCode::kNotFound, "unknown job: " + job_id};
  }
  it->second->cancelled.store(true);
  return Status::ok();
}

std::size_t TargetSystem::queued_jobs() const {
  std::scoped_lock lock(mutex_);
  return queue_.size();
}

void TargetSystem::worker_loop(const std::stop_token& st) {
  while (!st.stop_requested()) {
    std::string job_id;
    JobRecord* record = nullptr;
    {
      std::unique_lock lock(mutex_);
      cv_.wait_for(lock, std::chrono::milliseconds(50), [&] {
        return shutting_down_ || !queue_.empty();
      });
      if (shutting_down_) return;
      if (queue_.empty()) continue;
      job_id = std::move(queue_.front());
      queue_.pop_front();
      auto it = jobs_.find(job_id);
      if (it == jobs_.end()) continue;
      record = it->second.get();
      record->state = JobState::kRunning;
    }
    if (options_.queue_delay > common::Duration::zero()) {
      std::this_thread::sleep_for(options_.queue_delay);
    }
    run_job(job_id, *record);
  }
}

void TargetSystem::run_job(const std::string& job_id, JobRecord& record) {
  Status failure = Status::ok();
  for (const auto& cmd : record.script) {
    if (record.cancelled.load()) {
      failure = Status{StatusCode::kClosed, "job aborted"};
      break;
    }
    switch (cmd.op) {
      case TargetCommand::Op::kPutFile: {
        std::scoped_lock lock(mutex_);
        record.uspace[cmd.name] = cmd.content;
        break;
      }
      case TargetCommand::Op::kStartVisitProxy: {
        visit::ProxyServer::Options po;
        po.sim_address = options_.vsite + "/visit/" + job_id;
        po.password = cmd.name;
        auto proxy = visit::ProxyServer::start(net_, po);
        if (!proxy.is_ok()) {
          failure = proxy.status();
          break;
        }
        std::scoped_lock lock(mutex_);
        record.proxy = std::move(proxy).value();
        break;
      }
      case TargetCommand::Op::kRunApplication: {
        Application app;
        {
          std::scoped_lock lock(mutex_);
          auto it = applications_.find(cmd.name);
          if (it != applications_.end()) app = it->second;
        }
        if (!app) {
          failure = Status{StatusCode::kNotFound,
                           "no such application: " + cmd.name};
          break;
        }
        ExecutionContext ctx;
        ctx.net = &net_;
        ctx.vsite = options_.vsite;
        ctx.xlogin = record.xlogin;
        {
          std::scoped_lock lock(mutex_);
          if (record.proxy) {
            ctx.visit_address = record.proxy->sim_address();
            for (const auto& c : record.script) {
              if (c.op == TargetCommand::Op::kStartVisitProxy) {
                ctx.visit_password = c.name;
              }
            }
          }
        }
        ctx.uspace = &record.uspace;
        ctx.args = &cmd.args;
        // The app writes stdout into a thread-local buffer; it is merged
        // into the outcome under the lock so concurrent outcome() polls
        // from the client never race with a running application.
        std::string app_stdout;
        ctx.stdout_text = &app_stdout;
        ctx.cancelled = &record.cancelled;
        failure = app(ctx);
        {
          std::scoped_lock lock(mutex_);
          record.outcome.stdout_text += app_stdout;
        }
        break;
      }
      case TargetCommand::Op::kExportFile: {
        std::scoped_lock lock(mutex_);
        auto it = record.uspace.find(cmd.name);
        if (it == record.uspace.end()) {
          failure = Status{StatusCode::kNotFound,
                           "export of missing file: " + cmd.name};
        } else {
          record.outcome.exported_files[cmd.name] = it->second;
        }
        break;
      }
    }
    if (!failure.is_ok()) break;
  }
  std::scoped_lock lock(mutex_);
  if (record.proxy) record.proxy->stop();
  record.state = failure.is_ok() ? JobState::kSuccessful : JobState::kFailed;
  record.outcome.error_text = failure.is_ok() ? "" : failure.to_string();
}

}  // namespace cs::unicore
