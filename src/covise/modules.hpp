// Standard module library: the application categories of a COVISE map —
// a data source, post-processing filters (isosurface, cutting plane), and
// the renderer sink.
#pragma once

#include <functional>

#include "covise/module.hpp"
#include "viz/camera.hpp"
#include "viz/isosurface.hpp"
#include "viz/render.hpp"

namespace cs::covise {

/// Produces a scalar field from a generator, e.g. a coupled simulation's
/// current sample ("ReadSim"). Parameter: "time" (passed to the generator).
class FieldSourceModule : public Module {
 public:
  using Generator = std::function<UniformGridData(double time)>;

  explicit FieldSourceModule(Generator generator)
      : Module("FieldSource"), generator_(std::move(generator)) {
    add_output("field");
  }

  common::Status compute(ModuleContext& ctx) override;

 private:
  Generator generator_;
};

/// Extracts an isosurface. Parameters: "isovalue" (default 0),
/// "r","g","b" (surface color).
class IsoSurfaceModule : public Module {
 public:
  IsoSurfaceModule() : Module("IsoSurface") {
    add_input("field");
    add_output("geometry");
  }

  common::Status compute(ModuleContext& ctx) override;
};

/// Extracts an axis-aligned cutting plane as a per-cell quad mesh whose
/// vertices are displaced by the field value (so geometry volume scales
/// with grid resolution, as a real colored slice's would).
/// Parameters: "axis" (0|1|2), "position" (fraction in [0,1]), "r","g","b".
class CuttingPlaneModule : public Module {
 public:
  CuttingPlaneModule() : Module("CuttingPlane") {
    add_input("field");
    add_output("geometry");
  }

  common::Status compute(ModuleContext& ctx) override;
};

/// Renders connected geometry into an image — the end of the pipeline.
/// Parameters: "camera" (serialized viz::Camera), "width", "height".
class RendererModule : public Module {
 public:
  /// `geometry_inputs`: number of geometry input ports ("geometry0"...).
  explicit RendererModule(int geometry_inputs = 1) : Module("Renderer") {
    for (int i = 0; i < geometry_inputs; ++i) {
      add_input("geometry" + std::to_string(i));
    }
    add_output("image");
  }

  common::Status compute(ModuleContext& ctx) override;
};

}  // namespace cs::covise
