// UNICORE client.
//
// "UNICORE client interacting with the user and providing functions to
// construct, submit and control the execution of computational jobs" (paper
// section 3.1). Each call is one UPL transaction through the gateway; the
// client keeps no session state on the server side, so it "can appear or
// vanish at any time" (section 3.3).
//
// visit_transactor() is the client-plugin hook of section 3.3: it returns
// the transaction function a visit::ProxyClient polls through, turning this
// client into the user end of a steering connection.
#pragma once

#include <chrono>
#include <memory>
#include <mutex>
#include <string>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "net/transport.hpp"
#include "unicore/ajo.hpp"
#include "unicore/identity.hpp"
#include "unicore/upl.hpp"
#include "visit/proxy.hpp"

namespace cs::unicore {

class UnicoreClient {
 public:
  struct Options {
    std::string gateway_address;
    Certificate identity;
    common::Duration transaction_timeout = std::chrono::seconds(5);
  };

  UnicoreClient(net::Network& net, Options options)
      : net_(net), options_(std::move(options)) {}

  /// Submits a job; returns its id.
  common::Result<std::string> submit(const Ajo& ajo);

  common::Result<JobState> status(const std::string& vsite,
                                  const std::string& job_id);
  common::Result<JobOutcome> outcome(const std::string& vsite,
                                     const std::string& job_id);
  common::Status abort(const std::string& vsite, const std::string& job_id);

  /// Grants another user access to the job (status/outcome/steering).
  common::Status invite(const std::string& vsite, const std::string& job_id,
                        const Certificate& guest);

  /// Polls status until the job leaves the queue/running states.
  common::Result<JobOutcome> wait(const std::string& vsite,
                                  const std::string& job_id,
                                  common::Deadline deadline,
                                  common::Duration poll_period =
                                      std::chrono::milliseconds(10));

  /// Transaction function for a visit::ProxyClient bound to one job.
  visit::ProxyTransact visit_transactor(const std::string& vsite,
                                        const std::string& job_id);

  const Certificate& identity() const noexcept { return options_.identity; }

 private:
  common::Result<UplResponse> transact(UplRequest request);

  net::Network& net_;
  Options options_;
  std::mutex mutex_;  // serializes transactions on the shared connection
  net::ConnectionPtr conn_;
};

}  // namespace cs::unicore
