#include "common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace cs::common {

std::size_t Histogram::bucket_index(std::uint64_t value) noexcept {
  // Values below kSubBuckets map 1:1 into range 0; above that, the top
  // kSubBucketBits+1 significant bits select (range, sub-bucket).
  if (value < kSubBuckets) return value;
  const auto high_bit =
      static_cast<std::uint32_t>(63 - std::countl_zero(value));
  std::uint32_t range = high_bit - kSubBucketBits + 1;
  if (range >= kRanges) return kBucketCount - 1;  // saturate
  const auto sub = static_cast<std::uint32_t>(
      (value >> (high_bit - kSubBucketBits)) & (kSubBuckets - 1));
  return static_cast<std::size_t>(range) * kSubBuckets + sub;
}

std::uint64_t Histogram::bucket_upper_edge(std::size_t index) noexcept {
  const auto range = static_cast<std::uint32_t>(index / kSubBuckets);
  const auto sub = static_cast<std::uint64_t>(index % kSubBuckets);
  if (range == 0) return sub;
  const std::uint32_t shift = range - 1;
  // Lower edge of the bucket plus its width, minus one (inclusive edge).
  const std::uint64_t base = (kSubBuckets + sub) << shift;
  return base + (std::uint64_t{1} << shift) - 1;
}

void Histogram::record(std::uint64_t value) noexcept {
  ++buckets_[bucket_index(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) noexcept {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::uint64_t Histogram::value_at_quantile(double q) const noexcept {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // 1-based rank of the sample we want; q=1 selects the last sample.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // The top bucket is open-ended ("anything past the covered span");
      // its edge would underestimate, so report the observed max instead.
      if (i == kBucketCount - 1) return max_;
      return std::min(bucket_upper_edge(i), max_);
    }
  }
  return max_;
}

void Histogram::reset() noexcept { *this = Histogram{}; }

}  // namespace cs::common
