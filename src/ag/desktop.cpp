#include "ag/desktop.hpp"

#include "wire/message.hpp"

namespace cs::ag {

using common::Bytes;
using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {
constexpr auto kPumpSlice = std::chrono::milliseconds(50);
constexpr std::uint32_t kTagUpdate = 0xa6c1;
constexpr std::uint32_t kTagEvent = 0xa6c2;
}  // namespace

Result<std::unique_ptr<DesktopShareServer>> DesktopShareServer::start(
    net::InProcNetwork& net, const Options& options,
    std::function<void(const std::string&)> on_event) {
  auto listener = net.listen(options.address);
  if (!listener.is_ok()) return listener.status();
  std::unique_ptr<DesktopShareServer> server{new DesktopShareServer};
  server->listener_ = std::move(listener).value();
  server->on_event_ = std::move(on_event);
  DesktopShareServer* self = server.get();
  server->accept_pump_ = std::make_unique<net::AcceptPump>(
      *server->listener_,
      [self](net::ConnectionPtr conn) { self->handle_conn(std::move(conn)); });
  return server;
}

DesktopShareServer::~DesktopShareServer() { stop(); }

void DesktopShareServer::stop() {
  if (stopped_.exchange(true)) return;
  if (listener_) listener_->close();
  if (accept_pump_) accept_pump_->stop();
  std::vector<Viewer> doomed;
  std::vector<std::jthread> graves;
  {
    std::scoped_lock lock(mutex_);
    for (auto& [id, v] : viewers_) {
      v.conn->close();
      doomed.push_back(std::move(v));
    }
    viewers_.clear();
    graves = std::move(graveyard_);
  }
  for (auto& v : doomed) {
    if (v.pump.joinable()) {
      v.pump.request_stop();
      v.pump.join();
    }
  }
  for (auto& t : graves) {
    if (t.joinable()) {
      t.request_stop();
      t.join();
    }
  }
}

Status DesktopShareServer::update(const viz::Image& desktop) {
  std::vector<std::pair<std::uint64_t, net::ConnectionPtr>> targets;
  {
    std::scoped_lock lock(mutex_);
    desktop_ = desktop;
    for (auto& [id, v] : viewers_) targets.emplace_back(id, v.conn);
  }
  for (auto& [id, conn] : targets) {
    Bytes payload;
    {
      std::scoped_lock lock(mutex_);
      auto it = viewers_.find(id);
      if (it == viewers_.end()) continue;
      payload = viz::compress_frame_delta(desktop, it->second.last_frame);
      it->second.last_frame = desktop;
    }
    const auto m =
        wire::make_data_message(kTagUpdate, payload.data(), payload.size());
    if (conn->send(m.encode(), Deadline::after(std::chrono::seconds(1)))
            .is_ok()) {
      ctr_updates_pushed_.add();
      ctr_bytes_pushed_.add(payload.size());
    }
  }
  return Status::ok();
}

std::size_t DesktopShareServer::viewer_count() const {
  std::scoped_lock lock(mutex_);
  return viewers_.size();
}

DesktopShareServer::Stats DesktopShareServer::stats() const {
  // Shim over the registry-backed counters (see desktop.hpp).
  Stats out;
  out.updates_pushed = ctr_updates_pushed_.value();
  out.bytes_pushed = ctr_bytes_pushed_.value();
  out.events_received = ctr_events_received_.value();
  return out;
}

void DesktopShareServer::handle_conn(net::ConnectionPtr conn) {
  net::ConnectionPtr c = std::move(conn);
  // Send the current desktop as a key frame so the viewer has a base.
  viz::Image snapshot;
  {
    std::scoped_lock lock(mutex_);
    snapshot = desktop_;
  }
  if (!snapshot.empty()) {
    const Bytes payload = viz::compress_frame(snapshot);
    (void)c->send(
        wire::make_data_message(kTagUpdate, payload.data(), payload.size())
            .encode(),
        Deadline::after(std::chrono::seconds(1)));
  }
  std::scoped_lock lock(mutex_);
  if (stopped_.load()) {  // raced with stop(): don't leak a live pump
    c->close();
    return;
  }
  const std::uint64_t id = next_id_++;
  Viewer viewer;
  viewer.conn = c;
  viewer.last_frame = snapshot;
  viewers_.emplace(id, std::move(viewer));
  viewers_[id].pump =
      std::jthread([this, id](std::stop_token pst) { viewer_pump(pst, id); });
}

void DesktopShareServer::viewer_pump(const std::stop_token& st,
                                     std::uint64_t id) {
  net::ConnectionPtr conn;
  {
    std::scoped_lock lock(mutex_);
    auto it = viewers_.find(id);
    if (it == viewers_.end()) return;
    conn = it->second.conn;
  }
  while (!st.stop_requested()) {
    auto raw = conn->recv(Deadline::after(kPumpSlice));
    if (!raw.is_ok()) {
      if (raw.status().code() == StatusCode::kClosed) {
        std::scoped_lock lock(mutex_);
        auto it = viewers_.find(id);
        if (it != viewers_.end()) {
          it->second.conn->close();
          it->second.pump.request_stop();
          graveyard_.push_back(std::move(it->second.pump));
          viewers_.erase(it);
        }
        return;
      }
      continue;
    }
    auto m = wire::Message::decode(raw.value());
    if (!m.is_ok() || m.value().header.tag != kTagEvent) continue;
    auto body = wire::extract_string(m.value());
    if (!body.is_ok()) continue;
    ctr_events_received_.add();
    std::function<void(const std::string&)> handler;
    {
      std::scoped_lock lock(mutex_);
      handler = on_event_;
    }
    if (handler) handler(body.value());
  }
}

// ---------------------------------------------------------------------------
// DesktopShareViewer
// ---------------------------------------------------------------------------

Result<DesktopShareViewer> DesktopShareViewer::connect(net::InProcNetwork& net,
                                                       const std::string& address,
                                                       Deadline deadline) {
  auto conn = net.connect(address, deadline);
  if (!conn.is_ok()) return conn.status();
  return adopt(std::move(conn).value());
}

DesktopShareViewer DesktopShareViewer::adopt(net::ConnectionPtr conn) {
  DesktopShareViewer viewer;
  viewer.conn_ = std::move(conn);
  return viewer;
}

Result<viz::Image> DesktopShareViewer::await_update(Deadline deadline) {
  if (!conn_) return Status{StatusCode::kClosed, "not connected"};
  for (;;) {
    auto raw = conn_->recv(deadline);
    if (!raw.is_ok()) return raw.status();
    auto m = wire::Message::decode(raw.value());
    if (!m.is_ok()) return m.status();
    if (m.value().header.tag != kTagUpdate) continue;
    auto image = viz::decompress_frame_delta(m.value().payload, desktop_);
    if (!image.is_ok()) return image.status();
    desktop_ = std::move(image).value();
    return desktop_;
  }
}

Status DesktopShareViewer::send_event(const std::string& event,
                                      Deadline deadline) {
  if (!conn_) return Status{StatusCode::kClosed, "not connected"};
  return conn_->send(wire::make_control_message(kTagEvent, event).encode(),
                     deadline);
}

void DesktopShareViewer::disconnect() {
  if (conn_) conn_->close();
  conn_.reset();
}

}  // namespace cs::ag
