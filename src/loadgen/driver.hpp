// The load driver: turns one Workload into N concurrent connections.
//
// Shape follows ctsTraffic: a client fleet opens connections against a
// server, every message carries a sequence number and a send timestamp, and
// each worker keeps its own latency histogram so the hot path never shares
// state; the driver merges the histograms into one Report at the end.
// Both sides speak a tiny framed protocol (LoadFrame) over any
// cs::net::Network, so the same workload runs over inproc and TCP.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.hpp"
#include "common/status.hpp"
#include "loadgen/report.hpp"
#include "loadgen/workload.hpp"
#include "net/accept_pump.hpp"
#include "net/transport.hpp"

namespace cs::loadgen {

/// What the peer must do with a frame.
enum class FrameOp : std::uint8_t {
  kAck = 0,     ///< push: reply with the bare header
  kRequest = 1, ///< pull: reply with the header plus `reply_bytes` payload
  kEcho = 2,    ///< duplex: reply with the entire frame
  kStream = 3,  ///< burst: no reply; the peer records one-way latency
};

/// Header of every loadgen message; payload bytes follow it verbatim.
struct LoadFrame {
  static constexpr std::uint32_t kMagic = 0x43534c47;  // "CSLG"
  static constexpr std::size_t kHeaderBytes = 4 + 1 + 8 + 8 + 4;

  FrameOp op = FrameOp::kEcho;
  std::uint64_t seq = 0;
  /// Sender's steady-clock timestamp in nanoseconds since clock epoch.
  std::uint64_t t_send_ns = 0;
  /// kRequest only: payload size the peer must attach to its reply.
  std::uint32_t reply_bytes = 0;

  /// Serializes header + `payload_bytes` filler bytes (value derived from
  /// seq, so echoes are verifiable).
  common::Bytes encode(std::size_t payload_bytes) const;
  static common::Result<LoadFrame> decode(common::ByteSpan message);
};

/// The server half: accepts connections on one address and serves LoadFrame
/// requests until stopped. kStream frames are accounted into a histogram of
/// one-way latencies, retrievable after the run (sender and peer share the
/// process clock, which is what makes one-way numbers meaningful here).
class LoadPeer {
 public:
  static common::Result<std::unique_ptr<LoadPeer>> start(
      net::Network& net, const std::string& address);
  ~LoadPeer();
  LoadPeer(const LoadPeer&) = delete;
  LoadPeer& operator=(const LoadPeer&) = delete;
  void stop();

  /// The bound address (kernel-assigned TCP ports differ from the request).
  const std::string& address() const noexcept { return address_; }

  /// One-way latency of kStream frames, merged across all peer connections.
  common::Histogram stream_latency() const;
  /// kStream frames accepted (burst workloads compare this to frames sent).
  std::uint64_t stream_frames() const;

 private:
  LoadPeer() = default;
  void handle_conn(net::ConnectionPtr conn);
  void serve(const std::stop_token& st, const net::ConnectionPtr& conn);

  /// One serve thread plus its completion flag; a set `done` means the
  /// thread is past its last shared-state use, so reaping may join it.
  struct ServeSlot {
    net::ConnectionPtr conn;
    std::shared_ptr<std::atomic<bool>> done;
    std::jthread thread;
  };

  net::ListenerPtr listener_;
  std::string address_;
  std::unique_ptr<net::AcceptPump> accept_pump_;
  mutable std::mutex mutex_;
  std::vector<ServeSlot> slots_;
  common::Histogram stream_latency_;
  std::uint64_t stream_frames_ = 0;
  std::atomic<bool> stopped_{false};
};

/// Runs `workload` against a LoadPeer-compatible server at `address`.
///
/// Blocks for ramp_up + duration. Each worker connects (its start staggered
/// across ramp_up), runs its pattern loop until the shared end time, and
/// contributes one ConnectionReport; `peer`, when given, lets burst runs
/// fold the receiver-side one-way histogram into the report.
common::Result<Report> run_workload(net::Network& net,
                                    const std::string& address,
                                    const Workload& workload,
                                    LoadPeer* peer = nullptr);

}  // namespace cs::loadgen
