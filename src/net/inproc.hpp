// In-process network: the deterministic substitute for the paper's WAN.
//
// A single InProcNetwork instance is one "universe" of named endpoints.
// Components (simulation, visualization server, gateway, venue server...)
// listen on string addresses such as "juelich:visit" and connect to each
// other exactly as they would over sockets, but every connection carries a
// LinkModel that injects the latency/bandwidth/jitter/loss of the link being
// modelled. This is what lets the reaction-time benchmarks (paper sections
// 4.2-4.4) sweep WAN conditions reproducibly on one machine.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/transport.hpp"

namespace cs::net {

/// Per-connection tuning accepted by InProcNetwork::connect().
struct ConnectOptions {
  /// Link model applied independently to each direction.
  LinkModel link = LinkModel::perfect();
  /// Receive-window size per direction; senders block when it is full.
  std::size_t recv_capacity_bytes = 64u << 20;
};

namespace detail {
struct Mailbox;
class InProcConnection;
class InProcListener;
struct MulticastGroupState;
}  // namespace detail

/// vic-style multicast endpoint: every send fans out to all other members
/// of the group, each through that member's own link model.
class MulticastSocket {
 public:
  ~MulticastSocket();
  MulticastSocket(const MulticastSocket&) = delete;
  MulticastSocket& operator=(const MulticastSocket&) = delete;

  common::Status send(common::ByteSpan message, common::Deadline deadline);
  common::Result<common::Bytes> recv(common::Deadline deadline);
  void leave();
  bool is_member() const noexcept;
  /// Traffic counters. One accepted send() counts one message regardless of
  /// group size (the datagram, not its fan-out copies); members whose
  /// windows were full at send time do not subtract from it.
  ConnStats stats() const;
  const std::string& group() const noexcept { return group_; }

 private:
  friend class InProcNetwork;
  MulticastSocket(std::string group,
                  std::shared_ptr<detail::MulticastGroupState> state,
                  std::uint64_t member_id);

  std::string group_;
  std::shared_ptr<detail::MulticastGroupState> state_;
  std::uint64_t member_id_;
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> messages_received_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
};

using MulticastSocketPtr = std::shared_ptr<MulticastSocket>;

/// The in-process Network implementation.
class InProcNetwork : public Network {
 public:
  InProcNetwork();
  ~InProcNetwork() override;

  common::Result<ListenerPtr> listen(const std::string& address) override;

  common::Result<ConnectionPtr> connect(const std::string& address,
                                        common::Deadline deadline) override;

  /// connect() with an explicit link model / receive window.
  common::Result<ConnectionPtr> connect(const std::string& address,
                                        common::Deadline deadline,
                                        const ConnectOptions& options);

  /// Link model used by the two-argument connect().
  void set_default_link(LinkModel link);

  /// Joins a multicast group (created on first join). The link model shapes
  /// traffic *towards* this member.
  common::Result<MulticastSocketPtr> join_group(const std::string& group,
                                                const LinkModel& link = {});

  /// Number of current members of a group (0 when absent).
  std::size_t group_size(const std::string& group) const;

 private:
  friend class detail::InProcListener;
  void unregister_listener(const std::string& address);

  mutable std::mutex mutex_;
  std::map<std::string, detail::InProcListener*> listeners_;
  std::map<std::string, std::shared_ptr<detail::MulticastGroupState>> groups_;
  LinkModel default_link_;
  std::atomic<std::uint64_t> next_conn_id_{1};
  std::atomic<std::uint64_t> jitter_seed_{0x51ed270b'9f642a11ULL};
};

}  // namespace cs::net
