// The worker half of the distributed load driver.
//
// A WorkerAgent dials the controller's control address, introduces itself
// (JOIN, announcing its own /metricsz endpoint), receives a WorkloadSpec
// (ASSIGN), opens the spec's connection fleet (prepare -> READY), waits for
// the start barrier (START), executes, and ships its shard back (RESULT).
// The controller releases it with BYE — or by closing the connection, which
// the worker treats the same way.
//
// The agent hosts its own obs::Registry behind a MetricsEndpoint so the
// controller can scrape worker-side truth (agent_ops, agent_errors, the
// latency timer) alongside the target service's /metricsz.
#pragma once

#include <chrono>
#include <string>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "loadgen/control.hpp"
#include "net/transport.hpp"

namespace cs::loadgen {

class WorkerAgent {
 public:
  struct Options {
    /// Control address of the controller (host:port for TCP).
    std::string controller_address;
    /// Name announced in the JOIN frame (CI uses worker0/worker1/...).
    std::string name = "worker";
    /// Where this worker serves its own /metricsz ("0" = kernel-assigned
    /// TCP port, any in-process name works too, "" disables the endpoint).
    std::string metricsz_address = "0";
    /// Dialing the controller retries until this elapses, so a worker
    /// launched before its controller still joins — the order CI starts
    /// processes in must not matter.
    common::Duration connect_timeout = std::chrono::seconds(10);
    /// Bound on each controller-driven wait (ASSIGN after joining, START
    /// after READY). Generous: START waits on the slowest sibling's
    /// prepare.
    common::Duration session_timeout = std::chrono::seconds(120);
    /// Per control-frame send bound.
    common::Duration io_timeout = std::chrono::seconds(5);
    /// Bound on prepare() (opening the spec's connection fleet).
    common::Duration prepare_timeout = std::chrono::seconds(30);
    /// After the control connection dies mid-RESULT, how long the worker
    /// keeps redialing to re-JOIN and resend its shard before giving up.
    /// Should stay under the controller's collect_timeout — past that the
    /// controller has already published a partial report.
    common::Duration rejoin_timeout = std::chrono::seconds(10);
  };

  /// Runs one full control session and returns the shard it reported.
  /// Every wait is deadline-bounded; a dead controller yields an error,
  /// never a hang. Blocking call — run it on its own thread (tests) or as
  /// the whole process (loadgen --role=worker).
  static common::Result<WireWorkerReport> run(net::Network& net,
                                              const Options& options);
};

}  // namespace cs::loadgen
