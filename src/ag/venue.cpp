#include "ag/venue.hpp"

#include "common/strings.hpp"
#include "wire/message.hpp"

namespace cs::ag {

using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {
constexpr auto kPumpSlice = std::chrono::milliseconds(50);
constexpr std::uint32_t kTagVenue = 0xa610;
constexpr char kSep = '\x1f';

std::string ok(std::string body = {}) {
  return "OK" + (body.empty() ? "" : std::string(1, kSep) + body);
}
std::string err(StatusCode code, const std::string& message) {
  return std::string("ERR") + kSep +
         std::string(common::to_string(code)) + kSep + message;
}
}  // namespace

Result<std::unique_ptr<VenueServer>> VenueServer::start(
    net::InProcNetwork& net, const Options& options) {
  auto listener = net.listen(options.address);
  if (!listener.is_ok()) return listener.status();
  std::unique_ptr<VenueServer> server{new VenueServer};
  server->net_ = &net;
  server->listener_ = std::move(listener).value();
  VenueServer* self = server.get();
  server->accept_pump_ = std::make_unique<net::AcceptPump>(
      *server->listener_,
      [self](net::ConnectionPtr conn) { self->handle_conn(std::move(conn)); });
  return server;
}

VenueServer::~VenueServer() { stop(); }

void VenueServer::stop() {
  if (stopped_.exchange(true)) return;
  if (listener_) listener_->close();
  if (accept_pump_) accept_pump_->stop();
  std::vector<std::jthread> threads;
  {
    std::scoped_lock lock(mutex_);
    threads = std::move(connection_threads_);
  }
  for (auto& t : threads) {
    t.request_stop();
    if (t.joinable()) t.join();
  }
}

Status VenueServer::create_venue(const std::string& venue,
                                 const VenueStreams& streams) {
  std::scoped_lock lock(mutex_);
  auto [it, inserted] = venues_.emplace(venue, Venue{streams, {}, {}});
  if (!inserted) {
    return Status{StatusCode::kAlreadyExists, "venue exists: " + venue};
  }
  return Status::ok();
}

std::size_t VenueServer::venue_count() const {
  std::scoped_lock lock(mutex_);
  return venues_.size();
}

std::vector<Participant> VenueServer::participants(
    const std::string& venue) const {
  std::scoped_lock lock(mutex_);
  std::vector<Participant> out;
  auto it = venues_.find(venue);
  if (it == venues_.end()) return out;
  for (const auto& [name, p] : it->second.participants) out.push_back(p);
  return out;
}

void VenueServer::handle_conn(net::ConnectionPtr conn) {
  std::scoped_lock lock(mutex_);
  if (stopped_.load()) {  // raced with stop(): don't leak a live pump
    conn->close();
    return;
  }
  net::ConnectionPtr c = std::move(conn);
  connection_threads_.emplace_back(
      [this, c](std::stop_token cst) { serve(cst, c); });
}

void VenueServer::serve(const std::stop_token& st, net::ConnectionPtr conn) {
  std::string session_venue, session_name;
  while (!st.stop_requested()) {
    auto raw = conn->recv(Deadline::after(kPumpSlice));
    if (!raw.is_ok()) {
      if (raw.status().code() == StatusCode::kClosed) break;
      continue;
    }
    std::string reply;
    auto m = wire::Message::decode(raw.value());
    auto body = m.is_ok() ? wire::extract_string(m.value())
                          : Result<std::string>{m.status()};
    if (!body.is_ok()) {
      reply = err(StatusCode::kProtocolError, "bad frame");
    } else {
      reply = handle(body.value(), session_venue, session_name);
    }
    if (!conn->send(wire::make_control_message(kTagVenue, reply).encode(),
                    Deadline::after(std::chrono::seconds(2)))
             .is_ok()) {
      break;
    }
  }
  // Connection gone: the participant implicitly leaves (venue presence is
  // tied to the connection, as in the real venue server).
  if (!session_venue.empty()) {
    std::scoped_lock lock(mutex_);
    auto it = venues_.find(session_venue);
    if (it != venues_.end()) it->second.participants.erase(session_name);
  }
}

std::string VenueServer::handle(const std::string& request,
                                std::string& session_venue,
                                std::string& session_name) {
  const auto fields = common::split(request, kSep);
  if (fields.empty()) return err(StatusCode::kInvalidArgument, "empty");
  std::scoped_lock lock(mutex_);
  const auto& op = fields[0];

  if (op == "ENTER" && fields.size() == 4) {
    auto it = venues_.find(fields[1]);
    if (it == venues_.end()) {
      return err(StatusCode::kNotFound, "no venue " + fields[1]);
    }
    if (!session_venue.empty()) {
      auto old = venues_.find(session_venue);
      if (old != venues_.end()) old->second.participants.erase(session_name);
    }
    session_venue = fields[1];
    session_name = fields[2];
    it->second.participants[session_name] =
        Participant{session_name, fields[3] == "1"};
    return ok();
  }
  if (op == "LEAVE") {
    if (!session_venue.empty()) {
      auto it = venues_.find(session_venue);
      if (it != venues_.end()) it->second.participants.erase(session_name);
      session_venue.clear();
      session_name.clear();
    }
    return ok();
  }
  if (op == "LIST") {
    auto it = venues_.find(session_venue);
    if (it == venues_.end()) {
      return err(StatusCode::kUnavailable, "not in a venue");
    }
    std::string body;
    for (const auto& [name, p] : it->second.participants) {
      if (!body.empty()) body += '\n';
      body += name + (p.multicast_capable ? " mc" : " uc");
    }
    return ok(body);
  }
  if (op == "STREAMS") {
    auto it = venues_.find(session_venue);
    if (it == venues_.end()) {
      return err(StatusCode::kUnavailable, "not in a venue");
    }
    return ok(it->second.streams.video_group + "\n" +
              it->second.streams.audio_group);
  }
  if (op == "REGISTER_APP" && fields.size() == 3) {
    auto it = venues_.find(session_venue);
    if (it == venues_.end()) {
      return err(StatusCode::kUnavailable, "not in a venue");
    }
    it->second.apps[fields[1]] = SharedApp{fields[1], fields[2]};
    return ok();
  }
  if (op == "FIND_APP" && fields.size() == 2) {
    auto it = venues_.find(session_venue);
    if (it == venues_.end()) {
      return err(StatusCode::kUnavailable, "not in a venue");
    }
    auto app = it->second.apps.find(fields[1]);
    if (app == it->second.apps.end()) {
      return err(StatusCode::kNotFound, "no app " + fields[1]);
    }
    return ok(app->second.connect_info);
  }
  return err(StatusCode::kInvalidArgument, "bad request: " + op);
}

// ---------------------------------------------------------------------------
// VenueClient
// ---------------------------------------------------------------------------

Result<VenueClient> VenueClient::connect(net::InProcNetwork& net,
                                         const std::string& address,
                                         Deadline deadline) {
  auto conn = net.connect(address, deadline);
  if (!conn.is_ok()) return conn.status();
  VenueClient client;
  client.conn_ = std::move(conn).value();
  return client;
}

Result<std::string> VenueClient::transact(const std::string& request,
                                          Deadline deadline) {
  if (!conn_) return Status{StatusCode::kClosed, "not connected"};
  std::scoped_lock lock(mutex_);
  if (Status s = conn_->send(
          wire::make_control_message(kTagVenue, request).encode(), deadline);
      !s.is_ok()) {
    return s;
  }
  auto raw = conn_->recv(deadline);
  if (!raw.is_ok()) return raw.status();
  auto m = wire::Message::decode(raw.value());
  if (!m.is_ok()) return m.status();
  auto body = wire::extract_string(m.value());
  if (!body.is_ok()) return body.status();
  const auto fields = common::split(body.value(), kSep);
  if (!fields.empty() && fields[0] == "OK") {
    return fields.size() > 1 ? fields[1] : std::string{};
  }
  if (fields.size() >= 3 && fields[0] == "ERR") {
    for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
      if (fields[1] == common::to_string(static_cast<StatusCode>(c))) {
        return Status{static_cast<StatusCode>(c), fields[2]};
      }
    }
  }
  return Status{StatusCode::kProtocolError, "bad venue reply"};
}

Status VenueClient::enter(const std::string& venue, const std::string& name,
                          bool multicast_capable, Deadline deadline) {
  auto r = transact("ENTER" + std::string(1, kSep) + venue +
                        std::string(1, kSep) + name + std::string(1, kSep) +
                        (multicast_capable ? "1" : "0"),
                    deadline);
  return r.is_ok() ? Status::ok() : r.status();
}

Status VenueClient::leave(Deadline deadline) {
  auto r = transact("LEAVE", deadline);
  return r.is_ok() ? Status::ok() : r.status();
}

Result<std::vector<Participant>> VenueClient::list_participants(
    Deadline deadline) {
  auto r = transact("LIST", deadline);
  if (!r.is_ok()) return r.status();
  std::vector<Participant> out;
  if (!r.value().empty()) {
    for (const auto& line : common::split(r.value(), '\n')) {
      const auto cols = common::split(line, ' ');
      if (cols.size() == 2) {
        out.push_back(Participant{cols[0], cols[1] == "mc"});
      }
    }
  }
  return out;
}

Result<VenueStreams> VenueClient::streams(Deadline deadline) {
  auto r = transact("STREAMS", deadline);
  if (!r.is_ok()) return r.status();
  const auto lines = common::split(r.value(), '\n');
  if (lines.size() != 2) {
    return Status{StatusCode::kProtocolError, "bad streams reply"};
  }
  return VenueStreams{lines[0], lines[1]};
}

Status VenueClient::register_app(const SharedApp& app, Deadline deadline) {
  auto r = transact("REGISTER_APP" + std::string(1, kSep) + app.name +
                        std::string(1, kSep) + app.connect_info,
                    deadline);
  return r.is_ok() ? Status::ok() : r.status();
}

Result<SharedApp> VenueClient::find_app(const std::string& name,
                                        Deadline deadline) {
  auto r = transact("FIND_APP" + std::string(1, kSep) + name, deadline);
  if (!r.is_ok()) return r.status();
  return SharedApp{name, r.value()};
}

void VenueClient::disconnect() {
  if (conn_) conn_->close();
  conn_.reset();
}

}  // namespace cs::ag
