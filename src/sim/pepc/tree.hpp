// Barnes-Hut octree for electrostatic force summation.
//
// "The code uses a hierarchical tree algorithm to perform potential and
// force summation for charged particles in a time O(N log N), allowing
// mesh-free particle simulation on length- and time-scales normally
// possible only with particle-in-cell or hydrodynamic techniques." (paper
// section 3.4)
//
// Cells carry monopole + dipole moments about their geometric center so
// accuracy survives mixed-sign (quasi-neutral plasma) charge distributions.
// The multipole acceptance criterion is the classic s/d < theta.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/vec3.hpp"
#include "sim/pepc/particle.hpp"

namespace cs::pepc {

struct TreeConfig {
  /// Opening angle: a cell of size s at distance d is accepted when
  /// s < theta * d. Smaller = more accurate = slower.
  double theta = 0.6;
  /// Plummer softening length (avoids the 1/r^2 singularity).
  double softening = 0.05;
  /// Leaves hold at most this many particles.
  int leaf_capacity = 8;
};

/// Octree node. Children are stored by index into the node pool; 0 = none
/// (node 0 is always the root, which is nobody's child).
struct TreeNode {
  common::Vec3 center;       ///< geometric center of the cube
  double half_size = 0.0;    ///< half edge length
  common::Vec3 dipole;       ///< sum q_i * (x_i - center)
  double monopole = 0.0;     ///< sum q_i
  std::uint32_t first_child = 0;  ///< index of first of 8 children; 0 = leaf
  std::uint32_t begin = 0;   ///< particle index range [begin, end)
  std::uint32_t end = 0;
};

class Octree {
 public:
  explicit Octree(TreeConfig config = {}) : config_(config) {}

  /// Builds the tree over the particles (reorders `order_` internally;
  /// particles themselves are not moved).
  void build(std::span<const Particle> particles);

  /// Field (force per unit charge) at `where`, excluding any particle whose
  /// index equals `skip` (pass SIZE_MAX to include all).
  common::Vec3 field_at(const common::Vec3& where,
                        std::size_t skip = static_cast<std::size_t>(-1)) const;

  /// Electrostatic potential at `where` (same acceptance rules).
  double potential_at(const common::Vec3& where,
                      std::size_t skip = static_cast<std::size_t>(-1)) const;

  /// Forces on all particles: F_i = q_i * E(x_i) excluding self.
  void accumulate_forces(std::span<const Particle> particles,
                         std::span<common::Vec3> forces) const;

  /// Total potential energy 0.5 * sum q_i phi(x_i).
  double potential_energy(std::span<const Particle> particles) const;

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t interaction_count() const noexcept { return interactions_; }
  const TreeConfig& config() const noexcept { return config_; }
  const std::vector<TreeNode>& nodes() const noexcept { return nodes_; }

 private:
  void subdivide(std::uint32_t node_index, int depth);
  void compute_moments(std::uint32_t node_index);

  TreeConfig config_;
  std::span<const Particle> particles_;
  std::vector<std::uint32_t> order_;  ///< particle indices, tree-sorted
  std::vector<TreeNode> nodes_;
  /// Atomic: field_at() runs concurrently from the force worker pool.
  mutable std::atomic<std::size_t> interactions_{0};
};

}  // namespace cs::pepc
