// Target System Interface + simulated batch system.
//
// "UNICORE target systems ... schedule and run the jobs on the HPC
// platforms. On these systems a Target System Interface (TSI) performs the
// communication with the NJS." (paper section 3.1). "The only component of
// the UNICORE system that needs to be modified for this extension is the
// TSI" (section 3.1) — our TSI carries that modification: the
// kStartVisitProxy command starts a visit::ProxyServer for the job.
//
// The HPC platform itself is simulated: a job directory ("uspace") is an
// in-memory file map, applications are C++ callbacks registered per target
// system (the PEPC and LBM codes register themselves this way), and a small
// worker pool with a configurable dispatch delay stands in for the batch
// scheduler.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "net/transport.hpp"
#include "unicore/ajo.hpp"
#include "visit/proxy.hpp"

namespace cs::unicore {

/// What an application sees while running under the TSI.
struct ExecutionContext {
  net::Network* net = nullptr;  ///< the vsite-local network
  std::string vsite;
  std::string xlogin;           ///< account the job runs under
  /// Address of the job's VISIT proxy-server ("" when steering is off).
  std::string visit_address;
  /// VISIT password for this job's steering connection.
  std::string visit_password;
  /// Job directory: file name -> content.
  std::map<std::string, std::string>* uspace = nullptr;
  /// EXECUTE arguments from the AJO.
  const std::map<std::string, std::string>* args = nullptr;
  /// Application stdout, returned in the job outcome.
  std::string* stdout_text = nullptr;
  /// Set when the job is aborted; long-running applications must poll it.
  const std::atomic<bool>* cancelled = nullptr;
};

/// A registered executable.
using Application = std::function<common::Status(ExecutionContext&)>;

/// One incarnated command — the stand-in for a line of the Perl script the
/// real TSI would run.
struct TargetCommand {
  enum class Op { kPutFile, kRunApplication, kExportFile, kStartVisitProxy };
  Op op = Op::kRunApplication;
  std::string name;     ///< file name / application name / proxy password
  std::string content;  ///< file content
  std::map<std::string, std::string> args;

  /// Human-readable script line (what the job record shows).
  std::string to_script_line() const;
};

class TargetSystem {
 public:
  struct Options {
    std::string vsite;
    /// Concurrent job slots of the simulated batch system.
    std::size_t slots = 2;
    /// Simulated scheduler dispatch latency per job.
    common::Duration queue_delay = common::Duration::zero();
  };

  TargetSystem(net::Network& net, Options options);
  ~TargetSystem();
  TargetSystem(const TargetSystem&) = delete;
  TargetSystem& operator=(const TargetSystem&) = delete;

  /// Registers an application binary by name (IDB entry, in UNICORE terms).
  void register_application(const std::string& name, Application app);

  /// Enqueues an incarnated job. Returns immediately (batch semantics).
  common::Status submit(const std::string& job_id, const std::string& xlogin,
                        std::vector<TargetCommand> script);

  JobState state(const std::string& job_id) const;
  common::Result<JobOutcome> outcome(const std::string& job_id) const;

  /// Incarnated script of a job (empty when unknown) — lets tests verify
  /// that incarnation hides abstract tasks behind target-level commands.
  std::vector<std::string> script_of(const std::string& job_id) const;

  /// The job's VISIT proxy-server, or nullptr when steering is not enabled
  /// (or the job is unknown). Used by the NJS to route UPL VISIT
  /// transactions.
  visit::ProxyServer* visit_proxy(const std::string& job_id) const;

  /// Requests cancellation; running applications observe ctx.cancelled.
  common::Status abort(const std::string& job_id);

  const std::string& vsite() const noexcept { return options_.vsite; }
  std::size_t queued_jobs() const;

  void shutdown();

 private:
  struct JobRecord {
    std::string xlogin;
    std::vector<TargetCommand> script;
    JobState state = JobState::kQueued;
    JobOutcome outcome;
    std::map<std::string, std::string> uspace;
    std::unique_ptr<visit::ProxyServer> proxy;
    std::atomic<bool> cancelled{false};
  };

  void worker_loop(const std::stop_token& st);
  void run_job(const std::string& job_id, JobRecord& record);

  net::Network& net_;
  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::string, std::unique_ptr<JobRecord>> jobs_;
  std::deque<std::string> queue_;
  std::map<std::string, Application> applications_;
  std::vector<std::jthread> workers_;
  bool shutting_down_ = false;
};

}  // namespace cs::unicore
