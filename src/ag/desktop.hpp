// vnc-style desktop sharing.
//
// "The use of vnc to distribute a desktop on which the simulation is being
// displayed" (paper section 1) — and the paper's contrast case for COVISE:
// pixel sharing needs no application support but its traffic scales with
// the screen content (section 4.6), which is exactly what experiment E7
// measures against parameter-sync collaboration.
//
// The server pushes delta-compressed framebuffer updates to each viewer;
// viewers just decode. Anyone may also send an input event upstream
// ("sharing the steering client requires the use of vnc" — the *active*
// collaboration mode), which the application consumes via a callback.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "net/accept_pump.hpp"
#include "net/conn_host.hpp"
#include "net/transport.hpp"
#include "obs/registry.hpp"
#include "viz/compress.hpp"
#include "viz/image.hpp"

namespace cs::ag {

class DesktopShareServer {
 public:
  struct Options {
    std::string address;
  };

  struct Stats {
    std::uint64_t updates_pushed = 0;
    std::uint64_t bytes_pushed = 0;
    std::uint64_t events_received = 0;
  };

  /// `on_event` runs on a hosting thread (poller or fallback pump) whenever
  /// a viewer sends an input event (e.g. "SET miscibility 0.3"); it must
  /// not block — a stalled handler stalls every hosted viewer.
  static common::Result<std::unique_ptr<DesktopShareServer>> start(
      net::Network& net, const Options& options,
      std::function<void(const std::string&)> on_event = {});
  ~DesktopShareServer();
  DesktopShareServer(const DesktopShareServer&) = delete;
  DesktopShareServer& operator=(const DesktopShareServer&) = delete;
  void stop();

  /// Publishes a new desktop frame; every viewer receives a delta update.
  /// Deltas ride each viewer's bounded outbound queue as control traffic
  /// (lossless-or-dead): a viewer that cannot keep up is disconnected
  /// rather than handed a delta chain with holes in it.
  common::Status update(const viz::Image& desktop);

  /// Resolved listen address (kernel-assigned ports made concrete).
  std::string address() const { return listener_->address(); }
  std::size_t viewer_count() const;
  /// Snapshot of the push counters (shim over the metrics registry).
  Stats stats() const;
  /// Threads owned regardless of viewer count: accept pump + host threads.
  std::size_t service_threads() const;
  /// The service's metrics registry (source of truth for the counters).
  obs::Registry& metrics() noexcept { return metrics_; }

 private:
  DesktopShareServer() = default;
  void handle_conn(net::ConnectionPtr conn);
  void on_message(std::uint64_t id, const common::Bytes& message);
  void remove(std::uint64_t id);

  struct Viewer {
    net::ConnectionPtr conn;
    viz::Image last_frame;
  };

  net::ListenerPtr listener_;
  std::unique_ptr<net::ConnectionHost> host_;
  std::unique_ptr<net::AcceptPump> accept_pump_;
  std::function<void(const std::string&)> on_event_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, Viewer> viewers_;
  std::uint64_t next_id_ = 1;
  viz::Image desktop_;
  /// Registry-backed counters; stats() reads them back for the old shape.
  obs::Registry metrics_;
  obs::Counter& ctr_updates_pushed_ =
      metrics_.counter("frames_delivered", "frames");
  obs::Counter& ctr_bytes_pushed_ =
      metrics_.counter("desktop_bytes_pushed", "bytes");
  obs::Counter& ctr_events_received_ =
      metrics_.counter("desktop_events_received", "events");
  std::atomic<bool> stopped_{false};
};

class DesktopShareViewer {
 public:
  static common::Result<DesktopShareViewer> connect(net::Network& net,
                                                    const std::string& address,
                                                    common::Deadline deadline);
  /// Wraps an existing connection (lets benchmarks attach a link model).
  static DesktopShareViewer adopt(net::ConnectionPtr conn);

  /// Receives and applies the next desktop update.
  common::Result<viz::Image> await_update(common::Deadline deadline);

  /// Sends an input event upstream (active collaboration).
  common::Status send_event(const std::string& event,
                            common::Deadline deadline);

  const viz::Image& desktop() const noexcept { return desktop_; }
  void disconnect();

 private:
  net::ConnectionPtr conn_;
  viz::Image desktop_;
};

}  // namespace cs::ag
