// Unit tests for cs::common: status propagation, byte helpers, RNG
// determinism, deadlines, string utilities.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/strings.hpp"
#include "common/vec3.hpp"

namespace cs::common {
namespace {

// ---------------------------------------------------------------- Status --

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s{StatusCode::kTimeout, "deadline passed"};
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  EXPECT_EQ(s.to_string(), "TIMEOUT: deadline passed");
}

TEST(Status, OrLogReturnsIsOk) {
  EXPECT_TRUE(Status::ok().or_log("test"));
  EXPECT_FALSE(Status(StatusCode::kTimeout, "late").or_log("test"));
  Result<int> ok{7};
  Result<int> bad{Status{StatusCode::kNotFound, "missing"}};
  EXPECT_TRUE(ok.or_log("test"));
  EXPECT_FALSE(bad.or_log("test"));
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(to_string(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r{42};
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsStatus) {
  Result<int> r{Status{StatusCode::kNotFound, "x"}};
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, OkStatusIsRejected) {
  // Constructing a Result from an OK status would create a value-less OK;
  // the class demotes it to an internal error instead of lying.
  Result<int> r{Status::ok()};
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(Result, MovesValueOut) {
  Result<std::string> r{std::string(1000, 'a')};
  std::string s = std::move(r).value();
  EXPECT_EQ(s.size(), 1000u);
}

// ----------------------------------------------------------------- Bytes --

TEST(Bytes, ByteswapReversesBytes) {
  EXPECT_EQ(byteswap<std::uint16_t>(0x1234), 0x3412);
  EXPECT_EQ(byteswap<std::uint32_t>(0x12345678u), 0x78563412u);
  EXPECT_EQ(byteswap<std::uint64_t>(0x0102030405060708ull),
            0x0807060504030201ull);
  EXPECT_EQ(byteswap<std::uint8_t>(0xab), 0xab);
}

TEST(Bytes, ByteswapIsInvolution) {
  const std::uint64_t v = 0xdeadbeefcafebabeull;
  EXPECT_EQ(byteswap(byteswap(v)), v);
}

TEST(Bytes, AppendAndReadRoundTripBothOrders) {
  for (ByteOrder order : {ByteOrder::kLittle, ByteOrder::kBig}) {
    Bytes buf;
    append_uint<std::uint32_t>(buf, 0xa1b2c3d4u, order);
    ASSERT_EQ(buf.size(), 4u);
    EXPECT_EQ(read_uint<std::uint32_t>(buf, order), 0xa1b2c3d4u);
  }
}

TEST(Bytes, BigEndianLayoutIsMostSignificantFirst) {
  Bytes buf;
  append_uint<std::uint32_t>(buf, 0x01020304u, ByteOrder::kBig);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
}

// ------------------------------------------------------------------- RNG --

TEST(Rng, DeterministicAcrossInstances) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r{7};
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r{9};
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng r{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NormalHasApproximatelyUnitVariance) {
  Rng r{13};
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a{21};
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

// -------------------------------------------------------------- Deadline --

TEST(Deadline, InfiniteNeverExpires) {
  const auto d = Deadline::infinite();
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.has_expired());
  EXPECT_EQ(d.remaining(), Duration::max());
}

TEST(Deadline, ExpiredIsExpired) {
  const auto d = Deadline::expired();
  EXPECT_TRUE(d.has_expired());
  EXPECT_EQ(d.remaining(), Duration::zero());
}

TEST(Deadline, AfterExpiresInOrder) {
  const auto d = Deadline::after(std::chrono::milliseconds(30));
  EXPECT_FALSE(d.has_expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(d.has_expired());
}

TEST(Deadline, HugeDurationBecomesInfinite) {
  const auto d = Deadline::after(Duration::max());
  EXPECT_TRUE(d.is_infinite());
}

// --------------------------------------------------------------- Strings --

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleToken) {
  const auto parts = split("alone", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "alone");
}

TEST(Strings, JoinInvertsSplit) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, "::"), "x::y::z");
  EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("steering", "steer"));
  EXPECT_FALSE(starts_with("steer", "steering"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Strings, GlobMatchBasics) {
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("steer/*", "steer/lbm"));
  EXPECT_FALSE(glob_match("steer/*", "viz/lbm"));
  EXPECT_TRUE(glob_match("s??er*", "steering-service"));
  EXPECT_FALSE(glob_match("s??er", "steering"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_FALSE(glob_match("", "x"));
}

TEST(Strings, GlobMatchBacktracks) {
  EXPECT_TRUE(glob_match("*visit*proxy*", "unicore-visit-tsi-proxy-server"));
  EXPECT_FALSE(glob_match("*visit*proxy", "proxy-visit"));
}

// ------------------------------------------------------------------ Vec3 --

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

TEST(Vec3, CrossIsOrthogonal) {
  const Vec3 a{1, 0.5, -2}, b{3, -1, 0.25};
  const Vec3 c = cross(a, b);
  EXPECT_NEAR(dot(c, a), 0.0, 1e-12);
  EXPECT_NEAR(dot(c, b), 0.0, 1e-12);
}

TEST(Vec3, NormalizedHasUnitLength) {
  EXPECT_NEAR(norm(normalized(Vec3{3, 4, 12})), 1.0, 1e-12);
  EXPECT_EQ(normalized(Vec3{}), (Vec3{}));
}

// ------------------------------------------------------------- Histogram --

TEST(Histogram, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.p999(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, SmallValuesAreExact) {
  // Range 0 has one bucket per value: quantiles are exact below kSubBuckets.
  Histogram h;
  for (std::uint64_t v = 1; v <= 10; ++v) h.record(v);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 10u);
  EXPECT_EQ(h.p50(), 5u);
  EXPECT_EQ(h.value_at_quantile(1.0), 10u);
  EXPECT_EQ(h.value_at_quantile(0.0), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 5.5);
}

TEST(Histogram, QuantileErrorIsBounded) {
  // Log-bucketed storage guarantees ~1/kSubBuckets relative error.
  Histogram h;
  Rng rng(42);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(1000 + rng.next_below(100'000'000));
    h.record(values.back());
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.50, 0.95, 0.99, 0.999}) {
    const auto exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    const auto approx = h.value_at_quantile(q);
    const double rel =
        std::abs(static_cast<double>(approx) - static_cast<double>(exact)) /
        static_cast<double>(exact);
    EXPECT_LT(rel, 0.05) << "q=" << q << " exact=" << exact
                         << " approx=" << approx;
  }
}

TEST(Histogram, MergeMatchesCombinedRecording) {
  Histogram separate_a, separate_b, combined;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(1'000'000);
    (i % 2 == 0 ? separate_a : separate_b).record(v);
    combined.record(v);
  }
  separate_a.merge(separate_b);
  EXPECT_EQ(separate_a.count(), combined.count());
  EXPECT_EQ(separate_a.min(), combined.min());
  EXPECT_EQ(separate_a.max(), combined.max());
  EXPECT_EQ(separate_a.sum(), combined.sum());
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(separate_a.value_at_quantile(q), combined.value_at_quantile(q));
  }
}

TEST(Histogram, HugeValuesSaturateWithoutOverflow) {
  Histogram h;
  h.record(~0ull);
  h.record(std::uint64_t{1} << 50);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~0ull);
  // Quantiles clamp to the observed max, never overflow past it.
  EXPECT_LE(h.p999(), ~0ull);
  EXPECT_GE(h.p999(), std::uint64_t{1} << 50);
}

TEST(Histogram, NegativeDurationClampsToZero) {
  Histogram h;
  h.record(std::chrono::nanoseconds(-5));
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(123);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50(), 0u);
}

}  // namespace
}  // namespace cs::common
