#include "visit/control.hpp"

#include "common/strings.hpp"
#include "visit/server.hpp"
#include "visit/tags.hpp"

namespace cs::visit {

using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {
constexpr auto kPumpSlice = std::chrono::milliseconds(50);
}

Result<std::unique_ptr<ControlServer>> ControlServer::start(
    net::Network& net, const Options& options) {
  auto listener = net.listen(options.address);
  if (!listener.is_ok()) return listener.status();
  std::unique_ptr<ControlServer> server{new ControlServer};
  server->options_ = options;
  server->listener_ = std::move(listener).value();
  ControlServer* self = server.get();
  server->accept_pump_ = std::make_unique<net::AcceptPump>(
      *server->listener_,
      [self](net::ConnectionPtr conn) { self->handle_conn(std::move(conn)); });
  return server;
}

ControlServer::~ControlServer() { stop(); }

void ControlServer::stop() {
  if (stopped_.exchange(true)) return;
  if (listener_) listener_->close();
  // Stop the pump before tearing down participants so no late arrival can
  // register against a dying registry.
  if (accept_pump_) accept_pump_->stop();
  std::vector<Participant> doomed;
  std::vector<std::jthread> graves;
  {
    std::scoped_lock lock(mutex_);
    for (auto& [id, p] : participants_) {
      p.conn->close();
      doomed.push_back(std::move(p));
    }
    participants_.clear();
    graves = std::move(graveyard_);
  }
  for (auto& p : doomed) {
    if (p.pump.joinable()) {
      p.pump.request_stop();
      p.pump.join();
    }
  }
  for (auto& t : graves) {
    if (t.joinable()) {
      t.request_stop();
      t.join();
    }
  }
}

std::size_t ControlServer::participant_count() const {
  std::scoped_lock lock(mutex_);
  return participants_.size();
}

ControlServer::Stats ControlServer::stats() const {
  // Shim over the registry-backed counters (see control.hpp).
  Stats out;
  out.updates_relayed = ctr_updates_relayed_.value();
  out.updates_rejected = ctr_updates_rejected_.value();
  return out;
}

void ControlServer::handle_conn(net::ConnectionPtr conn) {
  const auto deadline = Deadline::after(std::chrono::seconds(2));
  if (!handshake_accept(*conn, options_.password, deadline, "joined")
           .or_log("visit.control")) {
    return;
  }
  // The participant's first message declares its role.
  auto raw = conn->recv(deadline);
  if (!raw.is_ok()) return;
  auto m = wire::Message::decode(raw.value());
  if (!m.is_ok() || m.value().header.tag != kTagRole) return;
  auto body = wire::extract_string(m.value());
  if (!body.is_ok()) return;
  const bool actor = (body.value() == "actor");

  std::scoped_lock lock(mutex_);
  if (stopped_.load()) {  // raced with stop(): don't leak a live pump
    conn->close();
    return;
  }
  const std::uint64_t id = next_id_++;
  Participant p;
  p.conn = std::move(conn);
  p.actor = actor;
  participants_.emplace(id, std::move(p));
  participants_[id].pump =
      std::jthread([this, id](std::stop_token pst) { pump(pst, id); });
}

void ControlServer::pump(const std::stop_token& st, std::uint64_t id) {
  net::ConnectionPtr conn;
  bool actor = false;
  {
    std::scoped_lock lock(mutex_);
    auto it = participants_.find(id);
    if (it == participants_.end()) return;
    conn = it->second.conn;
    actor = it->second.actor;
  }
  while (!st.stop_requested()) {
    auto raw = conn->recv(Deadline::after(kPumpSlice));
    if (!raw.is_ok()) {
      if (raw.status().code() == StatusCode::kClosed) {
        remove(id);
        return;
      }
      continue;
    }
    auto m = wire::Message::decode(raw.value());
    if (!m.is_ok()) {
      remove(id);
      return;
    }
    if (m.value().header.tag == kTagBye) {
      remove(id);
      return;
    }
    if (m.value().header.tag != kTagControlData) continue;
    if (!actor) {
      ctr_updates_rejected_.add();
      continue;
    }
    // Relay to everyone else, best effort within the forward timeout.
    std::vector<net::ConnectionPtr> targets;
    {
      std::scoped_lock lock(mutex_);
      for (const auto& [pid, p] : participants_) {
        if (pid != id) targets.push_back(p.conn);
      }
    }
    ctr_updates_relayed_.add();
    const common::Bytes frame = raw.value();
    for (auto& t : targets) {
      (void)t->send(frame, Deadline::after(options_.forward_timeout));
    }
  }
}

void ControlServer::remove(std::uint64_t id) {
  std::scoped_lock lock(mutex_);
  auto it = participants_.find(id);
  if (it == participants_.end()) return;
  it->second.conn->close();
  it->second.pump.request_stop();
  graveyard_.push_back(std::move(it->second.pump));
  participants_.erase(it);
}

Result<ControlClient> ControlClient::connect(net::Network& net,
                                             const std::string& address,
                                             const std::string& password,
                                             const std::string& role,
                                             Deadline deadline) {
  auto conn = net.connect(address, deadline);
  if (!conn.is_ok()) return conn.status();
  ControlClient client;
  client.conn_ = std::move(conn).value();
  const auto hello = wire::make_control_message(
      kTagHello, std::string("HELLO ") + kProtocolVersion + " " + password);
  if (Status s = client.conn_->send(hello.encode(), deadline); !s.is_ok()) {
    return s;
  }
  auto raw = client.conn_->recv(deadline);
  if (!raw.is_ok()) return raw.status();
  auto ack = wire::Message::decode(raw.value());
  if (!ack.is_ok()) return ack.status();
  auto body = wire::extract_string(ack.value());
  if (!body.is_ok()) return body.status();
  if (!common::starts_with(body.value(), "OK")) {
    client.conn_->close();
    return Status{StatusCode::kPermissionDenied, body.value()};
  }
  if (Status s = client.conn_->send(
          wire::make_control_message(kTagRole, role).encode(), deadline);
      !s.is_ok()) {
    return s;
  }
  return client;
}

Status ControlClient::publish(std::string_view control_data,
                              Deadline deadline) {
  if (!connected()) return Status{StatusCode::kClosed, "not connected"};
  return conn_->send(
      wire::make_control_message(kTagControlData, control_data).encode(),
      deadline);
}

Result<std::string> ControlClient::receive(Deadline deadline) {
  if (!connected()) return Status{StatusCode::kClosed, "not connected"};
  for (;;) {
    auto raw = conn_->recv(deadline);
    if (!raw.is_ok()) return raw.status();
    auto m = wire::Message::decode(raw.value());
    if (!m.is_ok()) return m.status();
    if (m.value().header.tag == kTagControlData) {
      return wire::extract_string(m.value());
    }
  }
}

void ControlClient::disconnect() {
  if (conn_ && conn_->is_open()) {
    (void)conn_->send(wire::make_control_message(kTagBye, "").encode(),
                      Deadline::after(std::chrono::milliseconds(100)));
    conn_->close();
  }
  conn_.reset();
}

}  // namespace cs::visit
