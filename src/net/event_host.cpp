#include "net/event_host.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <utility>

namespace cs::net {

using common::Bytes;
using common::ByteSpan;
using common::Deadline;
using common::Duration;
using common::OutboundQueue;
using common::OverflowPolicy;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {

/// epoll user-data layout: UINT64_MAX wakes the poller (eventfd), the top
/// bit marks a watched listener token, anything else is a connection id.
constexpr std::uint64_t kWakeTag = ~std::uint64_t{0};
constexpr std::uint64_t kListenerBit = std::uint64_t{1} << 63;

constexpr int kMaxEvents = 256;
/// Outbound frames per try_send_many call; matches the transport's own
/// vectored batch (TcpConnection::kWritevMessages) so one claim is one
/// sendmsg.
constexpr std::size_t kSendBatch = 16;
/// Messages decoded (and accepts taken) per connection per wakeup before
/// yielding to the other ready connections; level-triggered epoll re-fires
/// for whatever is left.
constexpr int kBurst = 64;

}  // namespace

/// One hosted connection. The poller that owns the id is the only thread
/// that touches `conn`'s receive side or pops the egress state; `queue`,
/// `claimed`, `want_out`, and `tail_pending` are guarded by the poller
/// mutex (publishers push under it).
struct EventHost::Hosted {
  std::uint64_t id;
  ConnectionPtr conn;
  int fd;
  MessageHandler on_message;
  CloseHandler on_close;
  OutboundQueue queue;
  /// Items already handed to try_send_many but not yet confirmed sent; a
  /// would-block leaves them here so the next EPOLLOUT resumes in order.
  std::deque<OutboundQueue::Item> claimed;
  /// EPOLLOUT is armed.
  bool want_out = false;
  /// The transport still holds a partially-sent message tail that must be
  /// flushed (by another try_send_many call) even if no frames are queued.
  bool tail_pending = false;
  /// Torn down; skip further callbacks and traffic. Atomic because the
  /// ingress loop checks it between callbacks without taking the mutex.
  std::atomic<bool> dead{false};
  /// Last inbound activity (host time counts as activity: a fresh
  /// connection gets a full interval before its first ping). Atomic because
  /// the ingress loop stamps it without the mutex.
  std::atomic<std::uint64_t> last_in_ns;
  /// When the last heartbeat ping was enqueued; guarded by the poller mutex.
  std::uint64_t last_ping_ns = 0;

  Hosted(std::uint64_t id_, ConnectionPtr conn_, MessageHandler on_message_,
         CloseHandler on_close_, std::size_t capacity)
      : id(id_),
        conn(std::move(conn_)),
        fd(conn->native_handle()),
        on_message(std::move(on_message_)),
        on_close(std::move(on_close_)),
        queue(capacity),
        last_in_ns(common::steady_now_ns()) {}
};

struct EventHost::Watched {
  std::uint64_t token;
  Listener* listener;
  int fd;
  AcceptHandler on_accept;
};

struct EventHost::Poller {
  int epoll_fd = -1;
  int wake_fd = -1;
  std::jthread thread;
  /// Guards the maps, every Hosted's egress state, and the counters. Never
  /// held across a syscall, a decode, or a user callback.
  mutable std::mutex mutex;
  std::map<std::uint64_t, std::shared_ptr<Hosted>> conns;
  std::map<std::uint64_t, std::shared_ptr<Watched>> listeners;
  EventHostStats stats;  // per-poller counters; aggregated by stats()

  ~Poller() {
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (wake_fd >= 0) ::close(wake_fd);
  }
};

Result<std::unique_ptr<EventHost>> EventHost::start(const Options& options) {
  auto host = std::unique_ptr<EventHost>(new EventHost);
  host->queue_capacity_ =
      options.queue_capacity == 0 ? 1 : options.queue_capacity;
  if (options.heartbeat_interval > Duration::zero()) {
    host->heartbeat_interval_ns_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            options.heartbeat_interval)
            .count());
    host->heartbeat_grace_ns_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::max(options.heartbeat_grace, Duration::zero()))
            .count());
    if (!options.ping_frame.empty()) {
      host->ping_frame_ = common::make_frame(options.ping_frame);
    }
  }
  const std::size_t n = std::max<std::size_t>(1, options.pollers);
  for (std::size_t i = 0; i < n; ++i) {
    auto poller = std::make_unique<Poller>();
    poller->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (poller->epoll_fd < 0) {
      return Status{StatusCode::kInternal,
                    std::string("epoll_create1: ") + std::strerror(errno)};
    }
    poller->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (poller->wake_fd < 0) {
      return Status{StatusCode::kInternal,
                    std::string("eventfd: ") + std::strerror(errno)};
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    if (::epoll_ctl(poller->epoll_fd, EPOLL_CTL_ADD, poller->wake_fd, &ev) <
        0) {
      return Status{StatusCode::kInternal,
                    std::string("epoll_ctl(wake): ") + std::strerror(errno)};
    }
    host->pollers_.push_back(std::move(poller));
  }
  for (auto& poller : host->pollers_) {
    Poller* p = poller.get();
    poller->thread = std::jthread(
        [h = host.get(), p](std::stop_token st) { h->poll_loop(st, *p); });
  }
  return host;
}

EventHost::~EventHost() { stop(); }

void EventHost::stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  for (auto& poller : pollers_) {
    poller->thread.request_stop();
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t rc =
        ::write(poller->wake_fd, &one, sizeof(one));
  }
  for (auto& poller : pollers_) {
    if (poller->thread.joinable()) poller->thread.join();
  }
  // Registrations are dropped and hosted connections closed so any owner
  // blocked on them wakes; pending frames are discarded and no on_close
  // fires (mirrors ShardedFanout::stop()).
  for (auto& poller : pollers_) {
    std::map<std::uint64_t, std::shared_ptr<Hosted>> conns;
    {
      std::scoped_lock lock(poller->mutex);
      conns.swap(poller->conns);
      poller->listeners.clear();
    }
    for (auto& [id, hosted] : conns) {
      hosted->dead.store(true, std::memory_order_release);
      hosted->conn->close();
    }
  }
}

EventHost::Poller& EventHost::poller_for(std::uint64_t key) const noexcept {
  return *pollers_[(key & ~kListenerBit) % pollers_.size()];
}

bool EventHost::host(std::uint64_t id, ConnectionPtr conn,
                     MessageHandler on_message, CloseHandler on_close,
                     std::vector<OutboundQueue::Item> replay) {
  if (stopped_.load(std::memory_order_acquire)) return false;
  if (conn == nullptr || conn->native_handle() < 0 ||
      (id & kListenerBit) != 0) {
    return false;
  }
  Poller& poller = poller_for(id);
  auto hosted =
      std::make_shared<Hosted>(id, std::move(conn), std::move(on_message),
                               std::move(on_close), queue_capacity_);
  {
    std::scoped_lock lock(poller.mutex);
    if (stopped_.load(std::memory_order_acquire)) return false;
    if (poller.conns.count(id) != 0) return false;
    for (auto& item : replay) {
      if (item.policy == OverflowPolicy::kDisconnect) {
        ++poller.stats.control_enqueued;
      } else {
        ++poller.stats.data_enqueued;
      }
      hosted->queue.seed(std::move(item));
    }
    poller.stats.queue_high_water = std::max(poller.stats.queue_high_water,
                                             hosted->queue.high_water());
    epoll_event ev{};
    ev.events =
        EPOLLIN |
        (hosted->queue.empty() ? 0u : static_cast<std::uint32_t>(EPOLLOUT));
    ev.data.u64 = id;
    if (::epoll_ctl(poller.epoll_fd, EPOLL_CTL_ADD, hosted->fd, &ev) < 0) {
      return false;
    }
    hosted->want_out = !hosted->queue.empty();
    poller.conns.emplace(id, std::move(hosted));
  }
  return true;
}

void EventHost::unhost(std::uint64_t id) {
  teardown(poller_for(id), id, Status::ok(), /*notify=*/false);
}

void EventHost::teardown(Poller& poller, std::uint64_t id, const Status& cause,
                         bool notify) {
  std::shared_ptr<Hosted> hosted;
  {
    std::scoped_lock lock(poller.mutex);
    auto it = poller.conns.find(id);
    if (it == poller.conns.end()) return;  // raced with another teardown
    hosted = it->second;
    hosted->dead.store(true, std::memory_order_release);
    poller.conns.erase(it);
    ::epoll_ctl(poller.epoll_fd, EPOLL_CTL_DEL, hosted->fd, nullptr);
    if (notify) ++poller.stats.disconnects;
  }
  hosted->conn->close();
  if (notify && hosted->on_close) hosted->on_close(id, cause);
}

bool EventHost::account_push(Poller& poller, Hosted& hosted,
                             OutboundQueue::Push result,
                             OverflowPolicy policy) {
  switch (result) {
    case OutboundQueue::Push::kQueued:
      break;
    case OutboundQueue::Push::kQueuedDropOldest:
      ++poller.stats.data_dropped;
      break;
    case OutboundQueue::Push::kDroppedNewest:
      ++poller.stats.data_dropped;
      return false;  // nothing entered the queue
    case OutboundQueue::Push::kRejectedOverflow:
      return true;  // control overflow: lossless-or-dead
    case OutboundQueue::Push::kCoalesced:
      // The replaced item keeps its accounting slot (see OutboundQueue).
      return false;
  }
  if (policy == OverflowPolicy::kDisconnect) {
    ++poller.stats.control_enqueued;
  } else {
    ++poller.stats.data_enqueued;
  }
  poller.stats.queue_high_water =
      std::max(poller.stats.queue_high_water, hosted.queue.high_water());
  return false;
}

void EventHost::arm_out_locked(Poller& poller, Hosted& hosted) {
  if (hosted.want_out || hosted.dead.load(std::memory_order_acquire)) return;
  if (hosted.queue.empty() && hosted.claimed.empty() && !hosted.tail_pending) {
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.u64 = hosted.id;
  if (::epoll_ctl(poller.epoll_fd, EPOLL_CTL_MOD, hosted.fd, &ev) == 0) {
    hosted.want_out = true;
  }
}

bool EventHost::send_to(std::uint64_t id, OutboundQueue::Item item) {
  if (stopped_.load(std::memory_order_acquire)) return false;
  Poller& poller = poller_for(id);
  const OverflowPolicy policy = item.policy;
  bool doomed = false;
  {
    std::scoped_lock lock(poller.mutex);
    auto it = poller.conns.find(id);
    if (it == poller.conns.end() ||
        it->second->dead.load(std::memory_order_acquire)) {
      return false;
    }
    Hosted& hosted = *it->second;
    if (item.frame == nullptr) {
      // No per-consumer encode step here: a source payload is undeliverable
      // (data is shed, control is lossless-or-dead), like BytesSink.
      if (policy == OverflowPolicy::kDisconnect) {
        doomed = true;
      } else {
        ++poller.stats.data_dropped;
      }
    } else {
      doomed = account_push(poller, hosted, hosted.queue.push(std::move(item)),
                            policy);
      if (!doomed) arm_out_locked(poller, hosted);
    }
  }
  if (doomed) {
    teardown(poller, id,
             Status{StatusCode::kResourceExhausted, "control frame overflow"},
             /*notify=*/true);
  }
  return true;
}

void EventHost::publish(const OutboundQueue::Item& item) {
  publish_impl(item, nullptr);
}

void EventHost::publish_except(std::uint64_t excluded_id,
                               const OutboundQueue::Item& item) {
  publish_impl(item, &excluded_id);
}

void EventHost::publish_impl(const OutboundQueue::Item& item,
                             const std::uint64_t* excluded) {
  if (stopped_.load(std::memory_order_acquire)) return;
  for (auto& poller_ptr : pollers_) {
    Poller& poller = *poller_ptr;
    std::vector<std::uint64_t> doomed;
    {
      std::scoped_lock lock(poller.mutex);
      for (auto& [id, hosted] : poller.conns) {
        if (hosted->dead.load(std::memory_order_acquire)) continue;
        if (excluded != nullptr && id == *excluded) continue;
        if (item.frame == nullptr) {
          if (item.policy == OverflowPolicy::kDisconnect) {
            doomed.push_back(id);
          } else {
            ++poller.stats.data_dropped;
          }
          continue;
        }
        if (account_push(poller, *hosted, hosted->queue.push(item),
                         item.policy)) {
          doomed.push_back(id);
          continue;
        }
        arm_out_locked(poller, *hosted);
      }
    }
    for (std::uint64_t id : doomed) {
      teardown(poller, id,
               Status{StatusCode::kResourceExhausted, "control frame overflow"},
               /*notify=*/true);
    }
  }
}

Result<std::uint64_t> EventHost::watch_listener(Listener& listener,
                                                AcceptHandler on_accept) {
  if (stopped_.load(std::memory_order_acquire)) {
    return Status{StatusCode::kClosed, "event host stopped"};
  }
  const int fd = listener.native_handle();
  if (fd < 0) {
    return Status{StatusCode::kInvalidArgument,
                  "listener has no native handle"};
  }
  const std::uint64_t token =
      kListenerBit |
      next_listener_token_.fetch_add(1, std::memory_order_relaxed);
  Poller& poller = poller_for(token);
  auto watched = std::make_shared<Watched>(
      Watched{token, &listener, fd, std::move(on_accept)});
  {
    std::scoped_lock lock(poller.mutex);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = token;
    if (::epoll_ctl(poller.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      return Status{StatusCode::kInternal,
                    std::string("epoll_ctl(listener): ") +
                        std::strerror(errno)};
    }
    poller.listeners.emplace(token, std::move(watched));
  }
  return token;
}

void EventHost::unwatch_listener(std::uint64_t token) {
  if ((token & kListenerBit) == 0) return;
  Poller& poller = poller_for(token);
  std::scoped_lock lock(poller.mutex);
  auto it = poller.listeners.find(token);
  if (it == poller.listeners.end()) return;
  ::epoll_ctl(poller.epoll_fd, EPOLL_CTL_DEL, it->second->fd, nullptr);
  poller.listeners.erase(it);
}

std::size_t EventHost::hosted_count() const {
  std::size_t n = 0;
  for (const auto& poller : pollers_) {
    std::scoped_lock lock(poller->mutex);
    n += poller->conns.size();
  }
  return n;
}

EventHostStats EventHost::stats() const {
  EventHostStats out;
  out.pollers = pollers_.size();
  for (const auto& poller : pollers_) {
    std::scoped_lock lock(poller->mutex);
    const EventHostStats& s = poller->stats;
    out.messages_in += s.messages_in;
    out.accepts += s.accepts;
    out.wakeups += s.wakeups;
    out.data_enqueued += s.data_enqueued;
    out.data_delivered += s.data_delivered;
    out.data_dropped += s.data_dropped;
    out.control_enqueued += s.control_enqueued;
    out.control_delivered += s.control_delivered;
    out.disconnects += s.disconnects;
    out.pings_sent += s.pings_sent;
    out.idle_disconnects += s.idle_disconnects;
    out.hosted += poller->conns.size();
    out.queue_high_water = std::max(out.queue_high_water, s.queue_high_water);
    out.poll_latency.merge(s.poll_latency);
    out.stages.merge(s.stages);
    for (const auto& [id, hosted] : poller->conns) {
      out.queued_frames += hosted->queue.size() + hosted->claimed.size();
    }
  }
  return out;
}

void EventHost::poll_loop(const std::stop_token& st, Poller& poller) {
  epoll_event events[kMaxEvents];
  // Liveness needs a bounded tick; without it the loop parks indefinitely
  // (the pre-heartbeat behavior, still the default).
  const int tick_ms =
      heartbeat_interval_ns_ == 0
          ? -1
          : std::max<int>(
                1, static_cast<int>(heartbeat_interval_ns_ / 4'000'000ULL));
  std::uint64_t next_sweep_ns =
      common::steady_now_ns() + heartbeat_interval_ns_;
  while (!st.stop_requested()) {
    const int n = ::epoll_wait(poller.epoll_fd, events, kMaxEvents, tick_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd gone: host is being destroyed
    }
    if (heartbeat_interval_ns_ != 0) {
      const std::uint64_t now = common::steady_now_ns();
      if (now >= next_sweep_ns) {
        heartbeat_sweep(poller);
        next_sweep_ns = now + heartbeat_interval_ns_ / 4;
      }
    }
    if (n == 0) continue;  // tick with no events: timer work only
    const std::uint64_t wake_ns = common::steady_now_ns();
    for (int i = 0; i < n && !st.stop_requested(); ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        std::uint64_t drained = 0;
        [[maybe_unused]] ssize_t rc =
            ::read(poller.wake_fd, &drained, sizeof(drained));
        continue;
      }
      if ((tag & kListenerBit) != 0) {
        handle_accept(poller, tag);
        continue;
      }
      // Writability first: frees queue space before the decode possibly
      // publishes more. Error/hangup conditions surface through the
      // non-blocking calls themselves (try_recv reports kClosed).
      if ((events[i].events & EPOLLOUT) != 0) drain_egress(poller, tag);
      if ((events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
        drain_ingress(poller, tag, st);
      }
    }
    {
      // One wakeup handled: count it and record how long its event batch
      // held the loop — the time every other connection on this poller
      // waited before being serviced.
      std::scoped_lock lock(poller.mutex);
      ++poller.stats.wakeups;
      poller.stats.poll_latency.record(common::ns_since(wake_ns));
    }
  }
}

void EventHost::heartbeat_sweep(Poller& poller) {
  const std::uint64_t now = common::steady_now_ns();
  std::vector<std::uint64_t> doomed;
  {
    std::scoped_lock lock(poller.mutex);
    for (auto& [id, hosted] : poller.conns) {
      if (hosted->dead.load(std::memory_order_acquire)) continue;
      const std::uint64_t last =
          hosted->last_in_ns.load(std::memory_order_relaxed);
      const std::uint64_t silent = now > last ? now - last : 0;
      if (silent >= heartbeat_interval_ns_ + heartbeat_grace_ns_) {
        ++poller.stats.idle_disconnects;
        doomed.push_back(id);
        continue;
      }
      if (silent >= heartbeat_interval_ns_ && ping_frame_ != nullptr &&
          now - hosted->last_ping_ns >= heartbeat_interval_ns_) {
        hosted->last_ping_ns = now;
        // Data-class: a full queue sheds the ping instead of dooming the
        // peer — the silence detector is what passes sentence.
        if (!account_push(
                poller, *hosted,
                hosted->queue.push(ping_frame_, OverflowPolicy::kDropOldest),
                OverflowPolicy::kDropOldest)) {
          arm_out_locked(poller, *hosted);
        }
        ++poller.stats.pings_sent;
      }
    }
  }
  for (std::uint64_t id : doomed) {
    teardown(poller, id,
             Status{StatusCode::kTimeout, "peer silent past heartbeat grace"},
             /*notify=*/true);
  }
}

void EventHost::drain_ingress(Poller& poller, std::uint64_t id,
                              const std::stop_token& st) {
  std::shared_ptr<Hosted> hosted;
  {
    std::scoped_lock lock(poller.mutex);
    auto it = poller.conns.find(id);
    if (it == poller.conns.end()) return;  // removed while the event was queued
    hosted = it->second;
  }
  for (int i = 0; i < kBurst; ++i) {
    if (hosted->dead.load(std::memory_order_acquire) || st.stop_requested()) {
      return;
    }
    Result<Bytes> r = hosted->conn->try_recv();
    if (r.is_ok()) {
      hosted->last_in_ns.store(common::steady_now_ns(),
                               std::memory_order_relaxed);
      {
        std::scoped_lock lock(poller.mutex);
        ++poller.stats.messages_in;
      }
      if (hosted->on_message) {
        hosted->on_message(id, std::move(r).value());
      }
      continue;
    }
    if (r.status().code() == StatusCode::kUnavailable) return;  // drained
    teardown(poller, id, r.status(), /*notify=*/true);
    return;
  }
  // Burst cap hit with more buffered: level-triggered epoll re-fires.
}

void EventHost::drain_egress(Poller& poller, std::uint64_t id) {
  std::shared_ptr<Hosted> hosted;
  {
    std::scoped_lock lock(poller.mutex);
    auto it = poller.conns.find(id);
    if (it == poller.conns.end()) return;
    hosted = it->second;
  }
  for (;;) {
    // Claim a batch under the lock; send it outside. Only this poller
    // thread ever touches `claimed`, so the spans stay valid across the
    // unlocked send (publishers can only append to `queue`).
    ByteSpan spans[kSendBatch];
    std::size_t count = 0;
    {
      std::scoped_lock lock(poller.mutex);
      if (hosted->dead.load(std::memory_order_acquire)) return;
      while (hosted->claimed.size() < kSendBatch && !hosted->queue.empty()) {
        hosted->claimed.push_back(hosted->queue.pop());
      }
      for (const OutboundQueue::Item& item : hosted->claimed) {
        if (count == kSendBatch) break;
        spans[count++] = ByteSpan(*item.frame);
      }
      if (count == 0 && !hosted->tail_pending) {
        // Nothing to write: stop asking for EPOLLOUT.
        if (hosted->want_out) {
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.u64 = id;
          if (::epoll_ctl(poller.epoll_fd, EPOLL_CTL_MOD, hosted->fd, &ev) ==
              0) {
            hosted->want_out = false;
          }
        }
        return;
      }
    }
    std::size_t sent = 0;
    bool in_flight = false;
    const Status s = hosted->conn->try_send_many(
        std::span<const ByteSpan>(spans, count), sent, in_flight);
    const std::uint64_t write_ns = common::steady_now_ns();
    {
      std::scoped_lock lock(poller.mutex);
      // A message the stream stopped inside counts as sent: its remainder
      // is the transport's tail, flushed ahead of all later traffic, so
      // re-offering it would duplicate it.
      const std::size_t confirmed = std::min(
          hosted->claimed.size(), sent + (in_flight ? std::size_t{1} : 0));
      for (std::size_t i = 0; i < confirmed; ++i) {
        if (hosted->claimed.front().policy == OverflowPolicy::kDisconnect) {
          ++poller.stats.control_delivered;
        } else {
          ++poller.stats.data_delivered;
        }
        poller.stats.stages.record(hosted->claimed.front(), write_ns);
        hosted->claimed.pop_front();
      }
      if (s.is_ok()) {
        hosted->tail_pending = false;
      } else if (in_flight) {
        hosted->tail_pending = true;
      }
      // kUnavailable with in_flight == false leaves tail_pending as it
      // was: the abort may have landed inside a tail from an earlier call.
    }
    if (s.is_ok()) continue;  // batch fully out; more may be queued
    if (s.code() == StatusCode::kUnavailable) {
      std::scoped_lock lock(poller.mutex);
      arm_out_locked(poller, *hosted);
      return;
    }
    teardown(poller, id, s, /*notify=*/true);
    return;
  }
}

void EventHost::handle_accept(Poller& poller, std::uint64_t token) {
  std::shared_ptr<Watched> watched;
  {
    std::scoped_lock lock(poller.mutex);
    auto it = poller.listeners.find(token);
    if (it == poller.listeners.end()) return;
    watched = it->second;
  }
  for (int i = 0; i < kBurst; ++i) {
    Result<ConnectionPtr> r = watched->listener->accept(Deadline::expired());
    if (r.is_ok()) {
      {
        std::scoped_lock lock(poller.mutex);
        ++poller.stats.accepts;
      }
      if (watched->on_accept) watched->on_accept(std::move(r).value());
      continue;
    }
    const StatusCode code = r.status().code();
    if (code == StatusCode::kClosed) {
      unwatch_listener(token);
      return;
    }
    // kTimeout/kUnavailable: backlog drained. Anything else is transient;
    // level-triggered epoll re-fires if the listener is still readable.
    return;
  }
}

}  // namespace cs::net
