#include "loadgen/driver.hpp"

#include <algorithm>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace cs::loadgen {

using common::ByteOrder;
using common::Bytes;
using common::ByteSpan;
using common::Deadline;
using common::Histogram;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {
constexpr auto kPumpSlice = std::chrono::milliseconds(50);
}  // namespace

// ---------------------------------------------------------------------------
// LoadFrame
// ---------------------------------------------------------------------------

Bytes LoadFrame::encode(std::size_t payload_bytes) const {
  Bytes out;
  out.reserve(kHeaderBytes + payload_bytes);
  common::append_uint<std::uint32_t>(out, kMagic, ByteOrder::kBig);
  out.push_back(static_cast<std::uint8_t>(op));
  common::append_uint<std::uint64_t>(out, seq, ByteOrder::kBig);
  common::append_uint<std::uint64_t>(out, t_send_ns, ByteOrder::kBig);
  common::append_uint<std::uint32_t>(out, reply_bytes, ByteOrder::kBig);
  // Seq-derived filler, so an echoed frame is verifiable end to end.
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    out.push_back(static_cast<std::uint8_t>(seq + i));
  }
  return out;
}

Result<LoadFrame> LoadFrame::decode(ByteSpan message) {
  if (message.size() < kHeaderBytes) {
    return Status{StatusCode::kProtocolError, "loadgen frame too short"};
  }
  if (common::read_uint<std::uint32_t>(message, ByteOrder::kBig) != kMagic) {
    return Status{StatusCode::kProtocolError, "bad loadgen magic"};
  }
  const std::uint8_t raw_op = message[4];
  if (raw_op > static_cast<std::uint8_t>(FrameOp::kStream)) {
    return Status{StatusCode::kProtocolError, "bad loadgen op"};
  }
  LoadFrame frame;
  frame.op = static_cast<FrameOp>(raw_op);
  frame.seq =
      common::read_uint<std::uint64_t>(message.subspan(5), ByteOrder::kBig);
  frame.t_send_ns =
      common::read_uint<std::uint64_t>(message.subspan(13), ByteOrder::kBig);
  frame.reply_bytes =
      common::read_uint<std::uint32_t>(message.subspan(21), ByteOrder::kBig);
  return frame;
}

// ---------------------------------------------------------------------------
// LoadPeer
// ---------------------------------------------------------------------------

Result<std::unique_ptr<LoadPeer>> LoadPeer::start(net::Network& net,
                                                  const std::string& address) {
  auto listener = net.listen(address);
  if (!listener.is_ok()) return listener.status();
  std::unique_ptr<LoadPeer> peer{new LoadPeer};
  peer->listener_ = std::move(listener).value();
  peer->address_ = peer->listener_->address();
  LoadPeer* self = peer.get();
  peer->accept_pump_ = std::make_unique<net::AcceptPump>(
      *peer->listener_,
      [self](net::ConnectionPtr conn) { self->handle_conn(std::move(conn)); });
  return peer;
}

LoadPeer::~LoadPeer() { stop(); }

void LoadPeer::stop() {
  if (stopped_.exchange(true)) return;
  if (listener_) listener_->close();
  if (accept_pump_) accept_pump_->stop();
  std::vector<ServeSlot> slots;
  {
    std::scoped_lock lock(mutex_);
    slots = std::move(slots_);
  }
  for (auto& slot : slots) slot.conn->close();
  for (auto& slot : slots) {
    slot.thread.request_stop();
    if (slot.thread.joinable()) slot.thread.join();
  }
}

Histogram LoadPeer::stream_latency() const {
  std::scoped_lock lock(mutex_);
  return stream_latency_;
}

std::uint64_t LoadPeer::stream_frames() const {
  std::scoped_lock lock(mutex_);
  return stream_frames_;
}

void LoadPeer::handle_conn(net::ConnectionPtr conn) {
  std::scoped_lock lock(mutex_);
  if (stopped_.load()) {
    conn->close();
    return;
  }
  // Reap finished pumps so connection churn over a long soak doesn't grow
  // the vector (and, for TCP, pin dead fds) without bound. A set `done`
  // flag means the thread is past its last mutex_ use, so joining it in
  // ~jthread while holding the lock cannot deadlock.
  std::erase_if(slots_, [](const ServeSlot& s) { return s.done->load(); });
  net::ConnectionPtr shared = std::move(conn);
  auto done = std::make_shared<std::atomic<bool>>(false);
  slots_.push_back(
      {shared, done, std::jthread([this, shared, done](std::stop_token sst) {
         serve(sst, shared);
         done->store(true);
       })});
}

void LoadPeer::serve(const std::stop_token& st,
                     const net::ConnectionPtr& conn) {
  // Requests already queued behind the first recv are drained eagerly and
  // answered with one vectored send_many — a pipelined client batch costs
  // one reply syscall, not one per request (and stream accounting folds
  // into the shared histogram once per drained batch, not once per frame).
  constexpr std::size_t kServeBatch = 16;
  std::vector<Bytes> replies;
  std::vector<ByteSpan> spans;
  // Hoisted: a Histogram is a ~20 KB bucket array, too heavy to construct
  // per drained batch; it is re-zeroed only after a batch that used it.
  Histogram batch_latency;
  while (!st.stop_requested()) {
    auto raw = conn->recv(Deadline::after(kPumpSlice));
    if (!raw.is_ok()) {
      if (raw.status().code() == StatusCode::kClosed) break;
      continue;
    }
    replies.clear();
    std::uint64_t batch_frames = 0;
    bool bad_frame = false;
    for (;;) {
      auto frame = LoadFrame::decode(raw.value());
      if (!frame.is_ok()) {
        bad_frame = true;
        break;
      }
      switch (frame.value().op) {
        case FrameOp::kStream: {
          batch_latency.record(common::ns_since(frame.value().t_send_ns));
          ++batch_frames;
          break;
        }
        case FrameOp::kEcho: {
          replies.push_back(std::move(raw).value());
          break;
        }
        case FrameOp::kAck:
        case FrameOp::kRequest: {
          LoadFrame reply = frame.value();
          const std::size_t payload =
              frame.value().op == FrameOp::kRequest ? reply.reply_bytes : 0;
          reply.reply_bytes = 0;
          replies.push_back(reply.encode(payload));
          break;
        }
      }
      if (replies.size() >= kServeBatch) break;
      auto more = conn->recv(Deadline::expired());
      if (!more.is_ok()) break;
      raw = std::move(more);
    }
    if (batch_frames > 0) {
      {
        // Folded into the shared state per batch (not at thread exit) so a
        // reader polling stream_frames() sees progress as it happens.
        std::scoped_lock lock(mutex_);
        stream_latency_.merge(batch_latency);
        stream_frames_ += batch_frames;
      }
      batch_latency.reset();
    }
    if (!replies.empty()) {
      spans.assign(replies.begin(), replies.end());
      std::size_t sent = 0;
      // A kClosed here surfaces on the next recv, which ends the loop.
      (void)conn->send_many(std::span<const ByteSpan>(spans),
                            Deadline::after(kPumpSlice), sent);
    }
    if (bad_frame) {
      conn->close();
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// run_workload
// ---------------------------------------------------------------------------

namespace {

struct WorkerOutcome {
  ConnectionReport report;
  Histogram latency;
};

FrameOp op_for(Pattern pattern) noexcept {
  switch (pattern) {
    case Pattern::kPush: return FrameOp::kAck;
    case Pattern::kPull: return FrameOp::kRequest;
    case Pattern::kDuplex: return FrameOp::kEcho;
    case Pattern::kBurst: return FrameOp::kStream;
  }
  return FrameOp::kEcho;
}

/// Receives until the reply matching `seq` arrives (stale replies from
/// previously timed-out ops are skipped) and records its round trip.
Status await_reply(net::Connection& conn, std::uint64_t seq, Deadline deadline,
                   Histogram& latency) {
  for (;;) {
    auto raw = conn.recv(deadline);
    if (!raw.is_ok()) return raw.status();
    auto reply = LoadFrame::decode(raw.value());
    if (!reply.is_ok()) return reply.status();
    if (reply.value().seq != seq) continue;
    latency.record(common::ns_since(reply.value().t_send_ns));
    return Status::ok();
  }
}

void run_worker(net::Network& net, const std::string& address,
                const Workload& workload, std::size_t index,
                common::TimePoint t0, common::TimePoint end,
                WorkerOutcome& out) {
  // Stagger connects across the ramp so a soak does not open with a
  // thundering herd; every worker still stops at the shared end time.
  const auto delay =
      workload.connections > 1
          ? workload.ramp_up * static_cast<std::int64_t>(index) /
                static_cast<std::int64_t>(workload.connections)
          : common::Duration::zero();
  std::this_thread::sleep_until(t0 + delay);
  auto conn = net.connect(address, Deadline::after(workload.op_timeout));
  if (!conn.is_ok()) {
    ++out.report.errors;
    return;
  }
  common::Rng rng(
      workload.seed ^
      (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1)));
  const FrameOp op = op_for(workload.pattern);
  const std::size_t size_span = workload.max_payload - workload.min_payload + 1;
  const bool rate_limited = workload.messages_per_sec > 0.0;
  const auto interval =
      rate_limited ? std::chrono::duration_cast<common::Duration>(
                         std::chrono::duration<double>(
                             1.0 / workload.messages_per_sec))
                   : common::Duration::zero();
  auto next_send = common::Clock::now();
  std::uint64_t seq = 0;
  // Wire batch depth: `batch` frames are encoded, handed to the transport
  // in one send_many (one writev over TCP), and — for request/reply
  // patterns — their replies awaited together (pipelining). batch == 1 is
  // the classic one-send-per-op loop.
  const std::size_t batch = workload.batch;
  std::vector<Bytes> encoded(batch);
  std::vector<ByteSpan> spans(batch);
  bool done = false;
  while (!done && common::Clock::now() < end) {
    if (rate_limited) {
      std::this_thread::sleep_until(std::min(next_send, end));
      if (common::Clock::now() >= end) break;
      // The batch covers `batch` ticks of the per-message rate, so the
      // offered load is unchanged by the batch depth.
      next_send += interval * static_cast<std::int64_t>(batch);
    }
    const std::uint64_t first_seq = seq + 1;
    const std::uint64_t now_ns = common::steady_now_ns();
    for (std::size_t b = 0; b < batch; ++b) {
      const std::size_t drawn =
          workload.min_payload +
          static_cast<std::size_t>(rng.next_below(size_span));
      LoadFrame frame;
      frame.op = op;
      frame.seq = ++seq;
      frame.t_send_ns = now_ns;
      const std::size_t payload_bytes =
          workload.pattern == Pattern::kPull ? 0 : drawn;
      if (workload.pattern == Pattern::kPull) {
        frame.reply_bytes = static_cast<std::uint32_t>(drawn);
      }
      encoded[b] = frame.encode(payload_bytes);
      spans[b] = encoded[b];
    }
    const Deadline deadline = Deadline::after(workload.op_timeout);
    std::size_t sent_count = 0;
    const Status sent = conn.value()->send_many(
        std::span<const ByteSpan>(spans), deadline, sent_count);
    if (op == FrameOp::kStream) {
      // One-way: the peer's histogram holds the latency; every frame fully
      // handed to the transport counts, even from an aborted batch.
      out.report.ops += sent_count;
    }
    if (!sent.is_ok()) {
      // A timeout is treated as connection-fatal for the workload: the
      // transport keeps the stream well-formed across the abort, but the
      // unsent remainder of the batch was never delivered and request/reply
      // accounting would drift.
      if (sent.code() == StatusCode::kTimeout) ++out.report.timeouts;
      else if (sent.code() != StatusCode::kClosed) ++out.report.errors;
      break;
    }
    if (op == FrameOp::kStream) continue;
    for (std::size_t b = 0; b < batch; ++b) {
      const Status replied =
          await_reply(*conn.value(), first_seq + b, deadline, out.latency);
      if (!replied.is_ok()) {
        if (replied.code() == StatusCode::kTimeout) ++out.report.timeouts;
        else if (replied.code() != StatusCode::kClosed) ++out.report.errors;
        done = true;
        break;
      }
      ++out.report.ops;
    }
  }
  out.report.transport = conn.value()->stats();
  conn.value()->close();
}

}  // namespace

Result<Report> run_workload(net::Network& net, const std::string& address,
                            const Workload& workload, LoadPeer* peer) {
  if (Status s = workload.validate(); !s.is_ok()) return s;
  const auto t0 = common::Clock::now();
  const auto end = t0 + workload.ramp_up + workload.duration;
  std::vector<WorkerOutcome> outcomes(workload.connections);
  {
    std::vector<std::thread> workers;
    workers.reserve(workload.connections);
    for (std::size_t i = 0; i < workload.connections; ++i) {
      workers.emplace_back([&, i] {
        run_worker(net, address, workload, i, t0, end, outcomes[i]);
      });
    }
    for (auto& w : workers) w.join();
  }
  Report report;
  report.name = std::string("raw/") + std::string(to_string(workload.pattern));
  report.connections = workload.connections;
  report.elapsed = common::Clock::now() - t0;
  for (const auto& outcome : outcomes) {
    report.add_connection(outcome.report, outcome.latency);
  }
  if (workload.pattern == Pattern::kBurst && peer != nullptr) {
    // Wait for the in-flight tail: the peer accounts frames as they land,
    // so poll until it has seen everything we sent (bounded, in case the
    // substrate dropped frames).
    const auto drain_deadline = common::Clock::now() + std::chrono::seconds(2);
    while (peer->stream_frames() < report.ops &&
           common::Clock::now() < drain_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    report.latency.merge(peer->stream_latency());
  }
  return report;
}

}  // namespace cs::loadgen
