#include "common/strings.hpp"

namespace cs::common {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string_view trim(std::string_view text) noexcept {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && is_space(text[b])) ++b;
  while (e > b && is_space(text[e - 1])) --e;
  return text.substr(b, e - b);
}

bool glob_match(std::string_view pattern, std::string_view text) noexcept {
  // Iterative matcher with backtracking over the last '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace cs::common
