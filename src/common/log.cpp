#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace cs::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_io_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  using namespace std::chrono;
  const auto now = duration_cast<milliseconds>(
                       steady_clock::now().time_since_epoch())
                       .count();
  std::scoped_lock lock(g_io_mutex);
  std::fprintf(stderr, "[%10lld.%03lld] %s %-12s %s\n",
               static_cast<long long>(now / 1000),
               static_cast<long long>(now % 1000), level_tag(level),
               component.c_str(), message.c_str());
}

}  // namespace cs::common
