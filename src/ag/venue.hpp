// Access Grid Virtual Venue server.
//
// The Access Grid "coordinates multiple channels of communication within a
// virtual space (the Virtual Venue of the meeting)" (paper section 1). Our
// venue server models what the demonstrations rely on: named rooms whose
// state lists the participants (with their multicast capability), the
// media-stream group addresses of the room, and — the HLRS extension of
// section 4.6 — "additional information on a per room basis which allows
// the start-up of shared applications" such as a COVISE session.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "net/accept_pump.hpp"
#include "net/inproc.hpp"

namespace cs::ag {

/// One registered shared application (e.g. a COVISE sync hub) in a venue.
struct SharedApp {
  std::string name;         ///< e.g. "covise"
  std::string connect_info; ///< address/password blob participants need
};

struct Participant {
  std::string name;
  bool multicast_capable = true;
};

/// Media channels of a venue (vic/rat would bind to these).
struct VenueStreams {
  std::string video_group;
  std::string audio_group;
};

class VenueServer {
 public:
  struct Options {
    std::string address;
  };

  static common::Result<std::unique_ptr<VenueServer>> start(
      net::InProcNetwork& net, const Options& options);
  ~VenueServer();
  VenueServer(const VenueServer&) = delete;
  VenueServer& operator=(const VenueServer&) = delete;
  void stop();

  /// Administrative: creates a venue with its media groups.
  common::Status create_venue(const std::string& venue,
                              const VenueStreams& streams);

  std::size_t venue_count() const;
  std::vector<Participant> participants(const std::string& venue) const;

 private:
  VenueServer() = default;
  void handle_conn(net::ConnectionPtr conn);
  void serve(const std::stop_token& st, net::ConnectionPtr conn);
  std::string handle(const std::string& request, std::string& session_venue,
                     std::string& session_name);

  struct Venue {
    VenueStreams streams;
    std::map<std::string, Participant> participants;
    std::map<std::string, SharedApp> apps;
  };

  net::InProcNetwork* net_ = nullptr;
  net::ListenerPtr listener_;
  std::unique_ptr<net::AcceptPump> accept_pump_;
  mutable std::mutex mutex_;
  std::map<std::string, Venue> venues_;
  std::vector<std::jthread> connection_threads_;
  std::atomic<bool> stopped_{false};
};

/// A participant's handle on the venue server.
class VenueClient {
 public:
  static common::Result<VenueClient> connect(net::InProcNetwork& net,
                                             const std::string& address,
                                             common::Deadline deadline);

  /// Enters a venue (implicitly leaving any previous one).
  common::Status enter(const std::string& venue, const std::string& name,
                       bool multicast_capable, common::Deadline deadline);
  common::Status leave(common::Deadline deadline);

  common::Result<std::vector<Participant>> list_participants(
      common::Deadline deadline);

  /// Media group addresses of the current venue.
  common::Result<VenueStreams> streams(common::Deadline deadline);

  /// Publishes a shared application other participants can join.
  common::Status register_app(const SharedApp& app, common::Deadline deadline);

  /// Looks up a shared application registered in the current venue.
  common::Result<SharedApp> find_app(const std::string& name,
                                     common::Deadline deadline);

  void disconnect();

 private:
  common::Result<std::string> transact(const std::string& request,
                                       common::Deadline deadline);

  net::ConnectionPtr conn_;
  std::mutex mutex_;

 public:
  VenueClient() = default;
  VenueClient(VenueClient&& other) noexcept : conn_(std::move(other.conn_)) {}
  VenueClient& operator=(VenueClient&& other) noexcept {
    conn_ = std::move(other.conn_);
    return *this;
  }
};

}  // namespace cs::ag
