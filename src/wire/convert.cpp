#include "wire/convert.hpp"

#include <cstring>

namespace cs::wire {

using common::ByteOrder;
using common::ByteSpan;
using common::Status;
using common::StatusCode;

namespace {

/// Reads element i of type S (byte order `order`) from `src`.
template <typename S>
S read_element(ByteSpan src, std::size_t i, ByteOrder order) noexcept {
  using U = std::make_unsigned_t<
      std::conditional_t<std::is_floating_point_v<S>,
                         std::conditional_t<sizeof(S) == 4, std::uint32_t,
                                            std::uint64_t>,
                         S>>;
  U raw;
  std::memcpy(&raw, src.data() + i * sizeof(S), sizeof(S));
  if (order != common::native_order()) raw = common::byteswap(raw);
  S value;
  std::memcpy(&value, &raw, sizeof(S));
  return value;
}

/// Copies `count` elements of S from `src` to D at `dst` with conversion.
template <typename S, typename D>
void convert_typed(ByteSpan src, std::uint64_t count, ByteOrder order,
                   void* dst) noexcept {
  auto* out = static_cast<D*>(dst);
  if constexpr (std::is_same_v<S, D>) {
    if (order == common::native_order()) {
      std::memcpy(out, src.data(), count * sizeof(S));
      return;
    }
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    out[i] = static_cast<D>(read_element<S>(src, i, order));
  }
}

template <typename S>
void convert_from(ByteSpan src, std::uint64_t count, ByteOrder order,
                  ScalarType dst_type, void* dst) noexcept {
  switch (dst_type) {
    case ScalarType::kInt8: convert_typed<S, std::int8_t>(src, count, order, dst); return;
    case ScalarType::kUInt8: convert_typed<S, std::uint8_t>(src, count, order, dst); return;
    case ScalarType::kInt16: convert_typed<S, std::int16_t>(src, count, order, dst); return;
    case ScalarType::kUInt16: convert_typed<S, std::uint16_t>(src, count, order, dst); return;
    case ScalarType::kInt32: convert_typed<S, std::int32_t>(src, count, order, dst); return;
    case ScalarType::kUInt32: convert_typed<S, std::uint32_t>(src, count, order, dst); return;
    case ScalarType::kInt64: convert_typed<S, std::int64_t>(src, count, order, dst); return;
    case ScalarType::kUInt64: convert_typed<S, std::uint64_t>(src, count, order, dst); return;
    case ScalarType::kFloat32: convert_typed<S, float>(src, count, order, dst); return;
    case ScalarType::kFloat64: convert_typed<S, double>(src, count, order, dst); return;
    case ScalarType::kChar: convert_typed<S, char>(src, count, order, dst); return;
  }
}

}  // namespace

Status convert_elements(ScalarType src_type, ByteOrder src_order,
                        ByteSpan src_bytes, std::uint64_t count,
                        ScalarType dst_type, void* dst) noexcept {
  if (src_bytes.size() < count * size_of(src_type)) {
    return Status{StatusCode::kProtocolError, "payload shorter than declared"};
  }
  switch (src_type) {
    case ScalarType::kInt8: convert_from<std::int8_t>(src_bytes, count, src_order, dst_type, dst); break;
    case ScalarType::kUInt8: convert_from<std::uint8_t>(src_bytes, count, src_order, dst_type, dst); break;
    case ScalarType::kInt16: convert_from<std::int16_t>(src_bytes, count, src_order, dst_type, dst); break;
    case ScalarType::kUInt16: convert_from<std::uint16_t>(src_bytes, count, src_order, dst_type, dst); break;
    case ScalarType::kInt32: convert_from<std::int32_t>(src_bytes, count, src_order, dst_type, dst); break;
    case ScalarType::kUInt32: convert_from<std::uint32_t>(src_bytes, count, src_order, dst_type, dst); break;
    case ScalarType::kInt64: convert_from<std::int64_t>(src_bytes, count, src_order, dst_type, dst); break;
    case ScalarType::kUInt64: convert_from<std::uint64_t>(src_bytes, count, src_order, dst_type, dst); break;
    case ScalarType::kFloat32: convert_from<float>(src_bytes, count, src_order, dst_type, dst); break;
    case ScalarType::kFloat64: convert_from<double>(src_bytes, count, src_order, dst_type, dst); break;
    case ScalarType::kChar: convert_from<char>(src_bytes, count, src_order, dst_type, dst); break;
  }
  return Status::ok();
}

}  // namespace cs::wire
