// Status / Result<T>: error propagation without exceptions on hot paths.
//
// Middleware and steering calls in this library are expected to fail in
// routine operation (peer gone, deadline expired, venue missing); callers
// must be able to branch on the failure kind cheaply. Exceptions remain in
// use for programming errors (contract violations).
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace cs::common {

/// Failure categories shared across all collabsteer subsystems.
enum class StatusCode {
  kOk = 0,
  kTimeout,          ///< deadline expired before the operation completed
  kClosed,           ///< peer or channel already shut down
  kNotFound,         ///< name/id lookup failed (registry, venue, job, ...)
  kAlreadyExists,    ///< unique name/id collision
  kPermissionDenied, ///< auth failure or role does not allow the operation
  kInvalidArgument,  ///< malformed input detected before any side effect
  kProtocolError,    ///< malformed/unexpected bytes from a peer
  kResourceExhausted,///< queue full, quota hit, no capacity
  kUnavailable,      ///< transient: retry may succeed (e.g. not yet started)
  kInternal,         ///< invariant broken on our side
};

/// Human-readable name of a status code (stable, for logs and tests).
std::string_view to_string(StatusCode code) noexcept;

class Status;

namespace detail {
/// Emits "<status>" under `tag` at warn level. Lives in status.cpp so this
/// header stays independent of log.hpp.
void log_status_warn(std::string_view tag, const Status& status);
}  // namespace detail

/// A status code plus optional context message.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return Status{}; }

  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }
  bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }

  /// "OK" or "<CODE>: <message>".
  std::string to_string() const;

  /// True when OK; otherwise logs the status once under `tag` at warn
  /// level. For call sites whose whole error handling is one log line:
  /// `if (!s.or_log("visit.mux")) return;` replaces the is_ok-check +
  /// hand-rolled narration pair.
  bool or_log(std::string_view tag) const {
    if (is_ok()) return true;
    detail::log_status_warn(tag, *this);
    return false;
  }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status make_status(StatusCode code, std::string message = {}) {
  return Status{code, std::move(message)};
}

/// Either a value or a Status explaining why there is none.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Status status) : state_(std::move(status)) {    // NOLINT(google-explicit-constructor)
    if (std::get<Status>(state_).is_ok()) {
      state_ = Status{StatusCode::kInternal, "Result constructed from OK status"};
    }
  }

  bool is_ok() const noexcept { return std::holds_alternative<T>(state_); }
  explicit operator bool() const noexcept { return is_ok(); }

  /// Status of a failed Result; OK when a value is present.
  Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(state_);
  }

  /// Precondition: is_ok().
  T& value() & { return std::get<T>(state_); }
  const T& value() const& { return std::get<T>(state_); }
  T&& value() && { return std::get<T>(std::move(state_)); }

  T value_or(T fallback) const& {
    return is_ok() ? std::get<T>(state_) : std::move(fallback);
  }

  /// True when a value is present; otherwise logs the status once under
  /// `tag` at warn level (see Status::or_log).
  bool or_log(std::string_view tag) const {
    if (is_ok()) return true;
    detail::log_status_warn(tag, std::get<Status>(state_));
    return false;
  }

 private:
  std::variant<T, Status> state_;
};

}  // namespace cs::common
