// E8 — the collaborative multiplexer (paper section 3.3).
//
// Claim: "a 'multiplexer' simply sends all VISIT send-requests to all
// participating visualizations, ensuring that everyone views the same data.
// Receive-requests are only sent to a 'master' visualization."
//
// Measured: latency of one sample from the simulation's send() until every
// one of N viewers has received it, and the simulation-side cost of a
// steering-parameter round trip — which must stay flat in N, because the
// multiplexer answers from the master's parameter table.
#include <benchmark/benchmark.h>

#include <thread>

#include "net/inproc.hpp"
#include "visit/client.hpp"
#include "visit/multiplexer.hpp"
#include "visit/viewer.hpp"

namespace {

using namespace std::chrono_literals;
using cs::common::Deadline;

constexpr std::uint32_t kTagSample = 1;
constexpr std::uint32_t kTagParam = 2;

struct Session {
  cs::net::InProcNetwork net;
  std::unique_ptr<cs::visit::Multiplexer> mux;
  cs::visit::SimClient sim;
  std::vector<cs::visit::ViewerClient> viewers;

  bool setup(int viewer_count) {
    cs::visit::Multiplexer::Options o;
    o.sim_address = "mux:sim";
    o.viewer_address = "mux:view";
    o.password = "pw";
    auto m = cs::visit::Multiplexer::start(net, o);
    if (!m.is_ok()) return false;
    mux = std::move(m).value();
    for (int i = 0; i < viewer_count; ++i) {
      auto v = cs::visit::ViewerClient::connect(net, {"mux:view", "pw", 500ms},
                                                Deadline::after(5s));
      if (!v.is_ok()) return false;
      viewers.push_back(std::move(v).value());
    }
    const auto ready = Deadline::after(5s);
    while (mux->viewer_count() < static_cast<std::size_t>(viewer_count) &&
           !ready.has_expired()) {
      std::this_thread::sleep_for(1ms);
    }
    auto s = cs::visit::SimClient::connect(net, {"mux:sim", "pw", 500ms},
                                           Deadline::after(5s));
    if (!s.is_ok()) return false;
    sim = std::move(s).value();
    // The first viewer (master) publishes a parameter once.
    if (!viewers.empty()) {
      (void)viewers[0].steer<double>(kTagParam, {0.5});
    }
    return true;
  }
};

/// One sample delivered to all N viewers.
void BM_SampleFanOut(benchmark::State& state) {
  const int n_viewers = static_cast<int>(state.range(0));
  const int sample_kb = static_cast<int>(state.range(1));
  Session session;
  if (!session.setup(n_viewers)) {
    state.SkipWithError("setup failed");
    return;
  }
  const std::vector<float> sample(
      static_cast<std::size_t>(sample_kb) * 1024 / sizeof(float), 1.5f);
  for (auto _ : state) {
    if (!session.sim.send(kTagSample, sample).is_ok()) {
      state.SkipWithError("send failed");
      return;
    }
    for (auto& viewer : session.viewers) {
      for (;;) {
        auto e = viewer.poll(Deadline::after(5s));
        if (!e.is_ok()) {
          state.SkipWithError("viewer poll failed");
          return;
        }
        if (e.value().kind == cs::visit::ViewerClient::Event::Kind::kData &&
            e.value().tag == kTagSample) {
          break;
        }
      }
    }
  }
  state.counters["samples_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.SetLabel("viewers=" + std::to_string(n_viewers) + "/sample_kb=" +
                 std::to_string(sample_kb));
}

/// The simulation's parameter round trip: answered by the multiplexer's
/// table, independent of the number of attached viewers.
void BM_SteerRoundTrip(benchmark::State& state) {
  const int n_viewers = static_cast<int>(state.range(0));
  Session session;
  if (!session.setup(n_viewers)) {
    state.SkipWithError("setup failed");
    return;
  }
  std::this_thread::sleep_for(20ms);  // let the steer land in the table
  for (auto _ : state) {
    auto param = session.sim.request<double>(kTagParam, Deadline::after(5s));
    if (!param.is_ok()) {
      state.SkipWithError("request failed");
      return;
    }
    benchmark::DoNotOptimize(param.value().data());
  }
  state.SetLabel("viewers=" + std::to_string(n_viewers));
}

}  // namespace

BENCHMARK(BM_SampleFanOut)
    ->ArgsProduct({{1, 4, 16, 32}, {64}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MinTime(0.3);
BENCHMARK(BM_SteerRoundTrip)
    ->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime()
    ->MinTime(0.3);

BENCHMARK_MAIN();
