// D3Q19 lattice constants and indexing for the lattice-Boltzmann substrate.
//
// The RealityGrid demonstration (paper section 2.2) steers "a Lattice
// Boltzmann 3D code simulating a mixture of two fluids ... on a 3D grid
// with periodic boundary conditions". D3Q19 is the standard 3D stencil.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace cs::lbm {

inline constexpr int kQ = 19;

/// Discrete velocity set (D3Q19).
inline constexpr std::array<std::array<int, 3>, kQ> kVelocities{{
    {0, 0, 0},
    {1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1},
    {1, 1, 0}, {-1, -1, 0}, {1, -1, 0}, {-1, 1, 0},
    {1, 0, 1}, {-1, 0, -1}, {1, 0, -1}, {-1, 0, 1},
    {0, 1, 1}, {0, -1, -1}, {0, 1, -1}, {0, -1, 1},
}};

/// Lattice weights (D3Q19): 1/3 rest, 1/18 face, 1/36 edge.
inline constexpr std::array<double, kQ> kWeights{
    1.0 / 3.0,
    1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0,
    1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0,
    1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0,
    1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0,
};

/// Index of the velocity opposite to i (bounce-back pairing).
inline constexpr std::array<int, kQ> kOpposite{
    0, 2, 1, 4, 3, 6, 5, 8, 7, 10, 9, 12, 11, 14, 13, 16, 15, 18, 17};

/// Speed of sound squared in lattice units.
inline constexpr double kCs2 = 1.0 / 3.0;

/// Geometry of a periodic box.
struct Grid {
  int nx = 0, ny = 0, nz = 0;

  std::size_t cells() const noexcept {
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny) *
           static_cast<std::size_t>(nz);
  }

  std::size_t index(int x, int y, int z) const noexcept {
    return (static_cast<std::size_t>(z) * static_cast<std::size_t>(ny) +
            static_cast<std::size_t>(y)) *
               static_cast<std::size_t>(nx) +
           static_cast<std::size_t>(x);
  }

  /// Periodic wrap of one coordinate.
  static int wrap(int v, int n) noexcept {
    v %= n;
    return v < 0 ? v + n : v;
  }

  std::size_t neighbor(int x, int y, int z, int q) const noexcept {
    return index(wrap(x + kVelocities[static_cast<std::size_t>(q)][0], nx),
                 wrap(y + kVelocities[static_cast<std::size_t>(q)][1], ny),
                 wrap(z + kVelocities[static_cast<std::size_t>(q)][2], nz));
  }
};

}  // namespace cs::lbm
