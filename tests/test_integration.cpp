// Cross-module integration and failure-injection tests: session migration
// (paper section 2.4), middleware restarts, lossy links, end-to-end
// steering over the full UNICORE stack with checkpoint export, and the
// VISIT protocol over real TCP sockets.
#include <gtest/gtest.h>

#include <thread>

#include "covise/controller.hpp"
#include "covise/modules.hpp"
#include "net/inproc.hpp"
#include "net/tcp.hpp"
#include "sim/lbm/checkpoint.hpp"
#include "sim/lbm/lbm.hpp"
#include "sim/pepc/diagnostics.hpp"
#include "sim/pepc/pepc.hpp"
#include "unicore/client.hpp"
#include "unicore/gateway.hpp"
#include "unicore/njs.hpp"
#include "unicore/tsi.hpp"
#include "visit/client.hpp"
#include "visit/multiplexer.hpp"
#include "visit/server.hpp"
#include "visit/viewer.hpp"

namespace cs {
namespace {

using namespace std::chrono_literals;
using common::Deadline;
using common::StatusCode;

constexpr std::uint32_t kTagStep = 1;

// --------------------------------------------------------- migration -----

TEST(Migration, ComputationMigratesWithoutClientIntervention) {
  // "RealityGrid is developing the ability to migrate both computation and
  // visualization within a session without any disturbance or intervention
  // on the part of the participating clients." The viewer below keeps one
  // connection to the multiplexer throughout; the simulation behind it is
  // checkpointed, torn down, restored ("on another machine") and re-
  // attached — and the sample stream continues where it left off.
  net::InProcNetwork net;
  visit::Multiplexer::Options mo;
  mo.sim_address = "mux:sim";
  mo.viewer_address = "mux:view";
  mo.password = "pw";
  auto mux = visit::Multiplexer::start(net, mo);
  ASSERT_TRUE(mux.is_ok());
  auto viewer = visit::ViewerClient::connect(net, {"mux:view", "pw", 500ms},
                                             Deadline::after(5s));
  ASSERT_TRUE(viewer.is_ok());

  lbm::LbmConfig config;
  config.nx = config.ny = config.nz = 8;
  config.coupling = 1.5;

  const auto run_phase = [&](lbm::TwoFluidLbm& sim, int steps) {
    auto client = visit::SimClient::connect(net, {"mux:sim", "pw", 500ms},
                                            Deadline::after(5s));
    ASSERT_TRUE(client.is_ok());
    for (int s = 0; s < steps; ++s) {
      sim.step();
      const std::vector<double> sample{
          static_cast<double>(sim.steps_done()), sim.segregation()};
      ASSERT_TRUE(client.value().send(kTagStep, sample).is_ok());
    }
    client.value().disconnect();
  };

  const auto await_step = [&](double minimum) -> double {
    const auto deadline = Deadline::after(5s);
    double last = -1;
    while (!deadline.has_expired()) {
      auto e = viewer.value().poll(Deadline::after(1s));
      if (!e.is_ok()) continue;
      if (e.value().kind != visit::ViewerClient::Event::Kind::kData) continue;
      auto values = viewer.value().extract<double>(e.value());
      if (values.is_ok() && values.value().size() == 2) {
        last = values.value()[0];
        if (last >= minimum) return last;
      }
    }
    return last;
  };

  // Phase 1: original simulation.
  lbm::TwoFluidLbm sim(config);
  run_phase(sim, 10);
  EXPECT_GE(await_step(10), 10.0);

  // Migrate: checkpoint, destroy, restore elsewhere.
  const auto snapshot = lbm::checkpoint(sim);
  auto restored = lbm::restore(snapshot);
  ASSERT_TRUE(restored.is_ok());

  // Phase 2: the migrated simulation re-attaches to the same multiplexer;
  // the viewer's connection was never touched.
  run_phase(restored.value(), 10);
  const double final_step = await_step(20);
  EXPECT_GE(final_step, 20.0);  // continued, not restarted
  EXPECT_TRUE(viewer.value().connected());
}

// --------------------------------------------------- failure injection ----

TEST(FailureInjection, GatewayRestartIsTransparentToNextTransaction) {
  net::InProcNetwork net;
  unicore::TargetSystem tsi{net, {"site", 1, common::Duration::zero()}};
  tsi.register_application("noop", [](unicore::ExecutionContext&) {
    return common::Status::ok();
  });
  unicore::Njs njs{"site", tsi};
  const auto user = unicore::issue_certificate("CN=U", "k");
  njs.uudb().add_mapping(user, "u");

  auto gateway = unicore::Gateway::start(net, {"gw"});
  ASSERT_TRUE(gateway.is_ok());
  gateway.value()->trust_store().trust(user);
  gateway.value()->register_vsite(njs);

  unicore::UnicoreClient client{net, {"gw", user, 2s}};
  auto job = client.submit(
      unicore::AjoBuilder("j", "site").execute("noop").build());
  ASSERT_TRUE(job.is_ok());

  // The gateway crashes.
  gateway.value()->stop();
  auto during_outage = client.status("site", job.value());
  EXPECT_FALSE(during_outage.is_ok());

  // A new gateway comes up at the same address (jobs at the NJS survive —
  // the gateway is stateless by design).
  auto gateway2 = unicore::Gateway::start(net, {"gw"});
  ASSERT_TRUE(gateway2.is_ok());
  gateway2.value()->trust_store().trust(user);
  gateway2.value()->register_vsite(njs);
  auto after = client.wait("site", job.value(), Deadline::after(5s));
  ASSERT_TRUE(after.is_ok()) << after.status().to_string();
  EXPECT_EQ(after.value().state, unicore::JobState::kSuccessful);
}

TEST(FailureInjection, LossyLinkDegradesButNeverBlocksTheSimulation) {
  net::InProcNetwork net;
  auto server = visit::VizServer::listen(net, {"viz", "pw"});
  ASSERT_TRUE(server.is_ok());
  std::atomic<int> received{0};
  std::jthread viz([&] {
    auto session = server.value().accept(Deadline::after(5s));
    if (!session.is_ok()) return;
    for (;;) {
      auto event = session.value().serve(Deadline::after(2s));
      if (!event.is_ok()) return;
      if (event.value().kind == visit::SimSession::Event::Kind::kBye) return;
      received.fetch_add(1);
    }
  });

  net::ConnectOptions lossy;
  lossy.link.drop_probability = 0.5;
  auto conn = net.connect("viz", Deadline::after(5s), lossy);
  ASSERT_TRUE(conn.is_ok());
  auto client = visit::SimClient::adopt(conn.value(), {"viz", "pw", 100ms},
                                        Deadline::after(5s));
  // The handshake itself crosses the lossy link, so it may fail; retry a
  // few times like a resilient instrumentation layer would.
  for (int attempt = 0; !client.is_ok() && attempt < 20; ++attempt) {
    conn = net.connect("viz", Deadline::after(5s), lossy);
    if (!conn.is_ok()) continue;
    client = visit::SimClient::adopt(conn.value(), {"viz", "pw", 100ms},
                                     Deadline::after(5s));
  }
  ASSERT_TRUE(client.is_ok());

  const std::vector<float> sample(64, 1.f);
  for (int step = 0; step < 100; ++step) {
    const auto t0 = common::Clock::now();
    (void)client.value().send(kTagStep, sample);  // may be dropped: fine
    EXPECT_LT(common::Clock::now() - t0, 200ms);
  }
  // Roughly half the samples arrive; the sim never stalled.
  std::this_thread::sleep_for(100ms);
  EXPECT_GT(received.load(), 10);
  EXPECT_LT(received.load(), 95);
  client.value().disconnect();
}

TEST(FailureInjection, VizCrashMidSessionLeavesSimRunning) {
  net::InProcNetwork net;
  auto server = visit::VizServer::listen(net, {"viz2", "pw"});
  auto session_out = std::make_shared<common::Result<visit::SimSession>>(
      common::Status{StatusCode::kUnavailable, "pending"});
  std::jthread viz([&] {
    *session_out = server.value().accept(Deadline::after(5s));
  });
  auto client = visit::SimClient::connect(net, {"viz2", "pw", 50ms},
                                          Deadline::after(5s));
  ASSERT_TRUE(client.is_ok());
  viz.join();
  ASSERT_TRUE(session_out->is_ok());

  // Steady state, then the visualization process dies.
  const std::vector<float> sample(32, 2.f);
  ASSERT_TRUE(client.value().send(kTagStep, sample).is_ok());
  session_out->value().close();

  int failures = 0;
  for (int step = 0; step < 20; ++step) {
    const auto t0 = common::Clock::now();
    if (!client.value().send(kTagStep, sample).is_ok()) ++failures;
    EXPECT_LT(common::Clock::now() - t0, 200ms);
  }
  EXPECT_GT(failures, 0);  // the sim noticed...
  // ...and can reconnect to a fresh visualization at the same address.
  std::jthread viz2([&] {
    auto session = server.value().accept(Deadline::after(5s));
    EXPECT_TRUE(session.is_ok());
  });
  auto reconnected = visit::SimClient::connect(net, {"viz2", "pw", 100ms},
                                               Deadline::after(5s));
  EXPECT_TRUE(reconnected.is_ok());
}

// ---------------------------------------------- full stack + checkpoint ---

TEST(FullStack, SteeredLbmJobExportsCheckpointThatRestoresLocally) {
  net::InProcNetwork net;
  unicore::TargetSystem tsi{net, {"hpc", 2, common::Duration::zero()}};
  tsi.register_application("lb3d", [](unicore::ExecutionContext& ctx) {
    lbm::LbmConfig config;
    config.nx = config.ny = config.nz = 8;
    lbm::TwoFluidLbm sim(config);
    visit::SimClientOptions opts;
    opts.server_address = ctx.visit_address;
    opts.password = ctx.visit_password;
    opts.default_timeout = 200ms;
    auto client = visit::SimClient::connect(*ctx.net, opts, Deadline::after(5s));
    if (!client.is_ok()) return client.status();
    for (int step = 0; step < 300 && !ctx.cancelled->load(); ++step) {
      auto g = client.value().request<double>(2);
      if (g.is_ok() && !g.value().empty()) sim.set_coupling(g.value()[0]);
      sim.step();
      if (sim.coupling() > 1.0 && sim.segregation() > 0.2) break;
      std::this_thread::sleep_for(1ms);
    }
    // Write the checkpoint into the job directory for export.
    const auto snapshot = lbm::checkpoint(sim);
    (*ctx.uspace)["lbm.ckpt"] =
        std::string(reinterpret_cast<const char*>(snapshot.data()),
                    snapshot.size());
    *ctx.stdout_text += "segregation " + std::to_string(sim.segregation());
    client.value().disconnect();
    return common::Status::ok();
  });
  unicore::Njs njs{"hpc", tsi};
  auto gateway = unicore::Gateway::start(net, {"gw2"});
  const auto user = unicore::issue_certificate("CN=U", "k");
  gateway.value()->trust_store().trust(user);
  njs.uudb().add_mapping(user, "u");
  gateway.value()->register_vsite(njs);

  unicore::UnicoreClient client{net, {"gw2", user, 5s}};
  auto job = client.submit(unicore::AjoBuilder("lbm-steered", "hpc")
                               .start_steering("pw")
                               .execute("lb3d")
                               .export_file("lbm.ckpt")
                               .build());
  ASSERT_TRUE(job.is_ok());

  // Steer the coupling up through the proxies so the run demixes and ends.
  visit::ProxyClient::Options popts;
  popts.poll_period = 5ms;
  auto plugin = visit::ProxyClient::attach(
      client.visit_transactor("hpc", job.value()), popts);
  const auto deadline = Deadline::after(10s);
  while (!plugin.is_ok() && !deadline.has_expired()) {
    std::this_thread::sleep_for(10ms);
    plugin = visit::ProxyClient::attach(
        client.visit_transactor("hpc", job.value()), popts);
  }
  ASSERT_TRUE(plugin.is_ok());
  auto viewer = visit::ViewerClient::adopt(plugin.value()->connection(),
                                           {"", "", 500ms});
  ASSERT_TRUE(viewer.steer<double>(2, {1.8}).is_ok());

  auto outcome = client.wait("hpc", job.value(), Deadline::after(30s));
  ASSERT_TRUE(outcome.is_ok());
  ASSERT_EQ(outcome.value().state, unicore::JobState::kSuccessful)
      << outcome.value().error_text;

  // The exported checkpoint restores locally and matches the reported state.
  const auto& blob = outcome.value().exported_files.at("lbm.ckpt");
  common::Bytes bytes(blob.begin(), blob.end());
  auto restored = lbm::restore(bytes);
  ASSERT_TRUE(restored.is_ok());
  EXPECT_DOUBLE_EQ(restored.value().coupling(), 1.8);
  EXPECT_GT(restored.value().segregation(), 0.2);
}

// ------------------------------------ PEPC diagnostics through COVISE -----

TEST(FullStack, PepcDiagnosticsFeedACovisePipeline) {
  // The paper's announced extension, end to end: charge density from the
  // plasma run, mapped onto a user-defined mesh, explored with a COVISE
  // cutting plane and rendered.
  pepc::PepcConfig config;
  config.target_pairs = 150;
  config.processors = 1;
  pepc::PepcSimulation sim(config);
  sim.beam().pulse_size = 80;
  sim.emit_beam();
  for (int s = 0; s < 3; ++s) sim.step();

  pepc::DiagnosticMesh mesh;
  mesh.nx = mesh.ny = mesh.nz = 14;
  mesh.lo = {-3, -3, -3};
  mesh.hi = {3, 3, 3};

  net::InProcNetwork net;
  covise::Controller controller{net, "diag"};
  ASSERT_TRUE(controller.add_host("viz-host").is_ok());
  auto src = controller.add_module(
      "viz-host",
      std::make_unique<covise::FieldSourceModule>([&](double) {
        covise::UniformGridData g;
        g.nx = mesh.nx;
        g.ny = mesh.ny;
        g.nz = mesh.nz;
        g.origin = mesh.lo;
        g.spacing = mesh.spacing().x;
        g.values = pepc::charge_density(mesh, sim.particles());
        return g;
      }));
  auto cut = controller.add_module(
      "viz-host", std::make_unique<covise::CuttingPlaneModule>());
  auto ren = controller.add_module(
      "viz-host", std::make_unique<covise::RendererModule>());
  ASSERT_TRUE(src.is_ok() && cut.is_ok() && ren.is_ok());
  ASSERT_TRUE(
      controller.connect_ports(src.value(), "field", cut.value(), "field")
          .is_ok());
  ASSERT_TRUE(controller
                  .connect_ports(cut.value(), "geometry", ren.value(),
                                 "geometry0")
                  .is_ok());
  viz::Camera cam;
  cam.look_at({4, 3, 6}, {0, 0, 0}, {0, 1, 0});
  ASSERT_TRUE(
      controller.set_param(ren.value(), "camera", cam.serialize()).is_ok());
  ASSERT_TRUE(controller.execute().is_ok());
  auto image = controller.output_of(ren.value(), "image");
  ASSERT_TRUE(image.is_ok());
  const auto* img = image.value()->as<covise::ImageData>();
  ASSERT_NE(img, nullptr);
  int lit = 0;
  for (const auto& p : img->image.pixels()) {
    if (p.r > 30 || p.g > 30) ++lit;
  }
  EXPECT_GT(lit, 50) << "the density slice should be visible";
}

// --------------------------------------------------------- real TCP -------

TEST(TcpStack, VisitSteeringOverRealSockets) {
  // The same middleware, over genuine loopback TCP: nothing in the VISIT
  // layer knows which transport it runs on. Probe for a free port.
  net::TcpNetwork net;
  std::string chosen;
  common::Result<visit::VizServer> bound{
      common::Status{StatusCode::kUnavailable, "none"}};
  for (int p = 29741; p < 29791; ++p) {
    chosen = std::to_string(p);
    bound = visit::VizServer::listen(net, {chosen, "pw"});
    if (bound.is_ok()) break;
  }
  ASSERT_TRUE(bound.is_ok());

  std::jthread viz([&] {
    auto session = bound.value().accept(Deadline::after(5s));
    ASSERT_TRUE(session.is_ok());
    session.value().set_parameter<double>(7, {3.25});
    for (;;) {
      auto event = session.value().serve(Deadline::after(2s));
      if (!event.is_ok() ||
          event.value().kind == visit::SimSession::Event::Kind::kBye) {
        return;
      }
    }
  });

  auto client = visit::SimClient::connect(net, {chosen, "pw", 500ms},
                                          Deadline::after(5s));
  ASSERT_TRUE(client.is_ok());
  const std::vector<double> sample{1.0, 2.0};
  EXPECT_TRUE(client.value().send(kTagStep, sample).is_ok());
  auto param = client.value().request<double>(7, Deadline::after(2s));
  ASSERT_TRUE(param.is_ok());
  ASSERT_EQ(param.value().size(), 1u);
  EXPECT_DOUBLE_EQ(param.value()[0], 3.25);
  client.value().disconnect();
}

}  // namespace
}  // namespace cs
