#include "viz/remote.hpp"

#include "common/strings.hpp"
#include "wire/message.hpp"

namespace cs::viz {

using common::ByteOrder;
using common::Bytes;
using common::ByteSpan;
using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;
using common::Vec3;

namespace {
constexpr auto kPumpSlice = std::chrono::milliseconds(50);
constexpr std::uint32_t kTagView = 0x7601;   // viewpoint event (control)
constexpr std::uint32_t kTagFrame = 0x7602;  // compressed frame (data)
constexpr std::uint32_t kTagScene = 0x7603;  // geometry snapshot (data)
}  // namespace

// ---------------------------------------------------------------------------
// SceneStore
// ---------------------------------------------------------------------------

void SceneStore::set_mesh(TriangleMesh mesh, Color color) {
  std::scoped_lock lock(mutex_);
  mesh_ = std::move(mesh);
  mesh_color_ = color;
  version_.fetch_add(1);
}

void SceneStore::set_particles(std::vector<ParticleSprite> particles,
                               GlyphStyle style) {
  std::scoped_lock lock(mutex_);
  particles_ = std::move(particles);
  glyph_style_ = style;
  version_.fetch_add(1);
}

void SceneStore::set_boxes(std::vector<std::pair<Vec3, Vec3>> boxes,
                           Color color) {
  std::scoped_lock lock(mutex_);
  boxes_ = std::move(boxes);
  box_color_ = color;
  version_.fetch_add(1);
}

void SceneStore::render(Renderer& renderer, const Camera& camera) const {
  std::scoped_lock lock(mutex_);
  renderer.clear();
  if (!mesh_.triangles.empty()) renderer.draw_mesh(mesh_, camera, mesh_color_);
  if (!particles_.empty()) {
    renderer.draw_particles(particles_, camera, glyph_style_);
  }
  for (const auto& [lo, hi] : boxes_) {
    renderer.draw_box(lo, hi, camera, box_color_);
  }
}

std::size_t SceneStore::geometry_bytes() const {
  std::scoped_lock lock(mutex_);
  return mesh_.byte_size() + particles_.size() * sizeof(ParticleSprite) +
         boxes_.size() * sizeof(boxes_[0]);
}

Bytes SceneStore::encode() const {
  std::scoped_lock lock(mutex_);
  Bytes out;
  const auto put_u32 = [&](std::uint32_t v) {
    common::append_uint<std::uint32_t>(out, v, ByteOrder::kBig);
  };
  const auto put_vec = [&](const Vec3& v) {
    common::append_bytes(out, common::as_bytes(v));
  };
  put_u32(static_cast<std::uint32_t>(mesh_.vertices.size()));
  for (const auto& v : mesh_.vertices) put_vec(v);
  put_u32(static_cast<std::uint32_t>(mesh_.triangles.size()));
  for (const auto& t : mesh_.triangles) {
    put_u32(t.a); put_u32(t.b); put_u32(t.c);
  }
  out.push_back(mesh_color_.r); out.push_back(mesh_color_.g); out.push_back(mesh_color_.b);
  put_u32(static_cast<std::uint32_t>(particles_.size()));
  for (const auto& p : particles_) {
    put_vec(p.position);
    put_vec(p.velocity);
    out.push_back(p.color.r); out.push_back(p.color.g); out.push_back(p.color.b);
  }
  out.push_back(static_cast<std::uint8_t>(glyph_style_));
  put_u32(static_cast<std::uint32_t>(boxes_.size()));
  for (const auto& [lo, hi] : boxes_) {
    put_vec(lo);
    put_vec(hi);
  }
  out.push_back(box_color_.r); out.push_back(box_color_.g); out.push_back(box_color_.b);
  return out;
}

Status SceneStore::decode(ByteSpan data) {
  std::size_t offset = 0;
  const auto need = [&](std::size_t n) { return offset + n <= data.size(); };
  const auto get_u32 = [&]() {
    const auto v =
        common::read_uint<std::uint32_t>(data.subspan(offset), ByteOrder::kBig);
    offset += 4;
    return v;
  };
  const auto get_vec = [&]() {
    Vec3 v;
    std::memcpy(&v, data.data() + offset, sizeof(Vec3));
    offset += sizeof(Vec3);
    return v;
  };
  const auto get_color = [&]() {
    Color c{data[offset], data[offset + 1], data[offset + 2]};
    offset += 3;
    return c;
  };

  TriangleMesh mesh;
  std::vector<ParticleSprite> particles;
  std::vector<std::pair<Vec3, Vec3>> boxes;
  if (!need(4)) return Status{StatusCode::kProtocolError, "scene truncated"};
  const auto nv = get_u32();
  if (!need(nv * sizeof(Vec3) + 4)) {
    return Status{StatusCode::kProtocolError, "scene truncated"};
  }
  mesh.vertices.reserve(nv);
  for (std::uint32_t i = 0; i < nv; ++i) mesh.vertices.push_back(get_vec());
  const auto nt = get_u32();
  if (!need(nt * 12 + 3 + 4)) {
    return Status{StatusCode::kProtocolError, "scene truncated"};
  }
  mesh.triangles.reserve(nt);
  for (std::uint32_t i = 0; i < nt; ++i) {
    Triangle t;
    t.a = get_u32(); t.b = get_u32(); t.c = get_u32();
    if (t.a >= nv || t.b >= nv || t.c >= nv) {
      return Status{StatusCode::kProtocolError, "triangle index out of range"};
    }
    mesh.triangles.push_back(t);
  }
  const Color mesh_color = get_color();
  const auto np = get_u32();
  if (!need(np * (2 * sizeof(Vec3) + 3) + 1 + 4)) {
    return Status{StatusCode::kProtocolError, "scene truncated"};
  }
  particles.reserve(np);
  for (std::uint32_t i = 0; i < np; ++i) {
    ParticleSprite p;
    p.position = get_vec();
    p.velocity = get_vec();
    p.color = get_color();
    particles.push_back(p);
  }
  const auto style = static_cast<GlyphStyle>(data[offset]);
  ++offset;
  const auto nb = get_u32();
  if (!need(nb * 2 * sizeof(Vec3) + 3)) {
    return Status{StatusCode::kProtocolError, "scene truncated"};
  }
  boxes.reserve(nb);
  for (std::uint32_t i = 0; i < nb; ++i) {
    const Vec3 lo = get_vec();
    const Vec3 hi = get_vec();
    boxes.emplace_back(lo, hi);
  }
  const Color box_color = get_color();

  std::scoped_lock lock(mutex_);
  mesh_ = std::move(mesh);
  mesh_color_ = mesh_color;
  particles_ = std::move(particles);
  glyph_style_ = style;
  boxes_ = std::move(boxes);
  box_color_ = box_color;
  version_.fetch_add(1);
  return Status::ok();
}

// ---------------------------------------------------------------------------
// RemoteRenderServer
// ---------------------------------------------------------------------------

Result<std::unique_ptr<RemoteRenderServer>> RemoteRenderServer::start(
    net::Network& net, std::shared_ptr<SceneStore> scene,
    const Options& options) {
  if (!scene) return Status{StatusCode::kInvalidArgument, "null scene"};
  auto listener = net.listen(options.address);
  if (!listener.is_ok()) return listener.status();
  std::unique_ptr<RemoteRenderServer> server{new RemoteRenderServer};
  server->options_ = options;
  server->scene_ = std::move(scene);
  server->listener_ = std::move(listener).value();
  RemoteRenderServer* self = server.get();
  server->accept_thread_ =
      std::jthread([self](std::stop_token st) { self->accept_loop(st); });
  server->render_thread_ =
      std::jthread([self](std::stop_token st) { self->render_loop(st); });
  return server;
}

RemoteRenderServer::~RemoteRenderServer() { stop(); }

void RemoteRenderServer::stop() {
  if (stopped_.exchange(true)) return;
  accept_thread_.request_stop();
  render_thread_.request_stop();
  if (listener_) listener_->close();
  std::vector<Client> doomed;
  std::vector<std::jthread> graves;
  {
    std::scoped_lock lock(mutex_);
    for (auto& [id, c] : clients_) {
      c.conn->close();
      doomed.push_back(std::move(c));
    }
    clients_.clear();
    graves = std::move(graveyard_);
  }
  for (auto& c : doomed) {
    if (c.pump.joinable()) {
      c.pump.request_stop();
      c.pump.join();
    }
  }
  for (auto& t : graves) {
    if (t.joinable()) {
      t.request_stop();
      t.join();
    }
  }
}

std::size_t RemoteRenderServer::client_count() const {
  std::scoped_lock lock(mutex_);
  return clients_.size();
}

RemoteRenderServer::Stats RemoteRenderServer::stats() const {
  std::scoped_lock lock(mutex_);
  return stats_;
}

void RemoteRenderServer::accept_loop(const std::stop_token& st) {
  while (!st.stop_requested()) {
    auto conn = listener_->accept(Deadline::after(kPumpSlice));
    if (!conn.is_ok()) {
      if (conn.status().code() == StatusCode::kClosed) return;
      continue;
    }
    std::scoped_lock lock(mutex_);
    const std::uint64_t id = next_client_id_++;
    Client client;
    client.conn = std::move(conn).value();
    clients_.emplace(id, std::move(client));
    clients_[id].pump = std::jthread(
        [this, id](std::stop_token pst) { client_pump(pst, id); });
    // Force a fresh frame for everyone (the newcomer needs a key frame).
    camera_version_++;
  }
}

void RemoteRenderServer::client_pump(const std::stop_token& st,
                                     std::uint64_t id) {
  net::ConnectionPtr conn;
  {
    std::scoped_lock lock(mutex_);
    auto it = clients_.find(id);
    if (it == clients_.end()) return;
    conn = it->second.conn;
  }
  while (!st.stop_requested()) {
    auto raw = conn->recv(Deadline::after(kPumpSlice));
    if (!raw.is_ok()) {
      if (raw.status().code() == StatusCode::kClosed) {
        std::scoped_lock lock(mutex_);
        auto it = clients_.find(id);
        if (it != clients_.end()) {
          it->second.conn->close();
          it->second.pump.request_stop();
          graveyard_.push_back(std::move(it->second.pump));
          clients_.erase(it);
        }
        return;
      }
      continue;
    }
    auto m = wire::Message::decode(raw.value());
    if (!m.is_ok()) continue;
    if (m.value().header.tag == kTagView) {
      auto body = wire::extract_string(m.value());
      if (!body.is_ok()) continue;
      auto camera = Camera::parse(body.value());
      if (!camera.is_ok()) continue;
      std::scoped_lock lock(mutex_);
      camera_ = camera.value();  // shared camera: VizServer collaboration
      ++camera_version_;
    }
  }
}

void RemoteRenderServer::render_loop(const std::stop_token& st) {
  Renderer renderer(options_.width, options_.height);
  std::uint64_t seen_scene = ~0ull;
  std::uint64_t seen_camera = 0;
  while (!st.stop_requested()) {
    Camera camera;
    bool dirty = false;
    {
      std::scoped_lock lock(mutex_);
      if (camera_version_ != seen_camera || scene_->version() != seen_scene) {
        seen_camera = camera_version_;
        seen_scene = scene_->version();
        camera = camera_;
        dirty = !clients_.empty();
      }
    }
    if (!dirty) {
      std::this_thread::sleep_for(options_.frame_period);
      continue;
    }
    scene_->render(renderer, camera);
    {
      std::scoped_lock lock(mutex_);
      ++stats_.frames_rendered;
    }
    // Compress per client (delta against what that client last saw).
    std::vector<std::pair<std::uint64_t, net::ConnectionPtr>> targets;
    {
      std::scoped_lock lock(mutex_);
      for (auto& [id, c] : clients_) targets.emplace_back(id, c.conn);
    }
    for (auto& [id, conn] : targets) {
      Bytes payload;
      {
        std::scoped_lock lock(mutex_);
        auto it = clients_.find(id);
        if (it == clients_.end()) continue;
        payload = compress_frame_delta(renderer.frame(), it->second.last_frame);
        it->second.last_frame = renderer.frame();
      }
      const auto frame_msg =
          wire::make_data_message(kTagFrame, payload.data(), payload.size());
      if (conn->send(frame_msg.encode(), Deadline::after(std::chrono::seconds(1)))
              .is_ok()) {
        std::scoped_lock lock(mutex_);
        ++stats_.frames_sent;
        stats_.bytes_sent += payload.size();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// RemoteRenderClient
// ---------------------------------------------------------------------------

Result<RemoteRenderClient> RemoteRenderClient::connect(net::Network& net,
                                                       const std::string& address,
                                                       Deadline deadline) {
  auto conn = net.connect(address, deadline);
  if (!conn.is_ok()) return conn.status();
  return adopt(std::move(conn).value());
}

RemoteRenderClient RemoteRenderClient::adopt(net::ConnectionPtr conn) {
  RemoteRenderClient client;
  client.conn_ = std::move(conn);
  return client;
}

Status RemoteRenderClient::set_view(const Camera& camera, Deadline deadline) {
  if (!conn_) return Status{StatusCode::kClosed, "not connected"};
  return conn_->send(
      wire::make_control_message(kTagView, camera.serialize()).encode(),
      deadline);
}

Result<Image> RemoteRenderClient::await_frame(Deadline deadline) {
  if (!conn_) return Status{StatusCode::kClosed, "not connected"};
  for (;;) {
    auto raw = conn_->recv(deadline);
    if (!raw.is_ok()) return raw.status();
    auto m = wire::Message::decode(raw.value());
    if (!m.is_ok()) return m.status();
    if (m.value().header.tag != kTagFrame) continue;
    auto image = decompress_frame_delta(m.value().payload, frame_);
    if (!image.is_ok()) return image.status();
    frame_ = std::move(image).value();
    return frame_;
  }
}

void RemoteRenderClient::disconnect() {
  if (conn_) conn_->close();
  conn_.reset();
}

// ---------------------------------------------------------------------------
// GeometryChannel
// ---------------------------------------------------------------------------

std::jthread GeometryChannel::start_sender(net::ConnectionPtr conn,
                                           std::shared_ptr<SceneStore> scene,
                                           common::Duration period) {
  return std::jthread([conn, scene, period](std::stop_token st) {
    std::uint64_t seen = ~0ull;
    while (!st.stop_requested()) {
      const std::uint64_t v = scene->version();
      if (v != seen) {
        seen = v;
        const Bytes payload = scene->encode();
        if (conn->send(wire::make_data_message(kTagScene, payload.data(),
                                               payload.size())
                           .encode(),
                       Deadline::after(std::chrono::seconds(2)))
                .code() == StatusCode::kClosed) {
          return;
        }
      }
      std::this_thread::sleep_for(period);
    }
  });
}

Status GeometryChannel::receive_into(net::Connection& conn, SceneStore& scene,
                                     Deadline deadline) {
  for (;;) {
    auto raw = conn.recv(deadline);
    if (!raw.is_ok()) return raw.status();
    auto m = wire::Message::decode(raw.value());
    if (!m.is_ok()) return m.status();
    if (m.value().header.tag != kTagScene) continue;
    return scene.decode(m.value().payload);
  }
}

}  // namespace cs::viz
