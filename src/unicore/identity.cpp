#include "unicore/identity.hpp"

namespace cs::unicore {

namespace {
// FNV-1a, hex-encoded: stable, collision-unlikely at our scale, and clearly
// not pretending to be real cryptography.
std::string fnv_hex(const std::string& text) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  static const char* hex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex[h & 0xf];
    h >>= 4;
  }
  return out;
}
}  // namespace

Certificate issue_certificate(const std::string& subject,
                              const std::string& secret) {
  return Certificate{subject, fnv_hex(subject + "\x1f" + secret)};
}

}  // namespace cs::unicore
