// Tests for the PEPC substrate: tree correctness against direct summation,
// O(N log N) interaction scaling, Morton decomposition, and the physical
// behaviours the paper steers (beam injection, plasma cooling).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sim/pepc/direct.hpp"
#include "sim/pepc/domain.hpp"
#include "sim/pepc/pepc.hpp"
#include "sim/pepc/tree.hpp"

namespace cs::pepc {
namespace {

using common::Vec3;

std::vector<Particle> random_plasma(int n, std::uint64_t seed = 1) {
  common::Rng rng{seed};
  std::vector<Particle> particles(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& p = particles[static_cast<std::size_t>(i)];
    p.pos[0] = rng.uniform(-1, 1);
    p.pos[1] = rng.uniform(-1, 1);
    p.pos[2] = rng.uniform(-1, 1);
    p.charge = (i % 2 == 0) ? 1.0 : -1.0;
    p.label = i;
  }
  return particles;
}

// ------------------------------------------------------------------ tree --

TEST(Tree, TwoParticleFieldMatchesCoulomb) {
  std::vector<Particle> particles(2);
  particles[0].pos[0] = 0.0;
  particles[0].charge = 2.0;
  particles[1].pos[0] = 1.0;
  particles[1].charge = -1.0;
  TreeConfig cfg;
  cfg.softening = 0.0;
  Octree tree(cfg);
  tree.build(particles);
  // Field at particle 1 from particle 0: q0 / r^2 pointing +x.
  const Vec3 field = tree.field_at(particles[1].position(), 1);
  EXPECT_NEAR(field.x, 2.0, 1e-9);
  EXPECT_NEAR(field.y, 0.0, 1e-12);
}

TEST(Tree, MatchesDirectSummationWithinTolerance) {
  const auto particles = random_plasma(500);
  TreeConfig cfg;
  cfg.theta = 0.5;
  Octree tree(cfg);
  tree.build(particles);
  DirectSolver direct(cfg.softening);

  std::vector<Vec3> tree_forces(particles.size());
  tree.accumulate_forces(particles, tree_forces);

  double err2 = 0.0, norm2_sum = 0.0;
  for (std::size_t i = 0; i < particles.size(); ++i) {
    const Vec3 exact =
        particles[i].charge * direct.field_at(particles, particles[i].position(), i);
    err2 += norm2(tree_forces[i] - exact);
    norm2_sum += norm2(exact);
  }
  const double rel = std::sqrt(err2 / norm2_sum);
  EXPECT_LT(rel, 0.02) << "rms relative force error";
}

TEST(Tree, SmallerThetaIsMoreAccurate) {
  const auto particles = random_plasma(300, 5);
  DirectSolver direct(0.05);
  double previous_error = 1e9;
  for (double theta : {1.0, 0.6, 0.3}) {
    TreeConfig cfg;
    cfg.theta = theta;
    Octree tree(cfg);
    tree.build(particles);
    double err2 = 0.0, ref2 = 0.0;
    for (std::size_t i = 0; i < particles.size(); ++i) {
      const Vec3 approx =
          particles[i].charge * tree.field_at(particles[i].position(), i);
      const Vec3 exact = particles[i].charge *
                         direct.field_at(particles, particles[i].position(), i);
      err2 += norm2(approx - exact);
      ref2 += norm2(exact);
    }
    const double rel = std::sqrt(err2 / ref2);
    EXPECT_LT(rel, previous_error + 1e-12);
    previous_error = rel;
  }
  EXPECT_LT(previous_error, 0.01);
}

TEST(Tree, PotentialEnergyMatchesDirect) {
  const auto particles = random_plasma(300, 9);
  TreeConfig cfg;
  cfg.theta = 0.4;
  Octree tree(cfg);
  tree.build(particles);
  DirectSolver direct(cfg.softening);
  const double tree_pe = tree.potential_energy(particles);
  const double exact_pe = direct.potential_energy(particles);
  EXPECT_NEAR(tree_pe, exact_pe, std::abs(exact_pe) * 0.05);
}

TEST(Tree, InteractionCountScalesSubQuadratically) {
  // The O(N log N) claim: interactions per particle should grow like
  // log N, not N. Compare per-particle interaction counts at 1k and 8k.
  TreeConfig cfg;
  cfg.theta = 0.6;
  const auto count_per_particle = [&](int n) {
    const auto particles = random_plasma(n, 11);
    Octree tree(cfg);
    tree.build(particles);
    std::vector<Vec3> forces(particles.size());
    tree.accumulate_forces(particles, forces);
    return static_cast<double>(tree.interaction_count()) / n;
  };
  const double small = count_per_particle(1000);
  const double large = count_per_particle(8000);
  // 8x more particles -> direct would be 8x more per particle; the tree
  // should stay well below 3x (log 8 = 3 doublings, so ~ +constant each).
  EXPECT_LT(large / small, 3.0);
  EXPECT_GT(large, small);  // but it does grow (log factor)
}

TEST(Tree, EmptyAndSingleParticle) {
  Octree tree;
  std::vector<Particle> none;
  tree.build(none);
  EXPECT_EQ(norm(tree.field_at({0, 0, 0})), 0.0);
  std::vector<Particle> one(1);
  one[0].charge = 1.0;
  tree.build(one);
  // Excluding the only particle leaves no sources.
  EXPECT_EQ(norm(tree.field_at(one[0].position(), 0)), 0.0);
  EXPECT_GT(norm(tree.field_at({1, 1, 1})), 0.0);
}

TEST(Tree, CoincidentParticlesDoNotRecurseForever) {
  std::vector<Particle> particles(20);
  for (auto& p : particles) {
    p.pos[0] = p.pos[1] = p.pos[2] = 0.5;
    p.charge = 1.0;
  }
  Octree tree;
  tree.build(particles);  // must terminate via depth cap
  EXPECT_GT(tree.node_count(), 0u);
  const Vec3 f = tree.field_at({2, 0, 0});
  EXPECT_GT(f.x, 0.0);
}

// ---------------------------------------------------------------- domain --

TEST(Domain, InterleaveOrdersOctants) {
  // Low bits of each coordinate interleave: (1,0,0)=1, (0,1,0)=2, (0,0,1)=4.
  EXPECT_EQ(interleave3(1, 0, 0), 1u);
  EXPECT_EQ(interleave3(0, 1, 0), 2u);
  EXPECT_EQ(interleave3(0, 0, 1), 4u);
  EXPECT_EQ(interleave3(1, 1, 1), 7u);
}

TEST(Domain, BalancedCounts) {
  auto particles = random_plasma(1000, 13);
  const auto boxes = decompose(particles, 8);
  ASSERT_EQ(boxes.size(), 8u);
  int total = 0;
  for (const auto& b : boxes) {
    EXPECT_GE(b.count, 100);  // perfectly balanced would be 125
    EXPECT_LE(b.count, 150);
    total += b.count;
  }
  EXPECT_EQ(total, 1000);
}

TEST(Domain, BoxesContainTheirParticles) {
  auto particles = random_plasma(500, 17);
  const auto boxes = decompose(particles, 4);
  for (const auto& p : particles) {
    const auto& b = boxes[static_cast<std::size_t>(p.proc)];
    for (int a = 0; a < 3; ++a) {
      EXPECT_GE(p.pos[a], b.lo[a] - 1e-12);
      EXPECT_LE(p.pos[a], b.hi[a] + 1e-12);
    }
  }
}

TEST(Domain, MorePprocsThanParticles) {
  auto particles = random_plasma(3, 19);
  const auto boxes = decompose(particles, 8);
  ASSERT_EQ(boxes.size(), 8u);
  int total = 0;
  for (const auto& b : boxes) total += b.count;
  EXPECT_EQ(total, 3);
}

TEST(Domain, SpatialLocality) {
  // Morton chunks are spatially compact: a domain's box volume should be
  // much smaller than the full domain for a balanced decomposition.
  auto particles = random_plasma(4000, 23);
  const auto boxes = decompose(particles, 16);
  double total_volume = 0.0;
  for (const auto& b : boxes) {
    total_volume += (b.hi[0] - b.lo[0]) * (b.hi[1] - b.lo[1]) *
                    (b.hi[2] - b.lo[2]);
  }
  // Full cube is 2^3 = 8; overlapping compact chunks should sum to well
  // under 3x the full volume (random split would approach 16 * 8).
  EXPECT_LT(total_volume, 24.0);
}

// ------------------------------------------------------------------ pepc --

PepcConfig small_pepc(int pairs = 128) {
  PepcConfig c;
  c.target_pairs = pairs;
  c.processors = 2;
  c.seed = 31;
  return c;
}

TEST(Pepc, QuasiNeutralSetup) {
  PepcSimulation sim(small_pepc());
  double q = 0.0;
  for (const auto& p : sim.particles()) q += p.charge;
  EXPECT_NEAR(q, 0.0, 1e-12);
  EXPECT_EQ(sim.particles().size(), 256u);
}

TEST(Pepc, EnergyApproximatelyConservedWithoutDamping) {
  PepcConfig c = small_pepc();
  c.dt = 0.002;
  c.tree.theta = 0.4;
  PepcSimulation sim(c);
  const double e0 = sim.total_energy();
  for (int s = 0; s < 50; ++s) sim.step();
  const double e1 = sim.total_energy();
  EXPECT_NEAR(e1, e0, std::abs(e0) * 0.05)
      << "leapfrog + tree should conserve energy to a few percent";
}

TEST(Pepc, BeamInjectionAddsMovingCharges) {
  PepcSimulation sim(small_pepc());
  const auto before = sim.particles().size();
  sim.beam().pulse_size = 32;
  sim.beam().speed = 3.0;
  sim.emit_beam();
  EXPECT_EQ(sim.particles().size(), before + 32);
  // The beam dominates mean electron speed right after injection.
  EXPECT_GT(sim.mean_electron_speed(), 0.5);
}

TEST(Pepc, SteeredBeamDirectionTakesEffect) {
  PepcSimulation sim(small_pepc());
  sim.beam().direction = Vec3{0, 0, 1};
  sim.beam().origin = Vec3{0, 0, -3};
  sim.beam().pulse_size = 16;
  sim.emit_beam();
  // All new particles move in +z.
  const auto& ps = sim.particles();
  for (std::size_t i = ps.size() - 16; i < ps.size(); ++i) {
    EXPECT_GT(ps[i].vel[2], 0.0);
    EXPECT_NEAR(ps[i].vel[0], 0.0, 1e-12);
  }
}

TEST(Pepc, DampingCoolsThePlasma) {
  // The paper's "assist an initially random plasma towards a cold, ordered
  // state": switch damping on and the mean electron speed must fall.
  PepcConfig c = small_pepc();
  c.electron_temperature = 0.3;
  PepcSimulation sim(c);
  for (int s = 0; s < 10; ++s) sim.step();
  const double hot = sim.mean_electron_speed();
  sim.set_damping(0.1);  // the steering action
  for (int s = 0; s < 40; ++s) sim.step();
  EXPECT_LT(sim.mean_electron_speed(), hot * 0.3);
}

TEST(Pepc, DomainsTrackParticles) {
  PepcSimulation sim(small_pepc());
  EXPECT_EQ(sim.domains().size(), 2u);
  int count = 0;
  for (const auto& b : sim.domains()) count += b.count;
  EXPECT_EQ(count, static_cast<int>(sim.particles().size()));
  sim.emit_beam();
  count = 0;
  for (const auto& b : sim.domains()) count += b.count;
  EXPECT_EQ(count, static_cast<int>(sim.particles().size()));
}

TEST(Pepc, DeterministicForEqualSeeds) {
  PepcSimulation a(small_pepc()), b(small_pepc());
  for (int s = 0; s < 5; ++s) {
    a.step();
    b.step();
  }
  ASSERT_EQ(a.particles().size(), b.particles().size());
  for (std::size_t i = 0; i < a.particles().size(); ++i) {
    EXPECT_EQ(a.particles()[i].pos[0], b.particles()[i].pos[0]);
    EXPECT_EQ(a.particles()[i].vel[2], b.particles()[i].vel[2]);
  }
}

TEST(Pepc, ThreadedForcesMatchSerial) {
  PepcConfig serial = small_pepc(300);
  serial.processors = 1;
  PepcConfig parallel = small_pepc(300);
  parallel.processors = 4;
  PepcSimulation a(serial), b(parallel);
  for (int s = 0; s < 3; ++s) {
    a.step();
    b.step();
  }
  for (std::size_t i = 0; i < a.particles().size(); ++i) {
    EXPECT_NEAR(a.particles()[i].pos[0], b.particles()[i].pos[0], 1e-12);
    EXPECT_NEAR(a.particles()[i].vel[1], b.particles()[i].vel[1], 1e-12);
  }
}

TEST(Pepc, StructDescsMatchLayout) {
  EXPECT_EQ(particle_struct_desc().host_size(), sizeof(Particle));
  EXPECT_EQ(domain_box_struct_desc().host_size(), sizeof(DomainBox));
  EXPECT_EQ(particle_struct_desc().wire_record_size(),
            3 * 8 + 3 * 8 + 8 + 8 + 4 + 8u);
}

}  // namespace
}  // namespace cs::pepc
