#include "net/accept_pump.hpp"

#include <utility>

namespace cs::net {

using common::Deadline;
using common::Result;
using common::StatusCode;

AcceptPump::AcceptPump(Listener& listener, ConnHandler on_conn,
                       ServeOptions options)
    : listener_(listener), on_conn_(std::move(on_conn)), options_(options) {
  thread_ = std::jthread([this](std::stop_token st) { run(st); });
}

AcceptPump::AcceptPump(EventHost& host, Listener& listener,
                       ConnHandler on_conn, ServeOptions options)
    : listener_(listener), on_conn_(std::move(on_conn)), options_(options) {
  Result<std::uint64_t> token = host.watch_listener(
      listener, [this](ConnectionPtr conn) { dispatch(std::move(conn)); });
  if (token.is_ok()) {
    host_ = &host;
    watch_token_ = token.value();
    event_driven_ = true;
    return;
  }
  // No native handle (or the watch failed): same contract, one thread.
  thread_ = std::jthread([this](std::stop_token st) { run(st); });
}

AcceptPump::~AcceptPump() { stop(); }

void AcceptPump::stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  if (event_driven_) {
    host_->unwatch_listener(watch_token_);
    return;
  }
  thread_.request_stop();
  if (thread_.joinable()) thread_.join();
}

void AcceptPump::run(const std::stop_token& st) {
  while (!st.stop_requested()) {
    Result<ConnectionPtr> r =
        listener_.accept(Deadline::after(options_.accept_slice));
    if (r.is_ok()) {
      dispatch(std::move(r).value());
      continue;
    }
    const StatusCode code = r.status().code();
    if (code == StatusCode::kClosed) return;
    // kTimeout is the poll slice elapsing; anything else is a transient
    // accept failure — either way, keep serving.
  }
}

void AcceptPump::dispatch(ConnectionPtr conn) {
  if (stopped_.load(std::memory_order_acquire)) {
    conn->close();
    return;
  }
  if (options_.max_conns != 0 &&
      live_.load(std::memory_order_acquire) >= options_.max_conns) {
    refused_.fetch_add(1, std::memory_order_relaxed);
    conn->close();
    return;
  }
  live_.fetch_add(1, std::memory_order_acq_rel);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  on_conn_(std::move(conn));
}

}  // namespace cs::net
