// Simulation-side steering client.
//
// This is the paper's core design (section 3.2): *the simulation is the
// client*. Every operation — opening the connection, shipping samples,
// fetching new steering parameters — is initiated by the simulation and is
// guaranteed to complete or fail within a caller-supplied timeout, so a
// slow, stalled, or dead visualization can never stall the simulation. The
// interface is deliberately lean (the paper: "a lean and easy-to-use
// interface", no external dependencies on the simulation side).
//
// Payloads leave the simulation in its native representation; all
// conversion work happens on the visualization server (wire/convert.hpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "net/transport.hpp"
#include "wire/convert.hpp"
#include "wire/message.hpp"
#include "wire/structdesc.hpp"

namespace cs::visit {

/// Connection parameters for a steered simulation.
struct SimClientOptions {
  /// Address of the visualization server (or multiplexer, or proxy).
  std::string server_address;
  /// Clear-text connection password (the paper notes VISIT offered nothing
  /// stronger; integration with the middleware adds real security).
  std::string password;
  /// Default timeout applied when a call passes no explicit deadline.
  common::Duration default_timeout = std::chrono::milliseconds(100);
};

/// The steering endpoint linked into the simulation.
///
/// All methods are non-throwing; errors come back as Status. After a
/// connection-level failure the client is `!connected()` and every further
/// call fails fast with kClosed — the simulation keeps running.
class SimClient {
 public:
  SimClient() = default;

  /// Opens the connection and performs the password handshake. Returns a
  /// disconnected-but-valid client wrapped in an error Status on failure.
  static common::Result<SimClient> connect(net::Network& net,
                                           const SimClientOptions& options,
                                           common::Deadline deadline);

  /// In-process variant used by proxies that already hold a connection.
  static common::Result<SimClient> adopt(net::ConnectionPtr conn,
                                         const SimClientOptions& options,
                                         common::Deadline deadline);

  bool connected() const noexcept { return conn_ != nullptr && conn_->is_open(); }

  /// Ships an array of scalars under `tag` (fire-and-forget sample data).
  template <typename T>
  common::Status send(std::uint32_t tag, const T* values, std::size_t count,
                      std::optional<common::Deadline> deadline = {}) {
    if (!connected()) return closed_status();
    const auto m = wire::make_data_message(tag, values, count);
    return send_message(m, deadline);
  }

  template <typename T>
  common::Status send(std::uint32_t tag, const std::vector<T>& values,
                      std::optional<common::Deadline> deadline = {}) {
    return send(tag, values.data(), values.size(), deadline);
  }

  /// Ships a string under `tag`.
  common::Status send_string(std::uint32_t tag, std::string_view text,
                             std::optional<common::Deadline> deadline = {});

  /// Ships an array of user-defined records. The schema is announced to the
  /// server once per (connection, tag).
  common::Status send_struct(std::uint32_t tag, const wire::StructDesc& desc,
                             const void* records, std::size_t record_count,
                             std::optional<common::Deadline> deadline = {});

  /// Fetches the current value of steering parameter `tag` from the server
  /// (request/reply, both legs bounded by the deadline). This is how new
  /// parameters reach the simulation: pulled, never pushed.
  template <typename T>
  common::Result<std::vector<T>> request(
      std::uint32_t tag, std::optional<common::Deadline> deadline = {}) {
    auto reply = request_raw(tag, deadline);
    if (!reply.is_ok()) return reply.status();
    return wire::extract_as<T>(reply.value());
  }

  /// String-valued variant of request().
  common::Result<std::string> request_string(
      std::uint32_t tag, std::optional<common::Deadline> deadline = {});

  /// Sends BYE and closes. Safe to call repeatedly.
  void disconnect();

  /// Traffic counters of the underlying connection (zeros when detached).
  net::ConnStats stats() const;

 private:
  common::Status send_message(const wire::Message& m,
                              std::optional<common::Deadline> deadline);
  common::Result<wire::Message> request_raw(
      std::uint32_t tag, std::optional<common::Deadline> deadline);
  common::Deadline effective(std::optional<common::Deadline> d) const {
    return d ? *d : common::Deadline::after(options_.default_timeout);
  }
  common::Status closed_status() const {
    return common::Status{common::StatusCode::kClosed, "not connected"};
  }
  /// Drops the connection after an unrecoverable transport/protocol error.
  void poison();

  net::ConnectionPtr conn_;
  SimClientOptions options_;
  std::set<std::uint32_t> announced_schemas_;
};

}  // namespace cs::visit
