// Tests for the paper's announced extensions: LBM checkpoint/restore (the
// substrate of session migration, section 2.4) and PEPC mesh diagnostics
// (charge density, current, electric fields on a user-defined mesh,
// section 3.4).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sim/lbm/checkpoint.hpp"
#include "sim/lbm/lbm.hpp"
#include "sim/pepc/diagnostics.hpp"
#include "sim/pepc/pepc.hpp"

namespace cs {
namespace {

using common::Vec3;

// ------------------------------------------------------- LBM checkpoint --

lbm::LbmConfig small_config() {
  lbm::LbmConfig c;
  c.nx = c.ny = c.nz = 10;
  c.coupling = 1.6;
  c.seed = 11;
  return c;
}

TEST(LbmCheckpoint, RestoreIsBitExact) {
  lbm::TwoFluidLbm sim(small_config());
  for (int s = 0; s < 30; ++s) sim.step();
  const auto snapshot = lbm::checkpoint(sim);
  auto restored = lbm::restore(snapshot);
  ASSERT_TRUE(restored.is_ok());
  EXPECT_EQ(restored.value().steps_done(), sim.steps_done());
  EXPECT_EQ(restored.value().distributions_a(), sim.distributions_a());
  EXPECT_EQ(restored.value().order_parameter(), sim.order_parameter());
}

TEST(LbmCheckpoint, MigratedRunContinuesIdentically) {
  // The migration property: checkpoint mid-run, continue both the original
  // and the restored copy — their futures must match bit for bit.
  lbm::TwoFluidLbm original(small_config());
  for (int s = 0; s < 20; ++s) original.step();
  auto migrated = lbm::restore(lbm::checkpoint(original));
  ASSERT_TRUE(migrated.is_ok());
  for (int s = 0; s < 25; ++s) {
    original.step();
    migrated.value().step();
  }
  EXPECT_EQ(original.order_parameter(), migrated.value().order_parameter());
  EXPECT_EQ(original.steps_done(), migrated.value().steps_done());
}

TEST(LbmCheckpoint, SteeringStateSurvivesMigration) {
  lbm::TwoFluidLbm sim(small_config());
  sim.set_coupling(0.77);  // steered mid-run
  auto restored = lbm::restore(lbm::checkpoint(sim));
  ASSERT_TRUE(restored.is_ok());
  EXPECT_DOUBLE_EQ(restored.value().coupling(), 0.77);
}

TEST(LbmCheckpoint, CorruptCheckpointsRejected) {
  lbm::TwoFluidLbm sim(small_config());
  auto good = lbm::checkpoint(sim);
  EXPECT_FALSE(lbm::restore(common::Bytes{1, 2, 3}).is_ok());
  auto truncated = good;
  truncated.resize(truncated.size() / 3);
  EXPECT_FALSE(lbm::restore(truncated).is_ok());
  auto bad_magic = good;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(lbm::restore(bad_magic).is_ok());
}

TEST(LbmCheckpoint, MassPreservedAcrossMigration) {
  lbm::TwoFluidLbm sim(small_config());
  for (int s = 0; s < 10; ++s) sim.step();
  const double mass = sim.mass_a() + sim.mass_b();
  auto restored = lbm::restore(lbm::checkpoint(sim));
  ASSERT_TRUE(restored.is_ok());
  EXPECT_DOUBLE_EQ(restored.value().mass_a() + restored.value().mass_b(),
                   mass);
}

// --------------------------------------------------- PEPC diagnostics ----

TEST(Diagnostics, ChargeDepositionConservesTotalCharge) {
  pepc::DiagnosticMesh mesh;
  mesh.nx = mesh.ny = mesh.nz = 12;
  mesh.lo = {-2, -2, -2};
  mesh.hi = {2, 2, 2};
  common::Rng rng{3};
  std::vector<pepc::Particle> particles(200);
  double total = 0.0;
  for (std::size_t i = 0; i < particles.size(); ++i) {
    auto& p = particles[i];
    // Keep well inside the mesh so no weight leaks off the boundary.
    p.pos[0] = rng.uniform(-1.2, 1.2);
    p.pos[1] = rng.uniform(-1.2, 1.2);
    p.pos[2] = rng.uniform(-1.2, 1.2);
    p.charge = (i % 3 == 0) ? 2.0 : -1.0;
    total += p.charge;
  }
  const auto rho = pepc::charge_density(mesh, particles);
  const auto d = mesh.spacing();
  double deposited = 0.0;
  for (float v : rho) deposited += v * d.x * d.y * d.z;
  // The field stores float32, so conservation holds to single precision.
  EXPECT_NEAR(deposited, total, 1e-4 * particles.size());
}

TEST(Diagnostics, PointChargeLandsInItsCell) {
  pepc::DiagnosticMesh mesh;
  mesh.nx = mesh.ny = mesh.nz = 8;
  mesh.lo = {0, 0, 0};
  mesh.hi = {8, 8, 8};
  std::vector<pepc::Particle> particles(1);
  particles[0].pos[0] = 3.5;  // exactly at cell (3,3,3)'s center
  particles[0].pos[1] = 3.5;
  particles[0].pos[2] = 3.5;
  particles[0].charge = 5.0;
  const auto rho = pepc::charge_density(mesh, particles);
  const std::size_t idx = (3u * 8 + 3) * 8 + 3;
  EXPECT_NEAR(rho[idx], 5.0, 1e-6);  // unit cell volume
  double elsewhere = 0.0;
  for (std::size_t i = 0; i < rho.size(); ++i) {
    if (i != idx) elsewhere += std::abs(rho[i]);
  }
  EXPECT_NEAR(elsewhere, 0.0, 1e-6);
}

TEST(Diagnostics, ParticlesOutsideMeshAreDropped) {
  pepc::DiagnosticMesh mesh;
  mesh.nx = mesh.ny = mesh.nz = 4;
  mesh.lo = {0, 0, 0};
  mesh.hi = {4, 4, 4};
  std::vector<pepc::Particle> particles(1);
  particles[0].pos[0] = 100.0;
  particles[0].charge = 7.0;
  const auto rho = pepc::charge_density(mesh, particles);
  for (float v : rho) EXPECT_EQ(v, 0.0f);
}

TEST(Diagnostics, CurrentPointsAlongBeam) {
  pepc::DiagnosticMesh mesh;
  mesh.nx = mesh.ny = mesh.nz = 8;
  mesh.lo = {-2, -2, -2};
  mesh.hi = {2, 2, 2};
  std::vector<pepc::Particle> beam(50);
  common::Rng rng{9};
  for (auto& p : beam) {
    p.pos[0] = rng.uniform(-1, 1);
    p.pos[1] = rng.uniform(-0.2, 0.2);
    p.pos[2] = rng.uniform(-0.2, 0.2);
    p.charge = -1.0;
    p.vel[0] = 2.0;  // beam along +x
  }
  const auto j = pepc::current_density(mesh, beam);
  double jx_sum = 0, jy_sum = 0, jz_sum = 0;
  for (std::size_t i = 0; i < j.jx.size(); ++i) {
    jx_sum += j.jx[i];
    jy_sum += std::abs(j.jy[i]);
    jz_sum += std::abs(j.jz[i]);
  }
  EXPECT_LT(jx_sum, 0.0);  // negative charge moving +x => negative jx
  EXPECT_NEAR(jy_sum, 0.0, 1e-6);
  EXPECT_NEAR(jz_sum, 0.0, 1e-6);
}

TEST(Diagnostics, FieldMagnitudeDecaysFromPointCharge) {
  std::vector<pepc::Particle> particles(1);
  particles[0].charge = 1.0;  // at the origin
  pepc::Octree tree;
  tree.build(particles);
  pepc::DiagnosticMesh mesh;
  mesh.nx = mesh.ny = mesh.nz = 9;
  mesh.lo = {-3, -3, -3};
  mesh.hi = {3, 3, 3};
  const auto field = pepc::electric_field_magnitude(mesh, tree);
  // |E| at a cell near the charge must exceed |E| at a far corner.
  const auto at = [&](int x, int y, int z) {
    return field[(static_cast<std::size_t>(z) * 9 + y) * 9 + x];
  };
  EXPECT_GT(at(4, 4, 3), at(0, 0, 0));
  EXPECT_GT(at(4, 4, 3), at(8, 8, 8));
  for (float v : field) EXPECT_GE(v, 0.0f);
}

TEST(Diagnostics, BeamScenarioShowsChargeSeparation) {
  // Integration with the simulation: after a beam strikes the target, the
  // diagnostic mesh shows net negative charge along the beam axis.
  pepc::PepcConfig config;
  config.target_pairs = 200;
  config.processors = 1;
  pepc::PepcSimulation sim(config);
  sim.beam().direction = {1, 0, 0};
  sim.beam().charge = -1.0;
  sim.beam().pulse_size = 100;
  sim.emit_beam();
  pepc::DiagnosticMesh mesh;
  mesh.nx = mesh.ny = mesh.nz = 10;
  mesh.lo = {-4, -2, -2};
  mesh.hi = {2, 2, 2};
  const auto rho = pepc::charge_density(mesh, sim.particles());
  double net = 0.0;
  const auto d = mesh.spacing();
  for (float v : rho) net += v * d.x * d.y * d.z;
  EXPECT_LT(net, -50.0);  // ~100 beam electrons inside the mesh
}

}  // namespace
}  // namespace cs
