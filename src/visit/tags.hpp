// Reserved protocol tags and control-message grammar of the steering
// protocol. Application tags must stay below kControlTagBase.
#pragma once

#include <cstdint>

namespace cs::visit {

/// Application data/request tags live in [0, kControlTagBase).
constexpr std::uint32_t kControlTagBase = 0xffff0000u;

/// Connection handshake: body "HELLO <protocol-version> <password>".
constexpr std::uint32_t kTagHello = kControlTagBase + 1;
/// Handshake reply: body "OK <role>" or "DENY <reason>".
constexpr std::uint32_t kTagHelloAck = kControlTagBase + 2;
/// Orderly shutdown notice (either direction), empty body.
constexpr std::uint32_t kTagBye = kControlTagBase + 3;
/// Struct schema announcement: body "<data-tag> <serialized StructDesc>".
constexpr std::uint32_t kTagSchema = kControlTagBase + 4;
/// Viewer asks the multiplexer for the master role, body empty.
constexpr std::uint32_t kTagTakeMaster = kControlTagBase + 5;
/// Multiplexer informs a viewer of its role: body "master" or "viewer".
constexpr std::uint32_t kTagRole = kControlTagBase + 6;
/// Collaboration control data (view point, tool parameters): body is
/// application-defined text, relayed by the ControlServer.
constexpr std::uint32_t kTagControlData = kControlTagBase + 7;
/// Heartbeat: proxies use it to flush polling cycles, and a host with
/// liveness enabled pings silent peers with it. Receivers echo it back
/// (any inbound frame counts as the pong); it never surfaces as an event.
constexpr std::uint32_t kTagPing = kControlTagBase + 8;

constexpr const char* kProtocolVersion = "1";

constexpr bool is_control_tag(std::uint32_t tag) noexcept {
  return tag >= kControlTagBase;
}

}  // namespace cs::visit
