#include "covise/crb.hpp"

#include "common/strings.hpp"
#include "wire/message.hpp"

namespace cs::covise {

using common::Bytes;
using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {
constexpr std::uint32_t kTagGet = 0xc0b1;
constexpr std::uint32_t kTagObject = 0xc0b2;
constexpr std::uint32_t kTagMiss = 0xc0b3;
}  // namespace

Result<std::unique_ptr<RequestBroker>> RequestBroker::start(
    net::InProcNetwork& net, std::shared_ptr<SharedDataSpace> sds,
    const std::string& session, const net::LinkModel& link) {
  if (!sds) return Status{StatusCode::kInvalidArgument, "null SDS"};
  auto listener = net.listen("crb/" + session + "/" + sds->host());
  if (!listener.is_ok()) return listener.status();
  auto host = net::ConnectionHost::start(net::ConnectionHost::Options{});
  if (!host.is_ok()) return host.status();
  std::unique_ptr<RequestBroker> broker{new RequestBroker};
  broker->net_ = &net;
  broker->session_ = session;
  broker->link_ = link;
  broker->sds_ = std::move(sds);
  broker->listener_ = std::move(listener).value();
  broker->host_ = std::move(host).value();
  RequestBroker* self = broker.get();
  // Event-driven accept when the transport allows: registration with the
  // host is enqueue-only, so the handler is poller-safe.
  broker->accept_pump_ = std::make_unique<net::AcceptPump>(
      broker->host_->event_host(), *broker->listener_,
      [self](net::ConnectionPtr conn) { self->handle_conn(std::move(conn)); });
  return broker;
}

RequestBroker::~RequestBroker() { stop(); }

void RequestBroker::stop() {
  if (stopped_.exchange(true)) return;
  // Uniform teardown order: listener, accept pump, host, then the peer
  // cache (nothing can dial a new peer once stopped_ is set).
  if (listener_) listener_->close();
  if (accept_pump_) accept_pump_->stop();
  if (host_) host_->stop();
  std::scoped_lock lock(mutex_);
  for (auto& [host, conn] : peers_) conn->close();
  peers_.clear();
}

std::size_t RequestBroker::service_threads() const {
  return (accept_pump_ && !accept_pump_->event_driven() ? 1 : 0) +
         (host_ ? host_->thread_count() : 0);
}

void RequestBroker::handle_conn(net::ConnectionPtr conn) {
  if (stopped_.load()) {  // raced with stop(): don't leak a live conn
    conn->close();
    return;
  }
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const bool hosted = host_->add(
      id, conn,
      [this](std::uint64_t cid, common::Bytes message) {
        on_message(cid, message);
      },
      {});
  if (!hosted) conn->close();  // raced with stop()
}

void RequestBroker::on_message(std::uint64_t id, const common::Bytes& message) {
  auto m = wire::Message::decode(message);
  if (!m.is_ok() || m.value().header.tag != kTagGet) return;
  auto name = wire::extract_string(m.value());
  if (!name.is_ok()) return;
  auto object = sds_->get(name.value());
  wire::Message reply;
  if (object.is_ok()) {
    const Bytes encoded = object.value()->encode();
    reply = wire::make_data_message(kTagObject, encoded.data(), encoded.size());
    ctr_objects_served_.add();
    ctr_bytes_sent_.add(encoded.size());
  } else {
    reply = wire::make_control_message(kTagMiss, name.value());
  }
  // Replies are control traffic (lossless-or-dead): a requester that stops
  // draining them is disconnected, never silently starved.
  (void)host_->reply(id, reply.encode());
}

Result<net::ConnectionPtr> RequestBroker::peer_connection(
    const std::string& host, Deadline deadline) {
  std::scoped_lock lock(mutex_);
  auto it = peers_.find(host);
  if (it != peers_.end() && it->second->is_open()) return it->second;
  net::ConnectOptions options;
  options.link = link_;
  auto conn =
      net_->connect("crb/" + session_ + "/" + host, deadline, options);
  if (!conn.is_ok()) return conn.status();
  peers_[host] = conn.value();
  return std::move(conn).value();
}

Result<DataObjectPtr> RequestBroker::resolve(const std::string& object_name,
                                             Deadline deadline) {
  if (auto local = sds_->get(object_name); local.is_ok()) {
    ctr_local_hits_.add();
    return local;
  }
  // Owner host is the leading name component ("host/module/port/serial").
  const auto slash = object_name.find('/');
  if (slash == std::string::npos) {
    return Status{StatusCode::kNotFound,
                  "unresolvable object name: " + object_name};
  }
  const std::string host = object_name.substr(0, slash);
  auto conn = peer_connection(host, deadline);
  if (!conn.is_ok()) return conn.status();

  const auto request = wire::make_control_message(kTagGet, object_name);
  if (Status s = conn.value()->send(request.encode(), deadline); !s.is_ok()) {
    return s;
  }
  auto raw = conn.value()->recv(deadline);
  if (!raw.is_ok()) return raw.status();
  auto m = wire::Message::decode(raw.value());
  if (!m.is_ok()) return m.status();
  if (m.value().header.tag == kTagMiss) {
    return Status{StatusCode::kNotFound,
                  "remote host has no object " + object_name};
  }
  if (m.value().header.tag != kTagObject) {
    return Status{StatusCode::kProtocolError, "unexpected CRB reply"};
  }
  auto object = DataObject::decode(m.value().payload);
  if (!object.is_ok()) return object.status();
  auto ptr = std::make_shared<const DataObject>(std::move(object).value());
  ctr_objects_fetched_.add();
  ctr_bytes_received_.add(m.value().payload.size());
  (void)sds_->put(ptr);  // cache locally; name collision means already there
  return DataObjectPtr{ptr};
}

RequestBroker::Stats RequestBroker::stats() const {
  // Shim over the registry-backed counters (see crb.hpp).
  Stats out;
  out.objects_served = ctr_objects_served_.value();
  out.objects_fetched = ctr_objects_fetched_.value();
  out.bytes_sent = ctr_bytes_sent_.value();
  out.bytes_received = ctr_bytes_received_.value();
  out.local_hits = ctr_local_hits_.value();
  return out;
}

}  // namespace cs::covise
