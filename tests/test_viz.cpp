// Tests for the visualization substrate: camera projection, marching-
// tetrahedra isosurfaces, the software renderer, frame compression, and
// the remote-rendering (VizServer-model) pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <thread>

#include "common/rng.hpp"
#include "net/inproc.hpp"
#include "net/tcp.hpp"
#include "viz/camera.hpp"
#include "viz/compress.hpp"
#include "viz/isosurface.hpp"
#include "viz/remote.hpp"
#include "viz/render.hpp"

namespace cs::viz {
namespace {

using namespace std::chrono_literals;
using common::Deadline;
using common::StatusCode;
using common::Vec3;

// ---------------------------------------------------------------- camera --

TEST(Camera, CenterOfViewProjectsToImageCenter) {
  Camera cam;
  cam.look_at({0, 0, 5}, {0, 0, 0}, {0, 1, 0});
  const auto p = cam.project({0, 0, 0}, 200, 100);
  ASSERT_TRUE(p.visible);
  EXPECT_NEAR(p.x, 100.0, 1e-9);
  EXPECT_NEAR(p.y, 50.0, 1e-9);
  EXPECT_NEAR(p.depth, 5.0, 1e-9);
}

TEST(Camera, PointBehindCameraInvisible) {
  Camera cam;
  cam.look_at({0, 0, 5}, {0, 0, 0}, {0, 1, 0});
  EXPECT_FALSE(cam.project({0, 0, 10}, 100, 100).visible);
}

TEST(Camera, UpIsUp) {
  Camera cam;
  cam.look_at({0, 0, 5}, {0, 0, 0}, {0, 1, 0});
  const auto above = cam.project({0, 1, 0}, 100, 100);
  const auto below = cam.project({0, -1, 0}, 100, 100);
  EXPECT_LT(above.y, below.y);  // screen y grows downward
}

TEST(Camera, SerializeParseRoundTrip) {
  Camera cam;
  cam.look_at({1.5, -2, 3}, {0.25, 0, -1}, {0, 1, 0});
  cam.set_fov_degrees(40);
  auto parsed = Camera::parse(cam.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value(), cam);
  EXPECT_FALSE(Camera::parse("not a camera").is_ok());
}

TEST(Camera, OrbitKeepsDistance) {
  Camera cam;
  cam.look_at({3, 0, 0}, {0, 0, 0}, {0, 1, 0});
  cam.orbit(0.7, 0.3);
  EXPECT_NEAR(norm(cam.eye() - cam.target()), 3.0, 1e-9);
}

// ------------------------------------------------------------ isosurface --

/// Samples a sphere SDF-ish field: value = R - |x - c| (positive inside).
std::vector<float> sphere_field(int n, double radius, Vec3 center) {
  std::vector<float> values(static_cast<std::size_t>(n) * n * n);
  for (int z = 0; z < n; ++z) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const Vec3 p{static_cast<double>(x), static_cast<double>(y),
                     static_cast<double>(z)};
        values[(static_cast<std::size_t>(z) * n + y) * n + x] =
            static_cast<float>(radius - norm(p - center));
      }
    }
  }
  return values;
}

TEST(Isosurface, SphereAreaApproximatelyCorrect) {
  const int n = 24;
  const double radius = 8.0;
  const Vec3 center{11.5, 11.5, 11.5};
  const auto values = sphere_field(n, radius, center);
  ScalarField field{n, n, n, values, {0, 0, 0}, 1.0};
  const TriangleMesh mesh = extract_isosurface(field, 0.0f);
  ASSERT_GT(mesh.triangle_count(), 100u);
  const double expected = 4.0 * std::numbers::pi * radius * radius;
  EXPECT_NEAR(mesh.area(), expected, expected * 0.05);
}

TEST(Isosurface, VerticesLieOnTheIsosurface) {
  const int n = 16;
  const double radius = 5.0;
  const Vec3 center{7.5, 7.5, 7.5};
  const auto values = sphere_field(n, radius, center);
  ScalarField field{n, n, n, values, {0, 0, 0}, 1.0};
  const TriangleMesh mesh = extract_isosurface(field, 0.0f);
  for (const auto& v : mesh.vertices) {
    // Linear interpolation on a radial field: within a cell diagonal.
    EXPECT_NEAR(norm(v - center), radius, 0.2);
  }
}

TEST(Isosurface, EmptyWhenLevelOutsideRange) {
  const int n = 8;
  const auto values = sphere_field(n, 3.0, {3.5, 3.5, 3.5});
  ScalarField field{n, n, n, values, {0, 0, 0}, 1.0};
  EXPECT_EQ(extract_isosurface(field, 1000.0f).triangle_count(), 0u);
  EXPECT_EQ(extract_isosurface(field, -1000.0f).triangle_count(), 0u);
}

TEST(Isosurface, DegenerateFieldProducesNothing) {
  std::vector<float> values(8, 1.0f);
  ScalarField field{2, 2, 2, values, {0, 0, 0}, 1.0};
  EXPECT_EQ(extract_isosurface(field, 0.5f).triangle_count(), 0u);
  ScalarField flat{1, 1, 1, std::span<const float>{values.data(), 1}, {0, 0, 0}, 1.0};
  EXPECT_EQ(extract_isosurface(flat, 0.5f).triangle_count(), 0u);
}

TEST(Isosurface, RespectsOriginAndSpacing) {
  const int n = 12;
  const auto values = sphere_field(n, 4.0, {5.5, 5.5, 5.5});
  ScalarField field{n, n, n, values, {10, 20, 30}, 0.5};
  const TriangleMesh mesh = extract_isosurface(field, 0.0f);
  ASSERT_GT(mesh.vertices.size(), 0u);
  for (const auto& v : mesh.vertices) {
    EXPECT_GE(v.x, 10.0);
    EXPECT_LE(v.x, 10.0 + n * 0.5);
    EXPECT_GE(v.y, 20.0);
  }
}

// ---------------------------------------------------------------- render --

TEST(Render, MeshLeavesPixels) {
  Renderer r(120, 90);
  r.clear();
  TriangleMesh mesh;
  mesh.vertices = {{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}};
  mesh.triangles = {{0, 1, 2}};
  Camera cam;
  cam.look_at({0, 0, 4}, {0, 0, 0}, {0, 1, 0});
  r.draw_mesh(mesh, cam, {255, 0, 0});
  int red_pixels = 0;
  for (const auto& p : r.frame().pixels()) {
    if (p.r > 40 && p.g == 0) ++red_pixels;
  }
  EXPECT_GT(red_pixels, 200);
}

TEST(Render, DepthBufferOccludes) {
  Renderer r(60, 60);
  r.clear();
  Camera cam;
  cam.look_at({0, 0, 5}, {0, 0, 0}, {0, 1, 0});
  TriangleMesh far_mesh, near_mesh;
  far_mesh.vertices = {{-2, -2, -1}, {2, -2, -1}, {0, 2, -1}};
  far_mesh.triangles = {{0, 1, 2}};
  near_mesh.vertices = {{-2, -2, 1}, {2, -2, 1}, {0, 2, 1}};
  near_mesh.triangles = {{0, 1, 2}};
  r.draw_mesh(far_mesh, cam, {0, 255, 0});
  r.draw_mesh(near_mesh, cam, {255, 0, 0});  // nearer: must win
  const Color center = r.frame().at(30, 30);
  EXPECT_GT(center.r, 0);
  EXPECT_EQ(center.g, 0);
}

TEST(Render, GlyphStylesDiffer) {
  Camera cam;
  cam.look_at({0, 0, 5}, {0, 0, 0}, {0, 1, 0});
  std::vector<ParticleSprite> sprites{
      {{0, 0, 0}, {5, 0, 0}, {255, 255, 0}}};
  int counts[3] = {0, 0, 0};
  int i = 0;
  for (GlyphStyle style :
       {GlyphStyle::kPoint, GlyphStyle::kDiamond, GlyphStyle::kVector}) {
    Renderer r(80, 80);
    r.clear({0, 0, 0});
    r.draw_particles(sprites, cam, style, 4);
    for (const auto& p : r.frame().pixels()) {
      if (p.r > 0) ++counts[i];
    }
    ++i;
  }
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[1], counts[0]);  // diamond bigger than point
  EXPECT_GT(counts[2], 1);          // vector adds a trail
}

TEST(Render, BoxWireframeVisible) {
  Renderer r(100, 100);
  r.clear({0, 0, 0});
  Camera cam;
  cam.look_at({4, 3, 5}, {0, 0, 0}, {0, 1, 0});
  r.draw_box({-1, -1, -1}, {1, 1, 1}, cam, {0, 255, 255});
  int lit = 0;
  for (const auto& p : r.frame().pixels()) {
    if (p.g > 0) ++lit;
  }
  EXPECT_GT(lit, 50);
}

// -------------------------------------------------------------- compress --

Image noise_image(int w, int h, std::uint64_t seed) {
  Image img(w, h);
  common::Rng rng{seed};
  for (auto& p : img.pixels()) {
    p = Color{static_cast<std::uint8_t>(rng.next_below(256)),
              static_cast<std::uint8_t>(rng.next_below(256)),
              static_cast<std::uint8_t>(rng.next_below(256))};
  }
  return img;
}

TEST(Compress, KeyFrameRoundTrip) {
  const Image img = noise_image(37, 23, 1);
  auto decoded = decompress_frame(compress_frame(img));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), img);
}

TEST(Compress, FlatFrameCompressesWell) {
  const Image img(320, 240, {10, 20, 30});
  const auto compressed = compress_frame(img);
  EXPECT_LT(compressed.size(), img.byte_size() / 20);
}

TEST(Compress, DeltaOfIdenticalFramesIsTiny) {
  const Image img = noise_image(100, 80, 2);
  const auto delta = compress_frame_delta(img, img);
  EXPECT_LT(delta.size(), img.byte_size() / 50);
  auto decoded = decompress_frame_delta(delta, img);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), img);
}

TEST(Compress, DeltaRoundTripWithSmallChange) {
  Image base = noise_image(64, 64, 3);
  Image next = base;
  next.at(10, 10) = Color{1, 2, 3};
  next.at(40, 50) = Color{4, 5, 6};
  const auto delta = compress_frame_delta(next, base);
  auto decoded = decompress_frame_delta(delta, base);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), next);
  EXPECT_LT(delta.size(), compress_frame(next).size());
}

TEST(Compress, MismatchedBaseFallsBackToKeyFrame) {
  const Image img = noise_image(32, 32, 4);
  const Image wrong_size(16, 16);
  const auto encoded = compress_frame_delta(img, wrong_size);
  // Encoder produced a key frame, so decoding needs no base.
  auto decoded = decompress_frame(encoded);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), img);
}

TEST(Compress, RejectsGarbage) {
  EXPECT_FALSE(decompress_frame(common::Bytes{1, 2, 3}).is_ok());
  common::Bytes header{'K', 0, 0, 0, 8, 0, 0, 0, 8, 3};  // odd RLE payload
  EXPECT_FALSE(decompress_frame(header).is_ok());
}

TEST(Compress, DeltaEncoderKeysOffCommittedStateOnly) {
  // The baseline advances only on commit() — the delivered-frame contract.
  DeltaEncoder enc;
  const auto f1 = std::make_shared<const Image>(noise_image(48, 32, 10));
  const auto f2 = std::make_shared<const Image>(noise_image(48, 32, 11));
  const auto f3 = std::make_shared<const Image>(noise_image(48, 32, 12));

  // No baseline: a self-contained key frame.
  EXPECT_FALSE(enc.has_baseline());
  auto k1 = decompress_frame(enc.encode(f1));
  ASSERT_TRUE(k1.is_ok());
  EXPECT_EQ(k1.value(), *f1);

  // f1 was never delivered: after reset() the next encode is again a key
  // frame, not a delta against a frame the consumer does not have.
  enc.reset();
  auto k2 = decompress_frame(enc.encode(f2));
  ASSERT_TRUE(k2.is_ok());
  EXPECT_EQ(k2.value(), *f2);

  // f2 delivered: the next encode is a delta that decodes against f2.
  enc.commit();
  EXPECT_TRUE(enc.has_baseline());
  const auto d3 = enc.encode(f3);
  auto r3 = decompress_frame_delta(d3, *f2);
  ASSERT_TRUE(r3.is_ok());
  EXPECT_EQ(r3.value(), *f3);
  // A delta is not self-contained: decoding without the base must fail.
  EXPECT_FALSE(decompress_frame(d3).is_ok());

  // f3's send failed (no commit): the following encode is still keyed off
  // f2, which is the last frame the consumer received.
  const auto f4 = std::make_shared<const Image>(noise_image(48, 32, 13));
  auto r4 = decompress_frame_delta(enc.encode(f4), *f2);
  ASSERT_TRUE(r4.is_ok());
  EXPECT_EQ(r4.value(), *f4);

  // stage() advances the pending baseline without encoding (the caller
  // shipped bytes encoded elsewhere, e.g. a shared broadcast delta).
  enc.commit();  // f4 delivered
  const auto f5 = std::make_shared<const Image>(noise_image(48, 32, 14));
  enc.stage(f5);
  enc.commit();  // f5 delivered via the shared bytes
  auto r6 = decompress_frame_delta(
      enc.encode(std::make_shared<const Image>(noise_image(48, 32, 15))),
      *f5);
  ASSERT_TRUE(r6.is_ok());
}

TEST(Compress, DeltaEncoderEmitsKeyFrameOnResize) {
  DeltaEncoder enc;
  const auto small = std::make_shared<const Image>(noise_image(16, 16, 1));
  const auto big = std::make_shared<const Image>(noise_image(32, 32, 2));
  (void)enc.encode(small);
  enc.commit();
  // Dimension change: the encoder falls back to a key frame.
  auto decoded = decompress_frame(enc.encode(big));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), *big);
}

// ------------------------------------------------------- remote rendering --

TEST(Remote, ViewEventProducesFrame) {
  net::InProcNetwork net;
  auto scene = std::make_shared<SceneStore>();
  TriangleMesh mesh;
  mesh.vertices = {{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}};
  mesh.triangles = {{0, 1, 2}};
  scene->set_mesh(mesh, {200, 100, 50});

  auto server = RemoteRenderServer::start(net, scene, {"vizserver:1", 160, 120, 2ms});
  ASSERT_TRUE(server.is_ok());
  auto client = RemoteRenderClient::connect(net, "vizserver:1", Deadline::after(2s));
  ASSERT_TRUE(client.is_ok());

  Camera cam;
  cam.look_at({0, 0, 4}, {0, 0, 0}, {0, 1, 0});
  ASSERT_TRUE(client.value().set_view(cam, Deadline::after(1s)).is_ok());
  auto frame = client.value().await_frame(Deadline::after(2s));
  ASSERT_TRUE(frame.is_ok());
  EXPECT_EQ(frame.value().width(), 160);
  int lit = 0;
  for (const auto& p : frame.value().pixels()) {
    if (p.r > 40) ++lit;
  }
  EXPECT_GT(lit, 100) << "the triangle should be visible in the shipped frame";
}

TEST(Remote, SharedCameraIsCollaborative) {
  // Participant A changes the view; participant B receives an updated
  // frame without doing anything — VizServer's collaborative session.
  net::InProcNetwork net;
  auto scene = std::make_shared<SceneStore>();
  TriangleMesh mesh;
  mesh.vertices = {{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}};
  mesh.triangles = {{0, 1, 2}};
  scene->set_mesh(mesh, {200, 100, 50});
  auto server = RemoteRenderServer::start(net, scene, {"vizserver:2", 80, 60, 2ms});
  ASSERT_TRUE(server.is_ok());

  auto a = RemoteRenderClient::connect(net, "vizserver:2", Deadline::after(2s));
  auto b = RemoteRenderClient::connect(net, "vizserver:2", Deadline::after(2s));
  ASSERT_TRUE(a.is_ok() && b.is_ok());

  Camera cam;
  cam.look_at({0, 0, 4}, {0, 0, 0}, {0, 1, 0});
  ASSERT_TRUE(a.value().set_view(cam, Deadline::after(1s)).is_ok());
  auto frame_a = a.value().await_frame(Deadline::after(2s));
  auto frame_b = b.value().await_frame(Deadline::after(2s));
  ASSERT_TRUE(frame_a.is_ok());
  ASSERT_TRUE(frame_b.is_ok());
  EXPECT_EQ(frame_a.value(), frame_b.value());  // same shared view
}

TEST(Remote, SceneUpdatePushesNewFrames) {
  net::InProcNetwork net;
  auto scene = std::make_shared<SceneStore>();
  auto server = RemoteRenderServer::start(net, scene, {"vizserver:3", 80, 60, 2ms});
  ASSERT_TRUE(server.is_ok());
  auto client = RemoteRenderClient::connect(net, "vizserver:3", Deadline::after(2s));
  ASSERT_TRUE(client.is_ok());
  Camera cam;
  cam.look_at({0, 0, 4}, {0, 0, 0}, {0, 1, 0});
  ASSERT_TRUE(client.value().set_view(cam, Deadline::after(1s)).is_ok());
  auto first = client.value().await_frame(Deadline::after(2s));
  ASSERT_TRUE(first.is_ok());
  // Simulation-side update: new sample arrives in the scene.
  TriangleMesh mesh;
  mesh.vertices = {{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}};
  mesh.triangles = {{0, 1, 2}};
  scene->set_mesh(mesh, {250, 250, 250});
  // The queue may still hold a frame rendered before the update (the
  // connect-time camera bump renders the empty scene too, which looks
  // identical); drain until the meshed frame arrives or the deadline hits.
  const Deadline deadline = Deadline::after(2s);
  auto second = client.value().await_frame(deadline);
  ASSERT_TRUE(second.is_ok());
  while (second.value() == first.value()) {
    second = client.value().await_frame(deadline);
    ASSERT_TRUE(second.is_ok());
  }
  EXPECT_NE(second.value(), first.value());
}

TEST(Remote, GeometryChannelShipsScene) {
  net::InProcNetwork net;
  auto listener = net.listen("geo:1");
  auto client_conn = net.connect("geo:1", Deadline::after(2s));
  auto server_conn = listener.value()->accept(Deadline::after(2s));
  ASSERT_TRUE(client_conn.is_ok() && server_conn.is_ok());

  auto scene = std::make_shared<SceneStore>();
  TriangleMesh mesh;
  mesh.vertices = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  mesh.triangles = {{0, 1, 2}};
  scene->set_mesh(mesh, {1, 2, 3});
  scene->set_particles({{{1, 2, 3}, {0, 0, 1}, {9, 9, 9}}}, GlyphStyle::kDiamond);
  scene->set_boxes({{{0, 0, 0}, {1, 1, 1}}}, {7, 7, 7});

  auto sender = GeometryChannel::start_sender(server_conn.value(), scene, 1ms);
  SceneStore local;
  ASSERT_TRUE(GeometryChannel::receive_into(*client_conn.value(), local,
                                            Deadline::after(2s))
                  .is_ok());
  EXPECT_EQ(local.geometry_bytes(), scene->geometry_bytes());
  // Rendering both scenes yields identical images.
  Camera cam;
  cam.look_at({0.5, 0.5, 4}, {0.5, 0.5, 0}, {0, 1, 0});
  Renderer ra(64, 64), rb(64, 64);
  scene->render(ra, cam);
  local.render(rb, cam);
  EXPECT_EQ(ra.frame(), rb.frame());
  sender.request_stop();
  client_conn.value()->close();
  server_conn.value()->close();
}

TEST(Remote, SceneDecodeRejectsGarbage) {
  SceneStore scene;
  EXPECT_FALSE(scene.decode(common::Bytes{1, 2}).is_ok());
  common::Bytes huge{0xff, 0xff, 0xff, 0xff};  // 4 billion vertices
  EXPECT_FALSE(scene.decode(huge).is_ok());
}

TEST(Remote, StatsSurfacePipelineDepth) {
  net::InProcNetwork net;
  auto scene = std::make_shared<SceneStore>();
  TriangleMesh mesh;
  mesh.vertices = {{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}};
  mesh.triangles = {{0, 1, 2}};
  scene->set_mesh(mesh, {200, 100, 50});
  auto server =
      RemoteRenderServer::start(net, scene, {.address = "vizserver:stats",
                                             .width = 80,
                                             .height = 60,
                                             .frame_period = 2ms});
  ASSERT_TRUE(server.is_ok());
  auto a = RemoteRenderClient::connect(net, "vizserver:stats",
                                       Deadline::after(2s));
  auto b = RemoteRenderClient::connect(net, "vizserver:stats",
                                       Deadline::after(2s));
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  Camera cam;
  cam.look_at({0, 0, 4}, {0, 0, 0}, {0, 1, 0});
  ASSERT_TRUE(a.value().set_view(cam, Deadline::after(1s)).is_ok());
  ASSERT_TRUE(a.value().await_frame(Deadline::after(2s)).is_ok());
  ASSERT_TRUE(b.value().await_frame(Deadline::after(2s)).is_ok());
  // The view ack rides a lossless control frame back to its sender; drain
  // frames until it is observed (a pre-view frame may arrive first).
  const Deadline ack_deadline = Deadline::after(2s);
  while (a.value().last_view_ack() == 0) {
    ASSERT_TRUE(a.value().await_frame(ack_deadline).is_ok());
  }
  EXPECT_GE(a.value().last_view_ack(), 1u);

  // The delivery counters lag the client's receipt by a worker step; poll.
  const Deadline stats_deadline = Deadline::after(2s);
  auto stats = server.value()->stats();
  while ((stats.frames_sent < 2 || stats.fanout.subscribers < 2) &&
         !stats_deadline.has_expired()) {
    std::this_thread::sleep_for(1ms);
    stats = server.value()->stats();
  }
  EXPECT_GE(stats.frames_rendered, 1u);
  EXPECT_GE(stats.frames_sent, 2u);
  EXPECT_GT(stats.bytes_sent, 0u);
  EXPECT_EQ(stats.view_events, 1u);
  // Per-client queue depth is visible the way Multiplexer::stats().fanout
  // is: per-shard subscriber and queue counters that reconcile.
  EXPECT_EQ(stats.fanout.subscribers, 2u);
  EXPECT_GE(stats.fanout.shards.size(), 1u);
  EXPECT_GE(stats.fanout.data_enqueued,
            stats.fanout.data_delivered + stats.fanout.data_dropped);
  EXPECT_EQ(server.value()->client_count(), 2u);
  server.value()->stop();
}

TEST(Remote, DeltaChainSurvivesClientKillAndRevive) {
  // A participant that vanishes mid-stream and reconnects must be able to
  // decode every frame it receives: the reconnection is seeded with a
  // self-contained key frame, and later deltas chain from frames that were
  // actually delivered — never from frames lost to the disconnect.
  net::InProcNetwork net;
  auto scene = std::make_shared<SceneStore>();
  TriangleMesh mesh;
  mesh.vertices = {{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}};
  mesh.triangles = {{0, 1, 2}};
  scene->set_mesh(mesh, {200, 100, 50});
  auto server =
      RemoteRenderServer::start(net, scene, {.address = "vizserver:chain",
                                             .width = 80,
                                             .height = 60,
                                             .frame_period = 2ms});
  ASSERT_TRUE(server.is_ok());

  auto a = RemoteRenderClient::connect(net, "vizserver:chain",
                                       Deadline::after(2s));
  ASSERT_TRUE(a.is_ok());
  Camera cam;
  cam.look_at({0, 0, 4}, {0, 0, 0}, {0, 1, 0});
  ASSERT_TRUE(a.value().set_view(cam, Deadline::after(1s)).is_ok());
  ASSERT_TRUE(a.value().await_frame(Deadline::after(2s)).is_ok());

  // B joins mid-stream: its first frame is the seeded key frame of the
  // current shared view, decodable with no prior state.
  auto b = RemoteRenderClient::connect(net, "vizserver:chain",
                                       Deadline::after(2s));
  ASSERT_TRUE(b.is_ok());
  ASSERT_TRUE(b.value().await_frame(Deadline::after(2s)).is_ok());

  // B dies abruptly while the camera keeps moving (frames it will never
  // see are rendered and delivered to A meanwhile).
  b.value().disconnect();
  for (int i = 0; i < 5; ++i) {
    cam.orbit(0.2, 0.1);
    ASSERT_TRUE(a.value().set_view(cam, Deadline::after(1s)).is_ok());
    ASSERT_TRUE(a.value().await_frame(Deadline::after(2s)).is_ok());
  }

  // B revives as a fresh connection: seeded key frame again, then deltas
  // keyed off what the revived client actually received.
  auto b2 = RemoteRenderClient::connect(net, "vizserver:chain",
                                        Deadline::after(2s));
  ASSERT_TRUE(b2.is_ok());
  auto revived_first = b2.value().await_frame(Deadline::after(2s));
  ASSERT_TRUE(revived_first.is_ok());
  cam.orbit(-0.3, 0.05);
  ASSERT_TRUE(a.value().set_view(cam, Deadline::after(1s)).is_ok());
  auto a_after = a.value().await_frame(Deadline::after(2s));
  auto b_after = b2.value().await_frame(Deadline::after(2s));
  ASSERT_TRUE(a_after.is_ok());
  ASSERT_TRUE(b_after.is_ok());
  // Both converge on the same shared view: drain each until its stream
  // goes quiet (the camera is static now, so the last frame is final).
  const auto drain = [](RemoteRenderClient& client, Image current) {
    for (;;) {
      auto frame = client.await_frame(Deadline::after(500ms));
      if (!frame.is_ok()) return current;
      current = std::move(frame).value();
    }
  };
  const Image a_final = drain(a.value(), std::move(a_after).value());
  const Image b_final = drain(b2.value(), std::move(b_after).value());
  EXPECT_EQ(a_final, b_final);
  server.value()->stop();
}

TEST(Remote, ChangeWhileEmptyReachesLaterJoiner) {
  // A camera/scene change that arrives while no participant is connected
  // must not be swallowed: the next joiner has to see the *current* state,
  // not a stale seed of the pre-change image.
  net::InProcNetwork net;
  auto scene = std::make_shared<SceneStore>();
  TriangleMesh mesh;
  mesh.vertices = {{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}};
  mesh.triangles = {{0, 1, 2}};
  scene->set_mesh(mesh, {200, 100, 50});
  auto server =
      RemoteRenderServer::start(net, scene, {.address = "vizserver:empty",
                                             .width = 80,
                                             .height = 60,
                                             .frame_period = 2ms});
  ASSERT_TRUE(server.is_ok());

  auto a = RemoteRenderClient::connect(net, "vizserver:empty",
                                       Deadline::after(2s));
  ASSERT_TRUE(a.is_ok());
  Camera cam;
  cam.look_at({0, 0, 4}, {0, 0, 0}, {0, 1, 0});
  ASSERT_TRUE(a.value().set_view(cam, Deadline::after(1s)).is_ok());
  ASSERT_TRUE(a.value().await_frame(Deadline::after(2s)).is_ok());
  a.value().disconnect();
  const Deadline gone = Deadline::after(2s);
  while (server.value()->client_count() != 0 && !gone.has_expired()) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(server.value()->client_count(), 0u);

  // The scene changes with nobody connected: repaint the mesh white.
  scene->set_mesh(mesh, {250, 250, 250});

  auto b = RemoteRenderClient::connect(net, "vizserver:empty",
                                       Deadline::after(2s));
  ASSERT_TRUE(b.is_ok());
  // B must receive a frame showing the white mesh, possibly after the
  // seeded pre-change frame. Lambert shading scales the color but keeps
  // its ratios: the white mesh lights up grey-balanced pixels (r=g=b),
  // which the old {200,100,50} mesh (4:2:1 ratios) never produces.
  const Deadline deadline = Deadline::after(3s);
  bool saw_white = false;
  while (!saw_white && !deadline.has_expired()) {
    auto frame = b.value().await_frame(deadline);
    ASSERT_TRUE(frame.is_ok());
    for (const auto& p : frame.value().pixels()) {
      if (p.r > 60 && p.r == p.g && p.g == p.b) {
        saw_white = true;
        break;
      }
    }
  }
  EXPECT_TRUE(saw_white) << "the post-change scene never reached the joiner";
  server.value()->stop();
}

// ------------------------------------------- slow-client isolation, both
// transports: one wedged participant must never delay its siblings' frames
// (mirrors test_fanout's slow-subscriber latency assertion, end to end).

struct RemoteNetCase {
  const char* name;
  std::unique_ptr<net::Network> (*make)();
  /// Listen address ("0" lets TCP pick a port; resolved via address()).
  const char* listen_address;
};

std::unique_ptr<net::Network> make_inproc_net() {
  return std::make_unique<net::InProcNetwork>();
}
std::unique_ptr<net::Network> make_tcp_net() {
  return std::make_unique<net::TcpNetwork>();
}

class RemoteTransport : public ::testing::TestWithParam<RemoteNetCase> {};

TEST_P(RemoteTransport, WedgedClientDoesNotDelaySiblingFrames) {
  auto net = GetParam().make();
  auto scene = std::make_shared<SceneStore>();
  TriangleMesh mesh;
  mesh.vertices = {{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}};
  mesh.triangles = {{0, 1, 2}};
  scene->set_mesh(mesh, {200, 100, 50});
  RemoteRenderServer::Options options;
  options.address = GetParam().listen_address;
  options.width = 80;
  options.height = 60;
  options.frame_period = 2ms;
  // Two pipeline shards and ids chosen by admission order (1, 2) land the
  // wedged client and the healthy client on distinct shards.
  options.pipeline_shards = 2;
  options.send_deadline = 100ms;
  auto server = RemoteRenderServer::start(*net, scene, options);
  ASSERT_TRUE(server.is_ok());
  const std::string address = server.value()->address();

  // First in: the wedged client (id 1). On inproc its receive window is
  // tiny so the wedge bites after one frame; on TCP the socket buffers
  // absorb more before sends start timing out, but the path is identical.
  RemoteRenderClient wedged = [&] {
    if (auto* inproc = dynamic_cast<net::InProcNetwork*>(net.get())) {
      net::ConnectOptions tiny;
      tiny.recv_capacity_bytes = 2048;
      return RemoteRenderClient::adopt(
          inproc->connect(address, Deadline::after(2s), tiny).value());
    }
    return RemoteRenderClient::connect(*net, address, Deadline::after(2s))
        .value();
  }();
  auto healthy = RemoteRenderClient::connect(*net, address,
                                             Deadline::after(2s));
  ASSERT_TRUE(healthy.is_ok());

  Camera cam;
  cam.look_at({0, 0, 4}, {0, 0, 0}, {0, 1, 0});
  // The wedged client never recv()s. The healthy one keeps a view->frame
  // loop going; with the old inline-send render loop each pass stalled on
  // the wedged connection's send deadline, so the healthy client's round
  // trips degraded to the send timeout. Now they must stay prompt.
  common::Duration worst{};
  for (int round = 0; round < 15; ++round) {
    cam.orbit(0.15, 0.05);
    const auto t0 = common::Clock::now();
    ASSERT_TRUE(healthy.value().set_view(cam, Deadline::after(1s)).is_ok());
    auto frame = healthy.value().await_frame(Deadline::after(5s));
    ASSERT_TRUE(frame.is_ok()) << "round " << round;
    worst = std::max(worst, common::Clock::now() - t0);
  }
  // Generous bound for sanitizer/valgrind-class slowdowns: the old code's
  // per-pass stall was >= the send deadline once the wedge bit, every
  // round. TSan on 1 core renders slowly, but nowhere near that.
  EXPECT_LT(worst, 4s);
  const auto stats = server.value()->stats();
  EXPECT_GE(stats.frames_rendered, 15u);
  // The per-service queue_drops roll-up (registry bridge) must agree with
  // the pipeline's aggregate — the per-shard breakdown was the only place
  // drops were visible before the registry existed.
  {
    // The render loop is still publishing (and the wedged queue still
    // evicting) while we read, so sandwich the snapshot between two
    // stats() reads instead of expecting exact equality.
    const auto snap = server.value()->metrics().snapshot();
    const auto after = server.value()->stats();
    std::uint64_t queue_drops = 0;
    bool found = false;
    for (const auto& counter : snap.counters) {
      if (counter.name == "queue_drops") {
        queue_drops = counter.value;
        found = true;
      }
    }
    EXPECT_TRUE(found);
    EXPECT_GE(queue_drops, stats.fanout.data_dropped);
    EXPECT_LE(queue_drops, after.fanout.data_dropped);
    // With a 2-frame queue and a wedged inproc client whose sends burn the
    // full deadline, eviction at publish time is certain. (TCP socket
    // buffers can absorb the whole run, so only inproc asserts drops.)
    if (dynamic_cast<net::InProcNetwork*>(net.get()) != nullptr) {
      EXPECT_GT(queue_drops, 0u);
    }
  }
  wedged.disconnect();
  server.value()->stop();
}

INSTANTIATE_TEST_SUITE_P(
    Transports, RemoteTransport,
    ::testing::Values(RemoteNetCase{"InProc", &make_inproc_net, "viz:iso"},
                      RemoteNetCase{"Tcp", &make_tcp_net, "0"}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace cs::viz
