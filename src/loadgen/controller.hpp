// The controller half of the distributed load driver.
//
// One Controller accepts N WorkerAgents on a control address, hands each a
// WorkloadSpec, barriers the start so every worker begins offering load at
// the same instant, then collects the per-worker histogram shards and op
// counters and folds them into one Report with per-worker breakdowns in
// service_metrics — the ctsTraffic controller/worker orchestration on this
// stack's own transport layer.
//
// The session is phased, and every phase is deadline-bounded — a worker
// that disconnects, sends garbage, or never reports costs the run its
// shard, never a hang:
//
//   await_workers()  accept + JOIN until the fleet is complete
//   assign(specs)    ship one spec per worker, await READY (prepare done)
//   start_run()      broadcast START (the barrier release)
//   collect()        await RESULT shards, scrape worker /metricsz, merge
//
// Workers lost along the way leave the merged Report flagged
// kUnavailable (Report::completeness) with the surviving shards merged.
// During collect() a worker is degraded, not dead: a control connection
// that drops mid-RESULT parks its slot, and a re-JOIN under the same
// worker name (the worker side redials with backoff) readmits it until the
// collect deadline. Only a worker that never comes back costs the run its
// shard.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "loadgen/control.hpp"
#include "loadgen/report.hpp"
#include "net/accept_pump.hpp"
#include "net/transport.hpp"

namespace cs::loadgen {

class Controller {
 public:
  struct Options {
    /// Control listen address ("0" = kernel-assigned TCP port; query
    /// address() for the result).
    std::string listen_address = "0";
    /// Fleet size: await_workers() blocks until this many joined.
    std::size_t workers = 1;
    /// Bound on await_workers(): kUnavailable when the fleet is still
    /// incomplete at this point.
    common::Duration join_timeout = std::chrono::seconds(30);
    /// Bound on one worker finishing prepare() during assign() — viewer
    /// fleets open hundreds of connections before READY.
    common::Duration ready_timeout = std::chrono::seconds(30);
    /// Per control-frame send/recv bound for the short exchanges.
    common::Duration io_timeout = std::chrono::seconds(5);
    /// Per-worker /metricsz scrape bound during collect().
    common::Duration scrape_timeout = std::chrono::seconds(2);
  };

  /// Binds the control listener and starts accepting. Workers may connect
  /// from this point on; await_workers() consumes them.
  static common::Result<std::unique_ptr<Controller>> start(
      net::Network& net, const Options& options);

  ~Controller();
  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Stops accepting and closes every control connection. Idempotent;
  /// called by the destructor.
  void stop();

  /// Resolved control address (kernel-assigned ports made concrete).
  const std::string& address() const noexcept { return address_; }

  /// Blocks until `workers` workers completed the JOIN handshake, or
  /// join_timeout — then kUnavailable with however many made it. A
  /// connection whose first frame is not a valid JOIN is closed and does
  /// not count toward the fleet.
  common::Status await_workers();

  /// Workers that joined (and have not been marked lost).
  std::size_t live_workers() const;

  /// Ships specs[i] to worker i and waits for every READY. A worker that
  /// fails the exchange is marked lost; returns kUnavailable when any was,
  /// ok when the whole fleet is ready. specs.size() must equal the joined
  /// fleet size (kInvalidArgument otherwise).
  common::Status assign(const std::vector<WorkloadSpec>& specs);

  /// Broadcasts the START barrier release to every live worker. Returns
  /// immediately; kUnavailable when no worker is left to start.
  common::Status start_run();

  /// Collects RESULT shards from every live worker until `deadline`, then
  /// merges them (in worker order) into one Report: counters summed,
  /// histograms merged, one per_connection entry per worker, and per-worker
  /// breakdowns (worker<i>_ops, worker<i>_p99_us, ...) plus each worker's
  /// scraped /metricsz rows (worker<i>_<key>) in service_metrics. A worker
  /// whose connection drops mid-collect is degraded-not-dead: its slot
  /// waits for a re-JOIN under the same name until the deadline
  /// (workers_degraded / worker_rejoins rows count the churn). Each
  /// /metricsz scrape is bounded by its own scrape_timeout, in parallel —
  /// one dead worker endpoint cannot burn the siblings' scrape window
  /// (failures land in the scrape_failures row). Lost or late workers flag
  /// the report kUnavailable. Always returns by `deadline` plus the
  /// scrape/io slack — never hangs on a dead worker.
  Report collect(common::Deadline deadline);

 private:
  struct WorkerSlot {
    net::ConnectionPtr conn;
    std::string name;
    std::string metricsz_address;
    bool alive = false;
    bool reported = false;
    /// Dropped at least once during collect (degraded-not-dead window).
    bool degraded = false;
    /// Bumped on every readmission; a gatherer that saw its recv die waits
    /// for the generation to move before retrying on the fresh conn.
    std::uint64_t generation = 0;
    WireWorkerReport result;
  };

  Controller(net::Network& net, Options options);
  void on_conn(net::ConnectionPtr conn);
  /// Receives frames on `conn` until one decodes to `want`
  /// (deadline-bounded). Anything else on the control stream marks the
  /// worker lost.
  common::Result<common::Bytes> recv_frame(net::Connection& conn,
                                           ControlOp want,
                                           common::Deadline deadline);

  net::Network& net_;
  Options options_;
  std::string address_;
  net::ListenerPtr listener_;
  std::unique_ptr<net::AcceptPump> pump_;
  std::atomic<bool> stopped_{false};

  mutable std::mutex mutex_;
  std::condition_variable pending_cv_;
  /// Signals a degraded slot's generation moved (readmission landed).
  std::condition_variable rejoin_cv_;
  std::deque<net::ConnectionPtr> pending_;  ///< accepted, not yet joined
  std::vector<WorkerSlot> slots_;           ///< joined fleet, by index
};

}  // namespace cs::loadgen
