#include "viz/isosurface.hpp"

#include <array>

namespace cs::viz {

using common::Vec3;

namespace {

/// The six tetrahedra of a cube, as corner indices 0..7 where corner bits
/// are (x, y<<1, z<<2). This decomposition shares the 0-7 diagonal, which
/// makes adjacent cubes agree on shared faces (no cracks).
constexpr std::array<std::array<int, 4>, 6> kTets{{
    {0, 5, 1, 7},
    {0, 1, 3, 7},
    {0, 3, 2, 7},
    {0, 2, 6, 7},
    {0, 6, 4, 7},
    {0, 4, 5, 7},
}};

struct Corner {
  Vec3 pos;
  float value;
};

/// Linear interpolation of the isolevel crossing on an edge.
Vec3 edge_point(const Corner& a, const Corner& b, float iso) {
  const float da = iso - a.value;
  const float db = b.value - a.value;
  const double t = (db != 0.0f) ? static_cast<double>(da / db) : 0.5;
  return a.pos + t * (b.pos - a.pos);
}

void emit_tet(const std::array<Corner, 4>& tet, float iso,
              TriangleMesh& mesh) {
  int mask = 0;
  for (int i = 0; i < 4; ++i) {
    if (tet[static_cast<std::size_t>(i)].value >= iso) mask |= 1 << i;
  }
  if (mask == 0 || mask == 15) return;

  const auto add_triangle = [&](const Vec3& a, const Vec3& b, const Vec3& c) {
    const auto base = static_cast<std::uint32_t>(mesh.vertices.size());
    mesh.vertices.push_back(a);
    mesh.vertices.push_back(b);
    mesh.vertices.push_back(c);
    mesh.triangles.push_back(Triangle{base, base + 1, base + 2});
  };
  const auto ep = [&](int i, int j) {
    return edge_point(tet[static_cast<std::size_t>(i)],
                      tet[static_cast<std::size_t>(j)], iso);
  };

  // One corner inside (or outside): a single triangle cuts it off.
  // Two corners inside: a quad, emitted as two triangles.
  switch (mask) {
    case 1: case 14: add_triangle(ep(0, 1), ep(0, 2), ep(0, 3)); break;
    case 2: case 13: add_triangle(ep(1, 0), ep(1, 3), ep(1, 2)); break;
    case 4: case 11: add_triangle(ep(2, 0), ep(2, 1), ep(2, 3)); break;
    case 8: case 7:  add_triangle(ep(3, 0), ep(3, 2), ep(3, 1)); break;
    case 3: case 12: {
      const Vec3 a = ep(0, 2), b = ep(0, 3), c = ep(1, 3), d = ep(1, 2);
      add_triangle(a, b, c);
      add_triangle(a, c, d);
      break;
    }
    case 5: case 10: {
      const Vec3 a = ep(0, 1), b = ep(2, 1), c = ep(2, 3), d = ep(0, 3);
      add_triangle(a, b, c);
      add_triangle(a, c, d);
      break;
    }
    case 6: case 9: {
      const Vec3 a = ep(1, 0), b = ep(1, 3), c = ep(2, 3), d = ep(2, 0);
      add_triangle(a, b, c);
      add_triangle(a, c, d);
      break;
    }
    default: break;
  }
}

}  // namespace

TriangleMesh extract_isosurface(const ScalarField& field, float isolevel) {
  TriangleMesh mesh;
  if (field.nx < 2 || field.ny < 2 || field.nz < 2) return mesh;
  for (int z = 0; z + 1 < field.nz; ++z) {
    for (int y = 0; y + 1 < field.ny; ++y) {
      for (int x = 0; x + 1 < field.nx; ++x) {
        std::array<Corner, 8> cube;
        for (int c = 0; c < 8; ++c) {
          const int cx = x + (c & 1);
          const int cy = y + ((c >> 1) & 1);
          const int cz = z + ((c >> 2) & 1);
          cube[static_cast<std::size_t>(c)] =
              Corner{field.world(cx, cy, cz), field.at(cx, cy, cz)};
        }
        for (const auto& tet : kTets) {
          emit_tet({cube[static_cast<std::size_t>(tet[0])],
                    cube[static_cast<std::size_t>(tet[1])],
                    cube[static_cast<std::size_t>(tet[2])],
                    cube[static_cast<std::size_t>(tet[3])]},
                   isolevel, mesh);
        }
      }
    }
  }
  return mesh;
}

}  // namespace cs::viz
