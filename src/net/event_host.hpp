// Readiness-driven connection host: a small fixed pool of epoll loops owns
// every hosted socket in non-blocking mode, so connection count stops
// costing threads.
//
// Before this existed, every accepted connection owned a pump thread (and a
// fan-out queue drained by yet another worker), so thread count grew
// linearly with clients — the hard wall between the paper's demo scale and
// the ROADMAP's collaboratory scale. EventHost inverts the model:
//
//   * Ingress: each poller parks in epoll_wait over its connections'
//     native_handle()s and, on readability, advances the transport's
//     incremental frame decoder (Connection::try_recv) until it would
//     block, handing every complete message to the owner's callback.
//   * Egress: each hosted connection owns a bounded common::OutboundQueue
//     with the same overflow policies as the fan-out path (samples shed
//     oldest-first, control frames are lossless-or-dead). Publishing only
//     enqueues; the poller drains the queue through the vectored
//     Connection::try_send_many batch path when the socket is writable,
//     arming EPOLLOUT only while there is something to write.
//
// Threading and locking model (see docs/ARCHITECTURE.md for the prose
// version):
//
//   * Connections are partitioned over the pollers by id; exactly one
//     poller thread ever touches a given connection's ingress decoder or
//     drains its egress queue, so transport-level receive state needs no
//     extra synchronization here.
//   * Each poller has one mutex guarding its registration maps and all
//     egress queue state. It is never held across a syscall, a decode, or
//     a user callback.
//   * on_message / on_close / on_accept run on the poller thread. They may
//     call back into the host (send_to, publish, host, unhost — including
//     unhosting the connection that is currently in callback) but must not
//     block: a stalled callback stalls every connection on that poller.
//   * Handle-less transports (in-process) cannot be hosted: host() returns
//     false and the caller keeps its blocking pump — the readiness surface
//     is an optimization, the blocking API remains the portable contract.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/fanout.hpp"
#include "common/status.hpp"
#include "net/transport.hpp"

namespace cs::net {

/// Aggregate counters across all pollers. Egress rows mirror
/// common::FanoutStats accounting: "data" counts frames queued under
/// OverflowPolicy::kDropOldest, "control" frames under kDisconnect — the
/// policy is the traffic-class tag.
struct EventHostStats {
  std::uint64_t messages_in = 0;       ///< complete inbound frames decoded
  std::uint64_t accepts = 0;           ///< connections from watched listeners
  std::uint64_t wakeups = 0;           ///< epoll_wait returns
  std::uint64_t data_enqueued = 0;
  std::uint64_t data_delivered = 0;
  std::uint64_t data_dropped = 0;
  std::uint64_t control_enqueued = 0;
  std::uint64_t control_delivered = 0;
  std::uint64_t disconnects = 0;       ///< hosted connections torn down for cause
  std::uint64_t pings_sent = 0;        ///< heartbeat pings enqueued
  std::uint64_t idle_disconnects = 0;  ///< peers declared dead by the idle timer
  std::size_t hosted = 0;              ///< currently hosted connections
  std::size_t queued_frames = 0;       ///< outbound frames pending
  std::size_t queue_high_water = 0;    ///< deepest single-connection backlog
  std::size_t pollers = 0;             ///< poller thread count (constant)
  /// Time spent handling one epoll_wait's event batch (epoll_wait return →
  /// batch handled), per wakeup. The poller-loop latency: how long hosted
  /// connections wait behind their poller-mates.
  common::Histogram poll_latency;
  /// Frame-lifecycle stage latencies for frames delivered by the pollers'
  /// vectored-send path (see common::FrameStageStats).
  common::FrameStageStats stages;
};

/// Hosts many connections on a few epoll loops; see the file comment.
class EventHost {
 public:
  struct Options {
    /// Poller threads (epoll loops). One is right for a single core; scale
    /// towards one per core for multi-core hosts. At least 1 is enforced.
    std::size_t pollers = 1;
    /// Per-connection outbound queue bound, in frames (see
    /// visit::Multiplexer::Options::viewer_queue_capacity for the
    /// depth-vs-staleness tradeoff).
    std::size_t queue_capacity = 32;
    /// Liveness (zero disables, the default). When set, a hosted connection
    /// with no inbound traffic for `heartbeat_interval` is sent
    /// `ping_frame`, and one still silent past `heartbeat_interval +
    /// heartbeat_grace` is torn down through the normal on_close path with
    /// kTimeout — the only way to catch a peer that is stalled but keeps
    /// its socket open (one-way partition, wedged process). The pollers
    /// trade their infinite epoll_wait for a bounded tick to run the timer.
    common::Duration heartbeat_interval = common::Duration::zero();
    /// Slack past the interval before a silent peer is declared dead; the
    /// peer's pong (any inbound frame counts) must land within it.
    common::Duration heartbeat_grace = std::chrono::seconds(2);
    /// Encoded ping frame, enqueued as data-class traffic (a backed-up peer
    /// is not doomed for missing a ping — the silence detector handles it).
    /// Empty disables the ping but keeps the idle timer: a pure idle
    /// timeout for protocols whose peers talk on their own.
    common::Bytes ping_frame = {};
  };

  /// One complete inbound message. Runs on the poller thread; must not
  /// block (enqueue-only calls like publish()/send_to() are fine).
  using MessageHandler =
      std::function<void(std::uint64_t id, common::Bytes message)>;
  /// The connection was torn down for cause (peer closed, socket error,
  /// control-frame overflow). Not invoked for unhost()/stop(). Runs on the
  /// poller thread or, for overflow dooms, on the publishing thread —
  /// always outside host locks.
  using CloseHandler =
      std::function<void(std::uint64_t id, const common::Status& cause)>;
  /// A watched listener produced a connection. Runs on the poller thread;
  /// must not block (hand off anything slow — handshakes — elsewhere).
  using AcceptHandler = std::function<void(ConnectionPtr conn)>;

  /// Creates the epoll instances and starts the poller threads.
  static common::Result<std::unique_ptr<EventHost>> start(
      const Options& options);

  ~EventHost();
  EventHost(const EventHost&) = delete;
  EventHost& operator=(const EventHost&) = delete;

  /// Joins the pollers, drops every registration (pending outbound frames
  /// are discarded, like ShardedFanout::stop()), and closes hosted
  /// connections. No on_close callbacks fire. Idempotent.
  void stop();

  /// Registers `conn` under caller-chosen `id` (ids must be unique across
  /// the host; the top bit is reserved). `replay` frames are seeded into
  /// the outbound queue atomically with registration — unconditionally,
  /// past the bound if need be — so the peer observes them strictly before
  /// any frame published afterwards. Returns false (and takes no ownership)
  /// when the transport has no native handle, the id is taken, or the host
  /// is stopped.
  bool host(std::uint64_t id, ConnectionPtr conn, MessageHandler on_message,
            CloseHandler on_close,
            std::vector<common::OutboundQueue::Item> replay = {});

  /// Deregisters and closes `id`, discarding its pending frames. Idempotent;
  /// does not invoke on_close. Safe from any thread, including from `id`'s
  /// own callbacks.
  void unhost(std::uint64_t id);

  /// Enqueues one frame for `id` under the item's overflow policy; never
  /// blocks on I/O. Items must carry pre-encoded bytes (`frame`): this host
  /// has no per-consumer encode step, so a source-payload item is shed
  /// (data) or dooms the connection (control, lossless-or-dead). Returns
  /// false when `id` is not hosted.
  bool send_to(std::uint64_t id, common::OutboundQueue::Item item);

  bool send_to(std::uint64_t id, common::FramePtr frame,
               common::OverflowPolicy policy) {
    return send_to(
        id, common::OutboundQueue::Item{std::move(frame), policy, nullptr});
  }

  /// Enqueues a copy of `item` to every hosted connection under its policy.
  void publish(const common::OutboundQueue::Item& item);

  void publish(const common::FramePtr& frame, common::OverflowPolicy policy) {
    publish(common::OutboundQueue::Item{frame, policy, nullptr});
  }

  /// publish() to everyone except `excluded_id` (relay traffic whose origin
  /// is itself hosted).
  void publish_except(std::uint64_t excluded_id,
                      const common::OutboundQueue::Item& item);

  /// Registers `listener` for readiness-driven accepts: when it becomes
  /// readable the poller accepts until drained and hands each connection to
  /// `on_accept`. The listener must outlive the watch (unwatch_listener(),
  /// or stop()). Fails with kInvalidArgument when the listener has no
  /// native handle. Returns a token for unwatch_listener().
  common::Result<std::uint64_t> watch_listener(Listener& listener,
                                               AcceptHandler on_accept);

  /// Stops watching; idempotent. After return the poller holds no reference
  /// to the listener, but an on_accept call may still be completing.
  void unwatch_listener(std::uint64_t token);

  std::size_t hosted_count() const;
  /// Poller thread count — the constant-threads half of the scaling story.
  std::size_t poller_count() const noexcept { return pollers_.size(); }
  EventHostStats stats() const;

 private:
  struct Hosted;
  struct Watched;
  struct Poller;

  EventHost() = default;

  Poller& poller_for(std::uint64_t key) const noexcept;
  void poll_loop(const std::stop_token& st, Poller& poller);
  void drain_ingress(Poller& poller, std::uint64_t id,
                     const std::stop_token& st);
  void drain_egress(Poller& poller, std::uint64_t id);
  void handle_accept(Poller& poller, std::uint64_t token);
  /// Removes `id`, unregisters its fd, closes the connection, and (when
  /// `notify`) fires on_close with `cause` — callback outside all locks.
  void teardown(Poller& poller, std::uint64_t id, const common::Status& cause,
                bool notify);
  /// Mirrors ShardedFanout::account_push; returns true when the push
  /// rejected and the connection must be torn down. Caller holds the
  /// poller mutex.
  bool account_push(Poller& poller, Hosted& hosted,
                    common::OutboundQueue::Push result,
                    common::OverflowPolicy policy);
  /// Arms EPOLLOUT when there is outbound work; caller holds the mutex.
  void arm_out_locked(Poller& poller, Hosted& hosted);
  void publish_impl(const common::OutboundQueue::Item& item,
                    const std::uint64_t* excluded);
  /// Pings connections silent past the interval, tears down (kTimeout,
  /// normal on_close path) those silent past interval + grace.
  void heartbeat_sweep(Poller& poller);

  std::vector<std::unique_ptr<Poller>> pollers_;
  std::size_t queue_capacity_ = 32;
  std::uint64_t heartbeat_interval_ns_ = 0;  ///< 0 = liveness disabled
  std::uint64_t heartbeat_grace_ns_ = 0;
  common::FramePtr ping_frame_;  ///< null when no ping is configured
  std::atomic<std::uint64_t> next_listener_token_{0};
  std::atomic<bool> stopped_{false};
};

}  // namespace cs::net
