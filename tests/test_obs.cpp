// Observability layer: lock-light instruments, the registry's non-stopping
// snapshots, the /metricsz text exposition, the frame-trace stamps, and the
// endpoint serving a live service's registry while it publishes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/fanout.hpp"
#include "net/event_host.hpp"
#include "net/tcp.hpp"
#include "obs/endpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "util.hpp"

namespace cs::obs {
namespace {

using namespace std::chrono_literals;
using common::Deadline;

// ---------------------------------------------------------------------------
// Instruments and registry
// ---------------------------------------------------------------------------

TEST(Registry, OwnedInstrumentsAreIdempotentAndStable) {
  Registry registry;
  Counter& a = registry.counter("frames_published", "frames");
  Counter& b = registry.counter("frames_published", "frames");
  EXPECT_EQ(&a, &b);  // same name -> same instrument
  a.add(3);
  b.add(2);
  EXPECT_EQ(a.value(), 5u);

  Gauge& g = registry.gauge("viewers");
  g.set(7);
  g.update_max(3);  // ratchet never goes down
  EXPECT_EQ(g.value(), 7);
  g.update_max(12);
  EXPECT_EQ(g.value(), 12);

  Timer& t = registry.timer("poll_latency");
  t.record(1000u);
  t.record(2000u);
  EXPECT_EQ(t.snapshot().count(), 2u);

  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "frames_published");
  EXPECT_EQ(snap.counters[0].unit, "frames");
  EXPECT_EQ(snap.counters[0].value, 5u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 12.0);
  ASSERT_EQ(snap.timers.size(), 1u);
  EXPECT_EQ(snap.timers[0].hist.count(), 2u);
}

TEST(Registry, CallbackInstrumentsEvaluateAtScrapeTime) {
  Registry registry;
  std::atomic<std::uint64_t> source{41};
  registry.counter_fn("bridged", "count",
                      [&] { return source.load(std::memory_order_relaxed); });
  registry.gauge_fn("level", "frames", [] { return 2.5; });
  registry.timer_fn("stage", [] {
    common::Histogram h;
    h.record(500);
    return h;
  });
  source.store(42);
  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 42u);  // read at scrape, not registration
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 2.5);
  ASSERT_EQ(snap.timers.size(), 1u);
  EXPECT_EQ(snap.timers[0].hist.count(), 1u);
}

// Run under TSan: writers on several threads hammer one counter and one
// timer while a reader snapshots continuously. Counts must balance exactly
// once the writers join — nothing lost, nothing double-counted.
TEST(Registry, ConcurrentIncrementAndSnapshot) {
  Registry registry;
  Counter& counter = registry.counter("ops");
  Timer& timer = registry.timer("lat");
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20000;
  std::atomic<bool> stop_reader{false};
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!stop_reader.load(std::memory_order_acquire)) {
      const Snapshot snap = registry.snapshot();
      ASSERT_EQ(snap.counters.size(), 1u);
      // Monotonic even mid-run: a torn read may lag, never run backwards.
      EXPECT_GE(snap.counters[0].value, last);
      last = snap.counters[0].value;
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        counter.add();
        if (i % 64 == 0) timer.record(i);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop_reader.store(true, std::memory_order_release);
  reader.join();
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters[0].value, kWriters * kPerWriter);
  EXPECT_EQ(snap.timers[0].hist.count(),
            kWriters * ((kPerWriter + 63) / 64));
}

TEST(Snapshot, MergeSumsCountersAndMergesHistograms) {
  // The worker -> controller aggregation rule: same name sums/merges,
  // unmatched names union in. This is how multi-registry (or
  // multi-process) metrics combine.
  Registry a;
  a.counter("frames", "frames").add(10);
  a.timer("lat").record(1000u);
  Registry b;
  b.counter("frames", "frames").add(5);
  b.counter("only_b").add(1);
  b.timer("lat").record(3000u);
  b.timer("lat").record(5000u);

  Snapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  ASSERT_EQ(merged.counters.size(), 2u);
  EXPECT_EQ(merged.counters[0].name, "frames");
  EXPECT_EQ(merged.counters[0].value, 15u);
  EXPECT_EQ(merged.counters[1].name, "only_b");
  ASSERT_EQ(merged.timers.size(), 1u);
  EXPECT_EQ(merged.timers[0].hist.count(), 3u);
  EXPECT_GE(merged.timers[0].hist.max(), 5000u);
}

// ---------------------------------------------------------------------------
// Text exposition
// ---------------------------------------------------------------------------

TEST(Exposition, GoldenFormat) {
  // The format is a contract: CI greps it, goldens diff it. Deterministic
  // ordering (counter/gauge/timer sections, names sorted) and exact row
  // shapes are the test.
  Registry registry;
  registry.counter("frames_published", "frames").add(12);
  registry.counter("accepts").add(3);
  registry.gauge("viewers").set(4);
  Timer& t = registry.timer("poll_latency");
  t.record(1000u);
  t.record(1000u);

  const std::string text = to_text(registry.snapshot());
  const common::Histogram expect_hist = [] {
    common::Histogram h;
    h.record(1000u);
    h.record(1000u);
    return h;
  }();
  const std::string golden = std::string() +
      "# TYPE accepts counter\n"
      "# UNIT accepts count\n"
      "accepts 3\n"
      "# TYPE frames_published counter\n"
      "# UNIT frames_published frames\n"
      "frames_published 12\n"
      "# TYPE viewers gauge\n"
      "# UNIT viewers count\n"
      "viewers 4\n"
      "# TYPE poll_latency summary\n"
      "# UNIT poll_latency ns\n"
      "poll_latency_count 2\n"
      "poll_latency_sum_ns " + std::to_string(expect_hist.sum()) + "\n"
      "poll_latency_min_ns " + std::to_string(expect_hist.min()) + "\n"
      "poll_latency_max_ns " + std::to_string(expect_hist.max()) + "\n"
      "poll_latency_p50_ns " + std::to_string(expect_hist.p50()) + "\n"
      "poll_latency_p95_ns " + std::to_string(expect_hist.p95()) + "\n"
      "poll_latency_p99_ns " + std::to_string(expect_hist.p99()) + "\n"
      "poll_latency_p999_ns " + std::to_string(expect_hist.p999()) + "\n";
  EXPECT_EQ(text, golden);
}

TEST(Exposition, ParseTextRoundTrip) {
  Registry registry;
  registry.counter("frames", "frames").add(7);
  registry.gauge("depth").set(3);
  registry.timer("lat").record(2000u);
  const auto parsed = parse_text(to_text(registry.snapshot()));
  auto value_of = [&](const std::string& key) -> double {
    for (const auto& [name, value] : parsed) {
      if (name == key) return value;
    }
    ADD_FAILURE() << "missing key " << key;
    return -1.0;
  };
  EXPECT_EQ(value_of("frames"), 7.0);
  EXPECT_EQ(value_of("depth"), 3.0);
  EXPECT_EQ(value_of("lat_count"), 1.0);
  EXPECT_GT(value_of("lat_p50_ns"), 0.0);
}

TEST(Exposition, ZeroMetricsAreEmittedExplicitly) {
  // "No drops" and "not measured" must be distinguishable: a registered
  // metric that never fired still produces its row.
  Registry registry;
  registry.counter("queue_drops", "frames");
  (void)registry.timer("stage_enqueue_to_write");
  const std::string text = to_text(registry.snapshot());
  EXPECT_NE(text.find("queue_drops 0\n"), std::string::npos);
  EXPECT_NE(text.find("stage_enqueue_to_write_count 0\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Frame lifecycle trace
// ---------------------------------------------------------------------------

TEST(FrameTrace, MakeFrameStampsAndQueueStampsFeedStages) {
  const std::uint64_t ingress = common::steady_now_ns();
  const common::FramePtr frame = common::make_frame(common::Bytes{1, 2, 3},
                                                    ingress);
  EXPECT_EQ(frame->trace.ingress_ns, ingress);
  EXPECT_GE(frame->trace.encode_ns, ingress);
  EXPECT_EQ(frame->size(), 3u);  // Frame IS-A Bytes; payload untouched

  common::OutboundQueue queue(4);
  ASSERT_EQ(queue.push(frame, common::OverflowPolicy::kDropOldest),
            common::OutboundQueue::Push::kQueued);
  common::OutboundQueue::Item item = queue.pop();
  EXPECT_GE(item.enqueued_ns, frame->trace.encode_ns);

  common::FrameStageStats stages;
  stages.record(item, common::steady_now_ns());
  EXPECT_EQ(stages.ingress_to_encode.count(), 1u);
  EXPECT_EQ(stages.encode_to_enqueue.count(), 1u);
  EXPECT_EQ(stages.enqueue_to_write.count(), 1u);
  EXPECT_EQ(stages.samples(), 1u);

  // Absent stamps are skipped, never recorded as zero.
  common::OutboundQueue::Item bare;
  bare.frame = common::make_frame(common::Bytes{9});
  bare.enqueued_ns = 0;
  stages.record(bare, common::steady_now_ns());
  EXPECT_EQ(stages.ingress_to_encode.count(), 1u);  // no ingress stamp
  EXPECT_EQ(stages.enqueue_to_write.count(), 1u);   // no enqueue stamp
}

TEST(FrameTrace, FanoutDeliveryPopulatesStageHistograms) {
  common::ShardedFanout::Options options;
  options.shards = 1;
  common::ShardedFanout fanout(options, [](std::uint64_t) {});
  std::atomic<int> delivered{0};
  fanout.add(1, [&](const common::Bytes&) {
    delivered.fetch_add(1);
    return common::Status::ok();
  });
  for (int i = 0; i < 8; ++i) {
    fanout.publish(common::make_frame(common::Bytes{0, 1},
                                      common::steady_now_ns()),
                   common::OverflowPolicy::kDropOldest);
  }
  const auto deadline = Deadline::after(5s);
  while (delivered.load() < 8 && !deadline.has_expired()) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(delivered.load(), 8);
  // Stage accounting folds in at the end of the worker pass that delivered;
  // one more pass may still be in flight.
  const auto stages_deadline = Deadline::after(5s);
  while (fanout.stats().stages.samples() < 8 &&
         !stages_deadline.has_expired()) {
    std::this_thread::sleep_for(1ms);
  }
  const auto stats = fanout.stats();
  EXPECT_EQ(stats.stages.samples(), 8u);
  EXPECT_EQ(stats.stages.ingress_to_encode.count(), 8u);
  EXPECT_EQ(stats.stages.encode_to_enqueue.count(), 8u);
  fanout.stop();
}

// ---------------------------------------------------------------------------
// Endpoint: scrape-while-publish against a live EventHost
// ---------------------------------------------------------------------------

TEST(MetricsEndpoint, ScrapeWhilePublishingOnLiveEventHost) {
  auto host = net::EventHost::start({.pollers = 1, .queue_capacity = 64});
  ASSERT_TRUE(host.is_ok());

  // One hosted consumer fed by a publisher thread, while a scraper polls
  // the endpoint: the snapshot path must never stop the writers, and every
  // scrape must parse.
  testutil::TcpPair pair;
  pair.connect();
  net::TcpNetwork& net = pair.net;
  ASSERT_TRUE(host.value()->host(
      1, std::move(pair.server),
      [](std::uint64_t, common::Bytes) {},
      [](std::uint64_t, const common::Status&) {}));

  Registry registry;
  Counter& published = registry.counter("frames_published", "frames");
  net::EventHost* host_ptr = host.value().get();
  registry.counter_fn("poller_wakeups", "count", [host_ptr] {
    return host_ptr->stats().wakeups;
  });
  registry.gauge_fn("hosted_viewers", "count", [host_ptr] {
    return static_cast<double>(host_ptr->stats().hosted);
  });
  registry.timer_fn("stage_enqueue_to_write", [host_ptr] {
    return host_ptr->stats().stages.enqueue_to_write;
  });

  auto endpoint = MetricsEndpoint::start(
      net, "0", [&registry] { return registry.snapshot(); });
  ASSERT_TRUE(endpoint.is_ok());
  const std::string address = endpoint.value()->address();

  std::atomic<bool> stop_publisher{false};
  std::thread publisher([&] {
    while (!stop_publisher.load(std::memory_order_acquire)) {
      host.value()->publish(common::make_frame(common::Bytes(64, 0xAB),
                                               common::steady_now_ns()),
                            common::OverflowPolicy::kDropOldest);
      published.add();
      std::this_thread::sleep_for(1ms);
    }
  });
  std::thread drainer([&] {
    while (!stop_publisher.load(std::memory_order_acquire)) {
      (void)pair.client->recv(Deadline::after(50ms));
    }
  });

  std::uint64_t last_published = 0;
  for (int scrape = 0; scrape < 5; ++scrape) {
    auto metrics = scrape_metrics(net, address, Deadline::after(2s));
    ASSERT_TRUE(metrics.is_ok()) << metrics.status().to_string();
    double published_now = -1.0;
    double hosted = -1.0;
    for (const auto& [name, value] : metrics.value()) {
      if (name == "frames_published") published_now = value;
      if (name == "hosted_viewers") hosted = value;
    }
    ASSERT_GE(published_now, 0.0);
    EXPECT_GE(static_cast<std::uint64_t>(published_now), last_published);
    last_published = static_cast<std::uint64_t>(published_now);
    EXPECT_EQ(hosted, 1.0);
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_GE(endpoint.value()->scrapes(), 5u);

  stop_publisher.store(true, std::memory_order_release);
  publisher.join();
  drainer.join();
  endpoint.value()->stop();
  host.value()->stop();
  // The publisher ran throughout: the last scrape observed live traffic.
  EXPECT_GT(last_published, 0u);
}

TEST(MetricsEndpoint, RepeatedRequestsOnOneConnectionResnapshot) {
  net::TcpNetwork net;
  Registry registry;
  Counter& counter = registry.counter("ops");
  auto endpoint = MetricsEndpoint::start(
      net, "0", [&registry] { return registry.snapshot(); });
  ASSERT_TRUE(endpoint.is_ok());

  auto conn = net.connect(endpoint.value()->address(), Deadline::after(2s));
  ASSERT_TRUE(conn.is_ok());
  const common::Bytes request{'/', 'm', 'e', 't', 'r', 'i', 'c', 's', 'z'};
  for (std::uint64_t i = 1; i <= 3; ++i) {
    counter.add();
    ASSERT_TRUE(conn.value()->send(request, Deadline::after(2s)).is_ok());
    auto raw = conn.value()->recv(Deadline::after(2s));
    ASSERT_TRUE(raw.is_ok());
    const std::string text(raw.value().begin(), raw.value().end());
    EXPECT_NE(text.find("ops " + std::to_string(i) + "\n"),
              std::string::npos)
        << text;
  }
  conn.value()->close();
  endpoint.value()->stop();
}

TEST(MetricsEndpoint, ScrapersAreHostedWithoutPerConnectionThreads) {
  // Eight concurrent scrapers ride the endpoint's shared readiness host:
  // the thread count stays at the single-scraper figure and stop() is
  // idempotent with the fleet still connected.
  net::TcpNetwork net;
  Registry registry;
  registry.counter("ops").add(7);
  auto endpoint = MetricsEndpoint::start(
      net, "0", [&registry] { return registry.snapshot(); });
  ASSERT_TRUE(endpoint.is_ok());

  std::vector<net::ConnectionPtr> conns;
  std::size_t threads_with_one = 0;
  for (int i = 0; i < 8; ++i) {
    auto conn = net.connect(endpoint.value()->address(), Deadline::after(5s));
    ASSERT_TRUE(conn.is_ok());
    conns.push_back(std::move(conn).value());
    if (i == 0) threads_with_one = endpoint.value()->service_threads();
  }
  const common::Bytes request{'/', 'm', 'e', 't', 'r', 'i', 'c', 's', 'z'};
  for (auto& conn : conns) {
    ASSERT_TRUE(conn->send(request, Deadline::after(2s)).is_ok());
    auto raw = conn->recv(Deadline::after(2s));
    ASSERT_TRUE(raw.is_ok());
    const std::string text(raw.value().begin(), raw.value().end());
    EXPECT_NE(text.find("ops 7\n"), std::string::npos) << text;
  }
  EXPECT_GE(endpoint.value()->scrapes(), 8u);
  EXPECT_EQ(endpoint.value()->service_threads(), threads_with_one);
  EXPECT_LE(endpoint.value()->service_threads(), 2u);

  endpoint.value()->stop();
  endpoint.value()->stop();  // idempotent
}

}  // namespace
}  // namespace cs::obs
