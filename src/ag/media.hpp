// vic-style media streams and unicast/multicast bridges.
//
// "The redirection of the visualization into vic to make 3D animations
// available over the Access Grid" (paper section 1) is a sequence of
// independently-decodable compressed frames on a multicast group. Sites
// behind multicast-blocking firewalls use a bridge: "we added support for
// unicast/multicast bridges and point to point sessions" (section 4.6).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/fanout.hpp"
#include "common/status.hpp"
#include "net/event_host.hpp"
#include "net/inproc.hpp"
#include "viz/compress.hpp"
#include "viz/image.hpp"

namespace cs::ag {

/// One video stream endpoint on a multicast group. Frames are key-frame
/// compressed (each independently decodable, tolerating loss, like vic).
class MediaStream {
 public:
  static common::Result<MediaStream> join(net::InProcNetwork& net,
                                          const std::string& group,
                                          const net::LinkModel& link = {});

  MediaStream() = default;
  MediaStream(MediaStream&& other) noexcept
      : socket_(std::move(other.socket_)),
        frames_sent_(other.frames_sent_.load(std::memory_order_relaxed)),
        bytes_sent_(other.bytes_sent_.load(std::memory_order_relaxed)) {}
  MediaStream& operator=(MediaStream&& other) noexcept {
    socket_ = std::move(other.socket_);
    frames_sent_.store(other.frames_sent_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    bytes_sent_.store(other.bytes_sent_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    return *this;
  }

  /// Sends one frame to the whole group (best effort).
  common::Status send_frame(const viz::Image& frame);

  /// Receives and decodes the next frame.
  common::Result<viz::Image> receive_frame(common::Deadline deadline);

  /// Frame/byte counters; readable concurrently with a running sender
  /// (loadgen polls them from its stats threads while the pump sends).
  std::uint64_t frames_sent() const noexcept {
    return frames_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_.load(std::memory_order_relaxed);
  }

  /// Counters of the underlying multicast socket (zeros after leave()).
  net::ConnStats stats() const {
    return socket_ ? socket_->stats() : net::ConnStats{};
  }

  void leave();

 private:
  net::MulticastSocketPtr socket_;
  // Atomics: stats readers poll these while the sending thread runs.
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
};

/// Relays a multicast group to unicast clients and back — for venues whose
/// participants sit behind NAT/firewalls without multicast.
///
/// The relay rides common::ShardedFanout: the group pump and the per-client
/// pumps only *enqueue* (one immutable FramePtr shared across every client
/// queue, kDropOldest — a stale media frame is superseded by the next one),
/// and the fan-out shard workers perform the actual sends, a whole drained
/// burst per client in one Connection::send_many. A slow client therefore
/// backs up only its own bounded queue and costs its shard at most one send
/// deadline per pass; it never stalls the pumps or its sibling clients.
///
/// Clients whose transport exposes readiness (TCP) skip the pump thread and
/// the fan-out entirely: they are hosted on a shared net::EventHost poller,
/// which owns their ingress decode and outbound queue, so bridge thread
/// count stays flat in the client count. Handle-less clients (in-process)
/// keep the pump+relay path; both populations receive every relayed frame.
/// Accepts stay on the group pump either way — draining the backlog between
/// recv and publish is what guarantees a client that finished connecting
/// before a frame was sent cannot miss it.
class UnicastBridge {
 public:
  struct Options {
    std::string group;    ///< multicast group to bridge
    std::string address;  ///< unicast address clients connect to
    /// Relay worker shards; 0 picks the ShardedFanout default.
    std::size_t relay_shards = 0;
    /// Per-client queue bound, in frames (staleness bound for a slow
    /// client: capacity / frame rate).
    std::size_t client_queue_frames = 32;
    /// Deadline for one batched send to one client; a client that cannot
    /// accept a burst within it just misses those frames.
    common::Duration send_deadline = std::chrono::milliseconds(100);
    /// Host readiness-capable clients (TCP) on a shared epoll loop instead
    /// of a pump thread each. Off keeps the legacy thread-per-client path.
    bool use_event_host = true;
    /// Poller threads for the event host.
    std::size_t event_host_pollers = 1;
  };

  static common::Result<std::unique_ptr<UnicastBridge>> start(
      net::InProcNetwork& net, const Options& options);
  /// As above, but clients connect over `client_net` (e.g. TCP across a
  /// firewall) while the multicast group stays on the in-process fabric.
  static common::Result<std::unique_ptr<UnicastBridge>> start(
      net::InProcNetwork& group_net, net::Network& client_net,
      const Options& options);
  ~UnicastBridge();
  UnicastBridge(const UnicastBridge&) = delete;
  UnicastBridge& operator=(const UnicastBridge&) = delete;
  void stop();

  std::size_t client_count() const;

  /// Resolved client listener address (useful with TCP port 0).
  std::string address() const;

  /// Relay delivery/drop counters (per-shard breakdown included).
  common::FanoutStats relay_stats() const;
  /// Event-host counters for epoll-hosted clients (zeros when disabled).
  net::EventHostStats host_stats() const;
  /// Threads the bridge owns right now: the group pump, relay shard
  /// workers, event-host pollers, and legacy per-client pumps. Constant in
  /// the client count when every client is hosted.
  std::size_t service_threads() const;

 private:
  UnicastBridge() = default;
  void register_client(net::ConnectionPtr conn);
  /// Closes and deregisters one client everywhere (map, fan-out); safe from
  /// pump threads, shard workers (on_dead), and stop().
  void drop_client(std::uint64_t id);
  void group_pump(const std::stop_token& st);
  void client_pump(const std::stop_token& st, std::uint64_t id);
  /// Client -> group + sibling relay; shared by the pump loop and the
  /// event-host ingress callback (runs on a poller thread, only enqueues).
  void relay_from_client(std::uint64_t id, common::Bytes message);

  /// A client pump plus its completion flag; `done` is set only after the
  /// pump body has returned, so reaping joins only threads past their last
  /// use of mutex_/clients_.
  struct ClientThread {
    std::shared_ptr<std::atomic<bool>> done;
    std::jthread thread;
  };

  Options options_;
  net::MulticastSocketPtr socket_;
  net::ListenerPtr listener_;
  std::unique_ptr<common::ShardedFanout> relay_;
  /// Epoll host for readiness-capable clients; owns their decode state and
  /// outbound queues on a fixed poller pool.
  std::unique_ptr<net::EventHost> event_host_;
  std::jthread group_thread_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, net::ConnectionPtr> clients_;
  std::vector<ClientThread> client_threads_;
  std::uint64_t next_id_ = 1;
  std::atomic<bool> stopped_{false};
};

}  // namespace cs::ag
