// Aggregated results of one loadgen run and their JSON serialization.
//
// The JSON document follows the Google Benchmark output schema (a "context"
// object plus a "benchmarks" array) so loadgen reports drop into the same
// BENCH_*.json tooling the `run_benches` target feeds: the run appears as
// one benchmark entry with items_per_second / bytes_per_second, and the
// latency distribution rides along as extra numeric fields.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/histogram.hpp"
#include "common/status.hpp"
#include "net/transport.hpp"

namespace cs::loadgen {

/// Outcome of one connection (or one scenario participant).
struct ConnectionReport {
  std::uint64_t ops = 0;       ///< completed operations (round trips/frames)
  std::uint64_t timeouts = 0;  ///< ops abandoned at their deadline
  std::uint64_t errors = 0;    ///< non-timeout failures
  net::ConnStats transport;    ///< counters of the underlying connection
};

struct Report {
  std::string name;         ///< e.g. "mux_soak", "raw/duplex"
  std::size_t connections = 0;
  common::Duration elapsed = common::Duration::zero();
  std::uint64_t ops = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t errors = 0;
  /// Sum of per-connection transport counters.
  net::ConnStats transport;
  /// Per-operation latency in nanoseconds, merged across all workers.
  common::Histogram latency;
  std::vector<ConnectionReport> per_connection;
  /// Service-side counters the scenario chooses to surface (thread counts,
  /// hosted-connection counts, render-loop wakeups, ...). Each pair lands
  /// in the JSON benchmark entry as an extra numeric field, so CI can
  /// assert on them with the same tooling that reads the latency fields.
  std::vector<std::pair<std::string, double>> service_metrics;
  /// kOk for a complete run. A distributed controller sets kUnavailable
  /// when one or more workers disconnected or missed the result deadline:
  /// the report then holds the surviving shards merged — still honest
  /// numbers, but for a smaller fleet than was asked for.
  common::StatusCode completeness = common::StatusCode::kOk;

  bool is_partial() const noexcept {
    return completeness != common::StatusCode::kOk;
  }

  double seconds() const noexcept;
  double ops_per_second() const noexcept;
  /// Payload throughput: bytes received across all connections per second.
  double recv_bytes_per_second() const noexcept;

  /// Folds one worker's outcome into the aggregate counters.
  void add_connection(const ConnectionReport& conn,
                      const common::Histogram& worker_latency);
};

/// Serializes the report as a Google-Benchmark-schema JSON document.
std::string to_json(const Report& report);

/// One-line human summary for terminals and CI logs.
std::string summary_line(const Report& report);

}  // namespace cs::loadgen
