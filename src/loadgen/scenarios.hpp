// End-to-end soak scenarios against the real services.
//
// Each scenario stands up one actual service (collaborative-steering
// multiplexer, remote render server, AG media bridge) on an in-process
// network, drives it with many concurrent participants, and reports the
// user-visible latency distribution: fan-out delay for steering samples,
// viewpoint-to-frame round trip for remote rendering, and one-way frame
// delay for media streams. Every future perf PR measures against these.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/clock.hpp"
#include "common/status.hpp"
#include "loadgen/control.hpp"
#include "loadgen/report.hpp"
#include "loadgen/workload.hpp"
#include "net/transport.hpp"

namespace cs::loadgen {

struct ScenarioOptions {
  /// Concurrent participants (viewers / render clients / media receivers).
  std::size_t connections = 64;
  /// Measurement window once all participants are connected.
  common::Duration duration = std::chrono::seconds(2);
  /// Producer rate: steering samples, viewpoint updates, or media frames
  /// per second.
  double rate_per_sec = 200.0;
  /// Bulk payload size (steering sample bytes; media frames derive their
  /// dimensions from it).
  std::size_t payload_bytes = 1024;
  std::uint64_t seed = 1;
  /// Fan-out / pipeline / relay worker shards (mux, viz, and media
  /// scenarios); 0 lets the service pick a default from
  /// hardware_concurrency.
  std::size_t fanout_shards = 0;
  /// Media scenario: receivers placed behind the unicast bridge; the rest
  /// sit directly on the multicast group. kBridgedHalf (the default)
  /// bridges half of them — the paper's mixed multicast/firewalled-venue
  /// audience. Sweeping this against `rate_per_sec` maps the bridge's
  /// receivers × rate capacity.
  static constexpr std::size_t kBridgedHalf = static_cast<std::size_t>(-1);
  std::size_t bridged_connections = kBridgedHalf;
  /// Of `connections`, how many are deliberately wedged consumers (viz
  /// scenario): they connect with a tiny receive window and never drain a
  /// frame, so the service's slow-client isolation is what the healthy
  /// participants' latency distribution measures. Stalled participants
  /// record no latency samples.
  std::size_t stalled_connections = 0;
  /// Substrate for the mux scenario. TCP exercises the readiness path:
  /// viewers land on the service's shared epoll host instead of one pump
  /// thread each. In-process connections have no native handle and always
  /// use the pump path.
  enum class Transport { kInProc, kTcp };
  Transport transport = Transport::kInProc;
  /// Mux scenario: host readiness-capable viewers on the shared epoll
  /// loop. Off is the legacy thread-per-viewer baseline — the "before"
  /// side of the flat-thread benchmark pair.
  bool use_event_host = true;
  /// When nonzero, the mux scenario fails (kInternal) if the service owns
  /// more threads than this once every participant is connected. CI runs
  /// the 1024-viewer TCP soak with a bound a thread-per-viewer design
  /// cannot meet.
  std::size_t max_service_threads = 0;
  /// Mux scenario: start the service's /metricsz endpoint and scrape it
  /// mid-run (while the fleet is connected and traffic is flowing). The
  /// scraped rows land in Report::service_metrics verbatim, so the report
  /// carries server-side truth — poller wakeups, queue drops, frame-stage
  /// latencies — not client-side inference. On by default; turn off to
  /// measure the service with zero observers attached.
  bool scrape_metricsz = true;
  /// Chaos scenarios: each initial participant connection is abruptly
  /// closed after this many transport operations (sends + recv attempts),
  /// plus a seeded jitter below. The threshold is per-connection and
  /// derived from `seed`, so a fixed seed injects the identical fault
  /// schedule run-to-run.
  std::uint64_t fault_after_ops = 64;
  /// Uniform jitter added to fault_after_ops, seeded per connection.
  std::uint64_t fault_after_ops_jitter = 32;
  /// Chaos scenarios: fixed latency injected on every faulted-connection
  /// operation before the close fires (zero = pure disconnect sweep).
  common::Duration fault_delay = common::Duration::zero();
};

/// Steering fan-out soak: one simulation pushes timestamped samples through
/// a visit::Multiplexer to `connections` viewers; the first viewer holds the
/// master role and steers periodically. Latency = sample publish -> viewer
/// delivery, across all viewers.
common::Result<Report> run_multiplexer_soak(const ScenarioOptions& options);

/// Remote-rendering loop: `connections` viz::RemoteRenderClient participants
/// share one viz::RemoteRenderServer camera; each loops viewpoint-update ->
/// frame receipt. Latency = view change -> delivered frame.
common::Result<Report> run_vizserver_loop(const ScenarioOptions& options);

/// Media-bridge stream: one ag::MediaStream sender emits fixed-rate frames
/// onto a multicast group; half the receivers sit on the group, half behind
/// an ag::UnicastBridge. Latency = one-way frame delay (timestamp encoded
/// in the frame pixels, surviving the lossless codec).
common::Result<Report> run_media_bridge(const ScenarioOptions& options);

/// Control-channel relay soak: one actor publishes timestamped control
/// records at the producer rate through a visit::ControlServer;
/// `connections - 1` observers drain the relay. Latency = publish ->
/// observer delivery. Honors max_service_threads with the full fleet
/// connected (the hosted population must not grow the thread count).
common::Result<Report> run_control_soak(const ScenarioOptions& options);

/// Desktop-share push soak: the server publishes stamped framebuffer
/// updates to `connections` ag::DesktopShareViewer participants at the
/// producer rate; every 32nd update, one viewer sends an input event
/// upstream to exercise the hosted ingress path. Latency = update ->
/// decoded viewer frame. Honors max_service_threads.
common::Result<Report> run_desktop_soak(const ScenarioOptions& options);

/// Gateway request/reply soak: `connections` clients each run a closed
/// request/reply loop of UPL transactions against one unicore::Gateway.
/// Latency = request -> decoded response. Honors max_service_threads.
common::Result<Report> run_gateway_soak(const ScenarioOptions& options);

/// Chaos steering soak: the mux soak with every initial viewer connection
/// dialed through a seeded net::FaultNetwork that abruptly closes it after
/// a per-connection op threshold (fault_after_ops ± jitter, plus optional
/// fault_delay latency). Dropped viewers reconnect through a
/// net::Reconnector, re-handshake, and resume via the multiplexer's
/// replay-seed path. The report adds chaos_* rows — injected vs observed
/// vs recovered counts and the disconnect->first-frame recovery-time
/// percentiles — and is flagged partial unless every observed disconnect
/// recovered.
common::Result<Report> run_chaos_mux_soak(const ScenarioOptions& options);

/// Chaos media soak: every receiver sits behind an ag::UnicastBridge and
/// dials it through the same seeded fault plan. The bridge has no replay,
/// so the sender keeps publishing through a grace window and recovery =
/// disconnect -> first live frame on the redialed connection.
common::Result<Report> run_chaos_bridge_soak(const ScenarioOptions& options);

// ---------------------------------------------------------------------------
// Worker-executable specs (the distributed driver)
// ---------------------------------------------------------------------------

/// One worker's executable slice of a scenario. The two phases mirror the
/// control protocol: prepare() opens the spec's connection fleet (its
/// completion is what the worker's READY ack means), execute() runs the
/// measurement window after the START barrier and returns the shard.
class SpecRunner {
 public:
  virtual ~SpecRunner() = default;
  virtual common::Status prepare(common::Deadline deadline) = 0;
  virtual common::Result<WireWorkerReport> execute() = 0;
};

/// Binds a decoded WorkloadSpec to its runner: kRaw drives a LoadPeer via
/// run_workload, kMuxViewers runs a viewer fleet against a
/// visit::Multiplexer — the same drain loop the in-process mux soak uses.
common::Result<std::unique_ptr<SpecRunner>> make_spec_runner(
    net::Network& net, const WorkloadSpec& spec);

/// Controller-side knobs for the distributed scenarios. The functions stand
/// up the target service and the control listener on `net`; the worker
/// fleet is external (threads in tests, processes under --role=worker) and
/// dials in via `on_listening`'s address.
struct DistributedOptions {
  /// Fleet size the controller waits for before assigning work.
  std::size_t workers = 2;
  /// "0" (default): every listener takes a kernel-assigned TCP port. Any
  /// other value is an in-process name stem — listeners bind <stem>:ctl,
  /// <stem>:peer, <stem>:sim, <stem>:viewer, <stem>:metricsz — so the
  /// whole topology runs on one InProcNetwork.
  std::string address_stem = "0";
  /// Overrides the control listener's bind address when nonempty. CI binds
  /// a fixed TCP port here so worker processes can be launched before the
  /// controller and dial a known address (connect_retry absorbs the race).
  std::string control_listen;
  /// Fleet-total workload for run_distributed_raw; connections are sliced
  /// across the workers (per-worker seed derived from workload.seed).
  Workload workload;
  /// Scenario knobs for run_distributed_mux_soak; connections sliced the
  /// same way.
  ScenarioOptions scenario;
  /// Bound on the fleet assembling; a short fleet still runs (the merged
  /// report is flagged partial) as long as at least one worker joined.
  common::Duration join_timeout = std::chrono::seconds(30);
  /// Slack past the nominal end of the run for RESULT shards to arrive.
  common::Duration collect_slack = std::chrono::seconds(10);
  /// Called with the resolved control address once the controller listens —
  /// launch (or announce to) the worker fleet from here.
  std::function<void(const std::string&)> on_listening;
};

/// Distributed raw driver: controller hosts a LoadPeer plus a /metricsz
/// registry over it, slices `workload` across the fleet, barriers the
/// start, and merges the shards. kBurst reconciles exactly: merged ops ==
/// the target's delivered-frame count (target_peer_stream_frames).
common::Result<Report> run_distributed_raw(net::Network& net,
                                           const DistributedOptions& options);

/// Distributed steering soak: controller hosts the visit::Multiplexer and
/// drives the simulation; workers each run a viewer-fleet slice. The merged
/// report carries per-worker breakdowns plus the mux's own /metricsz rows.
common::Result<Report> run_distributed_mux_soak(
    net::Network& net, const DistributedOptions& options);

}  // namespace cs::loadgen
