// Unit + property tests for cs::wire: header codec, payload conversion
// (byte order / precision / integer-float), and struct pack/unpack.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "wire/convert.hpp"
#include "wire/message.hpp"
#include "wire/structdesc.hpp"
#include "wire/typedesc.hpp"

namespace cs::wire {
namespace {

using common::ByteOrder;
using common::Bytes;
using common::StatusCode;

// ----------------------------------------------------------- ScalarType --

TEST(ScalarType, SizesMatchCpp) {
  EXPECT_EQ(size_of(ScalarType::kInt8), sizeof(std::int8_t));
  EXPECT_EQ(size_of(ScalarType::kUInt16), sizeof(std::uint16_t));
  EXPECT_EQ(size_of(ScalarType::kInt32), sizeof(std::int32_t));
  EXPECT_EQ(size_of(ScalarType::kUInt64), sizeof(std::uint64_t));
  EXPECT_EQ(size_of(ScalarType::kFloat32), sizeof(float));
  EXPECT_EQ(size_of(ScalarType::kFloat64), sizeof(double));
  EXPECT_EQ(size_of(ScalarType::kChar), 1u);
}

TEST(ScalarType, MappingFromCppTypes) {
  EXPECT_EQ(scalar_type_of<float>(), ScalarType::kFloat32);
  EXPECT_EQ(scalar_type_of<double>(), ScalarType::kFloat64);
  EXPECT_EQ(scalar_type_of<std::int32_t>(), ScalarType::kInt32);
  EXPECT_EQ(scalar_type_of<char>(), ScalarType::kChar);
}

TEST(ScalarType, ValidityCheck) {
  EXPECT_TRUE(is_valid_scalar_type(0));
  EXPECT_TRUE(is_valid_scalar_type(10));
  EXPECT_FALSE(is_valid_scalar_type(11));
  EXPECT_FALSE(is_valid_scalar_type(255));
}

// --------------------------------------------------------------- Header --

TEST(Header, EncodeDecodeRoundTrip) {
  MessageHeader h;
  h.kind = MessageKind::kData;
  h.tag = 0xfeedbeef;
  h.elem_type = ScalarType::kFloat64;
  h.payload_order = ByteOrder::kBig;
  h.count = 12345;
  h.payload_bytes = 12345 * 8;
  Bytes buf;
  encode_header(h, buf);
  ASSERT_EQ(buf.size(), MessageHeader::kWireSize);
  auto d = decode_header(buf);
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().tag, h.tag);
  EXPECT_EQ(d.value().elem_type, h.elem_type);
  EXPECT_EQ(d.value().payload_order, h.payload_order);
  EXPECT_EQ(d.value().count, h.count);
  EXPECT_EQ(d.value().kind, h.kind);
}

TEST(Header, RejectsTruncated) {
  Bytes buf(MessageHeader::kWireSize - 1, 0);
  EXPECT_EQ(decode_header(buf).status().code(), StatusCode::kProtocolError);
}

TEST(Header, RejectsBadMagic) {
  MessageHeader h;
  Bytes buf;
  encode_header(h, buf);
  buf[0] ^= 0xff;
  EXPECT_EQ(decode_header(buf).status().code(), StatusCode::kProtocolError);
}

TEST(Header, RejectsBadVersion) {
  MessageHeader h;
  Bytes buf;
  encode_header(h, buf);
  buf[4] = 99;
  EXPECT_EQ(decode_header(buf).status().code(), StatusCode::kProtocolError);
}

TEST(Header, RejectsBadEnumValues) {
  MessageHeader h;
  h.count = 0;
  h.payload_bytes = 0;
  Bytes buf;
  encode_header(h, buf);
  Bytes bad_kind = buf;
  bad_kind[5] = 7;
  EXPECT_FALSE(decode_header(bad_kind).is_ok());
  Bytes bad_type = buf;
  bad_type[6] = 42;
  EXPECT_FALSE(decode_header(bad_type).is_ok());
  Bytes bad_order = buf;
  bad_order[7] = 2;
  EXPECT_FALSE(decode_header(bad_order).is_ok());
}

TEST(Header, RejectsInconsistentPayloadSize) {
  MessageHeader h;
  h.elem_type = ScalarType::kFloat32;
  h.count = 10;
  h.payload_bytes = 39;  // should be 40
  Bytes buf;
  encode_header(h, buf);
  EXPECT_EQ(decode_header(buf).status().code(), StatusCode::kProtocolError);
}

// -------------------------------------------------------------- Message --

TEST(Message, DataRoundTrip) {
  const std::vector<double> values{1.5, -2.25, 3.75, 1e300};
  Message m = make_data_message(7, values.data(), values.size());
  Bytes frame = m.encode();
  auto d = Message::decode(frame);
  ASSERT_TRUE(d.is_ok());
  auto out = extract_as<double>(d.value());
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value(), values);
}

TEST(Message, StringRoundTrip) {
  Message m = make_string_message(3, "miscibility=0.07");
  auto d = Message::decode(m.encode());
  ASSERT_TRUE(d.is_ok());
  auto s = extract_string(d.value());
  ASSERT_TRUE(s.is_ok());
  EXPECT_EQ(s.value(), "miscibility=0.07");
}

TEST(Message, RequestHasEmptyPayload) {
  Message m = make_request_message(42);
  EXPECT_EQ(m.header.kind, MessageKind::kRequest);
  EXPECT_EQ(m.header.count, 0u);
  auto d = Message::decode(m.encode());
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().header.tag, 42u);
}

TEST(Message, DecodeRejectsLengthMismatch) {
  Message m = make_string_message(1, "hello");
  Bytes frame = m.encode();
  frame.push_back(0);  // extra trailing byte
  EXPECT_EQ(Message::decode(frame).status().code(),
            StatusCode::kProtocolError);
}

TEST(Message, ExtractAsRejectsRequestMessages) {
  Message m = make_request_message(1);
  EXPECT_FALSE(extract_as<float>(m).is_ok());
}

// ------------------------------------------------------------ Conversion --

TEST(Convert, ByteSwappedPayloadDecodes) {
  // Simulate a big-endian sender on this little-endian host.
  const std::vector<std::uint32_t> values{1, 0x01020304, 0xffffffff};
  Bytes payload;
  for (auto v : values) {
    common::append_uint<std::uint32_t>(payload, v, ByteOrder::kBig);
  }
  std::vector<std::uint32_t> out(values.size());
  ASSERT_TRUE(convert_elements(ScalarType::kUInt32, ByteOrder::kBig, payload,
                               values.size(), ScalarType::kUInt32, out.data())
                  .is_ok());
  EXPECT_EQ(out, values);
}

TEST(Convert, Float64ToFloat32Narrows) {
  const std::vector<double> src{1.0, -0.5, 3.14159265358979};
  Bytes payload;
  common::append_bytes(
      payload, common::ByteSpan{
                   reinterpret_cast<const std::uint8_t*>(src.data()),
                   src.size() * sizeof(double)});
  std::vector<float> out(src.size());
  ASSERT_TRUE(convert_elements(ScalarType::kFloat64, common::native_order(),
                               payload, src.size(), ScalarType::kFloat32,
                               out.data())
                  .is_ok());
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_FLOAT_EQ(out[i], static_cast<float>(src[i]));
  }
}

TEST(Convert, IntToFloatAndBack) {
  const std::vector<std::int32_t> src{-7, 0, 123456};
  Bytes payload;
  common::append_bytes(
      payload,
      common::ByteSpan{reinterpret_cast<const std::uint8_t*>(src.data()),
                       src.size() * sizeof(std::int32_t)});
  std::vector<double> as_double(src.size());
  ASSERT_TRUE(convert_elements(ScalarType::kInt32, common::native_order(),
                               payload, src.size(), ScalarType::kFloat64,
                               as_double.data())
                  .is_ok());
  EXPECT_DOUBLE_EQ(as_double[0], -7.0);
  EXPECT_DOUBLE_EQ(as_double[2], 123456.0);
}

TEST(Convert, RejectsShortPayload) {
  Bytes payload(7, 0);  // one double needs 8
  double out;
  EXPECT_EQ(convert_elements(ScalarType::kFloat64, common::native_order(),
                             payload, 1, ScalarType::kFloat64, &out)
                .code(),
            StatusCode::kProtocolError);
}

/// Property sweep: every (src,dst) scalar pair round-trips small integer
/// values exactly, in both byte orders. Small integers are representable in
/// every scalar type, so conversion must preserve them precisely.
class ConvertPairTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConvertPairTest, SmallIntegersSurviveAnyPath) {
  const auto src_type = static_cast<ScalarType>(std::get<0>(GetParam()));
  const auto dst_type = static_cast<ScalarType>(std::get<1>(GetParam()));
  const auto order = static_cast<ByteOrder>(std::get<2>(GetParam()));
  const std::vector<std::int64_t> probe{0, 1, 17, 63, 100};

  // Build a payload of `probe` values in src_type representation with the
  // requested order, by converting from int64 first (native), then applying
  // the byte order manually via a second conversion step.
  Bytes native(probe.size() * size_of(src_type));
  ASSERT_TRUE(convert_elements(
                  ScalarType::kInt64, common::native_order(),
                  common::ByteSpan{
                      reinterpret_cast<const std::uint8_t*>(probe.data()),
                      probe.size() * 8},
                  probe.size(), src_type, native.data())
                  .is_ok());
  Bytes wire = native;
  if (order != common::native_order()) {
    // Byte-swap each element in place.
    const std::size_t esz = size_of(src_type);
    for (std::size_t e = 0; e < probe.size(); ++e) {
      for (std::size_t b = 0; b < esz / 2; ++b) {
        std::swap(wire[e * esz + b], wire[e * esz + esz - 1 - b]);
      }
    }
  }

  Bytes out(probe.size() * size_of(dst_type));
  ASSERT_TRUE(convert_elements(src_type, order, wire, probe.size(), dst_type,
                               out.data())
                  .is_ok());
  // Convert the result back to int64 for comparison.
  std::vector<std::int64_t> got(probe.size());
  ASSERT_TRUE(convert_elements(dst_type, common::native_order(), out,
                               probe.size(), ScalarType::kInt64, got.data())
                  .is_ok());
  EXPECT_EQ(got, probe) << "src=" << to_string(src_type)
                        << " dst=" << to_string(dst_type);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairsBothOrders, ConvertPairTest,
    ::testing::Combine(::testing::Range(0, static_cast<int>(kScalarTypeCount)),
                       ::testing::Range(0, static_cast<int>(kScalarTypeCount)),
                       ::testing::Values(0, 1)));

// ------------------------------------------------------------ StructDesc --

struct Particle {
  double pos[3];
  double vel[3];
  float charge;
  std::int32_t proc;
  std::int64_t label;
};

StructDesc particle_desc() {
  StructDesc d{"particle", sizeof(Particle)};
  d.add_field("pos", ScalarType::kFloat64, 3, offsetof(Particle, pos))
      .add_field("vel", ScalarType::kFloat64, 3, offsetof(Particle, vel))
      .add_field("charge", ScalarType::kFloat32, 1, offsetof(Particle, charge))
      .add_field("proc", ScalarType::kInt32, 1, offsetof(Particle, proc))
      .add_field("label", ScalarType::kInt64, 1, offsetof(Particle, label));
  return d;
}

TEST(StructDesc, WireRecordSizeSumsFields) {
  EXPECT_EQ(particle_desc().wire_record_size(), 3 * 8 + 3 * 8 + 4 + 4 + 8u);
}

TEST(StructDesc, SchemaSerializeParseRoundTrip) {
  const StructDesc d = particle_desc();
  auto parsed = StructDesc::parse(d.serialize());
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value(), d);
}

TEST(StructDesc, ParseRejectsGarbage) {
  EXPECT_FALSE(StructDesc::parse("justonename").is_ok());
  EXPECT_FALSE(StructDesc::parse("n|8|badfield").is_ok());
  EXPECT_FALSE(StructDesc::parse("n|8|f:99:1:0").is_ok());
}

TEST(StructDesc, PackUnpackRoundTrip) {
  const StructDesc d = particle_desc();
  std::vector<Particle> in(5);
  common::Rng rng{99};
  for (auto& p : in) {
    for (auto& x : p.pos) x = rng.uniform(-10, 10);
    for (auto& v : p.vel) v = rng.uniform(-1, 1);
    p.charge = static_cast<float>(rng.uniform(-1, 1));
    p.proc = static_cast<std::int32_t>(rng.next_below(64));
    p.label = static_cast<std::int64_t>(rng.next_u64() >> 1);
  }
  const Bytes packed = pack_records(d, in.data(), in.size());
  EXPECT_EQ(packed.size(), d.wire_record_size() * in.size());
  std::vector<Particle> out(in.size());
  ASSERT_TRUE(unpack_records(d, common::native_order(), packed, d, out.data(),
                             out.size())
                  .is_ok());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].pos[0], in[i].pos[0]);
    EXPECT_EQ(out[i].vel[2], in[i].vel[2]);
    EXPECT_EQ(out[i].charge, in[i].charge);
    EXPECT_EQ(out[i].proc, in[i].proc);
    EXPECT_EQ(out[i].label, in[i].label);
  }
}

TEST(StructDesc, UnpackIntoDifferentLayoutAndPrecision) {
  // Receiver keeps only positions, as float32, in a differently-ordered
  // struct. Field matching is by name.
  struct ViewParticle {
    std::int64_t label;
    float pos[3];
  };
  const StructDesc src = particle_desc();
  StructDesc dst{"view", sizeof(ViewParticle)};
  dst.add_field("label", ScalarType::kInt64, 1, offsetof(ViewParticle, label))
      .add_field("pos", ScalarType::kFloat32, 3, offsetof(ViewParticle, pos));

  std::vector<Particle> in(3);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i].pos[0] = 1.5 * static_cast<double>(i);
    in[i].pos[1] = -2.0;
    in[i].pos[2] = 0.25;
    in[i].label = static_cast<std::int64_t>(1000 + i);
  }
  const Bytes packed = pack_records(src, in.data(), in.size());
  std::vector<ViewParticle> out(in.size());
  ASSERT_TRUE(unpack_records(src, common::native_order(), packed, dst,
                             out.data(), out.size())
                  .is_ok());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].label, in[i].label);
    EXPECT_FLOAT_EQ(out[i].pos[0], static_cast<float>(in[i].pos[0]));
    EXPECT_FLOAT_EQ(out[i].pos[1], -2.0f);
  }
}

TEST(StructDesc, MissingSourceFieldIsZeroFilled) {
  StructDesc src{"src", sizeof(double)};
  src.add_field("a", ScalarType::kFloat64, 1, 0);
  struct Dst { double a; double b; };
  StructDesc dst{"dst", sizeof(Dst)};
  dst.add_field("a", ScalarType::kFloat64, 1, offsetof(Dst, a))
      .add_field("b", ScalarType::kFloat64, 1, offsetof(Dst, b));
  const double value = 6.5;
  const Bytes packed = pack_records(src, &value, 1);
  Dst out{1, 1};
  ASSERT_TRUE(
      unpack_records(src, common::native_order(), packed, dst, &out, 1).is_ok());
  EXPECT_EQ(out.a, 6.5);
  EXPECT_EQ(out.b, 0.0);
}

TEST(StructDesc, LengthMismatchRejected) {
  StructDesc src{"s", 8};
  src.add_field("v", ScalarType::kFloat32, 2, 0);
  StructDesc dst{"d", 12};
  dst.add_field("v", ScalarType::kFloat32, 3, 0);
  const float values[2] = {1, 2};
  const Bytes packed = pack_records(src, values, 1);
  float out[3];
  EXPECT_EQ(unpack_records(src, common::native_order(), packed, dst, out, 1)
                .code(),
            StatusCode::kProtocolError);
}

TEST(StructDesc, ShortPayloadRejected) {
  const StructDesc d = particle_desc();
  Bytes packed(10, 0);
  Particle out;
  EXPECT_EQ(
      unpack_records(d, common::native_order(), packed, d, &out, 1).code(),
      StatusCode::kProtocolError);
}

TEST(StructDesc, MessageWrapRoundTrip) {
  const StructDesc d = particle_desc();
  std::vector<Particle> in(2);
  in[0].label = 7;
  in[1].label = 8;
  Message m = make_struct_message(5, d, in.data(), in.size());
  auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded.is_ok());
  std::vector<Particle> out(2);
  ASSERT_TRUE(unpack_records(d, decoded.value().header.payload_order,
                             decoded.value().payload, d, out.data(), 2)
                  .is_ok());
  EXPECT_EQ(out[0].label, 7);
  EXPECT_EQ(out[1].label, 8);
}

}  // namespace
}  // namespace cs::wire
