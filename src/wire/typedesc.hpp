// Scalar type vocabulary of the wire format.
//
// VISIT ships "strings, integers, floats, user defined structures, and
// arrays of these" and converts byte order / precision / integer-float on
// the server so the steered simulation is never burdened (paper section
// 3.2). These tags describe what a payload contains so the receiving side
// can do that conversion.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <type_traits>

namespace cs::wire {

enum class ScalarType : std::uint8_t {
  kInt8 = 0,
  kUInt8 = 1,
  kInt16 = 2,
  kUInt16 = 3,
  kInt32 = 4,
  kUInt32 = 5,
  kInt64 = 6,
  kUInt64 = 7,
  kFloat32 = 8,
  kFloat64 = 9,
  kChar = 10,  ///< string payloads: array of kChar
};

constexpr std::size_t kScalarTypeCount = 11;

/// Size in bytes of one element.
std::size_t size_of(ScalarType t) noexcept;

/// Stable printable name ("float32", ...).
std::string_view to_string(ScalarType t) noexcept;

constexpr bool is_float(ScalarType t) noexcept {
  return t == ScalarType::kFloat32 || t == ScalarType::kFloat64;
}

constexpr bool is_integer(ScalarType t) noexcept {
  return !is_float(t);
}

/// True when the byte value names a valid ScalarType.
constexpr bool is_valid_scalar_type(std::uint8_t raw) noexcept {
  return raw < kScalarTypeCount;
}

/// Maps a C++ arithmetic type to its ScalarType tag.
template <typename T>
constexpr ScalarType scalar_type_of() noexcept {
  if constexpr (std::is_same_v<T, std::int8_t>) return ScalarType::kInt8;
  else if constexpr (std::is_same_v<T, std::uint8_t>) return ScalarType::kUInt8;
  else if constexpr (std::is_same_v<T, std::int16_t>) return ScalarType::kInt16;
  else if constexpr (std::is_same_v<T, std::uint16_t>) return ScalarType::kUInt16;
  else if constexpr (std::is_same_v<T, std::int32_t>) return ScalarType::kInt32;
  else if constexpr (std::is_same_v<T, std::uint32_t>) return ScalarType::kUInt32;
  else if constexpr (std::is_same_v<T, std::int64_t>) return ScalarType::kInt64;
  else if constexpr (std::is_same_v<T, std::uint64_t>) return ScalarType::kUInt64;
  else if constexpr (std::is_same_v<T, float>) return ScalarType::kFloat32;
  else if constexpr (std::is_same_v<T, double>) return ScalarType::kFloat64;
  else if constexpr (std::is_same_v<T, char>) return ScalarType::kChar;
  else static_assert(sizeof(T) == 0, "unsupported wire scalar type");
}

}  // namespace cs::wire
