#include "ogsa/steering_service.hpp"

namespace cs::ogsa {

using common::Result;
using common::Status;
using common::StatusCode;

SteeringService::SteeringService(Handle handle, std::string component,
                                 std::shared_ptr<SteeringBackend> backend)
    : GridService(std::move(handle)), backend_(std::move(backend)) {
  set_service_data("service-type", "steering");
  set_service_data("component", component);
  if (backend_) {
    std::string names;
    for (const auto& p : backend_->list_params()) {
      if (!names.empty()) names += ",";
      names += p.name;
      set_service_data("param/" + p.name,
                       p.steerable ? "steerable" : "monitored");
    }
    set_service_data("params", names);
  }
}

std::vector<SteeringBackend::ParamInfo> SteeringService::list_params() const {
  return backend_ ? backend_->list_params()
                  : std::vector<SteeringBackend::ParamInfo>{};
}

Result<std::string> SteeringService::get_param(const std::string& name) const {
  if (!backend_) return Status{StatusCode::kUnavailable, "no backend"};
  return backend_->get_param(name);
}

Status SteeringService::set_param(const std::string& name,
                                  const std::string& value) {
  if (!backend_) return Status{StatusCode::kUnavailable, "no backend"};
  return backend_->set_param(name, value);
}

Status SteeringService::command(const std::string& command) {
  if (!backend_) return Status{StatusCode::kUnavailable, "no backend"};
  return backend_->command(command);
}

std::string SteeringService::status() const {
  return backend_ ? backend_->status() : "no backend";
}

Result<std::string> SteeringService::invoke(
    const std::string& operation, const std::vector<std::string>& args) {
  if (operation == "list-params") {
    std::string out;
    for (const auto& p : list_params()) {
      if (!out.empty()) out += "\n";
      out += p.name + "=" + p.value + (p.steerable ? " [steerable]" : " [monitored]");
    }
    return out;
  }
  if (operation == "get-param") {
    if (args.size() != 1) {
      return Status{StatusCode::kInvalidArgument, "get-param <name>"};
    }
    return get_param(args[0]);
  }
  if (operation == "set-param") {
    if (args.size() != 2) {
      return Status{StatusCode::kInvalidArgument, "set-param <name> <value>"};
    }
    if (Status s = set_param(args[0], args[1]); !s.is_ok()) return s;
    return std::string("ok");
  }
  if (operation == "command") {
    if (args.size() != 1) {
      return Status{StatusCode::kInvalidArgument, "command <cmd>"};
    }
    if (Status s = command(args[0]); !s.is_ok()) return s;
    return std::string("ok");
  }
  if (operation == "status") {
    return status();
  }
  return GridService::invoke(operation, args);
}

}  // namespace cs::ogsa
