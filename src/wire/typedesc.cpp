#include "wire/typedesc.hpp"

namespace cs::wire {

std::size_t size_of(ScalarType t) noexcept {
  switch (t) {
    case ScalarType::kInt8:
    case ScalarType::kUInt8:
    case ScalarType::kChar:
      return 1;
    case ScalarType::kInt16:
    case ScalarType::kUInt16:
      return 2;
    case ScalarType::kInt32:
    case ScalarType::kUInt32:
    case ScalarType::kFloat32:
      return 4;
    case ScalarType::kInt64:
    case ScalarType::kUInt64:
    case ScalarType::kFloat64:
      return 8;
  }
  return 0;
}

std::string_view to_string(ScalarType t) noexcept {
  switch (t) {
    case ScalarType::kInt8: return "int8";
    case ScalarType::kUInt8: return "uint8";
    case ScalarType::kInt16: return "int16";
    case ScalarType::kUInt16: return "uint16";
    case ScalarType::kInt32: return "int32";
    case ScalarType::kUInt32: return "uint32";
    case ScalarType::kInt64: return "int64";
    case ScalarType::kUInt64: return "uint64";
    case ScalarType::kFloat32: return "float32";
    case ScalarType::kFloat64: return "float64";
    case ScalarType::kChar: return "char";
  }
  return "unknown";
}

}  // namespace cs::wire
