#include "visit/viewer.hpp"

#include "common/strings.hpp"
#include "visit/tags.hpp"

namespace cs::visit {

using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

Result<ViewerClient> ViewerClient::connect(net::Network& net,
                                           const Options& options,
                                           Deadline deadline) {
  auto conn = net.connect(options.mux_address, deadline);
  if (!conn.is_ok()) return conn.status();
  return attach(std::move(conn).value(), options, deadline);
}

Result<ViewerClient> ViewerClient::attach(net::ConnectionPtr conn,
                                          const Options& options,
                                          Deadline deadline) {
  ViewerClient client;
  client.conn_ = std::move(conn);
  client.options_ = options;
  const auto hello = wire::make_control_message(
      kTagHello,
      std::string("HELLO ") + kProtocolVersion + " " + options.password);
  if (Status s = client.conn_->send(hello.encode(), deadline); !s.is_ok()) {
    return s;
  }
  auto raw = client.conn_->recv(deadline);
  if (!raw.is_ok()) return raw.status();
  auto ack = wire::Message::decode(raw.value());
  if (!ack.is_ok()) return ack.status();
  auto body = wire::extract_string(ack.value());
  if (!body.is_ok()) return body.status();
  if (!common::starts_with(body.value(), "OK")) {
    client.conn_->close();
    return Status{StatusCode::kPermissionDenied, body.value()};
  }
  return client;
}

ViewerClient ViewerClient::adopt(net::ConnectionPtr conn,
                                 const Options& options) {
  ViewerClient client;
  client.conn_ = std::move(conn);
  client.options_ = options;
  return client;
}

Result<ViewerClient::Event> ViewerClient::poll(Deadline deadline) {
  if (!connected()) return closed();
  for (;;) {
    auto raw = conn_->recv(deadline);
    if (!raw.is_ok()) return raw.status();
    auto decoded = wire::Message::decode(raw.value());
    if (!decoded.is_ok()) return decoded.status();
    wire::Message m = std::move(decoded).value();

    if (m.header.kind == wire::MessageKind::kControl) {
      if (m.header.tag == kTagRole) {
        auto body = wire::extract_string(m);
        if (!body.is_ok()) return body.status();
        master_ = (body.value() == "master");
        Event e;
        e.kind = Event::Kind::kRole;
        e.tag = kTagRole;
        e.role = body.value();
        return e;
      }
      if (m.header.tag == kTagSchema) {
        auto body = wire::extract_string(m);
        if (!body.is_ok()) return body.status();
        const auto space = body.value().find(' ');
        if (space == std::string::npos) continue;
        const auto tag = static_cast<std::uint32_t>(
            std::strtoul(body.value().c_str(), nullptr, 10));
        auto desc = wire::StructDesc::parse(
            std::string_view{body.value()}.substr(space + 1));
        if (desc.is_ok()) schemas_.insert_or_assign(tag, std::move(desc).value());
        continue;
      }
      if (m.header.tag == kTagBye) {
        Event e;
        e.kind = Event::Kind::kBye;
        e.tag = kTagBye;
        return e;
      }
      if (m.header.tag == kTagPing) {
        // Heartbeat probe from the multiplexer: echo it so the host's
        // silence detector sees inbound traffic. Never surfaced as an
        // event — liveness is transport plumbing, not application data.
        (void)conn_->send(wire::make_control_message(kTagPing, "").encode(),
                          Deadline::after(options_.default_timeout));
        continue;
      }
      continue;
    }
    if (m.header.kind == wire::MessageKind::kData) {
      Event e;
      e.tag = m.header.tag;
      e.kind = schemas_.contains(m.header.tag) ? Event::Kind::kStructData
                                               : Event::Kind::kData;
      e.message = std::move(m);
      return e;
    }
    // kRequest never flows towards viewers; skip defensively.
  }
}

Status ViewerClient::steer_string(std::uint32_t tag, std::string_view text,
                                  std::optional<Deadline> deadline) {
  if (!connected()) return closed();
  return conn_->send(wire::make_string_message(tag, text).encode(),
                     effective(deadline));
}

Status ViewerClient::take_master(std::optional<Deadline> deadline) {
  if (!connected()) return closed();
  return conn_->send(wire::make_control_message(kTagTakeMaster, "").encode(),
                     effective(deadline));
}

const wire::StructDesc* ViewerClient::schema(std::uint32_t tag) const {
  auto it = schemas_.find(tag);
  return it == schemas_.end() ? nullptr : &it->second;
}

Status ViewerClient::unpack(const Event& event,
                            const wire::StructDesc& dst_desc, void* records,
                            std::size_t record_count) const {
  auto it = schemas_.find(event.tag);
  if (it == schemas_.end()) {
    return Status{StatusCode::kNotFound, "no schema for tag"};
  }
  return wire::unpack_records(it->second, event.message.header.payload_order,
                              event.message.payload, dst_desc, records,
                              record_count);
}

Result<std::size_t> ViewerClient::record_count(const Event& event) const {
  auto it = schemas_.find(event.tag);
  if (it == schemas_.end()) {
    return Status{StatusCode::kNotFound, "no schema for tag"};
  }
  const std::size_t rec = it->second.wire_record_size();
  if (rec == 0 || event.message.payload.size() % rec != 0) {
    return Status{StatusCode::kProtocolError, "payload not a record multiple"};
  }
  return event.message.payload.size() / rec;
}

void ViewerClient::disconnect() {
  if (conn_ && conn_->is_open()) {
    (void)conn_->send(wire::make_control_message(kTagBye, "").encode(),
                      Deadline::after(options_.default_timeout));
    conn_->close();
  }
  conn_.reset();
}

}  // namespace cs::visit
