#include "ogsa/service.hpp"

#include "common/strings.hpp"

namespace cs::ogsa {

using common::Result;
using common::Status;
using common::StatusCode;

void GridService::set_service_data(const std::string& name,
                                   std::string value) {
  std::scoped_lock lock(mutex_);
  service_data_[name] = std::move(value);
}

Result<std::string> GridService::find_service_data(
    const std::string& name) const {
  std::scoped_lock lock(mutex_);
  auto it = service_data_.find(name);
  if (it == service_data_.end()) {
    return Status{StatusCode::kNotFound, "no SDE named " + name};
  }
  return it->second;
}

std::vector<std::pair<std::string, std::string>>
GridService::query_service_data(const std::string& pattern) const {
  std::scoped_lock lock(mutex_);
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [name, value] : service_data_) {
    if (common::glob_match(pattern, name)) out.emplace_back(name, value);
  }
  return out;
}

void GridService::request_termination_after(common::Duration lifetime) {
  std::scoped_lock lock(mutex_);
  termination_ = common::Clock::now() + lifetime;
}

void GridService::destroy() {
  std::scoped_lock lock(mutex_);
  termination_ = common::TimePoint::min();
}

bool GridService::is_alive() const {
  std::scoped_lock lock(mutex_);
  return common::Clock::now() < termination_;
}

Result<std::string> GridService::invoke(const std::string& operation,
                                        const std::vector<std::string>& args) {
  if (operation == "find-service-data") {
    if (args.size() != 1) {
      return Status{StatusCode::kInvalidArgument,
                    "find-service-data needs one argument"};
    }
    return find_service_data(args[0]);
  }
  return Status{StatusCode::kNotFound, "unknown operation: " + operation};
}

}  // namespace cs::ogsa
