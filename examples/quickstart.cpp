// Quickstart: instrument a simulation for collaborative steering.
//
// The smallest end-to-end tour of the library:
//   1. a toy simulation registers steerable/monitored parameters
//      (cs::steer — the RealityGrid-style instrumentation API),
//   2. a steering service wraps it and publishes to a registry
//      (cs::ogsa — the paper's Fig. 2 architecture),
//   3. the simulation ships samples over the VISIT channel
//      (cs::visit — simulation-as-client, timeout-guaranteed),
//   4. a "remote" steering client discovers the service, watches the
//      monitored value, and changes a parameter mid-run.
//
// Build & run:  ./build/examples/quickstart
#include <cmath>
#include <cstdio>
#include <thread>

#include "net/inproc.hpp"
#include "ogsa/host.hpp"
#include "ogsa/registry.hpp"
#include "ogsa/steering_service.hpp"
#include "steer/control.hpp"
#include "visit/client.hpp"
#include "visit/server.hpp"

using namespace std::chrono_literals;
using cs::common::Deadline;

namespace {
constexpr std::uint32_t kTagWave = 1;

/// The "simulation": a damped oscillator whose frequency is steerable.
void run_simulation(cs::net::InProcNetwork& net,
                    std::shared_ptr<cs::steer::SteeringControl> control) {
  double frequency = 1.0;  // steerable
  double amplitude = 1.0;  // monitored
  control->register_steerable("frequency", &frequency, 0.1, 10.0);
  control->register_monitored("amplitude", [&] { return amplitude; });

  // VISIT channel for sample data (fire-and-forget, never blocks the sim
  // longer than the timeout).
  auto visit = cs::visit::SimClient::connect(
      net, {"quickstart:viz", "demo-password", 50ms}, Deadline::after(2s));

  for (int step = 0; step < 400; ++step) {
    // One iteration of "physics".
    amplitude = std::exp(-step * 0.01);
    const double value =
        amplitude * std::sin(frequency * static_cast<double>(step) * 0.1);

    // Steering boundary: apply pending parameter changes, honor commands.
    if (control->sync() == cs::steer::Command::kStop) break;
    control->set_status("step " + std::to_string(step));

    // Emit a sample for whoever is watching.
    if (visit.is_ok()) {
      const std::vector<double> sample{static_cast<double>(step), value,
                                       frequency};
      (void)visit.value().send(kTagWave, sample);
      control->note_sample_emitted();
    }
    std::this_thread::sleep_for(2ms);
  }
  if (visit.is_ok()) visit.value().disconnect();
}
}  // namespace

int main() {
  cs::net::InProcNetwork net;  // the "grid": everything talks through here

  // --- visualization side: a VISIT server that prints incoming samples ---
  auto viz = cs::visit::VizServer::listen(net, {"quickstart:viz",
                                                "demo-password"});
  if (!viz.is_ok()) {
    std::fprintf(stderr, "viz listen failed: %s\n",
                 viz.status().to_string().c_str());
    return 1;
  }
  std::jthread viz_thread([&] {
    auto session = viz.value().accept(Deadline::after(5s));
    if (!session.is_ok()) return;
    int shown = 0;
    for (;;) {
      auto event = session.value().serve(Deadline::after(2s));
      if (!event.is_ok() ||
          event.value().kind == cs::visit::SimSession::Event::Kind::kBye) {
        break;
      }
      auto values = session.value().extract<double>(event.value());
      if (values.is_ok() && values.value().size() == 3 && ++shown % 50 == 0) {
        std::printf("[viz]      step %4.0f  value %+0.3f  (frequency %.1f)\n",
                    values.value()[0], values.value()[1], values.value()[2]);
      }
    }
  });

  // --- application side: instrumented simulation + published service ----
  auto control = std::make_shared<cs::steer::SteeringControl>();
  auto registry = std::make_shared<cs::ogsa::Registry>();
  auto service = std::make_shared<cs::ogsa::SteeringService>(
      "ogsi://quickstart/steering/oscillator", "application", control);
  (void)registry->publish(service);
  auto host = cs::ogsa::ServiceHost::start(net, registry, {"quickstart:ogsi"});
  if (!host.is_ok()) return 1;

  std::jthread sim_thread([&] { run_simulation(net, control); });

  // --- steering client: discover, bind, steer ---------------------------
  std::this_thread::sleep_for(100ms);  // let the sim take a few steps
  auto client = cs::ogsa::ServiceClient::connect(net, "quickstart:ogsi",
                                                 Deadline::after(2s));
  if (!client.is_ok()) return 1;
  auto handles = client.value().find("ogsi://quickstart/steering/*",
                                     Deadline::after(2s));
  if (!handles.is_ok() || handles.value().empty()) {
    std::fprintf(stderr, "no steering service found\n");
    return 1;
  }
  const auto handle = handles.value()[0];
  std::printf("[steerer]  discovered %s\n", handle.c_str());

  auto params = client.value().invoke(handle, "list-params", {},
                                      Deadline::after(2s));
  std::printf("[steerer]  parameters:\n%s\n",
              params.is_ok() ? params.value().c_str() : "?");

  std::printf("[steerer]  steering frequency 1.0 -> 5.0\n");
  (void)client.value().invoke(handle, "set-param", {"frequency", "5.0"},
                              Deadline::after(2s));
  std::this_thread::sleep_for(200ms);
  auto freq = client.value().invoke(handle, "get-param", {"frequency"},
                                    Deadline::after(2s));
  auto amp = client.value().invoke(handle, "get-param", {"amplitude"},
                                   Deadline::after(2s));
  std::printf("[steerer]  now frequency=%s amplitude=%s\n",
              freq.is_ok() ? freq.value().c_str() : "?",
              amp.is_ok() ? amp.value().c_str() : "?");

  std::printf("[steerer]  stopping the simulation\n");
  (void)client.value().invoke(handle, "command", {"stop"},
                              Deadline::after(2s));
  sim_thread.join();
  std::printf("[done]     samples emitted: %llu\n",
              static_cast<unsigned long long>(control->samples_emitted()));
  return 0;
}
