// O(N^2) direct force summation — the baseline the tree code is measured
// against (experiment E5) and the accuracy reference for the multipole
// approximation.
#pragma once

#include <cstdint>
#include <span>

#include "common/vec3.hpp"
#include "sim/pepc/particle.hpp"

namespace cs::pepc {

class DirectSolver {
 public:
  explicit DirectSolver(double softening = 0.05) : softening_(softening) {}

  /// Field (force per unit charge) at `where`, excluding particle `skip`.
  common::Vec3 field_at(std::span<const Particle> particles,
                        const common::Vec3& where,
                        std::size_t skip = static_cast<std::size_t>(-1)) const;

  /// Forces on all particles (exact pairwise sum).
  void accumulate_forces(std::span<const Particle> particles,
                         std::span<common::Vec3> forces) const;

  /// Exact potential energy 0.5 * sum_i sum_{j!=i} q_i q_j / r_ij.
  double potential_energy(std::span<const Particle> particles) const;

 private:
  double softening_;
};

}  // namespace cs::pepc
