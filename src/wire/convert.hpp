// Receiver-side transparent data conversion.
//
// "Any data conversions (byte order, precision, integer-float) are performed
// transparently by the server, again so that the simulation is disturbed as
// little as possible." — paper section 3.2. The benchmark bench_conversion
// (experiment E10) measures exactly this asymmetry.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "wire/message.hpp"
#include "wire/typedesc.hpp"

namespace cs::wire {

/// Converts a raw payload (elements of `src_type` in `src_order`) into
/// native `dst_type` elements written to `dst` (which must hold
/// `count * size_of(dst_type)` bytes). Handles byte order, precision
/// widening/narrowing, and integer<->float. Narrowing follows static_cast
/// semantics.
common::Status convert_elements(ScalarType src_type,
                                common::ByteOrder src_order,
                                common::ByteSpan src_bytes, std::uint64_t count,
                                ScalarType dst_type, void* dst) noexcept;

/// Extracts a message's payload as a vector of T, converting as needed.
/// kInvalidArgument when the message is not a data message.
template <typename T>
common::Result<std::vector<T>> extract_as(const Message& m) {
  if (m.header.kind != MessageKind::kData) {
    return common::Status{common::StatusCode::kInvalidArgument,
                          "not a data message"};
  }
  std::vector<T> out(m.header.count);
  auto s = convert_elements(m.header.elem_type, m.header.payload_order,
                            m.payload, m.header.count, scalar_type_of<T>(),
                            out.data());
  if (!s.is_ok()) return s;
  return out;
}

}  // namespace cs::wire
