#include "net/conn_host.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace cs::net {

using common::Deadline;
using common::OutboundQueue;
using common::OverflowPolicy;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {

/// Per-connection work bound in one sweep, so one chatty peer cannot starve
/// its pump-mates (the fallback analog of the poller's drain burst).
constexpr int kSweepBurst = 64;

}  // namespace

Result<std::unique_ptr<ConnectionHost>> ConnectionHost::start(
    const Options& options) {
  auto host = EventHost::start(
      EventHost::Options{.pollers = options.pollers,
                         .queue_capacity = options.queue_capacity,
                         .heartbeat_interval = options.heartbeat_interval,
                         .heartbeat_grace = options.heartbeat_grace,
                         .ping_frame = options.ping_frame});
  if (!host.is_ok()) return host.status();
  auto out = std::unique_ptr<ConnectionHost>(new ConnectionHost());
  out->options_ = options;
  out->event_host_ = std::move(host.value());
  if (options.heartbeat_interval > common::Duration::zero()) {
    out->heartbeat_interval_ns_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            options.heartbeat_interval)
            .count());
    out->heartbeat_grace_ns_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::max(options.heartbeat_grace, common::Duration::zero()))
            .count());
    if (!options.ping_frame.empty()) {
      out->ping_frame_ = common::make_frame(options.ping_frame);
    }
  }
  return out;
}

ConnectionHost::~ConnectionHost() { stop(); }

void ConnectionHost::stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  event_host_->stop();
  std::jthread pump;
  std::map<std::uint64_t, FallbackPtr> drained;
  {
    std::scoped_lock lock(mutex_);
    pump = std::move(pump_);
    pump_running_.store(false, std::memory_order_release);
    drained.swap(fallback_);
    for (auto& [id, entry] : drained) {
      entry->alive.store(false, std::memory_order_release);
    }
  }
  if (pump.joinable()) {
    pump.request_stop();
    pump.join();
  }
  for (auto& [id, entry] : drained) entry->conn->close();
}

bool ConnectionHost::add(std::uint64_t id, ConnectionPtr conn,
                         MessageHandler on_message, CloseHandler on_close,
                         std::vector<OutboundQueue::Item> replay) {
  if (!conn || stopped_.load(std::memory_order_acquire)) return false;
  if (conn->native_handle() >= 0) {
    return event_host_->host(id, std::move(conn), std::move(on_message),
                             std::move(on_close), std::move(replay));
  }
  std::scoped_lock lock(mutex_);
  if (stopped_.load(std::memory_order_acquire)) return false;
  if (fallback_.contains(id)) return false;
  auto entry =
      std::make_shared<Fallback>(std::move(conn), std::move(on_message),
                                 std::move(on_close), options_.queue_capacity);
  entry->last_in_ns = common::steady_now_ns();
  for (OutboundQueue::Item& item : replay) entry->queue.seed(std::move(item));
  fallback_.emplace(id, std::move(entry));
  if (!pump_running_.load(std::memory_order_acquire)) {
    pump_ = std::jthread([this](const std::stop_token& st) { pump_loop(st); });
    pump_running_.store(true, std::memory_order_release);
  }
  return true;
}

ConnectionHost::FallbackPtr ConnectionHost::extract(std::uint64_t id) {
  std::scoped_lock lock(mutex_);
  auto it = fallback_.find(id);
  if (it == fallback_.end()) return nullptr;
  FallbackPtr entry = std::move(it->second);
  entry->alive.store(false, std::memory_order_release);
  fallback_.erase(it);
  return entry;
}

void ConnectionHost::remove(std::uint64_t id) {
  event_host_->unhost(id);
  if (FallbackPtr entry = extract(id)) entry->conn->close();
}

bool ConnectionHost::send_to(std::uint64_t id, OutboundQueue::Item item) {
  const OverflowPolicy policy = item.policy;
  FallbackPtr entry;
  {
    std::scoped_lock lock(mutex_);
    auto it = fallback_.find(id);
    if (it != fallback_.end()) entry = it->second;
  }
  if (!entry) return event_host_->send_to(id, std::move(item));
  // Source-payload items need a per-consumer encode step neither population
  // has; mirror EventHost (shed data, doom control).
  const bool undeliverable = item.frame == nullptr;
  OutboundQueue::Push result = OutboundQueue::Push::kDroppedNewest;
  {
    std::scoped_lock lock(mutex_);
    if (!entry->alive.load(std::memory_order_acquire)) return false;
    if (!undeliverable) {
      result = entry->queue.push(std::move(item));
    } else if (policy == OverflowPolicy::kDisconnect) {
      result = OutboundQueue::Push::kRejectedOverflow;
    }
  }
  if (result == OutboundQueue::Push::kRejectedOverflow &&
      policy == OverflowPolicy::kDisconnect) {
    if (FallbackPtr doomed = extract(id)) {
      doomed->conn->close();
      fallback_disconnects_.fetch_add(1, std::memory_order_relaxed);
      if (doomed->on_close) {
        doomed->on_close(id, Status{StatusCode::kResourceExhausted,
                                    "control frame overflow"});
      }
    }
  }
  return true;
}

namespace {
/// An id no connection can hold (EventHost reserves the top bit).
constexpr std::uint64_t kNoExclusion = ~std::uint64_t{0};
}  // namespace

void ConnectionHost::publish(const OutboundQueue::Item& item) {
  event_host_->publish(item);
  publish_fallback(kNoExclusion, item);
}

void ConnectionHost::publish_except(std::uint64_t excluded_id,
                                    const OutboundQueue::Item& item) {
  event_host_->publish_except(excluded_id, item);
  publish_fallback(excluded_id, item);
}

void ConnectionHost::publish_fallback(std::uint64_t excluded_id,
                                      const OutboundQueue::Item& item) {
  std::vector<std::pair<std::uint64_t, FallbackPtr>> doomed;
  const bool undeliverable = item.frame == nullptr;
  {
    std::scoped_lock lock(mutex_);
    for (auto& [id, entry] : fallback_) {
      if (id == excluded_id) continue;
      if (!entry->alive.load(std::memory_order_acquire)) continue;
      OutboundQueue::Push result;
      if (!undeliverable) {
        result = entry->queue.push(item);
      } else if (item.policy == OverflowPolicy::kDisconnect) {
        result = OutboundQueue::Push::kRejectedOverflow;
      } else {
        continue;  // shed the data item for this consumer
      }
      if (result == OutboundQueue::Push::kRejectedOverflow &&
          item.policy == OverflowPolicy::kDisconnect) {
        entry->alive.store(false, std::memory_order_release);
        doomed.emplace_back(id, entry);
      }
    }
    for (auto& [id, entry] : doomed) fallback_.erase(id);
  }
  for (auto& [id, entry] : doomed) {
    entry->conn->close();
    fallback_disconnects_.fetch_add(1, std::memory_order_relaxed);
    if (entry->on_close) {
      entry->on_close(
          id, Status{StatusCode::kResourceExhausted, "control frame overflow"});
    }
  }
}

bool ConnectionHost::sweep_one(
    std::uint64_t id, const FallbackPtr& entry,
    std::vector<std::pair<std::uint64_t, FallbackPtr>>& doomed,
    const std::stop_token& st) {
  bool progressed = false;
  Status doom_cause = Status::ok();
  // Egress: pop under the lock, send outside it. A send the peer's window
  // refuses parks the item in `pending` so ordering survives backpressure.
  for (int i = 0; i < kSweepBurst && !st.stop_requested(); ++i) {
    OutboundQueue::Item item;
    {
      std::scoped_lock lock(mutex_);
      if (!entry->alive.load(std::memory_order_acquire)) return progressed;
      if (entry->pending.frame) {
        item = entry->pending;
      } else {
        item = entry->queue.pop();
        entry->pending = item;
      }
    }
    if (!item.frame) break;  // queue empty
    const Status s = entry->conn->send(
        common::ByteSpan{*item.frame}, Deadline::expired());
    if (s.is_ok()) {
      progressed = true;
      std::scoped_lock lock(mutex_);
      entry->pending = OutboundQueue::Item{};
      continue;
    }
    if (s.code() == StatusCode::kTimeout) break;  // window full: retry later
    doom_cause = s;
    break;
  }
  // Ingress: advance the blocking transport's non-blocking surface until it
  // would block. Only this pump thread ever receives on a fallback conn.
  if (doom_cause.is_ok()) {
    for (int i = 0; i < kSweepBurst && !st.stop_requested(); ++i) {
      if (!entry->alive.load(std::memory_order_acquire)) return progressed;
      auto r = entry->conn->try_recv();
      if (r.is_ok()) {
        progressed = true;
        entry->last_in_ns = common::steady_now_ns();
        fallback_messages_in_.fetch_add(1, std::memory_order_relaxed);
        if (entry->on_message) entry->on_message(id, std::move(r.value()));
        continue;
      }
      if (r.status().code() == StatusCode::kUnavailable) break;
      doom_cause = r.status();
      break;
    }
  }
  if (!doom_cause.is_ok()) {
    bool mine = false;
    {
      std::scoped_lock lock(mutex_);
      if (entry->alive.exchange(false, std::memory_order_acq_rel)) {
        fallback_.erase(id);
        mine = true;
      }
    }
    if (mine) {
      entry->conn->close();
      fallback_disconnects_.fetch_add(1, std::memory_order_relaxed);
      entry->close_cause = doom_cause;
      doomed.emplace_back(id, entry);
    }
  }
  return progressed;
}

void ConnectionHost::heartbeat_fallback(
    const std::vector<std::pair<std::uint64_t, FallbackPtr>>& snapshot,
    std::vector<std::pair<std::uint64_t, FallbackPtr>>& doomed) {
  const std::uint64_t now = common::steady_now_ns();
  for (const auto& [id, entry] : snapshot) {
    if (!entry->alive.load(std::memory_order_acquire)) continue;
    const std::uint64_t silent =
        now > entry->last_in_ns ? now - entry->last_in_ns : 0;
    if (silent >= heartbeat_interval_ns_ + heartbeat_grace_ns_) {
      bool mine = false;
      {
        std::scoped_lock lock(mutex_);
        if (entry->alive.exchange(false, std::memory_order_acq_rel)) {
          fallback_.erase(id);
          mine = true;
        }
      }
      if (mine) {
        entry->conn->close();
        fallback_disconnects_.fetch_add(1, std::memory_order_relaxed);
        fallback_idle_disconnects_.fetch_add(1, std::memory_order_relaxed);
        entry->close_cause =
            Status{StatusCode::kTimeout, "peer silent past heartbeat grace"};
        doomed.emplace_back(id, entry);
      }
      continue;
    }
    if (silent >= heartbeat_interval_ns_ && ping_frame_ != nullptr &&
        now - entry->last_ping_ns >= heartbeat_interval_ns_) {
      entry->last_ping_ns = now;
      // Data-class: a full queue sheds the ping; the silence detector is
      // what passes sentence on an unresponsive peer.
      std::scoped_lock lock(mutex_);
      entry->queue.push(ping_frame_, OverflowPolicy::kDropOldest);
      fallback_pings_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void ConnectionHost::pump_loop(const std::stop_token& st) {
  std::vector<std::pair<std::uint64_t, FallbackPtr>> snapshot;
  std::vector<std::pair<std::uint64_t, FallbackPtr>> doomed;
  std::uint64_t next_sweep_ns =
      common::steady_now_ns() + heartbeat_interval_ns_;
  while (!st.stop_requested()) {
    snapshot.clear();
    doomed.clear();
    {
      std::scoped_lock lock(mutex_);
      snapshot.assign(fallback_.begin(), fallback_.end());
    }
    bool progressed = false;
    for (auto& [id, entry] : snapshot) {
      if (st.stop_requested()) break;
      progressed = sweep_one(id, entry, doomed, st) || progressed;
    }
    if (heartbeat_interval_ns_ != 0 && !st.stop_requested()) {
      const std::uint64_t now = common::steady_now_ns();
      if (now >= next_sweep_ns) {
        heartbeat_fallback(snapshot, doomed);
        next_sweep_ns = now + heartbeat_interval_ns_ / 4;
      }
    }
    for (auto& [id, entry] : doomed) {
      if (entry->on_close) entry->on_close(id, entry->close_cause);
    }
    if (!progressed && doomed.empty() && !st.stop_requested()) {
      std::this_thread::sleep_for(options_.idle_slice);
    }
  }
}

std::size_t ConnectionHost::size() const {
  std::scoped_lock lock(mutex_);
  return event_host_->hosted_count() + fallback_.size();
}

std::size_t ConnectionHost::thread_count() const {
  return event_host_->poller_count() +
         (pump_running_.load(std::memory_order_acquire) ? 1 : 0);
}

ConnectionHostStats ConnectionHost::stats() const {
  ConnectionHostStats out;
  out.event_host = event_host_->stats();
  {
    std::scoped_lock lock(mutex_);
    out.fallback_hosted = fallback_.size();
  }
  out.fallback_messages_in =
      fallback_messages_in_.load(std::memory_order_relaxed);
  out.fallback_disconnects =
      fallback_disconnects_.load(std::memory_order_relaxed);
  out.hosted = out.event_host.hosted + out.fallback_hosted;
  out.threads = thread_count();
  out.pings_sent = out.event_host.pings_sent +
                   fallback_pings_.load(std::memory_order_relaxed);
  out.idle_disconnects =
      out.event_host.idle_disconnects +
      fallback_idle_disconnects_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace cs::net
