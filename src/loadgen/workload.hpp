// Declarative traffic patterns for the load generator.
//
// A Workload describes *what* to put on the wire — ctsTraffic-style: the
// direction of the bulk bytes (push / pull / duplex), or a fixed-rate framed
// datagram stream (burst, the media-stream shape) — and *how much* of it:
// connection count, ramp-up, duration, seeded payload sizing. The driver
// (loadgen/driver.hpp) turns one Workload into N concurrent connections
// against any cs::net::Network.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/clock.hpp"
#include "common/status.hpp"

namespace cs::loadgen {

enum class Pattern : std::uint8_t {
  kPush,    ///< client sends the bulk payload; peer returns a small ack
  kPull,    ///< client sends a small request; peer returns the bulk payload
  kDuplex,  ///< client sends the payload; peer echoes it in full
  kBurst,   ///< fixed-rate one-way framed datagrams; latency read at the peer
};

std::string_view to_string(Pattern pattern) noexcept;
common::Result<Pattern> parse_pattern(std::string_view text);

struct Workload {
  Pattern pattern = Pattern::kDuplex;
  /// Concurrent connections the driver opens against the target address.
  std::size_t connections = 1;
  /// Steady-state measurement window (after ramp-up completes).
  common::Duration duration = std::chrono::seconds(1);
  /// Connection start times are spread uniformly across this interval so a
  /// soak does not begin with a thundering herd of connect() calls.
  common::Duration ramp_up = common::Duration::zero();
  /// Payload size drawn per message from [min_payload, max_payload] with a
  /// seeded RNG — reproducible, but not a single fixed packet size.
  std::size_t min_payload = 64;
  std::size_t max_payload = 64;
  /// Per-connection send rate. Zero means closed-loop (next op starts when
  /// the previous completes); kBurst requires a positive rate.
  double messages_per_sec = 0.0;
  /// Root RNG seed; worker i derives its stream from (seed, i).
  std::uint64_t seed = 1;
  /// Deadline applied to each individual transport operation.
  common::Duration op_timeout = std::chrono::seconds(1);
  /// Messages handed to the transport per send_many call (wire batch
  /// depth). 1 = the classic one-send-per-message loop. For request/reply
  /// patterns this is also the pipelining depth: a worker sends `batch`
  /// requests in one vectored call, then awaits all the replies. For
  /// kBurst, `batch` consecutive frames of the fixed-rate stream are
  /// coalesced into one call (the offered rate is unchanged).
  std::size_t batch = 1;

  /// kInvalidArgument with a reason when the combination is unusable.
  common::Status validate() const;
};

}  // namespace cs::loadgen
