// E11 — the LBM miscibility steering relationship (paper section 2.2).
//
// Claim: "The parameter used for the steering was the miscibility of the
// fluids. ... As the miscibility parameter was altered, the structures
// formed by the fluids changed and the visualization was necessary so that
// these changes could be observed."
//
// Measured: for a coupling sweep at fixed step count, the structural
// observables the visualization would show — segregation <|phi|> and the
// interface-link count — plus the step throughput with sample extraction,
// which bounds the achievable sample rate of the demo.
#include <benchmark/benchmark.h>

#include "sim/lbm/lbm.hpp"

namespace {

void BM_CouplingSweep(benchmark::State& state) {
  const double coupling = static_cast<double>(state.range(0)) / 100.0;
  cs::lbm::LbmConfig config;
  config.nx = config.ny = config.nz = 16;
  config.coupling = coupling;
  config.seed = 7;
  for (auto _ : state) {
    cs::lbm::TwoFluidLbm sim(config);
    for (int s = 0; s < 250; ++s) sim.step();
    state.counters["segregation"] = sim.segregation();
    state.counters["interface_links"] =
        static_cast<double>(sim.interface_links());
    benchmark::DoNotOptimize(sim.segregation());
  }
  state.SetLabel("coupling=" + std::to_string(coupling));
}

void BM_StepWithSampleEmission(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  cs::lbm::LbmConfig config;
  config.nx = config.ny = config.nz = n;
  config.coupling = 1.8;
  cs::lbm::TwoFluidLbm sim(config);
  for (auto _ : state) {
    sim.step();
    auto sample = sim.order_parameter();
    benchmark::DoNotOptimize(sample.data());
  }
  state.counters["samples_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.SetLabel("grid=" + std::to_string(n));
}

}  // namespace

// coupling x100: 0.0, 0.6, 1.2, 1.5, 1.8, 2.1
BENCHMARK(BM_CouplingSweep)
    ->Arg(0)->Arg(60)->Arg(120)->Arg(150)->Arg(180)->Arg(210)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_StepWithSampleEmission)
    ->Arg(16)->Arg(24)->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

BENCHMARK_MAIN();
