// E6 — the VizServer traffic claim (paper section 2.4).
//
// Claim: "The datasets which are being rendered as isosurfaces are too
// large to be visualized on a laptop client. VizServer allows the output of
// the graphics pipes from an Onyx visual supercomputer to be accessed
// remotely. In addition this greatly reduces network traffic since only
// compressed bitmaps need to be sent to the participating sites."
//
// Measured per LBM-like grid size: bytes that must cross the wire for one
// view update under three distribution strategies — raw field (the data),
// extracted isosurface geometry (the scene-graph approach), and the
// compressed bitmap delta of a small camera move (the VizServer approach).
// The frame cost is constant in data size; the other two grow.
#include <benchmark/benchmark.h>

#include <cmath>

#include "viz/compress.hpp"
#include "viz/isosurface.hpp"
#include "viz/remote.hpp"

namespace {

using cs::common::Vec3;

std::vector<float> blob_field(int n) {
  std::vector<float> values(static_cast<std::size_t>(n) * n * n);
  for (int z = 0; z < n; ++z) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const double fx = 2.0 * x / (n - 1) - 1;
        const double fy = 2.0 * y / (n - 1) - 1;
        const double fz = 2.0 * z / (n - 1) - 1;
        // Lumpy two-phase structure, like a demixed LBM order parameter.
        values[(static_cast<std::size_t>(z) * n + y) * n + x] =
            static_cast<float>(std::sin(3.1 * fx) * std::sin(2.7 * fy) *
                                   std::sin(2.3 * fz) +
                               0.2 * std::sin(7.9 * fx * fy * fz));
      }
    }
  }
  return values;
}

void BM_TrafficPerViewUpdate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto values = blob_field(n);
  cs::viz::ScalarField field{n, n, n, values, {-1, -1, -1}, 2.0 / (n - 1)};
  const auto mesh = cs::viz::extract_isosurface(field, 0.0f);

  // Render two adjacent viewpoints; the delta between them is what
  // VizServer ships per interaction.
  cs::viz::Renderer renderer(320, 240);
  cs::viz::Camera camera;
  camera.look_at({3, 2, 4}, {0, 0, 0}, {0, 1, 0});
  renderer.clear();
  renderer.draw_mesh(mesh, camera, {90, 170, 255});
  const cs::viz::Image frame_a = renderer.frame();
  camera.orbit(0.05, 0.0);
  renderer.clear();
  renderer.draw_mesh(mesh, camera, {90, 170, 255});
  const cs::viz::Image frame_b = renderer.frame();

  std::size_t delta_bytes = 0;
  for (auto _ : state) {
    const auto delta = cs::viz::compress_frame_delta(frame_b, frame_a);
    benchmark::DoNotOptimize(delta.data());
    delta_bytes = delta.size();
  }
  state.counters["raw_field_bytes"] =
      static_cast<double>(values.size() * sizeof(float));
  state.counters["geometry_bytes"] = static_cast<double>(mesh.byte_size());
  state.counters["frame_delta_bytes"] = static_cast<double>(delta_bytes);
  state.counters["triangles"] = static_cast<double>(mesh.triangle_count());
  state.SetLabel("grid=" + std::to_string(n));
}

}  // namespace

BENCHMARK(BM_TrafficPerViewUpdate)
    ->Arg(16)
    ->Arg(32)
    ->Arg(48)
    ->Arg(64)
    ->Arg(96)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);

BENCHMARK_MAIN();
