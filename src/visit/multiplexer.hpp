// Collaborative steering multiplexer — the paper's `vbroker` (section 3.3),
// as moved into the VISIT proxy-server for the UNICORE extension.
//
// "A 'multiplexer' simply sends all VISIT send-requests to all participating
// visualizations, ensuring that everyone views the same data.
// Receive-requests are only sent to a 'master' visualization, so that only
// that master is able to actively steer the application. The master-role can
// be moved, allowing for a coordinated cooperative steering."
//
// Implementation notes:
//
//   * The master's steering updates are cached in a parameter table inside
//     the multiplexer and the simulation's requests are answered from that
//     table immediately. This is observationally equivalent to forwarding
//     each request to the master (the sim receives exactly the values the
//     master last published) but keeps the VISIT guarantee intact: the
//     simulation's round trip is bounded by the link to the multiplexer,
//     never by a viewer application's event loop.
//
//   * The broadcast fan-out is sharded (common::ShardedFanout): every viewer
//     owns a bounded outbound queue drained by a small worker pool, so one
//     slow or blocked viewer can no longer stall the broadcast, and the
//     registry lock is never held across a send. Sample frames shed load by
//     dropping the oldest queued sample; control frames (roles, schemas,
//     shutdown) are lossless — a viewer that cannot absorb them is
//     disconnected. See docs/ARCHITECTURE.md for the full threading model.
//
//   * Viewer connections whose transport exposes readiness (TCP) are hosted
//     on a shared net::EventHost epoll loop: no pump thread and no fan-out
//     subscription per viewer — ingress decode and the bounded outbound
//     queue both live on the poller, so the thread count stays flat no
//     matter how many viewers join. Handle-less transports (in-process)
//     keep the pump+fanout path; the two populations coexist and every
//     broadcast reaches both.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/fanout.hpp"
#include "common/status.hpp"
#include "net/accept_pump.hpp"
#include "net/event_host.hpp"
#include "net/transport.hpp"
#include "obs/endpoint.hpp"
#include "obs/registry.hpp"
#include "wire/message.hpp"

namespace cs::visit {

/// Fans one simulation's VISIT stream out to many collaborating viewers and
/// funnels the single master viewer's steering back. See the file comment
/// for the collaboration contract and the threading model.
class Multiplexer {
 public:
  struct Options {
    /// Address the (single) simulation connects to.
    std::string sim_address;
    /// Address participating visualizations connect to.
    std::string viewer_address;
    /// Everyone authenticates with this password; the UNICORE variant adds
    /// real authentication in front (see visit/proxy.hpp).
    std::string password;
    /// Per-viewer forwarding deadline; a viewer slower than this misses the
    /// sample rather than stalling its fan-out shard.
    common::Duration forward_timeout = std::chrono::milliseconds(50);
    /// Fan-out worker shards; 0 picks a default from hardware_concurrency.
    std::size_t fanout_shards = 0;
    /// Per-viewer outbound queue bound, in frames. When full, sample frames
    /// drop-oldest and control frames disconnect the viewer (see
    /// common::OverflowPolicy). Kept shallow on purpose: a full queue means
    /// the delivered sample is up to `capacity / sample-rate` stale, so
    /// depth buys burst absorption at the price of tail latency.
    std::size_t viewer_queue_capacity = 32;
    /// Host readiness-capable viewer connections (TCP) on a shared epoll
    /// loop instead of a pump thread each. Viewers on handle-less
    /// transports always use pump threads regardless. Off is the legacy
    /// thread-per-viewer path, kept as the bench baseline.
    bool use_event_host = true;
    /// Poller threads for the event host (one per core is the ceiling that
    /// makes sense; one is right on a small host).
    std::size_t event_host_pollers = 1;
    /// Viewer liveness (epoll-hosted population; zero disables, the
    /// default). A hosted viewer silent for this long is sent a kTagPing
    /// probe; one still silent past interval + grace is torn down through
    /// the normal close path (kTimeout) and counted in
    /// `mux_idle_disconnects` — the only way to shed a viewer whose
    /// process wedged but whose socket stayed open.
    common::Duration heartbeat_interval = common::Duration::zero();
    /// Slack past the interval before a silent viewer is declared dead.
    common::Duration heartbeat_grace = std::chrono::seconds(2);
    /// When non-empty, serve the service's obs::Registry as a /metricsz
    /// text-exposition endpoint on this address (same Network as the
    /// listeners; "0" lets TCP pick a port — read it back via
    /// metricsz_address()).
    std::string metricsz_address;
  };

  struct Stats {
    std::uint64_t samples_in = 0;       ///< data messages from the sim
    std::uint64_t samples_out = 0;      ///< per-viewer sample deliveries
    std::uint64_t samples_missed = 0;   ///< deliveries shed (slow viewer)
    std::uint64_t steers_accepted = 0;  ///< master parameter updates
    std::uint64_t steers_rejected = 0;  ///< non-master updates dropped
    std::uint64_t requests_served = 0;  ///< sim parameter requests answered
    /// Fan-out internals: per-shard queue/delivery counters, including
    /// control-frame traffic and overflow disconnects.
    common::FanoutStats fanout;
    /// Event-host internals for epoll-hosted viewers (zeros when disabled).
    net::EventHostStats event_host;
    /// Threads this service owns right now: accept pumps, the sim pump,
    /// fan-out shard workers, event-host pollers, and legacy per-viewer
    /// pumps. With the event host on and TCP viewers, this is constant in
    /// the viewer count — the loadgen scenario asserts exactly that.
    std::size_t service_threads = 0;
  };

  /// Starts listeners, the fan-out worker pool, and the pump threads.
  static common::Result<std::unique_ptr<Multiplexer>> start(
      net::Network& net, const Options& options);

  ~Multiplexer();
  Multiplexer(const Multiplexer&) = delete;
  Multiplexer& operator=(const Multiplexer&) = delete;

  /// Stops accepting, joins all workers and pumps, and closes every viewer.
  /// Idempotent; also invoked by the destructor.
  void stop();

  /// Resolved listener addresses — differ from the requested ones when the
  /// transport assigns them (TCP with port 0).
  std::string sim_address() const;
  std::string viewer_address() const;

  /// Number of currently registered viewers.
  std::size_t viewer_count() const;
  /// Id of the current master viewer, or 0 when none.
  std::uint64_t master_id() const;
  /// Snapshot of the service counters, including per-shard fan-out stats.
  /// A thin shim over the obs::Registry counters (the registry is the
  /// source of truth; this keeps the historical accessor shape).
  Stats stats() const;

  /// The service's metrics registry: counters/gauges/timers plus callback
  /// bridges into the fan-out, event-host, accept-pump, and TCP wire
  /// internals. Scrape it via snapshot(), or over the wire when
  /// Options::metricsz_address enabled the endpoint.
  obs::Registry& metrics() noexcept { return metrics_; }
  /// Resolved /metricsz endpoint address; empty when not enabled.
  std::string metricsz_address() const {
    return metrics_endpoint_ ? metrics_endpoint_->address() : std::string{};
  }

 private:
  Multiplexer() = default;

  /// Accept-pump handlers: handshake (blocking, on the pump thread) then
  /// hand the connection to the sim pump slot / viewer registry.
  void handle_sim_conn(net::ConnectionPtr conn);
  void handle_viewer_conn(net::ConnectionPtr conn);
  void sim_pump(const std::stop_token& st, net::ConnectionPtr conn);
  void viewer_pump(const std::stop_token& st, std::uint64_t id);
  /// Ingress from an epoll-hosted viewer (runs on the poller thread).
  void on_viewer_bytes(std::uint64_t id, common::Bytes raw);

  /// `ingress_ns` is when the raw bytes arrived off the sim connection —
  /// the frame-trace birth stamp (decode + re-encode shows up as the
  /// ingress→encode stage).
  void handle_sim_message(wire::Message m, net::Connection& sim_conn,
                          std::uint64_t ingress_ns);
  void handle_viewer_message(std::uint64_t id, wire::Message m);
  void add_viewer(net::ConnectionPtr conn);
  void remove_viewer(std::uint64_t id);
  /// Sets viewer `id` as master and notifies affected viewers.
  void promote(std::uint64_t id);
  /// Wires the callback metrics (fan-out/event-host/accept-pump/TCP-wire
  /// bridges) into metrics_; called once from start().
  void register_metric_bridges();
  /// Broadcast/unicast across both viewer populations (fan-out + hosted).
  void deliver(const common::FramePtr& frame, common::OverflowPolicy policy);
  bool deliver_to(std::uint64_t id, common::FramePtr frame,
                  common::OverflowPolicy policy);

  struct Viewer {
    net::ConnectionPtr conn;
    std::jthread pump;   ///< legacy path only; hosted viewers own no thread
    bool hosted = false; ///< lives on the event host, not the fan-out
  };

  Options options_;
  net::ListenerPtr sim_listener_;
  net::ListenerPtr viewer_listener_;
  std::unique_ptr<net::AcceptPump> sim_accept_pump_;
  std::unique_ptr<net::AcceptPump> viewer_accept_pump_;
  /// Guards sim_pump_thread_: the accept handler replaces it when a new
  /// simulation connects while stop() requests its termination.
  mutable std::mutex sim_pump_mutex_;
  std::jthread sim_pump_thread_;

  /// Guards the viewer registry, master bookkeeping, parameter table, and
  /// replay caches. Never held across a viewer send: the fan-out path only
  /// enqueues (the shard workers do the blocking I/O and never take this
  /// lock), so readers — viewer_count(), stats() — take it shared.
  mutable std::shared_mutex mutex_;
  std::map<std::uint64_t, Viewer> viewers_;
  std::uint64_t master_id_ = 0;
  std::uint64_t next_viewer_id_ = 1;
  std::map<std::uint32_t, wire::Message> parameters_;  // master's updates
  /// Replay caches hold pre-encoded shared frames: each broadcast is
  /// serialized exactly once, and late joiners reuse the same bytes.
  std::map<std::uint32_t, common::FramePtr> schema_cache_;
  std::map<std::uint32_t, common::FramePtr> last_sample_;
  /// Pump threads of departed viewers; joined at stop() (a pump may remove
  /// its own viewer and must not join itself).
  std::vector<std::jthread> graveyard_;
  /// Registry-backed counters (hot paths hold the references; stats() and
  /// /metricsz read them). Derived metrics — deliveries, drops, poller
  /// latency, frame stages — are callback bridges wired in start().
  obs::Registry metrics_;
  obs::Counter& ctr_samples_in_ =
      metrics_.counter("frames_published", "frames");
  obs::Counter& ctr_steers_accepted_ =
      metrics_.counter("mux_steers_accepted", "updates");
  obs::Counter& ctr_steers_rejected_ =
      metrics_.counter("mux_steers_rejected", "updates");
  obs::Counter& ctr_requests_served_ =
      metrics_.counter("mux_requests_served", "requests");
  std::unique_ptr<obs::MetricsEndpoint> metrics_endpoint_;
  /// Sharded outbound path for pump-thread viewers; owns their queues and
  /// the worker threads.
  std::unique_ptr<common::ShardedFanout> fanout_;
  /// Epoll host for readiness-capable viewers; owns their sockets, decode
  /// state, and outbound queues on a fixed poller pool.
  std::unique_ptr<net::EventHost> event_host_;
  std::atomic<bool> stopped_{false};
};

}  // namespace cs::visit
