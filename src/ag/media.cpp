#include "ag/media.hpp"

namespace cs::ag {

using common::Deadline;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {
constexpr auto kPumpSlice = std::chrono::milliseconds(50);
}

Result<MediaStream> MediaStream::join(net::InProcNetwork& net,
                                      const std::string& group,
                                      const net::LinkModel& link) {
  auto socket = net.join_group(group, link);
  if (!socket.is_ok()) return socket.status();
  MediaStream stream;
  stream.socket_ = std::move(socket).value();
  return stream;
}

Status MediaStream::send_frame(const viz::Image& frame) {
  if (!socket_) return Status{StatusCode::kClosed, "left the group"};
  const common::Bytes payload = viz::compress_frame(frame);
  Status s = socket_->send(payload, Deadline::expired());
  if (s.is_ok()) {
    ++frames_sent_;
    bytes_sent_ += payload.size();
  }
  return s;
}

Result<viz::Image> MediaStream::receive_frame(Deadline deadline) {
  if (!socket_) return Status{StatusCode::kClosed, "left the group"};
  auto raw = socket_->recv(deadline);
  if (!raw.is_ok()) return raw.status();
  return viz::decompress_frame(raw.value());
}

void MediaStream::leave() {
  if (socket_) socket_->leave();
  socket_.reset();
}

// ---------------------------------------------------------------------------
// UnicastBridge
// ---------------------------------------------------------------------------

Result<std::unique_ptr<UnicastBridge>> UnicastBridge::start(
    net::InProcNetwork& net, const Options& options) {
  auto socket = net.join_group(options.group);
  if (!socket.is_ok()) return socket.status();
  auto listener = net.listen(options.address);
  if (!listener.is_ok()) return listener.status();
  std::unique_ptr<UnicastBridge> bridge{new UnicastBridge};
  bridge->socket_ = std::move(socket).value();
  bridge->listener_ = std::move(listener).value();
  UnicastBridge* self = bridge.get();
  bridge->group_thread_ =
      std::jthread([self](std::stop_token st) { self->group_pump(st); });
  return bridge;
}

UnicastBridge::~UnicastBridge() { stop(); }

void UnicastBridge::stop() {
  if (stopped_.exchange(true)) return;
  group_thread_.request_stop();
  if (listener_) listener_->close();
  if (socket_) socket_->leave();
  // Join the pump before tearing down clients_: it must not be running when
  // the mutex and maps die (member destruction order would otherwise race).
  if (group_thread_.joinable()) group_thread_.join();
  std::vector<ClientThread> threads;
  {
    std::scoped_lock lock(mutex_);
    for (auto& [id, conn] : clients_) conn->close();
    clients_.clear();
    threads = std::move(client_threads_);
  }
  for (auto& ct : threads) {
    ct.thread.request_stop();
    if (ct.thread.joinable()) ct.thread.join();
  }
}

std::size_t UnicastBridge::client_count() const {
  std::scoped_lock lock(mutex_);
  return clients_.size();
}

void UnicastBridge::register_client(net::ConnectionPtr conn) {
  std::scoped_lock lock(mutex_);
  if (stopped_.load()) {  // raced with stop(): don't leak a live client
    conn->close();
    return;
  }
  // Reap finished pumps so churn doesn't grow the vector without bound. A
  // set `done` flag means the thread is past its last mutex_ use, so joining
  // it (in ~jthread) while holding the lock cannot deadlock.
  std::erase_if(client_threads_,
                [](const ClientThread& ct) { return ct.done->load(); });
  const std::uint64_t id = next_id_++;
  clients_[id] = std::move(conn);
  auto done = std::make_shared<std::atomic<bool>>(false);
  client_threads_.push_back(
      {done, std::jthread([this, id, done](std::stop_token cst) {
         client_pump(cst, id);
         done->store(true);
       })});
}

void UnicastBridge::group_pump(const std::stop_token& st) {
  // Multicast -> every unicast client. This thread is also the only place
  // new clients are accepted: draining the backlog here — after every recv,
  // before any relay — guarantees a client whose connect() completed before
  // a frame was sent cannot miss that frame (a second accept thread would
  // reopen that window by holding popped-but-unregistered connections).
  while (!st.stop_requested()) {
    auto message = socket_->recv(Deadline::after(kPumpSlice));
    for (;;) {
      auto pending = listener_->accept(Deadline::expired());
      if (!pending.is_ok()) break;
      register_client(std::move(pending).value());
    }
    if (!message.is_ok()) {
      if (message.status().code() == StatusCode::kClosed) return;
      continue;
    }
    std::vector<net::ConnectionPtr> targets;
    {
      std::scoped_lock lock(mutex_);
      for (const auto& [id, conn] : clients_) targets.push_back(conn);
    }
    for (auto& conn : targets) {
      (void)conn->send(message.value(), Deadline::expired());  // best effort
    }
  }
}

void UnicastBridge::client_pump(const std::stop_token& st, std::uint64_t id) {
  // Unicast client -> multicast group (and implicitly to other clients on
  // the next group_pump round? no: multicast loopback excludes the sender
  // socket, so relay to the other unicast clients explicitly).
  net::ConnectionPtr conn;
  {
    std::scoped_lock lock(mutex_);
    auto it = clients_.find(id);
    if (it == clients_.end()) return;
    conn = it->second;
  }
  while (!st.stop_requested()) {
    auto message = conn->recv(Deadline::after(kPumpSlice));
    if (!message.is_ok()) {
      if (message.status().code() == StatusCode::kClosed) {
        std::scoped_lock lock(mutex_);
        clients_.erase(id);
        return;
      }
      continue;
    }
    (void)socket_->send(message.value(), Deadline::expired());
    std::vector<net::ConnectionPtr> others;
    {
      std::scoped_lock lock(mutex_);
      for (const auto& [cid, c] : clients_) {
        if (cid != id) others.push_back(c);
      }
    }
    for (auto& c : others) {
      (void)c->send(message.value(), Deadline::expired());
    }
  }
}

}  // namespace cs::ag
