#include "sim/lbm/checkpoint.hpp"

#include <cstring>

namespace cs::lbm {

using common::ByteOrder;
using common::Bytes;
using common::ByteSpan;
using common::Result;
using common::Status;
using common::StatusCode;

namespace {
constexpr std::uint32_t kMagic = 0x4c424d31;  // "LBM1"

void put_f64(Bytes& out, double v) {
  common::append_bytes(out, common::as_bytes(v));
}

void put_doubles(Bytes& out, const std::vector<double>& values) {
  common::append_uint<std::uint64_t>(out, values.size(), ByteOrder::kBig);
  const auto* p = reinterpret_cast<const std::uint8_t*>(values.data());
  out.insert(out.end(), p, p + values.size() * sizeof(double));
}

struct Reader {
  ByteSpan in;
  bool failed = false;

  std::uint32_t u32() {
    if (in.size() < 4) { failed = true; return 0; }
    const auto v = common::read_uint<std::uint32_t>(in, ByteOrder::kBig);
    in = in.subspan(4);
    return v;
  }
  std::uint64_t u64() {
    if (in.size() < 8) { failed = true; return 0; }
    const auto v = common::read_uint<std::uint64_t>(in, ByteOrder::kBig);
    in = in.subspan(8);
    return v;
  }
  double f64() {
    double v = 0;
    if (in.size() < 8) { failed = true; return 0; }
    std::memcpy(&v, in.data(), 8);
    in = in.subspan(8);
    return v;
  }
  bool doubles(std::vector<double>& out) {
    const auto n = u64();
    if (failed || in.size() < n * sizeof(double)) { failed = true; return false; }
    out.resize(n);
    std::memcpy(out.data(), in.data(), n * sizeof(double));
    in = in.subspan(n * sizeof(double));
    return true;
  }
};
}  // namespace

Bytes checkpoint(const TwoFluidLbm& sim) {
  Bytes out;
  common::append_uint<std::uint32_t>(out, kMagic, ByteOrder::kBig);
  const auto& c = sim.config();
  common::append_uint<std::uint32_t>(out, static_cast<std::uint32_t>(c.nx),
                                     ByteOrder::kBig);
  common::append_uint<std::uint32_t>(out, static_cast<std::uint32_t>(c.ny),
                                     ByteOrder::kBig);
  common::append_uint<std::uint32_t>(out, static_cast<std::uint32_t>(c.nz),
                                     ByteOrder::kBig);
  put_f64(out, c.tau_a);
  put_f64(out, c.tau_b);
  put_f64(out, sim.coupling());
  put_f64(out, c.rho0);
  put_f64(out, c.noise);
  common::append_uint<std::uint64_t>(out, c.seed, ByteOrder::kBig);
  common::append_uint<std::uint64_t>(out, sim.steps_done(), ByteOrder::kBig);
  put_doubles(out, sim.distributions_a());
  put_doubles(out, sim.distributions_b());
  return out;
}

Result<TwoFluidLbm> restore(ByteSpan data) {
  Reader r{data};
  if (r.u32() != kMagic || r.failed) {
    return Status{StatusCode::kProtocolError, "not an LBM checkpoint"};
  }
  LbmConfig config;
  config.nx = static_cast<int>(r.u32());
  config.ny = static_cast<int>(r.u32());
  config.nz = static_cast<int>(r.u32());
  config.tau_a = r.f64();
  config.tau_b = r.f64();
  config.coupling = r.f64();
  config.rho0 = r.f64();
  config.noise = r.f64();
  config.seed = r.u64();
  const std::uint64_t steps = r.u64();
  if (r.failed || config.nx <= 0 || config.nx > 1024 || config.ny <= 0 ||
      config.ny > 1024 || config.nz <= 0 || config.nz > 1024) {
    return Status{StatusCode::kProtocolError, "corrupt checkpoint header"};
  }
  std::vector<double> f_a, f_b;
  if (!r.doubles(f_a) || !r.doubles(f_b)) {
    return Status{StatusCode::kProtocolError, "checkpoint truncated"};
  }
  TwoFluidLbm sim(config);
  if (Status s = sim.set_state(std::move(f_a), std::move(f_b), steps);
      !s.is_ok()) {
    return s;
  }
  return sim;
}

}  // namespace cs::lbm
