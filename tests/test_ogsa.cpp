// Tests for the OGSA layer (service data, lifetime, registry, text RPC
// hosting) and the steer instrumentation API, including the combined
// Fig. 2 wiring: app -> SteeringControl -> SteeringService -> Registry ->
// remote SteeringClient.
#include <gtest/gtest.h>

#include <thread>

#include "net/inproc.hpp"
#include "net/tcp.hpp"
#include "ogsa/host.hpp"
#include "ogsa/registry.hpp"
#include "ogsa/steering_service.hpp"
#include "steer/control.hpp"

namespace cs::ogsa {
namespace {

using namespace std::chrono_literals;
using common::Deadline;
using common::StatusCode;

// ----------------------------------------------------------- GridService --

TEST(GridService, ServiceDataRoundTrip) {
  GridService s{"ogsi://x"};
  s.set_service_data("component", "application");
  auto v = s.find_service_data("component");
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value(), "application");
  EXPECT_FALSE(s.find_service_data("nope").is_ok());
}

TEST(GridService, QueryByGlob) {
  GridService s{"ogsi://x"};
  s.set_service_data("param/miscibility", "steerable");
  s.set_service_data("param/temperature", "monitored");
  s.set_service_data("component", "application");
  EXPECT_EQ(s.query_service_data("param/*").size(), 2u);
  EXPECT_EQ(s.query_service_data("*").size(), 3u);
}

TEST(GridService, LifetimeSoftState) {
  GridService s{"ogsi://x"};
  EXPECT_TRUE(s.is_alive());  // default: immortal until destroyed
  s.request_termination_after(30ms);
  EXPECT_TRUE(s.is_alive());
  std::this_thread::sleep_for(40ms);
  EXPECT_FALSE(s.is_alive());
  s.keep_alive(1s);  // a keep-alive resurrects within the model
  EXPECT_TRUE(s.is_alive());
  s.destroy();
  EXPECT_FALSE(s.is_alive());
}

TEST(GridService, InvokeFindServiceData) {
  GridService s{"ogsi://x"};
  s.set_service_data("k", "v");
  auto r = s.invoke("find-service-data", {"k"});
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), "v");
  EXPECT_FALSE(s.invoke("bogus-op", {}).is_ok());
}

// -------------------------------------------------------------- Registry --

TEST(Registry, PublishFindResolve) {
  Registry reg;
  auto a = std::make_shared<GridService>("ogsi://site/steering/app");
  auto b = std::make_shared<GridService>("ogsi://site/steering/viz");
  auto c = std::make_shared<GridService>("ogsi://site/other");
  ASSERT_TRUE(reg.publish(a).is_ok());
  ASSERT_TRUE(reg.publish(b).is_ok());
  ASSERT_TRUE(reg.publish(c).is_ok());
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(reg.find("ogsi://site/steering/*").size(), 2u);
  auto r = reg.resolve("ogsi://site/steering/app");
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().get(), a.get());
}

TEST(Registry, DuplicateHandleRejected) {
  Registry reg;
  ASSERT_TRUE(reg.publish(std::make_shared<GridService>("ogsi://dup")).is_ok());
  auto s = reg.publish(std::make_shared<GridService>("ogsi://dup"));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(Registry, DeadServicesAreSwept) {
  Registry reg;
  auto s = std::make_shared<GridService>("ogsi://shortlived");
  ASSERT_TRUE(reg.publish(s).is_ok());
  s->request_termination_after(20ms);
  std::this_thread::sleep_for(30ms);
  EXPECT_TRUE(reg.find("ogsi://shortlived").empty());
  EXPECT_EQ(reg.size(), 0u);
  // The handle is free again.
  auto s2 = std::make_shared<GridService>("ogsi://shortlived");
  EXPECT_TRUE(reg.publish(s2).is_ok());
}

TEST(Registry, FindByServiceData) {
  Registry reg;
  auto app = std::make_shared<GridService>("ogsi://a");
  app->set_service_data("component", "application");
  auto viz = std::make_shared<GridService>("ogsi://b");
  viz->set_service_data("component", "visualization");
  ASSERT_TRUE(reg.publish(app).is_ok());
  ASSERT_TRUE(reg.publish(viz).is_ok());
  auto hits = reg.find_by_service_data("component", "visual*");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].handle, "ogsi://b");
}

TEST(Registry, UnpublishRemoves) {
  Registry reg;
  auto s = std::make_shared<GridService>("ogsi://x");
  ASSERT_TRUE(reg.publish(s).is_ok());
  ASSERT_TRUE(reg.unpublish("ogsi://x").is_ok());
  EXPECT_FALSE(reg.resolve("ogsi://x").is_ok());
  EXPECT_EQ(reg.unpublish("ogsi://x").code(), StatusCode::kNotFound);
}

// ----------------------------------------------------- SteeringControl ----

TEST(SteeringControl, ParameterUpdateAppliedBetweenIterations) {
  steer::SteeringControl ctl;
  double miscibility = 0.05;
  ctl.register_steerable("miscibility", &miscibility, 0.0, 1.0);
  ASSERT_TRUE(ctl.set_param("miscibility", "0.25").is_ok());
  // Not yet applied: the app hasn't reached the iteration boundary.
  EXPECT_DOUBLE_EQ(miscibility, 0.05);
  const auto changed = ctl.apply_pending();
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0], "miscibility");
  EXPECT_DOUBLE_EQ(miscibility, 0.25);
}

TEST(SteeringControl, RangeEnforced) {
  steer::SteeringControl ctl;
  double v = 0.5;
  ctl.register_steerable("v", &v, 0.0, 1.0);
  EXPECT_EQ(ctl.set_param("v", "1.5").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ctl.set_param("v", "junk").code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(ctl.set_param("v", "1.0").is_ok());
}

TEST(SteeringControl, IntParameter) {
  steer::SteeringControl ctl;
  std::int64_t n = 100;
  ctl.register_steerable_int("particles", &n, 10, 100000);
  ASSERT_TRUE(ctl.set_param("particles", "5000").is_ok());
  EXPECT_EQ(ctl.set_param("particles", "5").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ctl.set_param("particles", "1e3").code(),
            StatusCode::kInvalidArgument);
  ctl.apply_pending();
  EXPECT_EQ(n, 5000);
}

TEST(SteeringControl, MonitoredIsReadOnlyAndCached) {
  steer::SteeringControl ctl;
  double energy = 1.0;
  ctl.register_monitored("energy", [&] { return energy; });
  auto v = ctl.get_param("energy");
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(std::stod(v.value()), 1.0);
  energy = 2.0;  // app-side change, not yet published
  EXPECT_EQ(std::stod(ctl.get_param("energy").value()), 1.0);
  ctl.apply_pending();
  EXPECT_EQ(std::stod(ctl.get_param("energy").value()), 2.0);
  EXPECT_EQ(ctl.set_param("energy", "9").code(),
            StatusCode::kPermissionDenied);
}

TEST(SteeringControl, ListParamsMarksKinds) {
  steer::SteeringControl ctl;
  double a = 0;
  ctl.register_steerable("a", &a, -1, 1);
  ctl.register_monitored("m", [] { return 3.0; });
  const auto params = ctl.list_params();
  ASSERT_EQ(params.size(), 2u);
  for (const auto& p : params) {
    if (p.name == "a") {
      EXPECT_TRUE(p.steerable);
    }
    if (p.name == "m") {
      EXPECT_FALSE(p.steerable);
    }
  }
}

TEST(SteeringControl, StopCommandReachesLoop) {
  steer::SteeringControl ctl;
  ASSERT_TRUE(ctl.command("stop").is_ok());
  EXPECT_EQ(ctl.sync(), steer::Command::kStop);
  EXPECT_TRUE(ctl.stop_requested());
}

TEST(SteeringControl, PauseBlocksUntilResume) {
  steer::SteeringControl ctl;
  ASSERT_TRUE(ctl.command("pause").is_ok());
  std::atomic<bool> resumed{false};
  std::jthread app([&] {
    const auto c = ctl.sync();  // blocks while paused
    EXPECT_NE(c, steer::Command::kStop);
    resumed.store(true);
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(resumed.load());
  EXPECT_EQ(ctl.status(), "paused");
  ASSERT_TRUE(ctl.command("resume").is_ok());
  app.join();
  EXPECT_TRUE(resumed.load());
}

TEST(SteeringControl, StopUnblocksPausedLoop) {
  steer::SteeringControl ctl;
  ASSERT_TRUE(ctl.command("pause").is_ok());
  std::jthread app([&] { EXPECT_EQ(ctl.sync(), steer::Command::kStop); });
  std::this_thread::sleep_for(30ms);
  ASSERT_TRUE(ctl.command("stop").is_ok());
}

TEST(SteeringControl, ParamSetWhilePausedAppliesOnResume) {
  steer::SteeringControl ctl;
  double v = 1.0;
  ctl.register_steerable("v", &v, 0, 10);
  ASSERT_TRUE(ctl.command("pause").is_ok());
  std::jthread app([&] { (void)ctl.sync(); });
  std::this_thread::sleep_for(30ms);
  ASSERT_TRUE(ctl.set_param("v", "7").is_ok());
  ASSERT_TRUE(ctl.command("resume").is_ok());
  app.join();
  EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(SteeringControl, UnknownCommandRejected) {
  steer::SteeringControl ctl;
  EXPECT_EQ(ctl.command("explode").code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------- Fig. 2: remote steering RPC --

struct Fig2Fixture {
  net::InProcNetwork net;
  std::shared_ptr<Registry> registry = std::make_shared<Registry>();
  std::shared_ptr<steer::SteeringControl> ctl =
      std::make_shared<steer::SteeringControl>();
  std::shared_ptr<SteeringService> service;
  std::unique_ptr<ServiceHost> host;
  double coupling = 0.1;

  Fig2Fixture() {
    ctl->register_steerable("coupling", &coupling, 0.0, 1.0);
    ctl->register_monitored("step", [] { return 42.0; });
    ctl->apply_pending();
    service = std::make_shared<SteeringService>(
        "ogsi://realitygrid/steering/lbm", "application", ctl);
    EXPECT_TRUE(registry->publish(service).is_ok());
    auto h = ServiceHost::start(net, registry, {"ogsihost:1"});
    EXPECT_TRUE(h.is_ok());
    host = std::move(h).value();
  }
};

TEST(Fig2, DiscoverBindInvokeRemotely) {
  Fig2Fixture f;
  auto client = ServiceClient::connect(f.net, "ogsihost:1", Deadline::after(2s));
  ASSERT_TRUE(client.is_ok());

  auto handles = client.value().find("ogsi://realitygrid/steering/*",
                                     Deadline::after(2s));
  ASSERT_TRUE(handles.is_ok());
  ASSERT_EQ(handles.value().size(), 1u);
  const auto handle = handles.value()[0];

  // Query SDEs before binding (the registry pattern of Fig. 2).
  auto component = client.value().invoke(handle, "find-service-data",
                                         {"component"}, Deadline::after(2s));
  ASSERT_TRUE(component.is_ok());
  EXPECT_EQ(component.value(), "application");

  // Steer the parameter through the service.
  auto set = client.value().invoke(handle, "set-param", {"coupling", "0.33"},
                                   Deadline::after(2s));
  ASSERT_TRUE(set.is_ok());
  f.ctl->apply_pending();  // the app's next iteration
  EXPECT_DOUBLE_EQ(f.coupling, 0.33);

  auto get = client.value().invoke(handle, "get-param", {"coupling"},
                                   Deadline::after(2s));
  ASSERT_TRUE(get.is_ok());
  EXPECT_NEAR(std::stod(get.value()), 0.33, 1e-12);
}

TEST(Fig2, OutOfRangeSteerReportedToClient) {
  Fig2Fixture f;
  auto client = ServiceClient::connect(f.net, "ogsihost:1", Deadline::after(2s));
  ASSERT_TRUE(client.is_ok());
  auto set = client.value().invoke("ogsi://realitygrid/steering/lbm",
                                   "set-param", {"coupling", "42"},
                                   Deadline::after(2s));
  ASSERT_FALSE(set.is_ok());
  EXPECT_EQ(set.status().code(), StatusCode::kInvalidArgument);
}

TEST(Fig2, UnknownHandleReported) {
  Fig2Fixture f;
  auto client = ServiceClient::connect(f.net, "ogsihost:1", Deadline::after(2s));
  ASSERT_TRUE(client.is_ok());
  auto r = client.value().invoke("ogsi://nothing", "status", {},
                                 Deadline::after(2s));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Fig2, TwoServicesAppAndViz) {
  Fig2Fixture f;
  // Add a second service steering the "visualization" (Fig. 2 shows both).
  auto viz_ctl = std::make_shared<steer::SteeringControl>();
  double isolevel = 0.5;
  viz_ctl->register_steerable("isolevel", &isolevel, 0.0, 1.0);
  viz_ctl->apply_pending();
  auto viz_service = std::make_shared<SteeringService>(
      "ogsi://realitygrid/steering/viz", "visualization", viz_ctl);
  ASSERT_TRUE(f.registry->publish(viz_service).is_ok());

  auto client = ServiceClient::connect(f.net, "ogsihost:1", Deadline::after(2s));
  ASSERT_TRUE(client.is_ok());
  auto handles = client.value().find("ogsi://realitygrid/steering/*",
                                     Deadline::after(2s));
  ASSERT_TRUE(handles.is_ok());
  EXPECT_EQ(handles.value().size(), 2u);

  // The client binds both and steers each independently.
  ASSERT_TRUE(client.value()
                  .invoke("ogsi://realitygrid/steering/viz", "set-param",
                          {"isolevel", "0.8"}, Deadline::after(2s))
                  .is_ok());
  viz_ctl->apply_pending();
  EXPECT_DOUBLE_EQ(isolevel, 0.8);
  EXPECT_DOUBLE_EQ(f.coupling, 0.1);  // untouched
}

TEST(Fig2, ServiceExpiryDisappearsFromDiscovery) {
  Fig2Fixture f;
  f.service->request_termination_after(20ms);
  std::this_thread::sleep_for(30ms);
  auto client = ServiceClient::connect(f.net, "ogsihost:1", Deadline::after(2s));
  ASSERT_TRUE(client.is_ok());
  auto handles = client.value().find("*", Deadline::after(2s));
  ASSERT_TRUE(handles.is_ok());
  EXPECT_TRUE(handles.value().empty());
}

TEST(Fig2, StatusAndCommandsFlowThroughService) {
  Fig2Fixture f;
  f.ctl->set_status("step 7 of 100");
  auto client = ServiceClient::connect(f.net, "ogsihost:1", Deadline::after(2s));
  ASSERT_TRUE(client.is_ok());
  auto status = client.value().invoke("ogsi://realitygrid/steering/lbm",
                                      "status", {}, Deadline::after(2s));
  ASSERT_TRUE(status.is_ok());
  EXPECT_EQ(status.value(), "step 7 of 100");
  ASSERT_TRUE(client.value()
                  .invoke("ogsi://realitygrid/steering/lbm", "command",
                          {"stop"}, Deadline::after(2s))
                  .is_ok());
  EXPECT_TRUE(f.ctl->stop_requested());
}

TEST(Fig2, TcpClientsAreHostedWithoutPerConnectionThreads) {
  // Eight steering clients bind over TCP; the hosting environment serves
  // them all from the shared readiness host, so its thread count never
  // grows past the single-client figure.
  net::TcpNetwork net;
  auto registry = std::make_shared<Registry>();
  auto service = std::make_shared<GridService>("ogsi://fleet/app");
  service->set_service_data("component", "application");
  ASSERT_TRUE(registry->publish(service).is_ok());
  auto host = ServiceHost::start(net, registry, {"0"});
  ASSERT_TRUE(host.is_ok());
  const std::string address = host.value()->address();

  std::vector<ServiceClient> clients;
  std::size_t threads_with_one = 0;
  for (int i = 0; i < 8; ++i) {
    auto client = ServiceClient::connect(net, address, Deadline::after(5s));
    ASSERT_TRUE(client.is_ok());
    clients.push_back(std::move(client).value());
    if (i == 0) threads_with_one = host.value()->service_threads();
  }
  EXPECT_EQ(host.value()->service_threads(), threads_with_one);
  EXPECT_LE(host.value()->service_threads(), 2u);

  // Every client runs a discover + invoke round trip on the populated host.
  for (auto& client : clients) {
    auto handles = client.find("ogsi://fleet/*", Deadline::after(2s));
    ASSERT_TRUE(handles.is_ok());
    ASSERT_EQ(handles.value().size(), 1u);
    auto component = client.invoke(handles.value()[0], "find-service-data",
                                   {"component"}, Deadline::after(2s));
    ASSERT_TRUE(component.is_ok());
    EXPECT_EQ(component.value(), "application");
  }
  EXPECT_EQ(host.value()->service_threads(), threads_with_one);

  host.value()->stop();
  host.value()->stop();  // idempotent
  EXPECT_FALSE(
      ServiceClient::connect(net, address, Deadline::after(200ms)).is_ok());
}

}  // namespace
}  // namespace cs::ogsa
