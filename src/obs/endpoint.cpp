#include "obs/endpoint.hpp"

#include <utility>

#include "common/bytes.hpp"

namespace cs::obs {

MetricsEndpoint::MetricsEndpoint(Source source, Options options)
    : source_(std::move(source)), options_(options) {}

common::Result<std::unique_ptr<MetricsEndpoint>> MetricsEndpoint::start(
    net::Network& net, const std::string& address, Source source,
    const Options& options) {
  auto listener = net.listen(address);
  if (!listener.is_ok()) return listener.status();
  auto host = net::ConnectionHost::start(net::ConnectionHost::Options{});
  if (!host.is_ok()) return host.status();
  std::unique_ptr<MetricsEndpoint> endpoint{
      new MetricsEndpoint(std::move(source), options)};
  endpoint->listener_ = std::move(listener.value());
  endpoint->host_ = std::move(host).value();
  MetricsEndpoint* self = endpoint.get();
  // Scrapers are hosted like any other population: one request frame in,
  // one exposition frame enqueued out. An idle endpoint holds no
  // per-scraper threads at all.
  endpoint->pump_ = std::make_unique<net::AcceptPump>(
      endpoint->host_->event_host(), *endpoint->listener_,
      [self](net::ConnectionPtr conn) {
        if (self->stopped_.load(std::memory_order_acquire)) {
          conn->close();
          return;
        }
        const std::uint64_t id =
            self->next_id_.fetch_add(1, std::memory_order_relaxed);
        const bool hosted = self->host_->add(
            id, conn,
            [self](std::uint64_t cid, common::Bytes) { self->on_message(cid); },
            {});
        if (!hosted) conn->close();  // raced with stop()
      });
  return endpoint;
}

MetricsEndpoint::~MetricsEndpoint() { stop(); }

void MetricsEndpoint::stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  // Uniform teardown order: listener, accept pump, host.
  if (listener_ != nullptr) listener_->close();
  if (pump_ != nullptr) pump_->stop();
  if (host_ != nullptr) host_->stop();
}

std::size_t MetricsEndpoint::service_threads() const {
  return (pump_ && !pump_->event_driven() ? 1 : 0) +
         (host_ ? host_->thread_count() : 0);
}

void MetricsEndpoint::on_message(std::uint64_t id) {
  // Any request frame asks for one fresh snapshot (the request body is not
  // inspected, matching the historical endpoint). The reply rides the
  // hosted queue as control traffic: a scraper that stops draining is
  // disconnected by kDisconnect overflow instead of wedging a thread.
  const std::string text = to_text(source_());
  if (host_->reply(id, common::Bytes(text.begin(), text.end()))) {
    scrapes_.fetch_add(1, std::memory_order_relaxed);
  }
}

common::Result<std::string> scrape_text(net::Network& net,
                                        const std::string& address,
                                        common::Deadline deadline) {
  auto conn = net.connect(address, deadline);
  if (!conn.is_ok()) return conn.status();
  static constexpr char kRequest[] = "/metricsz";
  const common::Bytes request(kRequest, kRequest + sizeof(kRequest) - 1);
  if (auto s = conn.value()->send(common::ByteSpan(request), deadline);
      !s.is_ok()) {
    return s;
  }
  auto reply = conn.value()->recv(deadline);
  conn.value()->close();
  if (!reply.is_ok()) return reply.status();
  return std::string(reply.value().begin(), reply.value().end());
}

common::Result<std::vector<std::pair<std::string, double>>> scrape_metrics(
    net::Network& net, const std::string& address, common::Deadline deadline) {
  auto text = scrape_text(net, address, deadline);
  if (!text.is_ok()) return text.status();
  return parse_text(text.value());
}

}  // namespace cs::obs
