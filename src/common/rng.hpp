// Deterministic pseudo-random numbers.
//
// Everything stochastic in collabsteer (particle initial conditions, link
// jitter, workload generators) draws from this generator so that runs are
// reproducible from a single seed. xoshiro256** passes BigCrush and is
// cheap enough for per-message jitter draws.
#pragma once

#include <cstdint>

namespace cs::common {

/// splitmix64: used to expand a single seed into generator state.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** 1.0 (Blackman & Vigna), deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double next_double() noexcept;

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Standard normal via Box-Muller (uses two uniforms per pair).
  double normal() noexcept;

  /// Splits off an independent stream (for per-thread use).
  Rng split() noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace cs::common
